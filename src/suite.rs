//! Root-package shim; see the `probgraph` crate for the library.
pub use probgraph as pg;
