//! Screening a chemical database by clustering related molecules.
//!
//! §III-A of the paper lists "screening and generating overviews of
//! chemical databases (by computing clusters of related molecules)" as a
//! Jarvis–Patrick use case — JP clustering was in fact invented for
//! chemical-similarity screening. This example models a molecule-similarity
//! graph (the `ch-*` stand-ins of Table VIII), runs Jarvis–Patrick with
//! the three similarity variants, and compares exact vs ProbGraph cluster
//! structure and runtime.
//!
//! Run with: `cargo run --release --example chemistry_clustering`

use pg_graph::gen;
use probgraph::algorithms::clustering::{jarvis_patrick_exact, jarvis_patrick_pg, SimilarityKind};
use probgraph::{PgConfig, ProbGraph, Representation};
use std::time::Instant;

fn main() {
    // The ch-Si10H16 stand-in (scaled 4x down for a quick demo run).
    let g = gen::instance("ch-Si10H16", 4).expect("known family");
    println!(
        "molecule-similarity graph: n={}, m={}, avg degree={:.1}",
        g.num_vertices(),
        g.num_edges(),
        g.avg_degree()
    );

    let pg_bf = ProbGraph::build(&g, &PgConfig::new(Representation::Bloom { b: 2 }, 0.25));
    let pg_mh = ProbGraph::build(&g, &PgConfig::new(Representation::OneHash, 0.25));

    for (kind, tau) in [
        (SimilarityKind::CommonNeighbors, 3.0),
        (SimilarityKind::Jaccard, 0.08),
        (SimilarityKind::Overlap, 0.15),
    ] {
        let t0 = Instant::now();
        let exact = jarvis_patrick_exact(&g, kind, tau);
        let t_exact = t0.elapsed().as_secs_f64();

        let t0 = Instant::now();
        let bf = jarvis_patrick_pg(&g, &pg_bf, kind, tau);
        let t_bf = t0.elapsed().as_secs_f64();

        let t0 = Instant::now();
        let mh = jarvis_patrick_pg(&g, &pg_mh, kind, tau);
        let t_mh = t0.elapsed().as_secs_f64();

        println!("\n{kind:?}, τ={tau}:");
        println!(
            "  exact : {:>6} cluster edges, {:>4} clusters, {:.4}s",
            exact.num_edges, exact.num_clusters, t_exact
        );
        println!(
            "  PG-BF : {:>6} cluster edges, {:>4} clusters, {:.4}s ({:.1}x)",
            bf.num_edges,
            bf.num_clusters,
            t_bf,
            t_exact / t_bf
        );
        println!(
            "  PG-MH : {:>6} cluster edges, {:>4} clusters, {:.4}s ({:.1}x)",
            mh.num_edges,
            mh.num_clusters,
            t_mh,
            t_exact / t_mh
        );
        // How much of the exact edge selection does PG reproduce?
        let agree = exact
            .selected
            .iter()
            .zip(&bf.selected)
            .filter(|(a, b)| a == b)
            .count();
        println!(
            "  PG-BF edge-decision agreement: {:.1}%",
            100.0 * agree as f64 / exact.selected.len() as f64
        );
    }
}
