//! Link prediction on an evolving social network (Listing 5).
//!
//! Hide a random 15 % of the edges of a social-network stand-in, score the
//! remaining non-edges by (approximate) common-neighbor counts, and check
//! how many hidden edges land in the top predictions — comparing the exact
//! scorer against ProbGraph scorers at several budgets.
//!
//! Run with: `cargo run --release --example link_prediction`

use pg_graph::gen;
use probgraph::algorithms::link_prediction::{evaluate, evaluate_pg, exact_cn_scorer};
use probgraph::{PgConfig, Representation};
use std::time::Instant;

fn main() {
    let g = gen::instance("soc-fbMsg", 1).expect("known family");
    println!(
        "social graph: n={}, m={}, avg degree={:.1}",
        g.num_vertices(),
        g.num_edges(),
        g.avg_degree()
    );
    let frac = 0.15;
    let seed = 11;

    let t0 = Instant::now();
    let exact = evaluate(&g, frac, seed, exact_cn_scorer);
    let t_exact = t0.elapsed().as_secs_f64();
    println!(
        "\nexact CN scorer : {}/{} hidden edges recovered (precision {:.3}) in {:.3}s",
        exact.hits, exact.num_removed, exact.precision, t_exact
    );

    for (label, rep, s) in [
        ("PG-BF  s=25%", Representation::Bloom { b: 2 }, 0.25),
        ("PG-BF  s=10%", Representation::Bloom { b: 2 }, 0.10),
        ("PG-1H  s=25%", Representation::OneHash, 0.25),
        ("PG-1H  s=10%", Representation::OneHash, 0.10),
    ] {
        let t0 = Instant::now();
        let out = evaluate_pg(&g, frac, seed, &PgConfig::new(rep, s));
        let t = t0.elapsed().as_secs_f64();
        println!(
            "{label}: {}/{} recovered (precision {:.3}) in {:.3}s — {:.0}% of exact precision",
            out.hits,
            out.num_removed,
            out.precision,
            t,
            100.0 * out.precision / exact.precision.max(1e-12)
        );
    }
}
