//! Streaming updates: keep a ProbGraph current as the graph evolves,
//! without rebuilding sketches.
//!
//! A `ProbGraph` is normally built offline (`ProbGraph::build`). The
//! `MutableOracle` extension adds the write path: `stream_from` seeds
//! empty sketches under the same storage budget, `apply_batch` /
//! `insert_edge` absorb new edges in place, and every estimate afterwards
//! is exactly what a from-scratch rebuild would return (bit-identical
//! sketches for Bloom/k-hash/HLL, estimator-identical for KMV/bottom-k).
//! `Representation::CountingBloom` closes the loop under deletion:
//! `remove_batch` / `remove_edge` take edges back out, landing exactly on
//! a rebuild of the surviving edge set.
//!
//! Run with: `cargo run --release --example streaming_updates`

use probgraph::oracle::MutableOracle;
use probgraph::{PgConfig, ProbGraph, Representation};
use std::time::Instant;

fn main() {
    // The "historical" graph: everything known before the stream starts.
    let g = pg_graph::gen::kronecker(11, 16, 42);
    let edges = g.edge_list();
    // Hold back the most recent 5 % of edges — they will arrive live.
    let split = edges.len() - edges.len() / 20;
    let (history, live) = edges.split_at(split);
    println!(
        "graph: n={} m={} | history={} live={}",
        g.num_vertices(),
        g.num_edges(),
        history.len(),
        live.len()
    );

    let cfg = PgConfig::new(Representation::Bloom { b: 2 }, 0.25);

    // Seed the incremental ProbGraph from the history. The budget is
    // resolved against the full graph's CSR footprint, so sketch
    // parameters equal an offline build's.
    let t0 = Instant::now();
    let mut pg = ProbGraph::stream_from(g.num_vertices(), g.memory_bytes(), &cfg, history);
    println!(
        "seeded {} sketches from history in {:.1} ms (removals supported: {})",
        pg.len(),
        t0.elapsed().as_secs_f64() * 1e3,
        pg.remove_supported()
    );

    // The live phase: edges arrive in small batches and are absorbed in
    // place — no rebuild, grouped per source vertex under the hood.
    let t0 = Instant::now();
    for batch in live.chunks(64) {
        pg.apply_batch(batch);
    }
    let dt = t0.elapsed().as_secs_f64();
    println!(
        "absorbed {} live edges in {:.1} ms ({:.0} ns/edge)",
        live.len(),
        dt * 1e3,
        dt * 1e9 / live.len().max(1) as f64
    );

    // The incremental sketches answer exactly like an offline rebuild of
    // the same final graph.
    let t0 = Instant::now();
    let rebuilt = ProbGraph::build(&g, &cfg);
    let rebuild_ms = t0.elapsed().as_secs_f64() * 1e3;
    let mut max_dev: f64 = 0.0;
    for &(a, b) in live {
        max_dev = max_dev
            .max((pg.estimate_intersection(a, b) - rebuilt.estimate_intersection(a, b)).abs());
    }
    assert_eq!(max_dev, 0.0, "incremental build must match the rebuild");
    println!(
        "full rebuild took {rebuild_ms:.1} ms; incremental estimates match it exactly \
         (max deviation over live edges: {max_dev:e})"
    );

    // A single hot edge goes in directly — and the sizes estimators read
    // track it immediately.
    let (u, v) = (0u32, (g.num_vertices() as u32) - 1);
    if !g.has_edge(u, v) {
        let before = pg.set_size(u as usize);
        pg.insert_edge(u, v);
        println!(
            "inserted single edge ({u},{v}): |N_{u}| {} -> {}",
            before,
            pg.set_size(u as usize)
        );
    }

    // --- deletions: the counting-Bloom representation ------------------
    // Plain Bloom bits cannot be unset, so `remove_supported()` was false
    // above. Counting Bloom keeps a saturating counter per bucket behind
    // the same read view and can take edges back out. (Caveat: a bucket
    // whose counter saturates turns sticky and survives removals — on
    // heavy-tailed graphs the hub neighborhoods overload tight budgets,
    // so this act uses a uniform-degree graph where the rebuild equality
    // is exact; see `pg_sketch::counting_bloom` for the details.)
    let ge = pg_graph::gen::erdos_renyi_gnm(2048, 32 * 1024, 7);
    let edges = ge.edge_list();
    let cbf_cfg = PgConfig::new(Representation::CountingBloom { b: 2 }, 0.25);
    let mut cbf = ProbGraph::stream_from(ge.num_vertices(), ge.memory_bytes(), &cbf_cfg, &edges);
    println!(
        "\ncounting Bloom: removals supported: {}",
        cbf.remove_supported()
    );
    // Retire the oldest 5 % of edges in place — no rebuild.
    let (retired, surviving) = edges.split_at(edges.len() / 20);
    let t0 = Instant::now();
    for batch in retired.chunks(64) {
        cbf.remove_batch(batch);
    }
    let dt = t0.elapsed().as_secs_f64();
    println!(
        "removed {} retired edges in {:.1} ms ({:.0} ns/edge)",
        retired.len(),
        dt * 1e3,
        dt * 1e9 / retired.len().max(1) as f64
    );
    // The shrunken sketches answer exactly like a rebuild of the
    // surviving edges (same budget base, so same sketch parameters).
    let g2 = pg_graph::CsrGraph::from_edges(ge.num_vertices(), surviving);
    let survivor_rebuild = ProbGraph::build_over(
        ge.num_vertices(),
        ge.memory_bytes(),
        |w| g2.neighbors(w as u32),
        &cbf_cfg,
    );
    let mut max_dev: f64 = 0.0;
    for &(a, b) in surviving.iter().take(5000) {
        max_dev = max_dev.max(
            (cbf.estimate_intersection(a, b) - survivor_rebuild.estimate_intersection(a, b)).abs(),
        );
    }
    assert_eq!(max_dev, 0.0, "removal must match the survivor rebuild");
    println!("estimates match a from-scratch build of the surviving edges exactly");
}
