//! Concurrent serving: stream a timestamped edge list through shard
//! lanes while a query thread tracks live triangle counts across epochs.
//!
//! `ShardedProbGraph` splits the vertex universe into contiguous shards
//! — one single-writer `SketchStore` lane each — and publishes immutable
//! epoch snapshots through a lock-free epoch cell. The writer here plays
//! an edge stream in timestamp order, publishing an epoch per tick; a
//! reader thread concurrently pins whatever epoch is current and
//! estimates the triangle count of that prefix (each edge `{u, v}` of
//! the prefix contributes `|N_u ∩ N_v|̂`, and every triangle is counted
//! once per edge, so the sum divides by 3). No locks anywhere on the
//! query path — readers never block the stream, the stream never blocks
//! readers, and each pinned epoch is bit-identical to a serial build of
//! its prefix.
//!
//! Run with: `cargo run --release --example serving`

use probgraph::oracle::{IntersectionOracle, OracleVisitor};
use probgraph::serving::ShardedProbGraph;
use probgraph::{PgConfig, Representation};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

/// One tick's worth of stream edges — each publish makes one epoch, so
/// epoch `k` serves exactly the first `k * TICK` edges.
const TICK: usize = 256;

/// Sums `|N_u ∩ N_v|̂` over a slice of edges through the batched row
/// path, yielding `3 × (estimated triangles)` of the edge prefix.
struct TriangleMass<'a> {
    edges: &'a [(u32, u32)],
}

impl OracleVisitor for TriangleMass<'_> {
    type Output = f64;
    fn visit<O: IntersectionOracle>(self, o: &O) -> f64 {
        let mut row = Vec::new();
        let mut mass = 0.0;
        let mut i = 0;
        // Group the prefix by source vertex (edge lists are sorted), so
        // each group rides one estimate_row call.
        while i < self.edges.len() {
            let u = self.edges[i].0;
            let mut vs: Vec<u32> = Vec::new();
            while i < self.edges.len() && self.edges[i].0 == u {
                vs.push(self.edges[i].1);
                i += 1;
            }
            o.estimate_row(u, &vs, &mut row);
            mass += row.iter().map(|x| x.max(0.0)).sum::<f64>();
        }
        mass
    }
}

fn main() {
    // The stream: a scale-13 Kronecker graph whose edge list arrives in
    // timestamp order, TICK edges per tick.
    let g = pg_graph::gen::kronecker(13, 16, 42);
    let edges = g.edge_list();
    let cfg = PgConfig::new(Representation::Bloom { b: 2 }, 0.25);
    let n_ticks = edges.len().div_ceil(TICK);
    println!(
        "stream: n={} m={} | {} ticks of {} edges",
        g.num_vertices(),
        edges.len(),
        n_ticks,
        TICK
    );

    let mut srv = ShardedProbGraph::new(g.num_vertices(), g.memory_bytes(), &cfg);
    println!(
        "serving layer: {} shard lanes (PG_SHARDS/topology-resolved), params {:?}",
        srv.shards(),
        srv.params()
    );

    let reader = srv.reader();
    let stop = AtomicBool::new(false);
    let t0 = Instant::now();

    let (queries, history) = std::thread::scope(|scope| {
        // The query thread: pin whatever epoch is live, estimate the
        // triangle count of that prefix, remember one sample per epoch.
        let handle = scope.spawn(|| {
            let mut history: Vec<(u64, f64)> = Vec::new();
            let mut queries = 0usize;
            loop {
                let done = stop.load(Ordering::Relaxed);
                let snap = reader.snapshot();
                let epoch = snap.epoch();
                let prefix = &edges[..(epoch as usize * TICK).min(edges.len())];
                let tri = snap.with_oracle(TriangleMass { edges: prefix }) / 3.0;
                queries += 1;
                if history.last().map(|&(e, _)| e) != Some(epoch) {
                    history.push((epoch, tri));
                }
                if done {
                    return (queries, history);
                }
            }
        });

        // The writer: absorb one tick, publish one epoch — queries see
        // each prefix as an immutable snapshot the moment it lands.
        for tick in edges.chunks(TICK) {
            srv.apply_batch(tick);
            srv.publish_epoch();
        }
        stop.store(true, Ordering::Relaxed);
        handle.join().unwrap()
    });

    let dt = t0.elapsed().as_secs_f64();
    println!(
        "streamed {} edges + {} publishes in {:.1} ms ({:.0} ns/edge) \
         while serving {} concurrent queries",
        edges.len(),
        srv.epoch(),
        dt * 1e3,
        dt * 1e9 / edges.len() as f64,
        queries
    );

    // The triangle estimate grows with the stream; print a few sampled
    // epochs the query thread actually pinned.
    for &(epoch, tri) in history
        .iter()
        .step_by((history.len() / 6).max(1))
        .chain(history.last().filter(|&&(e, _)| e == srv.epoch()))
    {
        println!(
            "  epoch {:>4}: {:>7} edges live, ~{:.0} triangles",
            epoch,
            (epoch as usize * TICK).min(edges.len()),
            tri
        );
    }

    // The serving guarantee: the final epoch answers *exactly* like an
    // offline `ProbGraph::build` of the whole graph — same sketches, bit
    // for bit — with the exact triangle count alongside for scale.
    let final_est = reader.query_with_oracle(TriangleMass { edges: &edges }) / 3.0;
    let offline = probgraph::ProbGraph::build(&g, &cfg);
    let offline_est = offline.with_oracle(TriangleMass { edges: &edges }) / 3.0;
    assert_eq!(
        final_est, offline_est,
        "a drained epoch must equal the offline build bit-for-bit"
    );
    let exact = probgraph::algorithms::triangles::count_exact(&g) as f64;
    println!(
        "final epoch {}: ~{:.0} triangles == offline rebuild's estimate exactly \
         ({} exact, {:+.1} % sketch error at this budget)",
        srv.epoch(),
        final_est,
        exact,
        100.0 * (final_est - exact) / exact
    );
}
