//! Community recovery on a planted-partition graph.
//!
//! Ground-truth evaluation of Jarvis–Patrick clustering (Listing 4): plant
//! four communities, cluster with exact and ProbGraph similarities, and
//! measure how well the recovered clusters match the planted ones
//! (pairwise precision/recall over co-clustered vertex pairs).
//!
//! Run with: `cargo run --release --example community_recovery`

use pg_graph::gen::planted_partition;
use probgraph::algorithms::clustering::{jarvis_patrick_exact, jarvis_patrick_pg, SimilarityKind};
use probgraph::algorithms::dsu::Dsu;
use probgraph::{PgConfig, ProbGraph, Representation};

/// Pairwise precision/recall of a clustering against ground truth.
fn pair_scores(n: usize, edges: &[(u32, u32)], selected: &[bool], truth: &[u32]) -> (f64, f64) {
    let mut dsu = Dsu::new(n);
    for (i, &(u, v)) in edges.iter().enumerate() {
        if selected[i] {
            dsu.union(u, v);
        }
    }
    let mut tp = 0u64;
    let mut fp = 0u64;
    let mut fnn = 0u64;
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            let same_pred = dsu.same(u, v);
            let same_true = truth[u as usize] == truth[v as usize];
            match (same_pred, same_true) {
                (true, true) => tp += 1,
                (true, false) => fp += 1,
                (false, true) => fnn += 1,
                _ => {}
            }
        }
    }
    let precision = if tp + fp == 0 {
        0.0
    } else {
        tp as f64 / (tp + fp) as f64
    };
    let recall = if tp + fnn == 0 {
        0.0
    } else {
        tp as f64 / (tp + fnn) as f64
    };
    (precision, recall)
}

fn main() {
    let (g, truth) = planted_partition(600, 4, 0.50, 0.015, 17);
    println!(
        "planted-partition graph: n={}, m={}, 4 communities of 150",
        g.num_vertices(),
        g.num_edges()
    );
    let edges = g.edge_list();
    let kind = SimilarityKind::Jaccard;
    // Estimators shift the similarity scale slightly (BF overestimates
    // Jaccard), so each scheme is evaluated at its best threshold over a
    // small sweep — the paper's "tunable tradeoff" in action.
    let taus = [0.06, 0.08, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35];
    let f1 = |p: f64, r: f64| {
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    };

    let mut best = (0.0, 0.0, 0.0, 0usize);
    for &tau in &taus {
        let c = jarvis_patrick_exact(&g, kind, tau);
        let (p, r) = pair_scores(g.num_vertices(), &edges, &c.selected, &truth);
        if f1(p, r) > best.0 {
            best = (f1(p, r), p, r, c.num_clusters);
        }
    }
    println!(
        "\nexact JP  : {} clusters, pairwise precision {:.3} recall {:.3} (F1 {:.3})",
        best.3, best.1, best.2, best.0
    );

    for (label, rep, s) in [
        ("PG-BF 25%", Representation::Bloom { b: 2 }, 0.25),
        ("PG-BF 10%", Representation::Bloom { b: 2 }, 0.10),
        ("PG-1H 25%", Representation::OneHash, 0.25),
        ("PG-1H 10%", Representation::OneHash, 0.10),
    ] {
        let pg = ProbGraph::build(&g, &PgConfig::new(rep, s));
        let mut best = (0.0, 0.0, 0.0, 0usize);
        for &tau in &taus {
            let c = jarvis_patrick_pg(&g, &pg, kind, tau);
            let (p, r) = pair_scores(g.num_vertices(), &edges, &c.selected, &truth);
            if f1(p, r) > best.0 {
                best = (f1(p, r), p, r, c.num_clusters);
            }
        }
        println!(
            "{label}: {} clusters, pairwise precision {:.3} recall {:.3} (F1 {:.3})",
            best.3, best.1, best.2, best.0
        );
    }
    println!("\nEach scheme evaluated at its best threshold over τ ∈ {taus:?}:");
    println!("the sketch similarities recover the planted communities at an");
    println!("operating point close to the exact one — Listing 4 end to end.");
}
