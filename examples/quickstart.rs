//! Quickstart: the Listing-6 workflow of the paper.
//!
//! Build a graph, build its ProbGraph representation under a storage
//! budget, and compare exact vs approximate set-intersection cardinalities
//! and Jaccard similarities, then run approximate Triangle Counting.
//!
//! Run with: `cargo run --release --example quickstart`

use pg_graph::gen;
use probgraph::algorithms::triangles;
use probgraph::{intersect, PgConfig, ProbGraph, Representation};

fn main() {
    // A Kronecker power-law graph, as in the paper's synthetic evaluation.
    let g = gen::kronecker(12, 16, 42);
    println!(
        "graph: n={}, m={}, max degree={}",
        g.num_vertices(),
        g.num_edges(),
        g.max_degree()
    );

    // ProbGraph with Bloom filters and a 25 % storage budget (Listing 6).
    let pg = ProbGraph::build(&g, &PgConfig::new(Representation::Bloom { b: 2 }, 0.25));
    println!(
        "sketches: {} bytes ({:.1} % of CSR)",
        pg.memory_bytes(),
        100.0 * pg.memory_bytes() as f64 / g.memory_bytes() as f64
    );

    // Exact vs approximate |N_u ∩ N_v| and Jaccard for a few edges.
    println!("\nedge  exact|∩|  approx|∩|  exactJ   approxJ");
    for (u, v) in g.edges().take(8) {
        let exact = intersect::intersect_card(g.neighbors(u), g.neighbors(v));
        let approx = pg.estimate_intersection(u, v);
        let jx = probgraph::algorithms::similarity::jaccard(&g, u, v);
        let ja = pg.estimate_jaccard(u, v);
        println!("({u:>4},{v:>4})  {exact:>6}  {approx:>9.1}  {jx:>7.3}  {ja:>7.3}");
    }

    // Approximate triangle counting end to end.
    let exact_tc = triangles::count_exact(&g);
    let approx_tc = triangles::count_approx(&g, &PgConfig::new(Representation::OneHash, 0.25));
    println!("\ntriangles: exact={exact_tc}, PG(1-hash)≈{approx_tc:.0}");
    println!(
        "relative count: {:.3}",
        probgraph::relative_count(approx_tc, exact_tc as f64)
    );
}
