//! Community cohesion via approximate triangle counting.
//!
//! §III-A of the paper: for a vertex subset `S`, the network cohesion is
//! `TC[S] / C(|S|, 3)`; communities are dense (cohesive) regions. This
//! example plants two communities of different density inside a sparse
//! background, then ranks them by cohesion computed with exact and
//! ProbGraph triangle counting — the ranking (which the analysis cares
//! about) survives the approximation.
//!
//! Run with: `cargo run --release --example community_cohesion`

use pg_graph::{gen, CsrGraph, VertexId};
use probgraph::algorithms::triangles;
use probgraph::{PgConfig, Representation};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Induced subgraph of `g` over `verts` (relabeled 0..len).
fn induced(g: &CsrGraph, verts: &[VertexId]) -> CsrGraph {
    let index: std::collections::HashMap<VertexId, u32> = verts
        .iter()
        .enumerate()
        .map(|(i, &v)| (v, i as u32))
        .collect();
    let mut edges = Vec::new();
    for &v in verts {
        for &u in g.neighbors(v) {
            if v < u {
                if let (Some(&a), Some(&b)) = (index.get(&v), index.get(&u)) {
                    edges.push((a, b));
                }
            }
        }
    }
    CsrGraph::from_edges(verts.len(), &edges)
}

fn cohesion_exact(g: &CsrGraph) -> f64 {
    let s = g.num_vertices() as f64;
    triangles::count_exact(g) as f64 / (s * (s - 1.0) * (s - 2.0) / 6.0)
}

fn cohesion_pg(g: &CsrGraph) -> f64 {
    let s = g.num_vertices() as f64;
    let tc = triangles::count_approx(g, &PgConfig::new(Representation::Bloom { b: 1 }, 0.33));
    tc / (s * (s - 1.0) * (s - 2.0) / 6.0)
}

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    let n = 3000usize;
    let tight: Vec<VertexId> = (0..150).collect(); // dense community
    let loose: Vec<VertexId> = (150..350).collect(); // sparser community
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    for (group, p) in [(&tight, 0.5f64), (&loose, 0.15)] {
        for i in 0..group.len() {
            for j in (i + 1)..group.len() {
                if rng.gen::<f64>() < p {
                    edges.push((group[i], group[j]));
                }
            }
        }
    }
    // Sparse background noise.
    for _ in 0..4 * n {
        let a = rng.gen_range(0..n as u32);
        let b = rng.gen_range(0..n as u32);
        edges.push((a, b));
    }
    let g = CsrGraph::from_edges(n, &edges);
    println!("graph: n={}, m={}", g.num_vertices(), g.num_edges());

    let background: Vec<VertexId> = (2000..2200).collect();
    for (name, verts) in [
        ("tight community  (p=0.50)", &tight),
        ("loose community  (p=0.15)", &loose),
        ("background slice (noise) ", &background),
    ] {
        let sub = induced(&g, verts);
        println!(
            "{name}: cohesion exact={:.5}  PG≈{:.5}",
            cohesion_exact(&sub),
            cohesion_pg(&sub)
        );
    }
    // Whole-graph clustering coefficient 3·TC/C(n,3) (same machinery).
    let whole = gen::kronecker(10, 8, 5);
    println!(
        "\nKronecker 2^10 whole-graph cohesion: exact={:.2e}  PG≈{:.2e}",
        cohesion_exact(&whole),
        cohesion_pg(&whole)
    );
}
