#!/usr/bin/env python3
"""Schema + regression gates for BENCH_kernels.json (CI and local use).

The speedup gates enforce ">= 1.0" with a 10% shared-runner noise floor:
a real multi-lane or hoisted-dispatch regression sits well below 0.90
persistently, while median-of-reps jitter on a noisy runner does not.
The committed full-scale BENCH_kernels.json holds >= 1.0 everywhere.
"""

import json
import sys

path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_kernels.json"
d = json.load(open(path))

for key in ("workload", "sketch_params", "host", "ns_per_edge", "fused_vs_naive", "row_batch",
            "dispatch", "tiling", "streaming", "streaming_removal", "snapshot", "serving",
            "stratified", "distributed"):
    assert key in d, f"missing section: {key}"

host = d["host"]
for field in ("l1d_bytes", "l2_bytes", "l3_bytes", "line_bytes", "tile_bytes"):
    assert isinstance(host.get(field), int), f"host.{field}"
    assert host[field] > 0, f"host.{field} must be positive"
assert host["l1d_bytes"] <= host["l2_bytes"] <= host["l3_bytes"], "host cache sizes out of order"

assert d["dispatch"], "dispatch section is empty"
for name, e in d["dispatch"].items():
    for field in ("per_edge_ns", "hoisted_ns", "speedup"):
        assert isinstance(e.get(field), (int, float)), f"dispatch.{name}.{field}"
    assert e["speedup"] >= 0.90, f"dispatch.{name} regressed: {e['speedup']}"

for name in ("exact_merge", "bf_and_fused", "mh_khash", "mh_1hash", "kmv", "hll"):
    assert name in d["ns_per_edge"], f"missing kernel: {name}"

rb = d["row_batch"]
for name in ("bf_and", "bf_limit", "bf_or", "khash", "kmv", "hll"):
    e = rb.get(name)
    assert e is not None, f"missing row_batch entry: {name}"
    for field in ("scalar_row_ns", "multi_ns", "speedup"):
        assert isinstance(e.get(field), (int, float)), f"row_batch.{name}.{field}"
    assert e["speedup"] >= 0.90, f"row_batch.{name} multi-lane slower than scalar row: {e['speedup']}"
    if name.startswith("bf_"):
        lanes = e.get("lanes")
        assert isinstance(lanes, dict), f"row_batch.{name}.lanes missing (Bloom entries carry the per-lane breakdown)"
        for lane in ("2", "3", "4"):
            assert isinstance(lanes.get(lane), (int, float)), f"row_batch.{name}.lanes.{lane}"
            assert lanes[lane] > 0, f"row_batch.{name}.lanes.{lane} must be positive"

ti = d["tiling"]
for field in ("n", "m", "store_bytes"):
    assert isinstance(ti.get("workload", {}).get(field), int), f"tiling.workload.{field}"
plan = ti.get("plan", {})
for field in ("tile_ids", "batch", "window_bytes"):
    assert isinstance(plan.get(field), int), f"tiling.plan.{field}"
    assert plan[field] > 0, f"tiling.plan.{field} must be positive"
assert ti["workload"]["store_bytes"] > 2 * host["l2_bytes"], \
    "tiling workload store must exceed L2 (the regime the blocked schedule targets)"
for name in ("bf_and", "bf_limit", "bf_or"):
    e = ti.get(name)
    assert e is not None, f"missing tiling entry: {name}"
    for field in ("multi_ns", "tiled_ns", "speedup"):
        assert isinstance(e.get(field), (int, float)), f"tiling.{name}.{field}"
        assert e[field] > 0, f"tiling.{name}.{field} must be positive"
# Gate the blocked schedule on the AND sweep (the paper's headline kernel):
# on the out-of-cache tiling workload it must beat the flat multi-lane
# sweep by >= 1.3x on a quiet host; 1.15 leaves the shared-runner noise
# floor without letting a tiled path that merely ties (i.e. whose blocking
# no longer pays for its bookkeeping) slip through. The other strategies
# share the traversal, so they are gated at the looser no-regression floor.
assert ti["bf_and"]["speedup"] >= 1.15, \
    f"tiling.bf_and blocked sweep no longer beats the flat sweep: {ti['bf_and']['speedup']}"
for name in ("bf_limit", "bf_or"):
    assert ti[name]["speedup"] >= 0.90, \
        f"tiling.{name} blocked sweep regressed vs flat: {ti[name]['speedup']}"

st = d["streaming"]
for name in ("bf2", "cbloom", "khash", "onehash", "kmv", "hll"):
    e = st.get(name)
    assert e is not None, f"missing streaming entry: {name}"
    for field in ("ns_per_insert", "single_insert_ns", "rebuild_ns", "update_vs_rebuild",
                  "crossover_edges"):
        assert isinstance(e.get(field), (int, float)), f"streaming.{name}.{field}"
        assert e[field] > 0, f"streaming.{name}.{field} must be positive"
    # Gate update-vs-rebuild at >= 1.0 with the shared 10% noise floor: a
    # single-edge in-place update that fails to beat a full sketch rebuild
    # means the incremental path has rotted (real ratios sit in the
    # thousands, so 0.90 only filters runner jitter, not regressions).
    assert e["update_vs_rebuild"] >= 0.90, \
        f"streaming.{name} update no faster than rebuild: {e['update_vs_rebuild']}"

sr = d["streaming_removal"]
for name in ("cbloom",):
    e = sr.get(name)
    assert e is not None, f"missing streaming_removal entry: {name}"
    for field in ("insert_ns", "remove_ns", "single_remove_ns", "remove_vs_insert"):
        assert isinstance(e.get(field), (int, float)), f"streaming_removal.{name}.{field}"
        assert e[field] > 0, f"streaming_removal.{name}.{field} must be positive"
    # Sticky-saturation exposure: 4-bit counters that hit 15 freeze and
    # survive removals forever after. The stat must be reported; on the
    # bench workload (25% budget, ~1% live tail) no counter should
    # saturate — a nonzero count here means the budget planner or the
    # counter packing regressed, not runner noise.
    assert isinstance(e.get("saturated_counters"), int), \
        f"streaming_removal.{name}.saturated_counters"
    assert e["saturated_counters"] == 0, \
        f"streaming_removal.{name} has {e['saturated_counters']} sticky-saturated counters"
    # Gate removal ns/edge against the insert path at >= 1.0 with the
    # shared 10% noise floor: a counter decrement mirrors the counter
    # increment its insert performed, so batched removal drifting past
    # ~10% slower than batched insert means the deletion path has rotted.
    assert e["remove_vs_insert"] >= 0.90, \
        f"streaming_removal.{name} removal slower than insert: {e['remove_vs_insert']}"

sn = d["snapshot"]
for name in ("bf2", "cbloom", "khash", "onehash", "kmv", "hll"):
    e = sn.get(name)
    assert e is not None, f"missing snapshot entry: {name}"
    for field in ("bytes", "save_gbps", "load_gbps", "load_vs_build"):
        assert isinstance(e.get(field), (int, float)), f"snapshot.{name}.{field}"
        assert e[field] > 0, f"snapshot.{name}.{field} must be positive"
    # The validating load re-checks every checksum and derived invariant
    # but still only streams flat arrays; it must at least keep pace with
    # rebuilding the sketches from the graph (real ratios are well above
    # 1, so 0.90 only filters runner jitter).
    assert e["load_vs_build"] >= 0.90, \
        f"snapshot.{name} load slower than rebuild: {e['load_vs_build']}"

sv = d["serving"]
wl = sv.get("workload", {})
for field in ("ops", "write_batch", "publish_every", "dests", "threads"):
    assert isinstance(wl.get(field), int), f"serving.workload.{field}"
    assert wl[field] > 0, f"serving.workload.{field} must be positive"
for mix in ("mix0", "mix10", "mix50"):
    e = sv.get("serial", {}).get(mix)
    assert e is not None, f"missing serving.serial.{mix}"
    for field in ("ms", "qps"):
        assert isinstance(e.get(field), (int, float)), f"serving.serial.{mix}.{field}"
        assert e[field] > 0, f"serving.serial.{mix}.{field} must be positive"
for shards in ("shards1", "shards2", "shards4"):
    cell = sv.get("sharded", {}).get(shards)
    assert cell is not None, f"missing serving.sharded.{shards}"
    for mix in ("mix0", "mix10", "mix50"):
        e = cell.get(mix)
        assert e is not None, f"missing serving.sharded.{shards}.{mix}"
        for field in ("ms", "qps"):
            assert isinstance(e.get(field), (int, float)), f"serving.sharded.{shards}.{mix}.{field}"
            assert e[field] > 0, f"serving.sharded.{shards}.{mix}.{field} must be positive"
for field in ("mixed_vs_serial_1shard", "mixed_vs_serial_4shard"):
    assert isinstance(sv.get(field), (int, float)), f"serving.{field}"
    assert sv[field] > 0, f"serving.{field} must be positive"
# The concurrency gates only mean something when the runner can actually
# run the reader and writer (and the 4 lane drains) in parallel — on a
# 1-CPU box the threads time-slice one core and sharded serving can only
# lose. Gate by the recorded thread count:
#  - >= 2 threads: the query-dominated 10% mix on ONE shard measures pure
#    serving overhead (epoch pins, publish gathers, queue routing); it
#    must hold >= 0.90x serial (the shared 10% noise floor).
#  - >= 4 threads: the write-heavy 50% mix on FOUR shards must win
#    outright — ingest overlaps queries and the lane drains fork. The
#    1.3x target minus the noise floor gates at 1.17.
if wl["threads"] >= 2:
    assert sv["mixed_vs_serial_1shard"] >= 0.90, \
        f"serving 1-shard mixed overhead regressed: {sv['mixed_vs_serial_1shard']}"
if wl["threads"] >= 4:
    assert sv["mixed_vs_serial_4shard"] >= 1.17, \
        f"serving 4-shard mixed no longer beats serial: {sv['mixed_vs_serial_4shard']}"

sf = d["stratified"]
swl = sf.get("workload", {})
assert isinstance(swl.get("model"), str), "stratified.workload.model"
assert isinstance(swl.get("spec"), str), "stratified.workload.spec"
for field in ("n", "m", "seed"):
    assert isinstance(swl.get(field), int), f"stratified.workload.{field}"
    assert swl[field] >= 0, f"stratified.workload.{field} must be non-negative"
for field in ("gamma", "budget", "exact_tc"):
    assert isinstance(swl.get(field), (int, float)), f"stratified.workload.{field}"
    assert swl[field] > 0, f"stratified.workload.{field} must be positive"
for name in ("bf2", "kmv"):
    e = sf.get(name)
    assert e is not None, f"missing stratified entry: {name}"
    for plan in ("uniform", "stratified"):
        cell = e.get(plan)
        assert cell is not None, f"missing stratified.{name}.{plan}"
        for field in ("relerr", "ms", "snapshot_bytes"):
            assert isinstance(cell.get(field), (int, float)), f"stratified.{name}.{plan}.{field}"
            assert cell[field] > 0, f"stratified.{name}.{plan}.{field} must be positive"
    assert isinstance(e["stratified"].get("n_strata"), int), f"stratified.{name}.n_strata"
    assert isinstance(e.get("runtime_ratio"), (int, float)), f"stratified.{name}.runtime_ratio"
# Gates for bf2 (the paper's headline representation) on the fixed skewed
# workload: under the SAME storage budget the degree-stratified plan must
# (a) resolve at least 2 strata (a collapsed plan gates nothing), (b) beat
# the uniform plan's TC relative error — wider hub filters are the whole
# point — and (c) keep `runtime_ratio` (uniform ms / stratified ms) at the
# shared 0.90 noise floor: the heterogeneous row sweep prices within ~10%
# of the uniform kernel. The relerr comparison is deterministic (fixed
# graph seed, seeded hashes), so it gates exactly, not within noise.
# kmv is reported but not gated: its coarse k granularity can collapse
# the plan and its estimator is not the paper's headline.
bf2s = sf["bf2"]
assert bf2s["stratified"]["n_strata"] >= 2, \
    f"stratified.bf2 plan collapsed to {bf2s['stratified']['n_strata']} stratum"
assert bf2s["stratified"]["relerr"] <= bf2s["uniform"]["relerr"], \
    (f"stratified.bf2 accuracy no longer beats uniform: "
     f"{bf2s['stratified']['relerr']} vs {bf2s['uniform']['relerr']}")
assert bf2s["runtime_ratio"] >= 0.90, \
    f"stratified.bf2 row sweep slower than uniform beyond noise: {bf2s['runtime_ratio']}"

dx = d["distributed"]
dwl = dx.get("workload", {})
assert isinstance(dwl.get("graph"), str), "distributed.workload.graph"
for field in ("n", "m"):
    assert isinstance(dwl.get(field), int), f"distributed.workload.{field}"
    assert dwl[field] > 0, f"distributed.workload.{field} must be positive"
assert dx.get("budget_base") == "oriented_dag_bytes", \
    "distributed.budget_base: the s=25% budget is defined against the oriented DAG footprint"
for rep in ("bf", "onehash"):
    cells = dx.get(rep)
    assert cells is not None, f"missing distributed.{rep}"
    for parts in ("parts2", "parts4", "parts16"):
        e = cells.get(parts)
        assert e is not None, f"missing distributed.{rep}.{parts}"
        for field in ("measured_sketch_bytes", "measured_exact_bytes",
                      "model_sketch_bytes", "model_exact_bytes"):
            assert isinstance(e.get(field), int), f"distributed.{rep}.{parts}.{field}"
            assert e[field] > 0, f"distributed.{rep}.{parts}.{field} must be positive"
        for field in ("measured_reduction", "distributed_tc", "single_process_tc"):
            assert isinstance(e.get(field), (int, float)), f"distributed.{rep}.{parts}.{field}"
        # The distributed count must equal the single-process estimate
        # BIT-FOR-BIT: both sides sum per-part partials in part order over
        # deterministically rebuilt sketches, so any drift is a real
        # exchange bug, never float noise.
        assert e["distributed_tc"] == e["single_process_tc"], \
            f"distributed.{rep}.{parts}: multi-process TC diverged from single-process"
        # The corrected model must track the socket within 10%; it is
        # byte-exact on the committed file, so 10% only absorbs future
        # wire-format slack, not a wrong dedupe or wire-size formula.
        for kind in ("sketch", "exact"):
            model, measured = e[f"model_{kind}_bytes"], e[f"measured_{kind}_bytes"]
            err = abs(model - measured) / max(measured, 1)
            assert err <= 0.10, \
                f"distributed.{rep}.{parts}: model {kind} bytes off by {err:.1%}"
# Headline gate (paper §VIII-F): Bloom s=25% at 4 parts must cut measured
# communication at least 2x vs shipping exact N+ rows. OneHash is reported
# but not gated here — its honest wire cost (8 B/element) is exactly what
# the old 4*k model hid.
bf4 = dx["bf"]["parts4"]["measured_reduction"]
assert bf4 >= 2.0, f"distributed.bf.parts4 measured reduction below 2x: {bf4}"

print(f"{path} ok:", {k: round(v["speedup"], 3) for k, v in rb.items()},
      "| tiling tiled-vs-multi:",
      {k: round(v["speedup"], 2) for k, v in ti.items() if isinstance(v.get("speedup"), (int, float))},
      "| streaming update-vs-rebuild:",
      {k: round(v["update_vs_rebuild"]) for k, v in st.items()},
      "| removal remove-vs-insert:",
      {k: round(v["remove_vs_insert"], 2) for k, v in sr.items()},
      "| snapshot load-vs-build:",
      {k: round(v["load_vs_build"], 1) for k, v in sn.items()},
      "| serving vs serial (threads=%d):" % wl["threads"],
      {"1shard_mix10": round(sv["mixed_vs_serial_1shard"], 2),
       "4shard_mix50": round(sv["mixed_vs_serial_4shard"], 2)},
      "| stratified bf2:",
      {"relerr": "%.3f->%.3f" % (bf2s["uniform"]["relerr"], bf2s["stratified"]["relerr"]),
       "runtime_ratio": round(bf2s["runtime_ratio"], 2),
       "n_strata": bf2s["stratified"]["n_strata"]},
      "| distributed reduction:",
      {f"{rep}_{p}": round(dx[rep][f"parts{p}"]["measured_reduction"], 2)
       for rep in ("bf", "onehash") for p in (2, 4, 16)})
