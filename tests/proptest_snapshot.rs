//! Property-based tests for `probgraph::snapshot`: round-trip fidelity on
//! arbitrary graphs across every representation, no-panic loading of
//! arbitrary byte soup, and the counting-Bloom saturated-counter edge case.

use pg_graph::CsrGraph;
use probgraph::{PgConfig, ProbGraph, Representation};
use proptest::collection::vec;
use proptest::prelude::*;

fn representations() -> Vec<Representation> {
    vec![
        Representation::Bloom { b: 1 },
        Representation::Bloom { b: 2 },
        Representation::CountingBloom { b: 2 },
        Representation::KHash,
        Representation::OneHash,
        Representation::Kmv,
        Representation::Hll,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// save → load → re-save is bit-identical and answers identically,
    /// for every representation, on arbitrary edge lists and budgets.
    #[test]
    fn snapshots_round_trip_on_arbitrary_graphs(
        edges in vec((0u32..60, 0u32..60), 0..400),
        budget in 0.05f64..1.0,
    ) {
        let g = CsrGraph::from_edges(60, &edges);
        for rep in representations() {
            let pg = ProbGraph::build(&g, &PgConfig::new(rep, budget));
            let bytes = pg.snapshot_to_bytes();
            let back = ProbGraph::from_snapshot_bytes(&bytes)
                .map_err(|e| TestCaseError::fail(format!("{rep:?}: {e}")))?;
            prop_assert_eq!(back.snapshot_to_bytes(), bytes);
            prop_assert_eq!(back.sizes(), pg.sizes());
            for &(u, v) in edges.iter().take(40) {
                prop_assert_eq!(
                    back.estimate_intersection(u, v),
                    pg.estimate_intersection(u, v)
                );
            }
        }
    }

    /// Arbitrary byte soup must never panic the loader or the inspector —
    /// an unwind here fails the test.
    #[test]
    fn arbitrary_bytes_never_panic_the_loader(
        words in vec(0u32..u32::MAX, 0..512),
        trim in 0usize..4,
    ) {
        let mut bytes: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
        bytes.truncate(bytes.len().saturating_sub(trim));
        let _ = ProbGraph::from_snapshot_bytes(&bytes);
        let _ = probgraph::snapshot::inspect(&bytes);
    }
}

#[test]
fn cbf_saturated_counters_round_trip() {
    // A 1000-leaf star under a starvation budget pins the planner at the
    // minimum 64-bit filter: the center set makes 2000 counter increments
    // across 64 four-bit counters, so by pigeonhole some counter takes
    // ≥ 32 hits and sticks at the saturation value 15. The snapshot must
    // carry saturated counters faithfully, and a loaded copy must keep
    // behaving identically under further (sticky-counter) removals.
    let edges: Vec<(u32, u32)> = (1..=1000u32).map(|v| (0, v)).collect();
    let g = CsrGraph::from_edges(1001, &edges);
    let cfg = PgConfig::new(Representation::CountingBloom { b: 2 }, 0.001);
    let mut pg = ProbGraph::build(&g, &cfg);
    let bytes = pg.snapshot_to_bytes();
    let mut back = ProbGraph::from_snapshot_bytes(&bytes).unwrap();
    assert_eq!(back.snapshot_to_bytes(), bytes);

    let removals: Vec<(u32, u32)> = (1..=500u32).map(|v| (0, v)).collect();
    pg.remove_batch(&removals);
    back.remove_batch(&removals);
    assert_eq!(back.snapshot_to_bytes(), pg.snapshot_to_bytes());
    for v in [1u32, 600, 1000] {
        assert_eq!(
            back.estimate_intersection(0, v),
            pg.estimate_intersection(0, v)
        );
    }
}
