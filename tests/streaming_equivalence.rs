//! Differential harness for the streaming `MutableOracle` path: every
//! in-place incremental update must be indistinguishable from a
//! from-scratch rebuild.
//!
//! For random edge-stream prefixes (proptest-generated graphs and split
//! points):
//!
//! * **bit-identical sketches** for the naturally-mergeable
//!   representations — Bloom word windows + cached popcounts, k-hash
//!   signature slots, HLL register windows;
//! * **estimator-identical outputs** for the sample-based ones — KMV and
//!   bottom-k `estimate` / `estimate_row_into` agree exactly after the
//!   lazy re-sort restores their sorted-slice views;
//! * **algorithm-identical results** — triangle counting and
//!   Jarvis–Patrick clustering through `with_oracle` agree between the
//!   two build paths;
//! * the `estimate_row_into` buffer-reuse contract holds **across a
//!   mutation**: a warm row buffer is truncated, never reallocated, and
//!   every slot is overwritten after an `insert_edge`.

use probgraph::algorithms::{clustering, triangles};
use probgraph::oracle::{IntersectionOracle, MutableOracle, OracleVisitor};
use probgraph::{BfEstimator, PgConfig, ProbGraph, Representation, SketchStore};
use proptest::prelude::*;

/// The configurations under differential test: every representation, and
/// every Bloom estimator variant (the estimator tail reads the mutated
/// sizes, so all three must stay consistent).
fn all_cfgs() -> Vec<(PgConfig, &'static str)> {
    let mk = |r| PgConfig::new(r, 0.3).with_seed(0xD1FF);
    vec![
        (mk(Representation::Bloom { b: 1 }), "BF1"),
        (mk(Representation::Bloom { b: 2 }), "BF2"),
        (
            mk(Representation::Bloom { b: 2 }).with_bf_estimator(BfEstimator::Limit),
            "BF2-L",
        ),
        (
            mk(Representation::Bloom { b: 2 }).with_bf_estimator(BfEstimator::Or),
            "BF2-OR",
        ),
        (mk(Representation::KHash), "kH"),
        (mk(Representation::OneHash), "1H"),
        (mk(Representation::Kmv), "KMV"),
        (mk(Representation::Hll), "HLL"),
    ]
}

/// Streams `edges[..split]`, applies the rest in two uneven batches (the
/// second of size 1 when possible, so the single-edge path is always
/// exercised), and returns the incrementally-built ProbGraph.
fn stream_in_batches(
    n: usize,
    base_bytes: usize,
    cfg: &PgConfig,
    edges: &[(u32, u32)],
    split: usize,
) -> ProbGraph {
    let mut pg = ProbGraph::stream_from(n, base_bytes, cfg, &edges[..split]);
    let rest = &edges[split..];
    if let Some((last, bulk)) = rest.split_last() {
        pg.apply_batch(bulk);
        pg.insert_edge(last.0, last.1);
    }
    pg
}

/// Bit-identical sketch comparison for Bloom/k-hash/HLL; the sample-based
/// stores (KMV, bottom-k) are pinned through their estimators instead.
fn assert_stores_bit_identical(inc: &ProbGraph, full: &ProbGraph, label: &str) {
    match (inc.store(), full.store()) {
        (SketchStore::Bloom(a), SketchStore::Bloom(b)) => {
            for i in 0..full.len() {
                assert_eq!(a.words(i), b.words(i), "{label}: words of set {i}");
                assert_eq!(
                    a.count_ones(i),
                    b.count_ones(i),
                    "{label}: cached popcount of set {i}"
                );
            }
        }
        (SketchStore::KHash(a), SketchStore::KHash(b)) => {
            for i in 0..full.len() {
                assert_eq!(a.signature(i), b.signature(i), "{label}: signature {i}");
            }
        }
        (SketchStore::Hll(a), SketchStore::Hll(b)) => {
            for i in 0..full.len() {
                assert_eq!(a.registers(i), b.registers(i), "{label}: registers {i}");
            }
        }
        (SketchStore::OneHash(_), SketchStore::OneHash(_))
        | (SketchStore::Kmv(_), SketchStore::Kmv(_)) => {}
        _ => panic!("{label}: build paths resolved different representations"),
    }
}

/// Row-sweep visitor: estimates every vertex's row against all vertices
/// through the batched `estimate_row` path into one reused buffer.
struct AllRows<'a> {
    us: &'a [u32],
}

impl OracleVisitor for AllRows<'_> {
    type Output = Vec<f64>;
    fn visit<O: IntersectionOracle>(self, o: &O) -> Vec<f64> {
        let mut out = Vec::new();
        let mut row = Vec::new();
        for &v in self.us {
            o.estimate_row(v, self.us, &mut row);
            out.extend_from_slice(&row);
        }
        out
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Tentpole differential property: incremental build == rebuild, for
    /// every representation, at a random stream prefix.
    #[test]
    fn incremental_build_matches_rebuild(
        n in 12usize..48,
        density in 2usize..8,
        seed in 0u64..500,
        split_pct in 0usize..101,
    ) {
        let m = (n * density).min(n * (n - 1) / 2);
        let g = pg_graph::gen::erdos_renyi_gnm(n, m, seed);
        let edges = g.edge_list();
        let split = edges.len() * split_pct / 100;
        let us: Vec<u32> = (0..g.num_vertices() as u32).collect();
        for (cfg, label) in all_cfgs() {
            let full = ProbGraph::build(&g, &cfg);
            let inc = stream_in_batches(g.num_vertices(), g.memory_bytes(), &cfg, &edges, split);
            prop_assert!(inc.params() == full.params(), "{}: params differ", label);
            for v in 0..g.num_vertices() {
                prop_assert!(
                    inc.set_size(v) == full.set_size(v),
                    "{}: size of {} differs", label, v
                );
            }
            assert_stores_bit_identical(&inc, &full, label);
            // Estimator equivalence: pairwise and batched row paths.
            for &(u, v) in &edges {
                prop_assert!(
                    inc.estimate_intersection(u, v) == full.estimate_intersection(u, v),
                    "{}: estimate ({},{}) differs", label, u, v
                );
                prop_assert!(
                    inc.estimate_jaccard(u, v) == full.estimate_jaccard(u, v),
                    "{}: jaccard ({},{}) differs", label, u, v
                );
            }
            let rows_inc = inc.with_oracle(AllRows { us: &us });
            let rows_full = full.with_oracle(AllRows { us: &us });
            prop_assert!(rows_inc == rows_full, "{}: estimate_row_into sweep differs", label);
        }
    }

    /// Algorithms through `with_oracle` agree between the build paths:
    /// triangle counting over incrementally-streamed DAG sets, and
    /// Jarvis–Patrick clustering over streamed full neighborhoods.
    #[test]
    fn algorithms_agree_between_build_paths(
        n in 16usize..40,
        density in 3usize..9,
        seed in 0u64..500,
        split_pct in 0usize..101,
    ) {
        let m = (n * density).min(n * (n - 1) / 2);
        let g = pg_graph::gen::erdos_renyi_gnm(n, m, seed);
        let dag = pg_graph::orient_by_degree(&g);
        let arcs: Vec<(u32, u32)> = (0..dag.num_vertices() as u32)
            .flat_map(|v| dag.neighbors_plus(v).iter().map(move |&u| (v, u)))
            .collect();
        let split = arcs.len() * split_pct / 100;
        let edges = g.edge_list();
        let esplit = edges.len() * split_pct / 100;
        for (cfg, label) in all_cfgs() {
            // Oriented sets: stream the DAG arcs in two chunks.
            let full_dag = ProbGraph::build_dag(&dag, g.memory_bytes(), &cfg);
            let mut inc_dag =
                ProbGraph::stream_from(dag.num_vertices(), g.memory_bytes(), &cfg, &[]);
            inc_dag.apply_arcs(&arcs[..split]);
            inc_dag.apply_arcs(&arcs[split..]);
            // f64 reductions combine in an unspecified order under the
            // parallel runtime, so compare serial runs exactly.
            let (tc_full, tc_inc) = pg_parallel::with_threads(1, || {
                (
                    triangles::count_approx_on_dag(&dag, &full_dag),
                    triangles::count_approx_on_dag(&dag, &inc_dag),
                )
            });
            prop_assert!(tc_full == tc_inc, "{}: triangle count differs", label);
            // Full neighborhoods: clustering decisions are per-edge bools,
            // deterministic under any schedule.
            let full = ProbGraph::build(&g, &cfg);
            let inc = stream_in_batches(g.num_vertices(), g.memory_bytes(), &cfg, &edges, esplit);
            let c_full = clustering::jarvis_patrick_pg(
                &g, &full, clustering::SimilarityKind::Jaccard, 0.2,
            );
            let c_inc = clustering::jarvis_patrick_pg(
                &g, &inc, clustering::SimilarityKind::Jaccard, 0.2,
            );
            prop_assert!(c_full.selected == c_inc.selected, "{}: selected edges differ", label);
            prop_assert!(
                c_full.num_clusters == c_inc.num_clusters,
                "{}: cluster count differs", label
            );
        }
    }
}

/// The `estimate_row_into` reuse contract across a mutation: a row sweep
/// warms the buffer, an `insert_edge` mutates the sketches, and the next
/// sweep over a *narrower* row must truncate the warm buffer in place —
/// no reallocation, no stale slots — while reflecting the new edge.
#[test]
fn row_buffer_reuse_contract_survives_mutation() {
    let g = pg_graph::gen::erdos_renyi_gnm(60, 400, 3);
    let edges = g.edge_list();
    let wide: Vec<u32> = (0..g.num_vertices() as u32).collect();
    // A fresh edge between the two lowest-degree vertices not yet joined.
    let (a, b) = (0..g.num_vertices() as u32)
        .flat_map(|u| ((u + 1)..g.num_vertices() as u32).map(move |v| (u, v)))
        .find(|&(u, v)| !g.has_edge(u, v))
        .expect("graph is not complete");
    for (cfg, label) in all_cfgs() {
        let mut pg = ProbGraph::stream_from(g.num_vertices(), g.memory_bytes(), &cfg, &edges);
        struct Sweep<'a> {
            us: &'a [u32],
            buf: &'a mut Vec<f64>,
            v: u32,
        }
        impl OracleVisitor for Sweep<'_> {
            type Output = ();
            fn visit<O: IntersectionOracle>(self, o: &O) {
                o.estimate_row(self.v, self.us, self.buf);
            }
        }
        let mut buf = Vec::new();
        // 1. Wide sweep warms the buffer to n slots.
        pg.with_oracle(Sweep {
            us: &wide,
            buf: &mut buf,
            v: a,
        });
        assert_eq!(buf.len(), wide.len(), "{label}: warm width");
        let warm_ptr = buf.as_ptr();
        let warm_cap = buf.capacity();
        // 2. Mutate: sketches and sizes change underneath the buffer.
        pg.insert_edge(a, b);
        // 3. Narrow sweep after the mutation reuses the same allocation.
        let narrow = &wide[..wide.len() / 2];
        pg.with_oracle(Sweep {
            us: narrow,
            buf: &mut buf,
            v: a,
        });
        assert_eq!(buf.len(), narrow.len(), "{label}: truncated width");
        assert!(
            std::ptr::eq(warm_ptr, buf.as_ptr()) && buf.capacity() == warm_cap,
            "{label}: warm row buffer was reallocated across a mutation"
        );
        // Every surviving slot was overwritten with post-mutation values:
        // compare against a rebuild of the mutated graph.
        let mut with_new = edges.clone();
        with_new.push((a.min(b), a.max(b)));
        let g2 = pg_graph::CsrGraph::from_edges(g.num_vertices(), &with_new);
        let rebuilt = ProbGraph::build_over(
            g.num_vertices(),
            g.memory_bytes(),
            |v| g2.neighbors(v as u32),
            &cfg,
        );
        for (t, &u) in narrow.iter().enumerate() {
            assert_eq!(
                buf[t],
                rebuilt.estimate_intersection(a, u),
                "{label}: stale slot {t} after mutation"
            );
        }
    }
}
