//! Differential harness for the streaming `MutableOracle` path: every
//! in-place incremental update must be indistinguishable from a
//! from-scratch rebuild.
//!
//! For random edge-stream prefixes (proptest-generated graphs and split
//! points):
//!
//! * **bit-identical sketches** for the naturally-mergeable
//!   representations — Bloom word windows + cached popcounts, k-hash
//!   signature slots, HLL register windows;
//! * **estimator-identical outputs** for the sample-based ones — KMV and
//!   bottom-k `estimate` / `estimate_row_into` agree exactly after the
//!   lazy re-sort restores their sorted-slice views;
//! * **algorithm-identical results** — triangle counting and
//!   Jarvis–Patrick clustering through `with_oracle` agree between the
//!   two build paths;
//! * the `estimate_row_into` buffer-reuse contract holds **across a
//!   mutation**: a warm row buffer is truncated, never reallocated, and
//!   every slot is overwritten after an `insert_edge`.

use probgraph::algorithms::{clustering, triangles};
use probgraph::oracle::{IntersectionOracle, MutableOracle, OracleVisitor};
use probgraph::serving::ShardedProbGraph;
use probgraph::{BfEstimator, PgConfig, ProbGraph, Representation, SketchStore};
use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};

/// The configurations under differential test: every representation, and
/// every Bloom estimator variant (the estimator tail reads the mutated
/// sizes, so all three must stay consistent).
fn all_cfgs() -> Vec<(PgConfig, &'static str)> {
    let mk = |r| PgConfig::new(r, 0.3).with_seed(0xD1FF);
    vec![
        (mk(Representation::Bloom { b: 1 }), "BF1"),
        (mk(Representation::Bloom { b: 2 }), "BF2"),
        (mk(Representation::CountingBloom { b: 2 }), "CBF2"),
        (
            mk(Representation::Bloom { b: 2 }).with_bf_estimator(BfEstimator::Limit),
            "BF2-L",
        ),
        (
            mk(Representation::Bloom { b: 2 }).with_bf_estimator(BfEstimator::Or),
            "BF2-OR",
        ),
        (mk(Representation::KHash), "kH"),
        (mk(Representation::OneHash), "1H"),
        (mk(Representation::Kmv), "KMV"),
        (mk(Representation::Hll), "HLL"),
    ]
}

/// Streams `edges[..split]`, applies the rest in two uneven batches (the
/// second of size 1 when possible, so the single-edge path is always
/// exercised), and returns the incrementally-built ProbGraph.
fn stream_in_batches(
    n: usize,
    base_bytes: usize,
    cfg: &PgConfig,
    edges: &[(u32, u32)],
    split: usize,
) -> ProbGraph {
    let mut pg = ProbGraph::stream_from(n, base_bytes, cfg, &edges[..split]);
    let rest = &edges[split..];
    if let Some((last, bulk)) = rest.split_last() {
        pg.apply_batch(bulk);
        pg.insert_edge(last.0, last.1);
    }
    pg
}

/// Bit-identical sketch comparison for Bloom/k-hash/HLL; the sample-based
/// stores (KMV, bottom-k) are pinned through their estimators instead.
fn assert_stores_bit_identical(inc: &ProbGraph, full: &ProbGraph, label: &str) {
    match (inc.store(), full.store()) {
        (SketchStore::Bloom(a), SketchStore::Bloom(b)) => {
            for i in 0..full.len() {
                assert_eq!(a.words(i), b.words(i), "{label}: words of set {i}");
                assert_eq!(
                    a.count_ones(i),
                    b.count_ones(i),
                    "{label}: cached popcount of set {i}"
                );
            }
        }
        (SketchStore::CountingBloom(a), SketchStore::CountingBloom(b)) => {
            for i in 0..full.len() {
                assert_eq!(
                    a.read_view().words(i),
                    b.read_view().words(i),
                    "{label}: view words of set {i}"
                );
                assert_eq!(
                    a.read_view().count_ones(i),
                    b.read_view().count_ones(i),
                    "{label}: cached popcount of set {i}"
                );
                assert_eq!(
                    a.counter_words(i),
                    b.counter_words(i),
                    "{label}: counters of set {i}"
                );
            }
        }
        (SketchStore::KHash(a), SketchStore::KHash(b)) => {
            for i in 0..full.len() {
                assert_eq!(a.signature(i), b.signature(i), "{label}: signature {i}");
            }
        }
        (SketchStore::Hll(a), SketchStore::Hll(b)) => {
            for i in 0..full.len() {
                assert_eq!(a.registers(i), b.registers(i), "{label}: registers {i}");
            }
        }
        (SketchStore::OneHash(_), SketchStore::OneHash(_))
        | (SketchStore::Kmv(_), SketchStore::Kmv(_)) => {}
        _ => panic!("{label}: build paths resolved different representations"),
    }
}

/// Row-sweep visitor: estimates every vertex's row against all vertices
/// through the batched `estimate_row` path into one reused buffer.
struct AllRows<'a> {
    us: &'a [u32],
}

impl OracleVisitor for AllRows<'_> {
    type Output = Vec<f64>;
    fn visit<O: IntersectionOracle>(self, o: &O) -> Vec<f64> {
        let mut out = Vec::new();
        let mut row = Vec::new();
        for &v in self.us {
            o.estimate_row(v, self.us, &mut row);
            out.extend_from_slice(&row);
        }
        out
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Tentpole differential property: incremental build == rebuild, for
    /// every representation, at a random stream prefix.
    #[test]
    fn incremental_build_matches_rebuild(
        n in 12usize..48,
        density in 2usize..8,
        seed in 0u64..500,
        split_pct in 0usize..101,
    ) {
        let m = (n * density).min(n * (n - 1) / 2);
        let g = pg_graph::gen::erdos_renyi_gnm(n, m, seed);
        let edges = g.edge_list();
        let split = edges.len() * split_pct / 100;
        let us: Vec<u32> = (0..g.num_vertices() as u32).collect();
        for (cfg, label) in all_cfgs() {
            let full = ProbGraph::build(&g, &cfg);
            let inc = stream_in_batches(g.num_vertices(), g.memory_bytes(), &cfg, &edges, split);
            prop_assert!(inc.params() == full.params(), "{}: params differ", label);
            for v in 0..g.num_vertices() {
                prop_assert!(
                    inc.set_size(v) == full.set_size(v),
                    "{}: size of {} differs", label, v
                );
            }
            assert_stores_bit_identical(&inc, &full, label);
            // Estimator equivalence: pairwise and batched row paths.
            for &(u, v) in &edges {
                prop_assert!(
                    inc.estimate_intersection(u, v) == full.estimate_intersection(u, v),
                    "{}: estimate ({},{}) differs", label, u, v
                );
                prop_assert!(
                    inc.estimate_jaccard(u, v) == full.estimate_jaccard(u, v),
                    "{}: jaccard ({},{}) differs", label, u, v
                );
            }
            let rows_inc = inc.with_oracle(AllRows { us: &us });
            let rows_full = full.with_oracle(AllRows { us: &us });
            prop_assert!(rows_inc == rows_full, "{}: estimate_row_into sweep differs", label);
        }
    }

    /// Deletion differential (PR 5's tentpole): for the removal-capable
    /// counting-Bloom representation, any interleaving of inserts and
    /// removals must land bit-identically (derived view words, cached
    /// popcounts, counters) and estimator-identically on a from-scratch
    /// rebuild of the **surviving** edge set.
    #[test]
    fn insert_remove_interleavings_match_survivor_rebuild(
        n in 12usize..48,
        density in 2usize..8,
        seed in 0u64..500,
        split_pct in 0usize..101,
        remove_mod in 2usize..5,
    ) {
        let m = (n * density).min(n * (n - 1) / 2);
        let g = pg_graph::gen::erdos_renyi_gnm(n, m, seed);
        let edges = g.edge_list();
        let split = edges.len() * split_pct / 100;
        let us: Vec<u32> = (0..g.num_vertices() as u32).collect();
        for b in [1usize, 2] {
            let cfg = PgConfig::new(Representation::CountingBloom { b }, 0.3).with_seed(0xD1FF);
            let mut pg =
                ProbGraph::stream_from(g.num_vertices(), g.memory_bytes(), &cfg, &edges[..split]);
            prop_assert!(pg.remove_supported(), "b={}", b);
            // Interleave: insert the remaining edges in small batches,
            // removing every `remove_mod`-th already-inserted edge in
            // between — batched removals plus one single-edge removal per
            // round so both removal paths stay exercised.
            let mut removed = vec![false; edges.len()];
            let mut inserted = split;
            while inserted < edges.len() {
                let chunk_end = (inserted + 5).min(edges.len());
                pg.apply_batch(&edges[inserted..chunk_end]);
                inserted = chunk_end;
                let victims: Vec<usize> = (0..inserted)
                    .filter(|&t| t % remove_mod == 0 && !removed[t])
                    .collect();
                if let Some((&last, bulk)) = victims.split_last() {
                    let batch: Vec<(u32, u32)> = bulk.iter().map(|&t| edges[t]).collect();
                    pg.remove_batch(&batch);
                    pg.remove_edge(edges[last].0, edges[last].1);
                    for t in victims {
                        removed[t] = true;
                    }
                }
            }
            let survivors: Vec<(u32, u32)> = (0..edges.len())
                .filter(|&t| !removed[t])
                .map(|t| edges[t])
                .collect();
            let g2 = pg_graph::CsrGraph::from_edges(g.num_vertices(), &survivors);
            // Same budget resolution as the streamed graph: base_bytes is
            // the *original* CSR footprint, not the shrunken survivor one.
            let full = ProbGraph::build_over(
                g.num_vertices(),
                g.memory_bytes(),
                |v| g2.neighbors(v as u32),
                &cfg,
            );
            prop_assert!(pg.params() == full.params(), "b={}: params differ", b);
            for v in 0..g.num_vertices() {
                prop_assert!(
                    pg.set_size(v) == full.set_size(v),
                    "b={}: size of {} differs", b, v
                );
            }
            assert_stores_bit_identical(&pg, &full, "CBF-removal");
            for &(u, v) in &edges {
                prop_assert!(
                    pg.estimate_intersection(u, v) == full.estimate_intersection(u, v),
                    "b={}: estimate ({},{}) differs", b, u, v
                );
                prop_assert!(
                    pg.estimate_jaccard(u, v) == full.estimate_jaccard(u, v),
                    "b={}: jaccard ({},{}) differs", b, u, v
                );
            }
            let rows_pg = pg.with_oracle(AllRows { us: &us });
            let rows_full = full.with_oracle(AllRows { us: &us });
            prop_assert!(rows_pg == rows_full, "b={}: row sweep differs", b);
        }
    }

    /// Dirty streams follow CSR rebuild semantics for every
    /// representation: self-loops are dropped and duplicate edges within
    /// a batch (either orientation) are applied once, so streaming a
    /// dirty edge list lands exactly where building from it does.
    #[test]
    fn dirty_streams_match_csr_rebuild_semantics(
        n in 8usize..32,
        density in 2usize..6,
        seed in 0u64..500,
    ) {
        let m = (n * density).min(n * (n - 1) / 2);
        let g = pg_graph::gen::erdos_renyi_gnm(n, m, seed);
        let clean = g.edge_list();
        // Dirty the stream: every edge once, a prefix again in flipped
        // orientation, and a sprinkle of self-loops.
        let mut dirty = clean.clone();
        for &(u, v) in clean.iter().take(clean.len() / 3) {
            dirty.push((v, u));
        }
        for v in 0..(n as u32).min(5) {
            dirty.push((v, v));
        }
        for (cfg, label) in all_cfgs() {
            let streamed =
                ProbGraph::stream_from(g.num_vertices(), g.memory_bytes(), &cfg, &dirty);
            let full = ProbGraph::build(&g, &cfg);
            for v in 0..g.num_vertices() {
                prop_assert!(
                    streamed.set_size(v) == full.set_size(v),
                    "{}: size of {} differs", label, v
                );
            }
            assert_stores_bit_identical(&streamed, &full, label);
            for &(u, v) in clean.iter().take(150) {
                prop_assert!(
                    streamed.estimate_intersection(u, v) == full.estimate_intersection(u, v),
                    "{}: estimate ({},{}) differs", label, u, v
                );
            }
        }
    }

    /// Algorithms through `with_oracle` agree between the build paths:
    /// triangle counting over incrementally-streamed DAG sets, and
    /// Jarvis–Patrick clustering over streamed full neighborhoods.
    #[test]
    fn algorithms_agree_between_build_paths(
        n in 16usize..40,
        density in 3usize..9,
        seed in 0u64..500,
        split_pct in 0usize..101,
    ) {
        let m = (n * density).min(n * (n - 1) / 2);
        let g = pg_graph::gen::erdos_renyi_gnm(n, m, seed);
        let dag = pg_graph::orient_by_degree(&g);
        let arcs: Vec<(u32, u32)> = (0..dag.num_vertices() as u32)
            .flat_map(|v| dag.neighbors_plus(v).iter().map(move |&u| (v, u)))
            .collect();
        let split = arcs.len() * split_pct / 100;
        let edges = g.edge_list();
        let esplit = edges.len() * split_pct / 100;
        for (cfg, label) in all_cfgs() {
            // Oriented sets: stream the DAG arcs in two chunks.
            let full_dag = ProbGraph::build_dag(&dag, g.memory_bytes(), &cfg);
            let mut inc_dag =
                ProbGraph::stream_from(dag.num_vertices(), g.memory_bytes(), &cfg, &[]);
            inc_dag.apply_arcs(&arcs[..split]);
            inc_dag.apply_arcs(&arcs[split..]);
            // f64 reductions combine in an unspecified order under the
            // parallel runtime, so compare serial runs exactly.
            let (tc_full, tc_inc) = pg_parallel::with_threads(1, || {
                (
                    triangles::count_approx_on_dag(&dag, &full_dag),
                    triangles::count_approx_on_dag(&dag, &inc_dag),
                )
            });
            prop_assert!(tc_full == tc_inc, "{}: triangle count differs", label);
            // Full neighborhoods: clustering decisions are per-edge bools,
            // deterministic under any schedule.
            let full = ProbGraph::build(&g, &cfg);
            let inc = stream_in_batches(g.num_vertices(), g.memory_bytes(), &cfg, &edges, esplit);
            let c_full = clustering::jarvis_patrick_pg(
                &g, &full, clustering::SimilarityKind::Jaccard, 0.2,
            );
            let c_inc = clustering::jarvis_patrick_pg(
                &g, &inc, clustering::SimilarityKind::Jaccard, 0.2,
            );
            prop_assert!(c_full.selected == c_inc.selected, "{}: selected edges differ", label);
            prop_assert!(
                c_full.num_clusters == c_inc.num_clusters,
                "{}: cluster count differs", label
            );
        }
    }
}

/// Runs `body` (the sharded writer) while a reader thread continuously
/// pins epochs off `reader` and row-sweeps them — queries racing ingest
/// on real threads. Returns after asserting the reader completed at
/// least one sweep and every pinned snapshot was internally consistent
/// (stable epoch, full-width rows, sizes matching the pinned universe).
fn race_reader_during<F: FnOnce()>(reader: &probgraph::ServingReader, us: &[u32], body: F) {
    let stop = AtomicBool::new(false);
    let sweeps = std::thread::scope(|scope| {
        let handle = scope.spawn(|| {
            let mut sweeps = 0usize;
            loop {
                let done = stop.load(Ordering::Relaxed);
                let snap = reader.snapshot();
                let epoch = snap.epoch();
                assert_eq!(snap.len(), us.len(), "pinned snapshot universe");
                let rows = snap.with_oracle(AllRows { us });
                assert_eq!(rows.len(), us.len() * us.len(), "row sweep width");
                assert!(rows.iter().all(|x| x.is_finite()), "row sweep values");
                // The pin must hold the epoch stable for the whole sweep.
                assert_eq!(snap.epoch(), epoch, "epoch moved under a pin");
                sweeps += 1;
                if done {
                    return sweeps;
                }
            }
        });
        body();
        stop.store(true, Ordering::Relaxed);
        handle.join().unwrap()
    });
    assert!(sweeps >= 1, "reader thread never completed a sweep");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Concurrent differential property (PR 8's tentpole): random write
    /// batches routed through N shard lanes, published as epochs while a
    /// reader thread row-sweeps pinned snapshots mid-ingest. The final
    /// drained epoch must equal the serial from-scratch rebuild — the
    /// same bit-identity standard as the single-writer suite above, for
    /// every representation and shard count.
    #[test]
    fn sharded_concurrent_ingest_matches_rebuild(
        n in 16usize..48,
        density in 2usize..8,
        seed in 0u64..500,
        chunk in 3usize..17,
        shards in 1usize..5,
    ) {
        let m = (n * density).min(n * (n - 1) / 2);
        let g = pg_graph::gen::erdos_renyi_gnm(n, m, seed);
        let edges = g.edge_list();
        let us: Vec<u32> = (0..g.num_vertices() as u32).collect();
        for (cfg, label) in all_cfgs() {
            let full = ProbGraph::build(&g, &cfg);
            let mut srv =
                ShardedProbGraph::with_shards(g.num_vertices(), g.memory_bytes(), &cfg, shards);
            prop_assert!(srv.shards() == shards.min(g.num_vertices()), "{}: shard count", label);
            let reader = srv.reader();
            race_reader_during(&reader, &us, || {
                for c in edges.chunks(chunk) {
                    srv.apply_batch(c);
                    srv.publish_epoch();
                }
            });
            prop_assert!(
                srv.epoch() == edges.chunks(chunk).count() as u64,
                "{}: one epoch per published batch", label
            );
            let snap = srv.snapshot();
            prop_assert!(snap.params() == full.params(), "{}: params differ", label);
            for v in 0..g.num_vertices() {
                prop_assert!(
                    snap.set_size(v) == full.set_size(v),
                    "{}: size of {} differs", label, v
                );
            }
            assert_stores_bit_identical(&snap, &full, label);
            for &(u, v) in &edges {
                prop_assert!(
                    snap.estimate_intersection(u, v) == full.estimate_intersection(u, v),
                    "{}: estimate ({},{}) differs", label, u, v
                );
            }
            let rows_snap = snap.with_oracle(AllRows { us: &us });
            let rows_full = full.with_oracle(AllRows { us: &us });
            prop_assert!(rows_snap == rows_full, "{}: row sweep differs", label);
        }
    }

    /// Sharded deletion differential: counting-Bloom insert/remove
    /// interleavings through the shard queues — staged, drained in
    /// parallel, published per round under a racing reader — land
    /// bit-identically on a rebuild of the surviving edge set, exactly
    /// like the serial interleaving suite above.
    #[test]
    fn sharded_insert_remove_interleave_matches_survivor_rebuild(
        n in 16usize..48,
        density in 2usize..8,
        seed in 0u64..500,
        shards in 2usize..5,
        remove_mod in 2usize..5,
    ) {
        let m = (n * density).min(n * (n - 1) / 2);
        let g = pg_graph::gen::erdos_renyi_gnm(n, m, seed);
        let edges = g.edge_list();
        let us: Vec<u32> = (0..g.num_vertices() as u32).collect();
        let cfg = PgConfig::new(Representation::CountingBloom { b: 2 }, 0.3).with_seed(0xD1FF);
        let mut srv =
            ShardedProbGraph::with_shards(g.num_vertices(), g.memory_bytes(), &cfg, shards);
        prop_assert!(srv.remove_supported());
        let reader = srv.reader();
        let mut removed = vec![false; edges.len()];
        race_reader_during(&reader, &us, || {
            let mut inserted = 0usize;
            while inserted < edges.len() {
                let chunk_end = (inserted + 5).min(edges.len());
                // Stage the round's inserts and removals together, so the
                // queued-segment ordering path (not just the apply-now
                // path) is under differential test.
                srv.stage_batch(&edges[inserted..chunk_end]);
                inserted = chunk_end;
                let victims: Vec<usize> = (0..inserted)
                    .filter(|&t| t % remove_mod == 0 && !removed[t])
                    .collect();
                let batch: Vec<(u32, u32)> = victims.iter().map(|&t| edges[t]).collect();
                for t in victims {
                    removed[t] = true;
                }
                srv.stage_removals(&batch);
                srv.publish_epoch();
            }
        });
        let survivors: Vec<(u32, u32)> = (0..edges.len())
            .filter(|&t| !removed[t])
            .map(|t| edges[t])
            .collect();
        let g2 = pg_graph::CsrGraph::from_edges(g.num_vertices(), &survivors);
        let full = ProbGraph::build_over(
            g.num_vertices(),
            g.memory_bytes(),
            |v| g2.neighbors(v as u32),
            &cfg,
        );
        let snap = srv.snapshot();
        for v in 0..g.num_vertices() {
            prop_assert!(
                snap.set_size(v) == full.set_size(v),
                "size of {} differs", v
            );
        }
        assert_stores_bit_identical(&snap, &full, "sharded-CBF-removal");
        for &(u, v) in &edges {
            prop_assert!(
                snap.estimate_intersection(u, v) == full.estimate_intersection(u, v),
                "estimate ({},{}) differs", u, v
            );
        }
    }
}

/// Stratified geometry under the streaming differential: an edge stream
/// applied incrementally into an empty store carrying the rebuild's own
/// resolved stratum table must land bit-identically on the from-scratch
/// stratified build, for every representation. (The geometry is pinned
/// explicitly via `build_rows_stratified` because budget *resolution*
/// legitimately differs between paths: an offline build stratifies by
/// the real degree ranks, a cold stream by the ids of an empty graph.)
#[test]
fn stratified_incremental_build_matches_rebuild() {
    use pg_sketch::StrataSpec;
    let g = pg_graph::gen::erdos_renyi_gnm(800, 24_000, 3);
    let edges = g.edge_list();
    let us: Vec<u32> = (0..60u32).collect();
    for (cfg, label) in all_cfgs() {
        let cfg = cfg.with_strata(StrataSpec::skewed_default());
        let full = ProbGraph::build(&g, &cfg);
        let sp = full
            .stratified_params()
            .unwrap_or_else(|| panic!("{label}: recipe collapsed to uniform"))
            .clone();
        let mut inc = ProbGraph::build_rows_stratified(
            g.num_vertices(),
            sp,
            cfg.bf_estimator,
            cfg.seed,
            |_| &[][..],
        );
        let (last, bulk) = edges.split_last().unwrap();
        for chunk in bulk.chunks(997) {
            inc.apply_batch(chunk);
        }
        inc.insert_edge(last.0, last.1);
        assert_eq!(
            inc.stratified_params(),
            full.stratified_params(),
            "{label}: stratum tables differ"
        );
        for v in 0..g.num_vertices() {
            assert_eq!(inc.set_size(v), full.set_size(v), "{label}: size of {v}");
        }
        assert_stores_bit_identical(&inc, &full, label);
        for &(u, v) in edges.iter().take(300) {
            assert_eq!(
                inc.estimate_intersection(u, v),
                full.estimate_intersection(u, v),
                "{label}: estimate ({u},{v})"
            );
        }
        let rows_inc = inc.with_oracle(AllRows { us: &us });
        let rows_full = full.with_oracle(AllRows { us: &us });
        assert!(rows_inc == rows_full, "{label}: row sweep differs");
    }
}

/// Interleaved insert/remove of the *same* edge follows rebuild
/// semantics: an insert→remove cycle is a perfect no-op (counters,
/// derived bits, cached popcounts, sizes all restored), and a
/// remove→re-insert cycle restores the edge exactly — at any point in
/// the cycle the store equals a rebuild of the then-current edge set.
#[test]
fn same_edge_insert_remove_cycle_matches_rebuild() {
    let g = pg_graph::gen::erdos_renyi_gnm(40, 200, 7);
    let edges = g.edge_list();
    let (a, b) = (0..g.num_vertices() as u32)
        .flat_map(|u| ((u + 1)..g.num_vertices() as u32).map(move |v| (u, v)))
        .find(|&(u, v)| !g.has_edge(u, v))
        .expect("graph is not complete");
    for bhash in [1usize, 2] {
        let cfg = PgConfig::new(Representation::CountingBloom { b: bhash }, 0.3).with_seed(0xD1FF);
        let baseline = ProbGraph::build(&g, &cfg);
        let mut pg = ProbGraph::stream_from(g.num_vertices(), g.memory_bytes(), &cfg, &edges);
        // Fresh edge in, same edge out — back to the baseline exactly.
        pg.insert_edge(a, b);
        pg.remove_edge(a, b);
        assert_stores_bit_identical(&pg, &baseline, "insert-remove cycle");
        for v in 0..g.num_vertices() {
            assert_eq!(pg.set_size(v), baseline.set_size(v), "cycle v={v}");
        }
        // Present edge out, same edge back in — baseline again, and the
        // intermediate state equals a rebuild without the edge.
        let (eu, ev) = edges[edges.len() / 2];
        pg.remove_edge(eu, ev);
        let survivors: Vec<(u32, u32)> = edges.iter().copied().filter(|&e| e != (eu, ev)).collect();
        let g2 = pg_graph::CsrGraph::from_edges(g.num_vertices(), &survivors);
        let without = ProbGraph::build_over(
            g.num_vertices(),
            g.memory_bytes(),
            |v| g2.neighbors(v as u32),
            &cfg,
        );
        assert_stores_bit_identical(&pg, &without, "mid-cycle");
        pg.insert_edge(eu, ev);
        assert_stores_bit_identical(&pg, &baseline, "remove-reinsert cycle");
        for (u, v) in g.edges().take(200) {
            assert_eq!(
                pg.estimate_intersection(u, v),
                baseline.estimate_intersection(u, v),
                "cycle estimate ({u},{v})"
            );
        }
    }
}

/// The `estimate_row_into` reuse contract across a mutation: a row sweep
/// warms the buffer, an `insert_edge` mutates the sketches, and the next
/// sweep over a *narrower* row must truncate the warm buffer in place —
/// no reallocation, no stale slots — while reflecting the new edge.
#[test]
fn row_buffer_reuse_contract_survives_mutation() {
    let g = pg_graph::gen::erdos_renyi_gnm(60, 400, 3);
    let edges = g.edge_list();
    let wide: Vec<u32> = (0..g.num_vertices() as u32).collect();
    // A fresh edge between the two lowest-degree vertices not yet joined.
    let (a, b) = (0..g.num_vertices() as u32)
        .flat_map(|u| ((u + 1)..g.num_vertices() as u32).map(move |v| (u, v)))
        .find(|&(u, v)| !g.has_edge(u, v))
        .expect("graph is not complete");
    for (cfg, label) in all_cfgs() {
        let mut pg = ProbGraph::stream_from(g.num_vertices(), g.memory_bytes(), &cfg, &edges);
        struct Sweep<'a> {
            us: &'a [u32],
            buf: &'a mut Vec<f64>,
            v: u32,
        }
        impl OracleVisitor for Sweep<'_> {
            type Output = ();
            fn visit<O: IntersectionOracle>(self, o: &O) {
                o.estimate_row(self.v, self.us, self.buf);
            }
        }
        let mut buf = Vec::new();
        // 1. Wide sweep warms the buffer to n slots.
        pg.with_oracle(Sweep {
            us: &wide,
            buf: &mut buf,
            v: a,
        });
        assert_eq!(buf.len(), wide.len(), "{label}: warm width");
        let warm_ptr = buf.as_ptr();
        let warm_cap = buf.capacity();
        // 2. Mutate: sketches and sizes change underneath the buffer.
        pg.insert_edge(a, b);
        // 3. Narrow sweep after the mutation reuses the same allocation.
        let narrow = &wide[..wide.len() / 2];
        pg.with_oracle(Sweep {
            us: narrow,
            buf: &mut buf,
            v: a,
        });
        assert_eq!(buf.len(), narrow.len(), "{label}: truncated width");
        assert!(
            std::ptr::eq(warm_ptr, buf.as_ptr()) && buf.capacity() == warm_cap,
            "{label}: warm row buffer was reallocated across a mutation"
        );
        // Every surviving slot was overwritten with post-mutation values:
        // compare against a rebuild of the mutated graph.
        let mut with_new = edges.clone();
        with_new.push((a.min(b), a.max(b)));
        let g2 = pg_graph::CsrGraph::from_edges(g.num_vertices(), &with_new);
        let rebuilt = ProbGraph::build_over(
            g.num_vertices(),
            g.memory_bytes(),
            |v| g2.neighbors(v as u32),
            &cfg,
        );
        for (t, &u) in narrow.iter().enumerate() {
            assert_eq!(
                buf[t],
                rebuilt.estimate_intersection(a, u),
                "{label}: stale slot {t} after mutation"
            );
        }
    }
}
