//! Property-based tests (proptest) on the core data structures and
//! invariants, spanning all workspace crates.

use pg_sketch::{BloomFilter, BottomK, HyperLogLog, KmvSketch, MinHashSignature};
use proptest::collection::vec;
use proptest::prelude::*;

fn dedup_sorted(mut v: Vec<u32>) -> Vec<u32> {
    v.sort_unstable();
    v.dedup();
    v
}

fn exact_intersection(a: &[u32], b: &[u32]) -> usize {
    let set: std::collections::HashSet<_> = a.iter().collect();
    b.iter().filter(|x| set.contains(x)).count()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // --- CSR graph invariants -------------------------------------------

    #[test]
    fn csr_invariants_hold_for_arbitrary_edge_lists(
        edges in vec((0u32..200, 0u32..200), 0..600)
    ) {
        let g = pg_graph::CsrGraph::from_edges(200, &edges);
        // Sorted, deduplicated, no self loops, symmetric.
        let mut half_edges = 0usize;
        for v in 0..200u32 {
            let nv = g.neighbors(v);
            prop_assert!(nv.windows(2).all(|w| w[0] < w[1]));
            prop_assert!(!nv.contains(&v));
            half_edges += nv.len();
            for &u in nv {
                prop_assert!(g.has_edge(u, v));
            }
        }
        prop_assert_eq!(half_edges, 2 * g.num_edges());
        // Edge count equals distinct non-loop undirected pairs.
        let distinct: std::collections::HashSet<_> = edges
            .iter()
            .filter(|(u, v)| u != v)
            .map(|&(u, v)| if u < v { (u, v) } else { (v, u) })
            .collect();
        prop_assert_eq!(g.num_edges(), distinct.len());
    }

    #[test]
    fn degree_orientation_partitions_edges(
        edges in vec((0u32..100, 0u32..100), 0..400)
    ) {
        let g = pg_graph::CsrGraph::from_edges(100, &edges);
        let dag = pg_graph::orient_by_degree(&g);
        let total: usize = (0..100u32).map(|v| dag.out_degree(v)).sum();
        prop_assert_eq!(total, g.num_edges());
        for v in 0..100u32 {
            for &u in dag.neighbors_plus(v) {
                prop_assert!(dag.rank()[v as usize] < dag.rank()[u as usize]);
            }
        }
    }

    // --- Exact intersection kernels --------------------------------------

    #[test]
    fn intersect_kernels_agree_with_hash_set(
        a in vec(0u32..5000, 0..300),
        b in vec(0u32..5000, 0..300),
    ) {
        let a = dedup_sorted(a);
        let b = dedup_sorted(b);
        let want = exact_intersection(&a, &b);
        prop_assert_eq!(probgraph::intersect::merge_count(&a, &b), want);
        prop_assert_eq!(probgraph::intersect::intersect_card(&a, &b), want);
        let (s, l) = if a.len() <= b.len() { (&a, &b) } else { (&b, &a) };
        prop_assert_eq!(probgraph::intersect::gallop_count(s, l), want);
        let mut out = Vec::new();
        probgraph::intersect::intersect_set(&a, &b, &mut out);
        prop_assert_eq!(out.len(), want);
    }

    // --- Bloom filters ----------------------------------------------------

    #[test]
    fn bloom_never_has_false_negatives(
        items in vec(0u32..100_000, 0..200),
        b in 1usize..5,
        seed in 0u64..1000,
    ) {
        let f = BloomFilter::from_set(&items, 2048, b, seed);
        for &x in &items {
            prop_assert!(f.contains(x));
        }
    }

    #[test]
    fn bloom_and_estimate_is_finite_and_nonnegative(
        a in vec(0u32..10_000, 0..300),
        bset in vec(0u32..10_000, 0..300),
    ) {
        let fa = BloomFilter::from_set(&a, 1024, 2, 7);
        let fb = BloomFilter::from_set(&bset, 1024, 2, 7);
        let e = fa.estimate_intersection_and(&fb);
        prop_assert!(e.is_finite());
        prop_assert!(e >= 0.0);
        // AND-popcount never exceeds either filter's own popcount.
        let and = fa.bits().and_count(fb.bits());
        prop_assert!(and <= fa.count_ones().min(fb.count_ones()));
    }

    // --- MinHash ----------------------------------------------------------

    #[test]
    fn khash_jaccard_is_one_iff_identical_signature(
        items in vec(0u32..50_000, 1..200),
        k in 1usize..64,
        seed in 0u64..100,
    ) {
        let items = dedup_sorted(items);
        let a = MinHashSignature::from_set(&items, k, seed);
        let b = MinHashSignature::from_set(&items, k, seed);
        prop_assert_eq!(a.estimate_jaccard(&b), 1.0);
        let j = a.estimate_jaccard(&b);
        prop_assert!((0.0..=1.0).contains(&j));
    }

    #[test]
    fn bottomk_is_lossless_below_k(
        items in vec(0u32..100_000, 0..64),
        seed in 0u64..100,
    ) {
        let items = dedup_sorted(items);
        let s = BottomK::from_set(&items, 64, seed);
        prop_assert!(s.is_exact());
        prop_assert_eq!(s.elements().len(), items.len());
        let mut sorted = s.elements().to_vec();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, items);
    }

    #[test]
    fn bottomk_exact_regime_intersection_is_truth(
        a in vec(0u32..400, 0..50),
        b in vec(0u32..400, 0..50),
        seed in 0u64..50,
    ) {
        let a = dedup_sorted(a);
        let b = dedup_sorted(b);
        let sa = BottomK::from_set(&a, 64, seed);
        let sb = BottomK::from_set(&b, 64, seed);
        prop_assert_eq!(
            sa.estimate_intersection(&sb),
            exact_intersection(&a, &b) as f64
        );
    }

    #[test]
    fn bottomk_jaccard_bounded(
        a in vec(0u32..2000, 0..400),
        b in vec(0u32..2000, 0..400),
    ) {
        let a = dedup_sorted(a);
        let b = dedup_sorted(b);
        let sa = BottomK::from_set(&a, 16, 3);
        let sb = BottomK::from_set(&b, 16, 3);
        let j = sa.estimate_jaccard(&sb);
        prop_assert!((0.0..=1.0).contains(&j));
    }

    // --- KMV / HLL ---------------------------------------------------------

    #[test]
    fn kmv_union_is_commutative_and_bounded(
        a in vec(0u32..50_000, 0..300),
        b in vec(0u32..50_000, 0..300),
    ) {
        let sa = KmvSketch::from_set(&a, 32, 5);
        let sb = KmvSketch::from_set(&b, 32, 5);
        let uab = sa.union(&sb);
        let uba = sb.union(&sa);
        prop_assert_eq!(uab.hashes(), uba.hashes());
        prop_assert!(uab.hashes().len() <= 32);
    }

    #[test]
    fn hll_merge_is_idempotent_commutative_monotone(
        a in vec(0u32..100_000, 0..500),
        b in vec(0u32..100_000, 0..500),
    ) {
        let ha = HyperLogLog::from_set(&a, 8, 9);
        let hb = HyperLogLog::from_set(&b, 8, 9);
        prop_assert_eq!(ha.merge(&ha).clone(), ha.clone());
        prop_assert_eq!(ha.merge(&hb), hb.merge(&ha));
        // Union estimate ≥ max of individual estimates (registers only grow).
        let u = ha.merge(&hb).estimate();
        prop_assert!(u >= ha.estimate().max(hb.estimate()) - 1e-9);
    }

    // --- Statistics --------------------------------------------------------

    #[test]
    fn distributions_are_probabilities(
        n in 1u64..80,
        s in 0u64..80,
        p in 0.0f64..1.0,
    ) {
        let pm = pg_stats::binomial::pmf(n, p, s);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&pm));
        let k = s.min(n);
        let h = pg_stats::hypergeom::pmf(n + 10, n.min(n + 10), k, s);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&h));
    }

    #[test]
    fn beta_function_is_monotone_probability(
        a in 0.5f64..20.0,
        b in 0.5f64..20.0,
        x1 in 0.0f64..1.0,
        x2 in 0.0f64..1.0,
    ) {
        let (lo, hi) = if x1 <= x2 { (x1, x2) } else { (x2, x1) };
        let f_lo = pg_stats::special::reg_inc_beta(lo, a, b);
        let f_hi = pg_stats::special::reg_inc_beta(hi, a, b);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&f_lo));
        prop_assert!(f_lo <= f_hi + 1e-9);
    }

    #[test]
    fn summary_respects_order_statistics(sample in vec(-1e6f64..1e6, 1..200)) {
        let s = pg_stats::Summary::of(&sample);
        prop_assert!(s.min <= s.p25 && s.p25 <= s.median);
        prop_assert!(s.median <= s.p75 && s.p75 <= s.max);
        prop_assert!(s.min <= s.mean && s.mean <= s.max);
    }

    // --- Parallel runtime ---------------------------------------------------

    #[test]
    fn parallel_sum_equals_sequential(data in vec(0u64..1_000_000, 0..2000)) {
        let expect: u64 = data.iter().sum();
        let got = pg_parallel::with_threads(4, || {
            pg_parallel::sum_u64(data.len(), |i| data[i])
        });
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn parallel_init_matches_map(n in 0usize..3000) {
        let v = pg_parallel::with_threads(4, || {
            pg_parallel::parallel_init(n, |i| i * 2 + 1)
        });
        prop_assert_eq!(v, (0..n).map(|i| i * 2 + 1).collect::<Vec<_>>());
    }

    // --- End-to-end: estimates scale with the truth -------------------------

    #[test]
    fn probgraph_estimates_bounded_by_degree_sum(
        edges in vec((0u32..60, 0u32..60), 30..300)
    ) {
        let g = pg_graph::CsrGraph::from_edges(60, &edges);
        if g.num_edges() == 0 {
            return Ok(());
        }
        let pg = probgraph::ProbGraph::build(
            &g,
            &probgraph::PgConfig::new(probgraph::Representation::OneHash, 0.33),
        );
        for (u, v) in g.edges().take(30) {
            let e = pg.estimate_intersection(u, v);
            prop_assert!(e >= 0.0);
            prop_assert!(e <= (g.degree(u) + g.degree(v)) as f64);
        }
    }
}
