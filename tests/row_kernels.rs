//! Property tests for the multi-lane row kernels and the rerouted
//! edge-loop call sites:
//!
//! * every multi-lane sketch kernel is **bit-identical** to its scalar
//!   row path at every lane count 1–4, over ragged tails, empty rows,
//!   and every word-tail remainder;
//! * every oracle's `estimate_row` / `jaccard_row` matches the pairwise
//!   `estimate` / `jaccard` bit-for-bit (including HLL, whose row path
//!   has its own lane-parallel harmonic sums);
//! * the rerouted clustering, `tc_estimator`, and `baselines::*`
//!   kernels reproduce their pre-refactor per-pair references on seed
//!   graphs;
//! * the row-buffer reuse contract: a warm buffer is resized, never
//!   reallocated.

use probgraph::algorithms::clustering::{self, SimilarityKind};
use probgraph::baselines::heuristics;
use probgraph::intersect::intersect_card;
use probgraph::oracle::{ExactOracle, IntersectionOracle, OracleVisitor};
use probgraph::{
    tc_estimator, tiled_block_sweep, BfEstimator, BlockKind, PgConfig, ProbGraph, Representation,
    TilePlan,
};
use proptest::prelude::*;

use pg_sketch::bitvec::{and_count_words, and_count_words_multi};
use pg_sketch::{BloomCollection, HyperLogLogCollection, KmvCollection, MinHashCollection};

fn test_sets(n: usize, seed: u64) -> Vec<Vec<u32>> {
    let mut state = seed ^ 0xA5A5_5A5A;
    (0..n)
        .map(|s| {
            let len = (pg_hash::splitmix64(&mut state) % 200) as usize + s % 7;
            let mut v: Vec<u32> = (0..len)
                .map(|_| (pg_hash::splitmix64(&mut state) % 4096) as u32)
                .collect();
            v.sort_unstable();
            v.dedup();
            v
        })
        .collect()
}

/// Every representation the ProbGraph can resolve, HLL included.
fn all_reps() -> Vec<(PgConfig, &'static str)> {
    let mk = |r| PgConfig::new(r, 0.3).with_seed(0xFEED);
    vec![
        (mk(Representation::Bloom { b: 1 }), "BF1-AND"),
        (mk(Representation::Bloom { b: 2 }), "BF2-AND"),
        (
            mk(Representation::Bloom { b: 2 }).with_bf_estimator(BfEstimator::Limit),
            "BF2-L",
        ),
        (
            mk(Representation::Bloom { b: 2 }).with_bf_estimator(BfEstimator::Or),
            "BF2-OR",
        ),
        (mk(Representation::KHash), "kH"),
        (mk(Representation::OneHash), "1H"),
        (mk(Representation::Kmv), "KMV"),
        (mk(Representation::Hll), "HLL"),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The multi-lane AND+popcount word kernel equals the scalar kernel
    /// per lane, for every lane count 1–4 and every word-tail remainder
    /// (the AVX-512 path has a masked tail block; `words % 8` sweeps it).
    #[test]
    fn bitvec_multi_lane_matches_scalar(words in 0usize..40, seed in 0u64..1000) {
        let mut state = seed ^ 0xBEEF;
        let mk = |state: &mut u64| -> Vec<u64> {
            (0..words).map(|_| pg_hash::splitmix64(state)).collect()
        };
        let a = mk(&mut state);
        let bs: Vec<Vec<u64>> = (0..4).map(|_| mk(&mut state)).collect();
        let want: Vec<usize> = bs.iter().map(|b| and_count_words(&a, b)).collect();
        prop_assert_eq!(and_count_words_multi(&a, [&bs[0][..]]), [want[0]]);
        prop_assert_eq!(
            and_count_words_multi(&a, [&bs[0][..], &bs[1][..]]),
            [want[0], want[1]]
        );
        prop_assert_eq!(
            and_count_words_multi(&a, [&bs[0][..], &bs[1][..], &bs[2][..]]),
            [want[0], want[1], want[2]]
        );
        prop_assert_eq!(
            and_count_words_multi(&a, [&bs[0][..], &bs[1][..], &bs[2][..], &bs[3][..]]),
            [want[0], want[1], want[2], want[3]]
        );
    }

    /// `BloomCollection::and_ones_multi` against a pinned row equals the
    /// scalar fused pass per lane, all lane counts.
    #[test]
    fn bloom_and_ones_multi_matches_scalar(seed in 0u64..500, bits in 1usize..700) {
        let sets = test_sets(9, seed);
        let col = BloomCollection::build(sets.len(), bits, 2, seed, |i| &sets[i]);
        let row = col.words(0);
        let want: Vec<usize> = (1..=4).map(|j| col.and_ones(0, j)).collect();
        prop_assert_eq!(col.and_ones_multi(row, [1]), [want[0]]);
        prop_assert_eq!(col.and_ones_multi(row, [1, 2]), [want[0], want[1]]);
        prop_assert_eq!(col.and_ones_multi(row, [1, 2, 3]), [want[0], want[1], want[2]]);
        prop_assert_eq!(
            col.and_ones_multi(row, [1, 2, 3, 4]),
            [want[0], want[1], want[2], want[3]]
        );
    }

    /// HLL multi-lane union estimates are bit-identical to the scalar
    /// row pass and the pairwise union, all lane counts.
    #[test]
    fn hll_union_multi_matches_scalar(seed in 0u64..500) {
        let sets = test_sets(9, seed);
        let col = HyperLogLogCollection::build(sets.len(), 7, seed, |i| &sets[i]);
        let row = col.registers(0);
        let want: Vec<f64> = (1..=4)
            .map(|j| {
                let u = col.union_estimate_with_row(row, j);
                assert_eq!(u, col.estimate_union(0, j), "scalar row != pairwise");
                u
            })
            .collect();
        prop_assert_eq!(col.union_estimates_multi(row, [1]), [want[0]]);
        prop_assert_eq!(col.union_estimates_multi(row, [1, 2]), [want[0], want[1]]);
        prop_assert_eq!(
            col.union_estimates_multi(row, [1, 2, 3]),
            [want[0], want[1], want[2]]
        );
        prop_assert_eq!(
            col.union_estimates_multi(row, [1, 2, 3, 4]),
            [want[0], want[1], want[2], want[3]]
        );
    }

    /// The two-lane interleaved KMV walk is bit-identical to two scalar
    /// estimates, across lossless/sampled sketch combinations.
    #[test]
    fn kmv_x2_matches_scalar(seed in 0u64..500, k in 1usize..48) {
        let sets = test_sets(7, seed);
        let col = KmvCollection::build(sets.len(), k, seed, |i| &sets[i]);
        for i in 0..sets.len() {
            let s = col.sketch(i);
            for j in 0..sets.len() - 1 {
                let (e0, e1) = s.estimate_intersection_x2(col.sketch(j), col.sketch(j + 1));
                prop_assert_eq!(e0, s.estimate_intersection(col.sketch(j)));
                prop_assert_eq!(e1, s.estimate_intersection(col.sketch(j + 1)));
            }
        }
    }

    /// Multi-lane signature matching equals pinned scalar matching,
    /// all lane counts.
    #[test]
    fn khash_matches_multi_matches_scalar(seed in 0u64..500, k in 1usize..64) {
        let sets = test_sets(9, seed);
        let col = MinHashCollection::build(sets.len(), k, seed, |i| &sets[i]);
        let row = col.signature(0);
        let want: Vec<usize> = (1..=4).map(|j| col.matches(0, j)).collect();
        for j in 1..=4usize {
            prop_assert_eq!(col.matches_with_row(row, j), want[j - 1]);
        }
        prop_assert_eq!(col.matches_multi(row, [1, 2]), [want[0], want[1]]);
        prop_assert_eq!(
            col.matches_multi(row, [1, 2, 3, 4]),
            [want[0], want[1], want[2], want[3]]
        );
    }

    /// `estimate_row` and `jaccard_row` agree bit-for-bit with pairwise
    /// `estimate`/`jaccard` for every representation (HLL included), on
    /// ragged rows of every length 0..n — this covers every multi-lane
    /// kernel's 4/2/1 tail split inside the oracles.
    #[test]
    fn oracle_rows_match_pairwise_for_all_representations(
        n in 20usize..90,
        edge_factor in 2usize..10,
        seed in 0u64..200,
    ) {
        let g = pg_graph::gen::erdos_renyi_gnm(n, n * edge_factor, seed);
        struct RowCheck<'a>(&'a pg_graph::CsrGraph);
        impl OracleVisitor for RowCheck<'_> {
            type Output = Result<(), String>;
            fn visit<O: IntersectionOracle>(self, o: &O) -> Self::Output {
                let mut row = Vec::new();
                for v in 0..self.0.num_vertices() as u32 {
                    // Sweep prefixes so every tail length is exercised.
                    let nv = self.0.neighbors(v);
                    for len in [0, 1, 2, 3, nv.len().saturating_sub(1), nv.len()] {
                        let us = &nv[..len.min(nv.len())];
                        o.estimate_row(v, us, &mut row);
                        for (t, &u) in us.iter().enumerate() {
                            if row[t] != o.estimate(v, u) {
                                return Err(format!("estimate_row v={v} u={u}"));
                            }
                        }
                        o.jaccard_row(v, us, &mut row);
                        for (t, &u) in us.iter().enumerate() {
                            if row[t] != o.jaccard(v, u) {
                                return Err(format!("jaccard_row v={v} u={u}"));
                            }
                        }
                    }
                }
                Ok(())
            }
        }
        for (cfg, label) in all_reps() {
            let pg = ProbGraph::build(&g, &cfg);
            let res = pg.with_oracle(RowCheck(&g));
            prop_assert!(res.is_ok(), "{}: {:?}", label, res);
        }
    }

    /// The rerouted Jarvis–Patrick kernel (edges grouped by source into
    /// row sweeps) selects exactly the edges the pre-refactor per-pair
    /// loop selects, for every representation and similarity kind.
    #[test]
    fn rerouted_clustering_matches_per_pair_reference(
        n in 20usize..80,
        edge_factor in 2usize..8,
        seed in 0u64..100,
        tau in 0.0f64..0.6,
    ) {
        let g = pg_graph::gen::erdos_renyi_gnm(n, n * edge_factor, seed);
        let edges = g.edge_list();
        for kind in [
            SimilarityKind::CommonNeighbors,
            SimilarityKind::Jaccard,
            SimilarityKind::Overlap,
        ] {
            // Absolute-count threshold for CN, fractional for the others.
            let tau = if kind == SimilarityKind::CommonNeighbors { tau * 10.0 } else { tau };
            for (cfg, label) in all_reps() {
                let pg = ProbGraph::build(&g, &cfg);
                let c = clustering::jarvis_patrick_pg(&g, &pg, kind, tau);
                // Pre-refactor reference: per-pair similarity via the
                // pairwise estimator entry points.
                for (i, &(u, v)) in edges.iter().enumerate() {
                    let sim = match kind {
                        SimilarityKind::CommonNeighbors => {
                            pg.estimate_intersection(u, v).max(0.0)
                        }
                        SimilarityKind::Jaccard => pg.estimate_jaccard(u, v),
                        SimilarityKind::Overlap => {
                            let m = g.degree(u).min(g.degree(v));
                            if m == 0 {
                                0.0
                            } else {
                                (pg.estimate_intersection(u, v).max(0.0) / m as f64)
                                    .clamp(0.0, 1.0)
                            }
                        }
                    };
                    prop_assert!(
                        c.selected[i] == (sim > tau),
                        "{} {:?} edge {} ({},{})",
                        label,
                        kind,
                        i,
                        u,
                        v
                    );
                }
            }
        }
    }

    /// The rerouted `tc_estimate` (row sweeps through `with_oracle`)
    /// equals the pre-refactor per-edge `estimate_intersection` sum up to
    /// float association order.
    #[test]
    fn rerouted_tc_estimator_matches_per_pair_reference(
        n in 20usize..90,
        edge_factor in 2usize..10,
        seed in 0u64..100,
    ) {
        let g = pg_graph::gen::erdos_renyi_gnm(n, n * edge_factor, seed);
        for (cfg, label) in all_reps() {
            let pg = ProbGraph::build(&g, &cfg);
            let rerouted = tc_estimator::tc_estimate(&g, &pg);
            let mut per_pair = 0.0f64;
            for (u, v) in g.edges() {
                per_pair += pg.estimate_intersection(u, v).max(0.0);
            }
            per_pair /= 3.0;
            let tol = 1e-12 * per_pair.abs().max(1.0);
            prop_assert!(
                (rerouted - per_pair).abs() <= tol,
                "{label}: rerouted {rerouted} != per-pair {per_pair}"
            );
        }
    }

    /// The rerouted heuristics baselines equal their pre-refactor
    /// per-pair `intersect_card` loops exactly (integer summands).
    #[test]
    fn rerouted_heuristics_match_per_pair_reference(
        n in 20usize..80,
        edge_factor in 2usize..8,
        seed in 0u64..100,
        rho in 0.3f64..1.0,
    ) {
        let g = pg_graph::gen::erdos_renyi_gnm(n, n * edge_factor, seed);
        let dag = pg_graph::orient_by_degree(&g);
        // Reduced Execution reference: the pre-refactor loop.
        let coin = |s: u64, idx: u64| {
            let h = pg_hash::splitmix64_at(s ^ idx.wrapping_mul(0x9e37_79b9_7f4a_7c15));
            (h as f64 / u64::MAX as f64) < rho
        };
        let mut total = 0u64;
        for v in 0..dag.num_vertices() as u32 {
            if !coin(seed, v as u64) {
                continue;
            }
            let np = dag.neighbors_plus(v);
            for &u in np {
                total += intersect_card(np, dag.neighbors_plus(u)) as u64;
            }
        }
        let reference = total as f64 / rho;
        prop_assert_eq!(heuristics::reduced_execution_tc(&g, rho, seed), reference);
        // Partial Processing reference: replicate the deterministic
        // per-(owner, slot) retention sampler and the per-pair loop.
        let sampled: Vec<Vec<u32>> = (0..dag.num_vertices())
            .map(|v| {
                dag.neighbors_plus(v as u32)
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| coin(seed ^ 0x9a77, ((v as u64) << 24) | i as u64))
                    .map(|(_, &u)| u)
                    .collect()
            })
            .collect();
        let mut pp_total = 0u64;
        for v in 0..dag.num_vertices() {
            for &u in &sampled[v] {
                pp_total += intersect_card(&sampled[v], &sampled[u as usize]) as u64;
            }
        }
        let pp_reference = pp_total as f64 / (rho * rho * rho);
        prop_assert_eq!(heuristics::partial_processing_tc(&g, rho, seed), pp_reference);
    }

    /// `tiled_block_sweep` is **bit-identical** per destination to the
    /// untiled `estimate_row` / `jaccard_row` sweep for every
    /// representation and for adversarial tile plans: one-id tiles, odd
    /// tiles with ragged tails, tiles larger than the id space, and
    /// exact-boundary tiles — each crossed with degenerate and odd source
    /// batches. Every edge must be visited exactly once (empty segments
    /// skipped, none double-counted).
    #[test]
    fn tiled_block_sweep_matches_row_sweep_for_adversarial_plans(
        n in 20usize..70,
        edge_factor in 2usize..8,
        seed in 0u64..100,
    ) {
        let g = pg_graph::gen::erdos_renyi_gnm(n, n * edge_factor, seed);
        struct TiledCheck<'a>(&'a pg_graph::CsrGraph);
        impl OracleVisitor for TiledCheck<'_> {
            type Output = Result<(), String>;
            fn visit<O: IntersectionOracle>(self, o: &O) -> Self::Output {
                let g = self.0;
                let n = g.num_vertices();
                // Flat per-edge offsets so fold sinks can address
                // `offs[v] + seg_row_start + t`, like the production sinks.
                let mut offs = vec![0usize; n + 1];
                for v in 0..n {
                    offs[v + 1] = offs[v] + g.neighbors(v as u32).len();
                }
                let m = offs[n];
                let plans = [
                    TilePlan { tile_ids: 1, batch: 1 },
                    TilePlan { tile_ids: 3, batch: 2 },
                    TilePlan { tile_ids: 7, batch: n },         // ragged tail tile
                    TilePlan { tile_ids: n + 5, batch: 5 },     // tile > id space
                    TilePlan { tile_ids: n, batch: 3 },         // exact boundary
                    TilePlan { tile_ids: n.div_ceil(2), batch: 1 },
                ];
                for kind in [BlockKind::Estimate, BlockKind::Jaccard] {
                    // Untiled reference, fresh per kind.
                    let mut row = Vec::new();
                    let mut want = vec![0.0f64; m];
                    for v in 0..n as u32 {
                        let us = g.neighbors(v);
                        match kind {
                            BlockKind::Estimate => o.estimate_row(v, us, &mut row),
                            BlockKind::Jaccard => o.jaccard_row(v, us, &mut row),
                        }
                        want[offs[v as usize]..offs[v as usize + 1]]
                            .copy_from_slice(&row);
                    }
                    for plan in &plans {
                        let got = tiled_block_sweep(
                            n,
                            n,
                            o,
                            plan,
                            kind,
                            |v| g.neighbors(v),
                            || vec![f64::NAN; m],
                            |mut acc: Vec<f64>, v, lo, us, vals| {
                                let base = offs[v as usize] + lo;
                                for (t, &val) in vals.iter().enumerate() {
                                    assert!(
                                        acc[base + t].is_nan(),
                                        "edge visited twice: v={v} slot={}",
                                        lo + t
                                    );
                                    assert_eq!(g.neighbors(v)[lo + t], us[t]);
                                    acc[base + t] = val;
                                }
                                acc
                            },
                            |mut a, b| {
                                for (x, y) in a.iter_mut().zip(b) {
                                    if !y.is_nan() {
                                        assert!(x.is_nan(), "edge visited twice across workers");
                                        *x = y;
                                    }
                                }
                                a
                            },
                        );
                        for i in 0..m {
                            if got[i].to_bits() != want[i].to_bits() {
                                return Err(format!(
                                    "{kind:?} {plan:?} slot {i}: tiled {} != untiled {}",
                                    got[i], want[i]
                                ));
                            }
                        }
                    }
                }
                Ok(())
            }
        }
        for (cfg, label) in all_reps() {
            let pg = ProbGraph::build(&g, &cfg);
            let res = pg.with_oracle(TiledCheck(&g));
            prop_assert!(res.is_ok(), "{}: {:?}", label, res);
        }
    }
}

/// The heuristics' ProbGraph-composed forms run end-to-end for every
/// representation and stay on the same scale as their exact forms.
#[test]
fn heuristics_pg_variants_run_for_every_representation() {
    let g = pg_graph::gen::erdos_renyi_gnm(200, 200 * 15, 9);
    let exact = probgraph::algorithms::triangles::count_exact(&g) as f64;
    for (cfg, label) in all_reps() {
        let re = heuristics::reduced_execution_tc_pg(&g, &cfg, 0.5, 7);
        let pp = heuristics::partial_processing_tc_pg(&g, &cfg, 0.5, 7);
        for (name, est) in [("reduced", re), ("partial", pp)] {
            let rel = est / exact.max(1.0);
            assert!(
                (0.05..20.0).contains(&rel),
                "{label} {name}: est={est} exact={exact}"
            );
        }
    }
}

/// Warm row buffers are reused, never reallocated: after one sweep the
/// buffer's capacity is pinned at the widest row.
#[test]
fn row_buffer_reuse_contract_holds() {
    let g = pg_graph::gen::erdos_renyi_gnm(150, 150 * 10, 3);
    let o = ExactOracle::new(&g);
    let mut row = Vec::new();
    let max_deg = (0..g.num_vertices() as u32)
        .map(|v| g.neighbors(v).len())
        .max()
        .unwrap();
    // Warm-up sweep grows the buffer to the widest row.
    for v in 0..g.num_vertices() as u32 {
        o.estimate_row(v, g.neighbors(v), &mut row);
    }
    assert!(row.capacity() >= max_deg);
    let cap = row.capacity();
    let ptr = row.as_ptr();
    // Every further sweep reuses the same allocation.
    for v in 0..g.num_vertices() as u32 {
        o.estimate_row(v, g.neighbors(v), &mut row);
        assert_eq!(row.capacity(), cap);
        assert!(std::ptr::eq(ptr, row.as_ptr()));
    }
}

/// The block-buffer reuse contract: a warm `estimate_block` /
/// `jaccard_block` buffer is truncated or grown in place, never
/// reallocated, across blocks of varying width (the tile boundaries of a
/// blocked sweep shrink and stretch the flattened segment layout
/// constantly — reallocation there would dwarf the kernels).
#[test]
fn block_buffer_reuse_contract_holds_across_tile_boundaries() {
    let g = pg_graph::gen::erdos_renyi_gnm(150, 150 * 10, 3);
    let o = ExactOracle::new(&g);
    let n = g.num_vertices() as u32;
    // Build block layouts of decreasing batch width so `out` must shrink
    // (truncate, not zero) and then grow again within warm capacity.
    let layout = |s0: u32, s1: u32| {
        let mut sources = Vec::new();
        let mut offs = vec![0usize];
        let mut us = Vec::new();
        for v in s0..s1 {
            let nv = g.neighbors(v);
            if nv.is_empty() {
                continue;
            }
            sources.push(v);
            us.extend_from_slice(nv);
            offs.push(us.len());
        }
        (sources, offs, us)
    };
    let mut out = Vec::new();
    // Warm-up: the widest block pins the allocation.
    let (sources, offs, us) = layout(0, n);
    o.estimate_block(&sources, &offs, &us, &mut out);
    assert_eq!(out.len(), us.len());
    let cap = out.capacity();
    let ptr = out.as_ptr();
    for kind in [BlockKind::Estimate, BlockKind::Jaccard] {
        for width in [1u32, 2, 7, 16, n / 2, n] {
            let mut s0 = 0u32;
            while s0 < n {
                let s1 = (s0 + width).min(n);
                let (sources, offs, us) = layout(s0, s1);
                if !us.is_empty() {
                    match kind {
                        BlockKind::Estimate => o.estimate_block(&sources, &offs, &us, &mut out),
                        BlockKind::Jaccard => o.jaccard_block(&sources, &offs, &us, &mut out),
                    }
                    assert_eq!(out.len(), us.len());
                    assert_eq!(out.capacity(), cap, "block buffer reallocated");
                    assert!(std::ptr::eq(ptr, out.as_ptr()));
                    // Spot-check the narrow blocks match the pairwise path.
                    for (k, &v) in sources.iter().enumerate() {
                        let (a, b) = (offs[k], offs[k + 1]);
                        for (t, &u) in us[a..b].iter().enumerate() {
                            let want = match kind {
                                BlockKind::Estimate => o.estimate(v, u),
                                BlockKind::Jaccard => o.jaccard(v, u),
                            };
                            assert_eq!(out[a + t].to_bits(), want.to_bits());
                        }
                    }
                }
                s0 = s1;
            }
        }
    }
}

/// The rerouted call sites (`tc_estimate`, Jarvis–Patrick, the heuristics
/// baselines) produce the same numbers whether the blocked schedule is
/// forced on (tile budget = one destination window, the most adversarial
/// legal plan) or forced off (budget so large `plan_tiles` declines):
/// clustering decisions exactly, triangle sums to float association order.
#[test]
fn forced_tiled_call_sites_match_untiled() {
    let g = pg_graph::gen::erdos_renyi_gnm(250, 250 * 8, 11);
    struct WindowBytes;
    impl OracleVisitor for WindowBytes {
        type Output = Option<usize>;
        fn visit<O: IntersectionOracle>(self, o: &O) -> Self::Output {
            o.dest_window_bytes()
        }
    }
    for (cfg, label) in all_reps() {
        let pg = ProbGraph::build(&g, &cfg);
        // Budget of exactly one window forces one-id tiles for the Bloom
        // oracles; the sketch families without a flat destination window
        // (khash/kmv/hll) keep their row path either way — the equality
        // then pins that the planner really declined.
        let window = pg.with_oracle(WindowBytes).unwrap_or(64);
        let tiled = pg_parallel::with_tile_bytes(window, || {
            let tc = tc_estimator::tc_estimate(&g, &pg);
            let c = clustering::jarvis_patrick_pg(&g, &pg, SimilarityKind::Jaccard, 0.2);
            let re = heuristics::reduced_execution_tc_pg(&g, &cfg, 0.6, 7);
            let pp = heuristics::partial_processing_tc_pg(&g, &cfg, 0.6, 7);
            (tc, c.selected, re, pp)
        });
        let untiled = pg_parallel::with_tile_bytes(usize::MAX / 4, || {
            let tc = tc_estimator::tc_estimate(&g, &pg);
            let c = clustering::jarvis_patrick_pg(&g, &pg, SimilarityKind::Jaccard, 0.2);
            let re = heuristics::reduced_execution_tc_pg(&g, &cfg, 0.6, 7);
            let pp = heuristics::partial_processing_tc_pg(&g, &cfg, 0.6, 7);
            (tc, c.selected, re, pp)
        });
        let close = |a: f64, b: f64| (a - b).abs() <= 1e-12 * a.abs().max(1.0);
        assert!(
            close(tiled.0, untiled.0),
            "{label} tc: {} vs {}",
            tiled.0,
            untiled.0
        );
        assert_eq!(tiled.1, untiled.1, "{label} clustering selections diverge");
        assert!(
            close(tiled.2, untiled.2),
            "{label} reduced: {} vs {}",
            tiled.2,
            untiled.2
        );
        assert!(
            close(tiled.3, untiled.3),
            "{label} partial: {} vs {}",
            tiled.3,
            untiled.3
        );
    }
}

/// `forward_neighbors` is exactly the strictly-greater suffix, and the
/// forward runs partition the edge list in order — the invariant the
/// grouped edge kernels rely on.
#[test]
fn forward_runs_partition_edge_list() {
    for seed in 0..5u64 {
        let g = pg_graph::gen::erdos_renyi_gnm(120, 1400, seed);
        let edges = g.edge_list();
        let mut rebuilt = Vec::new();
        for u in 0..g.num_vertices() as u32 {
            for &v in g.forward_neighbors(u) {
                assert!(v > u);
                rebuilt.push((u, v));
            }
        }
        assert_eq!(rebuilt, edges);
    }
}
