//! Zero-copy load equivalence: validating a snapshot **in place** — from
//! an aligned byte buffer or an mmapped file — must serve estimates
//! bit-identical to the copying loader, for every representation variant
//! the suite tracks (bf1, bf2, bf2_limit, bf2_or, cbf, khash, onehash,
//! kmv, hll).

use probgraph::{
    AlignedBytes, BfEstimator, IntersectionOracle, OracleVisitor, PgConfig, ProbGraph, ProbGraphIn,
    Representation,
};

use pg_graph::{gen, orient_by_degree, OrientedDag};

fn variants() -> Vec<(&'static str, PgConfig)> {
    vec![
        ("bf1", PgConfig::new(Representation::Bloom { b: 1 }, 0.25)),
        ("bf2", PgConfig::new(Representation::Bloom { b: 2 }, 0.25)),
        (
            "bf2_limit",
            PgConfig::new(Representation::Bloom { b: 2 }, 0.25)
                .with_bf_estimator(BfEstimator::Limit),
        ),
        (
            "bf2_or",
            PgConfig::new(Representation::Bloom { b: 2 }, 0.25).with_bf_estimator(BfEstimator::Or),
        ),
        (
            "cbf",
            PgConfig::new(Representation::CountingBloom { b: 2 }, 0.25),
        ),
        ("khash", PgConfig::new(Representation::KHash, 0.25)),
        ("onehash", PgConfig::new(Representation::OneHash, 0.25)),
        ("kmv", PgConfig::new(Representation::Kmv, 0.25)),
        ("hll", PgConfig::new(Representation::Hll, 0.25)),
    ]
}

/// Sequential triangle-count sweep — deterministic accumulation order, so
/// equal sketches produce equal bits.
fn seq_tc(dag: &OrientedDag, pg: &ProbGraphIn<'_>) -> f64 {
    struct V<'a>(&'a OrientedDag);
    impl OracleVisitor for V<'_> {
        type Output = f64;
        fn visit<O: IntersectionOracle>(self, o: &O) -> f64 {
            let mut acc = 0.0f64;
            let mut row = Vec::new();
            for v in 0..self.0.num_vertices() {
                o.estimate_row(v as u32, self.0.neighbors_plus(v as u32), &mut row);
                acc += row.iter().fold(0.0f64, |s, &e| s + e.max(0.0));
            }
            acc
        }
    }
    pg.with_oracle(V(dag))
}

fn assert_same(name: &str, how: &str, dag: &OrientedDag, a: &ProbGraphIn<'_>, b: &ProbGraphIn<'_>) {
    assert_eq!(a.len(), b.len(), "{name}/{how}: set count");
    assert_eq!(a.sizes(), b.sizes(), "{name}/{how}: sizes");
    assert_eq!(a.params(), b.params(), "{name}/{how}: params");
    assert_eq!(a.seed(), b.seed(), "{name}/{how}: seed");
    let ta = seq_tc(dag, a);
    let tb = seq_tc(dag, b);
    assert_eq!(
        ta.to_bits(),
        tb.to_bits(),
        "{name}/{how}: TC sweep differs: {ta} vs {tb}"
    );
    // Spot-check pairwise estimates too (different code path than rows).
    let n = a.len() as u32;
    for (u, v) in [(0, 1), (1, 2), (3, n - 1), (n / 2, n / 3)] {
        let ea = a.estimate_intersection(u, v);
        let eb = b.estimate_intersection(u, v);
        assert_eq!(
            ea.to_bits(),
            eb.to_bits(),
            "{name}/{how}: estimate({u},{v})"
        );
    }
}

#[test]
fn borrowed_and_mmap_loads_match_copying_loader_bitwise() {
    let g = gen::kronecker(8, 8, 7);
    let dag = orient_by_degree(&g);
    for (name, cfg) in variants() {
        let pg = ProbGraph::build_dag(&dag, g.memory_bytes(), &cfg);
        let bytes = pg.snapshot_to_bytes();

        // Copying loader: the baseline.
        let copied = ProbGraph::from_snapshot_bytes(&bytes)
            .unwrap_or_else(|e| panic!("{name}: copying load failed: {e}"));
        assert_same(name, "copied-vs-built", &dag, &pg, &copied);

        // Borrowed loader over an aligned receive buffer: validates and
        // serves in place, no array copies.
        let buf = AlignedBytes::copy_from(&bytes);
        let borrowed = ProbGraphIn::from_snapshot_bytes_borrowed(&buf)
            .unwrap_or_else(|e| panic!("{name}: borrowed load failed: {e}"));
        assert_same(name, "borrowed-vs-copied", &dag, &copied, &borrowed);

        // Mmap loader: the same borrowed decode over a mapped file.
        #[cfg(unix)]
        {
            let path = std::env::temp_dir().join(format!(
                "pg_borrowed_equiv_{name}_{}.snap",
                std::process::id()
            ));
            pg.save_snapshot(&path)
                .unwrap_or_else(|e| panic!("{name}: save failed: {e}"));
            let mapping = probgraph::load_snapshot_mmap(&path)
                .unwrap_or_else(|e| panic!("{name}: mmap load failed: {e}"));
            let mapped = mapping.graph().expect("validated at load time");
            assert_same(name, "mmap-vs-copied", &dag, &copied, &mapped);
            drop(mapped);
            drop(mapping);
            let _ = std::fs::remove_file(&path);
        }
    }
}

#[test]
fn unaligned_borrowed_load_still_matches() {
    // Shift the payload by one byte so every section is misaligned; the
    // borrowed loader must fall back to copying those arrays and still
    // produce identical estimates.
    let g = gen::kronecker(7, 8, 11);
    let dag = orient_by_degree(&g);
    for (name, cfg) in variants() {
        let pg = ProbGraph::build_dag(&dag, g.memory_bytes(), &cfg);
        let bytes = pg.snapshot_to_bytes();
        let copied = ProbGraph::from_snapshot_bytes(&bytes).unwrap();

        let mut shifted = vec![0u8; bytes.len() + 1];
        shifted[1..].copy_from_slice(&bytes);
        let borrowed = ProbGraphIn::from_snapshot_bytes_borrowed(&shifted[1..])
            .unwrap_or_else(|e| panic!("{name}: unaligned borrowed load failed: {e}"));
        assert_same(name, "unaligned-vs-copied", &dag, &copied, &borrowed);
    }
}
