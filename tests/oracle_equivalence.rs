//! Property tests for the monomorphized intersection-oracle layer:
//!
//! * every generic-oracle kernel, run with the **exact oracle**, is
//!   bit-identical to an independent exact reference implementation (the
//!   pre-refactor per-algorithm loops, reproduced here);
//! * every generic-oracle kernel, run through `ProbGraph::with_oracle`,
//!   is numerically identical (same seed) to the per-edge
//!   `estimate_intersection` / `estimate_jaccard` path it replaced, for
//!   Bloom (AND/Limit/OR), k-hash, 1-hash, and KMV;
//! * the new HLL representation tracks exact triangle counts within a
//!   sanity band on the generator families.

use probgraph::algorithms::{cliques, clustering, clustering_coeff, triangles};
use probgraph::intersect::{intersect_card, intersect_set};
use probgraph::oracle::{ExactOracle, IntersectionOracle, OracleVisitor};
use probgraph::{BfEstimator, PgConfig, ProbGraph, Representation};
use proptest::prelude::*;

/// Reference exact triangle count: the pre-refactor hand-written loop.
fn reference_tc(dag: &pg_graph::OrientedDag) -> u64 {
    let mut tc = 0u64;
    for v in 0..dag.num_vertices() as u32 {
        let np = dag.neighbors_plus(v);
        for &u in np {
            tc += intersect_card(np, dag.neighbors_plus(u)) as u64;
        }
    }
    tc
}

/// Reference exact 4-clique count: the pre-refactor hand-written loop.
fn reference_c4(dag: &pg_graph::OrientedDag) -> u64 {
    let mut c4 = 0u64;
    let mut c3 = Vec::new();
    for u in 0..dag.num_vertices() as u32 {
        let nu = dag.neighbors_plus(u);
        for &v in nu {
            intersect_set(nu, dag.neighbors_plus(v), &mut c3);
            for &w in &c3 {
                c4 += intersect_card(dag.neighbors_plus(w), &c3) as u64;
            }
        }
    }
    c4
}

/// Per-edge reference of the approximate triangle count: the pre-refactor
/// loop dispatching the representation enum on every edge.
fn reference_tc_pg(dag: &pg_graph::OrientedDag, pg: &ProbGraph) -> f64 {
    let mut tc = 0.0f64;
    for v in 0..dag.num_vertices() as u32 {
        for &u in dag.neighbors_plus(v) {
            tc += pg.estimate_intersection(v, u).max(0.0);
        }
    }
    tc
}

fn non_exact_reps() -> Vec<(PgConfig, &'static str)> {
    let mk = |r| PgConfig::new(r, 0.3).with_seed(0xFEED);
    vec![
        (mk(Representation::Bloom { b: 1 }), "BF1-AND"),
        (mk(Representation::Bloom { b: 2 }), "BF2-AND"),
        (
            mk(Representation::Bloom { b: 2 }).with_bf_estimator(BfEstimator::Limit),
            "BF2-L",
        ),
        (
            mk(Representation::Bloom { b: 2 }).with_bf_estimator(BfEstimator::Or),
            "BF2-OR",
        ),
        (mk(Representation::CountingBloom { b: 2 }), "CBF2-AND"),
        (
            mk(Representation::CountingBloom { b: 2 }).with_bf_estimator(BfEstimator::Or),
            "CBF2-OR",
        ),
        (mk(Representation::KHash), "kH"),
        (mk(Representation::OneHash), "1H"),
        (mk(Representation::Kmv), "KMV"),
        (mk(Representation::Hll), "HLL"),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The single generic triangle kernel backed by the exact oracle is
    /// bit-identical to the naive exact reference.
    #[test]
    fn exact_oracle_triangles_bit_identical(
        n in 10usize..120,
        edge_factor in 1usize..12,
        seed in 0u64..500,
    ) {
        let g = pg_graph::gen::erdos_renyi_gnm(n, n * edge_factor, seed);
        let dag = pg_graph::orient_by_degree(&g);
        prop_assert_eq!(triangles::count_exact_on_dag(&dag), reference_tc(&dag));
    }

    /// Same for the 4-clique kernel.
    #[test]
    fn exact_oracle_cliques_bit_identical(
        n in 8usize..60,
        edge_factor in 1usize..10,
        seed in 0u64..500,
    ) {
        let g = pg_graph::gen::erdos_renyi_gnm(n, n * edge_factor, seed);
        let dag = pg_graph::orient_by_degree(&g);
        prop_assert_eq!(cliques::count_exact_on_dag(&dag), reference_c4(&dag));
    }

    /// The generic per-vertex triangle kernel with the exact oracle matches
    /// the naive per-vertex reference exactly.
    #[test]
    fn exact_oracle_per_vertex_triangles_bit_identical(
        n in 10usize..100,
        edge_factor in 1usize..10,
        seed in 0u64..500,
    ) {
        let g = pg_graph::gen::erdos_renyi_gnm(n, n * edge_factor, seed);
        let t = clustering_coeff::triangles_per_vertex(&g);
        for v in 0..n as u32 {
            let nv = g.neighbors(v);
            let mut want = 0u64;
            for &u in nv {
                want += intersect_card(nv, g.neighbors(u)) as u64;
            }
            prop_assert!(t[v as usize] == want / 2, "v={v}: {} != {}", t[v as usize], want / 2);
        }
    }

    /// Every sketch-backed generic kernel equals the per-edge
    /// enum-dispatch path with the same seed, for every representation the
    /// pre-refactor code supported. Individual estimates are bit-identical
    /// (see `estimate_row_matches_pairwise_for_all_representations`); the
    /// kernel totals may differ only by parallel-reduction association,
    /// bounded here at ulp scale.
    #[test]
    fn hoisted_kernels_match_per_edge_dispatch(
        n in 20usize..120,
        edge_factor in 2usize..14,
        seed in 0u64..200,
    ) {
        let g = pg_graph::gen::erdos_renyi_gnm(n, n * edge_factor, seed);
        let dag = pg_graph::orient_by_degree(&g);
        for (cfg, label) in non_exact_reps() {
            let pg = ProbGraph::build_dag(&dag, g.memory_bytes(), &cfg);
            let hoisted = triangles::count_approx_on_dag(&dag, &pg);
            let per_edge = reference_tc_pg(&dag, &pg);
            let tol = 1e-12 * per_edge.abs().max(1.0);
            prop_assert!(
                (hoisted - per_edge).abs() <= tol,
                "{label}: hoisted {hoisted} != per-edge {per_edge}"
            );
        }
    }

    /// The Jarvis–Patrick generic kernel selects exactly the edges the
    /// per-pair similarity path selects, for exact and sketched oracles.
    #[test]
    fn clustering_kernel_matches_per_pair_path(
        n in 20usize..100,
        edge_factor in 2usize..10,
        seed in 0u64..200,
        tau in 0.0f64..0.6,
    ) {
        use probgraph::algorithms::similarity as sim;
        let g = pg_graph::gen::erdos_renyi_gnm(n, n * edge_factor, seed);
        let kind = clustering::SimilarityKind::Jaccard;
        // Exact kernel vs per-pair exact similarity.
        let c = clustering::jarvis_patrick_exact(&g, kind, tau);
        let edges = g.edge_list();
        for (i, &(u, v)) in edges.iter().enumerate() {
            prop_assert_eq!(c.selected[i], sim::jaccard(&g, u, v) > tau);
        }
        // Sketched kernel vs per-pair estimate_jaccard.
        for (cfg, label) in non_exact_reps() {
            let pg = ProbGraph::build(&g, &cfg);
            let cpg = clustering::jarvis_patrick_pg(&g, &pg, kind, tau);
            for (i, &(u, v)) in edges.iter().enumerate() {
                prop_assert!(
                    cpg.selected[i] == (pg.estimate_jaccard(u, v) > tau),
                    "{label} edge {i}"
                );
            }
        }
    }

    /// `estimate_row` agrees with pairwise `estimate` for every oracle the
    /// ProbGraph can resolve (the Bloom row path has its own fused code).
    #[test]
    fn estimate_row_matches_pairwise_for_all_representations(
        n in 20usize..90,
        edge_factor in 2usize..10,
        seed in 0u64..200,
    ) {
        let g = pg_graph::gen::erdos_renyi_gnm(n, n * edge_factor, seed);
        struct RowCheck<'a>(&'a pg_graph::CsrGraph);
        impl OracleVisitor for RowCheck<'_> {
            type Output = Result<(), (u32, u32, f64, f64)>;
            fn visit<O: IntersectionOracle>(self, o: &O) -> Self::Output {
                let mut row = Vec::new();
                for v in 0..self.0.num_vertices() as u32 {
                    let nv = self.0.neighbors(v);
                    o.estimate_row(v, nv, &mut row);
                    for (t, &u) in nv.iter().enumerate() {
                        let pair = o.estimate(v, u);
                        if row[t] != pair {
                            return Err((v, u, row[t], pair));
                        }
                    }
                }
                Ok(())
            }
        }
        for (cfg, label) in non_exact_reps() {
            let pg = ProbGraph::build(&g, &cfg);
            prop_assert!(pg.with_oracle(RowCheck(&g)).is_ok(), "{}", label);
        }
    }
}

/// The HLL representation is wired end-to-end and lands in a sane band on
/// the generator families (its inclusion–exclusion error scales with the
/// union, so the band is looser than the element-based sketches').
#[test]
fn hll_triangle_counts_sane_on_generator_families() {
    // Dense families where |N∩N'| is a large fraction of the union — the
    // regime where inclusion–exclusion estimators are usable.
    let dense = [
        ("complete-60", pg_graph::gen::complete(60)),
        (
            "er-dense",
            pg_graph::gen::erdos_renyi_gnm(300, 300 * 40, 11),
        ),
        (
            "dimacs-c500-9",
            pg_graph::gen::instance("dimacs-c500-9", 4).unwrap(),
        ),
    ];
    for (name, g) in dense {
        let exact = triangles::count_exact(&g) as f64;
        assert!(exact > 0.0, "{name}");
        let est = triangles::count_approx(&g, &PgConfig::new(Representation::Hll, 0.33));
        let rel = est / exact;
        assert!(
            (0.2..5.0).contains(&rel),
            "{name}: est={est} exact={exact} rel={rel}"
        );
    }
    // Triangle-free graph: clamped estimates must stay near zero relative
    // to the m·d scale.
    let bip = pg_graph::gen::complete_bipartite(40, 40);
    let est = triangles::count_approx(&bip, &PgConfig::new(Representation::Hll, 0.33));
    let exact_scale = (bip.num_edges() * 40) as f64;
    assert!(est < 0.25 * exact_scale, "est={est} scale={exact_scale}");
}

/// HLL works through every algorithm family that accepts it (everything
/// except 4-cliques, which needs element queries).
#[test]
fn hll_reaches_every_estimate_based_algorithm() {
    let g = pg_graph::gen::erdos_renyi_gnm(150, 150 * 20, 3);
    let cfg = PgConfig::new(Representation::Hll, 0.33);
    let pg = ProbGraph::build(&g, &cfg);
    // Clustering.
    let c = clustering::jarvis_patrick_pg(&g, &pg, clustering::SimilarityKind::Jaccard, 0.2);
    assert!(c.num_edges <= g.num_edges());
    // Clustering coefficients.
    let gc = clustering_coeff::global_clustering_pg(&g, &pg);
    assert!((0.0..=1.0).contains(&gc));
    for c in clustering_coeff::local_clustering_pg(&g, &pg) {
        assert!((0.0..=1.0).contains(&c));
    }
    // Link prediction.
    let out = probgraph::algorithms::link_prediction::evaluate_pg(&g, 0.15, 5, &cfg);
    assert!(out.num_removed > 0);
    // Per-pair similarity measures.
    let (u, v) = g.edges().next().unwrap();
    assert!(pg.estimate_intersection(u, v) >= 0.0);
    assert!((0.0..=1.0).contains(&pg.estimate_jaccard(u, v)));
}

/// The exact oracle over a CSR graph reproduces the similarity module's
/// closed forms exactly.
#[test]
fn exact_oracle_similarity_matches_closed_forms() {
    use probgraph::algorithms::similarity as sim;
    let g = pg_graph::gen::kronecker(8, 8, 5);
    let o = ExactOracle::new(&g);
    for (u, v) in g.edges().take(300) {
        assert_eq!(
            sim::common_neighbors_with(&o, u, v),
            sim::common_neighbors(&g, u, v) as f64
        );
        assert_eq!(sim::jaccard_with(&o, u, v), sim::jaccard(&g, u, v));
        assert_eq!(sim::overlap_with(&o, u, v), sim::overlap(&g, u, v));
        assert_eq!(
            sim::total_neighbors_with(&o, u, v) as usize,
            sim::total_neighbors(&g, u, v)
        );
    }
}
