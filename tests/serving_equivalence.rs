//! Race harness for the epoch-snapshot serving layer — the
//! ThreadSanitizer target (see the `tsan` CI job).
//!
//! Readers on real threads pin epochs off a [`ShardedProbGraph`] while
//! the writer churns batches, removals, and publishes underneath them.
//! Every assertion is *exact*: each epoch number maps to one serially
//! precomputed prefix of the batch stream, so a pinned snapshot must
//! reproduce that prefix's fingerprint bit-for-bit — any torn read,
//! premature reclamation, or double-buffer reuse of a pinned snapshot
//! shows up as a fingerprint mismatch (and as a data race under TSan).

use probgraph::serving::ShardedProbGraph;
use probgraph::{PgConfig, ProbGraph, Representation};
use std::sync::atomic::{AtomicBool, Ordering};

type Edge = (u32, u32);

/// An exact per-epoch fingerprint: total recorded set size plus raw
/// intersection estimates of a fixed probe set. f64s compare with `==`
/// — the serving layer promises bit-identity to the serial prefix, not
/// approximate agreement.
fn fingerprint(pg: &ProbGraph, probes: &[Edge]) -> (u64, Vec<f64>) {
    let sum = pg.sizes().iter().map(|&s| s as u64).sum();
    let ests = probes
        .iter()
        .map(|&(u, v)| pg.estimate_intersection(u, v))
        .collect();
    (sum, ests)
}

/// Serially streams `batches` one by one, recording the fingerprint
/// after each prefix: `expected[k]` is what epoch `k` must look like.
fn expected_per_epoch(
    n: usize,
    base_bytes: usize,
    cfg: &PgConfig,
    batches: &[&[Edge]],
    probes: &[Edge],
) -> Vec<(u64, Vec<f64>)> {
    let mut serial = ProbGraph::stream_from(n, base_bytes, cfg, &[]);
    let mut expected = vec![fingerprint(&serial, probes)];
    for batch in batches {
        serial.apply_batch(batch);
        expected.push(fingerprint(&serial, probes));
    }
    expected
}

/// The core race: `readers` threads continuously pin snapshots and check
/// them against the precomputed per-epoch fingerprints while `body`
/// (the writer) runs to completion on the calling thread.
fn race_epoch_checks<F: FnOnce()>(
    reader: &probgraph::ServingReader,
    probes: &[Edge],
    expected: &[(u64, Vec<f64>)],
    readers: usize,
    body: F,
) {
    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        for _ in 0..readers {
            let reader = reader.clone();
            let stop = &stop;
            scope.spawn(move || {
                let mut pins = 0usize;
                loop {
                    let done = stop.load(Ordering::Relaxed);
                    let snap = reader.snapshot();
                    let epoch = snap.epoch() as usize;
                    assert!(epoch < expected.len(), "epoch {epoch} out of range");
                    assert_eq!(
                        fingerprint(&snap, probes),
                        expected[epoch],
                        "pinned epoch {epoch} does not match its serial prefix"
                    );
                    assert_eq!(snap.epoch() as usize, epoch, "epoch moved under a pin");
                    pins += 1;
                    if done {
                        break;
                    }
                }
                assert!(pins >= 1, "reader never pinned an epoch");
            });
        }
        body();
        stop.store(true, Ordering::Relaxed);
    });
}

/// Insert-only churn: every pinned epoch equals its serial prefix,
/// bit-for-bit, for a mergeable (Bloom) and a sample-based (KMV)
/// representation, while four readers race the writer.
#[test]
fn pinned_epochs_match_serial_prefixes_under_churn() {
    let g = pg_graph::gen::erdos_renyi_gnm(120, 900, 11);
    let edges = g.edge_list();
    let probes: Vec<Edge> = edges.iter().copied().take(8).collect();
    let batches: Vec<&[Edge]> = edges.chunks(48).collect();
    for rep in [Representation::Bloom { b: 2 }, Representation::Kmv] {
        let cfg = PgConfig::new(rep, 0.3).with_seed(0xD1FF);
        let expected =
            expected_per_epoch(g.num_vertices(), g.memory_bytes(), &cfg, &batches, &probes);
        let mut srv = ShardedProbGraph::with_shards(g.num_vertices(), g.memory_bytes(), &cfg, 4);
        let reader = srv.reader();
        race_epoch_checks(&reader, &probes, &expected, 4, || {
            for batch in &batches {
                srv.apply_batch(batch);
                srv.publish_epoch();
            }
        });
        assert_eq!(srv.epoch() as usize, batches.len());
    }
}

/// Removal churn: counting-Bloom counters decrement through the shard
/// queues while readers pin epochs. Rounds alternate staged inserts and
/// staged removals of earlier edges before each publish, so each epoch
/// is a mixed prefix — precomputed by replaying the same rounds
/// serially.
#[test]
fn pinned_epochs_match_serial_prefixes_under_removal_churn() {
    let g = pg_graph::gen::erdos_renyi_gnm(100, 700, 23);
    let edges = g.edge_list();
    let probes: Vec<Edge> = edges.iter().copied().take(8).collect();
    let cfg = PgConfig::new(Representation::CountingBloom { b: 2 }, 0.3).with_seed(0xD1FF);

    // Round r: insert chunk r, then remove every 3rd edge of chunk r-1.
    let chunks: Vec<&[Edge]> = edges.chunks(40).collect();
    let removal_for = |r: usize| -> Vec<Edge> {
        if r == 0 {
            return Vec::new();
        }
        chunks[r - 1].iter().copied().step_by(3).collect()
    };

    // Serial replay — one fingerprint per published round.
    let mut serial = ProbGraph::stream_from(g.num_vertices(), g.memory_bytes(), &cfg, &[]);
    let mut expected = vec![fingerprint(&serial, &probes)];
    for (r, chunk) in chunks.iter().enumerate() {
        serial.apply_batch(chunk);
        serial.remove_batch(&removal_for(r));
        expected.push(fingerprint(&serial, &probes));
    }

    let mut srv = ShardedProbGraph::with_shards(g.num_vertices(), g.memory_bytes(), &cfg, 4);
    let reader = srv.reader();
    race_epoch_checks(&reader, &probes, &expected, 3, || {
        for (r, chunk) in chunks.iter().enumerate() {
            srv.stage_batch(chunk);
            srv.stage_removals(&removal_for(r));
            srv.publish_epoch();
        }
    });
    assert_eq!(srv.epoch() as usize, chunks.len());
}

/// Big staged rounds cross the parallel-drain threshold, so the lane
/// drains themselves fork across pool workers while readers race the
/// publishes — the full write path (route → parallel drain → gather →
/// publish) under TSan.
#[test]
fn parallel_lane_drains_race_cleanly_with_readers() {
    let g = pg_graph::gen::erdos_renyi_gnm(400, 6000, 31);
    let edges = g.edge_list();
    let probes: Vec<Edge> = edges.iter().copied().take(8).collect();
    let cfg = PgConfig::new(Representation::Bloom { b: 2 }, 0.3).with_seed(0xD1FF);
    // Three mega-rounds of ~2000 edges (≥4000 routed updates each): well
    // past PARALLEL_DRAIN_THRESHOLD, so apply_pending forks per lane.
    let rounds: Vec<&[Edge]> = edges.chunks(edges.len().div_ceil(3)).collect();
    let expected = expected_per_epoch(g.num_vertices(), g.memory_bytes(), &cfg, &rounds, &probes);
    let mut srv = ShardedProbGraph::with_shards(g.num_vertices(), g.memory_bytes(), &cfg, 4);
    let reader = srv.reader();
    race_epoch_checks(&reader, &probes, &expected, 3, || {
        // Force a multi-worker pool even on single-core runners, so the
        // parallel drain branch (not the serial fallback) is what races
        // the readers.
        pg_parallel::with_threads(4, || {
            for round in &rounds {
                srv.stage_batch(round);
                assert!(srv.pending_updates() > 0);
                srv.publish_epoch();
            }
        });
    });
    assert_eq!(srv.pending_updates(), 0);
}

/// A held guard protects its snapshot across later publishes: the
/// pinned epoch keeps reading its own serial prefix — never a newer
/// epoch's bytes, never a reclaimed buffer — until the guard drops.
#[test]
fn held_guard_survives_later_publishes() {
    let g = pg_graph::gen::erdos_renyi_gnm(80, 500, 3);
    let edges = g.edge_list();
    let probes: Vec<Edge> = edges.iter().copied().take(8).collect();
    let cfg = PgConfig::new(Representation::Bloom { b: 2 }, 0.3).with_seed(0xD1FF);
    let batches: Vec<&[Edge]> = edges.chunks(50).collect();
    let expected = expected_per_epoch(g.num_vertices(), g.memory_bytes(), &cfg, &batches, &probes);
    let mut srv = ShardedProbGraph::with_shards(g.num_vertices(), g.memory_bytes(), &cfg, 2);

    srv.apply_batch(batches[0]);
    srv.publish_epoch();
    let reader = srv.reader();
    let guard = reader.snapshot();
    assert_eq!(guard.epoch(), 1);

    // Publish every remaining batch while the guard is held. Each
    // publish retires a snapshot; none of them may touch epoch 1's.
    for batch in &batches[1..] {
        srv.apply_batch(batch);
        srv.publish_epoch();
        assert_eq!(
            fingerprint(&guard, &probes),
            expected[1],
            "held guard drifted after a publish"
        );
    }
    assert_eq!(guard.epoch(), 1);
    drop(guard);

    // With the pin gone the writer's next publishes recycle buffers and
    // the latest epoch reads the full stream's fingerprint.
    srv.publish_epoch();
    let snap = reader.snapshot();
    assert_eq!(fingerprint(&snap, &probes), expected[batches.len()]);
}
