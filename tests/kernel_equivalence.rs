//! Property tests proving the fused/batched kernels are **bit-identical**
//! to the naive reference paths they replaced:
//!
//! * `and_or_ones_words` (one traversal, four statistics) vs separate
//!   AND/OR/popcount passes;
//! * `BloomCollection::pair_ones` (cached popcounts + inclusion–exclusion)
//!   vs the general fused kernel over the raw windows;
//! * batched `HashFamily::hashes_into`/`buckets_into` (premixed, unrolled)
//!   vs per-function scalar hashing;
//! * batched Bloom construction vs a scalar-hash reference build;
//! * the memoized Swamidass estimators vs the closed forms, across random
//!   sketches and budget-shaped parameters;
//! * the branchless `merge_count` vs a hash-set reference.

use pg_hash::HashFamily;
use pg_sketch::bitvec::{and_count_words, and_or_ones_words, count_ones_words, or_count_words};
use pg_sketch::{estimators, BloomCollection, BloomFilter};
use proptest::collection::vec;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fused_word_kernel_matches_separate_passes(
        words in vec((0u64..u64::MAX, 0u64..u64::MAX), 0..70)
    ) {
        let a: Vec<u64> = words.iter().map(|&(x, _)| x).collect();
        let b: Vec<u64> = words.iter().map(|&(_, y)| y).collect();
        let p = and_or_ones_words(&a, &b);
        prop_assert_eq!(p.and_ones, and_count_words(&a, &b));
        prop_assert_eq!(p.or_ones, or_count_words(&a, &b));
        prop_assert_eq!(p.a_ones, count_ones_words(&a));
        prop_assert_eq!(p.b_ones, count_ones_words(&b));
        // Inclusion–exclusion invariant that the collection fast path uses.
        prop_assert_eq!(p.a_ones + p.b_ones, p.and_ones + p.or_ones);
    }

    #[test]
    fn collection_pair_path_matches_general_kernel(
        x in vec(0u32..5_000, 0..250),
        y in vec(0u32..5_000, 0..250),
        bits in 1usize..2_000,
        b in 1usize..5,
        seed in 0u64..100,
    ) {
        let col = BloomCollection::build(2, bits, b, seed, |i| if i == 0 { &x } else { &y });
        let fused = col.pair_ones(0, 1);
        let general = and_or_ones_words(col.words(0), col.words(1));
        prop_assert_eq!(fused, general);
        prop_assert_eq!(fused.and_ones, col.and_ones(0, 1));
        prop_assert_eq!(fused.or_ones, col.or_ones(0, 1));
        prop_assert_eq!(fused.a_ones, col.count_ones(0));
    }

    #[test]
    fn batched_hashing_matches_scalar(
        k in 1usize..40,
        m in 1usize..100_000,
        seed in 0u64..1_000,
        keys in vec(0u64..u64::MAX, 1..50),
    ) {
        let family = HashFamily::new(k, seed);
        let mut hashes = vec![0u32; k];
        let mut buckets = vec![0u32; k];
        for &key in &keys {
            family.hashes_into(key, &mut hashes);
            family.buckets_into(key, m, &mut buckets);
            for i in 0..k {
                prop_assert_eq!(hashes[i], family.hash32(i, key));
                prop_assert_eq!(buckets[i] as usize, family.bucket(i, key, m));
            }
        }
    }

    #[test]
    fn batched_bloom_build_matches_scalar_reference(
        items in vec(0u32..100_000, 0..300),
        bits in 64usize..4_096,
        b in 1usize..5,
        seed in 0u64..100,
    ) {
        // Batched construction (BloomFilter::insert + collection build).
        let filter = BloomFilter::from_set(&items, bits, b, seed);
        let col = BloomCollection::build(1, bits, b, seed, |_| &items[..]);
        // Scalar-hash reference build over the same rounded bit count.
        let rounded = col.bits_per_set();
        let family = HashFamily::new(b, seed);
        let mut reference = vec![0u64; rounded / 64];
        for &x in &items {
            for i in 0..b {
                let pos = family.bucket(i, x as u64, rounded);
                reference[pos / 64] |= 1u64 << (pos % 64);
            }
        }
        prop_assert_eq!(col.words(0), &reference[..]);
        prop_assert_eq!(col.count_ones(0), count_ones_words(&reference));
        // The standalone filter rounds differently (exact bit length) but
        // its incremental popcount must match a full recount.
        prop_assert_eq!(filter.count_ones(), filter.bits().count_ones());
        for &x in &items {
            prop_assert!(filter.contains(x));
            prop_assert!(col.contains(0, x));
        }
    }

    #[test]
    fn memoized_estimators_match_closed_forms(
        x in vec(0u32..10_000, 0..400),
        y in vec(0u32..10_000, 0..400),
        bits in 64usize..3_000,
        b in 1usize..4,
        seed in 0u64..50,
    ) {
        let col = BloomCollection::build(2, bits, b, seed, |i| if i == 0 { &x } else { &y });
        let (bp, nx, ny) = (col.bits_per_set(), x.len(), y.len());
        prop_assert_eq!(
            col.estimate_and(0, 1),
            estimators::bf_intersect_and(col.and_ones(0, 1), bp, b)
        );
        prop_assert_eq!(
            col.estimate_or(0, 1, nx, ny),
            estimators::bf_intersect_or(col.or_ones(0, 1), bp, b, nx, ny)
        );
        let all = col.estimate_all(0, 1, nx, ny);
        prop_assert_eq!(all.and_est, col.estimate_and(0, 1));
        prop_assert_eq!(all.limit_est, col.estimate_limit(0, 1));
        prop_assert_eq!(all.or_est, col.estimate_or(0, 1, nx, ny));
        // Standalone fused filter estimators agree with the collection.
        let fx = BloomFilter::from_set(&x, bp, b, seed);
        let fy = BloomFilter::from_set(&y, bp, b, seed);
        prop_assert_eq!(fx.estimate_intersection_and(&fy), all.and_est);
        prop_assert_eq!(fx.estimate_intersection_or(&fy, nx, ny), all.or_est);
    }

    #[test]
    fn branchless_merge_matches_reference(
        a in vec(0u32..3_000, 0..300),
        b in vec(0u32..3_000, 0..300),
    ) {
        let mut a = a;
        let mut b = b;
        a.sort_unstable();
        a.dedup();
        b.sort_unstable();
        b.dedup();
        let set: std::collections::HashSet<_> = a.iter().collect();
        let want = b.iter().filter(|x| set.contains(x)).count();
        prop_assert_eq!(probgraph::intersect::merge_count(&a, &b), want);
        prop_assert_eq!(probgraph::intersect::intersect_card(&a, &b), want);
    }
}
