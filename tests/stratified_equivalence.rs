//! Differential pinning for degree-stratified sketch geometry: the
//! 1-stratum configuration must be **bit-identical** to the uniform
//! stack it lowers onto, across every store variant (BF1 / BF2 /
//! BF2-Limit / BF2-OR / CBF / k-hash / 1-hash / KMV / HLL) and every
//! build path.
//!
//! * **Offline build**: `StrataSpec::uniform()` resolves to the exact
//!   snapshot bytes of the spec-less build — same params, `None`
//!   stratification, identical estimator answers.
//! * **Streaming**: `stream_from` + batches under the 1-stratum spec
//!   lands on the uniform stream's bytes.
//! * **Sharded serving**: `ShardedProbGraph::with_shards` under the
//!   1-stratum spec publishes epochs byte-equal to uniform lanes.
//! * **Row builds**: an explicit 1-stratum `StratifiedParams` table
//!   through `build_rows_stratified` lowers onto `build_rows`.
//! * **Collapse**: a multi-stratum spec whose resolved per-stratum
//!   params come out equal collapses back to the uniform fast path.
//!
//! Snapshot bytes are the equality oracle: they cover every word,
//! counter, signature, element, hash, and register of every store, plus
//! the geometry header — stricter than any per-field comparison.

use pg_sketch::{StrataSpec, StratifiedParams};
use probgraph::oracle::MutableOracle;
use probgraph::serving::ShardedProbGraph;
use probgraph::{BfEstimator, PgConfig, ProbGraph, Representation};
use proptest::prelude::*;

/// The nine store variants of the acceptance matrix.
fn all_cfgs() -> Vec<(PgConfig, &'static str)> {
    let mk = |r| PgConfig::new(r, 0.3).with_seed(0xD1FF);
    vec![
        (mk(Representation::Bloom { b: 1 }), "BF1"),
        (mk(Representation::Bloom { b: 2 }), "BF2"),
        (
            mk(Representation::Bloom { b: 2 }).with_bf_estimator(BfEstimator::Limit),
            "BF2-L",
        ),
        (
            mk(Representation::Bloom { b: 2 }).with_bf_estimator(BfEstimator::Or),
            "BF2-OR",
        ),
        (mk(Representation::CountingBloom { b: 2 }), "CBF2"),
        (mk(Representation::KHash), "kH"),
        (mk(Representation::OneHash), "1H"),
        (mk(Representation::Kmv), "KMV"),
        (mk(Representation::Hll), "HLL"),
    ]
}

/// The full bit-identity check: both graphs re-serialize to the same
/// snapshot, the stratified one reports no stratification, and the
/// estimator answers match on a sample of pairs.
fn assert_lowered(uni: &ProbGraph, strat: &ProbGraph, pairs: &[(u32, u32)], label: &str) {
    assert!(
        strat.stratified_params().is_none(),
        "{label}: 1-stratum build kept a stratum table"
    );
    assert_eq!(strat.params(), uni.params(), "{label}: params differ");
    assert_eq!(
        strat.snapshot_to_bytes(),
        uni.snapshot_to_bytes(),
        "{label}: snapshot bytes differ"
    );
    for &(u, v) in pairs {
        assert_eq!(
            strat.estimate_intersection(u, v),
            uni.estimate_intersection(u, v),
            "{label}: estimate ({u},{v})"
        );
        assert_eq!(
            strat.estimate_jaccard(u, v),
            uni.estimate_jaccard(u, v),
            "{label}: jaccard ({u},{v})"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Property: for random graphs, the 1-stratum spec is bit-identical
    /// to the uniform build for every representation, through both the
    /// offline and the streaming build paths.
    #[test]
    fn one_stratum_spec_is_bit_identical_to_uniform(
        n in 12usize..48,
        density in 2usize..8,
        seed in 0u64..500,
        split_pct in 0usize..101,
    ) {
        let m = (n * density).min(n * (n - 1) / 2);
        let g = pg_graph::gen::erdos_renyi_gnm(n, m, seed);
        let edges = g.edge_list();
        let split = edges.len() * split_pct / 100;
        for (cfg, label) in all_cfgs() {
            let scfg = cfg.clone().with_strata(StrataSpec::uniform());
            let uni = ProbGraph::build(&g, &cfg);
            let strat = ProbGraph::build(&g, &scfg);
            assert_lowered(&uni, &strat, &edges, label);

            // Streaming: same prefix + batch + single-edge tail on both.
            let stream = |c: &PgConfig| {
                let mut pg =
                    ProbGraph::stream_from(g.num_vertices(), g.memory_bytes(), c, &edges[..split]);
                if let Some((last, bulk)) = edges[split..].split_last() {
                    pg.apply_batch(bulk);
                    pg.insert_edge(last.0, last.1);
                }
                pg
            };
            let (su, ss) = (stream(&cfg), stream(&scfg));
            assert_lowered(&su, &ss, &edges, label);
            prop_assert!(
                ss.snapshot_to_bytes() == strat.snapshot_to_bytes(),
                "{}: streamed and offline 1-stratum builds diverged", label
            );
        }
    }
}

/// Sharded serving under the 1-stratum spec publishes epochs byte-equal
/// to uniform lanes, for every representation and several shard counts.
#[test]
fn one_stratum_sharded_serving_lowers_onto_uniform_lanes() {
    let g = pg_graph::gen::erdos_renyi_gnm(90, 800, 21);
    let edges = g.edge_list();
    for (cfg, label) in all_cfgs() {
        let scfg = cfg.clone().with_strata(StrataSpec::uniform());
        for shards in [1usize, 3] {
            let ingest = |c: &PgConfig| {
                let mut srv =
                    ShardedProbGraph::with_shards(g.num_vertices(), g.memory_bytes(), c, shards);
                for chunk in edges.chunks(97) {
                    srv.apply_batch(chunk);
                    srv.publish_epoch();
                }
                srv
            };
            let (su, ss) = (ingest(&cfg), ingest(&scfg));
            assert!(
                ss.stratified_params().is_none(),
                "{label} x{shards}: server kept a 1-stratum table"
            );
            assert_eq!(
                ss.snapshot().snapshot_to_bytes(),
                su.snapshot().snapshot_to_bytes(),
                "{label} x{shards}: published snapshots differ"
            );
        }
    }
}

/// An explicit 1-stratum `StratifiedParams` table through
/// `build_rows_stratified` lowers onto `build_rows` bit-for-bit.
#[test]
fn explicit_one_stratum_table_lowers_in_build_rows() {
    let g = pg_graph::gen::erdos_renyi_gnm(70, 500, 5);
    let n = g.num_vertices();
    let pairs = g.edge_list();
    for (cfg, label) in all_cfgs() {
        let uni = ProbGraph::build(&g, &cfg);
        let table = StratifiedParams::new(vec![uni.params()], vec![0u8; n]);
        let rows = ProbGraph::build_rows_stratified(n, table, cfg.bf_estimator, uni.seed(), |i| {
            g.neighbors(i as u32)
        });
        assert_lowered(&uni, &rows, &pairs, label);
    }
}

/// A multi-stratum spec with all-equal multipliers must never keep an
/// all-equal parameter table: either the strata resolve identically and
/// the build collapses onto the uniform fast path bit-for-bit, or the
/// per-stratum integer arithmetic genuinely produced distinct params
/// (k-hash's per-stratum remainders can differ) and the table says so.
#[test]
fn equal_multiplier_spec_collapses_when_params_agree() {
    let g = pg_graph::gen::erdos_renyi_gnm(90, 800, 21);
    let flat = StrataSpec::new(vec![0.05, 0.15], vec![1, 1, 1]);
    let mut collapsed = 0usize;
    for (cfg, label) in all_cfgs() {
        let strat = ProbGraph::build(&g, &cfg.clone().with_strata(flat.clone()));
        match strat.stratified_params() {
            None => {
                let uni = ProbGraph::build(&g, &cfg);
                assert_lowered(&uni, &strat, &g.edge_list(), label);
                collapsed += 1;
            }
            Some(sp) => {
                let first = sp.strata()[0];
                assert!(
                    sp.strata().iter().any(|&p| p != first),
                    "{label}: all-equal stratum table survived the collapse"
                );
            }
        }
    }
    assert!(collapsed > 0, "no variant exercised the collapse path");
}

/// The complement: the skewed default spec on a skewed graph must *not*
/// collapse, must survive a snapshot round trip bit-identically, and a
/// 1-shard serving ingest must land on the serial stream's bytes.
#[test]
fn skewed_spec_stays_stratified_and_round_trips() {
    let g = pg_graph::gen::erdos_renyi_gnm(800, 24_000, 3);
    let edges = g.edge_list();
    for (cfg, label) in all_cfgs() {
        let scfg = cfg.clone().with_strata(StrataSpec::skewed_default());
        let pg = ProbGraph::build(&g, &scfg);
        let sp = pg
            .stratified_params()
            .unwrap_or_else(|| panic!("{label}: skewed spec collapsed"));
        assert!(sp.n_strata() > 1, "{label}: collapsed table survived");
        let bytes = pg.snapshot_to_bytes();
        let back =
            ProbGraph::from_snapshot_bytes(&bytes).unwrap_or_else(|e| panic!("{label}: {e}"));
        assert_eq!(back.snapshot_to_bytes(), bytes, "{label}: round trip");
        assert_eq!(
            back.stratified_params(),
            Some(sp),
            "{label}: stratum table lost in the round trip"
        );

        // Serial stream == sharded ingest, both stratified.
        let serial = ProbGraph::stream_from(g.num_vertices(), g.memory_bytes(), &scfg, &edges);
        let mut srv = ShardedProbGraph::with_shards(g.num_vertices(), g.memory_bytes(), &scfg, 3);
        srv.apply_batch(&edges);
        srv.publish_epoch();
        assert_eq!(
            srv.snapshot().snapshot_to_bytes(),
            serial.snapshot_to_bytes(),
            "{label}: sharded stratified ingest diverged from the serial stream"
        );
    }
}
