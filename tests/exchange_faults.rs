//! Exchange fault suite: the multi-process sketch exchange must survive
//! hostile and half-dead inputs with **typed errors and a clean
//! coordinator exit** — no panics, no hangs, no leaked children — and a
//! clean run must produce a distributed triangle count **bit-equal** to
//! the single-process estimate computed with the same grouping.

use probgraph::exchange::{
    self, encode_frame_header, parse_frame_header, read_frame, run_exchange,
    single_process_partials, ExchangeError, ExchangeOptions, Fault, FrameHeader, FRAME_HEADER_LEN,
};
use probgraph::{PgConfig, ProbGraph, Representation};

use pg_graph::{gen, orient_by_degree, OrientedDag};

fn setup(rep: Representation, scale: u32) -> (OrientedDag, ProbGraph) {
    let g = gen::kronecker(scale, 8, 42);
    let dag = orient_by_degree(&g);
    let pg = ProbGraph::build_dag(&dag, g.memory_bytes(), &PgConfig::new(rep, 0.25));
    (dag, pg)
}

fn partition(n: usize, p: usize) -> Vec<u32> {
    // Deterministic but non-contiguous, so every pair has boundary.
    (0..n).map(|v| ((v * 7 + 3) % p) as u32).collect()
}

// ---------------------------------------------------------------------------
// In-process frame hostility: truncation at every boundary, bit flips.
// ---------------------------------------------------------------------------

#[test]
fn frame_truncated_at_every_byte_is_a_typed_error() {
    let payload: Vec<u8> = (0..100u32).flat_map(|x| x.to_le_bytes()).collect();
    let h = FrameHeader {
        from: 0,
        to: 1,
        kind: 0,
        chunk: 0,
        n_chunks: 1,
        payload_len: payload.len() as u64,
    };
    let mut wire = encode_frame_header(&h).to_vec();
    wire.extend_from_slice(&payload);

    // The full stream parses.
    let (gh, gp) = read_frame(&mut &wire[..]).expect("intact frame must parse");
    assert_eq!(gh, h);
    assert_eq!(&gp[..], &payload[..]);

    // Every proper prefix — cutting inside the header or inside the
    // payload — fails with a typed Frame error, never a panic.
    for cut in 0..wire.len() {
        match read_frame(&mut &wire[..cut]) {
            Err(ExchangeError::Frame(_)) => {}
            other => panic!("cut at byte {cut}: expected Frame error, got {other:?}"),
        }
    }
}

#[test]
fn header_bit_flips_never_parse() {
    let h = FrameHeader {
        from: 2,
        to: 5,
        kind: 1,
        chunk: 3,
        n_chunks: 8,
        payload_len: 4096,
    };
    let good = encode_frame_header(&h);
    for byte in 0..FRAME_HEADER_LEN {
        for bit in 0..8 {
            let mut bad = good;
            bad[byte] ^= 1 << bit;
            assert!(
                parse_frame_header(&bad).is_err(),
                "bit flip at byte {byte} bit {bit} parsed"
            );
        }
    }
}

#[test]
fn exact_rows_payload_validates_against_expected_rows() {
    let (dag, _) = setup(Representation::Bloom { b: 2 }, 7);
    let rows: Vec<u32> = (0..dag.num_vertices() as u32).step_by(5).collect();
    let payload = exchange::encode_exact_rows(&dag, &rows);
    exchange::check_exact_rows(&payload, &dag, &rows).expect("intact payload validates");

    // Truncation anywhere inside the payload is rejected.
    for cut in [0, 3, payload.len() / 2, payload.len() - 1] {
        assert!(exchange::check_exact_rows(&payload[..cut], &dag, &rows).is_err());
    }
    // A flipped neighbor id is rejected.
    if payload.len() > 8 {
        let mut bad = payload.clone();
        let last = bad.len() - 1;
        bad[last] ^= 1;
        assert!(exchange::check_exact_rows(&bad, &dag, &rows).is_err());
    }
    // The wrong expected row list is rejected.
    if rows.len() > 1 {
        assert!(exchange::check_exact_rows(&payload, &dag, &rows[1..]).is_err());
    }
}

// ---------------------------------------------------------------------------
// Multi-process: clean rounds are bit-exact, faulted rounds are typed.
// ---------------------------------------------------------------------------

#[test]
fn clean_exchange_matches_single_process_bit_for_bit() {
    for (rep, p) in [
        (Representation::Bloom { b: 2 }, 2),
        (Representation::Bloom { b: 2 }, 3),
        (Representation::OneHash, 4),
        (Representation::Kmv, 3),
        (Representation::Hll, 2),
    ] {
        let (dag, pg) = setup(rep, 8);
        let parts = partition(dag.num_vertices(), p);
        let report = run_exchange(&dag, &pg, &parts, p, &ExchangeOptions::default())
            .unwrap_or_else(|e| panic!("{rep:?} x{p}: exchange failed: {e}"));

        let reference = single_process_partials(&dag, &pg, &parts, p);
        assert_eq!(report.partials.len(), p);
        for (r, (&got, &want)) in report.partials.iter().zip(&reference).enumerate() {
            assert_eq!(
                got.to_bits(),
                want.to_bits(),
                "{rep:?} x{p}: partial {r} differs: {got} vs {want}"
            );
        }
        let want_total: f64 = reference.iter().sum();
        assert_eq!(report.distributed_tc.to_bits(), want_total.to_bits());

        // Real communication happened and the sketch round was cheaper
        // than shipping exact adjacency lists.
        assert!(
            report.sketch_total() > 0,
            "{rep:?} x{p}: no sketch bytes measured"
        );
        assert!(
            report.exact_total() > 0,
            "{rep:?} x{p}: no exact bytes measured"
        );
        // Diagonal pairs never transfer.
        for q in 0..p {
            assert_eq!(report.sketch_pair_bytes[q][q], 0);
            assert_eq!(report.exact_pair_bytes[q][q], 0);
        }
    }
}

#[test]
fn stratified_exchange_matches_single_process_bit_for_bit() {
    use pg_sketch::StrataSpec;
    let g = gen::erdos_renyi_gnm(800, 24_000, 3);
    let dag = orient_by_degree(&g);
    for (rep, p) in [
        (Representation::Bloom { b: 2 }, 3),
        (Representation::OneHash, 3),
        (Representation::Kmv, 2),
        (Representation::Hll, 2),
    ] {
        let cfg = PgConfig::stratified(rep, 0.3, StrataSpec::skewed_default());
        let pg = ProbGraph::build_dag(&dag, g.memory_bytes(), &cfg);
        assert!(
            pg.stratified_params().is_some(),
            "{rep:?}: budget collapsed to uniform; the test covers nothing"
        );
        let parts = partition(dag.num_vertices(), p);
        let opts = ExchangeOptions {
            chunk_sets: 64,
            ..ExchangeOptions::default()
        };
        let report = run_exchange(&dag, &pg, &parts, p, &opts)
            .unwrap_or_else(|e| panic!("{rep:?} x{p}: stratified exchange failed: {e}"));
        let reference = single_process_partials(&dag, &pg, &parts, p);
        for (r, (&got, &want)) in report.partials.iter().zip(&reference).enumerate() {
            assert_eq!(
                got.to_bits(),
                want.to_bits(),
                "{rep:?} x{p}: partial {r} differs: {got} vs {want}"
            );
        }
        assert!(report.sketch_total() > 0, "{rep:?}: no sketch bytes");
    }
}

#[test]
fn single_part_exchange_has_no_communication_and_reduction_one() {
    let (dag, pg) = setup(Representation::Bloom { b: 2 }, 7);
    let parts = vec![0u32; dag.num_vertices()];
    let report = run_exchange(&dag, &pg, &parts, 1, &ExchangeOptions::default()).unwrap();
    assert_eq!(report.sketch_total(), 0);
    assert_eq!(report.exact_total(), 0);
    // 0/0 is "nothing to reduce", not infinity.
    assert_eq!(report.reduction(), 1.0);
    let reference: f64 = single_process_partials(&dag, &pg, &parts, 1).iter().sum();
    assert_eq!(report.distributed_tc.to_bits(), reference.to_bits());
}

#[test]
fn tiny_chunks_exercise_multi_frame_payloads() {
    let (dag, pg) = setup(Representation::OneHash, 8);
    let p = 3;
    let parts = partition(dag.num_vertices(), p);
    let opts = ExchangeOptions {
        chunk_sets: 7,
        ..ExchangeOptions::default()
    };
    let report = run_exchange(&dag, &pg, &parts, p, &opts).unwrap();
    let reference: f64 = single_process_partials(&dag, &pg, &parts, p).iter().sum();
    assert_eq!(report.distributed_tc.to_bits(), reference.to_bits());

    // Smaller chunks mean more frames, so strictly more measured bytes
    // than the default chunking for the same ship sets.
    let big = run_exchange(&dag, &pg, &parts, p, &ExchangeOptions::default()).unwrap();
    assert!(report.sketch_total() > big.sketch_total());
}

#[test]
fn killed_worker_is_a_typed_error_and_coordinator_recovers() {
    let (dag, pg) = setup(Representation::Bloom { b: 2 }, 7);
    let p = 3;
    let parts = partition(dag.num_vertices(), p);
    let opts = ExchangeOptions {
        fault: Some(Fault::KillWorker { part: 1 }),
        timeout: std::time::Duration::from_secs(10),
        ..ExchangeOptions::default()
    };
    match run_exchange(&dag, &pg, &parts, p, &opts) {
        Err(ExchangeError::WorkerExit { part, code }) => {
            assert_eq!(part, 1);
            assert_eq!(code, 43, "kill fault exits with its marker code");
        }
        other => panic!("expected WorkerExit, got {other:?}"),
    }
    // The coordinator reaped everything; a clean run still works.
    let report = run_exchange(&dag, &pg, &parts, p, &ExchangeOptions::default()).unwrap();
    let reference: f64 = single_process_partials(&dag, &pg, &parts, p).iter().sum();
    assert_eq!(report.distributed_tc.to_bits(), reference.to_bits());
}

#[test]
fn corrupt_payload_is_rejected_by_snapshot_validation() {
    let (dag, pg) = setup(Representation::Bloom { b: 2 }, 7);
    let p = 2;
    let parts = partition(dag.num_vertices(), p);
    let opts = ExchangeOptions {
        fault: Some(Fault::CorruptPayload { part: 0 }),
        ..ExchangeOptions::default()
    };
    match run_exchange(&dag, &pg, &parts, p, &opts) {
        // The *receiver* of part 0's bytes reports the rejection.
        Err(ExchangeError::Worker { part, detail }) => {
            assert_eq!(part, 1, "the peer of the corrupting part fails");
            assert!(
                detail.contains("snapshot rejected") || detail.contains("invalid payload"),
                "unexpected detail: {detail}"
            );
        }
        other => panic!("expected Worker error, got {other:?}"),
    }
    // Clean retry succeeds.
    assert!(run_exchange(&dag, &pg, &parts, p, &ExchangeOptions::default()).is_ok());
}

#[test]
fn truncated_stream_is_a_typed_error() {
    let (dag, pg) = setup(Representation::Bloom { b: 2 }, 7);
    let p = 2;
    let parts = partition(dag.num_vertices(), p);
    let opts = ExchangeOptions {
        fault: Some(Fault::TruncateStream { part: 0 }),
        timeout: std::time::Duration::from_secs(10),
        ..ExchangeOptions::default()
    };
    match run_exchange(&dag, &pg, &parts, p, &opts) {
        Err(ExchangeError::WorkerExit { part, code }) => {
            assert_eq!(part, 0);
            assert_eq!(code, 44, "truncate fault exits with its marker code");
        }
        // Depending on scheduling the peer's Frame error can surface
        // through its result blob instead — still typed, still clean.
        Err(ExchangeError::Worker { part, detail }) => {
            assert_eq!(part, 1);
            assert!(detail.contains("truncated"), "unexpected detail: {detail}");
        }
        other => panic!("expected WorkerExit or Worker error, got {other:?}"),
    }
    assert!(run_exchange(&dag, &pg, &parts, p, &ExchangeOptions::default()).is_ok());
}

#[test]
fn bad_arguments_are_protocol_errors() {
    let (dag, pg) = setup(Representation::Bloom { b: 2 }, 6);
    let n = dag.num_vertices();
    let opts = ExchangeOptions::default();
    assert!(matches!(
        run_exchange(&dag, &pg, &vec![0; n], 0, &opts),
        Err(ExchangeError::Protocol(_))
    ));
    assert!(matches!(
        run_exchange(&dag, &pg, &vec![0; n - 1], 2, &opts),
        Err(ExchangeError::Protocol(_))
    ));
    assert!(matches!(
        run_exchange(&dag, &pg, &vec![5; n], 2, &opts),
        Err(ExchangeError::Protocol(_))
    ));
}
