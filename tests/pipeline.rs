//! Cross-crate integration tests: the full ProbGraph pipeline from graph
//! generation through sketch construction to algorithm output, exercising
//! every crate of the workspace together.

use pg_graph::{gen, orient_by_degree, GraphStats};
use pg_stats::Summary;
use probgraph::algorithms::{cliques, clustering, link_prediction, triangles};
use probgraph::baselines::{colorful, doulion, heuristics};
use probgraph::{accuracy, tc_estimator, PgConfig, ProbGraph, Representation};

fn reps() -> Vec<Representation> {
    vec![
        Representation::Bloom { b: 1 },
        Representation::Bloom { b: 2 },
        Representation::KHash,
        Representation::OneHash,
    ]
}

#[test]
fn full_tc_pipeline_on_every_representation() {
    let g = gen::instance("bio-CE-PG", 8).unwrap();
    let exact = triangles::count_exact(&g) as f64;
    assert!(exact > 0.0, "stand-in must contain triangles");
    for rep in reps() {
        let est = triangles::count_approx(&g, &PgConfig::new(rep, 0.33));
        let rel = accuracy::relative_count(est, exact);
        assert!(
            (0.2..4.0).contains(&rel),
            "{rep:?}: TC rel count {rel} out of sanity band"
        );
    }
    // HLL is selectable end-to-end too; its inclusion–exclusion error
    // scales with the union, so the sanity band is looser on this sparse
    // power-law stand-in.
    let est = triangles::count_approx(&g, &PgConfig::new(Representation::Hll, 0.33));
    assert!(
        est.is_finite() && est >= 0.0,
        "Hll: TC estimate {est} not finite/non-negative"
    );
}

#[test]
fn tc_edge_sum_estimator_consistent_with_node_iterator_pg() {
    // Two PG formulations of TC (Listing 1 over the DAG vs the §VII edge
    // sum over full neighborhoods) must agree with each other roughly as
    // well as either agrees with the truth.
    let g = gen::erdos_renyi_gnm(400, 400 * 20, 5);
    let exact = triangles::count_exact(&g) as f64;
    let cfg = PgConfig::new(Representation::OneHash, 0.33);
    let dag_est = triangles::count_approx(&g, &cfg);
    let pg = ProbGraph::build(&g, &cfg);
    let sum_est = tc_estimator::tc_estimate(&g, &pg);
    for est in [dag_est, sum_est] {
        assert!(
            (0.4..2.0).contains(&(est / exact)),
            "est={est} exact={exact}"
        );
    }
}

#[test]
fn clustering_pipeline_at_multiple_budgets() {
    let g = gen::instance("econ-beacxc", 4).unwrap();
    let kind = clustering::SimilarityKind::Jaccard;
    let tau = 0.05;
    let exact = clustering::jarvis_patrick_exact(&g, kind, tau);
    let mut prev_agreement = 0.0;
    for s in [0.05, 0.33] {
        let pg = ProbGraph::build(&g, &PgConfig::new(Representation::Bloom { b: 1 }, s));
        let approx = clustering::jarvis_patrick_pg(&g, &pg, kind, tau);
        let agree = exact
            .selected
            .iter()
            .zip(&approx.selected)
            .filter(|(a, b)| a == b)
            .count() as f64
            / exact.selected.len() as f64;
        assert!(
            agree >= prev_agreement * 0.9,
            "agreement should not collapse with bigger budget: {agree} vs {prev_agreement}"
        );
        prev_agreement = agree;
    }
    assert!(prev_agreement > 0.6, "s=33% agreement {prev_agreement}");
}

#[test]
fn four_clique_pipeline() {
    let g = gen::instance("bn-mouse_brain_1", 4).unwrap();
    let exact = cliques::count_exact(&g) as f64;
    assert!(exact > 0.0);
    let est = cliques::count_approx(&g, &PgConfig::new(Representation::OneHash, 0.33));
    let rel = est / exact;
    assert!((0.2..4.0).contains(&rel), "4CC rel {rel}");
}

#[test]
fn link_prediction_pipeline_beats_random_guessing() {
    let g = gen::instance("soc-fbMsg", 4).unwrap();
    let exact = link_prediction::evaluate(&g, 0.15, 3, link_prediction::exact_cn_scorer);
    let pg = link_prediction::evaluate_pg(
        &g,
        0.15,
        3,
        &PgConfig::new(Representation::Bloom { b: 2 }, 0.33),
    );
    // Random guessing among >10k candidates would land essentially zero
    // hits; both scorers should do clearly better.
    assert!(
        exact.precision > 0.02,
        "exact precision {}",
        exact.precision
    );
    assert!(pg.precision > 0.01, "pg precision {}", pg.precision);
}

#[test]
fn baselines_agree_with_exact_in_expectation() {
    let g = gen::instance("bio-SC-GT", 8).unwrap();
    let exact = triangles::count_exact(&g) as f64;
    let mut doulion_mean = 0.0;
    let mut colorful_mean = 0.0;
    let trials = 10;
    for seed in 0..trials {
        doulion_mean += doulion::triangle_estimate(&g, 0.5, seed).estimate;
        colorful_mean += colorful::triangle_estimate(&g, 2, seed).estimate;
    }
    doulion_mean /= trials as f64;
    colorful_mean /= trials as f64;
    assert!(
        (doulion_mean / exact - 1.0).abs() < 0.35,
        "doulion {doulion_mean} vs {exact}"
    );
    assert!(
        (colorful_mean / exact - 1.0).abs() < 0.5,
        "colorful {colorful_mean} vs {exact}"
    );
}

#[test]
fn heuristics_run_on_real_world_standins() {
    let g = gen::instance("soc-fbMsg", 8).unwrap();
    let exact = triangles::count_exact(&g) as f64;
    for est in [
        heuristics::reduced_execution_tc(&g, 0.5, 1),
        heuristics::partial_processing_tc(&g, 0.5, 1),
        heuristics::auto_approx1_tc(&g, 0.5, 1),
        heuristics::auto_approx2_tc(&g, 0.5, 1),
    ] {
        assert!(est >= 0.0);
        if exact > 50.0 {
            assert!((est / exact) < 10.0, "est={est} exact={exact}");
        }
    }
}

#[test]
fn memory_budget_honored_across_suite() {
    for name in ["bio-SC-GT", "econ-beacxc", "soc-fbMsg"] {
        let g = gen::instance(name, 8).unwrap();
        for rep in reps() {
            let pg = ProbGraph::build(&g, &PgConfig::new(rep, 0.25));
            let rel = pg.memory_bytes() as f64 / g.memory_bytes() as f64;
            // 25 % budget + word-rounding and bookkeeping slack.
            assert!(rel < 0.40, "{name} {rep:?}: relative memory {rel}");
        }
    }
}

#[test]
fn fig3_style_error_distribution_is_reasonable() {
    let g = gen::instance("econ-mbeacxc", 4).unwrap();
    let stats = GraphStats::compute(&g);
    assert!(stats.avg_degree > 20.0, "need a dense stand-in: {stats}");
    let pg = ProbGraph::build(&g, &PgConfig::new(Representation::OneHash, 0.33));
    let errs = accuracy::edgewise_intersection_errors(&g, &pg);
    let med = Summary::of(&errs).median;
    assert!(med < 0.35, "median relative error {med}");
}

#[test]
fn thread_sweep_preserves_exact_results() {
    // The scaling experiments rely on results being thread-invariant.
    let g = gen::instance("bio-HS-LC", 8).unwrap();
    let dag = orient_by_degree(&g);
    let reference = triangles::count_exact_on_dag(&dag);
    for t in [1, 2, 3, 8] {
        let got = pg_parallel::with_threads(t, || triangles::count_exact_on_dag(&dag));
        assert_eq!(got, reference, "threads={t}");
    }
}
