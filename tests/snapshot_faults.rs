//! Fault-injection hardening for `probgraph::snapshot`.
//!
//! Three guarantees, exercised across every store variant (BF1 / BF2 /
//! BF2-Limit / BF2-OR / CBF / k-hash / 1-hash / KMV / HLL):
//!
//! 1. **Round trip**: save → load reproduces the store bit-identically —
//!    the reloaded ProbGraph re-serializes to the same bytes and answers
//!    every estimator query identically.
//! 2. **Fault attribution**: truncation at every section boundary (and a
//!    dense stride sweep), plus bit flips in every region, are each
//!    detected and reported as the *matching* typed [`SnapshotError`] —
//!    and corruptions crafted to pass every checksum still fall to the
//!    semantic invariant checks.
//! 3. **Zero panics**: the entire corruption matrix runs under
//!    `catch_unwind` with a panic counter asserted to be exactly zero.
//!
//! Plus the warm-restart differential: a loaded snapshot continues under
//! `apply_batch` / `remove_batch` bit-identically with the never-persisted
//! original.

use pg_graph::{gen, CsrGraph};
use pg_hash::xxh64;
use probgraph::snapshot::{self, SectionStatus, CHECKSUM_SEED, ENTRY_LEN, HEADER_LEN};
use probgraph::{BfEstimator, PgConfig, ProbGraph, Representation, SnapshotError};

/// The nine store variants of the acceptance matrix.
fn variants() -> Vec<(&'static str, PgConfig)> {
    vec![
        ("bf1", PgConfig::new(Representation::Bloom { b: 1 }, 0.3)),
        ("bf2", PgConfig::new(Representation::Bloom { b: 2 }, 0.3)),
        (
            "bf2_limit",
            PgConfig::new(Representation::Bloom { b: 2 }, 0.3)
                .with_bf_estimator(BfEstimator::Limit),
        ),
        (
            "bf2_or",
            PgConfig::new(Representation::Bloom { b: 2 }, 0.3).with_bf_estimator(BfEstimator::Or),
        ),
        (
            "cbf",
            PgConfig::new(Representation::CountingBloom { b: 2 }, 0.3),
        ),
        ("khash", PgConfig::new(Representation::KHash, 0.3)),
        ("onehash", PgConfig::new(Representation::OneHash, 0.3)),
        ("kmv", PgConfig::new(Representation::Kmv, 0.3)),
        ("hll", PgConfig::new(Representation::Hll, 0.3)),
    ]
}

fn graph() -> CsrGraph {
    gen::erdos_renyi_gnm(80, 600, 17)
}

fn assert_estimator_identical(a: &ProbGraph, b: &ProbGraph, g: &CsrGraph, tag: &str) {
    assert_eq!(a.sizes(), b.sizes(), "{tag}: sizes");
    for (u, v) in g.edges().take(250) {
        assert_eq!(
            a.estimate_intersection(u, v),
            b.estimate_intersection(u, v),
            "{tag} ({u},{v})"
        );
        assert_eq!(
            a.estimate_jaccard(u, v),
            b.estimate_jaccard(u, v),
            "{tag} ({u},{v})"
        );
    }
}

/// Parses the section table of a *valid* snapshot into
/// `(kind_tag, payload_start, payload_end)` triples.
fn payload_spans(bytes: &[u8]) -> Vec<(u32, usize, usize)> {
    let count = u32::from_le_bytes(bytes[20..24].try_into().unwrap()) as usize;
    let mut spans = Vec::with_capacity(count);
    let mut off = HEADER_LEN + count * ENTRY_LEN + 8;
    for i in 0..count {
        let e = HEADER_LEN + i * ENTRY_LEN;
        let tag = u32::from_le_bytes(bytes[e..e + 4].try_into().unwrap());
        let len = u64::from_le_bytes(bytes[e + 8..e + 16].try_into().unwrap()) as usize;
        spans.push((tag, off, off + len));
        off += len;
    }
    spans
}

/// Recomputes every checksum (payloads, table, header) over possibly
/// edited bytes — the tool for crafting corruptions that pass all
/// structural checks and must be caught by the semantic invariants.
fn refresh_checksums(bytes: &mut [u8]) {
    let spans = payload_spans(bytes);
    let count = spans.len();
    for (i, &(_, start, end)) in spans.iter().enumerate() {
        let sum = xxh64(&bytes[start..end], CHECKSUM_SEED);
        let e = HEADER_LEN + i * ENTRY_LEN + 16;
        bytes[e..e + 8].copy_from_slice(&sum.to_le_bytes());
    }
    let table_end = HEADER_LEN + count * ENTRY_LEN + 8;
    let tsum = xxh64(&bytes[HEADER_LEN..table_end - 8], CHECKSUM_SEED);
    bytes[table_end - 8..table_end].copy_from_slice(&tsum.to_le_bytes());
    let hsum = xxh64(&bytes[..HEADER_LEN - 8], CHECKSUM_SEED);
    bytes[HEADER_LEN - 8..HEADER_LEN].copy_from_slice(&hsum.to_le_bytes());
}

#[test]
fn round_trip_is_bit_identical_for_every_variant() {
    let g = graph();
    for (tag, cfg) in variants() {
        let pg = ProbGraph::build(&g, &cfg);
        let bytes = pg.snapshot_to_bytes();
        let back = ProbGraph::from_snapshot_bytes(&bytes).unwrap_or_else(|e| panic!("{tag}: {e}"));
        assert_eq!(back.snapshot_to_bytes(), bytes, "{tag}: re-serialization");
        assert_eq!(back.params(), pg.params(), "{tag}: params");
        assert_eq!(back.bf_estimator(), pg.bf_estimator(), "{tag}: estimator");
        assert_eq!(back.seed(), pg.seed(), "{tag}: seed");
        assert_estimator_identical(&pg, &back, &g, tag);
    }
}

#[test]
fn warm_restart_continues_bit_identically() {
    // Save mid-stream, load, keep streaming on both sides: the loaded
    // store and the never-persisted original must stay bit-identical
    // through further inserts (and removals where supported).
    let g = graph();
    let edges = g.edge_list();
    let split = edges.len() / 2;
    for (tag, cfg) in variants() {
        let mut original =
            ProbGraph::stream_from(g.num_vertices(), g.memory_bytes(), &cfg, &edges[..split]);
        let bytes = original.snapshot_to_bytes();
        let mut restarted =
            ProbGraph::from_snapshot_bytes(&bytes).unwrap_or_else(|e| panic!("{tag}: {e}"));
        original.apply_batch(&edges[split..]);
        restarted.apply_batch(&edges[split..]);
        assert_eq!(
            original.snapshot_to_bytes(),
            restarted.snapshot_to_bytes(),
            "{tag}: post-restart inserts diverged"
        );
        assert_estimator_identical(&original, &restarted, &g, tag);
        if original.remove_supported() {
            let gone = &edges[..split / 2];
            original
                .try_remove_batch(gone)
                .unwrap_or_else(|e| panic!("{tag}: {e}"));
            restarted
                .try_remove_batch(gone)
                .unwrap_or_else(|e| panic!("{tag}: {e}"));
            assert_eq!(
                original.snapshot_to_bytes(),
                restarted.snapshot_to_bytes(),
                "{tag}: post-restart removals diverged"
            );
        }
    }
}

/// A skewed graph + the default heavy-tail spec: the established
/// non-collapsing recipe for every representation at budget 0.3.
fn stratified_graph() -> CsrGraph {
    gen::erdos_renyi_gnm(800, 24_000, 3)
}

fn stratified_variants() -> Vec<(&'static str, PgConfig)> {
    use pg_sketch::StrataSpec;
    variants()
        .into_iter()
        .map(|(tag, cfg)| (tag, cfg.with_strata(StrataSpec::skewed_default())))
        .collect()
}

#[test]
fn stratified_round_trip_and_warm_restart_are_bit_identical() {
    // The v3 wire format (per-stratum param table + assignment sections)
    // under the same standards as the uniform matrix: load → re-serialize
    // is a fixed point, the stratum table survives, and a mid-stream
    // save/load continues bit-identically with the never-persisted side.
    let g = stratified_graph();
    let edges = g.edge_list();
    let split = edges.len() / 2;
    for (tag, cfg) in stratified_variants() {
        let pg = ProbGraph::build(&g, &cfg);
        assert!(
            pg.stratified_params().is_some(),
            "{tag}: recipe collapsed to uniform"
        );
        let bytes = pg.snapshot_to_bytes();
        let back = ProbGraph::from_snapshot_bytes(&bytes).unwrap_or_else(|e| panic!("{tag}: {e}"));
        assert_eq!(back.snapshot_to_bytes(), bytes, "{tag}: re-serialization");
        assert_eq!(
            back.stratified_params(),
            pg.stratified_params(),
            "{tag}: stratum table"
        );
        assert_estimator_identical(&pg, &back, &g, tag);

        let mut original =
            ProbGraph::stream_from(g.num_vertices(), g.memory_bytes(), &cfg, &edges[..split]);
        let mut restarted = ProbGraph::from_snapshot_bytes(&original.snapshot_to_bytes())
            .unwrap_or_else(|e| panic!("{tag}: {e}"));
        original.apply_batch(&edges[split..]);
        restarted.apply_batch(&edges[split..]);
        assert_eq!(
            original.snapshot_to_bytes(),
            restarted.snapshot_to_bytes(),
            "{tag}: post-restart inserts diverged"
        );
    }
}

#[test]
fn stratified_fault_injection_sweep_never_panics() {
    // The corruption matrix over stratified snapshots, one variant per
    // store family, at coarser strides (the snapshots are ~100× larger
    // than the uniform matrix's): every truncation and bit flip must be
    // a typed error attributed to the right region — including flips in
    // the stratified-only StratumParams / StratumAssign sections — and
    // nothing may panic.
    use probgraph::snapshot::SectionKind;
    let g = stratified_graph();
    let mut panics = 0usize;
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    for (tag, cfg) in stratified_variants() {
        if !matches!(tag, "bf2" | "cbf" | "khash" | "onehash" | "kmv" | "hll") {
            continue;
        }
        let pg = ProbGraph::build(&g, &cfg);
        let bytes = pg.snapshot_to_bytes();
        let spans = payload_spans(&bytes);
        let table_end = HEADER_LEN + spans.len() * ENTRY_LEN + 8;
        for kind in [SectionKind::StratumParams, SectionKind::StratumAssign] {
            assert!(
                spans.iter().any(|&(t, ..)| t == kind as u32),
                "{tag}: stratified snapshot lacks a {kind:?} section"
            );
        }

        let mut cuts: Vec<usize> = vec![0, 7, HEADER_LEN - 1, table_end, bytes.len() - 1];
        for &(_, start, end) in &spans {
            cuts.extend_from_slice(&[start, end.saturating_sub(1)]);
        }
        cuts.retain(|&c| c < bytes.len());
        for cut in cuts {
            let Some(res) = load_guarded(&bytes[..cut], &mut panics) else {
                continue;
            };
            let err = res.expect_err(&format!("{tag}: truncation at {cut} loaded"));
            if cut < table_end {
                assert!(
                    matches!(err, SnapshotError::TooShort { .. }),
                    "{tag}: cut {cut}: {err:?}"
                );
            } else {
                assert!(
                    matches!(err, SnapshotError::Truncated { .. }),
                    "{tag}: cut {cut}: {err:?}"
                );
            }
        }

        let mut flips: Vec<usize> = (0..table_end).step_by(7).collect();
        // Cover every payload — the stratified sections are tiny, so
        // derive in-span positions rather than relying on the stride.
        for &(_, start, end) in &spans {
            flips.extend((start..end).step_by(997.min(end - start)));
        }
        for pos in flips {
            let mut dirty = bytes.clone();
            dirty[pos] ^= 1 << (pos % 8);
            let Some(res) = load_guarded(&dirty, &mut panics) else {
                continue;
            };
            let err = res.expect_err(&format!("{tag}: bit flip at {pos} loaded"));
            if pos >= table_end {
                let hit = spans
                    .iter()
                    .find(|&&(_, s, e)| pos >= s && pos < e)
                    .map(|&(kind_tag, ..)| kind_tag)
                    .expect("flip position inside some payload");
                match err {
                    SnapshotError::ChecksumMismatch { section } => {
                        assert_eq!(section as u32, hit, "{tag}@{pos}: wrong section blamed")
                    }
                    other => panic!("{tag}@{pos}: {other:?}"),
                }
            }
        }
    }
    std::panic::set_hook(prev_hook);
    assert_eq!(panics, 0, "the stratified fault sweep must never panic");
}

#[test]
fn onehash_persists_both_layouts() {
    // The bottom-k store has two on-disk shapes: the static build's
    // tight-packed arrays and the post-insert strided layout. Both must
    // round-trip, and a load of the tight form must convert to the
    // strided form exactly as the original did.
    let g = graph();
    let cfg = PgConfig::new(Representation::OneHash, 0.3);
    let tight = ProbGraph::build(&g, &cfg);
    let tight_bytes = tight.snapshot_to_bytes();
    let mut from_tight = ProbGraph::from_snapshot_bytes(&tight_bytes).unwrap();
    assert_eq!(from_tight.snapshot_to_bytes(), tight_bytes);

    let mut original = tight.clone();
    original.apply_batch(&[(0, 79)]);
    from_tight.apply_batch(&[(0, 79)]);
    let strided_bytes = original.snapshot_to_bytes();
    assert_eq!(
        from_tight.snapshot_to_bytes(),
        strided_bytes,
        "tight→strided conversion diverged after a restart"
    );
    // And the strided form itself round-trips.
    let back = ProbGraph::from_snapshot_bytes(&strided_bytes).unwrap();
    assert_eq!(back.snapshot_to_bytes(), strided_bytes);
}

/// Runs a load under `catch_unwind`, bumping `panics` if it unwound.
fn load_guarded(bytes: &[u8], panics: &mut usize) -> Option<Result<ProbGraph, SnapshotError>> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        ProbGraph::from_snapshot_bytes(bytes)
    })) {
        Ok(r) => Some(r),
        Err(_) => {
            *panics += 1;
            None
        }
    }
}

#[test]
fn fault_injection_matrix_detects_everything_without_panicking() {
    // Every variant × {truncation at every section boundary and a dense
    // stride, single-bit flips across every region}. Each injected fault
    // must yield the typed error matching the region it hit, and the
    // panic counter across the whole matrix must be exactly zero.
    let g = graph();
    let mut panics = 0usize;
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {})); // keep the matrix's output readable
    for (tag, cfg) in variants() {
        let pg = ProbGraph::build(&g, &cfg);
        let bytes = pg.snapshot_to_bytes();
        let spans = payload_spans(&bytes);
        let table_end = HEADER_LEN + spans.len() * ENTRY_LEN + 8;

        // --- Truncations: every structural boundary, each payload
        // boundary and its off-by-one neighbors, plus a dense stride.
        let mut cuts: Vec<usize> = vec![
            0,
            1,
            7,
            8,
            HEADER_LEN - 1,
            HEADER_LEN,
            table_end - 1,
            table_end,
            bytes.len() - 1,
        ];
        for &(_, start, end) in &spans {
            cuts.extend_from_slice(&[start, start + 1, end.saturating_sub(1), end]);
        }
        cuts.extend((0..bytes.len()).step_by(101));
        cuts.retain(|&c| c < bytes.len());
        for cut in cuts {
            let Some(res) = load_guarded(&bytes[..cut], &mut panics) else {
                continue;
            };
            let err = match res {
                Err(e) => e,
                Ok(_) => panic!("{tag}: truncation at {cut} loaded"),
            };
            if cut < table_end {
                assert!(
                    matches!(err, SnapshotError::TooShort { .. }),
                    "{tag}: cut {cut}: {err:?}"
                );
            } else {
                assert!(
                    matches!(err, SnapshotError::Truncated { .. }),
                    "{tag}: cut {cut}: {err:?}"
                );
            }
        }

        // --- Bit flips: exhaustive over header + table, strided over the
        // payloads, each attributed to the region it hit.
        let mut flips: Vec<usize> = (0..table_end).collect();
        flips.extend((table_end..bytes.len()).step_by(53));
        for pos in flips {
            let mut dirty = bytes.clone();
            dirty[pos] ^= 1 << (pos % 8);
            let Some(res) = load_guarded(&dirty, &mut panics) else {
                continue;
            };
            let err = match res {
                Err(e) => e,
                Ok(_) => panic!("{tag}: bit flip at {pos} loaded"),
            };
            if pos < 8 {
                assert!(
                    matches!(err, SnapshotError::BadMagic),
                    "{tag}@{pos}: {err:?}"
                );
            } else if pos < 12 {
                assert!(
                    matches!(err, SnapshotError::UnsupportedVersion { .. }),
                    "{tag}@{pos}: {err:?}"
                );
            } else if pos < HEADER_LEN {
                assert!(
                    matches!(err, SnapshotError::HeaderCorrupt),
                    "{tag}@{pos}: {err:?}"
                );
            } else if pos < table_end {
                assert!(
                    matches!(err, SnapshotError::SectionTableCorrupt),
                    "{tag}@{pos}: {err:?}"
                );
            } else {
                let hit = spans
                    .iter()
                    .find(|&&(_, s, e)| pos >= s && pos < e)
                    .map(|&(kind_tag, ..)| kind_tag)
                    .expect("flip position inside some payload");
                match err {
                    SnapshotError::ChecksumMismatch { section } => {
                        assert_eq!(section as u32, hit, "{tag}@{pos}: wrong section blamed")
                    }
                    other => panic!("{tag}@{pos}: {other:?}"),
                }
            }
        }

        // --- Trailing garbage is its own typed error.
        let mut padded = bytes.clone();
        padded.extend_from_slice(b"junk");
        match load_guarded(&padded, &mut panics) {
            Some(Err(SnapshotError::TrailingBytes { .. })) => {}
            Some(other) => panic!("{tag}: trailing bytes: {other:?}"),
            None => {}
        }
    }
    std::panic::set_hook(prev_hook);
    assert_eq!(panics, 0, "the fault-injection matrix must never panic");
}

#[test]
fn checksum_valid_semantic_corruption_hits_invariant_checks() {
    use probgraph::snapshot::SectionKind;
    let g = graph();
    let mut panics = 0usize;

    // Helper: corrupt payload bytes of the section holding `kind`, fix
    // every checksum, and expect the given check to fire. Sections are
    // found by tag, not position, so this survives layout reorderings.
    let corrupt = |cfg: &PgConfig, kind: SectionKind, edit: &dyn Fn(&mut [u8])| -> SnapshotError {
        let pg = ProbGraph::build(&g, cfg);
        let mut bytes = pg.snapshot_to_bytes();
        let (_, start, end) = *payload_spans(&bytes)
            .iter()
            .find(|&&(tag, ..)| tag == kind as u32)
            .unwrap_or_else(|| panic!("snapshot has no {kind:?} section"));
        edit(&mut bytes[start..end]);
        refresh_checksums(&mut bytes);
        ProbGraph::from_snapshot_bytes(&bytes).expect_err("corruption must not load")
    };

    // Bloom: flip a filter bit → the persisted popcount cache disagrees.
    let cfg = PgConfig::new(Representation::Bloom { b: 2 }, 0.3);
    match corrupt(&cfg, SectionKind::BloomWords, &|p| p[0] ^= 1) {
        SnapshotError::InvariantViolation { section, .. } => {
            assert_eq!(section, SectionKind::BloomOnes)
        }
        other => panic!("bloom: {other:?}"),
    }

    // CBF: zero the counters → the derived view (all clear) no longer
    // matches the persisted one.
    let cfg = PgConfig::new(Representation::CountingBloom { b: 2 }, 0.3);
    match corrupt(&cfg, SectionKind::CbfCounters, &|p| p.fill(0)) {
        SnapshotError::InvariantViolation { section, .. } => {
            assert_eq!(section, SectionKind::CbfView)
        }
        other => panic!("cbf: {other:?}"),
    }

    // Bottom-k: rewrite an element → its stored hash no longer matches.
    let cfg = PgConfig::new(Representation::OneHash, 0.3);
    match corrupt(&cfg, SectionKind::BkElems, &|p| p[0] = p[0].wrapping_add(1)) {
        SnapshotError::InvariantViolation { section, .. } => {
            assert!(
                section == SectionKind::BkHashes || section == SectionKind::BkElems,
                "onehash blamed {section:?}"
            )
        }
        other => panic!("onehash: {other:?}"),
    }

    // KMV: push a hash outside (0, 1].
    let cfg = PgConfig::new(Representation::Kmv, 0.3);
    match corrupt(&cfg, SectionKind::KmvHashes, &|p| {
        p[..8].copy_from_slice(&2.0f64.to_le_bytes())
    }) {
        SnapshotError::InvariantViolation { section, .. } => {
            assert_eq!(section, SectionKind::KmvHashes)
        }
        other => panic!("kmv: {other:?}"),
    }

    // HLL: a register above the maximum possible rank.
    let cfg = PgConfig::new(Representation::Hll, 0.3);
    match corrupt(&cfg, SectionKind::HllRegisters, &|p| p[3] = 0xFF) {
        SnapshotError::InvariantViolation { section, .. } => {
            assert_eq!(section, SectionKind::HllRegisters)
        }
        other => panic!("hll: {other:?}"),
    }

    // k-hash: occupy a slot of an empty set's signature. Vertex sets in
    // the ER graph are all non-empty, so build over a graph with an
    // isolated vertex.
    let edges: Vec<(u32, u32)> = vec![(0, 1), (0, 2)];
    let iso = CsrGraph::from_edges(4, &edges);
    let pg = ProbGraph::build(&iso, &PgConfig::new(Representation::KHash, 1.0));
    let mut bytes = pg.snapshot_to_bytes();
    let (_, _, end) = payload_spans(&bytes)[1];
    bytes[end - 4..end].copy_from_slice(&7u32.to_le_bytes()); // vertex 3 is empty
    refresh_checksums(&mut bytes);
    match ProbGraph::from_snapshot_bytes(&bytes).expect_err("occupied empty signature") {
        SnapshotError::InvariantViolation { section, .. } => {
            assert_eq!(section, SectionKind::MinHashSigs);
        }
        other => panic!("khash: {other:?}"),
    }

    // Header params that pass checksums but are impossible: Bloom width
    // not a word multiple.
    let cfg = PgConfig::new(Representation::Bloom { b: 2 }, 0.3);
    let pg = ProbGraph::build(&g, &cfg);
    let mut bytes = pg.snapshot_to_bytes();
    bytes[40..48].copy_from_slice(&63u64.to_le_bytes());
    refresh_checksums(&mut bytes);
    assert!(matches!(
        ProbGraph::from_snapshot_bytes(&bytes),
        Err(SnapshotError::BadParams { .. })
    ));

    // Unknown representation and estimator tags.
    let mut bytes = pg.snapshot_to_bytes();
    bytes[12..16].copy_from_slice(&99u32.to_le_bytes());
    refresh_checksums(&mut bytes);
    assert!(matches!(
        ProbGraph::from_snapshot_bytes(&bytes),
        Err(SnapshotError::BadRepresentation { tag: 99 })
    ));
    let mut bytes = pg.snapshot_to_bytes();
    bytes[16..20].copy_from_slice(&3u32.to_le_bytes());
    refresh_checksums(&mut bytes);
    assert!(matches!(
        ProbGraph::from_snapshot_bytes(&bytes),
        Err(SnapshotError::BadEstimator { tag: 3 })
    ));

    // A declared section length that disagrees with the parameters (and
    // a matching payload, so the structural checks all pass).
    let pg = ProbGraph::build(&g, &PgConfig::new(Representation::Hll, 0.3));
    let bytes = pg.snapshot_to_bytes();
    let (_, start, _) = payload_spans(&bytes)[1];
    let mut shrunk = bytes[..start + 16].to_vec(); // drop register bytes
    let e = HEADER_LEN + ENTRY_LEN + 8;
    shrunk[e..e + 8].copy_from_slice(&16u64.to_le_bytes());
    // Recompute the (now shorter) payload checksum by hand.
    let sum = xxh64(&shrunk[start..start + 16], CHECKSUM_SEED);
    shrunk[e + 8..e + 16].copy_from_slice(&sum.to_le_bytes());
    let table_end = HEADER_LEN + 2 * ENTRY_LEN + 8;
    let tsum = xxh64(&shrunk[HEADER_LEN..table_end - 8], CHECKSUM_SEED);
    shrunk[table_end - 8..table_end].copy_from_slice(&tsum.to_le_bytes());
    match load_guarded(&shrunk, &mut panics) {
        Some(Err(SnapshotError::SectionLength { .. })) => {}
        Some(other) => panic!("hll shrink: {other:?}"),
        None => panic!("hll shrink panicked"),
    }
    assert_eq!(panics, 0);
}

#[test]
fn inspect_attributes_damage_and_never_fails() {
    let g = graph();
    let pg = ProbGraph::build(&g, &PgConfig::new(Representation::Kmv, 0.3));
    let bytes = pg.snapshot_to_bytes();
    assert!(snapshot::inspect(&bytes).ok());

    // Damage one payload: only that section is flagged.
    let spans = payload_spans(&bytes);
    let (_, start, _) = spans[2];
    let mut dirty = bytes.clone();
    dirty[start] ^= 0x40;
    let report = snapshot::inspect(&dirty);
    assert!(report.header_ok && report.table_ok && !report.ok());
    for (i, s) in report.sections.iter().enumerate() {
        let expect = if i == 2 {
            SectionStatus::ChecksumMismatch
        } else {
            SectionStatus::Ok
        };
        assert_eq!(s.status, expect, "section {i}");
    }

    // Truncation mid-payload: that section reports Truncated.
    let (_, s3, e3) = spans[3];
    let cut = &bytes[..(s3 + e3) / 2];
    let report = snapshot::inspect(cut);
    assert!(matches!(
        report.sections[3].status,
        SectionStatus::Truncated { .. }
    ));

    // Arbitrary garbage and short inputs still produce reports.
    assert!(!snapshot::inspect(&[0xA5; 300]).ok());
    assert!(!snapshot::inspect(&[]).ok());
}

#[test]
fn file_save_and_load_are_durable_and_typed() {
    let g = graph();
    let dir = std::env::temp_dir().join(format!("pg_snapshot_faults_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("store.pgsnap");
    for (tag, cfg) in variants() {
        let pg = ProbGraph::build(&g, &cfg);
        // Overwrites the previous variant's file atomically each round.
        pg.save_snapshot(&path)
            .unwrap_or_else(|e| panic!("{tag}: {e}"));
        let back = ProbGraph::load_snapshot(&path).unwrap_or_else(|e| panic!("{tag}: {e}"));
        assert_eq!(back.snapshot_to_bytes(), pg.snapshot_to_bytes(), "{tag}");
    }
    // No temp droppings left behind by the atomic rename protocol.
    let stray: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().contains(".tmp"))
        .collect();
    assert!(stray.is_empty(), "{stray:?}");
    // Missing files surface as typed I/O errors, not panics.
    assert!(matches!(
        ProbGraph::load_snapshot(dir.join("never_written.pgsnap")),
        Err(SnapshotError::Io(_))
    ));
    let _ = std::fs::remove_dir_all(&dir);
}
