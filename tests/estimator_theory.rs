//! Cross-crate verification of the paper's theory (Tables II/III,
//! Theorem VII.1): Monte-Carlo estimates against the closed-form
//! expectations of Eq. (23)/(24) and the concentration bounds of
//! Prop. IV.2/IV.3 and Prop. A.7.

use pg_sketch::{BloomFilter, BottomK, KmvSketch, MinHashSignature};
use pg_stats::{binomial, hypergeom};

fn sets(nx: usize, ny: usize, inter: usize) -> (Vec<u32>, Vec<u32>) {
    assert!(inter <= nx && inter <= ny);
    let x: Vec<u32> = (0..nx as u32).collect();
    let y: Vec<u32> = ((nx - inter) as u32..(nx + ny - inter) as u32).collect();
    (x, y)
}

#[test]
fn khash_monte_carlo_matches_eq23_expectation() {
    let (nx, ny, inter) = (300usize, 300usize, 100usize);
    let (x, y) = sets(nx, ny, inter);
    let union = nx + ny - inter;
    let j = inter as f64 / union as f64;
    let k = 64;
    let trials = 600;
    let mut mean = 0.0;
    for seed in 0..trials {
        let sx = MinHashSignature::from_set(&x, k, seed);
        let sy = MinHashSignature::from_set(&y, k, seed);
        mean += sx.estimate_intersection(&sy, nx, ny);
    }
    mean /= trials as f64;
    let expect = binomial::khash_estimator_expectation(k as u64, j, nx, ny);
    assert!(
        (mean - expect).abs() < 0.05 * expect,
        "Monte-Carlo {mean} vs Eq.(23) {expect}"
    );
}

#[test]
fn onehash_match_count_is_hypergeometric() {
    // Mean and variance of the union-restricted match count must agree
    // with Hypergeometric(|X∪Y|, |X∩Y|, k) (§IV-D).
    let (nx, ny, inter) = (200usize, 200usize, 80usize);
    let (x, y) = sets(nx, ny, inter);
    let union = (nx + ny - inter) as u64;
    let k = 50;
    let trials = 800;
    let mut sum = 0.0;
    let mut sumsq = 0.0;
    for seed in 0..trials {
        let sx = BottomK::from_set(&x, k, seed);
        let sy = BottomK::from_set(&y, k, seed);
        let m = sx.matches(&sy) as f64;
        sum += m;
        sumsq += m * m;
    }
    let mean = sum / trials as f64;
    let var = sumsq / trials as f64 - mean * mean;
    let e = hypergeom::mean(union, inter as u64, k as u64);
    let v = hypergeom::variance(union, inter as u64, k as u64);
    assert!((mean - e).abs() < 0.06 * e, "mean {mean} vs {e}");
    assert!((var - v).abs() < 0.30 * v, "var {var} vs {v}");
}

#[test]
fn minhash_concentration_bound_holds() {
    // Prop. IV.2: violation frequency at distance t must stay below
    // 2·exp(−2kt²/(|X|+|Y|)²).
    let (nx, ny, inter) = (250usize, 250usize, 100usize);
    let (x, y) = sets(nx, ny, inter);
    let k = 128;
    let trials = 500;
    for t in [30.0f64, 60.0] {
        let mut viol = 0;
        for seed in 0..trials {
            let sx = MinHashSignature::from_set(&x, k, seed);
            let sy = MinHashSignature::from_set(&y, k, seed);
            if (sx.estimate_intersection(&sy, nx, ny) - inter as f64).abs() >= t {
                viol += 1;
            }
        }
        let freq = viol as f64 / trials as f64;
        let bound = pg_stats::mh_concentration_bound(k, t, nx, ny);
        assert!(freq <= bound + 0.03, "t={t}: freq {freq} > bound {bound}");
    }
}

#[test]
fn bf_mse_bound_holds_in_regime() {
    // Prop. IV.1 bounds the MSE of Eq. (1)/(2) applied to a Bloom filter
    // that represents X∩Y itself. (§IV-B: the practical B_X AND B_Y
    // carries extra false-positive bits — "this may somewhat increase the
    // false positive probability" — so the bound targets the idealized
    // filter; the AND estimator's additional error is evaluated
    // empirically in Fig. 3.)
    let (nx, ny, inter) = (300usize, 300usize, 120usize);
    let (x, y) = sets(nx, ny, inter);
    let common: Vec<u32> = x.iter().copied().filter(|v| y.contains(v)).collect();
    assert_eq!(common.len(), inter);
    let bits = 1 << 14;
    let b = 2;
    assert!(pg_stats::bf_regime_ok(inter as f64, bits, b));
    let trials = 300;
    let mut mse = 0.0;
    for seed in 0..trials {
        let f = BloomFilter::from_set(&common, bits, b, seed);
        let e = f.estimate_size() - inter as f64;
        mse += e * e;
    }
    mse /= trials as f64;
    let bound = pg_stats::bf_mse_bound(inter as f64, bits, b);
    assert!(
        mse <= bound,
        "empirical MSE {mse} exceeds Prop IV.1 bound {bound}"
    );

    // The practical AND estimator is biased upward by co-collisions but
    // must remain within a small multiple of the true value at this size.
    let mut mean = 0.0;
    for seed in 0..60 {
        let fx = BloomFilter::from_set(&x, bits, b, seed);
        let fy = BloomFilter::from_set(&y, bits, b, seed);
        mean += fx.estimate_intersection_and(&fy);
    }
    mean /= 60.0;
    assert!(
        (mean - inter as f64).abs() < 0.15 * inter as f64,
        "practical AND estimator mean {mean} vs true {inter}"
    );
}

#[test]
fn kmv_beta_probability_matches_monte_carlo() {
    // Prop. A.7 is exact (not just a bound); Monte-Carlo deviation
    // frequency should match within sampling noise.
    let n = 5000usize;
    let x: Vec<u32> = (0..n as u32).collect();
    let k = 128;
    let t = 800.0;
    let trials = 400;
    let mut viol = 0;
    for seed in 0..trials {
        let s = KmvSketch::from_set(&x, k, seed);
        if (s.estimate_size() - n as f64).abs() > t {
            viol += 1;
        }
    }
    let freq = viol as f64 / trials as f64;
    let pred = pg_stats::kmv_deviation_probability(n as u64, k as u64, t);
    assert!(
        (freq - pred).abs() < 0.07,
        "Monte-Carlo {freq} vs Prop A.7 {pred}"
    );
}

#[test]
fn estimators_are_asymptotically_unbiased_in_sketch_size() {
    // Table II "AU": the empirical mean error shrinks monotonically in the
    // sketch-size knob for all representations.
    let (nx, ny, inter) = (400usize, 400usize, 150usize);
    let (x, y) = sets(nx, ny, inter);
    let trials = 60;
    // Bloom.
    let mut prev = f64::INFINITY;
    for bits_exp in [11usize, 13, 16] {
        let mut err = 0.0;
        for seed in 0..trials {
            let fx = BloomFilter::from_set(&x, 1 << bits_exp, 2, seed);
            let fy = BloomFilter::from_set(&y, 1 << bits_exp, 2, seed);
            err += (fx.estimate_intersection_and(&fy) - inter as f64).abs();
        }
        err /= trials as f64;
        assert!(
            err < prev * 1.05,
            "BF error did not shrink at B=2^{bits_exp}: {err} vs {prev}"
        );
        prev = err;
    }
    // 1-hash.
    let mut prev = f64::INFINITY;
    for k in [16usize, 64, 256] {
        let mut err = 0.0;
        for seed in 0..trials {
            let sx = BottomK::from_set(&x, k, seed);
            let sy = BottomK::from_set(&y, k, seed);
            err += (sx.estimate_intersection(&sy) - inter as f64).abs();
        }
        err /= trials as f64;
        assert!(
            err < prev * 1.05,
            "1H error did not shrink at k={k}: {err} vs {prev}"
        );
        prev = err;
    }
}
