//! Offline stand-in for the `criterion` crate.
//!
//! Implements the bench-definition surface this workspace uses
//! ([`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`BenchmarkId`], [`criterion_group!`]/[`criterion_main!`]) with a simple
//! calibrated-repetition timer: each benchmark is warmed up, calibrated to
//! a target measurement time, run in batches, and reported as the median
//! batch time in ns/iter. Honors `PG_BENCH_MS` (per-benchmark measurement
//! budget in milliseconds, default 300).

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// Label for one benchmark: `function_id/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("kernel", "B=1024")` renders as `kernel/B=1024`.
    pub fn new<A: Display, B: Display>(function_id: A, parameter: B) -> Self {
        BenchmarkId {
            id: format!("{function_id}/{parameter}"),
        }
    }

    /// `BenchmarkId::from_parameter(16)` renders as `16`.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to the closure of `bench_function`; `iter` runs and times it.
pub struct Bencher {
    /// Per-batch wall-clock seconds collected by `iter`.
    batch_seconds: Vec<f64>,
    /// Iterations per batch, decided during calibration.
    iters_per_batch: u64,
}

impl Bencher {
    /// Times `f`, running it enough times for a stable median.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup + calibration: find how many iterations fill ~1/8 of the
        // measurement budget per batch.
        let budget_s = measure_budget_ms() as f64 / 1000.0;
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().as_secs_f64().max(1e-9);
        let per_batch = (budget_s / 8.0 / once).clamp(1.0, 1e9) as u64;
        self.iters_per_batch = per_batch;
        let deadline = Instant::now();
        loop {
            let t0 = Instant::now();
            for _ in 0..per_batch {
                black_box(f());
            }
            self.batch_seconds.push(t0.elapsed().as_secs_f64());
            if deadline.elapsed().as_secs_f64() >= budget_s || self.batch_seconds.len() >= 64 {
                break;
            }
        }
    }
}

fn measure_budget_ms() -> u64 {
    std::env::var("PG_BENCH_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(300)
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stand-in sizes batches by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark and prints its median ns/iter.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            batch_seconds: Vec::new(),
            iters_per_batch: 1,
        };
        f(&mut b);
        let label = format!("{}/{}", self.name, id);
        if b.batch_seconds.is_empty() {
            println!("bench {label}: no measurements (iter never called)");
            return self;
        }
        b.batch_seconds
            .sort_by(|x, y| x.partial_cmp(y).expect("bench times are finite"));
        let median = b.batch_seconds[b.batch_seconds.len() / 2];
        let ns_per_iter = median * 1e9 / b.iters_per_batch as f64;
        self.criterion.results.push((label.clone(), ns_per_iter));
        println!(
            "bench {label}: {ns_per_iter:.1} ns/iter (median of {} batches x {} iters)",
            b.batch_seconds.len(),
            b.iters_per_batch
        );
        self
    }

    /// Ends the group (printing is per-benchmark, so this is a no-op).
    pub fn finish(&mut self) {}
}

/// Entry point handed to the functions of a `criterion_group!`.
#[derive(Default)]
pub struct Criterion {
    /// `(label, ns_per_iter)` for everything run so far.
    pub results: Vec<(String, f64)>,
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }
}

/// Declares a group-runner function from a list of `fn(&mut Criterion)`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` from one or more group-runner names.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        std::env::set_var("PG_BENCH_MS", "10");
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(5);
            g.bench_function(BenchmarkId::new("sum", "n=100"), |b| {
                b.iter(|| (0..100u64).sum::<u64>())
            });
            g.finish();
        }
        assert_eq!(c.results.len(), 1);
        assert!(c.results[0].0.contains("g/sum/n=100"));
        assert!(c.results[0].1 > 0.0);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("a", "b").to_string(), "a/b");
        assert_eq!(BenchmarkId::from_parameter(16).to_string(), "16");
    }
}
