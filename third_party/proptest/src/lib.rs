//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace's property tests use: the
//! [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! [`prop_assert!`]/[`prop_assert_eq!`]/[`prop_assert_ne!`], range and tuple
//! strategies, and [`collection::vec`]. No shrinking — a failing case
//! reports its RNG-generated inputs via `Debug` instead of minimizing them.
//! Cases are generated deterministically per test (seeded from the test
//! name), so failures reproduce across runs.

use std::fmt;
use std::ops::Range;

pub mod test_runner {
    use std::fmt;

    /// Per-test configuration (`cases` is the only knob this subset honors).
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// Failure raised by the `prop_assert*` macros.
    #[derive(Clone, Debug)]
    pub struct TestCaseError {
        msg: String,
    }

    impl TestCaseError {
        /// Wraps a failure message.
        pub fn fail(msg: String) -> Self {
            TestCaseError { msg }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.msg)
        }
    }
}

/// `proptest`'s name for the config type inside `proptest_config(..)`.
pub use test_runner::Config as ProptestConfig;

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value: fmt::Debug;
    /// Draws one value.
    fn sample(&self, rng: &mut rand::rngs::StdRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut rand::rngs::StdRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut rand::rngs::StdRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

pub mod collection {
    use super::Strategy;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `proptest::collection::vec`: a vector whose length is drawn from
    /// `size` and whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut rand::rngs::StdRng) -> Self::Value {
            use rand::Rng;
            let len = if self.size.start < self.size.end {
                rng.gen_range(self.size.clone())
            } else {
                self.size.start
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Derives a deterministic 64-bit seed from a test name (FNV-1a).
pub fn seed_from_name(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Asserts a condition inside a `proptest!` body; on failure the current
/// case returns an error (with the stringified condition) instead of
/// panicking mid-harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// The `proptest!` macro: each `#[test] fn name(arg in strategy, ..) { .. }`
/// expands to a normal `#[test]` that samples the strategies `cases` times
/// and runs the body per case. Bodies may `return Ok(())` early and use the
/// `prop_assert*` macros.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(
                    $crate::seed_from_name(stringify!($name)),
                );
                for case in 0..cfg.cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                    // Render inputs before the body can move them; the body
                    // takes ownership of the sampled values, as in proptest.
                    let inputs = format!("{:?}", ($(&$arg,)+));
                    let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            #[allow(unreachable_code)]
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = result {
                        panic!(
                            "proptest {} failed at case {case}/{}: {e}\n  inputs: {inputs}",
                            stringify!($name),
                            cfg.cases,
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

pub mod prelude {
    //! The glob-import surface (`use proptest::prelude::*`).
    pub use crate::collection::vec as prop_vec;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::collection::vec;
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..10, y in 0usize..5) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn vectors_respect_length_and_element_ranges(
            v in vec((0u32..100, 0u32..100), 0..50)
        ) {
            prop_assert!(v.len() < 50);
            for &(a, b) in &v {
                prop_assert!(a < 100 && b < 100);
            }
        }

        #[test]
        fn early_return_ok_works(n in 0u64..10) {
            if n < 100 {
                return Ok(());
            }
            prop_assert!(false, "unreachable");
        }
    }

    #[test]
    fn deterministic_seeding() {
        assert_eq!(crate::seed_from_name("abc"), crate::seed_from_name("abc"));
        assert_ne!(crate::seed_from_name("abc"), crate::seed_from_name("abd"));
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics_with_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x={x} is small");
            }
        }
        always_fails();
    }
}
