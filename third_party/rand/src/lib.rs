//! Offline stand-in for the `rand` crate.
//!
//! This workspace builds in environments with no network access, so instead
//! of the crates.io `rand` it vendors this minimal, API-compatible subset:
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`], the [`Rng`] extension
//! methods `gen`, `gen_range`, `gen_bool`, and [`seq::SliceRandom::shuffle`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — statistically
//! strong, deterministic across platforms, and fast. Stream values differ
//! from the real `StdRng` (ChaCha12), which is fine: every caller in this
//! workspace treats the RNG as an arbitrary deterministic stream.

use std::ops::Range;

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from the generator's raw stream ("standard"
/// distribution in `rand` terms).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable without modulo bias (Lemire-style widening reduction).
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(&self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Widening multiply maps 64 random bits to [0, span) with
                // negligible (2^-64-scale) bias.
                let v = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + v as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

impl SampleRange for Range<f64> {
    type Output = f64;
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// The `rand` extension trait: convenience samplers over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of `T` from its standard distribution
    /// (`f64` → uniform `[0, 1)`).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from `range` (half-open).
    #[inline]
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0,1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ generator, seeded through SplitMix64 (the reference
    /// seeding procedure from Blackman & Vigna).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut state);
            }
            // An all-zero state would be a fixed point; SplitMix64 cannot
            // produce four zero outputs in a row, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice helpers (`shuffle` is the only one this workspace uses).
    pub trait SliceRandom {
        /// Fisher–Yates shuffle, uniform over permutations.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn f64_in_unit_interval_with_sane_mean() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }

    #[test]
    fn gen_range_covers_and_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_range(0usize..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1000 {
            let v = rng.gen_range(5u64..6);
            assert_eq!(v, 5);
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle of 100 elements should move something");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "hits={hits}");
    }
}
