//! Special functions: log-gamma, log-binomial, regularized incomplete beta.
//!
//! Implemented from scratch (Lanczos approximation + Lentz continued
//! fraction), since the KMV bound of Prop. A.7 needs `I_x(a, b)` and the
//! hypergeometric pmf needs log-binomials that do not overflow.

/// Natural log of the gamma function, Lanczos approximation (g = 7, n = 9).
/// Accurate to ~1e-13 for `x > 0`.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection: Γ(x)Γ(1−x) = π / sin(πx).
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEFFS[0];
    let t = x + 7.5;
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// `ln C(n, k)`, exact in log space; 0 for the degenerate cases.
pub fn ln_binomial(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    if k == 0 || k == n {
        return 0.0;
    }
    ln_gamma(n as f64 + 1.0) - ln_gamma(k as f64 + 1.0) - ln_gamma((n - k) as f64 + 1.0)
}

/// Regularized incomplete beta function `I_x(a, b)` via the continued
/// fraction of Lentz (Numerical Recipes §6.4). Defined for `a, b > 0` and
/// `x ∈ [0, 1]`.
pub fn reg_inc_beta(x: f64, a: f64, b: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "shape parameters must be positive");
    assert!((0.0..=1.0).contains(&x), "x={x} outside [0,1]");
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    // Use the symmetry that keeps the continued fraction convergent.
    // `<=` (not `<`) so the boundary case x == threshold (e.g. I_{0.5}(a,a))
    // takes the direct branch instead of recursing forever.
    if x <= (a + 1.0) / (a + b + 2.0) {
        ln_front.exp() * beta_cf(x, a, b) / a
    } else {
        1.0 - reg_inc_beta(1.0 - x, b, a)
    }
}

/// Continued fraction for the incomplete beta (modified Lentz method).
fn beta_cf(x: f64, a: f64, b: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 3e-15;
    const TINY: f64 = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0f64;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_known_values() {
        // Γ(1) = Γ(2) = 1; Γ(5) = 24; Γ(0.5) = √π.
        assert!(ln_gamma(1.0).abs() < 1e-10);
        assert!(ln_gamma(2.0).abs() < 1e-10);
        assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(0.5) - 0.5 * std::f64::consts::PI.ln()).abs() < 1e-10);
    }

    #[test]
    fn ln_gamma_recurrence() {
        // Γ(x+1) = x·Γ(x).
        for x in [0.3, 1.7, 4.2, 10.0, 123.45] {
            let lhs = ln_gamma(x + 1.0);
            let rhs = x.ln() + ln_gamma(x);
            assert!((lhs - rhs).abs() < 1e-9, "x={x}");
        }
    }

    #[test]
    fn ln_binomial_matches_pascal() {
        assert!((ln_binomial(5, 2) - 10f64.ln()).abs() < 1e-10);
        assert!((ln_binomial(10, 5) - 252f64.ln()).abs() < 1e-10);
        assert_eq!(ln_binomial(7, 0), 0.0);
        assert_eq!(ln_binomial(7, 7), 0.0);
        assert_eq!(ln_binomial(3, 5), f64::NEG_INFINITY);
    }

    #[test]
    fn ln_binomial_large_no_overflow() {
        // C(1e6, 5e5) overflows f64 massively; its log must stay finite.
        let v = ln_binomial(1_000_000, 500_000);
        assert!(v.is_finite());
        // ≈ n·ln2 − ½ln(πn/2).
        let approx = 1_000_000.0 * 2f64.ln() - 0.5 * (std::f64::consts::PI * 500_000.0).ln();
        assert!((v - approx).abs() / v < 1e-3);
    }

    #[test]
    fn beta_boundaries() {
        assert_eq!(reg_inc_beta(0.0, 2.0, 3.0), 0.0);
        assert_eq!(reg_inc_beta(1.0, 2.0, 3.0), 1.0);
    }

    #[test]
    fn beta_uniform_case() {
        // I_x(1,1) = x.
        for x in [0.1, 0.25, 0.5, 0.9] {
            assert!((reg_inc_beta(x, 1.0, 1.0) - x).abs() < 1e-12, "x={x}");
        }
    }

    #[test]
    fn beta_symmetry() {
        // I_x(a,b) = 1 − I_{1−x}(b,a).
        for (x, a, b) in [(0.3, 2.0, 5.0), (0.7, 4.5, 1.5), (0.5, 10.0, 10.0)] {
            let lhs = reg_inc_beta(x, a, b);
            let rhs = 1.0 - reg_inc_beta(1.0 - x, b, a);
            assert!((lhs - rhs).abs() < 1e-12);
        }
    }

    #[test]
    fn beta_binomial_identity() {
        // For integer a, I_p(a, n−a+1) = P[Bin(n,p) ≥ a].
        let n = 20u64;
        let a = 7u64;
        let p = 0.4f64;
        let tail: f64 = (a..=n)
            .map(|i| {
                (ln_binomial(n, i) + (i as f64) * p.ln() + ((n - i) as f64) * (1.0 - p).ln()).exp()
            })
            .sum();
        let beta = reg_inc_beta(p, a as f64, (n - a + 1) as f64);
        assert!((tail - beta).abs() < 1e-10, "tail={tail} beta={beta}");
    }

    #[test]
    fn beta_monotone_in_x() {
        let mut prev = -1.0;
        for i in 0..=20 {
            let v = reg_inc_beta(i as f64 / 20.0, 3.0, 7.0);
            assert!(v >= prev);
            prev = v;
        }
    }
}
