//! Sample summaries: the medians/quartiles behind the Fig. 3 boxplots and
//! the 95 % non-parametric confidence intervals the paper reports for
//! runtimes (§VIII-A, following Hoefler & Belli's benchmarking
//! recommendations \[109\]).

/// Order statistics and moments of an `f64` sample.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for n ≤ 1).
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// 25th percentile.
    pub p25: f64,
    /// Median.
    pub median: f64,
    /// 75th percentile.
    pub p75: f64,
    /// Maximum.
    pub max: f64,
}

/// Linear-interpolation percentile of a **sorted** slice, `q ∈ [0, 1]`.
fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let w = pos - lo as f64;
        sorted[lo] * (1.0 - w) + sorted[hi] * w
    }
}

impl Summary {
    /// Computes the summary of a sample. Panics on an empty sample or NaNs.
    pub fn of(sample: &[f64]) -> Summary {
        assert!(!sample.is_empty(), "summary of empty sample");
        assert!(sample.iter().all(|x| !x.is_nan()), "sample contains NaN");
        let mut sorted = sample.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let n = sorted.len();
        let mean = sorted.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            sorted.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        Summary {
            count: n,
            mean,
            std_dev: var.sqrt(),
            min: sorted[0],
            p25: percentile_sorted(&sorted, 0.25),
            median: percentile_sorted(&sorted, 0.50),
            p75: percentile_sorted(&sorted, 0.75),
            max: sorted[n - 1],
        }
    }

    /// Arbitrary percentile `q ∈ [0, 1]` of the original sample.
    pub fn percentile(sample: &[f64], q: f64) -> f64 {
        assert!(!sample.is_empty());
        assert!((0.0..=1.0).contains(&q));
        let mut sorted = sample.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        percentile_sorted(&sorted, q)
    }

    /// 95 % non-parametric confidence interval for the **median**, using
    /// the binomial order-statistic construction (the method recommended
    /// by the benchmarking guidelines the paper follows): the interval
    /// `[x_(l), x_(u)]` with `l, u` chosen so that
    /// `P[x_(l) ≤ median ≤ x_(u)] ≥ 0.95` under `Bin(n, ½)`.
    pub fn median_ci95(sample: &[f64]) -> (f64, f64) {
        assert!(!sample.is_empty());
        let mut sorted = sample.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let n = sorted.len() as u64;
        // Find the smallest symmetric pair (l, u) with enough coverage.
        let mut lo = 0u64;
        let mut cover = 1.0 - 2.0 * crate::binomial::cdf(n, 0.5, 0).min(0.5);
        while lo + 1 < n / 2 {
            let next = 1.0 - 2.0 * crate::binomial::cdf(n, 0.5, lo + 1).min(0.5);
            if next < 0.95 {
                break;
            }
            lo += 1;
            cover = next;
        }
        let _ = cover;
        let hi = (n - 1 - lo) as usize;
        (sorted[lo as usize], sorted[hi])
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.4} sd={:.4} min={:.4} p25={:.4} med={:.4} p75={:.4} max={:.4}",
            self.count,
            self.mean,
            self.std_dev,
            self.min,
            self.p25,
            self.median,
            self.p75,
            self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.count, 5);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.p25, 2.0);
        assert_eq!(s.p75, 4.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert!((s.std_dev - 2.5f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn summary_single_element() {
        let s = Summary::of(&[7.5]);
        assert_eq!(s.median, 7.5);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.p25, 7.5);
    }

    #[test]
    fn summary_order_independent() {
        let a = Summary::of(&[3.0, 1.0, 2.0]);
        let b = Summary::of(&[1.0, 2.0, 3.0]);
        assert_eq!(a, b);
    }

    #[test]
    fn percentile_interpolates() {
        let v = [0.0, 10.0];
        assert_eq!(Summary::percentile(&v, 0.5), 5.0);
        assert_eq!(Summary::percentile(&v, 0.0), 0.0);
        assert_eq!(Summary::percentile(&v, 1.0), 10.0);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_sample_panics() {
        Summary::of(&[]);
    }

    #[test]
    fn median_ci_contains_median_and_is_ordered() {
        let sample: Vec<f64> = (0..101).map(|i| i as f64).collect();
        let (lo, hi) = Summary::median_ci95(&sample);
        let med = Summary::of(&sample).median;
        assert!(lo <= med && med <= hi);
        assert!(lo > 0.0 && hi < 100.0, "CI should be interior: [{lo},{hi}]");
    }

    #[test]
    fn median_ci_small_samples_degenerate_to_range() {
        let sample = [2.0, 1.0, 3.0];
        let (lo, hi) = Summary::median_ci95(&sample);
        assert_eq!((lo, hi), (1.0, 3.0));
    }
}
