//! Least-squares utilities for the scaling analysis (Figs. 8–9).
//!
//! Strong-scaling quality is summarized by the slope of
//! `log₂(runtime)` vs `log₂(threads)` — ideal scaling has slope −1 — and
//! the scaling experiments report that fit alongside the raw series.

/// Simple linear regression `y ≈ a + b·x`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinearFit {
    /// Intercept `a`.
    pub intercept: f64,
    /// Slope `b`.
    pub slope: f64,
    /// Coefficient of determination `R²` (1 for a perfect fit; 0 when the
    /// model explains nothing; defined as 1 for a zero-variance target).
    pub r_squared: f64,
}

/// Ordinary least squares over paired samples. Panics on fewer than two
/// points or mismatched lengths.
pub fn linear_fit(x: &[f64], y: &[f64]) -> LinearFit {
    assert_eq!(x.len(), y.len(), "mismatched sample lengths");
    assert!(x.len() >= 2, "need at least two points");
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for (&xi, &yi) in x.iter().zip(y) {
        sxx += (xi - mx) * (xi - mx);
        sxy += (xi - mx) * (yi - my);
        syy += (yi - my) * (yi - my);
    }
    assert!(sxx > 0.0, "x has zero variance");
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let r_squared = if syy == 0.0 {
        1.0
    } else {
        (sxy * sxy) / (sxx * syy)
    };
    LinearFit {
        intercept,
        slope,
        r_squared,
    }
}

/// Fits `log₂ y` against `log₂ x` — the scaling-exponent fit. All inputs
/// must be positive.
pub fn log_log_fit(x: &[f64], y: &[f64]) -> LinearFit {
    assert!(
        x.iter().chain(y).all(|&v| v > 0.0),
        "log-log fit needs positive data"
    );
    let lx: Vec<f64> = x.iter().map(|v| v.log2()).collect();
    let ly: Vec<f64> = y.iter().map(|v| v.log2()).collect();
    linear_fit(&lx, &ly)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_recovered() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [3.0, 5.0, 7.0, 9.0]; // y = 1 + 2x
        let f = linear_fit(&x, &y);
        assert!((f.slope - 2.0).abs() < 1e-12);
        assert!((f.intercept - 1.0).abs() < 1e-12);
        assert!((f.r_squared - 1.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_fit_has_sane_r2() {
        let x: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|&v| 2.0 * v + ((v * 7.0).sin())).collect();
        let f = linear_fit(&x, &y);
        assert!((f.slope - 2.0).abs() < 0.05);
        assert!(f.r_squared > 0.99);
    }

    #[test]
    fn ideal_strong_scaling_has_slope_minus_one() {
        let threads = [1.0, 2.0, 4.0, 8.0];
        let runtime = [8.0, 4.0, 2.0, 1.0];
        let f = log_log_fit(&threads, &runtime);
        assert!((f.slope + 1.0).abs() < 1e-12);
    }

    #[test]
    fn flat_series_slope_zero_r2_one() {
        let f = linear_fit(&[1.0, 2.0, 3.0], &[5.0, 5.0, 5.0]);
        assert_eq!(f.slope, 0.0);
        assert_eq!(f.r_squared, 1.0);
    }

    #[test]
    #[should_panic(expected = "positive data")]
    fn log_log_rejects_nonpositive() {
        log_log_fit(&[1.0, 0.0], &[1.0, 1.0]);
    }
}
