//! Binomial distribution: the law of the k-hash match count
//! `|M_X ∩ M_Y| ~ Bin(k, J)` (§IV-C of the paper).

use crate::special::ln_binomial;

/// `P[Bin(n, p) = s]`, computed in log space for stability.
pub fn pmf(n: u64, p: f64, s: u64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "p={p} outside [0,1]");
    if s > n {
        return 0.0;
    }
    if p == 0.0 {
        return if s == 0 { 1.0 } else { 0.0 };
    }
    if p == 1.0 {
        return if s == n { 1.0 } else { 0.0 };
    }
    (ln_binomial(n, s) + s as f64 * p.ln() + (n - s) as f64 * (1.0 - p).ln()).exp()
}

/// `P[Bin(n, p) ≤ s]`.
pub fn cdf(n: u64, p: f64, s: u64) -> f64 {
    (0..=s.min(n)).map(|i| pmf(n, p, i)).sum::<f64>().min(1.0)
}

/// Mean `np`.
#[inline]
pub fn mean(n: u64, p: f64) -> f64 {
    n as f64 * p
}

/// Variance `np(1−p)`.
#[inline]
pub fn variance(n: u64, p: f64) -> f64 {
    n as f64 * p * (1.0 - p)
}

/// Exact expectation of the k-hash intersection estimator (Eq. 23):
///
/// `E[|X∩Y|̂_kH] = (|X|+|Y|) · Σ_{s=0}^{k} C(k,s) J^s (1−J)^{k−s} · s/(k+s)`.
///
/// Used by the estimator-property experiments to verify asymptotic
/// unbiasedness: this expectation converges to `|X∩Y|` as `k → ∞`.
pub fn khash_estimator_expectation(k: u64, jaccard: f64, nx: usize, ny: usize) -> f64 {
    assert!((0.0..=1.0).contains(&jaccard));
    let sum: f64 = (0..=k)
        .map(|s| pmf(k, jaccard, s) * s as f64 / (k + s) as f64)
        .sum();
    (nx + ny) as f64 * sum
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pmf_sums_to_one() {
        let total: f64 = (0..=30).map(|s| pmf(30, 0.37, s)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pmf_degenerate_p() {
        assert_eq!(pmf(10, 0.0, 0), 1.0);
        assert_eq!(pmf(10, 0.0, 3), 0.0);
        assert_eq!(pmf(10, 1.0, 10), 1.0);
    }

    #[test]
    fn pmf_small_case_exact() {
        // Bin(2, 0.5): 1/4, 1/2, 1/4.
        assert!((pmf(2, 0.5, 0) - 0.25).abs() < 1e-12);
        assert!((pmf(2, 0.5, 1) - 0.5).abs() < 1e-12);
        assert!((pmf(2, 0.5, 2) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn cdf_monotone_and_complete() {
        let mut prev = 0.0;
        for s in 0..=20 {
            let c = cdf(20, 0.3, s);
            assert!(c >= prev);
            prev = c;
        }
        assert!((cdf(20, 0.3, 20) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn moments() {
        assert_eq!(mean(100, 0.25), 25.0);
        assert_eq!(variance(100, 0.25), 18.75);
    }

    #[test]
    fn khash_expectation_converges_to_truth() {
        // |X∩Y| = 20, |X| = |Y| = 60, J = 20/100 = 0.2.
        let (nx, ny, inter) = (60usize, 60usize, 20.0f64);
        let j = inter / (nx as f64 + ny as f64 - inter);
        let e16 = khash_estimator_expectation(16, j, nx, ny);
        let e256 = khash_estimator_expectation(256, j, nx, ny);
        let e4096 = khash_estimator_expectation(4096, j, nx, ny);
        // Bias shrinks monotonically towards |X∩Y|.
        assert!((e4096 - inter).abs() < (e256 - inter).abs());
        assert!((e256 - inter).abs() < (e16 - inter).abs());
        assert!((e4096 - inter).abs() < 0.05, "e4096={e4096}");
    }

    #[test]
    fn khash_expectation_zero_jaccard() {
        assert_eq!(khash_estimator_expectation(64, 0.0, 10, 10), 0.0);
    }
}
