//! # pg-stats — statistical substrate
//!
//! The theory side of the paper, made executable:
//!
//! * [`special`] — special functions (log-gamma, log-binomial, regularized
//!   incomplete beta) implemented from scratch; everything else builds on
//!   them.
//! * [`binomial`] / [`hypergeom`] — the distributions governing the k-hash
//!   (`Bin(k, J)`) and 1-hash (`Hypergeometric(|X∪Y|, |X∩Y|, k)`) match
//!   counts, with the exact estimator-expectation sums of Eq. (23)/(24).
//! * [`bounds`] — every concentration/MSE bound in the paper as a function:
//!   Prop. IV.1 (BF MSE), Eq. (3) (BF Chebyshev), Prop. IV.2/IV.3
//!   (MinHash Hoeffding/Serfling), Theorem VII.1 (triangle-count bounds for
//!   BF and MinHash, including the Vizing-refined variant), and the KMV
//!   beta-distribution bound of Prop. A.7/A.9.
//! * [`summary`] — the sample-summary machinery the evaluation section
//!   uses: medians, quartiles, and 95 % non-parametric confidence
//!   intervals (§VIII-A cites the scientific-benchmarking recommendations
//!   of Hoefler & Belli; the non-parametric CI is theirs).
//!
//! Everything is pure `f64` math with no dependencies, so the bound
//! calculators can be cross-checked by Monte-Carlo in the test suites of
//! the higher crates.

pub mod binomial;
pub mod bounds;
pub mod hypergeom;
pub mod regression;
pub mod special;
pub mod summary;

pub use bounds::{
    bf_concentration_bound, bf_mse_bound, bf_regime_ok, chebyshev, kmv_deviation_probability,
    mh_concentration_bound, tc_bf_concentration_bound, tc_mh_concentration_bound,
    tc_mh_concentration_bound_refined,
};
pub use regression::{linear_fit, log_log_fit, LinearFit};
pub use summary::Summary;
