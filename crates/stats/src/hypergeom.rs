//! Hypergeometric distribution: the law of the 1-hash match count
//! `|M¹_X ∩ M¹_Y| ~ Hypergeometric(|X∪Y|, |X∩Y|, k)` (§IV-D of the paper —
//! sampling without replacement from the union).

use crate::special::ln_binomial;

/// `P[Hyper(N, K, n) = s]`: probability of `s` successes when drawing `n`
/// items without replacement from a population of `N` containing `K`
/// successes.
pub fn pmf(pop: u64, successes: u64, draws: u64, s: u64) -> f64 {
    assert!(successes <= pop, "K={successes} exceeds N={pop}");
    assert!(draws <= pop, "n={draws} exceeds N={pop}");
    if s > draws || s > successes {
        return 0.0;
    }
    let failures_drawn = draws - s;
    if failures_drawn > pop - successes {
        return 0.0;
    }
    (ln_binomial(successes, s) + ln_binomial(pop - successes, failures_drawn)
        - ln_binomial(pop, draws))
    .exp()
}

/// Mean `n·K/N`.
#[inline]
pub fn mean(pop: u64, successes: u64, draws: u64) -> f64 {
    if pop == 0 {
        return 0.0;
    }
    draws as f64 * successes as f64 / pop as f64
}

/// Variance `n·(K/N)·(1−K/N)·(N−n)/(N−1)`.
pub fn variance(pop: u64, successes: u64, draws: u64) -> f64 {
    if pop <= 1 {
        return 0.0;
    }
    let n = draws as f64;
    let p = successes as f64 / pop as f64;
    n * p * (1.0 - p) * (pop - draws) as f64 / (pop - 1) as f64
}

/// Exact expectation of the 1-hash intersection estimator (Eq. 24):
///
/// `E[|X∩Y|̂_1H] = (|X|+|Y|) · Σ_s P[Hyper(|X∪Y|, |X∩Y|, k) = s] · s/(k+s)`.
pub fn onehash_estimator_expectation(union: u64, inter: u64, k: u64, nx: usize, ny: usize) -> f64 {
    let draws = k.min(union);
    let sum: f64 = (0..=draws.min(inter))
        .map(|s| pmf(union, inter, draws, s) * s as f64 / (k + s) as f64)
        .sum();
    (nx + ny) as f64 * sum
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pmf_sums_to_one() {
        let total: f64 = (0..=20).map(|s| pmf(100, 30, 20, s)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pmf_textbook_case() {
        // Urn: N=10, K=4, n=3, P[s=2] = C(4,2)C(6,1)/C(10,3) = 36/120.
        assert!((pmf(10, 4, 3, 2) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn pmf_impossible_cases_zero() {
        assert_eq!(pmf(10, 2, 5, 3), 0.0); // more successes than exist
        assert_eq!(pmf(10, 9, 5, 1), 0.0); // cannot draw 4 failures from 1
    }

    #[test]
    fn full_draw_is_deterministic() {
        // Drawing the whole population yields exactly K successes.
        assert!((pmf(8, 3, 8, 3) - 1.0).abs() < 1e-12);
        assert_eq!(pmf(8, 3, 8, 2), 0.0);
    }

    #[test]
    fn moments_match_binomial_limit() {
        // For N >> n the hypergeometric approaches Bin(n, K/N).
        let (m_h, v_h) = (
            mean(1_000_000, 300_000, 50),
            variance(1_000_000, 300_000, 50),
        );
        let v_b = crate::binomial::variance(50, 0.3);
        assert!((m_h - 15.0).abs() < 1e-9);
        assert!((v_h - v_b).abs() / v_b < 1e-3);
    }

    #[test]
    fn variance_shrinks_with_exhaustive_sampling() {
        // Sampling the whole population leaves no variance.
        assert!(variance(50, 20, 50).abs() < 1e-12);
    }

    #[test]
    fn onehash_expectation_converges_to_truth() {
        // |X| = |Y| = 60, |X∩Y| = 20, |X∪Y| = 100.
        let e16 = onehash_estimator_expectation(100, 20, 16, 60, 60);
        let e64 = onehash_estimator_expectation(100, 20, 64, 60, 60);
        assert!((e64 - 20.0).abs() < (e16 - 20.0).abs());
        // k = union size ⇒ whole union sampled: s = 20 w.p. 1,
        // E = 120·20/120 = 20 exactly.
        let e100 = onehash_estimator_expectation(100, 20, 100, 60, 60);
        assert!((e100 - 20.0).abs() < 1e-9, "e100={e100}");
    }
}
