//! The paper's concentration and MSE bounds as executable functions.
//!
//! Each bound returns an upper bound on a probability (clamped to `[0, 1]`,
//! since a probability bound above 1 is vacuous). The experiment binaries
//! verify empirically that observed violation frequencies stay below these
//! functions (Tables II/III, Theorem VII.1).

use crate::special::reg_inc_beta;

/// Generic Chebyshev step: `P[|θ̂ − θ| ≥ t] ≤ MSE/t²` (footnote 2 of the
/// paper: applied to the MSE around the *true* value, not the mean).
#[inline]
pub fn chebyshev(mse: f64, t: f64) -> f64 {
    assert!(t > 0.0, "deviation t must be positive");
    (mse / (t * t)).clamp(0.0, 1.0)
}

/// Validity regime of Prop. IV.1: `b·|X∩Y| ≤ 0.499 · B · ln B`.
#[inline]
pub fn bf_regime_ok(inter: f64, bits: usize, b: usize) -> bool {
    let bx = bits as f64;
    b as f64 * inter <= 0.499 * bx * bx.ln()
}

/// Prop. IV.1 MSE bound for the Bloom-filter AND estimator (dropping the
/// `1 + o(1)` factor, which vanishes as `B` grows):
///
/// `MSE ≤ e^{|X∩Y|·b/(B−1)} · B/b² − B/b² − |X∩Y|/b`.
///
/// Only meaningful inside [`bf_regime_ok`]; outside that regime the paper
/// provides no guarantee and we return `f64::INFINITY`.
pub fn bf_mse_bound(inter: f64, bits: usize, b: usize) -> f64 {
    assert!(b > 0 && bits > 1);
    if !bf_regime_ok(inter, bits, b) {
        return f64::INFINITY;
    }
    let bx = bits as f64;
    let bb = b as f64;
    ((inter * bb / (bx - 1.0)).exp() * bx / (bb * bb) - bx / (bb * bb) - inter / bb).max(0.0)
}

/// Eq. (3): the Chebyshev concentration bound for `|X∩Y|̂_AND`.
pub fn bf_concentration_bound(inter: f64, bits: usize, b: usize, t: f64) -> f64 {
    chebyshev(bf_mse_bound(inter, bits, b), t)
}

/// Prop. IV.2 / IV.3 (identical form for k-hash and 1-hash):
///
/// `P[|estimate − |X∩Y|| ≥ t] ≤ 2·exp(−2kt² / (|X|+|Y|)²)`.
pub fn mh_concentration_bound(k: usize, t: f64, nx: usize, ny: usize) -> f64 {
    assert!(k > 0 && t >= 0.0);
    let denom = (nx + ny) as f64;
    if denom == 0.0 {
        return 0.0;
    }
    (2.0 * (-2.0 * k as f64 * t * t / (denom * denom)).exp()).clamp(0.0, 1.0)
}

/// Theorem VII.1, Bloom-filter case:
///
/// `P[|TC − T̂C_AND| ≥ t] ≤ 2m²·(e^{Δb/(B−1)}·B/b² − B/b² − Δ/b) / (9t²)`,
/// valid when `bΔ ≤ 0.499·B·ln B` (Δ = max degree). Returns `INFINITY`
/// outside the regime.
pub fn tc_bf_concentration_bound(
    m: usize,
    max_degree: usize,
    bits: usize,
    b: usize,
    t: f64,
) -> f64 {
    assert!(t > 0.0);
    let delta = max_degree as f64;
    if !bf_regime_ok(delta, bits, b) {
        return f64::INFINITY;
    }
    let bx = bits as f64;
    let bb = b as f64;
    let inner =
        ((delta * bb / (bx - 1.0)).exp() * bx / (bb * bb) - bx / (bb * bb) - delta / bb).max(0.0);
    (2.0 * (m as f64) * (m as f64) * inner / (9.0 * t * t)).clamp(0.0, 1.0)
}

/// Theorem VII.1, MinHash case (both 1-hash and k-hash):
///
/// `P[|TC − T̂C| ≥ t] ≤ 2·exp(−18kt² / (Σ_v d(v)²)²)`.
pub fn tc_mh_concentration_bound(k: usize, t: f64, sum_degree_squares: u64) -> f64 {
    assert!(k > 0 && t >= 0.0);
    let s = sum_degree_squares as f64;
    if s == 0.0 {
        return 0.0;
    }
    (2.0 * (-18.0 * k as f64 * t * t / (s * s)).exp()).clamp(0.0, 1.0)
}

/// Theorem VII.1, refined MinHash case via Vizing's theorem (χ ≤ Δ+1):
///
/// `P[|TC − T̂C| ≥ t] ≤ 2·exp(−9kt² / (4(Δ+1)·Σ_v d(v)³))`.
pub fn tc_mh_concentration_bound_refined(
    k: usize,
    t: f64,
    max_degree: usize,
    sum_degree_cubes: u64,
) -> f64 {
    assert!(k > 0 && t >= 0.0);
    let denom = 4.0 * (max_degree as f64 + 1.0) * sum_degree_cubes as f64;
    if denom == 0.0 {
        return 0.0;
    }
    (2.0 * (-9.0 * k as f64 * t * t / denom).exp()).clamp(0.0, 1.0)
}

/// Prop. A.7 (and A.9 with `|X∪Y|` in place of `|X|`): the *exact*
/// probability that the KMV estimate deviates by **at most** `t`:
///
/// `P[||X|̂ − |X|| ≤ t] = I_u(k, |X|−k+1) − I_l(k, |X|−k+1)` with
/// `u = (k−1)/(|X|−t)` and `l = (k−1)/(|X|+t)`, both clamped into `[0, 1]`.
///
/// Returns the *deviation* probability `P[· > t] = 1 − (that)`, to match
/// the orientation of every other bound in this module.
pub fn kmv_deviation_probability(set_size: u64, k: u64, t: f64) -> f64 {
    assert!(t >= 0.0);
    if k <= 1 || set_size < k {
        // Degenerate sketch (or lossless regime where the estimate is
        // exact): no deviation beyond t ≥ 0... only claim certainty when
        // lossless.
        return if set_size < k { 0.0 } else { 1.0 };
    }
    let n = set_size as f64;
    let a = k as f64;
    let b = n - a + 1.0;
    let upper = if n - t <= 0.0 {
        1.0
    } else {
        ((a - 1.0) / (n - t)).clamp(0.0, 1.0)
    };
    let lower = ((a - 1.0) / (n + t)).clamp(0.0, 1.0);
    let within = reg_inc_beta(upper, a, b) - reg_inc_beta(lower, a, b);
    (1.0 - within).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chebyshev_basic() {
        assert_eq!(chebyshev(4.0, 4.0), 0.25);
        assert_eq!(chebyshev(100.0, 1.0), 1.0); // clamped
        assert_eq!(chebyshev(0.0, 1.0), 0.0);
    }

    #[test]
    fn bf_regime_detection() {
        assert!(bf_regime_ok(10.0, 4096, 2));
        assert!(!bf_regime_ok(1e9, 4096, 2));
        assert_eq!(bf_mse_bound(1e9, 4096, 2), f64::INFINITY);
    }

    #[test]
    fn bf_mse_bound_positive_and_grows_with_load() {
        let small = bf_mse_bound(10.0, 4096, 2);
        let large = bf_mse_bound(500.0, 4096, 2);
        assert!(small >= 0.0);
        assert!(large > small, "small={small} large={large}");
    }

    #[test]
    fn bf_mse_bound_shrinks_with_bigger_filter() {
        let b1 = bf_mse_bound(100.0, 1 << 12, 2);
        let b2 = bf_mse_bound(100.0, 1 << 16, 2);
        assert!(b2 < b1, "b1={b1} b2={b2}");
    }

    #[test]
    fn mh_bound_decays_exponentially_in_t() {
        let b1 = mh_concentration_bound(64, 5.0, 100, 100);
        let b2 = mh_concentration_bound(64, 50.0, 100, 100);
        let b3 = mh_concentration_bound(64, 100.0, 100, 100);
        assert!(b1 <= 1.0);
        assert!(b2 < b1);
        assert!(b3 < b2 * b2 / b1 * 1.01, "not superexponential decay");
    }

    #[test]
    fn mh_bound_improves_with_k() {
        let k16 = mh_concentration_bound(16, 30.0, 100, 100);
        let k256 = mh_concentration_bound(256, 30.0, 100, 100);
        assert!(k256 < k16);
    }

    #[test]
    fn tc_bounds_behave() {
        let loose = tc_bf_concentration_bound(1000, 50, 1 << 14, 2, 100.0);
        let tight = tc_bf_concentration_bound(1000, 50, 1 << 14, 2, 1e7);
        assert!(loose <= 1.0);
        assert!(tight < loose || loose == 0.0);

        let mh = tc_mh_concentration_bound(256, 1e5, 1_000_000);
        assert!((0.0..=1.0).contains(&mh));
        let mh_big_t = tc_mh_concentration_bound(256, 1e7, 1_000_000);
        assert!(mh_big_t <= mh);
    }

    #[test]
    fn tc_refined_bound_beats_plain_on_skewed_degrees() {
        // A star graph: one vertex of degree n-1. Σd² ≈ n², Σd³ ≈ n³ but
        // the refined denominator 4(Δ+1)Σd³ can still win for large t.
        let n = 1000u64;
        let sum_sq = (n - 1) * (n - 1) + (n - 1);
        let sum_cu = (n - 1).pow(3) + (n - 1);
        let t = 2000.0;
        let plain = tc_mh_concentration_bound(64, t, sum_sq);
        let refined = tc_mh_concentration_bound_refined(64, t, (n - 1) as usize, sum_cu);
        // Both valid bounds; check they are probabilities and ordered as
        // the paper expects for this regime (refined ≤ plain here).
        assert!((0.0..=1.0).contains(&plain));
        assert!((0.0..=1.0).contains(&refined));
    }

    #[test]
    fn kmv_probability_shrinks_with_t() {
        let p_small = kmv_deviation_probability(10_000, 256, 100.0);
        let p_large = kmv_deviation_probability(10_000, 256, 2000.0);
        assert!(p_large < p_small, "small={p_small} large={p_large}");
        assert!((0.0..=1.0).contains(&p_small));
    }

    #[test]
    fn kmv_probability_shrinks_with_k() {
        let k32 = kmv_deviation_probability(10_000, 32, 1000.0);
        let k512 = kmv_deviation_probability(10_000, 512, 1000.0);
        assert!(k512 < k32);
    }

    #[test]
    fn kmv_lossless_regime_certain() {
        assert_eq!(kmv_deviation_probability(50, 64, 0.5), 0.0);
    }
}
