//! The `|X|` and `|X ∩ Y|` estimators of the paper, as pure functions of
//! the observable sketch statistics.
//!
//! Keeping the arithmetic separate from the data structures makes each
//! formula independently testable against the paper's equations, and lets
//! the flat [`crate::BloomCollection`]-style containers share one
//! implementation with the standalone sketch types.
//!
//! | Function | Paper reference |
//! |---|---|
//! | [`bf_size_swamidass`] | Eq. (1), with the `B̃_{X,1}` divergence fix of App. C-3 |
//! | [`bf_size_papapetrou`] | existing estimator \[110, 111\] used as a baseline in §VIII |
//! | [`bf_intersect_and`] | Eq. (2), the new `|X∩Y|_AND` estimator |
//! | [`bf_intersect_limit`] | Eq. (4), the limiting estimator `B_{X∩Y,1}/b` |
//! | [`bf_intersect_or`] | Eq. (29), the Swamidass OR estimator |
//! | [`mh_jaccard`] | `Ĵ = |M_X ∩ M_Y| / k` (§IV-C / §IV-D) |
//! | [`jaccard_to_intersection`] | Eq. (5), `Ĵ/(1+Ĵ) · (|X|+|Y|)` |
//! | [`kmv_size`] | `(k−1)/max K_X` (§IX) |
//! | [`kmv_intersection`] | Eq. (41), `|X|+|Y|−|X∪Y|_KMV` |

/// Swamidass–Baldi single-set estimator (Eq. 1):
/// `|X|̂ = −(B/b)·ln(1 − B₁/B)`.
///
/// Implements the divergence fix of Appendix C-3: a completely full filter
/// (`B₁ = B`) is treated as `B₁ = B − 1` so the estimate stays finite.
pub fn bf_size_swamidass(ones: usize, bits: usize, b: usize) -> f64 {
    assert!(b > 0, "Bloom filter needs at least one hash function");
    assert!(ones <= bits, "ones={ones} exceeds bits={bits}");
    if bits == 0 || ones == 0 {
        return 0.0;
    }
    let ones_tilde = if ones == bits { ones - 1 } else { ones };
    let bx = bits as f64;
    -(bx / b as f64) * (1.0 - ones_tilde as f64 / bx).ln()
}

/// Pre-existing Bloom-filter cardinality estimator of Papapetrou et
/// al. \[110\]: `|X|̂ = −ln(1 − B₁/B) / (b·ln(1 − 1/B))`, compared against
/// in §VIII-A of the paper. Uses the same saturation fix as
/// [`bf_size_swamidass`].
pub fn bf_size_papapetrou(ones: usize, bits: usize, b: usize) -> f64 {
    assert!(b > 0);
    assert!(ones <= bits);
    if bits <= 1 || ones == 0 {
        return 0.0;
    }
    let ones_tilde = if ones == bits { ones - 1 } else { ones };
    let bx = bits as f64;
    (1.0 - ones_tilde as f64 / bx).ln() / (b as f64 * (1.0 - 1.0 / bx).ln())
}

/// The paper's new AND estimator (Eq. 2): apply Eq. (1) to the bitwise AND
/// of the two filters. `and_ones = B_{X∩Y,1}` is the popcount of
/// `B_X AND B_Y`.
#[inline]
pub fn bf_intersect_and(and_ones: usize, bits: usize, b: usize) -> f64 {
    bf_size_swamidass(and_ones, bits, b)
}

/// The limiting estimator (Eq. 4): `|X∩Y|̂_L = B_{X∩Y,1} / b`, i.e. the
/// `B → ∞` limit of Eq. (2). Cheaper (no `ln`) and — per §VIII-B — often
/// preferable on dense graphs where the AND estimator's rescaling
/// over-corrects.
#[inline]
pub fn bf_intersect_limit(and_ones: usize, b: usize) -> f64 {
    assert!(b > 0);
    and_ones as f64 / b as f64
}

/// The OR estimator (Eq. 29, from Swamidass et al.):
/// `|X∩Y|̂_OR = |X| + |Y| + (B/b)·ln(1 − B_{X∪Y,1}/B)`, using the exact set
/// sizes (degrees are free in a CSR graph) and the popcount of the OR-ed
/// filters.
pub fn bf_intersect_or(or_ones: usize, bits: usize, b: usize, nx: usize, ny: usize) -> f64 {
    assert!(b > 0);
    assert!(or_ones <= bits);
    if bits == 0 {
        return 0.0;
    }
    let ones_tilde = if or_ones == bits {
        or_ones - 1
    } else {
        or_ones
    };
    let bx = bits as f64;
    nx as f64 + ny as f64 + (bx / b as f64) * (1.0 - ones_tilde as f64 / bx).ln()
}

/// MinHash Jaccard estimator `Ĵ = matches / k` — unbiased for both the
/// k-hash variant (`matches` = number of hash functions whose minima
/// coincide, Binomial(k, J)) and the 1-hash variant (`matches` =
/// `|M¹_X ∩ M¹_Y|`, hypergeometric), §IV-C/§IV-D.
#[inline]
pub fn mh_jaccard(matches: usize, k: usize) -> f64 {
    assert!(k > 0, "MinHash needs k ≥ 1");
    debug_assert!(matches <= k);
    matches as f64 / k as f64
}

/// Converts a Jaccard estimate into an intersection-cardinality estimate
/// (Eq. 5): `|X∩Y|̂ = Ĵ/(1+Ĵ) · (|X| + |Y|)`.
///
/// Exact identity when `Ĵ` is the true Jaccard:
/// `J/(1+J)·(|X|+|Y|) = |X∩Y|` because `|X|+|Y| = |X∪Y| + |X∩Y|`.
#[inline]
pub fn jaccard_to_intersection(jaccard: f64, nx: usize, ny: usize) -> f64 {
    debug_assert!((0.0..=1.0).contains(&jaccard));
    jaccard / (1.0 + jaccard) * (nx + ny) as f64
}

/// KMV distinct-count estimator (Eq. 39): `|X|̂ = (k−1) / max(K_X)` where
/// `max(K_X)` is the k-th smallest unit-interval hash. `k` here is the
/// *realized* sketch size (≤ the configured k for small sets).
pub fn kmv_size(kth_smallest: f64, k: usize) -> f64 {
    assert!(
        kth_smallest > 0.0 && kth_smallest <= 1.0,
        "KMV hash {kth_smallest} outside (0,1]"
    );
    if k <= 1 {
        // Degenerate sketch: no information beyond "non-empty".
        return if k == 1 { 1.0 } else { 0.0 };
    }
    (k - 1) as f64 / kth_smallest
}

/// KMV intersection estimator with known set sizes (Eq. 41):
/// `|X∩Y|̂ = |X| + |Y| − |X∪Y|̂_KMV`.
#[inline]
pub fn kmv_intersection(nx: usize, ny: usize, union_estimate: f64) -> f64 {
    nx as f64 + ny as f64 - union_estimate
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn swamidass_zero_ones_is_zero() {
        assert_eq!(bf_size_swamidass(0, 1024, 2), 0.0);
    }

    #[test]
    fn swamidass_saturated_is_finite() {
        let e = bf_size_swamidass(1024, 1024, 1);
        assert!(e.is_finite());
        // ln(1024) scaling: −B·ln(1/B) = B·ln B.
        assert!((e - 1024.0 * 1024f64.ln()).abs() < 1e-6);
    }

    #[test]
    fn swamidass_tracks_small_loads() {
        // With few elements and a large filter, ones ≈ b·|X| and the
        // estimator should be close to |X|.
        let bits = 1 << 20;
        let b = 2;
        let true_size = 100;
        let ones = b * true_size; // no collisions in this regime
        let est = bf_size_swamidass(ones, bits, b);
        assert!((est - true_size as f64).abs() < 0.5, "est={est}");
    }

    #[test]
    fn swamidass_monotone_in_ones() {
        let mut prev = -1.0;
        for ones in (0..=4096).step_by(64) {
            let e = bf_size_swamidass(ones, 4096, 4);
            assert!(e >= prev);
            prev = e;
        }
    }

    #[test]
    fn papapetrou_close_to_swamidass_for_large_filters() {
        // ln(1−1/B) ≈ −1/B, so the two agree as B grows.
        let (ones, bits, b) = (5000, 1 << 16, 2);
        let s = bf_size_swamidass(ones, bits, b);
        let p = bf_size_papapetrou(ones, bits, b);
        assert!((s - p).abs() / s < 1e-3, "s={s} p={p}");
    }

    #[test]
    fn limit_estimator_is_linear() {
        assert_eq!(bf_intersect_limit(12, 4), 3.0);
        assert_eq!(bf_intersect_limit(0, 4), 0.0);
    }

    #[test]
    fn and_estimator_approaches_limit_for_huge_filters() {
        // Eq. (4): as B→∞ with ones fixed, AND → ones/b.
        let ones = 64;
        let b = 2;
        let small = bf_intersect_and(ones, 1 << 10, b);
        let large = bf_intersect_and(ones, 1 << 24, b);
        let limit = bf_intersect_limit(ones, b);
        assert!((large - limit).abs() < (small - limit).abs());
        assert!((large - limit).abs() < 1e-2);
    }

    #[test]
    fn or_estimator_recovers_disjoint_and_nested_sets() {
        // Perfect-hash idealization: |X|=30, |Y|=50 with no collisions.
        let bits = 1 << 20;
        let b = 1;
        // Disjoint: union has 80 ones -> intersection ≈ 0.
        let disjoint = bf_intersect_or(80, bits, b, 30, 50);
        assert!(disjoint.abs() < 0.1, "disjoint={disjoint}");
        // Nested (X ⊆ Y): union has 50 ones -> intersection ≈ 30.
        let nested = bf_intersect_or(50, bits, b, 30, 50);
        assert!((nested - 30.0).abs() < 0.1, "nested={nested}");
    }

    #[test]
    fn jaccard_identity_is_exact() {
        // For true J the Eq. (5) transform is an identity.
        let nx = 40;
        let ny = 60;
        let inter = 20;
        let union = nx + ny - inter;
        let j = inter as f64 / union as f64;
        let est = jaccard_to_intersection(j, nx, ny);
        assert!((est - inter as f64).abs() < 1e-12);
    }

    #[test]
    fn jaccard_edge_values() {
        assert_eq!(jaccard_to_intersection(0.0, 10, 20), 0.0);
        // J = 1 ⇒ X = Y ⇒ intersection = |X| = |Y|.
        assert!((jaccard_to_intersection(1.0, 15, 15) - 15.0).abs() < 1e-12);
    }

    #[test]
    fn mh_jaccard_fraction() {
        assert_eq!(mh_jaccard(3, 12), 0.25);
        assert_eq!(mh_jaccard(0, 12), 0.0);
        assert_eq!(mh_jaccard(12, 12), 1.0);
    }

    #[test]
    fn kmv_size_basics() {
        // If the k-th smallest of n uniform hashes is at its expectation
        // k/(n+1), the estimate is (k−1)(n+1)/k ≈ n.
        let n = 1000.0;
        let k = 100;
        let kth = k as f64 / (n + 1.0);
        let est = kmv_size(kth, k);
        assert!((est - n).abs() < 0.02 * n, "est={est}");
    }

    #[test]
    fn kmv_degenerate_k() {
        assert_eq!(kmv_size(0.5, 0), 0.0);
        assert_eq!(kmv_size(0.5, 1), 1.0);
    }

    #[test]
    fn kmv_intersection_inclusion_exclusion() {
        assert_eq!(kmv_intersection(30, 50, 60.0), 20.0);
    }

    #[test]
    #[should_panic(expected = "exceeds bits")]
    fn swamidass_rejects_bad_counts() {
        bf_size_swamidass(10, 5, 1);
    }
}
