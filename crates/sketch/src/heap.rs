//! Bounded max-heap primitives shared by the streaming insert paths.
//!
//! Bottom-k keeps packed `(hash, element)` `u64` keys, KMV keeps
//! unit-interval `f64` hashes; both maintain "the k smallest values seen"
//! with the eviction candidate (the current maximum) at the heap root, so
//! one generic sift pair serves both. Comparisons must be total over the
//! stored values — integer keys trivially, KMV's hashes because they are
//! always finite.

/// Max-heap sift-up of the element at index `i` (after a push).
pub(crate) fn sift_up<T: Copy + PartialOrd>(heap: &mut [T], mut i: usize) {
    while i > 0 {
        let parent = (i - 1) / 2;
        if heap[i] <= heap[parent] {
            break;
        }
        heap.swap(i, parent);
        i = parent;
    }
}

/// Max-heap sift-down from index `i` (after a replace-root eviction).
pub(crate) fn sift_down<T: Copy + PartialOrd>(heap: &mut [T], mut i: usize) {
    loop {
        let (l, r) = (2 * i + 1, 2 * i + 2);
        let mut largest = i;
        if l < heap.len() && heap[l] > heap[largest] {
            largest = l;
        }
        if r < heap.len() && heap[r] > heap[largest] {
            largest = r;
        }
        if largest == i {
            break;
        }
        heap.swap(i, largest);
        i = largest;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_heap_keeps_k_smallest() {
        // Push-or-evict through the sifts must retain exactly the k
        // smallest values, for both key types the streaming paths use.
        let xs: Vec<u64> = (0..100).map(|i| (i * 7919 + 13) % 101).collect();
        let k = 8;
        let mut heap: Vec<u64> = Vec::new();
        for &x in &xs {
            if heap.len() < k {
                heap.push(x);
                let last = heap.len() - 1;
                sift_up(&mut heap, last);
            } else if x < heap[0] {
                heap[0] = x;
                sift_down(&mut heap, 0);
            }
        }
        heap.sort_unstable();
        // 7919 is coprime to 101, so the residues are distinct and the k
        // smallest are well defined.
        let mut want = xs.clone();
        want.sort_unstable();
        assert_eq!(heap, want[..k].to_vec());
    }
}
