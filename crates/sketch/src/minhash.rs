//! MinHash, k-hash variant (§II-D, §IV-C of the paper).
//!
//! A signature keeps, for each of `k` independent hash functions, the
//! element of the set with the smallest hash under that function. The
//! number of positions where two signatures agree is `|M_X ∩ M_Y|` in the
//! paper's notation and follows `Binomial(k, J(X,Y))`, which makes
//! `Ĵ = matches/k` unbiased and the Eq. (5) intersection estimator an MLE
//! (Table II).

use crate::cowvec::cow_clear;
use crate::estimators;
use pg_hash::HashFamily;
use pg_parallel::parallel_for;
use std::borrow::Cow;

/// Sentinel signature entry for "set was empty under this function".
const EMPTY: u32 = u32::MAX;

/// A k-hash MinHash signature of one set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MinHashSignature {
    mins: Vec<u32>,
}

impl MinHashSignature {
    /// Builds the signature of `items` under `k` functions seeded from
    /// `seed`. Two signatures are only comparable when built with the same
    /// `k` and `seed`.
    pub fn from_set(items: &[u32], k: usize, seed: u64) -> Self {
        let family = HashFamily::new(k, seed);
        let mut mins = vec![EMPTY; k];
        let mut best = vec![u32::MAX; k];
        let mut hashes = vec![0u32; k];
        for &x in items {
            // All k hashes of x in one batched call (key mixing hoisted).
            family.hashes_into(x as u64, &mut hashes);
            for i in 0..k {
                let h = hashes[i];
                // Tie-break on the element ID so construction order never
                // matters (determinism under parallel construction).
                if h < best[i] || (h == best[i] && x < mins[i]) {
                    best[i] = h;
                    mins[i] = x;
                }
            }
        }
        MinHashSignature { mins }
    }

    /// Number of hash functions `k`.
    #[inline]
    pub fn k(&self) -> usize {
        self.mins.len()
    }

    /// The per-function minima (sentinel `u32::MAX` for an empty set).
    #[inline]
    pub fn mins(&self) -> &[u32] {
        &self.mins
    }

    /// `|M_X ∩ M_Y|`: positions where the minima agree.
    pub fn matches(&self, other: &MinHashSignature) -> usize {
        assert_eq!(self.k(), other.k(), "signatures differ in k");
        self.mins
            .iter()
            .zip(&other.mins)
            .filter(|(a, b)| a == b && **a != EMPTY)
            .count()
    }

    /// `Ĵ_kH = |M_X ∩ M_Y| / k`.
    pub fn estimate_jaccard(&self, other: &MinHashSignature) -> f64 {
        estimators::mh_jaccard(self.matches(other), self.k())
    }

    /// `|X∩Y|̂_kH` (Eq. 5); needs the exact set sizes.
    pub fn estimate_intersection(&self, other: &MinHashSignature, nx: usize, ny: usize) -> f64 {
        estimators::jaccard_to_intersection(self.estimate_jaccard(other), nx, ny)
    }
}

/// All k-hash signatures of a ProbGraph representation, flat in one array
/// (`n_sets × k` entries of 4 bytes — Table I: `W·k` bits per set).
///
/// The signature array is copy-on-write over `'a` (see
/// [`crate::BloomCollectionIn`]): borrowed collections serve a validated
/// snapshot buffer in place; the owned alias [`MinHashCollection`] is the
/// ordinary built/streamed form.
#[derive(Clone, Debug)]
pub struct MinHashCollectionIn<'a> {
    sigs: Cow<'a, [u32]>,
    k: usize,
    /// The k seeded hash functions — kept after construction so streamed
    /// elements can be absorbed in place (per-slot min updates).
    family: HashFamily,
}

/// The owned (`'static`) form of [`MinHashCollectionIn`].
pub type MinHashCollection = MinHashCollectionIn<'static>;

impl<'a> MinHashCollectionIn<'a> {
    /// Builds signatures for `n_sets` sets in parallel; `set(i)` returns the
    /// i-th input set.
    pub fn build<'s, F>(n_sets: usize, k: usize, seed: u64, set: F) -> Self
    where
        F: Fn(usize) -> &'s [u32] + Sync,
    {
        assert!(k > 0, "MinHash needs k ≥ 1");
        let family = HashFamily::new(k, seed);
        let mut sigs = vec![EMPTY; n_sets * k];
        {
            struct SendPtr(*mut u32);
            unsafe impl Send for SendPtr {}
            unsafe impl Sync for SendPtr {}
            let base = SendPtr(sigs.as_mut_ptr());
            let base = &base;
            let family = &family;
            parallel_for(n_sets, |s| {
                // SAFETY: window [s*k, (s+1)*k) is exclusive to set s.
                let window = unsafe { std::slice::from_raw_parts_mut(base.0.add(s * k), k) };
                let mut best = vec![u32::MAX; k];
                let mut hashes = vec![0u32; k];
                for &x in set(s) {
                    family.hashes_into(x as u64, &mut hashes);
                    for i in 0..k {
                        let h = hashes[i];
                        if h < best[i] || (h == best[i] && x < window[i]) {
                            best[i] = h;
                            window[i] = x;
                        }
                    }
                }
            });
        }
        MinHashCollectionIn {
            sigs: Cow::Owned(sigs),
            k,
            family,
        }
    }

    /// Reconstructs a collection from an already-materialized flat
    /// signature array (the snapshot load path; owned `Vec<u32>` or
    /// borrowed `&'a [u32]`). `sigs` must hold a whole number of `k`-slot
    /// signatures produced under the same `(k, seed)` family; slots may
    /// carry the `u32::MAX` empty sentinel.
    pub fn from_raw_sigs(sigs: impl Into<Cow<'a, [u32]>>, k: usize, seed: u64) -> Self {
        let sigs = sigs.into();
        assert!(k > 0, "MinHash needs k ≥ 1");
        assert_eq!(sigs.len() % k, 0, "signature array must hold whole sets");
        MinHashCollectionIn {
            sigs,
            k,
            family: HashFamily::new(k, seed),
        }
    }

    /// The whole flat signature array (`n_sets × k`) — the byte-stable
    /// payload snapshots persist.
    #[inline]
    pub fn raw_sigs(&self) -> &[u32] {
        &self.sigs
    }

    /// Assembles one collection holding the concatenation of `parts`'
    /// signatures, in order — the serving layer's copy-on-publish path.
    /// All parts must share `k` and a common seed.
    pub fn gather(parts: &[&MinHashCollectionIn<'_>]) -> MinHashCollection {
        let first = parts.first().expect("gather needs at least one part");
        let mut out = MinHashCollectionIn {
            sigs: Cow::Owned(Vec::new()),
            k: first.k,
            family: first.family.clone(),
        };
        out.gather_into(parts);
        out
    }

    /// In-place form of [`MinHashCollection::gather`], reusing `self`'s
    /// signature allocation (the double-buffer path).
    pub fn gather_into(&mut self, parts: &[&MinHashCollectionIn<'_>]) {
        let sigs = cow_clear(&mut self.sigs);
        for p in parts {
            assert_eq!(p.k, self.k, "gather: mismatched signature widths");
            sigs.extend_from_slice(&p.sigs);
        }
    }

    /// Detaches the collection from any borrowed snapshot buffer, cloning
    /// the signatures if they were served in place. No-op for owned data.
    pub fn into_owned(self) -> MinHashCollection {
        MinHashCollectionIn {
            sigs: Cow::Owned(self.sigs.into_owned()),
            k: self.k,
            family: self.family,
        }
    }

    /// Inserts one item into signature `i` in place (per-slot min with the
    /// same `(hash, element)` tie-break as construction, so the result is
    /// bit-identical to rebuilding the signature from the extended set).
    /// Allocation-free: per slot, one scalar hash of `x` and — only when
    /// needed for the comparison — one recomputed hash of the stored min.
    pub fn insert(&mut self, i: usize, x: u32) {
        let k = self.k;
        let window = &mut self.sigs.to_mut()[i * k..(i + 1) * k];
        for (t, slot) in window.iter_mut().enumerate() {
            let h = self.family.hash32(t, x as u64);
            let e = *slot;
            let best = if e == EMPTY {
                u32::MAX
            } else {
                self.family.hash32(t, e as u64)
            };
            if h < best || (h == best && x < e) {
                *slot = x;
            }
        }
    }

    /// Batched per-set insert: absorbs all of `xs` into signature `i`.
    ///
    /// The collection stores only the minimizing *elements* (Table I
    /// memory), not their hashes, so the per-slot best hashes are
    /// recovered once per batch — `k` scalar hashes — and then maintained
    /// across the whole run of `xs`; each element costs one batched
    /// `hashes_into` plus `k` compares, exactly the construction loop.
    pub fn insert_batch(&mut self, i: usize, xs: &[u32]) {
        if let [x] = xs {
            // One element: the allocation-free scalar path (hash32 is
            // bit-identical to the batched hashes_into).
            self.insert(i, *x);
            return;
        }
        if xs.is_empty() {
            return;
        }
        let k = self.k;
        let window = &mut self.sigs.to_mut()[i * k..(i + 1) * k];
        let mut best: Vec<u32> = window
            .iter()
            .enumerate()
            .map(|(t, &e)| {
                if e == EMPTY {
                    // Empty slot: construction's initial `best` sentinel.
                    u32::MAX
                } else {
                    self.family.hash32(t, e as u64)
                }
            })
            .collect();
        let mut hashes = vec![0u32; k];
        for &x in xs {
            self.family.hashes_into(x as u64, &mut hashes);
            for t in 0..k {
                let h = hashes[t];
                if h < best[t] || (h == best[t] && x < window[t]) {
                    best[t] = h;
                    window[t] = x;
                }
            }
        }
    }

    /// Number of signatures.
    #[inline]
    pub fn len(&self) -> usize {
        self.sigs.len().checked_div(self.k).unwrap_or(0)
    }

    /// True when the collection holds no signatures.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The number of hash functions `k`.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Signature window of set `i`.
    #[inline]
    pub fn signature(&self, i: usize) -> &[u32] {
        &self.sigs[i * self.k..(i + 1) * self.k]
    }

    /// `|M_X ∩ M_Y|` between sets `i` and `j` — the `O(k)` kernel of
    /// Table IV.
    #[inline]
    pub fn matches(&self, i: usize, j: usize) -> usize {
        self.matches_with_row(self.signature(i), j)
    }

    /// `|M_X ∩ M_Y|` of a pinned signature `row` (usually
    /// [`MinHashCollection::signature`] of a source vertex, hoisted once
    /// per row sweep) against set `j` — identical to
    /// [`MinHashCollection::matches`] when `row` is signature `i`.
    #[inline]
    pub fn matches_with_row(&self, row: &[u32], j: usize) -> usize {
        // Equal-length reslices so the compare loop is bounds-check-free
        // and auto-vectorizes (`vpcmpeqd` over full vector width).
        let a = &row[..self.k];
        let b = &self.signature(j)[..self.k];
        let mut c = 0usize;
        for t in 0..self.k {
            c += usize::from(a[t] == b[t] && a[t] != EMPTY);
        }
        c
    }

    /// Multi-lane `|M_X ∩ M_Y|`: the pinned signature `row` against `L`
    /// destination signatures — `out[l] == matches_with_row(row, js[l])`
    /// exactly. Each lane is its own contiguous compare/count pass (the
    /// `u32` equality loop auto-vectorizes to full-width `vpcmpeqd` per
    /// destination; element-interleaving the lanes would defeat exactly
    /// that), so the batching win is the source signature staying pinned
    /// in L1 across the `L` vectorized passes.
    #[inline]
    pub fn matches_multi<const L: usize>(&self, row: &[u32], js: [usize; L]) -> [usize; L] {
        debug_assert_eq!(row.len(), self.k);
        let mut c = [0usize; L];
        for l in 0..L {
            c[l] = self.matches_with_row(row, js[l]);
        }
        c
    }

    /// Two-lane `|M_X ∩ M_Y|`: the pinned signature `row` against two
    /// destination signatures in one sweep. On AVX-512 targets both
    /// destinations are compared against each 16-slot source vector load
    /// (`vpcmpeqd` → mask popcount), amortizing the source stream over
    /// two lanes; elsewhere it is two vectorized scalar passes. Either
    /// way each lane equals [`MinHashCollection::matches_with_row`].
    #[inline]
    pub fn matches_with_row_x2(&self, row: &[u32], j0: usize, j1: usize) -> (usize, usize) {
        #[cfg(all(target_arch = "x86_64", target_feature = "avx512f"))]
        {
            debug_assert_eq!(row.len(), self.k);
            let a = &row[..self.k];
            let b0 = &self.signature(j0)[..self.k];
            let b1 = &self.signature(j1)[..self.k];
            // SAFETY: avx512f is a compile-time target feature here; all
            // loads are explicit-unaligned or masked, and offsets stay
            // inside the three equal-length slices above.
            unsafe {
                use std::arch::x86_64::*;
                let empty = _mm512_set1_epi32(EMPTY as i32);
                let (mut c0, mut c1) = (0usize, 0usize);
                let mut t = 0;
                while t + 16 <= self.k {
                    let x = _mm512_loadu_si512(a.as_ptr().add(t) as *const _);
                    let ne = _mm512_cmpneq_epi32_mask(x, empty);
                    let y0 = _mm512_loadu_si512(b0.as_ptr().add(t) as *const _);
                    let y1 = _mm512_loadu_si512(b1.as_ptr().add(t) as *const _);
                    c0 += ((_mm512_cmpeq_epi32_mask(x, y0) & ne) as u32).count_ones() as usize;
                    c1 += ((_mm512_cmpeq_epi32_mask(x, y1) & ne) as u32).count_ones() as usize;
                    t += 16;
                }
                if t < self.k {
                    // Masked tail: zeroed slots compare equal (0 == 0), so
                    // the not-EMPTY mask is ANDed with the load mask to
                    // discard them.
                    let mask: __mmask16 = (1u16 << (self.k - t)) - 1;
                    let x = _mm512_maskz_loadu_epi32(mask, a.as_ptr().add(t) as *const _);
                    let ne = _mm512_cmpneq_epi32_mask(x, empty) & mask;
                    let y0 = _mm512_maskz_loadu_epi32(mask, b0.as_ptr().add(t) as *const _);
                    let y1 = _mm512_maskz_loadu_epi32(mask, b1.as_ptr().add(t) as *const _);
                    c0 += ((_mm512_cmpeq_epi32_mask(x, y0) & ne) as u32).count_ones() as usize;
                    c1 += ((_mm512_cmpeq_epi32_mask(x, y1) & ne) as u32).count_ones() as usize;
                }
                (c0, c1)
            }
        }
        #[cfg(not(all(target_arch = "x86_64", target_feature = "avx512f")))]
        {
            (
                self.matches_with_row(row, j0),
                self.matches_with_row(row, j1),
            )
        }
    }

    /// `Ĵ_kH` between sets `i` and `j`.
    #[inline]
    pub fn estimate_jaccard(&self, i: usize, j: usize) -> f64 {
        estimators::mh_jaccard(self.matches(i, j), self.k)
    }

    /// `|X∩Y|̂_kH` (Eq. 5) between sets `i` and `j` with exact sizes.
    #[inline]
    pub fn estimate_intersection(&self, i: usize, j: usize, nx: usize, ny: usize) -> f64 {
        estimators::jaccard_to_intersection(self.estimate_jaccard(i, j), nx, ny)
    }

    /// Bytes of sketch storage.
    pub fn memory_bytes(&self) -> usize {
        self.sigs.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_sets_match_everywhere() {
        let x: Vec<u32> = (0..100).collect();
        let a = MinHashSignature::from_set(&x, 64, 3);
        let b = MinHashSignature::from_set(&x, 64, 3);
        assert_eq!(a.matches(&b), 64);
        assert_eq!(a.estimate_jaccard(&b), 1.0);
    }

    #[test]
    fn disjoint_sets_rarely_match() {
        let x: Vec<u32> = (0..100).collect();
        let y: Vec<u32> = (1000..1100).collect();
        let a = MinHashSignature::from_set(&x, 128, 3);
        let b = MinHashSignature::from_set(&y, 128, 3);
        assert_eq!(a.matches(&b), 0);
    }

    #[test]
    fn jaccard_estimate_is_close_for_large_k() {
        // |X∩Y| = 50, |X∪Y| = 150 -> J = 1/3.
        let x: Vec<u32> = (0..100).collect();
        let y: Vec<u32> = (50..150).collect();
        let a = MinHashSignature::from_set(&x, 512, 7);
        let b = MinHashSignature::from_set(&y, 512, 7);
        let j = a.estimate_jaccard(&b);
        assert!((j - 1.0 / 3.0).abs() < 0.08, "J={j}");
        let inter = a.estimate_intersection(&b, 100, 100);
        assert!((inter - 50.0).abs() < 15.0, "inter={inter}");
    }

    #[test]
    fn empty_sets_give_zero() {
        let e = MinHashSignature::from_set(&[], 16, 1);
        let x = MinHashSignature::from_set(&[1, 2, 3], 16, 1);
        assert_eq!(e.matches(&x), 0);
        assert_eq!(e.matches(&e), 0, "two empties must not fake J=1");
        assert_eq!(e.estimate_intersection(&x, 0, 3), 0.0);
    }

    #[test]
    fn signature_independent_of_input_order() {
        let fwd: Vec<u32> = (0..200).collect();
        let rev: Vec<u32> = (0..200).rev().collect();
        assert_eq!(
            MinHashSignature::from_set(&fwd, 32, 5),
            MinHashSignature::from_set(&rev, 32, 5)
        );
    }

    #[test]
    fn collection_matches_standalone() {
        let sets: Vec<Vec<u32>> = (0..30)
            .map(|s| (0..40 + s).map(|i| (i * 7 + s) as u32).collect())
            .collect();
        let col = MinHashCollection::build(sets.len(), 24, 11, |i| &sets[i][..]);
        for (i, set) in sets.iter().enumerate() {
            let sig = MinHashSignature::from_set(set, 24, 11);
            assert_eq!(col.signature(i), sig.mins(), "set {i}");
        }
        let s0 = MinHashSignature::from_set(&sets[0], 24, 11);
        let s1 = MinHashSignature::from_set(&sets[1], 24, 11);
        assert_eq!(col.matches(0, 1), s0.matches(&s1));
    }

    #[test]
    fn row_matching_paths_agree_with_pairwise() {
        // k sweeps the 16-slot AVX tail boundary (and k < 16 entirely).
        for k in [1usize, 7, 15, 16, 17, 24, 31, 32, 40] {
            let sets: Vec<Vec<u32>> = (0..12)
                .map(|s| (0..s * 13).map(|i| (i * 7 + s) as u32).collect())
                .collect();
            let col = MinHashCollection::build(sets.len(), k, 11, |i| &sets[i][..]);
            for i in 0..sets.len() {
                let row = col.signature(i);
                for j in 0..sets.len() - 1 {
                    assert_eq!(col.matches_with_row(row, j), col.matches(i, j), "k={k}");
                    let (m0, m1) = col.matches_with_row_x2(row, j, j + 1);
                    assert_eq!(m0, col.matches(i, j), "k={k} i={i} j={j}");
                    assert_eq!(m1, col.matches(i, j + 1), "k={k} i={i} j={j}");
                }
            }
        }
    }

    #[test]
    fn incremental_insert_matches_rebuild() {
        // Signatures after streaming a suffix must be bit-identical to a
        // from-scratch build over the extended sets, including empty
        // prefixes (EMPTY-slot handling) and the k unroll tails.
        for k in [1usize, 7, 16, 24] {
            let full: Vec<Vec<u32>> = (0..8)
                .map(|s| (0..30 + s * 13).map(|i| (i * 11 + s) as u32).collect())
                .collect();
            let want = MinHashCollection::build(full.len(), k, 19, |i| &full[i][..]);
            let mut got =
                MinHashCollection::build(full.len(), k, 19, |i| &full[i][..full[i].len() / 4]);
            for (i, set) in full.iter().enumerate() {
                got.insert_batch(i, &set[set.len() / 4..]);
                assert_eq!(got.signature(i), want.signature(i), "k={k} set {i}");
            }
        }
        // Single-element path agrees too.
        let mut one = MinHashCollection::build(1, 8, 3, |_| &[][..]);
        for x in [42u32, 7, 99] {
            one.insert(0, x);
        }
        let rebuilt = MinHashCollection::build(1, 8, 3, |_| &[42u32, 7, 99][..]);
        assert_eq!(one.signature(0), rebuilt.signature(0));
    }

    #[test]
    fn parallel_build_deterministic() {
        let sets: Vec<Vec<u32>> = (0..200)
            .map(|s| (0..60).map(|i| (i * 13 + s) as u32).collect())
            .collect();
        let a =
            pg_parallel::with_threads(1, || MinHashCollection::build(200, 16, 3, |i| &sets[i][..]));
        let b =
            pg_parallel::with_threads(8, || MinHashCollection::build(200, 16, 3, |i| &sets[i][..]));
        assert_eq!(a.sigs, b.sigs);
    }

    #[test]
    fn memory_accounting() {
        let sets = [vec![1u32]];
        let col = MinHashCollection::build(1, 8, 1, |i| &sets[i][..]);
        assert_eq!(col.memory_bytes(), 32);
    }
}
