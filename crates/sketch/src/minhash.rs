//! MinHash, k-hash variant (§II-D, §IV-C of the paper).
//!
//! A signature keeps, for each of `k` independent hash functions, the
//! element of the set with the smallest hash under that function. The
//! number of positions where two signatures agree is `|M_X ∩ M_Y|` in the
//! paper's notation and follows `Binomial(k, J(X,Y))`, which makes
//! `Ĵ = matches/k` unbiased and the Eq. (5) intersection estimator an MLE
//! (Table II).
//!
//! A collection may be **stratified** ([`MinHashStrata`]): each set's
//! signature width `k` is chosen per stratum, signatures stored back to
//! back with per-set offsets. Cross-stratum pairs compare their first
//! `min(k)` slots — exact, because [`HashFamily`] seeds are drawn
//! sequentially from one stream, so families of different sizes share
//! their function prefix and the first `min(k)` slots of both signatures
//! are precisely the signatures both sets would have at the narrower
//! width. Uniform collections keep the flat fast path unchanged.

use crate::cowvec::cow_clear;
use crate::estimators;
use pg_hash::HashFamily;
use pg_parallel::parallel_for;
use std::borrow::Cow;

/// Sentinel signature entry for "set was empty under this function".
const EMPTY: u32 = u32::MAX;

/// A k-hash MinHash signature of one set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MinHashSignature {
    mins: Vec<u32>,
}

impl MinHashSignature {
    /// Builds the signature of `items` under `k` functions seeded from
    /// `seed`. Two signatures are only comparable when built with the same
    /// `k` and `seed`.
    pub fn from_set(items: &[u32], k: usize, seed: u64) -> Self {
        let family = HashFamily::new(k, seed);
        let mut mins = vec![EMPTY; k];
        let mut best = vec![u32::MAX; k];
        let mut hashes = vec![0u32; k];
        for &x in items {
            // All k hashes of x in one batched call (key mixing hoisted).
            family.hashes_into(x as u64, &mut hashes);
            for i in 0..k {
                let h = hashes[i];
                // Tie-break on the element ID so construction order never
                // matters (determinism under parallel construction).
                if h < best[i] || (h == best[i] && x < mins[i]) {
                    best[i] = h;
                    mins[i] = x;
                }
            }
        }
        MinHashSignature { mins }
    }

    /// Number of hash functions `k`.
    #[inline]
    pub fn k(&self) -> usize {
        self.mins.len()
    }

    /// The per-function minima (sentinel `u32::MAX` for an empty set).
    #[inline]
    pub fn mins(&self) -> &[u32] {
        &self.mins
    }

    /// `|M_X ∩ M_Y|`: positions where the minima agree.
    pub fn matches(&self, other: &MinHashSignature) -> usize {
        assert_eq!(self.k(), other.k(), "signatures differ in k");
        self.mins
            .iter()
            .zip(&other.mins)
            .filter(|(a, b)| a == b && **a != EMPTY)
            .count()
    }

    /// `Ĵ_kH = |M_X ∩ M_Y| / k`.
    pub fn estimate_jaccard(&self, other: &MinHashSignature) -> f64 {
        estimators::mh_jaccard(self.matches(other), self.k())
    }

    /// `|X∩Y|̂_kH` (Eq. 5); needs the exact set sizes.
    pub fn estimate_intersection(&self, other: &MinHashSignature, nx: usize, ny: usize) -> f64 {
        estimators::jaccard_to_intersection(self.estimate_jaccard(other), nx, ny)
    }
}

/// All k-hash signatures of a ProbGraph representation, flat in one array
/// (`n_sets × k` entries of 4 bytes — Table I: `W·k` bits per set).
///
/// The signature array is copy-on-write over `'a` (see
/// [`crate::BloomCollectionIn`]): borrowed collections serve a validated
/// snapshot buffer in place; the owned alias [`MinHashCollection`] is the
/// ordinary built/streamed form.
#[derive(Clone, Debug)]
pub struct MinHashCollectionIn<'a> {
    sigs: Cow<'a, [u32]>,
    k: usize,
    /// The k seeded hash functions — kept after construction so streamed
    /// elements can be absorbed in place (per-slot min updates).
    family: HashFamily,
    /// `Some` when the collection is stratified: per-set widths/offsets
    /// live here and `k`/`family` hold the **widest** stratum's width
    /// (every narrower family is its prefix).
    strata: Option<MinHashStrata<'a>>,
}

/// The owned (`'static`) form of [`MinHashCollectionIn`].
pub type MinHashCollection = MinHashCollectionIn<'static>;

/// Per-set geometry of a stratified MinHash collection: stratum
/// assignment, per-stratum signature widths, and the resulting slot
/// offsets.
#[derive(Clone, Debug)]
pub struct MinHashStrata<'a> {
    assign: Cow<'a, [u8]>,
    ks: Vec<u32>,
    offsets: Vec<u64>,
    /// Per-stratum hash families (prefixes of one another by seed-stream
    /// construction) — kept so per-set inserts hash with exactly the
    /// width the set was built at.
    families: Vec<HashFamily>,
}

impl<'a> MinHashStrata<'a> {
    fn new(assign: Cow<'a, [u8]>, ks: Vec<u32>, seed: u64) -> Self {
        assert!(!ks.is_empty(), "need at least one stratum");
        assert!(ks.iter().all(|&k| k > 0), "MinHash needs k ≥ 1");
        let mut offsets = Vec::with_capacity(assign.len() + 1);
        let mut off = 0u64;
        offsets.push(0);
        for &a in assign.iter() {
            off += ks[a as usize] as u64;
            offsets.push(off);
        }
        let families = ks
            .iter()
            .map(|&k| HashFamily::new(k as usize, seed))
            .collect();
        MinHashStrata {
            assign,
            ks,
            offsets,
            families,
        }
    }

    /// Per-set stratum indices.
    #[inline]
    pub fn assign(&self) -> &[u8] {
        &self.assign
    }

    /// Per-stratum signature widths.
    #[inline]
    pub fn stratum_ks(&self) -> &[u32] {
        &self.ks
    }

    fn into_owned(self) -> MinHashStrata<'static> {
        MinHashStrata {
            assign: Cow::Owned(self.assign.into_owned()),
            ks: self.ks,
            offsets: self.offsets,
            families: self.families,
        }
    }
}

impl<'a> MinHashCollectionIn<'a> {
    /// Builds signatures for `n_sets` sets in parallel; `set(i)` returns the
    /// i-th input set.
    pub fn build<'s, F>(n_sets: usize, k: usize, seed: u64, set: F) -> Self
    where
        F: Fn(usize) -> &'s [u32] + Sync,
    {
        assert!(k > 0, "MinHash needs k ≥ 1");
        let family = HashFamily::new(k, seed);
        let mut sigs = vec![EMPTY; n_sets * k];
        {
            struct SendPtr(*mut u32);
            unsafe impl Send for SendPtr {}
            unsafe impl Sync for SendPtr {}
            let base = SendPtr(sigs.as_mut_ptr());
            let base = &base;
            let family = &family;
            parallel_for(n_sets, |s| {
                // SAFETY: window [s*k, (s+1)*k) is exclusive to set s.
                let window = unsafe { std::slice::from_raw_parts_mut(base.0.add(s * k), k) };
                let mut best = vec![u32::MAX; k];
                let mut hashes = vec![0u32; k];
                for &x in set(s) {
                    family.hashes_into(x as u64, &mut hashes);
                    for i in 0..k {
                        let h = hashes[i];
                        if h < best[i] || (h == best[i] && x < window[i]) {
                            best[i] = h;
                            window[i] = x;
                        }
                    }
                }
            });
        }
        MinHashCollectionIn {
            sigs: Cow::Owned(sigs),
            k,
            family,
            strata: None,
        }
    }

    /// Builds a **stratified** collection: set `i`'s signature has
    /// `stratum_ks[assign[i]]` slots, stored back to back in set order.
    /// With a single stratum this lowers onto
    /// [`MinHashCollectionIn::build`] and is bit-identical to it.
    pub fn build_stratified<'s, F>(stratum_ks: Vec<u32>, assign: Vec<u8>, seed: u64, set: F) -> Self
    where
        F: Fn(usize) -> &'s [u32] + Sync,
    {
        if stratum_ks.len() == 1 {
            return Self::build(assign.len(), stratum_ks[0] as usize, seed, set);
        }
        let n_sets = assign.len();
        let strata = MinHashStrata::new(Cow::Owned(assign), stratum_ks, seed);
        let total = strata.offsets[n_sets] as usize;
        let mut sigs = vec![EMPTY; total];
        {
            struct SendPtr(*mut u32);
            unsafe impl Send for SendPtr {}
            unsafe impl Sync for SendPtr {}
            let base = SendPtr(sigs.as_mut_ptr());
            let base = &base;
            let strata_ref = &strata;
            parallel_for(n_sets, |s| {
                let start = strata_ref.offsets[s] as usize;
                let k = (strata_ref.offsets[s + 1] - strata_ref.offsets[s]) as usize;
                let family = &strata_ref.families[strata_ref.assign[s] as usize];
                // SAFETY: offsets are strictly increasing, so each set's
                // window is exclusive to it.
                let window = unsafe { std::slice::from_raw_parts_mut(base.0.add(start), k) };
                let mut best = vec![u32::MAX; k];
                let mut hashes = vec![0u32; k];
                for &x in set(s) {
                    family.hashes_into(x as u64, &mut hashes);
                    for i in 0..k {
                        let h = hashes[i];
                        if h < best[i] || (h == best[i] && x < window[i]) {
                            best[i] = h;
                            window[i] = x;
                        }
                    }
                }
            });
        }
        let kmax = *strata.ks.iter().max().unwrap() as usize;
        MinHashCollectionIn {
            sigs: Cow::Owned(sigs),
            k: kmax,
            family: HashFamily::new(kmax, seed),
            strata: Some(strata),
        }
    }

    /// Reconstructs a collection from an already-materialized flat
    /// signature array (the snapshot load path; owned `Vec<u32>` or
    /// borrowed `&'a [u32]`). `sigs` must hold a whole number of `k`-slot
    /// signatures produced under the same `(k, seed)` family; slots may
    /// carry the `u32::MAX` empty sentinel.
    pub fn from_raw_sigs(sigs: impl Into<Cow<'a, [u32]>>, k: usize, seed: u64) -> Self {
        let sigs = sigs.into();
        assert!(k > 0, "MinHash needs k ≥ 1");
        assert_eq!(sigs.len() % k, 0, "signature array must hold whole sets");
        MinHashCollectionIn {
            sigs,
            k,
            family: HashFamily::new(k, seed),
            strata: None,
        }
    }

    /// Stratified sibling of [`MinHashCollectionIn::from_raw_sigs`]: the
    /// snapshot loader reassembles a stratified collection from a
    /// validated signature array plus the per-stratum width table and
    /// per-set assignment.
    pub fn from_raw_sigs_stratified(
        sigs: impl Into<Cow<'a, [u32]>>,
        stratum_ks: Vec<u32>,
        assign: impl Into<Cow<'a, [u8]>>,
        seed: u64,
    ) -> Self {
        let assign = assign.into();
        if stratum_ks.len() == 1 {
            return Self::from_raw_sigs(sigs, stratum_ks[0] as usize, seed);
        }
        let sigs = sigs.into();
        let n_sets = assign.len();
        let strata = MinHashStrata::new(assign, stratum_ks, seed);
        assert_eq!(
            strata.offsets[n_sets] as usize,
            sigs.len(),
            "signature array does not match the stratified geometry"
        );
        let kmax = *strata.ks.iter().max().unwrap() as usize;
        MinHashCollectionIn {
            sigs,
            k: kmax,
            family: HashFamily::new(kmax, seed),
            strata: Some(strata),
        }
    }

    /// The whole flat signature array (`n_sets × k`) — the byte-stable
    /// payload snapshots persist.
    #[inline]
    pub fn raw_sigs(&self) -> &[u32] {
        &self.sigs
    }

    /// Assembles one collection holding the concatenation of `parts`'
    /// signatures, in order — the serving layer's copy-on-publish path.
    /// All parts must share `k` and a common seed.
    pub fn gather(parts: &[&MinHashCollectionIn<'_>]) -> MinHashCollection {
        let first = parts.first().expect("gather needs at least one part");
        let mut out = MinHashCollectionIn {
            sigs: Cow::Owned(Vec::new()),
            k: first.k,
            family: first.family.clone(),
            strata: None,
        };
        out.gather_into(parts);
        out
    }

    /// In-place form of [`MinHashCollection::gather`], reusing `self`'s
    /// signature allocation (the double-buffer path).
    pub fn gather_into(&mut self, parts: &[&MinHashCollectionIn<'_>]) {
        let first = parts.first().expect("gather needs at least one part");
        if let Some(fs) = &first.strata {
            let seed_families = fs.families.clone();
            let ks = fs.ks.clone();
            let mut assign = Vec::new();
            let sigs = cow_clear(&mut self.sigs);
            for p in parts {
                let ps = p
                    .strata
                    .as_ref()
                    .expect("gather: mixed uniform/stratified parts");
                assert_eq!(ps.ks, ks, "gather: mismatched stratum widths");
                sigs.extend_from_slice(&p.sigs);
                assign.extend_from_slice(&ps.assign);
            }
            self.k = first.k;
            self.family = first.family.clone();
            let mut strata = MinHashStrata::new(Cow::Owned(assign), ks, 0);
            strata.families = seed_families;
            self.strata = Some(strata);
            return;
        }
        self.strata = None;
        let sigs = cow_clear(&mut self.sigs);
        for p in parts {
            assert!(p.strata.is_none(), "gather: mixed uniform/stratified parts");
            assert_eq!(p.k, self.k, "gather: mismatched signature widths");
            sigs.extend_from_slice(&p.sigs);
        }
    }

    /// Detaches the collection from any borrowed snapshot buffer, cloning
    /// the signatures if they were served in place. No-op for owned data.
    pub fn into_owned(self) -> MinHashCollection {
        MinHashCollectionIn {
            sigs: Cow::Owned(self.sigs.into_owned()),
            k: self.k,
            family: self.family,
            strata: self.strata.map(MinHashStrata::into_owned),
        }
    }

    /// Inserts one item into signature `i` in place (per-slot min with the
    /// same `(hash, element)` tie-break as construction, so the result is
    /// bit-identical to rebuilding the signature from the extended set).
    /// Allocation-free: per slot, one scalar hash of `x` and — only when
    /// needed for the comparison — one recomputed hash of the stored min.
    pub fn insert(&mut self, i: usize, x: u32) {
        // `self.family` is the widest stratum's family; by the seed-stream
        // prefix property its first `k_of(i)` functions are exactly set
        // `i`'s family, so one family serves every width here.
        let r = self.sig_range(i);
        let window = &mut self.sigs.to_mut()[r];
        for (t, slot) in window.iter_mut().enumerate() {
            let h = self.family.hash32(t, x as u64);
            let e = *slot;
            let best = if e == EMPTY {
                u32::MAX
            } else {
                self.family.hash32(t, e as u64)
            };
            if h < best || (h == best && x < e) {
                *slot = x;
            }
        }
    }

    /// Batched per-set insert: absorbs all of `xs` into signature `i`.
    ///
    /// The collection stores only the minimizing *elements* (Table I
    /// memory), not their hashes, so the per-slot best hashes are
    /// recovered once per batch — `k` scalar hashes — and then maintained
    /// across the whole run of `xs`; each element costs one batched
    /// `hashes_into` plus `k` compares, exactly the construction loop.
    pub fn insert_batch(&mut self, i: usize, xs: &[u32]) {
        if let [x] = xs {
            // One element: the allocation-free scalar path (hash32 is
            // bit-identical to the batched hashes_into).
            self.insert(i, *x);
            return;
        }
        if xs.is_empty() {
            return;
        }
        let r = self.sig_range(i);
        let k = r.len();
        let window = &mut self.sigs.to_mut()[r];
        // `hashes_into` wants a buffer of exactly the family's width, so a
        // stratified set hashes through its own stratum's family (a prefix
        // of `self.family` — bit-identical functions, right length).
        let family = match &self.strata {
            Some(st) => &st.families[st.assign[i] as usize],
            None => &self.family,
        };
        let mut best: Vec<u32> = window
            .iter()
            .enumerate()
            .map(|(t, &e)| {
                if e == EMPTY {
                    // Empty slot: construction's initial `best` sentinel.
                    u32::MAX
                } else {
                    family.hash32(t, e as u64)
                }
            })
            .collect();
        let mut hashes = vec![0u32; k];
        for &x in xs {
            family.hashes_into(x as u64, &mut hashes);
            for t in 0..k {
                let h = hashes[t];
                if h < best[t] || (h == best[t] && x < window[t]) {
                    best[t] = h;
                    window[t] = x;
                }
            }
        }
    }

    /// Number of signatures.
    #[inline]
    pub fn len(&self) -> usize {
        match &self.strata {
            Some(st) => st.assign.len(),
            None => self.sigs.len().checked_div(self.k).unwrap_or(0),
        }
    }

    /// True when the collection holds no signatures.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The number of hash functions `k` — the **widest** stratum's width
    /// when stratified (per-set widths come from
    /// [`MinHashCollectionIn::k_of`]).
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Slot range of set `i` in the flat signature array.
    #[inline]
    fn sig_range(&self, i: usize) -> std::ops::Range<usize> {
        match &self.strata {
            Some(st) => st.offsets[i] as usize..st.offsets[i + 1] as usize,
            None => i * self.k..(i + 1) * self.k,
        }
    }

    /// Signature width of set `i`.
    #[inline]
    pub fn k_of(&self, i: usize) -> usize {
        match &self.strata {
            Some(st) => st.ks[st.assign[i] as usize] as usize,
            None => self.k,
        }
    }

    /// Stratum index of set `i` (0 for uniform collections).
    #[inline]
    pub fn stratum_of(&self, i: usize) -> usize {
        self.strata.as_ref().map_or(0, |st| st.assign[i] as usize)
    }

    /// The stratified geometry, when present.
    #[inline]
    pub fn strata(&self) -> Option<&MinHashStrata<'a>> {
        self.strata.as_ref()
    }

    /// Signature window of set `i`.
    #[inline]
    pub fn signature(&self, i: usize) -> &[u32] {
        &self.sigs[self.sig_range(i)]
    }

    /// `|M_X ∩ M_Y|` between sets `i` and `j` — the `O(k)` kernel of
    /// Table IV.
    #[inline]
    pub fn matches(&self, i: usize, j: usize) -> usize {
        self.matches_with_row(self.signature(i), j)
    }

    /// `|M_X ∩ M_Y|` of a pinned signature `row` (usually
    /// [`MinHashCollection::signature`] of a source vertex, hoisted once
    /// per row sweep) against set `j` — identical to
    /// [`MinHashCollection::matches`] when `row` is signature `i`.
    #[inline]
    pub fn matches_with_row(&self, row: &[u32], j: usize) -> usize {
        // Cross-width pairs compare their shared slot prefix: by the hash
        // family's prefix property the first `min(k)` slots of each
        // signature are the signature the set would have at the narrower
        // width, so the truncated compare is the narrow-width estimate
        // exactly. Equal-length reslices keep the loop bounds-check-free
        // and auto-vectorizing (`vpcmpeqd` over full vector width).
        let b = self.signature(j);
        let m = row.len().min(b.len());
        let a = &row[..m];
        let b = &b[..m];
        let mut c = 0usize;
        for t in 0..m {
            c += usize::from(a[t] == b[t] && a[t] != EMPTY);
        }
        c
    }

    /// Multi-lane `|M_X ∩ M_Y|`: the pinned signature `row` against `L`
    /// destination signatures — `out[l] == matches_with_row(row, js[l])`
    /// exactly. Each lane is its own contiguous compare/count pass (the
    /// `u32` equality loop auto-vectorizes to full-width `vpcmpeqd` per
    /// destination; element-interleaving the lanes would defeat exactly
    /// that), so the batching win is the source signature staying pinned
    /// in L1 across the `L` vectorized passes.
    #[inline]
    pub fn matches_multi<const L: usize>(&self, row: &[u32], js: [usize; L]) -> [usize; L] {
        let mut c = [0usize; L];
        for l in 0..L {
            c[l] = self.matches_with_row(row, js[l]);
        }
        c
    }

    /// Two-lane `|M_X ∩ M_Y|`: the pinned signature `row` against two
    /// destination signatures in one sweep. On AVX-512 targets both
    /// destinations are compared against each 16-slot source vector load
    /// (`vpcmpeqd` → mask popcount), amortizing the source stream over
    /// two lanes; elsewhere it is two vectorized scalar passes. Either
    /// way each lane equals [`MinHashCollection::matches_with_row`].
    #[inline]
    pub fn matches_with_row_x2(&self, row: &[u32], j0: usize, j1: usize) -> (usize, usize) {
        #[cfg(all(target_arch = "x86_64", target_feature = "avx512f"))]
        {
            let b0 = self.signature(j0);
            let b1 = self.signature(j1);
            if b0.len() != b1.len() {
                // Lanes from different strata: no shared vector shape —
                // two scalar prefix compares instead.
                return (
                    self.matches_with_row(row, j0),
                    self.matches_with_row(row, j1),
                );
            }
            let m = row.len().min(b0.len());
            let a = &row[..m];
            let b0 = &b0[..m];
            let b1 = &b1[..m];
            // SAFETY: avx512f is a compile-time target feature here; all
            // loads are explicit-unaligned or masked, and offsets stay
            // inside the three equal-length slices above.
            unsafe {
                use std::arch::x86_64::*;
                let empty = _mm512_set1_epi32(EMPTY as i32);
                let (mut c0, mut c1) = (0usize, 0usize);
                let mut t = 0;
                while t + 16 <= m {
                    let x = _mm512_loadu_si512(a.as_ptr().add(t) as *const _);
                    let ne = _mm512_cmpneq_epi32_mask(x, empty);
                    let y0 = _mm512_loadu_si512(b0.as_ptr().add(t) as *const _);
                    let y1 = _mm512_loadu_si512(b1.as_ptr().add(t) as *const _);
                    c0 += ((_mm512_cmpeq_epi32_mask(x, y0) & ne) as u32).count_ones() as usize;
                    c1 += ((_mm512_cmpeq_epi32_mask(x, y1) & ne) as u32).count_ones() as usize;
                    t += 16;
                }
                if t < m {
                    // Masked tail: zeroed slots compare equal (0 == 0), so
                    // the not-EMPTY mask is ANDed with the load mask to
                    // discard them.
                    let mask: __mmask16 = (1u16 << (m - t)) - 1;
                    let x = _mm512_maskz_loadu_epi32(mask, a.as_ptr().add(t) as *const _);
                    let ne = _mm512_cmpneq_epi32_mask(x, empty) & mask;
                    let y0 = _mm512_maskz_loadu_epi32(mask, b0.as_ptr().add(t) as *const _);
                    let y1 = _mm512_maskz_loadu_epi32(mask, b1.as_ptr().add(t) as *const _);
                    c0 += ((_mm512_cmpeq_epi32_mask(x, y0) & ne) as u32).count_ones() as usize;
                    c1 += ((_mm512_cmpeq_epi32_mask(x, y1) & ne) as u32).count_ones() as usize;
                }
                (c0, c1)
            }
        }
        #[cfg(not(all(target_arch = "x86_64", target_feature = "avx512f")))]
        {
            (
                self.matches_with_row(row, j0),
                self.matches_with_row(row, j1),
            )
        }
    }

    /// `Ĵ_kH` between sets `i` and `j`. Cross-stratum pairs are compared
    /// at the narrower width, so the divisor is `min(k_i, k_j)`.
    #[inline]
    pub fn estimate_jaccard(&self, i: usize, j: usize) -> f64 {
        estimators::mh_jaccard(self.matches(i, j), self.k_of(i).min(self.k_of(j)))
    }

    /// `|X∩Y|̂_kH` (Eq. 5) between sets `i` and `j` with exact sizes.
    #[inline]
    pub fn estimate_intersection(&self, i: usize, j: usize, nx: usize, ny: usize) -> f64 {
        estimators::jaccard_to_intersection(self.estimate_jaccard(i, j), nx, ny)
    }

    /// Bytes of sketch storage.
    pub fn memory_bytes(&self) -> usize {
        self.sigs.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_sets_match_everywhere() {
        let x: Vec<u32> = (0..100).collect();
        let a = MinHashSignature::from_set(&x, 64, 3);
        let b = MinHashSignature::from_set(&x, 64, 3);
        assert_eq!(a.matches(&b), 64);
        assert_eq!(a.estimate_jaccard(&b), 1.0);
    }

    #[test]
    fn disjoint_sets_rarely_match() {
        let x: Vec<u32> = (0..100).collect();
        let y: Vec<u32> = (1000..1100).collect();
        let a = MinHashSignature::from_set(&x, 128, 3);
        let b = MinHashSignature::from_set(&y, 128, 3);
        assert_eq!(a.matches(&b), 0);
    }

    #[test]
    fn jaccard_estimate_is_close_for_large_k() {
        // |X∩Y| = 50, |X∪Y| = 150 -> J = 1/3.
        let x: Vec<u32> = (0..100).collect();
        let y: Vec<u32> = (50..150).collect();
        let a = MinHashSignature::from_set(&x, 512, 7);
        let b = MinHashSignature::from_set(&y, 512, 7);
        let j = a.estimate_jaccard(&b);
        assert!((j - 1.0 / 3.0).abs() < 0.08, "J={j}");
        let inter = a.estimate_intersection(&b, 100, 100);
        assert!((inter - 50.0).abs() < 15.0, "inter={inter}");
    }

    #[test]
    fn empty_sets_give_zero() {
        let e = MinHashSignature::from_set(&[], 16, 1);
        let x = MinHashSignature::from_set(&[1, 2, 3], 16, 1);
        assert_eq!(e.matches(&x), 0);
        assert_eq!(e.matches(&e), 0, "two empties must not fake J=1");
        assert_eq!(e.estimate_intersection(&x, 0, 3), 0.0);
    }

    #[test]
    fn signature_independent_of_input_order() {
        let fwd: Vec<u32> = (0..200).collect();
        let rev: Vec<u32> = (0..200).rev().collect();
        assert_eq!(
            MinHashSignature::from_set(&fwd, 32, 5),
            MinHashSignature::from_set(&rev, 32, 5)
        );
    }

    #[test]
    fn collection_matches_standalone() {
        let sets: Vec<Vec<u32>> = (0..30)
            .map(|s| (0..40 + s).map(|i| (i * 7 + s) as u32).collect())
            .collect();
        let col = MinHashCollection::build(sets.len(), 24, 11, |i| &sets[i][..]);
        for (i, set) in sets.iter().enumerate() {
            let sig = MinHashSignature::from_set(set, 24, 11);
            assert_eq!(col.signature(i), sig.mins(), "set {i}");
        }
        let s0 = MinHashSignature::from_set(&sets[0], 24, 11);
        let s1 = MinHashSignature::from_set(&sets[1], 24, 11);
        assert_eq!(col.matches(0, 1), s0.matches(&s1));
    }

    #[test]
    fn row_matching_paths_agree_with_pairwise() {
        // k sweeps the 16-slot AVX tail boundary (and k < 16 entirely).
        for k in [1usize, 7, 15, 16, 17, 24, 31, 32, 40] {
            let sets: Vec<Vec<u32>> = (0..12)
                .map(|s| (0..s * 13).map(|i| (i * 7 + s) as u32).collect())
                .collect();
            let col = MinHashCollection::build(sets.len(), k, 11, |i| &sets[i][..]);
            for i in 0..sets.len() {
                let row = col.signature(i);
                for j in 0..sets.len() - 1 {
                    assert_eq!(col.matches_with_row(row, j), col.matches(i, j), "k={k}");
                    let (m0, m1) = col.matches_with_row_x2(row, j, j + 1);
                    assert_eq!(m0, col.matches(i, j), "k={k} i={i} j={j}");
                    assert_eq!(m1, col.matches(i, j + 1), "k={k} i={i} j={j}");
                }
            }
        }
    }

    #[test]
    fn incremental_insert_matches_rebuild() {
        // Signatures after streaming a suffix must be bit-identical to a
        // from-scratch build over the extended sets, including empty
        // prefixes (EMPTY-slot handling) and the k unroll tails.
        for k in [1usize, 7, 16, 24] {
            let full: Vec<Vec<u32>> = (0..8)
                .map(|s| (0..30 + s * 13).map(|i| (i * 11 + s) as u32).collect())
                .collect();
            let want = MinHashCollection::build(full.len(), k, 19, |i| &full[i][..]);
            let mut got =
                MinHashCollection::build(full.len(), k, 19, |i| &full[i][..full[i].len() / 4]);
            for (i, set) in full.iter().enumerate() {
                got.insert_batch(i, &set[set.len() / 4..]);
                assert_eq!(got.signature(i), want.signature(i), "k={k} set {i}");
            }
        }
        // Single-element path agrees too.
        let mut one = MinHashCollection::build(1, 8, 3, |_| &[][..]);
        for x in [42u32, 7, 99] {
            one.insert(0, x);
        }
        let rebuilt = MinHashCollection::build(1, 8, 3, |_| &[42u32, 7, 99][..]);
        assert_eq!(one.signature(0), rebuilt.signature(0));
    }

    #[test]
    fn one_stratum_build_is_bit_identical_to_uniform() {
        let sets: Vec<Vec<u32>> = (0..10)
            .map(|s| (0..20 + s * 9).map(|i| (i * 7 + s) as u32).collect())
            .collect();
        let uniform = MinHashCollection::build(sets.len(), 24, 11, |i| &sets[i][..]);
        let strat = MinHashCollection::build_stratified(vec![24], vec![0u8; sets.len()], 11, |i| {
            &sets[i][..]
        });
        assert!(
            strat.strata().is_none(),
            "one stratum must lower to uniform"
        );
        assert_eq!(strat.raw_sigs(), uniform.raw_sigs());
        assert_eq!(strat.k(), uniform.k());
    }

    #[test]
    fn cross_stratum_pairs_match_both_built_at_the_narrow_width() {
        // Prefix property in action: a (k=32, k=8) pair must give exactly
        // the matches/Jaccard of both sets sketched at k=8.
        let sets: Vec<Vec<u32>> = (0..9)
            .map(|s| (0..50 + s * 17).map(|i| (i * 5 + s) as u32).collect())
            .collect();
        let ks = vec![32u32, 16, 8];
        let assign: Vec<u8> = (0..sets.len()).map(|i| (i % 3) as u8).collect();
        let strat =
            MinHashCollection::build_stratified(ks.clone(), assign.clone(), 7, |i| &sets[i][..]);
        assert_eq!(strat.len(), sets.len());
        for i in 0..sets.len() {
            assert_eq!(strat.k_of(i), ks[assign[i] as usize] as usize);
            assert_eq!(strat.signature(i).len(), strat.k_of(i));
        }
        for i in 0..sets.len() {
            for j in 0..sets.len() {
                let kmin = strat.k_of(i).min(strat.k_of(j));
                let narrow = MinHashCollection::build(sets.len(), kmin, 7, |s| &sets[s][..]);
                assert_eq!(strat.matches(i, j), narrow.matches(i, j), "i={i} j={j}");
                assert_eq!(
                    strat.estimate_jaccard(i, j),
                    narrow.estimate_jaccard(i, j),
                    "i={i} j={j}"
                );
                let row = strat.signature(i);
                let (m0, m1) = strat.matches_with_row_x2(row, j, (j + 1) % sets.len());
                assert_eq!(m0, strat.matches(i, j), "x2 lane 0 i={i} j={j}");
                assert_eq!(m1, strat.matches(i, (j + 1) % sets.len()), "x2 lane 1");
            }
        }
    }

    #[test]
    fn stratified_insert_matches_stratified_rebuild() {
        let full: Vec<Vec<u32>> = (0..9)
            .map(|s| (0..40 + s * 13).map(|i| (i * 11 + s) as u32).collect())
            .collect();
        let ks = vec![32u32, 8];
        let assign: Vec<u8> = (0..full.len()).map(|i| (i % 2) as u8).collect();
        let want =
            MinHashCollection::build_stratified(ks.clone(), assign.clone(), 19, |i| &full[i][..]);
        let mut got =
            MinHashCollection::build_stratified(ks, assign, 19, |i| &full[i][..full[i].len() / 4]);
        for (i, set) in full.iter().enumerate() {
            if i % 2 == 0 {
                got.insert_batch(i, &set[set.len() / 4..]);
            } else {
                for &x in &set[set.len() / 4..] {
                    got.insert(i, x);
                }
            }
            assert_eq!(got.signature(i), want.signature(i), "set {i}");
        }
        assert_eq!(got.raw_sigs(), want.raw_sigs());
    }

    #[test]
    fn stratified_gather_concatenates_parts() {
        let sets: Vec<Vec<u32>> = (0..8)
            .map(|s| (0..30 + s * 7).map(|i| (i * 3 + s) as u32).collect())
            .collect();
        let ks = vec![16u32, 4];
        let assign: Vec<u8> = (0..8).map(|i| (i % 2) as u8).collect();
        let whole =
            MinHashCollection::build_stratified(ks.clone(), assign.clone(), 5, |i| &sets[i][..]);
        let left = MinHashCollection::build_stratified(ks.clone(), assign[..4].to_vec(), 5, |i| {
            &sets[i][..]
        });
        let right =
            MinHashCollection::build_stratified(ks, assign[4..].to_vec(), 5, |i| &sets[i + 4][..]);
        let gathered = MinHashCollection::gather(&[&left, &right]);
        assert_eq!(gathered.raw_sigs(), whole.raw_sigs());
        assert_eq!(
            gathered.strata().unwrap().assign(),
            whole.strata().unwrap().assign()
        );
        for i in 0..8 {
            assert_eq!(gathered.signature(i), whole.signature(i));
        }
    }

    #[test]
    fn parallel_build_deterministic() {
        let sets: Vec<Vec<u32>> = (0..200)
            .map(|s| (0..60).map(|i| (i * 13 + s) as u32).collect())
            .collect();
        let a =
            pg_parallel::with_threads(1, || MinHashCollection::build(200, 16, 3, |i| &sets[i][..]));
        let b =
            pg_parallel::with_threads(8, || MinHashCollection::build(200, 16, 3, |i| &sets[i][..]));
        assert_eq!(a.sigs, b.sigs);
    }

    #[test]
    fn memory_accounting() {
        let sets = [vec![1u32]];
        let col = MinHashCollection::build(1, 8, 1, |i| &sets[i][..]);
        assert_eq!(col.memory_bytes(), 32);
    }
}
