//! The storage budget `s` (§V-A of the paper).
//!
//! `s ∈ [0, 1]` specifies how much memory *on top of* the CSR graph may be
//! spent on ProbGraph structures (the evaluation never exceeds 33 %). This
//! module turns a budget into concrete per-set sketch parameters: Bloom
//! filter bits `B`, MinHash `k`, KMV `k`.
//!
//! Two planners share the same never-exceeds-budget integer arithmetic:
//!
//! * [`BudgetPlan`] — the paper's resolution: identical parameters for
//!   every set, which is what gives ProbGraph its load-balancing
//!   behaviour.
//! * [`StratifiedPlan`] — degree-stratified resolution: sets are split
//!   into degree-quantile strata (e.g. top-1% / next-9% / rest) and each
//!   stratum gets its own [`SketchParams`], scaled by a power-of-two
//!   byte multiplier over a common base, all at the **same total byte
//!   budget**. Hub vertices dominate both intersection error and runtime
//!   on skewed graphs, so spending the same bytes non-uniformly buys
//!   accuracy exactly where the error concentrates. A 1-stratum spec
//!   resolves bit-identically to the uniform plan.
//!
//! Multipliers are powers of two so that every wider sketch folds
//! *exactly* onto a narrower one (Bloom's Lemire-bucket group-OR fold,
//! HLL's precision downgrade, MinHash's seed-prefix property), which is
//! what keeps cross-stratum estimates identical to both sketches having
//! been built at the narrower geometry.

use std::fmt;

/// Concrete parameters for one probabilistic representation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SketchParams {
    /// Bloom filter: `bits_per_set` bits and `b` hash functions per set.
    Bloom { bits_per_set: usize, b: usize },
    /// Counting Bloom filter: `bits_per_set` buckets, each costing one
    /// derived-view bit **plus** a [`crate::counting_bloom::COUNTER_BITS`]-bit
    /// saturating counter, with `b` hash functions per set.
    CountingBloom { bits_per_set: usize, b: usize },
    /// k-hash MinHash with `k` hash functions (k 32-bit words per set).
    KHash { k: usize },
    /// 1-hash / bottom-k MinHash with sample size `k`.
    OneHash { k: usize },
    /// KMV with `k` stored 64-bit hash values.
    Kmv { k: usize },
    /// HyperLogLog with `2^precision` one-byte registers per set.
    Hll { precision: u8 },
}

/// Why a budget could not be resolved into usable sketch parameters.
///
/// Returned by the `try_*` planners instead of silently degrading the
/// sketch to a floor size the budget cannot actually pay for (the
/// infallible planners debug-assert on the same condition).
// Not `Eq`: the stratum-context variant carries its quantile bounds (f64).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum PlanError {
    /// The per-set byte budget cannot afford even the representation's
    /// minimal sketch (one slot plus its fixed bookkeeping).
    BudgetTooSmall {
        /// Which planner rejected the budget.
        representation: &'static str,
        /// Bytes per set the minimal sketch needs.
        needed_bytes: usize,
        /// Bytes per set the budget provides.
        available_bytes: usize,
    },
    /// A [`StratifiedPlan`] stratum's share of the budget cannot afford
    /// the representation's minimal sketch. Carries the stratum index and
    /// its degree-quantile bounds so the diagnostic names *which* slice of
    /// the degree distribution is underfunded, not just that one is.
    StratumBudgetTooSmall {
        /// Which planner rejected the budget.
        representation: &'static str,
        /// Index of the failing stratum (0 = highest-degree stratum).
        stratum: usize,
        /// Total strata in the spec.
        n_strata: usize,
        /// The stratum covers degree ranks in `[quantile_lo, quantile_hi)`
        /// of the degree-descending order (fractions of `n_sets`).
        quantile_lo: f64,
        /// Exclusive upper quantile bound (1.0 for the base stratum).
        quantile_hi: f64,
        /// Bytes per set the minimal sketch needs.
        needed_bytes: usize,
        /// Bytes per set this stratum's budget share provides.
        available_bytes: usize,
    },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::BudgetTooSmall {
                representation,
                needed_bytes,
                available_bytes,
            } => write!(
                f,
                "budget too small for {representation}: minimal sketch needs \
                 {needed_bytes} bytes/set, budget provides {available_bytes}"
            ),
            PlanError::StratumBudgetTooSmall {
                representation,
                stratum,
                n_strata,
                quantile_lo,
                quantile_hi,
                needed_bytes,
                available_bytes,
            } => write!(
                f,
                "budget too small for {representation} in stratum \
                 {stratum}/{n_strata} (degree quantiles \
                 [{quantile_lo:.4}, {quantile_hi:.4})): minimal sketch \
                 needs {needed_bytes} bytes/set, stratum share provides \
                 {available_bytes}"
            ),
        }
    }
}

impl std::error::Error for PlanError {}

/// A storage budget resolved against a concrete base representation.
#[derive(Clone, Copy, Debug)]
pub struct BudgetPlan {
    base_bytes: usize,
    n_sets: usize,
    s: f64,
}

impl BudgetPlan {
    /// `base_bytes` is the memory of the exact representation (CSR), and
    /// `s` the additional fraction of it the sketches may use. `n_sets`
    /// may be zero (an empty graph sketches nothing).
    pub fn new(base_bytes: usize, n_sets: usize, s: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&s),
            "storage budget s={s} outside [0,1]"
        );
        BudgetPlan {
            base_bytes,
            n_sets,
            s,
        }
    }

    /// Total sketch bytes allowed.
    ///
    /// `s` is resolved to a 32-bit fixed-point fraction once, then scaled
    /// in pure integer arithmetic with round-half-up — deterministic
    /// across platforms and FP modes, unlike the previous
    /// `(base as f64 * s) as usize`, whose truncation toward zero made
    /// the budget depend on the rounding direction of one multiply.
    /// `s ≤ 1` guarantees the result never exceeds `base_bytes`.
    #[inline]
    pub fn budget_bytes(&self) -> usize {
        let frac = (self.s * (1u64 << 32) as f64).round() as u128;
        let bytes = ((self.base_bytes as u128 * frac + (1u128 << 31)) >> 32) as usize;
        debug_assert!(bytes <= self.base_bytes, "budget exceeds the base bytes");
        bytes
    }

    /// Bytes available per set (zero sets ⇒ zero bytes; parameter
    /// resolution still floors at each representation's minimum size).
    ///
    /// The integer division strands `budget_bytes() % n_sets` bytes — up
    /// to `n_sets - 1` — which the uniform plan cannot spend: handing the
    /// remainder to *some* sets would break the identical-parameters
    /// invariant the whole uniform stack is built on. The stratified
    /// planner ([`StratifiedPlan`]) redistributes that remainder into the
    /// top stratum in whole-slot units instead of stranding it.
    #[inline]
    pub fn bytes_per_set(&self) -> usize {
        match self.n_sets {
            0 => 0,
            n => self.budget_bytes() / n,
        }
    }

    /// Bloom parameters: the largest whole-word bit count fitting the
    /// budget (at least one word — a sketch of zero bits is useless), with
    /// the caller-chosen number of hash functions `b`.
    pub fn bloom(&self, b: usize) -> SketchParams {
        assert!(b > 0);
        let bits = (self.bytes_per_set() * 8) / 64 * 64;
        SketchParams::Bloom {
            bits_per_set: bits.max(64),
            b,
        }
    }

    /// Counting Bloom parameters: each bucket costs one derived-view bit
    /// **plus** a [`crate::counting_bloom::COUNTER_BITS`]-bit saturating
    /// counter, so a byte budget buys `8·bytes / (1 + COUNTER_BITS)`
    /// buckets — the counter width is deducted up front, not borrowed
    /// (the plain-Bloom planner would hand out 5× the buckets for the
    /// same bytes; deletions are what the difference pays for). Rounded
    /// down to whole 64-bit view words (at least one), with the
    /// caller-chosen number of hash functions `b`.
    pub fn counting_bloom(&self, b: usize) -> SketchParams {
        assert!(b > 0);
        let bucket_bits = 1 + crate::counting_bloom::COUNTER_BITS;
        let bits = (self.bytes_per_set() * 8 / bucket_bits) / 64 * 64;
        SketchParams::CountingBloom {
            bits_per_set: bits.max(64),
            b,
        }
    }

    /// Shared guard for the fixed-slot planners: the per-set byte budget,
    /// provided it affords at least the minimal footprint. The vacuous
    /// zero-sets plan returns the minimum itself — nothing will be
    /// allocated, but callers still resolve usable minimal parameters —
    /// so the planners below need no `.max(1)` floors: this guard is the
    /// single source of `k ≥ 1`.
    #[inline]
    fn afford(
        &self,
        representation: &'static str,
        needed_bytes: usize,
    ) -> Result<usize, PlanError> {
        if self.n_sets == 0 {
            return Ok(needed_bytes);
        }
        let available_bytes = self.bytes_per_set();
        if available_bytes >= needed_bytes {
            Ok(available_bytes)
        } else {
            Err(PlanError::BudgetTooSmall {
                representation,
                needed_bytes,
                available_bytes,
            })
        }
    }

    /// k-hash parameters: `k` = number of 4-byte signature slots that
    /// fit, or [`PlanError::BudgetTooSmall`] when not even one does.
    pub fn try_khash(&self) -> Result<SketchParams, PlanError> {
        let bytes = self.afford("k-hash MinHash", 4)?;
        Ok(SketchParams::KHash { k: bytes / 4 })
    }

    /// k-hash parameters: `k` = number of 4-byte signature slots that fit.
    ///
    /// A budget below one slot is a planning bug: debug builds assert;
    /// release builds fall back to `k = 1` (4 bytes/set past budget) for
    /// robustness. Use [`BudgetPlan::try_khash`] to handle tiny budgets.
    pub fn khash(&self) -> SketchParams {
        self.try_khash().unwrap_or_else(|e| {
            debug_assert!(false, "{e} (use try_khash to handle tiny budgets)");
            SketchParams::KHash { k: 1 }
        })
    }

    /// 1-hash / bottom-k parameters: `k` = number of 8-byte slots (element +
    /// precomputed hash, i.e. Table I's `W·k` bits with `W = 64`), after
    /// deducting the 12 bytes/set of collection bookkeeping (offset + live
    /// length + exact size) so sparse graphs stay inside the budget too.
    ///
    /// `k` is also the **streaming heap capacity**: the mutable bottom-k
    /// layout gives every set a full capacity-`k` region (the bounded
    /// max-heap inserts grow samples toward `k`), so the budget must — and
    /// does — charge all `k · 8` bytes per set up front, whether or not a
    /// static build fills them. `onehash_streaming_capacity_fits_budget`
    /// asserts the invariant.
    pub fn onehash(&self) -> SketchParams {
        self.try_onehash().unwrap_or_else(|e| {
            debug_assert!(false, "{e} (use try_onehash to handle tiny budgets)");
            SketchParams::OneHash { k: 1 }
        })
    }

    /// Fallible form of [`BudgetPlan::onehash`]: the minimal streaming
    /// bottom-k layout is one 8-byte slot plus the 12 bytes/set of
    /// bookkeeping, and a budget below those 20 bytes is reported as
    /// [`PlanError::BudgetTooSmall`] instead of silently degrading to a
    /// `k = 1` that would overrun the per-set budget the capacity
    /// invariant promises to respect.
    pub fn try_onehash(&self) -> Result<SketchParams, PlanError> {
        let bytes = self.afford("1-hash / bottom-k MinHash", 12 + 8)?;
        Ok(SketchParams::OneHash {
            k: (bytes - 12) / 8,
        })
    }

    /// KMV parameters: `k` = number of 8-byte hash values, after deducting
    /// the ~24 bytes of per-sketch bookkeeping ([`crate::KmvSketch`] stores
    /// its length/k/size words individually rather than flat).
    ///
    /// Budgets below one slot + bookkeeping debug-assert (release builds
    /// floor at `k = 1`); use [`BudgetPlan::try_kmv`] to handle them.
    pub fn kmv(&self) -> SketchParams {
        self.try_kmv().unwrap_or_else(|e| {
            debug_assert!(false, "{e} (use try_kmv to handle tiny budgets)");
            SketchParams::Kmv { k: 1 }
        })
    }

    /// Fallible form of [`BudgetPlan::kmv`]: minimal footprint is one
    /// 8-byte slot plus 24 bytes of per-sketch bookkeeping.
    pub fn try_kmv(&self) -> Result<SketchParams, PlanError> {
        let bytes = self.afford("KMV", 24 + 8)?;
        Ok(SketchParams::Kmv {
            k: (bytes - 24) / 8,
        })
    }

    /// HyperLogLog parameters: the largest precision whose `2^p` one-byte
    /// registers fit the per-set budget, clamped to the standard `4..=16`
    /// range.
    pub fn hll(&self) -> SketchParams {
        let bytes = self.bytes_per_set().max(1);
        let precision = (usize::BITS - 1 - bytes.leading_zeros()).clamp(4, 16) as u8;
        SketchParams::Hll { precision }
    }
}

/// Upper bound on strata per plan: assignments are stored (and serialized)
/// as one byte per set, and more than a handful of strata defeats the
/// same-width lane fusion the oracle sweeps rely on.
pub const MAX_STRATA: usize = 8;

/// A degree-stratification spec: how to split the degree-descending order
/// of sets into strata, and how many budget shares each stratum's sets
/// weigh relative to the base stratum.
///
/// `fractions[j]` is the fraction of all sets (by descending degree) that
/// stratum `j` covers; the final stratum takes the remainder. Each
/// `multipliers[j]` is a **power-of-two** per-set byte weight — powers of
/// two so wider sketches fold exactly onto narrower ones for
/// cross-stratum estimates.
#[derive(Clone, Debug, PartialEq)]
pub struct StrataSpec {
    fractions: Vec<f64>,
    multipliers: Vec<usize>,
}

impl StrataSpec {
    /// `fractions.len() + 1 == multipliers.len()`; fractions must be in
    /// `(0, 1)` and sum below 1, multipliers must be powers of two.
    pub fn new(fractions: Vec<f64>, multipliers: Vec<usize>) -> Self {
        assert!(
            !multipliers.is_empty() && multipliers.len() <= MAX_STRATA,
            "need 1..={MAX_STRATA} strata, got {}",
            multipliers.len()
        );
        assert_eq!(
            multipliers.len(),
            fractions.len() + 1,
            "the base stratum takes the remaining fraction implicitly"
        );
        assert!(
            multipliers.iter().all(|&m| m >= 1 && m.is_power_of_two()),
            "multipliers must be powers of two (exact sketch folds): {multipliers:?}"
        );
        assert!(
            fractions.iter().all(|&f| f > 0.0 && f < 1.0),
            "stratum fractions must lie in (0,1): {fractions:?}"
        );
        assert!(
            fractions.iter().sum::<f64>() < 1.0,
            "stratum fractions must leave room for the base stratum"
        );
        StrataSpec {
            fractions,
            multipliers,
        }
    }

    /// The 1-stratum spec: resolves bit-identically to the uniform
    /// [`BudgetPlan`].
    pub fn uniform() -> Self {
        StrataSpec::new(vec![], vec![1])
    }

    /// The default heavy-tail spec: top 1 % of sets at 4× the base byte
    /// share, next 9 % at 2×, the remaining 90 % at 1×.
    pub fn skewed_default() -> Self {
        StrataSpec::new(vec![0.01, 0.09], vec![4, 2, 1])
    }

    /// Number of strata (≥ 1).
    #[inline]
    pub fn n_strata(&self) -> usize {
        self.multipliers.len()
    }

    /// Per-stratum power-of-two byte multipliers.
    #[inline]
    pub fn multipliers(&self) -> &[usize] {
        &self.multipliers
    }

    /// Degree-rank quantile bounds `[lo, hi)` of stratum `j` (fractions of
    /// the degree-descending order; the base stratum's `hi` is 1.0).
    pub fn quantile_bounds(&self, j: usize) -> (f64, f64) {
        let lo: f64 = self.fractions[..j.min(self.fractions.len())].iter().sum();
        let hi = if j >= self.fractions.len() {
            1.0
        } else {
            lo + self.fractions[j]
        };
        (lo, hi)
    }
}

/// Resolved stratified parameters: one [`SketchParams`] per stratum plus
/// the per-set stratum assignment. Stratum 0 is the highest-degree (and
/// widest) stratum.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StratifiedParams {
    strata: Vec<SketchParams>,
    assign: Vec<u8>,
}

impl StratifiedParams {
    /// Bundles a per-stratum parameter table with a per-set assignment.
    /// Panics if any assignment indexes past the table or the table
    /// exceeds [`MAX_STRATA`].
    pub fn new(strata: Vec<SketchParams>, assign: Vec<u8>) -> Self {
        assert!(
            !strata.is_empty() && strata.len() <= MAX_STRATA,
            "need 1..={MAX_STRATA} strata, got {}",
            strata.len()
        );
        assert!(
            assign.iter().all(|&a| (a as usize) < strata.len()),
            "assignment references a stratum past the table"
        );
        StratifiedParams { strata, assign }
    }

    /// Per-stratum parameter table (stratum 0 = widest / highest degree).
    #[inline]
    pub fn strata(&self) -> &[SketchParams] {
        &self.strata
    }

    /// Per-set stratum indices.
    #[inline]
    pub fn assign(&self) -> &[u8] {
        &self.assign
    }

    /// The resolved parameters of set `i`.
    #[inline]
    pub fn params_of(&self, i: usize) -> SketchParams {
        self.strata[self.assign[i] as usize]
    }

    #[inline]
    pub fn n_strata(&self) -> usize {
        self.strata.len()
    }

    /// True when there is only one stratum — the store layer lowers this
    /// case onto the flat uniform fast path bit-identically.
    #[inline]
    pub fn is_uniform(&self) -> bool {
        self.strata.len() == 1
    }

    /// Canonical form: when every stratum resolved to the *same* params
    /// (e.g. floors swallowed the multiplier at tiny budgets), collapse to
    /// a single stratum so downstream layers take the uniform fast path.
    pub fn collapsed(mut self) -> Self {
        if self.strata.len() > 1 && self.strata.iter().all(|p| *p == self.strata[0]) {
            self.strata.truncate(1);
            self.assign.iter_mut().for_each(|a| *a = 0);
        }
        self
    }

    /// Number of sets assigned to each stratum.
    pub fn counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.strata.len()];
        for &a in &self.assign {
            counts[a as usize] += 1;
        }
        counts
    }
}

/// A [`BudgetPlan`] resolved per degree-quantile stratum instead of
/// uniformly: the same total budget, the same integer never-exceed
/// arithmetic, but each stratum's sets get `multiplier ×` the base byte
/// share. With [`StrataSpec::uniform`] this is exactly [`BudgetPlan`].
#[derive(Clone, Debug)]
pub struct StratifiedPlan {
    plan: BudgetPlan,
    spec: StrataSpec,
}

impl StratifiedPlan {
    pub fn new(plan: BudgetPlan, spec: StrataSpec) -> Self {
        StratifiedPlan { plan, spec }
    }

    /// Assigns each set to its stratum by degree rank: sets are ordered by
    /// descending degree (ties by ascending id — deterministic), the top
    /// `ceil(fractions[0]·n)` go to stratum 0, and so on; the base stratum
    /// takes the tail. Returns the per-set assignment and per-stratum
    /// counts.
    pub fn assign(&self, degrees: &[u32]) -> (Vec<u8>, Vec<usize>) {
        assert_eq!(
            degrees.len(),
            self.plan.n_sets,
            "degrees must cover every set in the plan"
        );
        let n = degrees.len();
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_unstable_by_key(|&i| (std::cmp::Reverse(degrees[i as usize]), i));
        let k = self.spec.n_strata();
        let mut assign = vec![(k - 1) as u8; n];
        let mut counts = vec![0usize; k];
        let mut cut_prev = 0usize;
        let mut cum = 0.0f64;
        for (j, count) in counts.iter_mut().enumerate().take(k - 1) {
            cum += self.spec.fractions[j];
            let cut = ((cum * n as f64).ceil() as usize).clamp(cut_prev, n);
            for &i in &order[cut_prev..cut] {
                assign[i as usize] = j as u8;
            }
            *count = cut - cut_prev;
            cut_prev = cut;
        }
        counts[k - 1] = n - cut_prev;
        (assign, counts)
    }

    /// Base per-set byte share `x`: the budget divided by the total weight
    /// `Σ nⱼ·mⱼ`, so stratum `j` sets get `x·mⱼ` bytes and the total never
    /// exceeds the budget. Returns `(x, remainder)` where the remainder is
    /// the stranded `budget mod Σ nⱼ·mⱼ` the slot planners redistribute.
    fn base_share(&self, counts: &[usize]) -> (usize, usize) {
        let weight: usize = counts
            .iter()
            .zip(self.spec.multipliers())
            .map(|(&n, &m)| n * m)
            .sum();
        if weight == 0 {
            return (0, 0);
        }
        let budget = self.plan.budget_bytes();
        (budget / weight, budget % weight)
    }

    fn stratum_err(
        &self,
        representation: &'static str,
        j: usize,
        needed_bytes: usize,
        available_bytes: usize,
    ) -> PlanError {
        let (quantile_lo, quantile_hi) = self.spec.quantile_bounds(j);
        PlanError::StratumBudgetTooSmall {
            representation,
            stratum: j,
            n_strata: self.spec.n_strata(),
            quantile_lo,
            quantile_hi,
            needed_bytes,
            available_bytes,
        }
    }

    /// Shared slot-planner scaffolding: resolves `k = (x·mⱼ − fixed) /
    /// slot` per stratum (vacuous plans resolve the minimum, mirroring
    /// [`BudgetPlan::afford`]), then redistributes the stranded division
    /// remainder into the top stratum in whole-slot units. With one
    /// stratum the remainder is `budget mod n < n < slot·n`, so the
    /// redistribution is exactly zero and the result stays bit-identical
    /// to the uniform planner.
    fn slots(
        &self,
        representation: &'static str,
        degrees: &[u32],
        fixed: usize,
        slot: usize,
        make: impl Fn(usize) -> SketchParams,
    ) -> Result<StratifiedParams, PlanError> {
        let (assign, counts) = self.assign(degrees);
        let (x, remainder) = self.base_share(&counts);
        let vacuous = self.plan.n_sets == 0;
        let mut ks = Vec::with_capacity(self.spec.n_strata());
        for (j, &m) in self.spec.multipliers().iter().enumerate() {
            let share = x * m;
            if vacuous {
                ks.push(1);
            } else if share < fixed + slot {
                return Err(self.stratum_err(representation, j, fixed + slot, share));
            } else {
                ks.push((share - fixed) / slot);
            }
        }
        if !vacuous && counts[0] > 0 {
            ks[0] += remainder / (slot * counts[0]);
        }
        let strata = ks.into_iter().map(make).collect();
        Ok(StratifiedParams::new(strata, assign).collapsed())
    }

    /// Shared scaffolding for the word-aligned filter planners: the base
    /// stratum's bit count is resolved from the base share `x` exactly as
    /// the uniform planner would, then scaled by each stratum's
    /// power-of-two multiplier — keeping every width an exact power-of-two
    /// multiple of the base so wide filters fold onto narrow ones. The
    /// fold constraint is also why the division remainder stays stranded
    /// here (spending it would break the exact width ratios); only the
    /// slot planners redistribute it.
    fn filter_bits(
        &self,
        degrees: &[u32],
        bits_of_share: impl Fn(usize) -> usize,
        make: impl Fn(usize) -> SketchParams,
    ) -> StratifiedParams {
        let (assign, counts) = self.assign(degrees);
        let (x, _remainder) = self.base_share(&counts);
        let base_bits = bits_of_share(x).max(64);
        let strata = self
            .spec
            .multipliers()
            .iter()
            .map(|&m| make(base_bits * m))
            .collect();
        StratifiedParams::new(strata, assign).collapsed()
    }

    /// Stratified Bloom parameters: base-share word rounding as
    /// [`BudgetPlan::bloom`], widths scaled by the power-of-two
    /// multipliers.
    pub fn bloom(&self, degrees: &[u32], b: usize) -> StratifiedParams {
        assert!(b > 0);
        self.filter_bits(
            degrees,
            |share| (share * 8) / 64 * 64,
            |bits| SketchParams::Bloom {
                bits_per_set: bits,
                b,
            },
        )
    }

    /// Stratified counting-Bloom parameters: bucket cost (view bit +
    /// counter bits) charged on the base share as
    /// [`BudgetPlan::counting_bloom`], widths scaled by the multipliers.
    pub fn counting_bloom(&self, degrees: &[u32], b: usize) -> StratifiedParams {
        assert!(b > 0);
        let bucket_bits = 1 + crate::counting_bloom::COUNTER_BITS;
        self.filter_bits(
            degrees,
            |share| (share * 8 / bucket_bits) / 64 * 64,
            |bits| SketchParams::CountingBloom {
                bits_per_set: bits,
                b,
            },
        )
    }

    /// Stratified k-hash parameters (4-byte slots, no fixed overhead).
    pub fn try_khash(&self, degrees: &[u32]) -> Result<StratifiedParams, PlanError> {
        self.slots("k-hash MinHash", degrees, 0, 4, |k| SketchParams::KHash {
            k,
        })
    }

    /// Stratified bottom-k parameters (8-byte slots after the 12 bytes/set
    /// of collection bookkeeping — see [`BudgetPlan::onehash`]).
    pub fn try_onehash(&self, degrees: &[u32]) -> Result<StratifiedParams, PlanError> {
        self.slots("1-hash / bottom-k MinHash", degrees, 12, 8, |k| {
            SketchParams::OneHash { k }
        })
    }

    /// Stratified KMV parameters (8-byte slots after 24 bytes/sketch of
    /// bookkeeping — see [`BudgetPlan::kmv`]).
    pub fn try_kmv(&self, degrees: &[u32]) -> Result<StratifiedParams, PlanError> {
        self.slots("KMV", degrees, 24, 8, |k| SketchParams::Kmv { k })
    }

    /// Stratified HyperLogLog parameters: base precision from the base
    /// share as [`BudgetPlan::hll`], plus `log2(multiplier)` per stratum,
    /// clamped to the standard `4..=16` range (register counts stay exact
    /// powers of two, so wider registers fold onto narrower ones).
    pub fn hll(&self, degrees: &[u32]) -> StratifiedParams {
        let (assign, counts) = self.assign(degrees);
        let (x, _remainder) = self.base_share(&counts);
        let bytes = x.max(1);
        let base_p = (usize::BITS - 1 - bytes.leading_zeros()).clamp(4, 16);
        let strata = self
            .spec
            .multipliers()
            .iter()
            .map(|&m| SketchParams::Hll {
                precision: (base_p + m.trailing_zeros()).clamp(4, 16) as u8,
            })
            .collect();
        StratifiedParams::new(strata, assign).collapsed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_scales_linearly() {
        let p10 = BudgetPlan::new(1_000_000, 1000, 0.10);
        let p33 = BudgetPlan::new(1_000_000, 1000, 0.33);
        assert_eq!(p10.budget_bytes(), 100_000);
        assert_eq!(p33.budget_bytes(), 330_000);
        assert!(p33.bytes_per_set() > 3 * p10.bytes_per_set() - 8);
    }

    #[test]
    fn bloom_bits_are_word_multiples() {
        let p = BudgetPlan::new(1_000_000, 777, 0.25);
        if let SketchParams::Bloom { bits_per_set, b } = p.bloom(2) {
            assert_eq!(bits_per_set % 64, 0);
            assert_eq!(b, 2);
            // Must not exceed the per-set byte budget (mod word rounding).
            assert!(bits_per_set / 8 <= p.bytes_per_set().max(8));
        } else {
            panic!("wrong variant");
        }
    }

    #[test]
    fn tiny_budgets_error_instead_of_degrading() {
        let p = BudgetPlan::new(100, 1000, 0.01); // ~0 bytes per set
                                                  // Bloom keeps its documented one-word floor (a 64-bit filter is
                                                  // still a filter; fractional words are not).
        assert_eq!(
            p.bloom(1),
            SketchParams::Bloom {
                bits_per_set: 64,
                b: 1
            }
        );
        // The fixed-slot planners report the shortfall instead of quietly
        // handing out a k=1 sketch the budget cannot pay for.
        assert_eq!(
            p.try_khash(),
            Err(PlanError::BudgetTooSmall {
                representation: "k-hash MinHash",
                needed_bytes: 4,
                available_bytes: 0,
            })
        );
        assert!(p.try_onehash().is_err());
        assert!(p.try_kmv().is_err());
        let msg = p.try_kmv().unwrap_err().to_string();
        assert!(msg.contains("KMV") && msg.contains("32"), "{msg}");
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "budget too small")]
    fn infallible_planner_asserts_on_tiny_budget() {
        let p = BudgetPlan::new(100, 1000, 0.01);
        let _ = p.onehash();
    }

    #[test]
    fn counting_bloom_charges_counter_width() {
        let p = BudgetPlan::new(8_000_000, 2000, 0.25);
        let (
            SketchParams::CountingBloom { bits_per_set, b },
            SketchParams::Bloom {
                bits_per_set: plain,
                ..
            },
        ) = (p.counting_bloom(2), p.bloom(2))
        else {
            panic!("wrong variants")
        };
        assert_eq!(b, 2);
        assert_eq!(bits_per_set % 64, 0);
        // Each bucket costs 1 view bit + COUNTER_BITS counter bits, so the
        // full footprint must fit the per-set budget...
        let bucket_bits = 1 + crate::counting_bloom::COUNTER_BITS;
        assert!(bits_per_set * bucket_bits / 8 <= p.bytes_per_set());
        // ...and the plain planner hands out ~bucket_bits× the buckets.
        assert!(plain / bits_per_set >= bucket_bits - 1);
        assert!(plain / bits_per_set <= bucket_bits + 1);
        // Tiny budgets floor at one word, like plain Bloom.
        let tiny = BudgetPlan::new(100, 1000, 0.01);
        assert_eq!(
            tiny.counting_bloom(1),
            SketchParams::CountingBloom {
                bits_per_set: 64,
                b: 1
            }
        );
    }

    #[test]
    fn resolved_plans_never_exceed_budget() {
        // Every planner's resolved parameters, multiplied back into bytes,
        // must fit the per-set budget — across scales and budgets, for
        // every representation (floors exempt only the sub-minimal budgets
        // the try_ planners reject).
        let bucket_bits = 1 + crate::counting_bloom::COUNTER_BITS;
        for base in [10_000usize, 777_777, 8_000_000] {
            for n in [3usize, 100, 4096] {
                for s in [0.02, 0.1, 0.25, 0.33, 1.0] {
                    let p = BudgetPlan::new(base, n, s);
                    let bps = p.bytes_per_set();
                    let ctx = format!("base={base} n={n} s={s} bps={bps}");
                    assert!(p.budget_bytes() <= base, "{ctx}");
                    if bps >= 8 {
                        let SketchParams::Bloom { bits_per_set, .. } = p.bloom(2) else {
                            panic!()
                        };
                        assert!(bits_per_set / 8 <= bps, "{ctx}: bloom");
                    }
                    if bps >= bucket_bits * 8 {
                        let SketchParams::CountingBloom { bits_per_set, .. } = p.counting_bloom(2)
                        else {
                            panic!()
                        };
                        assert!(bits_per_set * bucket_bits / 8 <= bps, "{ctx}: cbloom");
                    }
                    if let Ok(SketchParams::KHash { k }) = p.try_khash() {
                        assert!(k * 4 <= bps, "{ctx}: khash");
                    }
                    if let Ok(SketchParams::OneHash { k }) = p.try_onehash() {
                        assert!(k * 8 + 12 <= bps, "{ctx}: onehash");
                    }
                    if let Ok(SketchParams::Kmv { k }) = p.try_kmv() {
                        assert!(k * 8 + 24 <= bps, "{ctx}: kmv");
                    }
                    if bps >= 16 {
                        let SketchParams::Hll { precision } = p.hll() else {
                            panic!()
                        };
                        assert!(1usize << precision <= bps, "{ctx}: hll");
                    }
                }
            }
        }
    }

    #[test]
    fn onehash_has_half_the_slots_of_khash() {
        // k-hash signatures store one u32 per slot; bottom-k stores the
        // element plus its precomputed hash (Table I: W·k bits, W = 64),
        // plus 12 bytes/set of bookkeeping.
        let p = BudgetPlan::new(8_000_000, 2000, 0.2);
        let (SketchParams::KHash { k: k1 }, SketchParams::OneHash { k: k2 }) =
            (p.khash(), p.onehash())
        else {
            panic!("wrong variants")
        };
        assert_eq!(k2, (p.bytes_per_set() - 12) / 8);
        assert!(k1 / 2 >= k2 - 1 && k1 / 2 <= k2 + 2);
    }

    #[test]
    fn onehash_streaming_capacity_fits_budget() {
        // Mirrors `budget_scales_linearly`, for the streaming (strided)
        // bottom-k layout: every set owns a full capacity-k region of
        // 8-byte slots plus 12 bytes of bookkeeping (offset + live length
        // + exact size), and that worst case must stay inside the per-set
        // budget at every scale — the heap capacity is *planned*, not
        // borrowed, memory.
        for s in [0.05, 0.10, 0.25, 0.33, 1.0] {
            let p = BudgetPlan::new(1_000_000, 1000, s);
            let SketchParams::OneHash { k } = p.onehash() else {
                panic!("wrong variant")
            };
            assert!(
                k * 8 + 12 <= p.bytes_per_set().max(20),
                "s={s}: streaming capacity {}B exceeds per-set budget {}B",
                k * 8 + 12,
                p.bytes_per_set()
            );
        }
        // Minimal-budget boundary: exactly 20 bytes/set (one 8-byte slot
        // + 12 bytes bookkeeping) is the smallest plannable budget — k=1
        // fits it exactly; one byte less is a planning error, not a
        // silent k=1 that would overrun the budget by 1 byte/set.
        let boundary = BudgetPlan::new(20 * 1000, 1000, 1.0);
        assert_eq!(boundary.bytes_per_set(), 20);
        assert_eq!(boundary.try_onehash(), Ok(SketchParams::OneHash { k: 1 }));
        let below = BudgetPlan::new(19 * 1000, 1000, 1.0);
        assert_eq!(
            below.try_onehash(),
            Err(PlanError::BudgetTooSmall {
                representation: "1-hash / bottom-k MinHash",
                needed_bytes: 20,
                available_bytes: 19,
            })
        );
        // The k=1 → k=2 step happens exactly where the second slot fits.
        let SketchParams::OneHash { k } = BudgetPlan::new(27 * 1000, 1000, 1.0).onehash() else {
            panic!("wrong variant")
        };
        assert_eq!(k, 1);
        let SketchParams::OneHash { k } = BudgetPlan::new(28 * 1000, 1000, 1.0).onehash() else {
            panic!("wrong variant")
        };
        assert_eq!(k, 2);
        // Capacity scales linearly with the budget, like the byte pool.
        let SketchParams::OneHash { k: k10 } = BudgetPlan::new(1_000_000, 1000, 0.10).onehash()
        else {
            panic!("wrong variant")
        };
        let SketchParams::OneHash { k: k30 } = BudgetPlan::new(1_000_000, 1000, 0.30).onehash()
        else {
            panic!("wrong variant")
        };
        assert!(k30 >= 3 * k10 - 3 && k30 <= 3 * k10 + 3);
    }

    #[test]
    fn kmv_gets_about_half_the_slots() {
        let p = BudgetPlan::new(8_000_000, 2000, 0.2);
        let (SketchParams::KHash { k: kh }, SketchParams::Kmv { k: kk }) = (p.khash(), p.kmv())
        else {
            panic!("wrong variants")
        };
        // 8-byte vs 4-byte slots, minus the 24-byte bookkeeping deduction.
        assert_eq!(kk, (p.bytes_per_set() - 24) / 8);
        assert!(kh / 2 - kk <= 3);
    }

    #[test]
    #[should_panic(expected = "outside [0,1]")]
    fn rejects_bad_budget() {
        BudgetPlan::new(100, 10, 1.5);
    }

    #[test]
    fn hll_precision_fits_budget_and_clamps() {
        let p = BudgetPlan::new(8_000_000, 2000, 0.25);
        let SketchParams::Hll { precision } = p.hll() else {
            panic!("wrong variant")
        };
        // 2^p bytes per set must fit, and 2^(p+1) must not.
        assert!((1usize << precision) <= p.bytes_per_set());
        assert!((1usize << (precision + 1)) > p.bytes_per_set());
        // Tiny budgets floor at the minimum precision.
        let tiny = BudgetPlan::new(100, 1000, 0.01);
        assert_eq!(tiny.hll(), SketchParams::Hll { precision: 4 });
        // Huge budgets cap at 16.
        let huge = BudgetPlan::new(1 << 30, 2, 1.0);
        assert_eq!(huge.hll(), SketchParams::Hll { precision: 16 });
    }

    fn skewed_degrees(n: usize) -> Vec<u32> {
        // Heavy tail: degree ~ n/(i+1), distinct enough to exercise ranks.
        (0..n).map(|i| (n / (i + 1)) as u32).collect()
    }

    #[test]
    fn one_stratum_plan_matches_uniform_bit_for_bit() {
        let plan = BudgetPlan::new(1_000_000, 1000, 0.25);
        let strat = StratifiedPlan::new(plan, StrataSpec::uniform());
        let degs = skewed_degrees(1000);
        let sp = strat.bloom(&degs, 2);
        assert!(sp.is_uniform());
        assert_eq!(sp.strata()[0], plan.bloom(2));
        assert_eq!(
            strat.counting_bloom(&degs, 2).strata()[0],
            plan.counting_bloom(2)
        );
        assert_eq!(strat.try_khash(&degs).unwrap().strata()[0], plan.khash());
        assert_eq!(
            strat.try_onehash(&degs).unwrap().strata()[0],
            plan.onehash()
        );
        assert_eq!(strat.try_kmv(&degs).unwrap().strata()[0], plan.kmv());
        assert_eq!(strat.hll(&degs).strata()[0], plan.hll());
    }

    #[test]
    fn stratified_assignment_follows_degree_quantiles() {
        let plan = BudgetPlan::new(8_000_000, 1000, 0.25);
        let strat = StratifiedPlan::new(plan, StrataSpec::skewed_default());
        let degs = skewed_degrees(1000);
        let (assign, counts) = strat.assign(&degs);
        assert_eq!(counts, vec![10, 90, 900]);
        // The highest-degree vertex (id 0 here) lands in stratum 0, the
        // long tail in the base stratum.
        assert_eq!(assign[0], 0);
        assert_eq!(assign[999], 2);
        assert_eq!(assign.iter().filter(|&&a| a == 0).count(), 10);
    }

    #[test]
    fn stratified_bloom_widths_are_power_of_two_multiples_within_budget() {
        let plan = BudgetPlan::new(8_000_000, 1000, 0.25);
        let strat = StratifiedPlan::new(plan, StrataSpec::skewed_default());
        let degs = skewed_degrees(1000);
        let sp = strat.bloom(&degs, 2);
        let bits: Vec<usize> = sp
            .strata()
            .iter()
            .map(|p| match p {
                SketchParams::Bloom { bits_per_set, .. } => *bits_per_set,
                _ => panic!("wrong variant"),
            })
            .collect();
        assert_eq!(bits[0], 4 * bits[2]);
        assert_eq!(bits[1], 2 * bits[2]);
        assert_eq!(bits[2] % 64, 0);
        // Total bytes never exceed the budget.
        let total: usize = sp
            .counts()
            .iter()
            .zip(&bits)
            .map(|(&n, &b)| n * b / 8)
            .sum();
        assert!(
            total <= plan.budget_bytes(),
            "{total} > {}",
            plan.budget_bytes()
        );
    }

    #[test]
    fn stratified_slots_redistribute_the_remainder_within_budget() {
        for (base, n) in [(1_000_003usize, 997usize), (8_000_000, 1000), (77_777, 313)] {
            let plan = BudgetPlan::new(base, n, 0.33);
            let strat = StratifiedPlan::new(plan, StrataSpec::skewed_default());
            let degs = skewed_degrees(n);
            let sp = strat.try_khash(&degs).unwrap();
            let counts = sp.counts();
            let spent: usize = sp
                .strata()
                .iter()
                .zip(&counts)
                .map(|(p, &c)| match p {
                    SketchParams::KHash { k } => k * 4 * c,
                    _ => panic!("wrong variant"),
                })
                .sum();
            assert!(spent <= plan.budget_bytes());
            // The stranded remainder after redistribution is below one
            // top-stratum slot round: budget - spent < 4·n₀ + rounding.
            let slack = plan.budget_bytes() - spent;
            let per_set_round: usize = counts.iter().map(|&c| c * 3).sum();
            assert!(
                slack < 4 * counts[0].max(1) + per_set_round,
                "base={base} n={n}: stranded {slack} bytes"
            );
        }
    }

    #[test]
    fn stratified_errors_carry_stratum_context() {
        let plan = BudgetPlan::new(4_000, 1000, 0.5); // 2 bytes/set overall
        let strat = StratifiedPlan::new(plan, StrataSpec::skewed_default());
        let degs = skewed_degrees(1000);
        let err = strat.try_kmv(&degs).unwrap_err();
        let PlanError::StratumBudgetTooSmall {
            representation,
            stratum,
            n_strata,
            quantile_lo,
            quantile_hi,
            needed_bytes,
            ..
        } = err
        else {
            panic!("expected stratum context, got {err:?}")
        };
        assert_eq!(representation, "KMV");
        assert_eq!(n_strata, 3);
        assert_eq!(needed_bytes, 32);
        assert!(stratum < 3);
        assert!(quantile_lo < quantile_hi);
        let msg = err.to_string();
        assert!(msg.contains("stratum") && msg.contains("quantile"), "{msg}");
    }

    #[test]
    fn all_equal_strata_collapse_to_uniform() {
        // A budget so small every stratum floors at the same minimum.
        let plan = BudgetPlan::new(100, 1000, 0.01);
        let strat = StratifiedPlan::new(plan, StrataSpec::skewed_default());
        let degs = skewed_degrees(1000);
        let sp = strat.bloom(&degs, 2);
        // Floors only kick in below one word: base share is 0 bytes here,
        // so base_bits = 64 and stratum widths 256/128/64 — NOT equal.
        assert!(!sp.is_uniform());
        // But explicit collapse works when the table really is constant.
        let forced =
            StratifiedParams::new(vec![SketchParams::Hll { precision: 4 }; 3], vec![0, 1, 2])
                .collapsed();
        assert!(forced.is_uniform());
        assert!(forced.assign().iter().all(|&a| a == 0));
    }

    #[test]
    fn quantile_bounds_cover_the_unit_interval() {
        let spec = StrataSpec::skewed_default();
        assert_eq!(spec.quantile_bounds(0), (0.0, 0.01));
        let (lo1, hi1) = spec.quantile_bounds(1);
        assert!((lo1 - 0.01).abs() < 1e-12 && (hi1 - 0.10).abs() < 1e-12);
        let (lo2, hi2) = spec.quantile_bounds(2);
        assert!((lo2 - 0.10).abs() < 1e-12);
        assert_eq!(hi2, 1.0);
    }

    #[test]
    #[should_panic(expected = "powers of two")]
    fn rejects_non_power_of_two_multipliers() {
        StrataSpec::new(vec![0.1], vec![3, 1]);
    }

    #[test]
    fn zero_sets_budget_is_legal() {
        let p = BudgetPlan::new(1_000, 0, 0.25);
        assert_eq!(p.bytes_per_set(), 0);
        // Parameter resolution still yields usable minimum sizes.
        assert_eq!(p.khash(), SketchParams::KHash { k: 1 });
        assert_eq!(p.hll(), SketchParams::Hll { precision: 4 });
    }
}
