//! The storage budget `s` (§V-A of the paper).
//!
//! `s ∈ [0, 1]` specifies how much memory *on top of* the CSR graph may be
//! spent on ProbGraph structures (the evaluation never exceeds 33 %). This
//! module turns a budget into concrete per-set sketch parameters: Bloom
//! filter bits `B`, MinHash `k`, KMV `k` — uniform across all sets, which
//! is what gives ProbGraph its load-balancing behaviour.

use std::fmt;

/// Concrete parameters for one probabilistic representation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SketchParams {
    /// Bloom filter: `bits_per_set` bits and `b` hash functions per set.
    Bloom { bits_per_set: usize, b: usize },
    /// Counting Bloom filter: `bits_per_set` buckets, each costing one
    /// derived-view bit **plus** a [`crate::counting_bloom::COUNTER_BITS`]-bit
    /// saturating counter, with `b` hash functions per set.
    CountingBloom { bits_per_set: usize, b: usize },
    /// k-hash MinHash with `k` hash functions (k 32-bit words per set).
    KHash { k: usize },
    /// 1-hash / bottom-k MinHash with sample size `k`.
    OneHash { k: usize },
    /// KMV with `k` stored 64-bit hash values.
    Kmv { k: usize },
    /// HyperLogLog with `2^precision` one-byte registers per set.
    Hll { precision: u8 },
}

/// Why a budget could not be resolved into usable sketch parameters.
///
/// Returned by the `try_*` planners instead of silently degrading the
/// sketch to a floor size the budget cannot actually pay for (the
/// infallible planners debug-assert on the same condition).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlanError {
    /// The per-set byte budget cannot afford even the representation's
    /// minimal sketch (one slot plus its fixed bookkeeping).
    BudgetTooSmall {
        /// Which planner rejected the budget.
        representation: &'static str,
        /// Bytes per set the minimal sketch needs.
        needed_bytes: usize,
        /// Bytes per set the budget provides.
        available_bytes: usize,
    },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let PlanError::BudgetTooSmall {
            representation,
            needed_bytes,
            available_bytes,
        } = self;
        write!(
            f,
            "budget too small for {representation}: minimal sketch needs \
             {needed_bytes} bytes/set, budget provides {available_bytes}"
        )
    }
}

impl std::error::Error for PlanError {}

/// A storage budget resolved against a concrete base representation.
#[derive(Clone, Copy, Debug)]
pub struct BudgetPlan {
    base_bytes: usize,
    n_sets: usize,
    s: f64,
}

impl BudgetPlan {
    /// `base_bytes` is the memory of the exact representation (CSR), and
    /// `s` the additional fraction of it the sketches may use. `n_sets`
    /// may be zero (an empty graph sketches nothing).
    pub fn new(base_bytes: usize, n_sets: usize, s: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&s),
            "storage budget s={s} outside [0,1]"
        );
        BudgetPlan {
            base_bytes,
            n_sets,
            s,
        }
    }

    /// Total sketch bytes allowed.
    ///
    /// `s` is resolved to a 32-bit fixed-point fraction once, then scaled
    /// in pure integer arithmetic with round-half-up — deterministic
    /// across platforms and FP modes, unlike the previous
    /// `(base as f64 * s) as usize`, whose truncation toward zero made
    /// the budget depend on the rounding direction of one multiply.
    /// `s ≤ 1` guarantees the result never exceeds `base_bytes`.
    #[inline]
    pub fn budget_bytes(&self) -> usize {
        let frac = (self.s * (1u64 << 32) as f64).round() as u128;
        let bytes = ((self.base_bytes as u128 * frac + (1u128 << 31)) >> 32) as usize;
        debug_assert!(bytes <= self.base_bytes, "budget exceeds the base bytes");
        bytes
    }

    /// Bytes available per set (zero sets ⇒ zero bytes; parameter
    /// resolution still floors at each representation's minimum size).
    #[inline]
    pub fn bytes_per_set(&self) -> usize {
        match self.n_sets {
            0 => 0,
            n => self.budget_bytes() / n,
        }
    }

    /// Bloom parameters: the largest whole-word bit count fitting the
    /// budget (at least one word — a sketch of zero bits is useless), with
    /// the caller-chosen number of hash functions `b`.
    pub fn bloom(&self, b: usize) -> SketchParams {
        assert!(b > 0);
        let bits = (self.bytes_per_set() * 8) / 64 * 64;
        SketchParams::Bloom {
            bits_per_set: bits.max(64),
            b,
        }
    }

    /// Counting Bloom parameters: each bucket costs one derived-view bit
    /// **plus** a [`crate::counting_bloom::COUNTER_BITS`]-bit saturating
    /// counter, so a byte budget buys `8·bytes / (1 + COUNTER_BITS)`
    /// buckets — the counter width is deducted up front, not borrowed
    /// (the plain-Bloom planner would hand out 5× the buckets for the
    /// same bytes; deletions are what the difference pays for). Rounded
    /// down to whole 64-bit view words (at least one), with the
    /// caller-chosen number of hash functions `b`.
    pub fn counting_bloom(&self, b: usize) -> SketchParams {
        assert!(b > 0);
        let bucket_bits = 1 + crate::counting_bloom::COUNTER_BITS;
        let bits = (self.bytes_per_set() * 8 / bucket_bits) / 64 * 64;
        SketchParams::CountingBloom {
            bits_per_set: bits.max(64),
            b,
        }
    }

    /// Shared guard for the fixed-slot planners: the per-set byte budget,
    /// provided it affords at least the minimal footprint. The vacuous
    /// zero-sets plan returns the minimum itself — nothing will be
    /// allocated, but callers still resolve usable minimal parameters —
    /// so the planners below need no `.max(1)` floors: this guard is the
    /// single source of `k ≥ 1`.
    #[inline]
    fn afford(
        &self,
        representation: &'static str,
        needed_bytes: usize,
    ) -> Result<usize, PlanError> {
        if self.n_sets == 0 {
            return Ok(needed_bytes);
        }
        let available_bytes = self.bytes_per_set();
        if available_bytes >= needed_bytes {
            Ok(available_bytes)
        } else {
            Err(PlanError::BudgetTooSmall {
                representation,
                needed_bytes,
                available_bytes,
            })
        }
    }

    /// k-hash parameters: `k` = number of 4-byte signature slots that
    /// fit, or [`PlanError::BudgetTooSmall`] when not even one does.
    pub fn try_khash(&self) -> Result<SketchParams, PlanError> {
        let bytes = self.afford("k-hash MinHash", 4)?;
        Ok(SketchParams::KHash { k: bytes / 4 })
    }

    /// k-hash parameters: `k` = number of 4-byte signature slots that fit.
    ///
    /// A budget below one slot is a planning bug: debug builds assert;
    /// release builds fall back to `k = 1` (4 bytes/set past budget) for
    /// robustness. Use [`BudgetPlan::try_khash`] to handle tiny budgets.
    pub fn khash(&self) -> SketchParams {
        self.try_khash().unwrap_or_else(|e| {
            debug_assert!(false, "{e} (use try_khash to handle tiny budgets)");
            SketchParams::KHash { k: 1 }
        })
    }

    /// 1-hash / bottom-k parameters: `k` = number of 8-byte slots (element +
    /// precomputed hash, i.e. Table I's `W·k` bits with `W = 64`), after
    /// deducting the 12 bytes/set of collection bookkeeping (offset + live
    /// length + exact size) so sparse graphs stay inside the budget too.
    ///
    /// `k` is also the **streaming heap capacity**: the mutable bottom-k
    /// layout gives every set a full capacity-`k` region (the bounded
    /// max-heap inserts grow samples toward `k`), so the budget must — and
    /// does — charge all `k · 8` bytes per set up front, whether or not a
    /// static build fills them. `onehash_streaming_capacity_fits_budget`
    /// asserts the invariant.
    pub fn onehash(&self) -> SketchParams {
        self.try_onehash().unwrap_or_else(|e| {
            debug_assert!(false, "{e} (use try_onehash to handle tiny budgets)");
            SketchParams::OneHash { k: 1 }
        })
    }

    /// Fallible form of [`BudgetPlan::onehash`]: the minimal streaming
    /// bottom-k layout is one 8-byte slot plus the 12 bytes/set of
    /// bookkeeping, and a budget below those 20 bytes is reported as
    /// [`PlanError::BudgetTooSmall`] instead of silently degrading to a
    /// `k = 1` that would overrun the per-set budget the capacity
    /// invariant promises to respect.
    pub fn try_onehash(&self) -> Result<SketchParams, PlanError> {
        let bytes = self.afford("1-hash / bottom-k MinHash", 12 + 8)?;
        Ok(SketchParams::OneHash {
            k: (bytes - 12) / 8,
        })
    }

    /// KMV parameters: `k` = number of 8-byte hash values, after deducting
    /// the ~24 bytes of per-sketch bookkeeping ([`crate::KmvSketch`] stores
    /// its length/k/size words individually rather than flat).
    ///
    /// Budgets below one slot + bookkeeping debug-assert (release builds
    /// floor at `k = 1`); use [`BudgetPlan::try_kmv`] to handle them.
    pub fn kmv(&self) -> SketchParams {
        self.try_kmv().unwrap_or_else(|e| {
            debug_assert!(false, "{e} (use try_kmv to handle tiny budgets)");
            SketchParams::Kmv { k: 1 }
        })
    }

    /// Fallible form of [`BudgetPlan::kmv`]: minimal footprint is one
    /// 8-byte slot plus 24 bytes of per-sketch bookkeeping.
    pub fn try_kmv(&self) -> Result<SketchParams, PlanError> {
        let bytes = self.afford("KMV", 24 + 8)?;
        Ok(SketchParams::Kmv {
            k: (bytes - 24) / 8,
        })
    }

    /// HyperLogLog parameters: the largest precision whose `2^p` one-byte
    /// registers fit the per-set budget, clamped to the standard `4..=16`
    /// range.
    pub fn hll(&self) -> SketchParams {
        let bytes = self.bytes_per_set().max(1);
        let precision = (usize::BITS - 1 - bytes.leading_zeros()).clamp(4, 16) as u8;
        SketchParams::Hll { precision }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_scales_linearly() {
        let p10 = BudgetPlan::new(1_000_000, 1000, 0.10);
        let p33 = BudgetPlan::new(1_000_000, 1000, 0.33);
        assert_eq!(p10.budget_bytes(), 100_000);
        assert_eq!(p33.budget_bytes(), 330_000);
        assert!(p33.bytes_per_set() > 3 * p10.bytes_per_set() - 8);
    }

    #[test]
    fn bloom_bits_are_word_multiples() {
        let p = BudgetPlan::new(1_000_000, 777, 0.25);
        if let SketchParams::Bloom { bits_per_set, b } = p.bloom(2) {
            assert_eq!(bits_per_set % 64, 0);
            assert_eq!(b, 2);
            // Must not exceed the per-set byte budget (mod word rounding).
            assert!(bits_per_set / 8 <= p.bytes_per_set().max(8));
        } else {
            panic!("wrong variant");
        }
    }

    #[test]
    fn tiny_budgets_error_instead_of_degrading() {
        let p = BudgetPlan::new(100, 1000, 0.01); // ~0 bytes per set
                                                  // Bloom keeps its documented one-word floor (a 64-bit filter is
                                                  // still a filter; fractional words are not).
        assert_eq!(
            p.bloom(1),
            SketchParams::Bloom {
                bits_per_set: 64,
                b: 1
            }
        );
        // The fixed-slot planners report the shortfall instead of quietly
        // handing out a k=1 sketch the budget cannot pay for.
        assert_eq!(
            p.try_khash(),
            Err(PlanError::BudgetTooSmall {
                representation: "k-hash MinHash",
                needed_bytes: 4,
                available_bytes: 0,
            })
        );
        assert!(p.try_onehash().is_err());
        assert!(p.try_kmv().is_err());
        let msg = p.try_kmv().unwrap_err().to_string();
        assert!(msg.contains("KMV") && msg.contains("32"), "{msg}");
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "budget too small")]
    fn infallible_planner_asserts_on_tiny_budget() {
        let p = BudgetPlan::new(100, 1000, 0.01);
        let _ = p.onehash();
    }

    #[test]
    fn counting_bloom_charges_counter_width() {
        let p = BudgetPlan::new(8_000_000, 2000, 0.25);
        let (
            SketchParams::CountingBloom { bits_per_set, b },
            SketchParams::Bloom {
                bits_per_set: plain,
                ..
            },
        ) = (p.counting_bloom(2), p.bloom(2))
        else {
            panic!("wrong variants")
        };
        assert_eq!(b, 2);
        assert_eq!(bits_per_set % 64, 0);
        // Each bucket costs 1 view bit + COUNTER_BITS counter bits, so the
        // full footprint must fit the per-set budget...
        let bucket_bits = 1 + crate::counting_bloom::COUNTER_BITS;
        assert!(bits_per_set * bucket_bits / 8 <= p.bytes_per_set());
        // ...and the plain planner hands out ~bucket_bits× the buckets.
        assert!(plain / bits_per_set >= bucket_bits - 1);
        assert!(plain / bits_per_set <= bucket_bits + 1);
        // Tiny budgets floor at one word, like plain Bloom.
        let tiny = BudgetPlan::new(100, 1000, 0.01);
        assert_eq!(
            tiny.counting_bloom(1),
            SketchParams::CountingBloom {
                bits_per_set: 64,
                b: 1
            }
        );
    }

    #[test]
    fn resolved_plans_never_exceed_budget() {
        // Every planner's resolved parameters, multiplied back into bytes,
        // must fit the per-set budget — across scales and budgets, for
        // every representation (floors exempt only the sub-minimal budgets
        // the try_ planners reject).
        let bucket_bits = 1 + crate::counting_bloom::COUNTER_BITS;
        for base in [10_000usize, 777_777, 8_000_000] {
            for n in [3usize, 100, 4096] {
                for s in [0.02, 0.1, 0.25, 0.33, 1.0] {
                    let p = BudgetPlan::new(base, n, s);
                    let bps = p.bytes_per_set();
                    let ctx = format!("base={base} n={n} s={s} bps={bps}");
                    assert!(p.budget_bytes() <= base, "{ctx}");
                    if bps >= 8 {
                        let SketchParams::Bloom { bits_per_set, .. } = p.bloom(2) else {
                            panic!()
                        };
                        assert!(bits_per_set / 8 <= bps, "{ctx}: bloom");
                    }
                    if bps >= bucket_bits * 8 {
                        let SketchParams::CountingBloom { bits_per_set, .. } = p.counting_bloom(2)
                        else {
                            panic!()
                        };
                        assert!(bits_per_set * bucket_bits / 8 <= bps, "{ctx}: cbloom");
                    }
                    if let Ok(SketchParams::KHash { k }) = p.try_khash() {
                        assert!(k * 4 <= bps, "{ctx}: khash");
                    }
                    if let Ok(SketchParams::OneHash { k }) = p.try_onehash() {
                        assert!(k * 8 + 12 <= bps, "{ctx}: onehash");
                    }
                    if let Ok(SketchParams::Kmv { k }) = p.try_kmv() {
                        assert!(k * 8 + 24 <= bps, "{ctx}: kmv");
                    }
                    if bps >= 16 {
                        let SketchParams::Hll { precision } = p.hll() else {
                            panic!()
                        };
                        assert!(1usize << precision <= bps, "{ctx}: hll");
                    }
                }
            }
        }
    }

    #[test]
    fn onehash_has_half_the_slots_of_khash() {
        // k-hash signatures store one u32 per slot; bottom-k stores the
        // element plus its precomputed hash (Table I: W·k bits, W = 64),
        // plus 12 bytes/set of bookkeeping.
        let p = BudgetPlan::new(8_000_000, 2000, 0.2);
        let (SketchParams::KHash { k: k1 }, SketchParams::OneHash { k: k2 }) =
            (p.khash(), p.onehash())
        else {
            panic!("wrong variants")
        };
        assert_eq!(k2, (p.bytes_per_set() - 12) / 8);
        assert!(k1 / 2 >= k2 - 1 && k1 / 2 <= k2 + 2);
    }

    #[test]
    fn onehash_streaming_capacity_fits_budget() {
        // Mirrors `budget_scales_linearly`, for the streaming (strided)
        // bottom-k layout: every set owns a full capacity-k region of
        // 8-byte slots plus 12 bytes of bookkeeping (offset + live length
        // + exact size), and that worst case must stay inside the per-set
        // budget at every scale — the heap capacity is *planned*, not
        // borrowed, memory.
        for s in [0.05, 0.10, 0.25, 0.33, 1.0] {
            let p = BudgetPlan::new(1_000_000, 1000, s);
            let SketchParams::OneHash { k } = p.onehash() else {
                panic!("wrong variant")
            };
            assert!(
                k * 8 + 12 <= p.bytes_per_set().max(20),
                "s={s}: streaming capacity {}B exceeds per-set budget {}B",
                k * 8 + 12,
                p.bytes_per_set()
            );
        }
        // Minimal-budget boundary: exactly 20 bytes/set (one 8-byte slot
        // + 12 bytes bookkeeping) is the smallest plannable budget — k=1
        // fits it exactly; one byte less is a planning error, not a
        // silent k=1 that would overrun the budget by 1 byte/set.
        let boundary = BudgetPlan::new(20 * 1000, 1000, 1.0);
        assert_eq!(boundary.bytes_per_set(), 20);
        assert_eq!(boundary.try_onehash(), Ok(SketchParams::OneHash { k: 1 }));
        let below = BudgetPlan::new(19 * 1000, 1000, 1.0);
        assert_eq!(
            below.try_onehash(),
            Err(PlanError::BudgetTooSmall {
                representation: "1-hash / bottom-k MinHash",
                needed_bytes: 20,
                available_bytes: 19,
            })
        );
        // The k=1 → k=2 step happens exactly where the second slot fits.
        let SketchParams::OneHash { k } = BudgetPlan::new(27 * 1000, 1000, 1.0).onehash() else {
            panic!("wrong variant")
        };
        assert_eq!(k, 1);
        let SketchParams::OneHash { k } = BudgetPlan::new(28 * 1000, 1000, 1.0).onehash() else {
            panic!("wrong variant")
        };
        assert_eq!(k, 2);
        // Capacity scales linearly with the budget, like the byte pool.
        let SketchParams::OneHash { k: k10 } = BudgetPlan::new(1_000_000, 1000, 0.10).onehash()
        else {
            panic!("wrong variant")
        };
        let SketchParams::OneHash { k: k30 } = BudgetPlan::new(1_000_000, 1000, 0.30).onehash()
        else {
            panic!("wrong variant")
        };
        assert!(k30 >= 3 * k10 - 3 && k30 <= 3 * k10 + 3);
    }

    #[test]
    fn kmv_gets_about_half_the_slots() {
        let p = BudgetPlan::new(8_000_000, 2000, 0.2);
        let (SketchParams::KHash { k: kh }, SketchParams::Kmv { k: kk }) = (p.khash(), p.kmv())
        else {
            panic!("wrong variants")
        };
        // 8-byte vs 4-byte slots, minus the 24-byte bookkeeping deduction.
        assert_eq!(kk, (p.bytes_per_set() - 24) / 8);
        assert!(kh / 2 - kk <= 3);
    }

    #[test]
    #[should_panic(expected = "outside [0,1]")]
    fn rejects_bad_budget() {
        BudgetPlan::new(100, 10, 1.5);
    }

    #[test]
    fn hll_precision_fits_budget_and_clamps() {
        let p = BudgetPlan::new(8_000_000, 2000, 0.25);
        let SketchParams::Hll { precision } = p.hll() else {
            panic!("wrong variant")
        };
        // 2^p bytes per set must fit, and 2^(p+1) must not.
        assert!((1usize << precision) <= p.bytes_per_set());
        assert!((1usize << (precision + 1)) > p.bytes_per_set());
        // Tiny budgets floor at the minimum precision.
        let tiny = BudgetPlan::new(100, 1000, 0.01);
        assert_eq!(tiny.hll(), SketchParams::Hll { precision: 4 });
        // Huge budgets cap at 16.
        let huge = BudgetPlan::new(1 << 30, 2, 1.0);
        assert_eq!(huge.hll(), SketchParams::Hll { precision: 16 });
    }

    #[test]
    fn zero_sets_budget_is_legal() {
        let p = BudgetPlan::new(1_000, 0, 0.25);
        assert_eq!(p.bytes_per_set(), 0);
        // Parameter resolution still yields usable minimum sizes.
        assert_eq!(p.khash(), SketchParams::KHash { k: 1 });
        assert_eq!(p.hll(), SketchParams::Hll { precision: 4 });
    }
}
