//! The storage budget `s` (§V-A of the paper).
//!
//! `s ∈ [0, 1]` specifies how much memory *on top of* the CSR graph may be
//! spent on ProbGraph structures (the evaluation never exceeds 33 %). This
//! module turns a budget into concrete per-set sketch parameters: Bloom
//! filter bits `B`, MinHash `k`, KMV `k` — uniform across all sets, which
//! is what gives ProbGraph its load-balancing behaviour.

/// Concrete parameters for one probabilistic representation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SketchParams {
    /// Bloom filter: `bits_per_set` bits and `b` hash functions per set.
    Bloom { bits_per_set: usize, b: usize },
    /// k-hash MinHash with `k` hash functions (k 32-bit words per set).
    KHash { k: usize },
    /// 1-hash / bottom-k MinHash with sample size `k`.
    OneHash { k: usize },
    /// KMV with `k` stored 64-bit hash values.
    Kmv { k: usize },
    /// HyperLogLog with `2^precision` one-byte registers per set.
    Hll { precision: u8 },
}

/// A storage budget resolved against a concrete base representation.
#[derive(Clone, Copy, Debug)]
pub struct BudgetPlan {
    base_bytes: usize,
    n_sets: usize,
    s: f64,
}

impl BudgetPlan {
    /// `base_bytes` is the memory of the exact representation (CSR), and
    /// `s` the additional fraction of it the sketches may use. `n_sets`
    /// may be zero (an empty graph sketches nothing).
    pub fn new(base_bytes: usize, n_sets: usize, s: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&s),
            "storage budget s={s} outside [0,1]"
        );
        BudgetPlan {
            base_bytes,
            n_sets,
            s,
        }
    }

    /// Total sketch bytes allowed.
    #[inline]
    pub fn budget_bytes(&self) -> usize {
        (self.base_bytes as f64 * self.s) as usize
    }

    /// Bytes available per set (zero sets ⇒ zero bytes; parameter
    /// resolution still floors at each representation's minimum size).
    #[inline]
    pub fn bytes_per_set(&self) -> usize {
        match self.n_sets {
            0 => 0,
            n => self.budget_bytes() / n,
        }
    }

    /// Bloom parameters: the largest whole-word bit count fitting the
    /// budget (at least one word — a sketch of zero bits is useless), with
    /// the caller-chosen number of hash functions `b`.
    pub fn bloom(&self, b: usize) -> SketchParams {
        assert!(b > 0);
        let bits = (self.bytes_per_set() * 8) / 64 * 64;
        SketchParams::Bloom {
            bits_per_set: bits.max(64),
            b,
        }
    }

    /// k-hash parameters: `k` = number of 4-byte signature slots that fit.
    pub fn khash(&self) -> SketchParams {
        SketchParams::KHash {
            k: (self.bytes_per_set() / 4).max(1),
        }
    }

    /// 1-hash / bottom-k parameters: `k` = number of 8-byte slots (element +
    /// precomputed hash, i.e. Table I's `W·k` bits with `W = 64`), after
    /// deducting the 12 bytes/set of collection bookkeeping (offset + live
    /// length + exact size) so sparse graphs stay inside the budget too.
    ///
    /// `k` is also the **streaming heap capacity**: the mutable bottom-k
    /// layout gives every set a full capacity-`k` region (the bounded
    /// max-heap inserts grow samples toward `k`), so the budget must — and
    /// does — charge all `k · 8` bytes per set up front, whether or not a
    /// static build fills them. `onehash_streaming_capacity_fits_budget`
    /// asserts the invariant.
    pub fn onehash(&self) -> SketchParams {
        SketchParams::OneHash {
            k: (self.bytes_per_set().saturating_sub(12) / 8).max(1),
        }
    }

    /// KMV parameters: `k` = number of 8-byte hash values, after deducting
    /// the ~24 bytes of per-sketch bookkeeping ([`crate::KmvSketch`] stores
    /// its length/k/size words individually rather than flat).
    pub fn kmv(&self) -> SketchParams {
        SketchParams::Kmv {
            k: (self.bytes_per_set().saturating_sub(24) / 8).max(1),
        }
    }

    /// HyperLogLog parameters: the largest precision whose `2^p` one-byte
    /// registers fit the per-set budget, clamped to the standard `4..=16`
    /// range.
    pub fn hll(&self) -> SketchParams {
        let bytes = self.bytes_per_set().max(1);
        let precision = (usize::BITS - 1 - bytes.leading_zeros()).clamp(4, 16) as u8;
        SketchParams::Hll { precision }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_scales_linearly() {
        let p10 = BudgetPlan::new(1_000_000, 1000, 0.10);
        let p33 = BudgetPlan::new(1_000_000, 1000, 0.33);
        assert_eq!(p10.budget_bytes(), 100_000);
        assert_eq!(p33.budget_bytes(), 330_000);
        assert!(p33.bytes_per_set() > 3 * p10.bytes_per_set() - 8);
    }

    #[test]
    fn bloom_bits_are_word_multiples() {
        let p = BudgetPlan::new(1_000_000, 777, 0.25);
        if let SketchParams::Bloom { bits_per_set, b } = p.bloom(2) {
            assert_eq!(bits_per_set % 64, 0);
            assert_eq!(b, 2);
            // Must not exceed the per-set byte budget (mod word rounding).
            assert!(bits_per_set / 8 <= p.bytes_per_set().max(8));
        } else {
            panic!("wrong variant");
        }
    }

    #[test]
    fn tiny_budgets_floor_at_minimum_sizes() {
        let p = BudgetPlan::new(100, 1000, 0.01); // ~0 bytes per set
        assert_eq!(
            p.bloom(1),
            SketchParams::Bloom {
                bits_per_set: 64,
                b: 1
            }
        );
        assert_eq!(p.khash(), SketchParams::KHash { k: 1 });
        assert_eq!(p.kmv(), SketchParams::Kmv { k: 1 });
    }

    #[test]
    fn onehash_has_half_the_slots_of_khash() {
        // k-hash signatures store one u32 per slot; bottom-k stores the
        // element plus its precomputed hash (Table I: W·k bits, W = 64),
        // plus 12 bytes/set of bookkeeping.
        let p = BudgetPlan::new(8_000_000, 2000, 0.2);
        let (SketchParams::KHash { k: k1 }, SketchParams::OneHash { k: k2 }) =
            (p.khash(), p.onehash())
        else {
            panic!("wrong variants")
        };
        assert_eq!(k2, (p.bytes_per_set() - 12) / 8);
        assert!(k1 / 2 >= k2 - 1 && k1 / 2 <= k2 + 2);
    }

    #[test]
    fn onehash_streaming_capacity_fits_budget() {
        // Mirrors `budget_scales_linearly`, for the streaming (strided)
        // bottom-k layout: every set owns a full capacity-k region of
        // 8-byte slots plus 12 bytes of bookkeeping (offset + live length
        // + exact size), and that worst case must stay inside the per-set
        // budget at every scale — the heap capacity is *planned*, not
        // borrowed, memory.
        for s in [0.05, 0.10, 0.25, 0.33, 1.0] {
            let p = BudgetPlan::new(1_000_000, 1000, s);
            let SketchParams::OneHash { k } = p.onehash() else {
                panic!("wrong variant")
            };
            assert!(
                k * 8 + 12 <= p.bytes_per_set().max(20),
                "s={s}: streaming capacity {}B exceeds per-set budget {}B",
                k * 8 + 12,
                p.bytes_per_set()
            );
        }
        // Capacity scales linearly with the budget, like the byte pool.
        let SketchParams::OneHash { k: k10 } = BudgetPlan::new(1_000_000, 1000, 0.10).onehash()
        else {
            panic!("wrong variant")
        };
        let SketchParams::OneHash { k: k30 } = BudgetPlan::new(1_000_000, 1000, 0.30).onehash()
        else {
            panic!("wrong variant")
        };
        assert!(k30 >= 3 * k10 - 3 && k30 <= 3 * k10 + 3);
    }

    #[test]
    fn kmv_gets_about_half_the_slots() {
        let p = BudgetPlan::new(8_000_000, 2000, 0.2);
        let (SketchParams::KHash { k: kh }, SketchParams::Kmv { k: kk }) = (p.khash(), p.kmv())
        else {
            panic!("wrong variants")
        };
        // 8-byte vs 4-byte slots, minus the 24-byte bookkeeping deduction.
        assert_eq!(kk, (p.bytes_per_set() - 24) / 8);
        assert!(kh / 2 - kk <= 3);
    }

    #[test]
    #[should_panic(expected = "outside [0,1]")]
    fn rejects_bad_budget() {
        BudgetPlan::new(100, 10, 1.5);
    }

    #[test]
    fn hll_precision_fits_budget_and_clamps() {
        let p = BudgetPlan::new(8_000_000, 2000, 0.25);
        let SketchParams::Hll { precision } = p.hll() else {
            panic!("wrong variant")
        };
        // 2^p bytes per set must fit, and 2^(p+1) must not.
        assert!((1usize << precision) <= p.bytes_per_set());
        assert!((1usize << (precision + 1)) > p.bytes_per_set());
        // Tiny budgets floor at the minimum precision.
        let tiny = BudgetPlan::new(100, 1000, 0.01);
        assert_eq!(tiny.hll(), SketchParams::Hll { precision: 4 });
        // Huge budgets cap at 16.
        let huge = BudgetPlan::new(1 << 30, 2, 1.0);
        assert_eq!(huge.hll(), SketchParams::Hll { precision: 16 });
    }

    #[test]
    fn zero_sets_budget_is_legal() {
        let p = BudgetPlan::new(1_000, 0, 0.25);
        assert_eq!(p.bytes_per_set(), 0);
        // Parameter resolution still yields usable minimum sizes.
        assert_eq!(p.khash(), SketchParams::KHash { k: 1 });
        assert_eq!(p.hll(), SketchParams::Hll { precision: 4 });
    }
}
