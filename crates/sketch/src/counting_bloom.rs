//! Counting Bloom filters — the first representation with a real deletion
//! path (the ROADMAP's "removals" half of the dynamic-graph story).
//!
//! A [`CountingBloomCollection`] keeps, per set, one small saturating
//! counter per bucket (packed [`COUNTER_BITS`]-bit fields in the same
//! flat-word layout as [`crate::BitVec`]) **plus** a derived plain
//! [`BloomCollection`] read view maintained under the invariant
//!
//! > view bit `pos` of set `i` is set  ⇔  counter `pos` of set `i` > 0.
//!
//! Inserting an element increments its `b` bucket counters (setting the
//! derived bit on every 0 → 1 transition); removing decrements them
//! (clearing the bit on every 1 → 0 transition). Because insert and
//! remove walk the *same* deterministic bucket sequence, they are exactly
//! symmetric — any interleaving of inserts and removes leaves the
//! counters, the derived bits, and the cached popcounts identical to a
//! from-scratch build over the surviving elements. The whole read side
//! (fused AND+popcount pair kernels, multi-lane row sweeps, memoized
//! Swamidass estimators) is the untouched [`BloomCollection`] machinery
//! running over the view.
//!
//! ## Saturation caveat
//!
//! Counters saturate at [`COUNTER_MAX`] and then become **sticky**: a
//! saturated counter is never incremented *or decremented* again, so its
//! derived bit stays set forever. This preserves the no-false-negatives
//! invariant (decrementing a saturated counter could drop a bucket other
//! live elements still need) at the cost of a permanent false positive in
//! that bucket. With [`COUNTER_BITS`] = 4 a bucket saturates only once 15
//! (element, hash) pairs land on it — far beyond the load factor any
//! budget-resolved filter reaches (the expected count per bucket is
//! `b·|X| / B`, and estimators are useless long before it nears 15).
//!
//! Removing an element that was never inserted is a caller bug: it is
//! debug-asserted, and release builds leave zero counters untouched
//! rather than wrapping.

use crate::bloom::BloomCollection;
use crate::cowvec::cow_clear;
use pg_hash::HashFamily;
use pg_parallel::parallel_for;
use std::borrow::Cow;

/// Width of one saturating counter, in bits. 16 counters pack into each
/// 64-bit word — the classic summary-cache choice (Fan et al.).
pub const COUNTER_BITS: usize = 4;

/// Saturation value: a counter that reaches this sticks there forever
/// (see the module docs for why sticky beats wrapping or clamped
/// decrement).
pub const COUNTER_MAX: u64 = (1 << COUNTER_BITS) - 1;

/// Counters per 64-bit word.
const COUNTERS_PER_WORD: usize = 64 / COUNTER_BITS;

/// All per-set counting Bloom filters of a ProbGraph representation:
/// packed per-bucket counters plus the derived [`BloomCollection`] read
/// view (see the module docs for the invariant tying them together).
/// The packed counters are copy-on-write over `'a` (see
/// [`BloomCollectionIn`]): borrowed collections serve a validated
/// snapshot buffer in place, while the derived view — recomputed at load
/// — is always owned bookkeeping.
#[derive(Clone, Debug)]
pub struct CountingBloomCollectionIn<'a> {
    /// The derived insert-only view every estimator reads — a real
    /// `BloomCollection`, so the fused kernels and the memoized Swamidass
    /// table work unchanged.
    view: BloomCollection,
    /// Packed saturating counters, `n_sets × words_per_set` words of
    /// [`COUNTERS_PER_WORD`] counters each (stratified collections store
    /// variable-width windows back to back, addressed by `offsets`).
    counters: Cow<'a, [u64]>,
    /// Counter words per set (`bits_per_set / COUNTERS_PER_WORD`); for
    /// stratified collections this is the **narrowest** stratum's width,
    /// mirroring the view's convention.
    words_per_set: usize,
    /// Counter-word offset of each set's window (`n_sets + 1` entries) —
    /// `Some` only when the view is stratified. Always exactly
    /// `64 / COUNTERS_PER_WORD ×` the view's word offsets, since every
    /// set's counter window packs [`COUNTERS_PER_WORD`] buckets per word.
    offsets: Option<Vec<u64>>,
    /// The seeded hash family — identical to the view's (same `(b, seed)`
    /// construction), kept here so removals can re-derive bucket
    /// sequences without touching the view's private state.
    family: HashFamily,
    bits_per_set: usize,
}

/// The owned (`'static`) form of [`CountingBloomCollectionIn`].
pub type CountingBloomCollection = CountingBloomCollectionIn<'static>;

/// The bucket-occupancy bits of one packed counter word: bit `t` is set
/// iff counter `t` is nonzero — the derived-view invariant, evaluated
/// [`COUNTERS_PER_WORD`] buckets at a time during builds.
#[inline]
fn occupancy_bits(w: u64) -> u64 {
    let mut bits = 0u64;
    for t in 0..COUNTERS_PER_WORD {
        bits |= u64::from((w >> (t * COUNTER_BITS)) & COUNTER_MAX != 0) << t;
    }
    bits
}

/// Saturating increment of counter `pos` inside a packed word window.
/// Returns `true` on the 0 → 1 transition (the derived bit must be set).
#[inline]
fn inc(window: &mut [u64], pos: usize) -> bool {
    let w = &mut window[pos / COUNTERS_PER_WORD];
    let shift = (pos % COUNTERS_PER_WORD) * COUNTER_BITS;
    let c = (*w >> shift) & COUNTER_MAX;
    if c < COUNTER_MAX {
        *w += 1u64 << shift;
    }
    c == 0
}

/// Saturating decrement of counter `pos` inside a packed word window.
/// Returns `true` on the 1 → 0 transition (the derived bit must be
/// cleared). Saturated counters are sticky; zero counters are a caller
/// bug (debug-asserted) and left untouched.
#[inline]
fn dec(window: &mut [u64], pos: usize) -> bool {
    let w = &mut window[pos / COUNTERS_PER_WORD];
    let shift = (pos % COUNTERS_PER_WORD) * COUNTER_BITS;
    let c = (*w >> shift) & COUNTER_MAX;
    debug_assert!(
        c > 0,
        "counting-Bloom removal of an element that was never inserted"
    );
    if c == 0 || c == COUNTER_MAX {
        return false;
    }
    *w -= 1u64 << shift;
    c == 1
}

/// Derives the occupancy view words from packed counters: one view word
/// gathers the occupancy of its 64 buckets from `64 / COUNTERS_PER_WORD`
/// consecutive counter words. Shared by [`CountingBloomCollection::build`]
/// and the snapshot reconstruction path so both produce bit-identical
/// views. Works unchanged over stratified layouts: every per-set window
/// is a whole number of view words (widths are multiples of 64 bits), so
/// the global 4-counter-words-per-view-word grouping never straddles a
/// set boundary.
/// Counter-word offsets of a stratified layout (`n_sets + 1` entries):
/// set `i` owns `stratum_bits[assign[i]] / COUNTERS_PER_WORD` words.
/// Width validity (whole words, power-of-two multiples of the narrowest)
/// is enforced by the derived view's [`crate::BloomStrata`] construction.
fn counter_offsets(stratum_bits: &[u32], assign: &[u8]) -> Vec<u64> {
    let mut offsets = Vec::with_capacity(assign.len() + 1);
    let mut off = 0u64;
    offsets.push(0);
    for &a in assign {
        let bits = stratum_bits[a as usize] as usize;
        assert!(
            bits > 0 && bits.is_multiple_of(64),
            "stratum widths must be positive multiples of 64"
        );
        off += (bits / COUNTERS_PER_WORD) as u64;
        offsets.push(off);
    }
    offsets
}

fn derive_view_words(counters: &[u64], n_view_words: usize) -> Vec<u64> {
    const CW_PER_VIEW_WORD: usize = 64 / COUNTERS_PER_WORD;
    let mut view_words = vec![0u64; n_view_words];
    pg_parallel::parallel_fill_with(&mut view_words, |w| {
        let mut bits = 0u64;
        for j in 0..CW_PER_VIEW_WORD {
            bits |= occupancy_bits(counters[w * CW_PER_VIEW_WORD + j]) << (j * COUNTERS_PER_WORD);
        }
        bits
    });
    view_words
}

impl<'a> CountingBloomCollectionIn<'a> {
    /// Builds filters for `n_sets` sets in parallel. Each set is hashed
    /// **once**, into its counters; the derived view is then one linear
    /// occupancy sweep over the counter words (no second hashing pass),
    /// which makes it bit-identical to [`BloomCollection::build`] with
    /// the same parameters — the counters count exactly the bucket hits
    /// that build would have set. `bits_per_set` is rounded up to a
    /// multiple of 64 (whole view words; counter words pack
    /// [`COUNTERS_PER_WORD`] buckets each).
    pub fn build<'s, F>(n_sets: usize, bits_per_set: usize, b: usize, seed: u64, set: F) -> Self
    where
        F: Fn(usize) -> &'s [u32] + Sync,
    {
        let view_words_per_set = bits_per_set.div_ceil(64).max(1);
        let bits_per_set = view_words_per_set * 64;
        let words_per_set = bits_per_set / COUNTERS_PER_WORD;
        let family = HashFamily::new(b, seed);
        let mut counters = vec![0u64; n_sets * words_per_set];
        {
            struct SendPtr(*mut u64);
            unsafe impl Send for SendPtr {}
            unsafe impl Sync for SendPtr {}
            let base = SendPtr(counters.as_mut_ptr());
            let base = &base;
            let family = &family;
            parallel_for(n_sets, |s| {
                // SAFETY: window [s*wps, (s+1)*wps) is exclusive to set s.
                let window = unsafe {
                    std::slice::from_raw_parts_mut(base.0.add(s * words_per_set), words_per_set)
                };
                for &x in set(s) {
                    family.for_each_bucket(x as u64, bits_per_set, |pos| {
                        inc(window, pos as usize);
                    });
                }
            });
        }
        let view_words = derive_view_words(&counters, n_sets * view_words_per_set);
        CountingBloomCollectionIn {
            view: BloomCollection::from_raw_words(view_words, view_words_per_set, b, seed),
            counters: Cow::Owned(counters),
            words_per_set,
            offsets: None,
            family,
            bits_per_set,
        }
    }

    /// Builds a **stratified** collection: set `i` gets
    /// `stratum_bits[assign[i]]` buckets (and as many counters), windows
    /// stored back to back in set order. Width rules follow
    /// [`crate::BloomStrata`] — whole words, power-of-two multiples of the
    /// narrowest — because the derived read view is a stratified
    /// [`BloomCollection`] and inherits its fold-based cross-stratum
    /// estimators unchanged. With a single stratum this lowers onto
    /// [`CountingBloomCollectionIn::build`] and is bit-identical to it.
    pub fn build_stratified<'s, F>(
        stratum_bits: Vec<u32>,
        assign: Vec<u8>,
        b: usize,
        seed: u64,
        set: F,
    ) -> Self
    where
        F: Fn(usize) -> &'s [u32] + Sync,
    {
        if stratum_bits.len() == 1 {
            return Self::build(assign.len(), stratum_bits[0] as usize, b, seed, set);
        }
        let n_sets = assign.len();
        let offsets = counter_offsets(&stratum_bits, &assign);
        let total_words = offsets[n_sets] as usize;
        let family = HashFamily::new(b, seed);
        let mut counters = vec![0u64; total_words];
        {
            struct SendPtr(*mut u64);
            unsafe impl Send for SendPtr {}
            unsafe impl Sync for SendPtr {}
            let base = SendPtr(counters.as_mut_ptr());
            let base = &base;
            let family = &family;
            let offsets = &offsets;
            let stratum_bits = &stratum_bits;
            let assign_ref = &assign;
            parallel_for(n_sets, |s| {
                let start = offsets[s] as usize;
                let len = (offsets[s + 1] - offsets[s]) as usize;
                let bits = stratum_bits[assign_ref[s] as usize] as usize;
                // SAFETY: offsets are strictly increasing, so each set's
                // window is exclusive to it.
                let window = unsafe { std::slice::from_raw_parts_mut(base.0.add(start), len) };
                for &x in set(s) {
                    family.for_each_bucket(x as u64, bits, |pos| {
                        inc(window, pos as usize);
                    });
                }
            });
        }
        const CW_PER_VIEW_WORD: usize = 64 / COUNTERS_PER_WORD;
        let view_words = derive_view_words(&counters, total_words / CW_PER_VIEW_WORD);
        let view =
            BloomCollection::from_raw_words_stratified(view_words, stratum_bits, assign, b, seed);
        let bits_per_set = view.bits_per_set();
        CountingBloomCollectionIn {
            view,
            counters: Cow::Owned(counters),
            words_per_set: bits_per_set / COUNTERS_PER_WORD,
            offsets: Some(offsets),
            family,
            bits_per_set,
        }
    }

    /// Reconstructs a collection from already-materialized counter words
    /// (the snapshot load path). The derived view is re-derived from the
    /// counters with the same occupancy sweep as [`Self::build`], so the
    /// `counter > 0 ⇔ bit set` invariant holds by construction — a caller
    /// holding an independently persisted view can compare it against
    /// [`Self::read_view`] to detect corruption. `bits_per_set` must be a
    /// multiple of 64 (resolved filter sizes always are) and `counters`
    /// must hold a whole number of per-set windows.
    pub fn from_counter_words(
        counters: impl Into<Cow<'a, [u64]>>,
        bits_per_set: usize,
        b: usize,
        seed: u64,
    ) -> Self {
        let counters = counters.into();
        assert!(
            bits_per_set > 0 && bits_per_set.is_multiple_of(64),
            "bits_per_set must be a positive multiple of 64"
        );
        let words_per_set = bits_per_set / COUNTERS_PER_WORD;
        let view_words_per_set = bits_per_set / 64;
        assert_eq!(
            counters.len() % words_per_set,
            0,
            "counter array must hold whole per-set windows"
        );
        let n_sets = counters.len() / words_per_set;
        let view_words = derive_view_words(&counters, n_sets * view_words_per_set);
        CountingBloomCollectionIn {
            view: BloomCollection::from_raw_words(view_words, view_words_per_set, b, seed),
            counters,
            words_per_set,
            offsets: None,
            family: HashFamily::new(b, seed),
            bits_per_set,
        }
    }

    /// Stratified sibling of
    /// [`CountingBloomCollectionIn::from_counter_words`] — the snapshot
    /// loader reassembles a stratified collection from validated counter
    /// words plus the per-stratum width table and per-set assignment. The
    /// derived view is re-derived from the counters with the same
    /// occupancy sweep as [`CountingBloomCollectionIn::build_stratified`],
    /// so the `counter > 0 ⇔ bit set` invariant holds by construction.
    pub fn from_counter_words_stratified(
        counters: impl Into<Cow<'a, [u64]>>,
        stratum_bits: Vec<u32>,
        assign: impl Into<Cow<'a, [u8]>>,
        b: usize,
        seed: u64,
    ) -> Self {
        let assign = assign.into();
        if stratum_bits.len() == 1 {
            return Self::from_counter_words(counters, stratum_bits[0] as usize, b, seed);
        }
        let counters = counters.into();
        let n_sets = assign.len();
        let offsets = counter_offsets(&stratum_bits, &assign);
        assert_eq!(
            offsets[n_sets] as usize,
            counters.len(),
            "counter array does not match the stratified geometry"
        );
        const CW_PER_VIEW_WORD: usize = 64 / COUNTERS_PER_WORD;
        let view_words = derive_view_words(&counters, counters.len() / CW_PER_VIEW_WORD);
        // The view is always owned bookkeeping (recomputed at load), so the
        // assignment is detached here; the counters stay zero-copy.
        let view = BloomCollection::from_raw_words_stratified(
            view_words,
            stratum_bits,
            assign.into_owned(),
            b,
            seed,
        );
        let bits_per_set = view.bits_per_set();
        CountingBloomCollectionIn {
            view,
            counters,
            words_per_set: bits_per_set / COUNTERS_PER_WORD,
            offsets: Some(offsets),
            family: HashFamily::new(b, seed),
            bits_per_set,
        }
    }

    /// Assembles one collection holding the concatenation of `parts`'
    /// filters, in order — the serving layer's copy-on-publish path. All
    /// parts must share `(bits_per_set, b)` and a common seed; both the
    /// packed counters and the derived views concatenate as straight
    /// memcpys (shards own contiguous vertex ranges), so no re-derivation
    /// sweep runs.
    pub fn gather(parts: &[&CountingBloomCollectionIn<'_>]) -> CountingBloomCollection {
        let first = parts.first().expect("gather needs at least one part");
        let mut out = CountingBloomCollectionIn {
            view: BloomCollection::gather(&parts.iter().map(|p| &p.view).collect::<Vec<_>>()),
            counters: Cow::Owned(Vec::new()),
            words_per_set: first.words_per_set,
            offsets: None,
            family: first.family.clone(),
            bits_per_set: first.bits_per_set,
        };
        out.gather_counters(parts);
        out
    }

    /// In-place form of [`CountingBloomCollection::gather`], reusing
    /// `self`'s counter and view allocations (the double-buffer path).
    pub fn gather_into(&mut self, parts: &[&CountingBloomCollectionIn<'_>]) {
        let views: Vec<&BloomCollection> = parts.iter().map(|p| &p.view).collect();
        self.view.gather_into(&views);
        self.gather_counters(parts);
    }

    fn gather_counters(&mut self, parts: &[&CountingBloomCollectionIn<'_>]) {
        // The view gather just ran and asserted shape compatibility
        // (including per-stratum width tables for stratified parts), so
        // the counter windows — back to back in both layouts — gather as
        // one straight concatenation.
        let counters = cow_clear(&mut self.counters);
        for p in parts {
            if self.view.strata().is_none() {
                assert_eq!(
                    p.words_per_set, self.words_per_set,
                    "gather: mismatched counter widths"
                );
            }
            counters.extend_from_slice(&p.counters);
        }
        self.bits_per_set = self.view.bits_per_set();
        self.words_per_set = self.bits_per_set / COUNTERS_PER_WORD;
        self.offsets = self.view.strata().map(|st| {
            let bits: Vec<u32> = st.stratum_bits().to_vec();
            counter_offsets(&bits, st.assign())
        });
    }

    /// Detaches the collection from any borrowed snapshot buffer, cloning
    /// the counters if they were served in place. No-op for owned data.
    pub fn into_owned(self) -> CountingBloomCollection {
        CountingBloomCollectionIn {
            view: self.view,
            counters: Cow::Owned(self.counters.into_owned()),
            words_per_set: self.words_per_set,
            offsets: self.offsets,
            family: self.family,
            bits_per_set: self.bits_per_set,
        }
    }

    /// Number of **saturated** counters across all sets — buckets stuck at
    /// [`COUNTER_MAX`], which removals can never clear again (sticky
    /// saturation, see the module docs). On long insert/remove windows
    /// this is the drift metric to watch: each saturated bucket behaves
    /// like a plain Bloom bit from then on, so estimates inflate as the
    /// count grows. The `streaming_removal` bench section reports it.
    pub fn saturated_counters(&self) -> usize {
        self.counters
            .iter()
            .map(|&w| {
                (0..COUNTERS_PER_WORD)
                    .filter(|&t| (w >> (t * COUNTER_BITS)) & COUNTER_MAX == COUNTER_MAX)
                    .count()
            })
            .sum()
    }

    /// The derived insert-only read view. Estimators, oracles, and the
    /// fused row kernels read this exactly as they would a plain
    /// [`BloomCollection`]; it stays consistent through every insert and
    /// remove.
    #[inline]
    pub fn read_view(&self) -> &BloomCollection {
        &self.view
    }

    /// Per-set geometry of the derived view when the collection is
    /// stratified; `None` on the uniform fast path. The counter windows
    /// share the view's assignment and widths exactly.
    #[inline]
    pub fn strata(&self) -> Option<&crate::BloomStrata<'static>> {
        self.view.strata()
    }

    /// Number of filters.
    #[inline]
    pub fn len(&self) -> usize {
        self.view.len()
    }

    /// True when the collection holds no filters.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.view.is_empty()
    }

    /// Buckets (= derived-view bits) per filter — for stratified
    /// collections this is the **narrowest** stratum's width, mirroring
    /// the view; use [`CountingBloomCollectionIn::bits_of`] for the width
    /// of a specific set.
    #[inline]
    pub fn bits_per_set(&self) -> usize {
        self.bits_per_set
    }

    /// Buckets (= counters = view bits) of set `i`.
    #[inline]
    pub fn bits_of(&self, i: usize) -> usize {
        self.view.bits_of(i)
    }

    /// Stratum index of set `i` (0 for uniform collections).
    #[inline]
    pub fn stratum_of(&self, i: usize) -> usize {
        self.view.stratum_of(i)
    }

    /// Counter-word range of set `i`'s window.
    #[inline]
    fn cw_range(&self, i: usize) -> std::ops::Range<usize> {
        match &self.offsets {
            Some(off) => off[i] as usize..off[i + 1] as usize,
            None => i * self.words_per_set..(i + 1) * self.words_per_set,
        }
    }

    /// Number of hash functions `b`.
    #[inline]
    pub fn num_hashes(&self) -> usize {
        self.view.num_hashes()
    }

    /// Current value of counter `pos` of set `i` (diagnostics and tests).
    #[inline]
    pub fn counter(&self, i: usize, pos: usize) -> u64 {
        let w = self.counters[self.cw_range(i).start + pos / COUNTERS_PER_WORD];
        (w >> ((pos % COUNTERS_PER_WORD) * COUNTER_BITS)) & COUNTER_MAX
    }

    /// The packed counter words of set `i` (tests compare these against a
    /// from-scratch build).
    #[inline]
    pub fn counter_words(&self, i: usize) -> &[u64] {
        &self.counters[self.cw_range(i)]
    }

    /// The whole flat counter array (`n_sets × words_per_set`) — the
    /// byte-stable payload snapshots persist.
    #[inline]
    pub fn raw_counters(&self) -> &[u64] {
        &self.counters
    }

    /// Inserts one item into filter `i` in place.
    #[inline]
    pub fn insert(&mut self, i: usize, item: u32) {
        self.insert_batch(i, std::slice::from_ref(&item));
    }

    /// Batched per-set insert: increments each item's `b` bucket counters
    /// and sets the derived bit on every 0 → 1 transition. The counter
    /// window is hoisted out of the element loop (the streaming hot path —
    /// updates arrive grouped by source vertex).
    pub fn insert_batch(&mut self, i: usize, xs: &[u32]) {
        let bits = self.view.bits_of(i);
        let range = self.cw_range(i);
        let window = &mut self.counters.to_mut()[range];
        let view = &mut self.view;
        for &x in xs {
            self.family.for_each_bucket(x as u64, bits, |pos| {
                if inc(window, pos as usize) {
                    view.set_bit(i, pos as usize);
                }
            });
        }
    }

    /// Removes one item from filter `i` in place. The item must have been
    /// inserted (counting filters cannot verify membership; removing an
    /// absent element silently corrupts shared buckets — debug builds
    /// assert, release builds refuse to underflow).
    #[inline]
    pub fn remove(&mut self, i: usize, item: u32) {
        self.remove_batch(i, std::slice::from_ref(&item));
    }

    /// Batched per-set removal: decrements each item's `b` bucket counters
    /// and clears the derived bit on every 1 → 0 transition — the exact
    /// mirror of [`CountingBloomCollection::insert_batch`] over the same
    /// deterministic bucket sequence. Saturated counters stay sticky (see
    /// the module docs).
    pub fn remove_batch(&mut self, i: usize, xs: &[u32]) {
        let bits = self.view.bits_of(i);
        let range = self.cw_range(i);
        let window = &mut self.counters.to_mut()[range];
        let view = &mut self.view;
        for &x in xs {
            self.family.for_each_bucket(x as u64, bits, |pos| {
                if dec(window, pos as usize) {
                    view.clear_bit(i, pos as usize);
                }
            });
        }
    }

    /// Membership query against filter `i` — no false negatives for
    /// elements inserted and not removed.
    #[inline]
    pub fn contains(&self, i: usize, item: u32) -> bool {
        self.view.contains(i, item)
    }

    /// Bytes of sketch storage: the packed counters plus the derived view
    /// — both charged against the paper's budget `s`
    /// ([`crate::BudgetPlan::counting_bloom`] deducts the counter width up
    /// front).
    pub fn memory_bytes(&self) -> usize {
        self.view.memory_bytes() + self.counters.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sets(n: usize) -> Vec<Vec<u32>> {
        (0..n)
            .map(|s| (0..40 + s * 9).map(|i| (i * 31 + s) as u32).collect())
            .collect()
    }

    #[test]
    fn view_matches_plain_bloom_build() {
        let sets = sets(12);
        let cbf = CountingBloomCollection::build(sets.len(), 768, 2, 13, |i| &sets[i][..]);
        let plain = BloomCollection::build(sets.len(), 768, 2, 13, |i| &sets[i][..]);
        for (i, set) in sets.iter().enumerate() {
            assert_eq!(cbf.read_view().words(i), plain.words(i), "set {i}");
            assert_eq!(cbf.read_view().count_ones(i), plain.count_ones(i));
            for &x in set {
                assert!(cbf.contains(i, x));
            }
        }
        // Estimator path is the untouched BloomCollection machinery.
        assert_eq!(cbf.read_view().estimate_and(0, 1), plain.estimate_and(0, 1));
    }

    #[test]
    fn counters_count_bucket_hits() {
        let xs: Vec<u32> = (0..30).collect();
        let cbf = CountingBloomCollection::build(1, 256, 2, 7, |_| &xs[..]);
        // Total counter mass equals the number of (element, hash) pairs
        // (no bucket reached saturation at this load factor).
        let total: u64 = (0..cbf.bits_per_set()).map(|p| cbf.counter(0, p)).sum();
        assert_eq!(total, (xs.len() * cbf.num_hashes()) as u64);
        // Derived invariant: bit set ⇔ counter > 0.
        for pos in 0..cbf.bits_per_set() {
            assert_eq!(
                cbf.counter(0, pos) > 0,
                cbf.read_view().words(0)[pos / 64] >> (pos % 64) & 1 == 1,
                "pos {pos}"
            );
        }
    }

    #[test]
    fn remove_everything_leaves_empty_filter() {
        let xs: Vec<u32> = (0..80).map(|i| i * 7 + 3).collect();
        let mut cbf = CountingBloomCollection::build(1, 512, 3, 5, |_| &xs[..]);
        cbf.remove_batch(0, &xs);
        assert_eq!(cbf.read_view().count_ones(0), 0);
        assert!(cbf.read_view().words(0).iter().all(|&w| w == 0));
        assert!(cbf.counter_words(0).iter().all(|&w| w == 0));
    }

    #[test]
    fn interleaved_insert_remove_matches_survivor_build() {
        let all: Vec<u32> = (0..120).map(|i| i * 13 + 1).collect();
        let mut cbf = CountingBloomCollection::build(1, 1024, 2, 9, |_| &all[..60]);
        // Insert the back half one by one, then remove every third element
        // of the front half, interleaved.
        for (t, &x) in all[60..].iter().enumerate() {
            cbf.insert(0, x);
            if t % 3 == 0 {
                cbf.remove(0, all[t]);
            }
        }
        let live: Vec<u32> = (0..all.len())
            .filter(|&t| !(t < 60 && t % 3 == 0))
            .map(|t| all[t])
            .collect();
        let rebuilt = CountingBloomCollection::build(1, 1024, 2, 9, |_| &live[..]);
        assert_eq!(cbf.read_view().words(0), rebuilt.read_view().words(0));
        assert_eq!(
            cbf.read_view().count_ones(0),
            rebuilt.read_view().count_ones(0)
        );
        assert_eq!(cbf.counter_words(0), rebuilt.counter_words(0));
    }

    #[test]
    fn saturated_counters_are_sticky_and_safe() {
        // 64 buckets, b = 2, 600 distinct elements: every bucket blows
        // far past COUNTER_MAX.
        let xs: Vec<u32> = (0..600).collect();
        let mut cbf = CountingBloomCollection::build(1, 64, 2, 3, |_| &xs[..]);
        assert!(
            (0..64).any(|p| cbf.counter(0, p) == COUNTER_MAX),
            "load factor should saturate at least one counter"
        );
        // Removing everything must neither underflow nor produce a false
        // negative for the (empty) surviving set; sticky buckets keep
        // their bits, non-saturated ones drain to zero.
        cbf.remove_batch(0, &xs);
        for p in 0..64 {
            let c = cbf.counter(0, p);
            assert!(c == 0 || c == COUNTER_MAX, "pos {p}: counter {c}");
            assert_eq!(c > 0, cbf.read_view().words(0)[p / 64] >> (p % 64) & 1 == 1);
        }
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "never inserted")]
    fn removing_absent_element_is_a_caller_bug() {
        let xs: Vec<u32> = (0..10).collect();
        let mut cbf = CountingBloomCollection::build(1, 4096, 2, 3, |_| &xs[..]);
        // 4096 buckets for 10 elements: element 9999's buckets are almost
        // surely untouched, so the zero-counter debug assertion fires.
        cbf.remove(0, 9999);
    }

    #[test]
    fn parallel_build_deterministic() {
        let sets: Vec<Vec<u32>> = (0..60)
            .map(|s| (0..150).map(|i| (i * 17 + s * 3) as u32).collect())
            .collect();
        let a = pg_parallel::with_threads(1, || {
            CountingBloomCollection::build(60, 512, 2, 9, |i| &sets[i][..])
        });
        let b = pg_parallel::with_threads(8, || {
            CountingBloomCollection::build(60, 512, 2, 9, |i| &sets[i][..])
        });
        for i in 0..60 {
            assert_eq!(a.counter_words(i), b.counter_words(i));
            assert_eq!(a.read_view().words(i), b.read_view().words(i));
        }
    }

    #[test]
    fn one_stratum_build_is_bit_identical_to_uniform() {
        let sets = sets(10);
        let uniform = CountingBloomCollection::build(sets.len(), 512, 2, 21, |i| &sets[i][..]);
        let strat = CountingBloomCollection::build_stratified(
            vec![512],
            vec![0u8; sets.len()],
            2,
            21,
            |i| &sets[i][..],
        );
        assert!(strat.strata().is_none(), "one stratum lowers to uniform");
        assert_eq!(uniform.raw_counters(), strat.raw_counters());
        for i in 0..sets.len() {
            assert_eq!(uniform.read_view().words(i), strat.read_view().words(i));
        }
        let loaded = CountingBloomCollection::from_counter_words_stratified(
            uniform.raw_counters().to_vec(),
            vec![512],
            vec![0u8; sets.len()],
            2,
            21,
        );
        assert!(loaded.strata().is_none());
        assert_eq!(loaded.raw_counters(), uniform.raw_counters());
    }

    #[test]
    fn stratified_build_matches_per_stratum_uniform_builds() {
        let sets = sets(9);
        let bits = vec![256u32, 128, 64];
        let assign: Vec<u8> = (0..9).map(|i| (i % 3) as u8).collect();
        let strat =
            CountingBloomCollection::build_stratified(bits.clone(), assign.clone(), 2, 5, |i| {
                &sets[i][..]
            });
        // Each set's counters and view bits equal a single-set uniform
        // build at that set's width — same (b, seed) bucket sequence.
        for (i, set) in sets.iter().enumerate() {
            let w = bits[assign[i] as usize] as usize;
            assert_eq!(strat.bits_of(i), w);
            let solo = CountingBloomCollection::build(1, w, 2, 5, |_| &set[..]);
            assert_eq!(strat.counter_words(i), solo.counter_words(0), "set {i}");
            assert_eq!(strat.read_view().words(i), solo.read_view().words(0));
            for &x in set {
                assert!(strat.contains(i, x));
            }
        }
        // The view is a real stratified BloomCollection: its fold-based
        // cross-stratum estimators run unchanged on top of the counters.
        let plain = pg_sketch_bloom_build(&bits, &assign, &sets);
        for i in 0..9 {
            for j in 0..9 {
                assert_eq!(
                    strat.read_view().estimate_and(i, j),
                    plain.estimate_and(i, j),
                    "({i},{j})"
                );
            }
        }
        // Snapshot round-trip re-derives the identical view.
        let loaded = CountingBloomCollection::from_counter_words_stratified(
            strat.raw_counters().to_vec(),
            bits,
            assign,
            2,
            5,
        );
        assert_eq!(loaded.raw_counters(), strat.raw_counters());
        for i in 0..9 {
            assert_eq!(loaded.read_view().words(i), strat.read_view().words(i));
        }
    }

    fn pg_sketch_bloom_build(
        bits: &[u32],
        assign: &[u8],
        sets: &[Vec<u32>],
    ) -> crate::BloomCollection {
        crate::BloomCollection::build_stratified(bits.to_vec(), assign.to_vec(), 2, 5, |i| {
            &sets[i][..]
        })
    }

    #[test]
    fn stratified_insert_remove_matches_survivor_rebuild() {
        let all: Vec<Vec<u32>> = (0..6)
            .map(|s| (0..90).map(|i| (i * 13 + s * 7 + 1) as u32).collect())
            .collect();
        let bits = vec![512u32, 128];
        let assign: Vec<u8> = (0..6).map(|i| (i % 2) as u8).collect();
        // Start from the front halves, then stream in the back halves and
        // remove every third front element, mixing batch and scalar ops.
        let mut cbf =
            CountingBloomCollection::build_stratified(bits.clone(), assign.clone(), 2, 9, |i| {
                &all[i][..45]
            });
        for (i, set) in all.iter().enumerate() {
            if i % 2 == 0 {
                cbf.insert_batch(i, &set[45..]);
            } else {
                for &x in &set[45..] {
                    cbf.insert(i, x);
                }
            }
            for (t, &x) in set[..45].iter().enumerate() {
                if t % 3 == 0 {
                    cbf.remove(i, x);
                }
            }
        }
        let live: Vec<Vec<u32>> = all
            .iter()
            .map(|set| {
                (0..set.len())
                    .filter(|&t| !(t < 45 && t % 3 == 0))
                    .map(|t| set[t])
                    .collect()
            })
            .collect();
        let rebuilt =
            CountingBloomCollection::build_stratified(bits, assign, 2, 9, |i| &live[i][..]);
        for i in 0..6 {
            assert_eq!(cbf.counter_words(i), rebuilt.counter_words(i), "set {i}");
            assert_eq!(cbf.read_view().words(i), rebuilt.read_view().words(i));
            assert_eq!(
                cbf.read_view().count_ones(i),
                rebuilt.read_view().count_ones(i)
            );
        }
    }

    #[test]
    fn stratified_gather_concatenates_parts() {
        let sets = sets(8);
        let bits = vec![256u32, 64];
        let build_part = |range: std::ops::Range<usize>| {
            let assign: Vec<u8> = range.clone().map(|i| (i % 2) as u8).collect();
            CountingBloomCollection::build_stratified(bits.clone(), assign, 3, 11, |i| {
                &sets[range.start + i][..]
            })
        };
        let a = build_part(0..5);
        let b = build_part(5..8);
        let gathered = CountingBloomCollection::gather(&[&a, &b]);
        let assign: Vec<u8> = (0..8).map(|i| (i % 2) as u8).collect();
        let whole =
            CountingBloomCollection::build_stratified(bits, assign, 3, 11, |i| &sets[i][..]);
        assert_eq!(gathered.raw_counters(), whole.raw_counters());
        for i in 0..8 {
            assert_eq!(gathered.counter_words(i), whole.counter_words(i));
            assert_eq!(gathered.read_view().words(i), whole.read_view().words(i));
        }
    }

    #[test]
    fn memory_accounts_counters_and_view() {
        let xs = [1u32, 2, 3];
        let cbf = CountingBloomCollection::build(1, 128, 1, 1, |_| &xs[..]);
        // 128 buckets: 16 view bytes + 128 * 4 / 8 = 64 counter bytes.
        assert_eq!(cbf.memory_bytes(), 16 + 64);
    }
}
