//! Copy-on-write storage plumbing shared by the sketch collections.
//!
//! Every collection stores its flat arrays as `Cow<'a, [T]>` so a
//! validated snapshot buffer (a received exchange frame, an mmapped file)
//! can back a collection **in place** — the borrowed variant — while all
//! existing owned construction keeps its `Vec`-based paths through
//! `Cow::Owned`. The `'static` aliases (`BloomCollection`, …) are exactly
//! the owned collections the rest of the crate always had.

use std::borrow::Cow;

/// Resets a copy-on-write buffer to an empty owned vector, reusing the
/// existing allocation when the buffer is already owned. The gather /
/// double-buffer paths clear-and-refill through this so steady-state
/// publishes stay allocation-free; a borrowed buffer is simply dropped
/// (it was never this collection's to grow).
pub(crate) fn cow_clear<'c, 'a, T: Clone>(c: &'c mut Cow<'a, [T]>) -> &'c mut Vec<T> {
    if matches!(c, Cow::Borrowed(_)) {
        *c = Cow::Owned(Vec::new());
    }
    match c {
        Cow::Owned(v) => {
            v.clear();
            v
        }
        Cow::Borrowed(_) => unreachable!("just replaced with Owned"),
    }
}
