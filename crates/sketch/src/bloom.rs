//! Bloom filters (§II-D) and the flat per-vertex collection ProbGraph
//! builds over all neighborhoods.
//!
//! Every filter in a [`BloomCollection`] has the **same** bit length — that
//! is the paper's central load-balancing trick (Fig. 1, panel 5): every
//! neighborhood intersection costs exactly `B/W` word-AND operations, no
//! matter how skewed the degrees are.
//!
//! ## Zero-allocation hot paths
//!
//! Three things keep the per-edge estimator cost at "a handful of word-AND
//! + popcount operations", as the paper's speedup model assumes:
//!
//! 1. **Batched hashing** — insertion and membership compute all `b` bucket
//!    indices of a key in one [`HashFamily::buckets_into`] call (key-side
//!    Murmur mixing hoisted, chains unrolled) into a stack buffer.
//! 2. **Cached popcounts** — `B_{X,1}` of every filter is computed once at
//!    build time ([`BloomFilter`] maintains it incrementally, the
//!    collection popcounts each freshly written, cache-hot window), so no
//!    estimator ever re-counts a static sketch.
//! 3. **Fused pair kernels** — with `B_{X,1}`/`B_{Y,1}` cached, one fused
//!    AND+popcount traversal yields `B_{X∩Y,1}` directly and `B_{X∪Y,1}`
//!    via `B_{X∪Y,1} = B_{X,1} + B_{Y,1} − B_{X∩Y,1}`, so the AND, Limit,
//!    *and* OR estimators all cost a single pass per edge.

use crate::bitvec::{
    and_count_words, and_count_words_multi, and_count_words_tiled, count_ones_words,
    or_count_words, BitVec, PairOnes,
};
use crate::cowvec::cow_clear;
use crate::estimators;
use pg_hash::HashFamily;
use pg_parallel::parallel_for;
use std::borrow::Cow;

/// Upper bound on `b` so bucket batches fit a stack buffer. The paper finds
/// `b ∈ {1, 2}` best and never evaluates past 4; 16 leaves generous slack.
pub const MAX_BLOOM_HASHES: usize = 16;

/// All three Bloom intersection estimates of one pair, from one fused pass.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BfPairEstimates {
    /// `|X∩Y|̂_AND` (Eq. 2).
    pub and_est: f64,
    /// `|X∩Y|̂_L` (Eq. 4).
    pub limit_est: f64,
    /// `|X∩Y|̂_OR` (Eq. 29).
    pub or_est: f64,
}

/// A standalone Bloom filter over `u32` items with `b` hash functions.
#[derive(Clone, Debug)]
pub struct BloomFilter {
    bits: BitVec,
    family: HashFamily,
    /// Incrementally maintained popcount (`B_{X,1}`); filters are
    /// insert-only, so every newly set bit bumps it by one.
    ones: usize,
}

impl BloomFilter {
    /// An empty filter of `bits` bits with `b` seeded hash functions.
    pub fn new(bits: usize, b: usize, seed: u64) -> Self {
        assert!(bits > 0, "Bloom filter needs at least one bit");
        assert!(b > 0, "Bloom filter needs at least one hash function");
        assert!(
            b <= MAX_BLOOM_HASHES,
            "Bloom filter supports at most {MAX_BLOOM_HASHES} hash functions"
        );
        BloomFilter {
            bits: BitVec::zeros(bits),
            family: HashFamily::new(b, seed),
            ones: 0,
        }
    }

    /// Builds a filter directly from a set of items.
    pub fn from_set(items: &[u32], bits: usize, b: usize, seed: u64) -> Self {
        let mut f = Self::new(bits, b, seed);
        for &x in items {
            f.insert(x);
        }
        f
    }

    /// Inserts one item (sets its `b` bits; all buckets batched into one
    /// streaming hash call — key-side mixing computed once per item).
    #[inline]
    pub fn insert(&mut self, item: u32) {
        let bits = &mut self.bits;
        let ones = &mut self.ones;
        self.family
            .for_each_bucket(item as u64, bits.len_bits(), |pos| {
                *ones += usize::from(bits.set_new(pos as usize));
            });
    }

    /// Membership query; false positives possible, false negatives not.
    #[inline]
    pub fn contains(&self, item: u32) -> bool {
        let mut buf = [0u32; MAX_BLOOM_HASHES];
        let b = self.family.len();
        self.family
            .buckets_into(item as u64, self.bits.len_bits(), &mut buf[..b]);
        buf[..b].iter().all(|&pos| self.bits.get(pos as usize))
    }

    /// Number of hash functions `b`.
    #[inline]
    pub fn num_hashes(&self) -> usize {
        self.family.len()
    }

    /// Filter size in bits (`B_X`).
    #[inline]
    pub fn len_bits(&self) -> usize {
        self.bits.len_bits()
    }

    /// Number of set bits (`B_{X,1}`) — cached, `O(1)`.
    #[inline]
    pub fn count_ones(&self) -> usize {
        debug_assert_eq!(self.ones, self.bits.count_ones());
        self.ones
    }

    /// The underlying bit vector.
    #[inline]
    pub fn bits(&self) -> &BitVec {
        &self.bits
    }

    /// Single-set cardinality estimate `|X|̂_S` (Eq. 1).
    pub fn estimate_size(&self) -> f64 {
        estimators::bf_size_swamidass(self.count_ones(), self.len_bits(), self.num_hashes())
    }

    /// `|X∩Y|̂_AND` (Eq. 2) against another filter built with the same
    /// parameters and seed.
    pub fn estimate_intersection_and(&self, other: &BloomFilter) -> f64 {
        estimators::bf_intersect_and(
            self.bits.and_count(&other.bits),
            self.len_bits(),
            self.num_hashes(),
        )
    }

    /// `|X∩Y|̂_L` (Eq. 4).
    pub fn estimate_intersection_limit(&self, other: &BloomFilter) -> f64 {
        estimators::bf_intersect_limit(self.bits.and_count(&other.bits), self.num_hashes())
    }

    /// `|X∩Y|̂_OR` (Eq. 29); needs the exact set sizes. Costs one fused
    /// AND pass: `B_{X∪Y,1}` is recovered from the cached single-filter
    /// popcounts via inclusion–exclusion.
    pub fn estimate_intersection_or(&self, other: &BloomFilter, nx: usize, ny: usize) -> f64 {
        let and_ones = self.bits.and_count(&other.bits);
        let or_ones = self.ones + other.ones - and_ones;
        estimators::bf_intersect_or(or_ones, self.len_bits(), self.num_hashes(), nx, ny)
    }

    /// All three intersection estimators from **one** fused pass over the
    /// pair (plus the cached popcounts).
    pub fn estimate_intersection_all(
        &self,
        other: &BloomFilter,
        nx: usize,
        ny: usize,
    ) -> BfPairEstimates {
        let and_ones = self.bits.and_count(&other.bits);
        let or_ones = self.ones + other.ones - and_ones;
        let (bits, b) = (self.len_bits(), self.num_hashes());
        BfPairEstimates {
            and_est: estimators::bf_intersect_and(and_ones, bits, b),
            limit_est: estimators::bf_intersect_limit(and_ones, b),
            or_est: estimators::bf_intersect_or(or_ones, bits, b, nx, ny),
        }
    }
}

/// All per-set Bloom filters of a ProbGraph representation, stored in one
/// flat word array (`n_sets × words_per_set`).
///
/// The word array is copy-on-write over `'a`: the owned alias
/// [`BloomCollection`] is the ordinary built/streamed form, while a
/// borrowed `BloomCollectionIn<'buf>` serves estimates directly out of a
/// validated snapshot buffer (the zero-copy exchange/mmap load path).
/// Mutation of a borrowed collection clones the words first (`Cow`
/// semantics); the cached popcounts are always owned bookkeeping.
#[derive(Clone, Debug)]
pub struct BloomCollectionIn<'a> {
    data: Cow<'a, [u64]>,
    words_per_set: usize,
    bits_per_set: usize,
    b: usize,
    family: HashFamily,
    /// Cached `B_{X,1}` per filter, popcounted at build time while each
    /// window is still cache-hot. Bookkeeping like the callers' size
    /// arrays — not charged against the sketch budget.
    ones: Vec<u32>,
    /// Memoized Swamidass curve: `swami[o] = −(B/b)·ln(1 − o/B)` for every
    /// possible popcount `o ∈ 0..=B`. For a fixed collection the AND
    /// estimator (Eq. 2) is `swami[and_ones]` and the OR estimator (Eq. 29)
    /// is `nx + ny − swami[or_ones]`, so the per-edge `ln` (≈ half the cost
    /// of a fused AND pass) becomes one L2 load. Skipped for huge filters
    /// where the table would not stay cache-resident.
    swami: Option<Vec<f64>>,
}

/// The owned (`'static`) form of [`BloomCollectionIn`] — what builds,
/// streaming updates, and the copying snapshot loader produce.
pub type BloomCollection = BloomCollectionIn<'static>;

/// Largest `B` for which the Swamidass table is materialized (512 KiB of
/// `f64`; per-neighborhood budgets are orders of magnitude below this).
const MAX_SWAMI_TABLE_BITS: usize = 1 << 16;

/// Memoized Swamidass curve for `bits_per_set`-bit filters with `b` hash
/// functions; `None` when the table would not stay cache-resident.
fn make_swami(bits_per_set: usize, b: usize) -> Option<Vec<f64>> {
    (bits_per_set <= MAX_SWAMI_TABLE_BITS).then(|| {
        pg_parallel::parallel_init(bits_per_set + 1, |o| {
            estimators::bf_size_swamidass(o, bits_per_set, b)
        })
    })
}

impl<'a> BloomCollectionIn<'a> {
    /// Builds filters for `n_sets` sets in parallel. `set(i)` must return
    /// the i-th input set; it is called once per set, from worker threads.
    ///
    /// `bits_per_set` is rounded up to a multiple of 64 so each filter owns
    /// whole words.
    pub fn build<'s, F>(n_sets: usize, bits_per_set: usize, b: usize, seed: u64, set: F) -> Self
    where
        F: Fn(usize) -> &'s [u32] + Sync,
    {
        assert!(b > 0, "need at least one hash function");
        assert!(
            b <= MAX_BLOOM_HASHES,
            "at most {MAX_BLOOM_HASHES} hash functions supported"
        );
        let words_per_set = bits_per_set.div_ceil(64).max(1);
        let bits_per_set = words_per_set * 64;
        let family = HashFamily::new(b, seed);
        let mut data = vec![0u64; n_sets * words_per_set];
        let mut ones = vec![0u32; n_sets];
        {
            struct SendPtr<T>(*mut T);
            unsafe impl<T> Send for SendPtr<T> {}
            unsafe impl<T> Sync for SendPtr<T> {}
            let base = SendPtr(data.as_mut_ptr());
            let base = &base;
            let ones_base = SendPtr(ones.as_mut_ptr());
            let ones_base = &ones_base;
            let family = &family;
            parallel_for(n_sets, |s| {
                // SAFETY: window [s*wps, (s+1)*wps) is exclusive to set s.
                let window = unsafe {
                    std::slice::from_raw_parts_mut(base.0.add(s * words_per_set), words_per_set)
                };
                for &x in set(s) {
                    family.for_each_bucket(x as u64, bits_per_set, |pos| {
                        // SAFETY: the Lemire reduction in `for_each_bucket`
                        // yields pos < bits_per_set = window.len() * 64, so
                        // pos/64 is in bounds. (The checked form costs ~20 %
                        // of construction: the bound is runtime here, so
                        // LLVM cannot elide the check itself.)
                        unsafe {
                            *window.get_unchecked_mut(pos as usize / 64) |= 1u64 << (pos % 64);
                        }
                    });
                }
                // Popcount the freshly written, cache-hot window once so no
                // estimator ever has to re-count a static sketch.
                // SAFETY: slot s is exclusive to set s.
                unsafe { *ones_base.0.add(s) = count_ones_words(window) as u32 };
            });
        }
        BloomCollectionIn {
            data: Cow::Owned(data),
            words_per_set,
            bits_per_set,
            b,
            family,
            ones,
            swami: make_swami(bits_per_set, b),
        }
    }

    /// Assembles a collection around already-materialized filter words —
    /// the counting-Bloom sibling derives its view bits from the counters
    /// in one linear sweep instead of re-hashing every set through a
    /// second [`BloomCollection::build`], and snapshot loads reconstruct
    /// collections from validated on-disk word arrays. The cached
    /// popcounts are computed here, in parallel; `data` must hold a whole
    /// number of `words_per_set` windows whose bits were produced by the
    /// same `(b, seed)` bucket sequence this collection will hash with.
    /// Accepts either an owned `Vec<u64>` or a borrowed `&'a [u64]` (the
    /// zero-copy snapshot load serves filters straight from the buffer).
    pub fn from_raw_words(
        data: impl Into<Cow<'a, [u64]>>,
        words_per_set: usize,
        b: usize,
        seed: u64,
    ) -> Self {
        let data = data.into();
        assert!(b > 0, "need at least one hash function");
        assert!(
            b <= MAX_BLOOM_HASHES,
            "at most {MAX_BLOOM_HASHES} hash functions supported"
        );
        assert!(words_per_set > 0, "filters own at least one word");
        debug_assert_eq!(data.len() % words_per_set, 0);
        let bits_per_set = words_per_set * 64;
        let n_sets = data.len() / words_per_set;
        let mut ones = vec![0u32; n_sets];
        pg_parallel::parallel_fill_with(&mut ones, |i| {
            count_ones_words(&data[i * words_per_set..(i + 1) * words_per_set]) as u32
        });
        BloomCollectionIn {
            data,
            words_per_set,
            bits_per_set,
            b,
            family: HashFamily::new(b, seed),
            ones,
            swami: make_swami(bits_per_set, b),
        }
    }

    /// Assembles one collection holding the concatenation of `parts`'
    /// filters, in order — the copy-on-publish path of the sharded serving
    /// layer, where each part is one shard's contiguous vertex range. All
    /// parts must share the filter shape `(words_per_set, b)` and have
    /// been built under the same seed (the families are not comparable at
    /// runtime; the serving layer constructs every shard from one config).
    pub fn gather(parts: &[&BloomCollectionIn<'_>]) -> BloomCollection {
        let first = parts.first().expect("gather needs at least one part");
        let mut out = BloomCollectionIn {
            data: Cow::Owned(Vec::new()),
            words_per_set: first.words_per_set,
            bits_per_set: first.bits_per_set,
            b: first.b,
            family: first.family.clone(),
            ones: Vec::new(),
            swami: first.swami.clone(),
        };
        out.gather_into(parts);
        out
    }

    /// In-place form of [`BloomCollection::gather`]: overwrites `self`
    /// with the concatenation of `parts`, reusing `self`'s allocations —
    /// the double-buffer path, fed by snapshots reclaimed from the epoch
    /// cell. `self` must share the parts' filter shape; the word and
    /// popcount arrays are straight memcpys, so a publish costs one linear
    /// pass over the store and re-hashes nothing.
    pub fn gather_into(&mut self, parts: &[&BloomCollectionIn<'_>]) {
        let data = cow_clear(&mut self.data);
        self.ones.clear();
        for p in parts {
            assert_eq!(
                p.words_per_set, self.words_per_set,
                "gather: mismatched filter widths"
            );
            assert_eq!(p.b, self.b, "gather: mismatched hash counts");
            data.extend_from_slice(&p.data);
            self.ones.extend_from_slice(&p.ones);
        }
    }

    /// Detaches the collection from any borrowed snapshot buffer, cloning
    /// the word array if it was served in place. No-op for owned data.
    pub fn into_owned(self) -> BloomCollection {
        BloomCollectionIn {
            data: Cow::Owned(self.data.into_owned()),
            words_per_set: self.words_per_set,
            bits_per_set: self.bits_per_set,
            b: self.b,
            family: self.family,
            ones: self.ones,
            swami: self.swami,
        }
    }

    /// Number of filters.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len().checked_div(self.words_per_set).unwrap_or(0)
    }

    /// True when the collection holds no filters.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bits per filter (`B_X`, identical for every set by design).
    #[inline]
    pub fn bits_per_set(&self) -> usize {
        self.bits_per_set
    }

    /// Number of hash functions `b`.
    #[inline]
    pub fn num_hashes(&self) -> usize {
        self.b
    }

    /// Words per filter (`bits_per_set / 64`).
    #[inline]
    pub fn words_per_set(&self) -> usize {
        self.words_per_set
    }

    /// The word window of filter `i`.
    #[inline]
    pub fn words(&self, i: usize) -> &[u64] {
        &self.data[i * self.words_per_set..(i + 1) * self.words_per_set]
    }

    /// The whole flat word array (`n_sets × words_per_set`) — the
    /// byte-stable payload snapshots persist.
    #[inline]
    pub fn raw_words(&self) -> &[u64] {
        &self.data
    }

    /// The cached per-filter popcounts, in set order. Snapshots persist
    /// these alongside the words and cross-check them against freshly
    /// recomputed popcounts on load.
    #[inline]
    pub fn raw_ones(&self) -> &[u32] {
        &self.ones
    }

    /// Popcount of filter `i` — cached at build time, `O(1)`.
    #[inline]
    pub fn count_ones(&self, i: usize) -> usize {
        debug_assert_eq!(self.ones[i] as usize, count_ones_words(self.words(i)));
        self.ones[i] as usize
    }

    /// Inserts one item into filter `i` in place, maintaining the cached
    /// popcount incrementally (each freshly set bit bumps it by one) —
    /// Bloom filters are naturally insert-only, so a streamed edge costs
    /// exactly `b` bucket probes, same as at build time.
    #[inline]
    pub fn insert(&mut self, i: usize, item: u32) {
        self.insert_batch(i, std::slice::from_ref(&item));
    }

    /// Batched per-set insert: absorbs all of `xs` into filter `i` with
    /// the word window and popcount delta hoisted out of the element loop
    /// (the streaming hot path — updates arrive grouped by source vertex).
    pub fn insert_batch(&mut self, i: usize, xs: &[u32]) {
        let window = &mut self.data.to_mut()[i * self.words_per_set..(i + 1) * self.words_per_set];
        let mut added = 0u32;
        for &x in xs {
            self.family
                .for_each_bucket(x as u64, self.bits_per_set, |pos| {
                    let w = &mut window[pos as usize / 64];
                    let bit = 1u64 << (pos % 64);
                    added += u32::from(*w & bit == 0);
                    *w |= bit;
                });
        }
        self.ones[i] += added;
    }

    /// Sets bucket bit `pos` of filter `i` directly (no hashing),
    /// maintaining the cached popcount. Crate-internal hook for
    /// [`crate::CountingBloomCollection`], whose counters decide *when* a
    /// derived bit flips; everyone else inserts elements.
    #[inline]
    pub(crate) fn set_bit(&mut self, i: usize, pos: usize) {
        debug_assert!(pos < self.bits_per_set);
        let w = &mut self.data.to_mut()[i * self.words_per_set + pos / 64];
        let bit = 1u64 << (pos % 64);
        self.ones[i] += u32::from(*w & bit == 0);
        *w |= bit;
    }

    /// Clears bucket bit `pos` of filter `i` directly, maintaining the
    /// cached popcount. Counterpart of [`BloomCollection::set_bit`]; only
    /// the counting-Bloom sibling may clear bits (a plain Bloom filter is
    /// insert-only by construction).
    #[inline]
    pub(crate) fn clear_bit(&mut self, i: usize, pos: usize) {
        debug_assert!(pos < self.bits_per_set);
        let w = &mut self.data.to_mut()[i * self.words_per_set + pos / 64];
        let bit = 1u64 << (pos % 64);
        self.ones[i] -= u32::from(*w & bit != 0);
        *w &= !bit;
    }

    /// Membership query against filter `i` (buckets batched).
    pub fn contains(&self, i: usize, item: u32) -> bool {
        let w = self.words(i);
        let mut buf = [0u32; MAX_BLOOM_HASHES];
        self.family
            .buckets_into(item as u64, self.bits_per_set, &mut buf[..self.b]);
        buf[..self.b]
            .iter()
            .all(|&pos| (w[pos as usize / 64] >> (pos % 64)) & 1 == 1)
    }

    /// `B_{X∩Y,1}`: fused AND+popcount of filters `i` and `j` — the `O(B/W)`
    /// kernel of Table IV.
    #[inline]
    pub fn and_ones(&self, i: usize, j: usize) -> usize {
        and_count_words(self.words(i), self.words(j))
    }

    /// `B_{X∪Y,1}`: fused OR+popcount.
    #[inline]
    pub fn or_ones(&self, i: usize, j: usize) -> usize {
        or_count_words(self.words(i), self.words(j))
    }

    /// Multi-lane `B_{X∩Y,1}`: one word-window pass ANDs the pinned source
    /// `row` (a filter's word window, usually hoisted once per vertex)
    /// against `L` destination filters with independent popcount
    /// accumulators — `out[l] == and_count_words(row, self.words(js[l]))`
    /// exactly, for every lane count. This is the batched-estimation hot
    /// path: source-word loads amortize over `L` destinations and the `L`
    /// reduction chains pipeline at full `vpopcnt` issue width.
    #[inline]
    pub fn and_ones_multi<const L: usize>(&self, row: &[u64], js: [usize; L]) -> [usize; L] {
        and_count_words_multi(row, js.map(|j| self.words(j)))
    }

    /// Tiled multi-lane `B_{X∩Y,1}`: ANDs the pinned source `row` against
    /// the destination filters `js` (one source's in-tile destination ids),
    /// invoking `emit(t, and_ones)` per destination in `js` order. The
    /// blocked row sweep calls this once per (source, tile) segment with
    /// `prefetch_dist = 0` (the tile is cache-resident across the source
    /// batch); the flat full-row sweep passes
    /// [`crate::bitvec::prefetch_distance`] so L2 fills overlap the
    /// popcounts. Counts are bit-identical to [`BloomCollection::and_ones`]
    /// for any tiling (see [`crate::bitvec::and_count_words_tiled`]).
    #[inline]
    pub fn and_ones_tiled<F: FnMut(usize, usize)>(
        &self,
        row: &[u64],
        js: &[u32],
        prefetch_dist: usize,
        emit: F,
    ) {
        and_count_words_tiled(row, &self.data, self.words_per_set, js, prefetch_dist, emit);
    }

    /// All four pair statistics of filters `i` and `j` from **one** fused
    /// AND pass: the cached popcounts supply `B_{X,1}`/`B_{Y,1}` and
    /// `B_{X∪Y,1}` follows by inclusion–exclusion. Bit-identical to the
    /// general [`crate::bitvec::and_or_ones_words`] kernel over the two
    /// windows (the equivalence suite asserts this).
    #[inline]
    pub fn pair_ones(&self, i: usize, j: usize) -> PairOnes {
        let and_ones = self.and_ones(i, j);
        let a_ones = self.ones[i] as usize;
        let b_ones = self.ones[j] as usize;
        PairOnes {
            and_ones,
            or_ones: a_ones + b_ones - and_ones,
            a_ones,
            b_ones,
        }
    }

    /// Memoized Swamidass evaluation (falls back to the closed form for
    /// filters too large for the table). Bit-identical either way: the
    /// table entries *are* outputs of the same function.
    #[inline]
    fn swamidass(&self, ones: usize) -> f64 {
        match &self.swami {
            Some(t) => t[ones],
            None => estimators::bf_size_swamidass(ones, self.bits_per_set, self.b),
        }
    }

    /// `|X∩Y|̂_AND` (Eq. 2) between sets `i` and `j`.
    #[inline]
    pub fn estimate_and(&self, i: usize, j: usize) -> f64 {
        self.swamidass(self.and_ones(i, j))
    }

    /// `|X∩Y|̂_AND` from a precomputed `B_{X∩Y,1}` — the memoized Swamidass
    /// curve, exposed so batch callers (oracle row kernels) can hoist the
    /// row's word window out of their inner loop and still hit the table.
    #[inline]
    pub fn estimate_and_from_ones(&self, and_ones: usize) -> f64 {
        self.swamidass(and_ones)
    }

    /// `|X∩Y|̂_L` (Eq. 4) between sets `i` and `j`.
    #[inline]
    pub fn estimate_limit(&self, i: usize, j: usize) -> f64 {
        estimators::bf_intersect_limit(self.and_ones(i, j), self.b)
    }

    /// `|X∩Y|̂_OR` (Eq. 29); `nx`/`ny` are the exact set sizes. One fused
    /// AND pass — `B_{X∪Y,1}` comes from the cached popcounts, and
    /// Eq. 29 is `nx + ny − swami(B_{X∪Y,1})`, served from the memo table.
    #[inline]
    pub fn estimate_or(&self, i: usize, j: usize, nx: usize, ny: usize) -> f64 {
        (nx + ny) as f64 - self.swamidass(self.pair_ones(i, j).or_ones)
    }

    /// All three estimators of the pair from one fused pass.
    #[inline]
    pub fn estimate_all(&self, i: usize, j: usize, nx: usize, ny: usize) -> BfPairEstimates {
        let p = self.pair_ones(i, j);
        BfPairEstimates {
            and_est: self.swamidass(p.and_ones),
            limit_est: estimators::bf_intersect_limit(p.and_ones, self.b),
            or_est: (nx + ny) as f64 - self.swamidass(p.or_ones),
        }
    }

    /// Bytes of sketch storage — what the paper's budget `s` accounts for.
    pub fn memory_bytes(&self) -> usize {
        self.data.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let items: Vec<u32> = (0..200).map(|i| i * 13 + 1).collect();
        let f = BloomFilter::from_set(&items, 4096, 3, 7);
        for &x in &items {
            assert!(f.contains(x));
        }
    }

    #[test]
    fn few_false_positives_when_sized_well() {
        let items: Vec<u32> = (0..100).collect();
        let f = BloomFilter::from_set(&items, 1 << 13, 3, 7);
        let fps = (1000u32..11_000).filter(|&x| f.contains(x)).count();
        // ~100 items in 8192 bits with b=3: fp rate well below 1 %.
        assert!(fps < 100, "false positives: {fps}/10000");
    }

    #[test]
    fn size_estimate_accuracy() {
        let items: Vec<u32> = (0..500).collect();
        let f = BloomFilter::from_set(&items, 1 << 14, 2, 3);
        let est = f.estimate_size();
        assert!((est - 500.0).abs() < 25.0, "est={est}");
    }

    #[test]
    fn intersection_estimates_track_truth() {
        // |X|=300, |Y|=300, |X∩Y|=100.
        let x: Vec<u32> = (0..300).collect();
        let y: Vec<u32> = (200..500).collect();
        let bits = 1 << 13;
        let fx = BloomFilter::from_set(&x, bits, 2, 9);
        let fy = BloomFilter::from_set(&y, bits, 2, 9);
        let and = fx.estimate_intersection_and(&fy);
        let or = fx.estimate_intersection_or(&fy, x.len(), y.len());
        assert!((and - 100.0).abs() < 30.0, "AND={and}");
        assert!((or - 100.0).abs() < 30.0, "OR={or}");
        // Limit estimator systematically overestimates the intersection
        // (both sets' bits overlap by chance) but stays in the ballpark.
        let lim = fx.estimate_intersection_limit(&fy);
        assert!(lim >= and * 0.5 && lim < 300.0, "L={lim}");
    }

    #[test]
    fn disjoint_sets_give_near_zero() {
        let x: Vec<u32> = (0..200).collect();
        let y: Vec<u32> = (10_000..10_200).collect();
        let fx = BloomFilter::from_set(&x, 1 << 13, 2, 1);
        let fy = BloomFilter::from_set(&y, 1 << 13, 2, 1);
        assert!(fx.estimate_intersection_and(&fy) < 20.0);
    }

    #[test]
    fn collection_matches_standalone_filters() {
        let sets: Vec<Vec<u32>> = (0..20)
            .map(|s| (0..50 + s * 7).map(|i| (i * 31 + s) as u32).collect())
            .collect();
        let col = BloomCollection::build(sets.len(), 1024, 2, 5, |i| &sets[i]);
        for (i, set) in sets.iter().enumerate() {
            let f = BloomFilter::from_set(set, 1024, 2, 5);
            assert_eq!(col.count_ones(i), f.count_ones(), "set {i}");
            for &x in set {
                assert!(col.contains(i, x));
            }
        }
        // Pairwise AND counts agree too.
        let f0 = BloomFilter::from_set(&sets[0], 1024, 2, 5);
        let f1 = BloomFilter::from_set(&sets[1], 1024, 2, 5);
        assert_eq!(col.and_ones(0, 1), f0.bits().and_count(f1.bits()));
        assert_eq!(col.or_ones(0, 1), f0.bits().or_count(f1.bits()));
    }

    #[test]
    fn fused_pair_path_matches_general_kernel() {
        let sets: Vec<Vec<u32>> = (0..12)
            .map(|s| (0..30 + s * 17).map(|i| (i * 13 + s) as u32).collect())
            .collect();
        let col = BloomCollection::build(sets.len(), 960, 3, 11, |i| &sets[i][..]);
        for i in 0..sets.len() {
            for j in 0..sets.len() {
                let fused = col.pair_ones(i, j);
                let general = crate::bitvec::and_or_ones_words(col.words(i), col.words(j));
                assert_eq!(fused, general, "pair ({i},{j})");
            }
        }
    }

    #[test]
    fn estimate_all_matches_individual_estimators() {
        let x: Vec<u32> = (0..300).collect();
        let y: Vec<u32> = (200..500).collect();
        let col = BloomCollection::build(2, 1 << 13, 2, 9, |i| if i == 0 { &x } else { &y });
        let all = col.estimate_all(0, 1, x.len(), y.len());
        assert_eq!(all.and_est, col.estimate_and(0, 1));
        assert_eq!(all.limit_est, col.estimate_limit(0, 1));
        assert_eq!(all.or_est, col.estimate_or(0, 1, x.len(), y.len()));
        // And the standalone-filter fused path agrees with the collection.
        let fx = BloomFilter::from_set(&x, 1 << 13, 2, 9);
        let fy = BloomFilter::from_set(&y, 1 << 13, 2, 9);
        let fall = fx.estimate_intersection_all(&fy, x.len(), y.len());
        assert_eq!(fall.and_est, fx.estimate_intersection_and(&fy));
        assert_eq!(fall.limit_est, fx.estimate_intersection_limit(&fy));
        assert_eq!(
            fall.or_est,
            fx.estimate_intersection_or(&fy, x.len(), y.len())
        );
        // or_ones via inclusion–exclusion equals the direct OR pass.
        assert_eq!(col.pair_ones(0, 1).or_ones, col.or_ones(0, 1));
    }

    #[test]
    fn memoized_estimators_match_closed_forms() {
        let x: Vec<u32> = (0..400).collect();
        let y: Vec<u32> = (100..600).collect();
        let col = BloomCollection::build(2, 4096, 2, 3, |i| if i == 0 { &x } else { &y });
        assert!(col.swami.is_some(), "table must materialize for small B");
        // Table lookups must be bit-identical to the closed-form estimators.
        assert_eq!(
            col.estimate_and(0, 1),
            estimators::bf_intersect_and(col.and_ones(0, 1), col.bits_per_set(), 2)
        );
        assert_eq!(
            col.estimate_or(0, 1, x.len(), y.len()),
            estimators::bf_intersect_or(col.or_ones(0, 1), col.bits_per_set(), 2, x.len(), y.len())
        );
        // Saturation entry (ones == B) stays finite.
        assert!(col.swami.as_ref().unwrap()[col.bits_per_set()].is_finite());
    }

    #[test]
    fn collection_rounds_bits_to_words() {
        let sets = [vec![1u32, 2, 3]];
        let col = BloomCollection::build(1, 100, 1, 1, |i| &sets[i][..]);
        assert_eq!(col.bits_per_set(), 128);
        assert_eq!(col.memory_bytes(), 16);
    }

    #[test]
    fn parallel_build_deterministic() {
        let sets: Vec<Vec<u32>> = (0..100)
            .map(|s| (0..200).map(|i| (i * 17 + s * 3) as u32).collect())
            .collect();
        let a = pg_parallel::with_threads(1, || {
            BloomCollection::build(100, 512, 2, 9, |i| &sets[i][..])
        });
        let b = pg_parallel::with_threads(8, || {
            BloomCollection::build(100, 512, 2, 9, |i| &sets[i][..])
        });
        assert_eq!(a.data, b.data);
    }

    #[test]
    fn incremental_insert_matches_rebuild() {
        let full: Vec<Vec<u32>> = (0..10)
            .map(|s| (0..80 + s * 9).map(|i| (i * 19 + s) as u32).collect())
            .collect();
        let want = BloomCollection::build(full.len(), 768, 2, 13, |i| &full[i][..]);
        // Seed with a prefix of each set, then stream the rest in place.
        let mut got =
            BloomCollection::build(full.len(), 768, 2, 13, |i| &full[i][..full[i].len() / 3]);
        for (i, set) in full.iter().enumerate() {
            let (head, tail) = set.split_at(set.len() / 3);
            let _ = head;
            got.insert_batch(i, tail);
            assert_eq!(got.words(i), want.words(i), "set {i}");
            assert_eq!(got.count_ones(i), want.count_ones(i), "set {i}");
        }
        // Single-element path agrees with the batch path.
        let mut one = BloomCollection::build(1, 256, 3, 5, |_| &[][..]);
        for x in [7u32, 8, 9] {
            one.insert(0, x);
        }
        let rebuilt = BloomCollection::build(1, 256, 3, 5, |_| &[7u32, 8, 9][..]);
        assert_eq!(one.words(0), rebuilt.words(0));
        assert_eq!(one.count_ones(0), rebuilt.count_ones(0));
    }

    #[test]
    fn empty_set_filter_is_all_zero() {
        let sets: [Vec<u32>; 1] = [vec![]];
        let col = BloomCollection::build(1, 256, 3, 2, |i| &sets[i][..]);
        assert_eq!(col.count_ones(0), 0);
        assert_eq!(col.estimate_and(0, 0), 0.0);
    }
}
