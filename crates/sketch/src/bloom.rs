//! Bloom filters (§II-D) and the flat per-vertex collection ProbGraph
//! builds over all neighborhoods.
//!
//! By default every filter in a [`BloomCollection`] has the **same** bit
//! length — that is the paper's central load-balancing trick (Fig. 1,
//! panel 5): every neighborhood intersection costs exactly `B/W` word-AND
//! operations, no matter how skewed the degrees are.
//!
//! A collection may instead be **stratified** ([`BloomStrata`]): sets are
//! partitioned into strata whose filter widths are power-of-two multiples
//! of the narrowest, stored back to back with per-set word offsets.
//! Cross-stratum pairs are estimated at the narrower width by *folding*
//! the wider filter: with the Lemire bucket reduction
//! `bucket = (h·B) >> 32`, a bit set at wide bucket `w` (width `r·B`)
//! corresponds exactly to narrow bucket `w / r`, so OR-ing each run of
//! `r` consecutive wide bits yields — bit for bit — the filter that would
//! have been built at width `B` directly ([`fold_words_into`]; the
//! equivalence suite pins this). Uniform collections keep the flat
//! fast path unchanged.
//!
//! ## Zero-allocation hot paths
//!
//! Three things keep the per-edge estimator cost at "a handful of word-AND
//! + popcount operations", as the paper's speedup model assumes:
//!
//! 1. **Batched hashing** — insertion and membership compute all `b` bucket
//!    indices of a key in one [`HashFamily::buckets_into`] call (key-side
//!    Murmur mixing hoisted, chains unrolled) into a stack buffer.
//! 2. **Cached popcounts** — `B_{X,1}` of every filter is computed once at
//!    build time ([`BloomFilter`] maintains it incrementally, the
//!    collection popcounts each freshly written, cache-hot window), so no
//!    estimator ever re-counts a static sketch.
//! 3. **Fused pair kernels** — with `B_{X,1}`/`B_{Y,1}` cached, one fused
//!    AND+popcount traversal yields `B_{X∩Y,1}` directly and `B_{X∪Y,1}`
//!    via `B_{X∪Y,1} = B_{X,1} + B_{Y,1} − B_{X∩Y,1}`, so the AND, Limit,
//!    *and* OR estimators all cost a single pass per edge.

use crate::bitvec::{
    and_count_words, and_count_words_multi, and_count_words_tiled, count_ones_words,
    or_count_words, BitVec, PairOnes,
};
use crate::cowvec::cow_clear;
use crate::estimators;
use pg_hash::HashFamily;
use pg_parallel::parallel_for;
use std::borrow::Cow;

/// Upper bound on `b` so bucket batches fit a stack buffer. The paper finds
/// `b ∈ {1, 2}` best and never evaluates past 4; 16 leaves generous slack.
pub const MAX_BLOOM_HASHES: usize = 16;

/// All three Bloom intersection estimates of one pair, from one fused pass.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BfPairEstimates {
    /// `|X∩Y|̂_AND` (Eq. 2).
    pub and_est: f64,
    /// `|X∩Y|̂_L` (Eq. 4).
    pub limit_est: f64,
    /// `|X∩Y|̂_OR` (Eq. 29).
    pub or_est: f64,
}

/// A standalone Bloom filter over `u32` items with `b` hash functions.
#[derive(Clone, Debug)]
pub struct BloomFilter {
    bits: BitVec,
    family: HashFamily,
    /// Incrementally maintained popcount (`B_{X,1}`); filters are
    /// insert-only, so every newly set bit bumps it by one.
    ones: usize,
}

impl BloomFilter {
    /// An empty filter of `bits` bits with `b` seeded hash functions.
    pub fn new(bits: usize, b: usize, seed: u64) -> Self {
        assert!(bits > 0, "Bloom filter needs at least one bit");
        assert!(b > 0, "Bloom filter needs at least one hash function");
        assert!(
            b <= MAX_BLOOM_HASHES,
            "Bloom filter supports at most {MAX_BLOOM_HASHES} hash functions"
        );
        BloomFilter {
            bits: BitVec::zeros(bits),
            family: HashFamily::new(b, seed),
            ones: 0,
        }
    }

    /// Builds a filter directly from a set of items.
    pub fn from_set(items: &[u32], bits: usize, b: usize, seed: u64) -> Self {
        let mut f = Self::new(bits, b, seed);
        for &x in items {
            f.insert(x);
        }
        f
    }

    /// Inserts one item (sets its `b` bits; all buckets batched into one
    /// streaming hash call — key-side mixing computed once per item).
    #[inline]
    pub fn insert(&mut self, item: u32) {
        let bits = &mut self.bits;
        let ones = &mut self.ones;
        self.family
            .for_each_bucket(item as u64, bits.len_bits(), |pos| {
                *ones += usize::from(bits.set_new(pos as usize));
            });
    }

    /// Membership query; false positives possible, false negatives not.
    #[inline]
    pub fn contains(&self, item: u32) -> bool {
        let mut buf = [0u32; MAX_BLOOM_HASHES];
        let b = self.family.len();
        self.family
            .buckets_into(item as u64, self.bits.len_bits(), &mut buf[..b]);
        buf[..b].iter().all(|&pos| self.bits.get(pos as usize))
    }

    /// Number of hash functions `b`.
    #[inline]
    pub fn num_hashes(&self) -> usize {
        self.family.len()
    }

    /// Filter size in bits (`B_X`).
    #[inline]
    pub fn len_bits(&self) -> usize {
        self.bits.len_bits()
    }

    /// Number of set bits (`B_{X,1}`) — cached, `O(1)`.
    #[inline]
    pub fn count_ones(&self) -> usize {
        debug_assert_eq!(self.ones, self.bits.count_ones());
        self.ones
    }

    /// The underlying bit vector.
    #[inline]
    pub fn bits(&self) -> &BitVec {
        &self.bits
    }

    /// Single-set cardinality estimate `|X|̂_S` (Eq. 1).
    pub fn estimate_size(&self) -> f64 {
        estimators::bf_size_swamidass(self.count_ones(), self.len_bits(), self.num_hashes())
    }

    /// `|X∩Y|̂_AND` (Eq. 2) against another filter built with the same
    /// parameters and seed.
    pub fn estimate_intersection_and(&self, other: &BloomFilter) -> f64 {
        estimators::bf_intersect_and(
            self.bits.and_count(&other.bits),
            self.len_bits(),
            self.num_hashes(),
        )
    }

    /// `|X∩Y|̂_L` (Eq. 4).
    pub fn estimate_intersection_limit(&self, other: &BloomFilter) -> f64 {
        estimators::bf_intersect_limit(self.bits.and_count(&other.bits), self.num_hashes())
    }

    /// `|X∩Y|̂_OR` (Eq. 29); needs the exact set sizes. Costs one fused
    /// AND pass: `B_{X∪Y,1}` is recovered from the cached single-filter
    /// popcounts via inclusion–exclusion.
    pub fn estimate_intersection_or(&self, other: &BloomFilter, nx: usize, ny: usize) -> f64 {
        let and_ones = self.bits.and_count(&other.bits);
        let or_ones = self.ones + other.ones - and_ones;
        estimators::bf_intersect_or(or_ones, self.len_bits(), self.num_hashes(), nx, ny)
    }

    /// All three intersection estimators from **one** fused pass over the
    /// pair (plus the cached popcounts).
    pub fn estimate_intersection_all(
        &self,
        other: &BloomFilter,
        nx: usize,
        ny: usize,
    ) -> BfPairEstimates {
        let and_ones = self.bits.and_count(&other.bits);
        let or_ones = self.ones + other.ones - and_ones;
        let (bits, b) = (self.len_bits(), self.num_hashes());
        BfPairEstimates {
            and_est: estimators::bf_intersect_and(and_ones, bits, b),
            limit_est: estimators::bf_intersect_limit(and_ones, b),
            or_est: estimators::bf_intersect_or(or_ones, bits, b, nx, ny),
        }
    }
}

/// All per-set Bloom filters of a ProbGraph representation, stored in one
/// flat word array (`n_sets × words_per_set`).
///
/// The word array is copy-on-write over `'a`: the owned alias
/// [`BloomCollection`] is the ordinary built/streamed form, while a
/// borrowed `BloomCollectionIn<'buf>` serves estimates directly out of a
/// validated snapshot buffer (the zero-copy exchange/mmap load path).
/// Mutation of a borrowed collection clones the words first (`Cow`
/// semantics); the cached popcounts are always owned bookkeeping.
#[derive(Clone, Debug)]
pub struct BloomCollectionIn<'a> {
    data: Cow<'a, [u64]>,
    words_per_set: usize,
    bits_per_set: usize,
    b: usize,
    family: HashFamily,
    /// Cached `B_{X,1}` per filter, popcounted at build time while each
    /// window is still cache-hot. Bookkeeping like the callers' size
    /// arrays — not charged against the sketch budget.
    ones: Vec<u32>,
    /// Memoized Swamidass curve: `swami[o] = −(B/b)·ln(1 − o/B)` for every
    /// possible popcount `o ∈ 0..=B`. For a fixed collection the AND
    /// estimator (Eq. 2) is `swami[and_ones]` and the OR estimator (Eq. 29)
    /// is `nx + ny − swami[or_ones]`, so the per-edge `ln` (≈ half the cost
    /// of a fused AND pass) becomes one L2 load. Skipped for huge filters
    /// where the table would not stay cache-resident.
    swami: Option<Vec<f64>>,
    /// `Some` when the collection is stratified: per-set widths/offsets
    /// live here and `words_per_set`/`bits_per_set` hold the *narrowest*
    /// stratum's shape (the width every cross-stratum estimate folds to).
    strata: Option<BloomStrata<'a>>,
    /// Lazily built [`BloomFoldCache`] for stratified row sweeps —
    /// derived bookkeeping like `ones`/`swami`, never persisted, never
    /// charged against the sketch budget. Built on the first cross-width
    /// sweep and shared by every oracle over this collection (epoch
    /// snapshots amortize it across all queries of an epoch); every
    /// mutation path resets it, so it can never serve stale folds.
    folds: std::sync::OnceLock<BloomFoldCache>,
}

/// The owned (`'static`) form of [`BloomCollectionIn`] — what builds,
/// streaming updates, and the copying snapshot loader produce.
pub type BloomCollection = BloomCollectionIn<'static>;

/// Per-set geometry of a stratified Bloom collection: which stratum each
/// set belongs to, each stratum's filter width, and the resulting word
/// offsets (bottom-k's `offsets`/`lens` strided layout is the template).
///
/// Widths are power-of-two multiples of the narrowest stratum so wide
/// filters fold exactly onto narrow ones for cross-stratum estimates.
#[derive(Clone, Debug)]
pub struct BloomStrata<'a> {
    /// Per-set stratum index (borrowable: snapshots serve it in place).
    assign: Cow<'a, [u8]>,
    /// Per-stratum filter bits (whole words each).
    bits: Vec<u32>,
    /// Word offset of each set's filter window (`n_sets + 1` entries).
    offsets: Vec<u64>,
    /// Per-stratum memoized Swamidass curves (see
    /// [`BloomCollectionIn::estimate_and_from_ones`]); cross-stratum
    /// estimates index the table of the *narrower* stratum.
    swami: Vec<Option<Vec<f64>>>,
}

impl<'a> BloomStrata<'a> {
    fn new(assign: Cow<'a, [u8]>, bits: Vec<u32>, b: usize) -> Self {
        assert!(!bits.is_empty(), "need at least one stratum");
        let min_bits = *bits.iter().min().unwrap();
        assert!(
            min_bits >= 64 && min_bits.is_multiple_of(64),
            "widths are whole words"
        );
        for &w in &bits {
            let r = w / min_bits;
            assert!(
                w % min_bits == 0 && (r as usize).is_power_of_two() && r <= 64,
                "stratum width {w} is not a power-of-two multiple of {min_bits}"
            );
        }
        let mut offsets = Vec::with_capacity(assign.len() + 1);
        let mut off = 0u64;
        offsets.push(0);
        for &a in assign.iter() {
            off += (bits[a as usize] / 64) as u64;
            offsets.push(off);
        }
        let swami = bits.iter().map(|&w| make_swami(w as usize, b)).collect();
        BloomStrata {
            assign,
            bits,
            offsets,
            swami,
        }
    }

    /// Per-set stratum indices.
    #[inline]
    pub fn assign(&self) -> &[u8] {
        &self.assign
    }

    /// Per-stratum filter widths in bits.
    #[inline]
    pub fn stratum_bits(&self) -> &[u32] {
        &self.bits
    }

    /// Stratum of set `i`.
    #[inline]
    pub fn stratum_of(&self, i: usize) -> usize {
        self.assign[i] as usize
    }

    fn into_owned(self) -> BloomStrata<'static> {
        BloomStrata {
            assign: Cow::Owned(self.assign.into_owned()),
            bits: self.bits,
            offsets: self.offsets,
            swami: self.swami,
        }
    }
}

/// Folds a filter built at `r ×` the target width down to the target:
/// ORs each run of `r` consecutive wide bits into one narrow bit (the
/// Lemire-bucket quotient map — see the module docs), appending the
/// narrow words to `out` and returning their popcount. `r` must be a
/// power of two ≤ 64; `r == 1` is a plain copy.
pub fn fold_words_into(wide: &[u64], r: usize, out: &mut Vec<u64>) -> usize {
    debug_assert!(r.is_power_of_two() && r <= 64, "fold ratio {r}");
    if r == 1 {
        out.extend_from_slice(wide);
        return count_ones_words(wide);
    }
    let nb_per_word = 64 / r;
    let mut ones = 0usize;
    for t in 0..wide.len() / r {
        let mut acc = 0u64;
        for q in 0..r {
            let mut x = wide[t * r + q];
            // OR every r-bit group into the group's low bit: total shift
            // reach is r−1 < r, so groups never contaminate each other.
            let mut s = 1;
            while s < r {
                x |= x >> s;
                s <<= 1;
            }
            // Pack the group low bits (every r-th bit) together.
            let mut packed = 0u64;
            for j in 0..nb_per_word {
                packed |= ((x >> (j * r)) & 1) << j;
            }
            acc |= packed << (q * nb_per_word);
        }
        ones += acc.count_ones() as usize;
        out.push(acc);
    }
    ones
}

/// Precomputed folded shadows of a stratified collection: every filter,
/// folded down to each *narrower* stratum's width, with the folded
/// popcounts alongside. Purely derived data — each shadow is exactly the
/// [`BloomCollectionIn::fold_words_of`] output, so estimates read off it
/// bit-identically — and transient: oracles build one lazily on the first
/// cross-width row sweep and drop it with the algorithm call, so it never
/// counts against the sketch budget and can never go stale (the oracle
/// pins the collection immutably).
///
/// Why it exists: under degree orientation the destination lists of a row
/// sweep are hub-heavy, so *most* cross-stratum traffic hits destinations
/// **wider** than the source. Folding those per (source, destination)
/// visit re-folds every hub once per row it appears in — `O(m)` folds.
/// The cache folds each wide filter once (`O(n)` work bounded by the
/// store size), after which every cross-width run is an equal-width
/// multi-lane window pass, same as the uniform sweep.
#[derive(Clone, Debug)]
pub struct BloomFoldCache {
    /// Dense base-width view: **every** filter folded to the narrowest
    /// stratum width (narrowest-stratum filters are plain copies), in the
    /// flat uniform `n_sets × base_words` stride. A narrowest-stratum
    /// source compares every destination at its own width, so its whole
    /// row sweep runs on this view with the uniform kernel's indexing —
    /// no per-destination stratum resolution, offset chasing, or width
    /// branches.
    base: Vec<u64>,
    /// Popcount of each base-view window.
    base_ones: Vec<u32>,
    /// Words per base-view window (`min(bits) / 64`).
    base_words: usize,
    /// Sparse mid-width shadows, set-major: set `i`'s shadows at targets
    /// *between* its own width and the base width (ascending stratum
    /// index) occupy `word_off[i]..word_off[i + 1]`. Only wider-stratum
    /// sources ever read these, so the bulk of a skewed assignment
    /// contributes nothing.
    words: Vec<u64>,
    /// Word offset of each set's sparse block (`n_sets + 1` entries).
    word_off: Vec<u64>,
    /// Folded popcounts, in the same set-major target order.
    ones: Vec<u32>,
    /// Shadow-count offset of each set's block (`n_sets + 1` entries).
    ones_off: Vec<u32>,
    /// `sub_word[s][t]`: word offset of target `t`'s shadow inside a
    /// stratum-`s` set's sparse block; `u32::MAX` when absent (target
    /// not narrower, or served by the base view).
    sub_word: Vec<Vec<u32>>,
    /// `sub_idx[s][t]`: shadow index of target `t` inside the block.
    sub_idx: Vec<Vec<u32>>,
    /// Words per shadow at each target stratum (`bits[t] / 64`).
    t_words: Vec<u32>,
}

impl BloomFoldCache {
    /// Folds every filter of `col` down to each narrower stratum width:
    /// one dense pass for the base (narrowest) width, sparse blocks for
    /// the mid widths. One `O(store)` pass in total.
    pub fn new(col: &BloomCollectionIn<'_>) -> Self {
        let st = col.strata().expect("fold cache on a uniform collection");
        let bits = st.stratum_bits();
        let n_strata = bits.len();
        let min_bits = *bits.iter().min().unwrap();
        let base_words = (min_bits / 64) as usize;
        let assign = st.assign();

        // Dense base-width view over all sets.
        let mut base = Vec::with_capacity(assign.len() * base_words);
        let mut base_ones = Vec::with_capacity(assign.len());
        for (i, &a) in assign.iter().enumerate() {
            let r = (bits[a as usize] / min_bits) as usize;
            base_ones.push(fold_words_into(col.words(i), r, &mut base) as u32);
        }

        // Sparse mid-width shadows (targets strictly between base and the
        // set's own width).
        let wanted = |s: usize, t: usize| bits[t] < bits[s] && bits[t] > min_bits;
        let mut sub_word = vec![vec![u32::MAX; n_strata]; n_strata];
        let mut sub_idx = vec![vec![u32::MAX; n_strata]; n_strata];
        let mut block_words = vec![0u32; n_strata];
        let mut block_count = vec![0u32; n_strata];
        for s in 0..n_strata {
            for t in 0..n_strata {
                if wanted(s, t) {
                    sub_word[s][t] = block_words[s];
                    sub_idx[s][t] = block_count[s];
                    block_words[s] += bits[t] / 64;
                    block_count[s] += 1;
                }
            }
        }
        let mut word_off = Vec::with_capacity(assign.len() + 1);
        let mut ones_off = Vec::with_capacity(assign.len() + 1);
        let (mut wo, mut oo) = (0u64, 0u32);
        word_off.push(wo);
        ones_off.push(oo);
        for &a in assign {
            wo += block_words[a as usize] as u64;
            oo += block_count[a as usize];
            word_off.push(wo);
            ones_off.push(oo);
        }
        let mut words = Vec::with_capacity(wo as usize);
        let mut ones = Vec::with_capacity(oo as usize);
        for (i, &a) in assign.iter().enumerate() {
            for t in 0..n_strata {
                if wanted(a as usize, t) {
                    // `fold_words_into` appends, so set-major target order
                    // falls out of the iteration order.
                    let o = col.fold_words_of(i, t, &mut words);
                    ones.push(o as u32);
                }
            }
        }
        BloomFoldCache {
            base,
            base_ones,
            base_words,
            words,
            word_off,
            ones,
            ones_off,
            sub_word,
            sub_idx,
            t_words: bits.iter().map(|&w| w / 64).collect(),
        }
    }

    /// Base-view window of set `j` — its filter at the narrowest stratum
    /// width, flat uniform stride.
    #[inline]
    pub fn base_window(&self, j: usize) -> &[u64] {
        &self.base[j * self.base_words..(j + 1) * self.base_words]
    }

    /// Popcount of set `j`'s base-view window.
    #[inline]
    pub fn base_ones(&self, j: usize) -> usize {
        self.base_ones[j] as usize
    }

    /// Shadow of set `i` (which lives in stratum `s`) at the narrower
    /// stratum `t`: the folded word window and its popcount. Base-width
    /// targets come off the dense view, mid-width targets off the sparse
    /// blocks.
    #[inline]
    pub fn shadow(&self, i: usize, s: usize, t: usize) -> (&[u64], usize) {
        let nw = self.t_words[t] as usize;
        if nw == self.base_words {
            return (self.base_window(i), self.base_ones(i));
        }
        let sub = self.sub_word[s][t];
        debug_assert_ne!(
            sub,
            u32::MAX,
            "no shadow: stratum {t} not narrower than {s}"
        );
        let wo = (self.word_off[i] + sub as u64) as usize;
        let oi = self.ones_off[i] as usize + self.sub_idx[s][t] as usize;
        (&self.words[wo..wo + nw], self.ones[oi] as usize)
    }
}

/// Largest `B` for which the Swamidass table is materialized (512 KiB of
/// `f64`; per-neighborhood budgets are orders of magnitude below this).
const MAX_SWAMI_TABLE_BITS: usize = 1 << 16;

/// Memoized Swamidass curve for `bits_per_set`-bit filters with `b` hash
/// functions; `None` when the table would not stay cache-resident.
fn make_swami(bits_per_set: usize, b: usize) -> Option<Vec<f64>> {
    (bits_per_set <= MAX_SWAMI_TABLE_BITS).then(|| {
        pg_parallel::parallel_init(bits_per_set + 1, |o| {
            estimators::bf_size_swamidass(o, bits_per_set, b)
        })
    })
}

impl<'a> BloomCollectionIn<'a> {
    /// Builds filters for `n_sets` sets in parallel. `set(i)` must return
    /// the i-th input set; it is called once per set, from worker threads.
    ///
    /// `bits_per_set` is rounded up to a multiple of 64 so each filter owns
    /// whole words.
    pub fn build<'s, F>(n_sets: usize, bits_per_set: usize, b: usize, seed: u64, set: F) -> Self
    where
        F: Fn(usize) -> &'s [u32] + Sync,
    {
        assert!(b > 0, "need at least one hash function");
        assert!(
            b <= MAX_BLOOM_HASHES,
            "at most {MAX_BLOOM_HASHES} hash functions supported"
        );
        let words_per_set = bits_per_set.div_ceil(64).max(1);
        let bits_per_set = words_per_set * 64;
        let family = HashFamily::new(b, seed);
        let mut data = vec![0u64; n_sets * words_per_set];
        let mut ones = vec![0u32; n_sets];
        {
            struct SendPtr<T>(*mut T);
            unsafe impl<T> Send for SendPtr<T> {}
            unsafe impl<T> Sync for SendPtr<T> {}
            let base = SendPtr(data.as_mut_ptr());
            let base = &base;
            let ones_base = SendPtr(ones.as_mut_ptr());
            let ones_base = &ones_base;
            let family = &family;
            parallel_for(n_sets, |s| {
                // SAFETY: window [s*wps, (s+1)*wps) is exclusive to set s.
                let window = unsafe {
                    std::slice::from_raw_parts_mut(base.0.add(s * words_per_set), words_per_set)
                };
                for &x in set(s) {
                    family.for_each_bucket(x as u64, bits_per_set, |pos| {
                        // SAFETY: the Lemire reduction in `for_each_bucket`
                        // yields pos < bits_per_set = window.len() * 64, so
                        // pos/64 is in bounds. (The checked form costs ~20 %
                        // of construction: the bound is runtime here, so
                        // LLVM cannot elide the check itself.)
                        unsafe {
                            *window.get_unchecked_mut(pos as usize / 64) |= 1u64 << (pos % 64);
                        }
                    });
                }
                // Popcount the freshly written, cache-hot window once so no
                // estimator ever has to re-count a static sketch.
                // SAFETY: slot s is exclusive to set s.
                unsafe { *ones_base.0.add(s) = count_ones_words(window) as u32 };
            });
        }
        BloomCollectionIn {
            data: Cow::Owned(data),
            words_per_set,
            bits_per_set,
            b,
            family,
            ones,
            swami: make_swami(bits_per_set, b),
            strata: None,
            folds: std::sync::OnceLock::new(),
        }
    }

    /// Builds a **stratified** collection: set `i` gets a filter of
    /// `stratum_bits[assign[i]]` bits, windows stored back to back in set
    /// order. Widths must be whole words and power-of-two multiples of the
    /// narrowest (see [`BloomStrata`]). With a single stratum this lowers
    /// onto [`BloomCollectionIn::build`] and is bit-identical to it.
    pub fn build_stratified<'s, F>(
        stratum_bits: Vec<u32>,
        assign: Vec<u8>,
        b: usize,
        seed: u64,
        set: F,
    ) -> Self
    where
        F: Fn(usize) -> &'s [u32] + Sync,
    {
        if stratum_bits.len() == 1 {
            return Self::build(assign.len(), stratum_bits[0] as usize, b, seed, set);
        }
        assert!(b > 0, "need at least one hash function");
        assert!(
            b <= MAX_BLOOM_HASHES,
            "at most {MAX_BLOOM_HASHES} hash functions supported"
        );
        let n_sets = assign.len();
        let strata = BloomStrata::new(Cow::Owned(assign), stratum_bits, b);
        let total_words = strata.offsets[n_sets] as usize;
        let family = HashFamily::new(b, seed);
        let mut data = vec![0u64; total_words];
        let mut ones = vec![0u32; n_sets];
        {
            struct SendPtr<T>(*mut T);
            unsafe impl<T> Send for SendPtr<T> {}
            unsafe impl<T> Sync for SendPtr<T> {}
            let base = SendPtr(data.as_mut_ptr());
            let base = &base;
            let ones_base = SendPtr(ones.as_mut_ptr());
            let ones_base = &ones_base;
            let family = &family;
            let strata_ref = &strata;
            parallel_for(n_sets, |s| {
                let start = strata_ref.offsets[s] as usize;
                let len = (strata_ref.offsets[s + 1] - strata_ref.offsets[s]) as usize;
                let bits = len * 64;
                // SAFETY: offsets are strictly increasing, so each set's
                // window is exclusive to it.
                let window = unsafe { std::slice::from_raw_parts_mut(base.0.add(start), len) };
                for &x in set(s) {
                    family.for_each_bucket(x as u64, bits, |pos| {
                        // SAFETY: Lemire reduction yields pos < bits.
                        unsafe {
                            *window.get_unchecked_mut(pos as usize / 64) |= 1u64 << (pos % 64);
                        }
                    });
                }
                // SAFETY: slot s is exclusive to set s.
                unsafe { *ones_base.0.add(s) = count_ones_words(window) as u32 };
            });
        }
        let narrow = *strata.bits.iter().min().unwrap() as usize;
        BloomCollectionIn {
            data: Cow::Owned(data),
            words_per_set: narrow / 64,
            bits_per_set: narrow,
            b,
            family,
            ones,
            swami: None,
            strata: Some(strata),
            folds: std::sync::OnceLock::new(),
        }
    }

    /// Assembles a collection around already-materialized filter words —
    /// the counting-Bloom sibling derives its view bits from the counters
    /// in one linear sweep instead of re-hashing every set through a
    /// second [`BloomCollection::build`], and snapshot loads reconstruct
    /// collections from validated on-disk word arrays. The cached
    /// popcounts are computed here, in parallel; `data` must hold a whole
    /// number of `words_per_set` windows whose bits were produced by the
    /// same `(b, seed)` bucket sequence this collection will hash with.
    /// Accepts either an owned `Vec<u64>` or a borrowed `&'a [u64]` (the
    /// zero-copy snapshot load serves filters straight from the buffer).
    pub fn from_raw_words(
        data: impl Into<Cow<'a, [u64]>>,
        words_per_set: usize,
        b: usize,
        seed: u64,
    ) -> Self {
        let data = data.into();
        assert!(b > 0, "need at least one hash function");
        assert!(
            b <= MAX_BLOOM_HASHES,
            "at most {MAX_BLOOM_HASHES} hash functions supported"
        );
        assert!(words_per_set > 0, "filters own at least one word");
        debug_assert_eq!(data.len() % words_per_set, 0);
        let bits_per_set = words_per_set * 64;
        let n_sets = data.len() / words_per_set;
        let mut ones = vec![0u32; n_sets];
        pg_parallel::parallel_fill_with(&mut ones, |i| {
            count_ones_words(&data[i * words_per_set..(i + 1) * words_per_set]) as u32
        });
        BloomCollectionIn {
            data,
            words_per_set,
            bits_per_set,
            b,
            family: HashFamily::new(b, seed),
            ones,
            swami: make_swami(bits_per_set, b),
            strata: None,
            folds: std::sync::OnceLock::new(),
        }
    }

    /// Stratified sibling of [`BloomCollectionIn::from_raw_words`]: the
    /// snapshot loader reassembles a stratified collection from validated
    /// words plus the per-stratum width table and per-set assignment (both
    /// of which the loader has already cross-checked against the payload
    /// length). Popcounts are recomputed here in parallel.
    pub fn from_raw_words_stratified(
        data: impl Into<Cow<'a, [u64]>>,
        stratum_bits: Vec<u32>,
        assign: impl Into<Cow<'a, [u8]>>,
        b: usize,
        seed: u64,
    ) -> Self {
        let assign = assign.into();
        if stratum_bits.len() == 1 {
            let wps = (stratum_bits[0] / 64) as usize;
            return Self::from_raw_words(data, wps, b, seed);
        }
        let data = data.into();
        assert!(b > 0, "need at least one hash function");
        assert!(
            b <= MAX_BLOOM_HASHES,
            "at most {MAX_BLOOM_HASHES} hash functions supported"
        );
        let n_sets = assign.len();
        let strata = BloomStrata::new(assign, stratum_bits, b);
        assert_eq!(
            strata.offsets[n_sets] as usize,
            data.len(),
            "word array does not match the stratified geometry"
        );
        let mut ones = vec![0u32; n_sets];
        {
            let strata = &strata;
            let data = &data[..];
            pg_parallel::parallel_fill_with(&mut ones, |i| {
                count_ones_words(&data[strata.offsets[i] as usize..strata.offsets[i + 1] as usize])
                    as u32
            });
        }
        let narrow = *strata.bits.iter().min().unwrap() as usize;
        BloomCollectionIn {
            data,
            words_per_set: narrow / 64,
            bits_per_set: narrow,
            b,
            family: HashFamily::new(b, seed),
            ones,
            swami: None,
            strata: Some(strata),
            folds: std::sync::OnceLock::new(),
        }
    }

    /// Assembles one collection holding the concatenation of `parts`'
    /// filters, in order — the copy-on-publish path of the sharded serving
    /// layer, where each part is one shard's contiguous vertex range. All
    /// parts must share the filter shape `(words_per_set, b)` and have
    /// been built under the same seed (the families are not comparable at
    /// runtime; the serving layer constructs every shard from one config).
    pub fn gather(parts: &[&BloomCollectionIn<'_>]) -> BloomCollection {
        let first = parts.first().expect("gather needs at least one part");
        let mut out = BloomCollectionIn {
            data: Cow::Owned(Vec::new()),
            words_per_set: first.words_per_set,
            bits_per_set: first.bits_per_set,
            b: first.b,
            family: first.family.clone(),
            ones: Vec::new(),
            swami: first.swami.clone(),
            strata: None,
            folds: std::sync::OnceLock::new(),
        };
        out.gather_into(parts);
        out
    }

    /// In-place form of [`BloomCollection::gather`]: overwrites `self`
    /// with the concatenation of `parts`, reusing `self`'s allocations —
    /// the double-buffer path, fed by snapshots reclaimed from the epoch
    /// cell. `self` must share the parts' filter shape; the word and
    /// popcount arrays are straight memcpys, so a publish costs one linear
    /// pass over the store and re-hashes nothing.
    pub fn gather_into(&mut self, parts: &[&BloomCollectionIn<'_>]) {
        self.folds.take();
        let first = parts.first().expect("gather needs at least one part");
        if let Some(fs) = &first.strata {
            // Stratified parts: concatenate words/popcounts and rebuild
            // the assignment (offsets follow from it). All parts must
            // share the stratum width table.
            let mut assign = Vec::new();
            let data = cow_clear(&mut self.data);
            self.ones.clear();
            for p in parts {
                let ps = p
                    .strata
                    .as_ref()
                    .expect("gather: mixed uniform/stratified parts");
                assert_eq!(ps.bits, fs.bits, "gather: mismatched stratum widths");
                assert_eq!(p.b, self.b, "gather: mismatched hash counts");
                data.extend_from_slice(&p.data);
                self.ones.extend_from_slice(&p.ones);
                assign.extend_from_slice(&ps.assign);
            }
            self.words_per_set = first.words_per_set;
            self.bits_per_set = first.bits_per_set;
            self.swami = None;
            self.strata = Some(BloomStrata::new(
                Cow::Owned(assign),
                fs.bits.clone(),
                self.b,
            ));
            return;
        }
        self.strata = None;
        let data = cow_clear(&mut self.data);
        self.ones.clear();
        for p in parts {
            assert!(p.strata.is_none(), "gather: mixed uniform/stratified parts");
            assert_eq!(
                p.words_per_set, self.words_per_set,
                "gather: mismatched filter widths"
            );
            assert_eq!(p.b, self.b, "gather: mismatched hash counts");
            data.extend_from_slice(&p.data);
            self.ones.extend_from_slice(&p.ones);
        }
    }

    /// Detaches the collection from any borrowed snapshot buffer, cloning
    /// the word array if it was served in place. No-op for owned data.
    pub fn into_owned(self) -> BloomCollection {
        BloomCollectionIn {
            data: Cow::Owned(self.data.into_owned()),
            words_per_set: self.words_per_set,
            bits_per_set: self.bits_per_set,
            b: self.b,
            family: self.family,
            ones: self.ones,
            swami: self.swami,
            strata: self.strata.map(BloomStrata::into_owned),
            folds: self.folds,
        }
    }

    /// Number of filters.
    #[inline]
    pub fn len(&self) -> usize {
        match &self.strata {
            Some(st) => st.assign.len(),
            None => self.data.len().checked_div(self.words_per_set).unwrap_or(0),
        }
    }

    /// True when the collection holds no filters.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bits per filter (`B_X`) — for stratified collections this is the
    /// **narrowest** stratum's width (the geometry every cross-stratum
    /// estimate folds to); use [`BloomCollectionIn::bits_of`] for the
    /// width of a specific set.
    #[inline]
    pub fn bits_per_set(&self) -> usize {
        self.bits_per_set
    }

    /// Per-set geometry ([`BloomStrata`]) when the collection is
    /// stratified; `None` on the uniform fast path.
    #[inline]
    pub fn strata(&self) -> Option<&BloomStrata<'a>> {
        self.strata.as_ref()
    }

    /// Filter width of set `i` in bits.
    #[inline]
    pub fn bits_of(&self, i: usize) -> usize {
        match &self.strata {
            Some(st) => st.bits[st.assign[i] as usize] as usize,
            None => self.bits_per_set,
        }
    }

    /// Stratum index of set `i` (0 for uniform collections).
    #[inline]
    pub fn stratum_of(&self, i: usize) -> usize {
        match &self.strata {
            Some(st) => st.assign[i] as usize,
            None => 0,
        }
    }

    /// Word range of set `i`'s filter window.
    #[inline]
    fn word_range(&self, i: usize) -> std::ops::Range<usize> {
        match &self.strata {
            Some(st) => st.offsets[i] as usize..st.offsets[i + 1] as usize,
            None => i * self.words_per_set..(i + 1) * self.words_per_set,
        }
    }

    /// Number of hash functions `b`.
    #[inline]
    pub fn num_hashes(&self) -> usize {
        self.b
    }

    /// Words per filter (`bits_per_set / 64`).
    #[inline]
    pub fn words_per_set(&self) -> usize {
        self.words_per_set
    }

    /// The word window of filter `i`.
    #[inline]
    pub fn words(&self, i: usize) -> &[u64] {
        &self.data[self.word_range(i)]
    }

    /// The lazily built fold-shadow cache (stratified collections only):
    /// built on first use, shared by every reader of this collection, and
    /// reset by every mutation. Amortized `O(store)` once per collection
    /// (or per published epoch snapshot) rather than per oracle.
    pub fn fold_cache(&self) -> &BloomFoldCache {
        self.folds.get_or_init(|| BloomFoldCache::new(self))
    }

    /// Folds set `i`'s filter down to `stratum`'s width, appending the
    /// narrow words to `out` and returning their popcount. `i`'s stratum
    /// must be at least as wide as the target (equal width is a copy).
    pub fn fold_words_of(&self, i: usize, stratum: usize, out: &mut Vec<u64>) -> usize {
        let st = self.strata.as_ref().expect("fold on a uniform collection");
        let (wi, wt) = (st.bits[st.assign[i] as usize], st.bits[stratum]);
        debug_assert!(wi >= wt, "cannot fold {wi} bits up to {wt}");
        fold_words_into(self.words(i), (wi / wt) as usize, out)
    }

    /// The whole flat word array (`n_sets × words_per_set`) — the
    /// byte-stable payload snapshots persist.
    #[inline]
    pub fn raw_words(&self) -> &[u64] {
        &self.data
    }

    /// The cached per-filter popcounts, in set order. Snapshots persist
    /// these alongside the words and cross-check them against freshly
    /// recomputed popcounts on load.
    #[inline]
    pub fn raw_ones(&self) -> &[u32] {
        &self.ones
    }

    /// Popcount of filter `i` — cached at build time, `O(1)`.
    #[inline]
    pub fn count_ones(&self, i: usize) -> usize {
        debug_assert_eq!(self.ones[i] as usize, count_ones_words(self.words(i)));
        self.ones[i] as usize
    }

    /// Inserts one item into filter `i` in place, maintaining the cached
    /// popcount incrementally (each freshly set bit bumps it by one) —
    /// Bloom filters are naturally insert-only, so a streamed edge costs
    /// exactly `b` bucket probes, same as at build time.
    #[inline]
    pub fn insert(&mut self, i: usize, item: u32) {
        self.insert_batch(i, std::slice::from_ref(&item));
    }

    /// Batched per-set insert: absorbs all of `xs` into filter `i` with
    /// the word window and popcount delta hoisted out of the element loop
    /// (the streaming hot path — updates arrive grouped by source vertex).
    pub fn insert_batch(&mut self, i: usize, xs: &[u32]) {
        self.folds.take();
        let range = self.word_range(i);
        let bits = self.bits_of(i);
        let window = &mut self.data.to_mut()[range];
        let mut added = 0u32;
        for &x in xs {
            self.family.for_each_bucket(x as u64, bits, |pos| {
                let w = &mut window[pos as usize / 64];
                let bit = 1u64 << (pos % 64);
                added += u32::from(*w & bit == 0);
                *w |= bit;
            });
        }
        self.ones[i] += added;
    }

    /// Sets bucket bit `pos` of filter `i` directly (no hashing),
    /// maintaining the cached popcount. Crate-internal hook for
    /// [`crate::CountingBloomCollection`], whose counters decide *when* a
    /// derived bit flips; everyone else inserts elements.
    #[inline]
    pub(crate) fn set_bit(&mut self, i: usize, pos: usize) {
        self.folds.take();
        debug_assert!(pos < self.bits_of(i));
        let start = self.word_range(i).start;
        let w = &mut self.data.to_mut()[start + pos / 64];
        let bit = 1u64 << (pos % 64);
        self.ones[i] += u32::from(*w & bit == 0);
        *w |= bit;
    }

    /// Clears bucket bit `pos` of filter `i` directly, maintaining the
    /// cached popcount. Counterpart of [`BloomCollection::set_bit`]; only
    /// the counting-Bloom sibling may clear bits (a plain Bloom filter is
    /// insert-only by construction).
    #[inline]
    pub(crate) fn clear_bit(&mut self, i: usize, pos: usize) {
        self.folds.take();
        debug_assert!(pos < self.bits_of(i));
        let start = self.word_range(i).start;
        let w = &mut self.data.to_mut()[start + pos / 64];
        let bit = 1u64 << (pos % 64);
        self.ones[i] -= u32::from(*w & bit != 0);
        *w &= !bit;
    }

    /// Membership query against filter `i` (buckets batched).
    pub fn contains(&self, i: usize, item: u32) -> bool {
        let w = self.words(i);
        let mut buf = [0u32; MAX_BLOOM_HASHES];
        self.family
            .buckets_into(item as u64, self.bits_of(i), &mut buf[..self.b]);
        buf[..self.b]
            .iter()
            .all(|&pos| (w[pos as usize / 64] >> (pos % 64)) & 1 == 1)
    }

    /// `B_{X∩Y,1}`: fused AND+popcount of filters `i` and `j` — the `O(B/W)`
    /// kernel of Table IV. Cross-stratum pairs are compared at the
    /// narrower width (the wider filter is folded first — a scalar
    /// fallback; batch sweeps hoist the fold per row).
    #[inline]
    pub fn and_ones(&self, i: usize, j: usize) -> usize {
        if self.bits_of(i) == self.bits_of(j) {
            and_count_words(self.words(i), self.words(j))
        } else {
            self.pair_stats(i, j).0.and_ones
        }
    }

    /// `B_{X∪Y,1}`: fused OR+popcount (cross-stratum pairs folded to the
    /// narrower width first).
    #[inline]
    pub fn or_ones(&self, i: usize, j: usize) -> usize {
        if self.bits_of(i) == self.bits_of(j) {
            or_count_words(self.words(i), self.words(j))
        } else {
            self.pair_stats(i, j).0.or_ones
        }
    }

    /// Pair statistics plus the stratum whose geometry (width + Swamidass
    /// curve) the pair's estimates must be evaluated at: the narrower of
    /// the two sets' strata. Equal-width pairs run the fused kernel on
    /// the raw windows; cross-width pairs fold the wider filter (its
    /// folded popcount is computed during the fold — the raw cached
    /// popcount belongs to the unfolded geometry).
    fn pair_stats(&self, i: usize, j: usize) -> (PairOnes, usize) {
        let (wi, wj) = (self.bits_of(i), self.bits_of(j));
        if wi == wj {
            let and_ones = and_count_words(self.words(i), self.words(j));
            let a_ones = self.ones[i] as usize;
            let b_ones = self.ones[j] as usize;
            let s = if self.strata.is_some() {
                self.stratum_of(i)
            } else {
                0
            };
            return (
                PairOnes {
                    and_ones,
                    or_ones: a_ones + b_ones - and_ones,
                    a_ones,
                    b_ones,
                },
                s,
            );
        }
        let mut folded = Vec::new();
        let (narrow, a_ones, b_ones, s) = if wi < wj {
            let b_ones = self.fold_words_of(j, self.stratum_of(i), &mut folded);
            (i, self.ones[i] as usize, b_ones, self.stratum_of(i))
        } else {
            let a_ones = self.fold_words_of(i, self.stratum_of(j), &mut folded);
            (j, a_ones, self.ones[j] as usize, self.stratum_of(j))
        };
        let (a_words, b_words): (&[u64], &[u64]) = if narrow == i {
            (self.words(i), &folded)
        } else {
            (&folded, self.words(j))
        };
        let and_ones = and_count_words(a_words, b_words);
        (
            PairOnes {
                and_ones,
                or_ones: a_ones + b_ones - and_ones,
                a_ones,
                b_ones,
            },
            s,
        )
    }

    /// Multi-lane `B_{X∩Y,1}`: one word-window pass ANDs the pinned source
    /// `row` (a filter's word window, usually hoisted once per vertex)
    /// against `L` destination filters with independent popcount
    /// accumulators — `out[l] == and_count_words(row, self.words(js[l]))`
    /// exactly, for every lane count. This is the batched-estimation hot
    /// path: source-word loads amortize over `L` destinations and the `L`
    /// reduction chains pipeline at full `vpopcnt` issue width.
    #[inline]
    pub fn and_ones_multi<const L: usize>(&self, row: &[u64], js: [usize; L]) -> [usize; L] {
        and_count_words_multi(row, js.map(|j| self.words(j)))
    }

    /// Tiled multi-lane `B_{X∩Y,1}`: ANDs the pinned source `row` against
    /// the destination filters `js` (one source's in-tile destination ids),
    /// invoking `emit(t, and_ones)` per destination in `js` order. The
    /// blocked row sweep calls this once per (source, tile) segment with
    /// `prefetch_dist = 0` (the tile is cache-resident across the source
    /// batch); the flat full-row sweep passes
    /// [`crate::bitvec::prefetch_distance`] so L2 fills overlap the
    /// popcounts. Counts are bit-identical to [`BloomCollection::and_ones`]
    /// for any tiling (see [`crate::bitvec::and_count_words_tiled`]).
    #[inline]
    pub fn and_ones_tiled<F: FnMut(usize, usize)>(
        &self,
        row: &[u64],
        js: &[u32],
        prefetch_dist: usize,
        emit: F,
    ) {
        debug_assert!(
            self.strata.is_none(),
            "tiled sweeps need the flat uniform stride (the block planner \
             declines stratified stores)"
        );
        and_count_words_tiled(row, &self.data, self.words_per_set, js, prefetch_dist, emit);
    }

    /// All four pair statistics of filters `i` and `j` from **one** fused
    /// AND pass: the cached popcounts supply `B_{X,1}`/`B_{Y,1}` and
    /// `B_{X∪Y,1}` follows by inclusion–exclusion. Bit-identical to the
    /// general [`crate::bitvec::and_or_ones_words`] kernel over the two
    /// windows (the equivalence suite asserts this).
    #[inline]
    pub fn pair_ones(&self, i: usize, j: usize) -> PairOnes {
        self.pair_stats(i, j).0
    }

    /// Memoized Swamidass evaluation (falls back to the closed form for
    /// filters too large for the table). Bit-identical either way: the
    /// table entries *are* outputs of the same function.
    #[inline]
    fn swamidass(&self, ones: usize) -> f64 {
        match &self.swami {
            Some(t) => t[ones],
            None => estimators::bf_size_swamidass(ones, self.bits_per_set, self.b),
        }
    }

    /// Memoized Swamidass evaluation at stratum `s`'s width (stratum 0 ≡
    /// the whole collection when uniform).
    #[inline]
    fn swamidass_at(&self, s: usize, ones: usize) -> f64 {
        match &self.strata {
            None => self.swamidass(ones),
            Some(st) => match &st.swami[s] {
                Some(t) => t[ones],
                None => estimators::bf_size_swamidass(ones, st.bits[s] as usize, self.b),
            },
        }
    }

    /// `|X∩Y|̂_AND` from a precomputed `B_{X∩Y,1}` at stratum `s`'s width —
    /// the stratified sibling of
    /// [`BloomCollectionIn::estimate_and_from_ones`], for row sweeps that
    /// compare a folded source against stratum-`s` destinations.
    #[inline]
    pub fn estimate_and_from_ones_at(&self, s: usize, and_ones: usize) -> f64 {
        self.swamidass_at(s, and_ones)
    }

    /// `|X∩Y|̂_AND` (Eq. 2) between sets `i` and `j`.
    #[inline]
    pub fn estimate_and(&self, i: usize, j: usize) -> f64 {
        if self.strata.is_none() {
            return self.swamidass(self.and_ones(i, j));
        }
        let (p, s) = self.pair_stats(i, j);
        self.swamidass_at(s, p.and_ones)
    }

    /// `|X∩Y|̂_AND` from a precomputed `B_{X∩Y,1}` — the memoized Swamidass
    /// curve, exposed so batch callers (oracle row kernels) can hoist the
    /// row's word window out of their inner loop and still hit the table.
    #[inline]
    pub fn estimate_and_from_ones(&self, and_ones: usize) -> f64 {
        self.swamidass(and_ones)
    }

    /// `|X∩Y|̂_L` (Eq. 4) between sets `i` and `j`.
    #[inline]
    pub fn estimate_limit(&self, i: usize, j: usize) -> f64 {
        estimators::bf_intersect_limit(self.and_ones(i, j), self.b)
    }

    /// `|X∩Y|̂_OR` (Eq. 29); `nx`/`ny` are the exact set sizes. One fused
    /// AND pass — `B_{X∪Y,1}` comes from the cached popcounts, and
    /// Eq. 29 is `nx + ny − swami(B_{X∪Y,1})`, served from the memo table.
    #[inline]
    pub fn estimate_or(&self, i: usize, j: usize, nx: usize, ny: usize) -> f64 {
        let (p, s) = self.pair_stats(i, j);
        (nx + ny) as f64 - self.swamidass_at(s, p.or_ones)
    }

    /// All three estimators of the pair from one fused pass.
    #[inline]
    pub fn estimate_all(&self, i: usize, j: usize, nx: usize, ny: usize) -> BfPairEstimates {
        let (p, s) = self.pair_stats(i, j);
        BfPairEstimates {
            and_est: self.swamidass_at(s, p.and_ones),
            limit_est: estimators::bf_intersect_limit(p.and_ones, self.b),
            or_est: (nx + ny) as f64 - self.swamidass_at(s, p.or_ones),
        }
    }

    /// Bytes of sketch storage — what the paper's budget `s` accounts for.
    pub fn memory_bytes(&self) -> usize {
        self.data.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let items: Vec<u32> = (0..200).map(|i| i * 13 + 1).collect();
        let f = BloomFilter::from_set(&items, 4096, 3, 7);
        for &x in &items {
            assert!(f.contains(x));
        }
    }

    #[test]
    fn few_false_positives_when_sized_well() {
        let items: Vec<u32> = (0..100).collect();
        let f = BloomFilter::from_set(&items, 1 << 13, 3, 7);
        let fps = (1000u32..11_000).filter(|&x| f.contains(x)).count();
        // ~100 items in 8192 bits with b=3: fp rate well below 1 %.
        assert!(fps < 100, "false positives: {fps}/10000");
    }

    #[test]
    fn size_estimate_accuracy() {
        let items: Vec<u32> = (0..500).collect();
        let f = BloomFilter::from_set(&items, 1 << 14, 2, 3);
        let est = f.estimate_size();
        assert!((est - 500.0).abs() < 25.0, "est={est}");
    }

    #[test]
    fn intersection_estimates_track_truth() {
        // |X|=300, |Y|=300, |X∩Y|=100.
        let x: Vec<u32> = (0..300).collect();
        let y: Vec<u32> = (200..500).collect();
        let bits = 1 << 13;
        let fx = BloomFilter::from_set(&x, bits, 2, 9);
        let fy = BloomFilter::from_set(&y, bits, 2, 9);
        let and = fx.estimate_intersection_and(&fy);
        let or = fx.estimate_intersection_or(&fy, x.len(), y.len());
        assert!((and - 100.0).abs() < 30.0, "AND={and}");
        assert!((or - 100.0).abs() < 30.0, "OR={or}");
        // Limit estimator systematically overestimates the intersection
        // (both sets' bits overlap by chance) but stays in the ballpark.
        let lim = fx.estimate_intersection_limit(&fy);
        assert!(lim >= and * 0.5 && lim < 300.0, "L={lim}");
    }

    #[test]
    fn disjoint_sets_give_near_zero() {
        let x: Vec<u32> = (0..200).collect();
        let y: Vec<u32> = (10_000..10_200).collect();
        let fx = BloomFilter::from_set(&x, 1 << 13, 2, 1);
        let fy = BloomFilter::from_set(&y, 1 << 13, 2, 1);
        assert!(fx.estimate_intersection_and(&fy) < 20.0);
    }

    #[test]
    fn collection_matches_standalone_filters() {
        let sets: Vec<Vec<u32>> = (0..20)
            .map(|s| (0..50 + s * 7).map(|i| (i * 31 + s) as u32).collect())
            .collect();
        let col = BloomCollection::build(sets.len(), 1024, 2, 5, |i| &sets[i]);
        for (i, set) in sets.iter().enumerate() {
            let f = BloomFilter::from_set(set, 1024, 2, 5);
            assert_eq!(col.count_ones(i), f.count_ones(), "set {i}");
            for &x in set {
                assert!(col.contains(i, x));
            }
        }
        // Pairwise AND counts agree too.
        let f0 = BloomFilter::from_set(&sets[0], 1024, 2, 5);
        let f1 = BloomFilter::from_set(&sets[1], 1024, 2, 5);
        assert_eq!(col.and_ones(0, 1), f0.bits().and_count(f1.bits()));
        assert_eq!(col.or_ones(0, 1), f0.bits().or_count(f1.bits()));
    }

    #[test]
    fn fused_pair_path_matches_general_kernel() {
        let sets: Vec<Vec<u32>> = (0..12)
            .map(|s| (0..30 + s * 17).map(|i| (i * 13 + s) as u32).collect())
            .collect();
        let col = BloomCollection::build(sets.len(), 960, 3, 11, |i| &sets[i][..]);
        for i in 0..sets.len() {
            for j in 0..sets.len() {
                let fused = col.pair_ones(i, j);
                let general = crate::bitvec::and_or_ones_words(col.words(i), col.words(j));
                assert_eq!(fused, general, "pair ({i},{j})");
            }
        }
    }

    #[test]
    fn estimate_all_matches_individual_estimators() {
        let x: Vec<u32> = (0..300).collect();
        let y: Vec<u32> = (200..500).collect();
        let col = BloomCollection::build(2, 1 << 13, 2, 9, |i| if i == 0 { &x } else { &y });
        let all = col.estimate_all(0, 1, x.len(), y.len());
        assert_eq!(all.and_est, col.estimate_and(0, 1));
        assert_eq!(all.limit_est, col.estimate_limit(0, 1));
        assert_eq!(all.or_est, col.estimate_or(0, 1, x.len(), y.len()));
        // And the standalone-filter fused path agrees with the collection.
        let fx = BloomFilter::from_set(&x, 1 << 13, 2, 9);
        let fy = BloomFilter::from_set(&y, 1 << 13, 2, 9);
        let fall = fx.estimate_intersection_all(&fy, x.len(), y.len());
        assert_eq!(fall.and_est, fx.estimate_intersection_and(&fy));
        assert_eq!(fall.limit_est, fx.estimate_intersection_limit(&fy));
        assert_eq!(
            fall.or_est,
            fx.estimate_intersection_or(&fy, x.len(), y.len())
        );
        // or_ones via inclusion–exclusion equals the direct OR pass.
        assert_eq!(col.pair_ones(0, 1).or_ones, col.or_ones(0, 1));
    }

    #[test]
    fn memoized_estimators_match_closed_forms() {
        let x: Vec<u32> = (0..400).collect();
        let y: Vec<u32> = (100..600).collect();
        let col = BloomCollection::build(2, 4096, 2, 3, |i| if i == 0 { &x } else { &y });
        assert!(col.swami.is_some(), "table must materialize for small B");
        // Table lookups must be bit-identical to the closed-form estimators.
        assert_eq!(
            col.estimate_and(0, 1),
            estimators::bf_intersect_and(col.and_ones(0, 1), col.bits_per_set(), 2)
        );
        assert_eq!(
            col.estimate_or(0, 1, x.len(), y.len()),
            estimators::bf_intersect_or(col.or_ones(0, 1), col.bits_per_set(), 2, x.len(), y.len())
        );
        // Saturation entry (ones == B) stays finite.
        assert!(col.swami.as_ref().unwrap()[col.bits_per_set()].is_finite());
    }

    #[test]
    fn collection_rounds_bits_to_words() {
        let sets = [vec![1u32, 2, 3]];
        let col = BloomCollection::build(1, 100, 1, 1, |i| &sets[i][..]);
        assert_eq!(col.bits_per_set(), 128);
        assert_eq!(col.memory_bytes(), 16);
    }

    #[test]
    fn parallel_build_deterministic() {
        let sets: Vec<Vec<u32>> = (0..100)
            .map(|s| (0..200).map(|i| (i * 17 + s * 3) as u32).collect())
            .collect();
        let a = pg_parallel::with_threads(1, || {
            BloomCollection::build(100, 512, 2, 9, |i| &sets[i][..])
        });
        let b = pg_parallel::with_threads(8, || {
            BloomCollection::build(100, 512, 2, 9, |i| &sets[i][..])
        });
        assert_eq!(a.data, b.data);
    }

    #[test]
    fn incremental_insert_matches_rebuild() {
        let full: Vec<Vec<u32>> = (0..10)
            .map(|s| (0..80 + s * 9).map(|i| (i * 19 + s) as u32).collect())
            .collect();
        let want = BloomCollection::build(full.len(), 768, 2, 13, |i| &full[i][..]);
        // Seed with a prefix of each set, then stream the rest in place.
        let mut got =
            BloomCollection::build(full.len(), 768, 2, 13, |i| &full[i][..full[i].len() / 3]);
        for (i, set) in full.iter().enumerate() {
            let (head, tail) = set.split_at(set.len() / 3);
            let _ = head;
            got.insert_batch(i, tail);
            assert_eq!(got.words(i), want.words(i), "set {i}");
            assert_eq!(got.count_ones(i), want.count_ones(i), "set {i}");
        }
        // Single-element path agrees with the batch path.
        let mut one = BloomCollection::build(1, 256, 3, 5, |_| &[][..]);
        for x in [7u32, 8, 9] {
            one.insert(0, x);
        }
        let rebuilt = BloomCollection::build(1, 256, 3, 5, |_| &[7u32, 8, 9][..]);
        assert_eq!(one.words(0), rebuilt.words(0));
        assert_eq!(one.count_ones(0), rebuilt.count_ones(0));
    }

    #[test]
    fn folding_a_wide_filter_reproduces_the_narrow_build_exactly() {
        // The Lemire-bucket quotient map makes the fold *exact*: OR-ing
        // each run of r consecutive bits of an rB-bit filter yields, bit
        // for bit, the filter that would have been built at B directly.
        let items: Vec<u32> = (0..300).map(|i| i * 37 + 5).collect();
        for r in [2usize, 4, 8] {
            let narrow = BloomCollection::build(1, 512, 2, 11, |_| &items[..]);
            let wide = BloomCollection::build(1, 512 * r, 2, 11, |_| &items[..]);
            let mut folded = Vec::new();
            let ones = fold_words_into(wide.words(0), r, &mut folded);
            assert_eq!(&folded[..], narrow.words(0), "r={r}");
            assert_eq!(ones, narrow.count_ones(0), "r={r}");
        }
    }

    #[test]
    fn one_stratum_build_is_bit_identical_to_uniform() {
        let sets: Vec<Vec<u32>> = (0..30)
            .map(|s| (0..40 + s * 11).map(|i| (i * 23 + s) as u32).collect())
            .collect();
        let uni = BloomCollection::build(sets.len(), 768, 2, 13, |i| &sets[i][..]);
        let strat = BloomCollection::build_stratified(vec![768], vec![0; sets.len()], 2, 13, |i| {
            &sets[i][..]
        });
        assert!(strat.strata().is_none(), "1-stratum lowers to uniform");
        assert_eq!(uni.raw_words(), strat.raw_words());
        assert_eq!(uni.raw_ones(), strat.raw_ones());
    }

    #[test]
    fn cross_stratum_estimates_match_both_built_at_narrow_width() {
        let sets: Vec<Vec<u32>> = (0..16)
            .map(|s| (0..60 + s * 19).map(|i| (i * 31 + s) as u32).collect())
            .collect();
        // Alternate strata so plenty of cross-stratum pairs exist.
        let assign: Vec<u8> = (0..16).map(|i| (i % 3) as u8).collect();
        let strat =
            BloomCollection::build_stratified(vec![2048, 1024, 512], assign.clone(), 2, 7, |i| {
                &sets[i][..]
            });
        for i in 0..sets.len() {
            for j in 0..sets.len() {
                let w = strat.bits_of(i).min(strat.bits_of(j));
                let both_narrow = BloomCollection::build(2, w, 2, 7, |t| {
                    if t == 0 {
                        &sets[i][..]
                    } else {
                        &sets[j][..]
                    }
                });
                assert_eq!(
                    strat.and_ones(i, j),
                    both_narrow.and_ones(0, 1),
                    "pair ({i},{j})"
                );
                assert_eq!(
                    strat.estimate_and(i, j),
                    both_narrow.estimate_and(0, 1),
                    "pair ({i},{j})"
                );
                assert_eq!(
                    strat.estimate_or(i, j, sets[i].len(), sets[j].len()),
                    both_narrow.estimate_or(0, 1, sets[i].len(), sets[j].len()),
                    "pair ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn stratified_insert_matches_stratified_rebuild() {
        let full: Vec<Vec<u32>> = (0..12)
            .map(|s| (0..70 + s * 9).map(|i| (i * 19 + s) as u32).collect())
            .collect();
        let assign: Vec<u8> = (0..12).map(|i| (i % 2) as u8).collect();
        let want = BloomCollection::build_stratified(vec![1024, 512], assign.clone(), 2, 13, |i| {
            &full[i][..]
        });
        let mut got = BloomCollection::build_stratified(vec![1024, 512], assign, 2, 13, |i| {
            &full[i][..full[i].len() / 3]
        });
        for (i, set) in full.iter().enumerate() {
            got.insert_batch(i, &set[set.len() / 3..]);
            assert_eq!(got.words(i), want.words(i), "set {i}");
            assert_eq!(got.count_ones(i), want.count_ones(i), "set {i}");
        }
    }

    #[test]
    fn empty_set_filter_is_all_zero() {
        let sets: [Vec<u32>; 1] = [vec![]];
        let col = BloomCollection::build(1, 256, 3, 2, |i| &sets[i][..]);
        assert_eq!(col.count_ones(0), 0);
        assert_eq!(col.estimate_and(0, 0), 0.0);
    }
}
