//! Bloom filters (§II-D) and the flat per-vertex collection ProbGraph
//! builds over all neighborhoods.
//!
//! Every filter in a [`BloomCollection`] has the **same** bit length — that
//! is the paper's central load-balancing trick (Fig. 1, panel 5): every
//! neighborhood intersection costs exactly `B/W` word-AND operations, no
//! matter how skewed the degrees are.

use crate::bitvec::{and_count_words, count_ones_words, or_count_words, BitVec};
use crate::estimators;
use pg_hash::HashFamily;
use pg_parallel::parallel_for;

/// A standalone Bloom filter over `u32` items with `b` hash functions.
#[derive(Clone, Debug)]
pub struct BloomFilter {
    bits: BitVec,
    family: HashFamily,
}

impl BloomFilter {
    /// An empty filter of `bits` bits with `b` seeded hash functions.
    pub fn new(bits: usize, b: usize, seed: u64) -> Self {
        assert!(bits > 0, "Bloom filter needs at least one bit");
        assert!(b > 0, "Bloom filter needs at least one hash function");
        BloomFilter {
            bits: BitVec::zeros(bits),
            family: HashFamily::new(b, seed),
        }
    }

    /// Builds a filter directly from a set of items.
    pub fn from_set(items: &[u32], bits: usize, b: usize, seed: u64) -> Self {
        let mut f = Self::new(bits, b, seed);
        for &x in items {
            f.insert(x);
        }
        f
    }

    /// Inserts one item (sets its `b` bits).
    #[inline]
    pub fn insert(&mut self, item: u32) {
        for i in 0..self.family.len() {
            let pos = self.family.bucket(i, item as u64, self.bits.len_bits());
            self.bits.set(pos);
        }
    }

    /// Membership query; false positives possible, false negatives not.
    #[inline]
    pub fn contains(&self, item: u32) -> bool {
        (0..self.family.len())
            .all(|i| self.bits.get(self.family.bucket(i, item as u64, self.bits.len_bits())))
    }

    /// Number of hash functions `b`.
    #[inline]
    pub fn num_hashes(&self) -> usize {
        self.family.len()
    }

    /// Filter size in bits (`B_X`).
    #[inline]
    pub fn len_bits(&self) -> usize {
        self.bits.len_bits()
    }

    /// Number of set bits (`B_{X,1}`).
    #[inline]
    pub fn count_ones(&self) -> usize {
        self.bits.count_ones()
    }

    /// The underlying bit vector.
    #[inline]
    pub fn bits(&self) -> &BitVec {
        &self.bits
    }

    /// Single-set cardinality estimate `|X|̂_S` (Eq. 1).
    pub fn estimate_size(&self) -> f64 {
        estimators::bf_size_swamidass(self.count_ones(), self.len_bits(), self.num_hashes())
    }

    /// `|X∩Y|̂_AND` (Eq. 2) against another filter built with the same
    /// parameters and seed.
    pub fn estimate_intersection_and(&self, other: &BloomFilter) -> f64 {
        estimators::bf_intersect_and(
            self.bits.and_count(&other.bits),
            self.len_bits(),
            self.num_hashes(),
        )
    }

    /// `|X∩Y|̂_L` (Eq. 4).
    pub fn estimate_intersection_limit(&self, other: &BloomFilter) -> f64 {
        estimators::bf_intersect_limit(self.bits.and_count(&other.bits), self.num_hashes())
    }

    /// `|X∩Y|̂_OR` (Eq. 29); needs the exact set sizes.
    pub fn estimate_intersection_or(&self, other: &BloomFilter, nx: usize, ny: usize) -> f64 {
        estimators::bf_intersect_or(
            self.bits.or_count(&other.bits),
            self.len_bits(),
            self.num_hashes(),
            nx,
            ny,
        )
    }
}

/// All per-set Bloom filters of a ProbGraph representation, stored in one
/// flat word array (`n_sets × words_per_set`).
#[derive(Clone, Debug)]
pub struct BloomCollection {
    data: Vec<u64>,
    words_per_set: usize,
    bits_per_set: usize,
    b: usize,
    family: HashFamily,
}

impl BloomCollection {
    /// Builds filters for `n_sets` sets in parallel. `set(i)` must return
    /// the i-th input set; it is called once per set, from worker threads.
    ///
    /// `bits_per_set` is rounded up to a multiple of 64 so each filter owns
    /// whole words.
    pub fn build<'a, F>(n_sets: usize, bits_per_set: usize, b: usize, seed: u64, set: F) -> Self
    where
        F: Fn(usize) -> &'a [u32] + Sync,
    {
        assert!(b > 0, "need at least one hash function");
        let words_per_set = bits_per_set.div_ceil(64).max(1);
        let bits_per_set = words_per_set * 64;
        let family = HashFamily::new(b, seed);
        let mut data = vec![0u64; n_sets * words_per_set];
        {
            struct SendPtr(*mut u64);
            unsafe impl Send for SendPtr {}
            unsafe impl Sync for SendPtr {}
            let base = SendPtr(data.as_mut_ptr());
            let base = &base;
            let family = &family;
            parallel_for(n_sets, |s| {
                // SAFETY: window [s*wps, (s+1)*wps) is exclusive to set s.
                let window = unsafe {
                    std::slice::from_raw_parts_mut(base.0.add(s * words_per_set), words_per_set)
                };
                for &x in set(s) {
                    for i in 0..b {
                        let pos = family.bucket(i, x as u64, bits_per_set);
                        window[pos / 64] |= 1u64 << (pos % 64);
                    }
                }
            });
        }
        BloomCollection {
            data,
            words_per_set,
            bits_per_set,
            b,
            family,
        }
    }

    /// Number of filters.
    #[inline]
    pub fn len(&self) -> usize {
        if self.words_per_set == 0 {
            0
        } else {
            self.data.len() / self.words_per_set
        }
    }

    /// True when the collection holds no filters.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bits per filter (`B_X`, identical for every set by design).
    #[inline]
    pub fn bits_per_set(&self) -> usize {
        self.bits_per_set
    }

    /// Number of hash functions `b`.
    #[inline]
    pub fn num_hashes(&self) -> usize {
        self.b
    }

    /// The word window of filter `i`.
    #[inline]
    pub fn words(&self, i: usize) -> &[u64] {
        &self.data[i * self.words_per_set..(i + 1) * self.words_per_set]
    }

    /// Popcount of filter `i`.
    #[inline]
    pub fn count_ones(&self, i: usize) -> usize {
        count_ones_words(self.words(i))
    }

    /// Membership query against filter `i`.
    pub fn contains(&self, i: usize, item: u32) -> bool {
        let w = self.words(i);
        (0..self.b).all(|f| {
            let pos = self.family.bucket(f, item as u64, self.bits_per_set);
            (w[pos / 64] >> (pos % 64)) & 1 == 1
        })
    }

    /// `B_{X∩Y,1}`: fused AND+popcount of filters `i` and `j` — the `O(B/W)`
    /// kernel of Table IV.
    #[inline]
    pub fn and_ones(&self, i: usize, j: usize) -> usize {
        and_count_words(self.words(i), self.words(j))
    }

    /// `B_{X∪Y,1}`: fused OR+popcount.
    #[inline]
    pub fn or_ones(&self, i: usize, j: usize) -> usize {
        or_count_words(self.words(i), self.words(j))
    }

    /// `|X∩Y|̂_AND` (Eq. 2) between sets `i` and `j`.
    #[inline]
    pub fn estimate_and(&self, i: usize, j: usize) -> f64 {
        estimators::bf_intersect_and(self.and_ones(i, j), self.bits_per_set, self.b)
    }

    /// `|X∩Y|̂_L` (Eq. 4) between sets `i` and `j`.
    #[inline]
    pub fn estimate_limit(&self, i: usize, j: usize) -> f64 {
        estimators::bf_intersect_limit(self.and_ones(i, j), self.b)
    }

    /// `|X∩Y|̂_OR` (Eq. 29); `nx`/`ny` are the exact set sizes.
    #[inline]
    pub fn estimate_or(&self, i: usize, j: usize, nx: usize, ny: usize) -> f64 {
        estimators::bf_intersect_or(self.or_ones(i, j), self.bits_per_set, self.b, nx, ny)
    }

    /// Bytes of sketch storage — what the paper's budget `s` accounts for.
    pub fn memory_bytes(&self) -> usize {
        self.data.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let items: Vec<u32> = (0..200).map(|i| i * 13 + 1).collect();
        let f = BloomFilter::from_set(&items, 4096, 3, 7);
        for &x in &items {
            assert!(f.contains(x));
        }
    }

    #[test]
    fn few_false_positives_when_sized_well() {
        let items: Vec<u32> = (0..100).collect();
        let f = BloomFilter::from_set(&items, 1 << 13, 3, 7);
        let fps = (1000u32..11_000).filter(|&x| f.contains(x)).count();
        // ~100 items in 8192 bits with b=3: fp rate well below 1 %.
        assert!(fps < 100, "false positives: {fps}/10000");
    }

    #[test]
    fn size_estimate_accuracy() {
        let items: Vec<u32> = (0..500).collect();
        let f = BloomFilter::from_set(&items, 1 << 14, 2, 3);
        let est = f.estimate_size();
        assert!((est - 500.0).abs() < 25.0, "est={est}");
    }

    #[test]
    fn intersection_estimates_track_truth() {
        // |X|=300, |Y|=300, |X∩Y|=100.
        let x: Vec<u32> = (0..300).collect();
        let y: Vec<u32> = (200..500).collect();
        let bits = 1 << 13;
        let fx = BloomFilter::from_set(&x, bits, 2, 9);
        let fy = BloomFilter::from_set(&y, bits, 2, 9);
        let and = fx.estimate_intersection_and(&fy);
        let or = fx.estimate_intersection_or(&fy, x.len(), y.len());
        assert!((and - 100.0).abs() < 30.0, "AND={and}");
        assert!((or - 100.0).abs() < 30.0, "OR={or}");
        // Limit estimator systematically overestimates the intersection
        // (both sets' bits overlap by chance) but stays in the ballpark.
        let lim = fx.estimate_intersection_limit(&fy);
        assert!(lim >= and * 0.5 && lim < 300.0, "L={lim}");
    }

    #[test]
    fn disjoint_sets_give_near_zero() {
        let x: Vec<u32> = (0..200).collect();
        let y: Vec<u32> = (10_000..10_200).collect();
        let fx = BloomFilter::from_set(&x, 1 << 13, 2, 1);
        let fy = BloomFilter::from_set(&y, 1 << 13, 2, 1);
        assert!(fx.estimate_intersection_and(&fy) < 20.0);
    }

    #[test]
    fn collection_matches_standalone_filters() {
        let sets: Vec<Vec<u32>> = (0..20)
            .map(|s| (0..50 + s * 7).map(|i| (i * 31 + s) as u32).collect())
            .collect();
        let col = BloomCollection::build(sets.len(), 1024, 2, 5, |i| &sets[i]);
        for (i, set) in sets.iter().enumerate() {
            let f = BloomFilter::from_set(set, 1024, 2, 5);
            assert_eq!(col.count_ones(i), f.count_ones(), "set {i}");
            for &x in set {
                assert!(col.contains(i, x));
            }
        }
        // Pairwise AND counts agree too.
        let f0 = BloomFilter::from_set(&sets[0], 1024, 2, 5);
        let f1 = BloomFilter::from_set(&sets[1], 1024, 2, 5);
        assert_eq!(col.and_ones(0, 1), f0.bits().and_count(f1.bits()));
        assert_eq!(col.or_ones(0, 1), f0.bits().or_count(f1.bits()));
    }

    #[test]
    fn collection_rounds_bits_to_words() {
        let sets = [vec![1u32, 2, 3]];
        let col = BloomCollection::build(1, 100, 1, 1, |i| &sets[i][..]);
        assert_eq!(col.bits_per_set(), 128);
        assert_eq!(col.memory_bytes(), 16);
    }

    #[test]
    fn parallel_build_deterministic() {
        let sets: Vec<Vec<u32>> = (0..100)
            .map(|s| (0..200).map(|i| (i * 17 + s * 3) as u32).collect())
            .collect();
        let a = pg_parallel::with_threads(1, || {
            BloomCollection::build(100, 512, 2, 9, |i| &sets[i][..])
        });
        let b = pg_parallel::with_threads(8, || {
            BloomCollection::build(100, 512, 2, 9, |i| &sets[i][..])
        });
        assert_eq!(a.data, b.data);
    }

    #[test]
    fn empty_set_filter_is_all_zero() {
        let sets: [Vec<u32>; 1] = [vec![]];
        let col = BloomCollection::build(1, 256, 3, 2, |i| &sets[i][..]);
        assert_eq!(col.count_ones(0), 0);
        assert_eq!(col.estimate_and(0, 0), 0.0);
    }
}
