//! HyperLogLog — the "beyond BF and MH" extension (§X of the paper).
//!
//! §X notes that *"ProbGraph embraces such data structures: while we focus
//! on BF and MH, one could easily extend ProbGraph with other structures"*
//! and names HyperLogLog explicitly. This module provides that extension:
//! a standard HLL with the Flajolet et al. bias correction and
//! linear-counting small-range correction, plus lossless merging, so
//! `|X∩Y|` can be estimated by inclusion–exclusion exactly like KMV.

use pg_hash::HashFamily;

/// A HyperLogLog cardinality sketch with `2^precision` registers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HyperLogLog {
    registers: Vec<u8>,
    precision: u8,
    seed: u64,
}

impl HyperLogLog {
    /// Creates an empty sketch. `precision` must lie in `4..=16`
    /// (16 registers … 64 Ki registers; standard HLL range).
    pub fn new(precision: u8, seed: u64) -> Self {
        assert!(
            (4..=16).contains(&precision),
            "precision {precision} outside 4..=16"
        );
        HyperLogLog {
            registers: vec![0u8; 1 << precision],
            precision,
            seed,
        }
    }

    /// Builds a sketch directly from a set of items.
    pub fn from_set(items: &[u32], precision: u8, seed: u64) -> Self {
        let mut h = Self::new(precision, seed);
        for &x in items {
            h.insert(x);
        }
        h
    }

    /// Number of registers `m = 2^precision`.
    #[inline]
    pub fn num_registers(&self) -> usize {
        self.registers.len()
    }

    /// Inserts one item.
    pub fn insert(&mut self, item: u32) {
        let family = HashFamily::new(1, self.seed);
        let h = family.hash64(0, item as u64);
        self.insert_hash(h);
    }

    #[inline]
    fn insert_hash(&mut self, h: u64) {
        let p = self.precision as u32;
        let idx = (h >> (64 - p)) as usize;
        let rest = h << p;
        // Rank: position of the leftmost 1 in the remaining bits, 1-based;
        // all-zero rest gets the maximum rank.
        let rank = (rest.leading_zeros() + 1).min(64 - p + 1) as u8;
        if rank > self.registers[idx] {
            self.registers[idx] = rank;
        }
    }

    fn alpha(m: usize) -> f64 {
        match m {
            16 => 0.673,
            32 => 0.697,
            64 => 0.709,
            _ => 0.7213 / (1.0 + 1.079 / m as f64),
        }
    }

    /// Estimated cardinality with small-range (linear counting) correction.
    pub fn estimate(&self) -> f64 {
        let m = self.num_registers() as f64;
        let sum: f64 = self.registers.iter().map(|&r| 2f64.powi(-(r as i32))).sum();
        let raw = Self::alpha(self.num_registers()) * m * m / sum;
        if raw <= 2.5 * m {
            let zeros = self.registers.iter().filter(|&&r| r == 0).count();
            if zeros > 0 {
                return m * (m / zeros as f64).ln();
            }
        }
        raw
    }

    /// Lossless merge: register-wise maximum. Panics on mismatched
    /// precision or seed (sketches would not be comparable).
    pub fn merge(&self, other: &HyperLogLog) -> HyperLogLog {
        assert_eq!(self.precision, other.precision, "precision mismatch");
        assert_eq!(self.seed, other.seed, "seed mismatch");
        HyperLogLog {
            registers: self
                .registers
                .iter()
                .zip(&other.registers)
                .map(|(&a, &b)| a.max(b))
                .collect(),
            precision: self.precision,
            seed: self.seed,
        }
    }

    /// `|X∩Y|̂` by inclusion–exclusion: `|X|̂ + |Y|̂ − |X∪Y|̂`, clamped at 0.
    pub fn estimate_intersection(&self, other: &HyperLogLog) -> f64 {
        (self.estimate() + other.estimate() - self.merge(other).estimate()).max(0.0)
    }

    /// Bytes of sketch storage.
    pub fn memory_bytes(&self) -> usize {
        self.registers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_estimates_zero() {
        let h = HyperLogLog::new(10, 1);
        assert!(h.estimate() < 1e-9);
    }

    #[test]
    fn small_range_uses_linear_counting() {
        let items: Vec<u32> = (0..100).collect();
        let h = HyperLogLog::from_set(&items, 12, 3);
        let est = h.estimate();
        assert!((est - 100.0).abs() < 10.0, "est={est}");
    }

    #[test]
    fn large_range_accuracy() {
        let items: Vec<u32> = (0..200_000).collect();
        let h = HyperLogLog::from_set(&items, 12, 3);
        let est = h.estimate();
        // Standard error ≈ 1.04/√m ≈ 1.6 % at p=12; allow 6 %.
        assert!((est - 200_000.0).abs() < 0.06 * 200_000.0, "est={est}");
    }

    #[test]
    fn merge_equals_union_build() {
        let x: Vec<u32> = (0..5000).collect();
        let y: Vec<u32> = (2500..7500).collect();
        let hx = HyperLogLog::from_set(&x, 10, 7);
        let hy = HyperLogLog::from_set(&y, 10, 7);
        let union: Vec<u32> = (0..7500).collect();
        let hu = HyperLogLog::from_set(&union, 10, 7);
        assert_eq!(hx.merge(&hy), hu);
    }

    #[test]
    fn intersection_estimate_ballpark() {
        let x: Vec<u32> = (0..20_000).collect();
        let y: Vec<u32> = (10_000..30_000).collect(); // true inter = 10_000
        let hx = HyperLogLog::from_set(&x, 14, 5);
        let hy = HyperLogLog::from_set(&y, 14, 5);
        let i = hx.estimate_intersection(&hy);
        // Inclusion-exclusion amplifies relative error; 30 % is realistic.
        assert!((i - 10_000.0).abs() < 3000.0, "i={i}");
    }

    #[test]
    #[should_panic(expected = "precision mismatch")]
    fn merge_rejects_mismatched_precision() {
        let a = HyperLogLog::new(10, 1);
        let b = HyperLogLog::new(11, 1);
        let _ = a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "outside 4..=16")]
    fn rejects_bad_precision() {
        HyperLogLog::new(2, 0);
    }

    #[test]
    fn insert_is_idempotent() {
        let mut a = HyperLogLog::new(8, 2);
        for _ in 0..100 {
            a.insert(42);
        }
        let single = HyperLogLog::from_set(&[42], 8, 2);
        assert_eq!(a, single);
        assert!((a.estimate() - 1.0).abs() < 0.1);
    }
}
