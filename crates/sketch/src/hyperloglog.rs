//! HyperLogLog — the "beyond BF and MH" extension (§X of the paper).
//!
//! §X notes that *"ProbGraph embraces such data structures: while we focus
//! on BF and MH, one could easily extend ProbGraph with other structures"*
//! and names HyperLogLog explicitly. This module provides that extension:
//! a standard HLL with the Flajolet et al. bias correction and
//! linear-counting small-range correction, plus lossless merging, so
//! `|X∩Y|` can be estimated by inclusion–exclusion exactly like KMV.
//!
//! A collection may be **stratified** ([`HllStrata`]): each set's
//! precision comes from its stratum. Cross-precision pairs fold the wider
//! window down with [`fold_hll_registers_into`] — an *exact* downgrade
//! (the folded registers equal the sketch built at the narrower precision
//! directly) — then run the usual fused union pass at the narrow width.

use crate::cowvec::cow_clear;
use pg_hash::HashFamily;
use pg_parallel::parallel_for;
use std::borrow::Cow;

/// `2^-r` for `r ≤ 64`, built directly in the exponent field: `2^-r` has
/// exponent `1023 − r` and zero mantissa (`r ≤ 64` keeps the value
/// normal), so the bit pattern is exact and costs two integer ops — no
/// table load competing with the register streams for the load ports,
/// which is what bounds the fused union passes.
#[inline]
fn pow_neg2(r: u8) -> f64 {
    debug_assert!(r <= 64);
    f64::from_bits((1023 - r as u64) << 52)
}

/// Flajolet et al. bias-correction constant `α_m`.
fn alpha(m: usize) -> f64 {
    match m {
        16 => 0.673,
        32 => 0.697,
        64 => 0.709,
        _ => 0.7213 / (1.0 + 1.079 / m as f64),
    }
}

/// The standard HLL estimate from the register summary statistics: `m`
/// registers with harmonic sum `sum = Σ 2^-r` of which `zeros` are zero,
/// with the linear-counting small-range correction.
///
/// Range-correction boundaries (audited; pinned by the
/// `range_correction_*` tests below):
///
/// * **Small range** (`raw ≤ 2.5m`, `zeros > 0`): linear counting
///   `m·ln(m/zeros)` — the better estimator while registers are sparse.
///   `zeros == m` (an empty sketch) gives exactly `0`.
/// * **`zeros == 0` with `raw ≤ 2.5m`**: linear counting is undefined
///   (`ln(m/0)`), so the raw estimate is returned. This happens with
///   small probability right at the crossover; raw is biased high there
///   but finite, which beats `inf`.
/// * **Large range / u32-universe top end**: the classic 32-bit HLL
///   correction `−2³²·ln(1 − E/2³²)` compensates for *hash collisions*
///   in a 32-bit hash space. This implementation hashes through 64-bit
///   Murmur finalizers ([`split_hash`] consumes all 64 bits), so the
///   collision term is negligible even at the full `u32` item universe
///   (`n ≤ 2³² ≪ 2⁶⁴`) and no large-range branch is needed — standard
///   practice for 64-bit HLL. The raw estimate stays finite up to
///   all-registers-saturated (`sum ≥ m·2^{-(64-p+1)}` by construction).
fn estimate_from_stats(m: usize, sum: f64, zeros: usize) -> f64 {
    let mf = m as f64;
    let raw = alpha(m) * mf * mf / sum;
    if raw <= 2.5 * mf && zeros > 0 {
        return mf * (mf / zeros as f64).ln();
    }
    raw
}

/// Harmonic sum `Σ 2^-r` and zero count of a register window — the inputs
/// [`estimate_from_stats`] needs.
#[inline]
fn register_stats(registers: &[u8]) -> (f64, usize) {
    let mut sum = 0.0f64;
    let mut zeros = 0usize;
    for &r in registers {
        sum += pow_neg2(r);
        zeros += usize::from(r == 0);
    }
    (sum, zeros)
}

/// Folds `h` into a `(register index, rank)` pair at precision `p`.
#[inline]
fn split_hash(h: u64, p: u32) -> (usize, u8) {
    let idx = (h >> (64 - p)) as usize;
    let rest = h << p;
    // Rank: position of the leftmost 1 in the remaining bits, 1-based;
    // all-zero rest gets the maximum rank.
    let rank = (rest.leading_zeros() + 1).min(64 - p + 1) as u8;
    (idx, rank)
}

/// Folds a `2^p_from`-register HLL window down to precision
/// `p_to ≤ p_from`, appending the `2^p_to` narrow registers to `out`.
///
/// **Exact**: the result is bit-identical to the sketch built at `p_to`
/// directly. Writing `q = p_from − p_to`, a hash with wide index
/// `idx = (j << q) | low` has narrow index `j`, and its narrow rank is
/// determined by where its *index bits* reenter the rank field:
///
/// * `low ≠ 0`: the leading 1 of `low` becomes the leading 1 of the
///   shifted hash, so the narrow rank is `q − ilog2(low)` — the same for
///   every element of that wide register (its stored rank is irrelevant
///   beyond being nonzero, i.e. occupied).
/// * `low == 0`: the `q` index bits prepend zeros, so each element's
///   narrow rank is its wide rank plus `q`; the max commutes, giving
///   `q + r`. (The rank caps agree: `64−p+1+q = 64−p_to+1`.)
///
/// Register-wise max over the group then reproduces the narrow build,
/// since max over the union of element sets is the max of group maxima.
pub fn fold_hll_registers_into(wide: &[u8], p_from: u32, p_to: u32, out: &mut Vec<u8>) {
    debug_assert!(p_to <= p_from, "can only fold downward");
    debug_assert_eq!(wide.len(), 1usize << p_from);
    let q = p_from - p_to;
    if q == 0 {
        out.extend_from_slice(wide);
        return;
    }
    let group = 1usize << q;
    for j in 0..(1usize << p_to) {
        let base = j << q;
        let mut best = 0u8;
        for (low, &r) in wide[base..base + group].iter().enumerate() {
            if r == 0 {
                continue;
            }
            let contrib = if low == 0 {
                q as u8 + r
            } else {
                (q - low.ilog2()) as u8
            };
            best = best.max(contrib);
        }
        out.push(best);
    }
}

/// A HyperLogLog cardinality sketch with `2^precision` registers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HyperLogLog {
    registers: Vec<u8>,
    precision: u8,
    seed: u64,
}

impl HyperLogLog {
    /// Creates an empty sketch. `precision` must lie in `4..=16`
    /// (16 registers … 64 Ki registers; standard HLL range).
    pub fn new(precision: u8, seed: u64) -> Self {
        assert!(
            (4..=16).contains(&precision),
            "precision {precision} outside 4..=16"
        );
        HyperLogLog {
            registers: vec![0u8; 1 << precision],
            precision,
            seed,
        }
    }

    /// Builds a sketch directly from a set of items (the hash family is
    /// constructed once, not per item).
    pub fn from_set(items: &[u32], precision: u8, seed: u64) -> Self {
        let mut h = Self::new(precision, seed);
        let family = HashFamily::new(1, seed);
        for &x in items {
            h.insert_hash(family.hash64(0, x as u64));
        }
        h
    }

    /// Number of registers `m = 2^precision`.
    #[inline]
    pub fn num_registers(&self) -> usize {
        self.registers.len()
    }

    /// Inserts one item.
    pub fn insert(&mut self, item: u32) {
        let family = HashFamily::new(1, self.seed);
        let h = family.hash64(0, item as u64);
        self.insert_hash(h);
    }

    #[inline]
    fn insert_hash(&mut self, h: u64) {
        let (idx, rank) = split_hash(h, self.precision as u32);
        if rank > self.registers[idx] {
            self.registers[idx] = rank;
        }
    }

    /// Estimated cardinality with small-range (linear counting) correction.
    pub fn estimate(&self) -> f64 {
        let (sum, zeros) = register_stats(&self.registers);
        estimate_from_stats(self.num_registers(), sum, zeros)
    }

    /// Lossless merge: register-wise maximum. Panics on mismatched
    /// precision or seed (sketches would not be comparable).
    pub fn merge(&self, other: &HyperLogLog) -> HyperLogLog {
        assert_eq!(self.precision, other.precision, "precision mismatch");
        assert_eq!(self.seed, other.seed, "seed mismatch");
        HyperLogLog {
            registers: self
                .registers
                .iter()
                .zip(&other.registers)
                .map(|(&a, &b)| a.max(b))
                .collect(),
            precision: self.precision,
            seed: self.seed,
        }
    }

    /// `|X∩Y|̂` by inclusion–exclusion: `|X|̂ + |Y|̂ − |X∪Y|̂`, clamped at 0.
    pub fn estimate_intersection(&self, other: &HyperLogLog) -> f64 {
        (self.estimate() + other.estimate() - self.merge(other).estimate()).max(0.0)
    }

    /// Bytes of sketch storage.
    pub fn memory_bytes(&self) -> usize {
        self.registers.len()
    }
}

/// All per-set HLL sketches of a ProbGraph representation, stored in one
/// flat register array (`n_sets × 2^precision` bytes) — same fixed-size
/// load-balancing layout as [`crate::BloomCollection`].
///
/// `|X∩Y|̂` follows by inclusion–exclusion against the exact set sizes
/// (`nx + ny − |X∪Y|̂`, the Eq. 41 shape), where `|X∪Y|̂` comes from a
/// single fused register-wise `max` + harmonic-sum pass — no merged sketch
/// is ever materialized.
/// The register array is copy-on-write over `'a` (see
/// [`crate::BloomCollectionIn`]): borrowed collections serve a validated
/// snapshot buffer in place; the owned alias [`HyperLogLogCollection`] is
/// the ordinary built/streamed form.
#[derive(Clone, Debug)]
pub struct HyperLogLogCollectionIn<'a> {
    registers: Cow<'a, [u8]>,
    precision: u8,
    seed: u64,
    /// The seeded hash function — kept after construction so streamed
    /// elements can be absorbed in place (register max updates).
    family: HashFamily,
    /// `Some` when the collection is stratified: per-set precisions and
    /// window offsets live here and `precision` holds the **widest**
    /// stratum's precision.
    strata: Option<HllStrata<'a>>,
}

/// The owned (`'static`) form of [`HyperLogLogCollectionIn`].
pub type HyperLogLogCollection = HyperLogLogCollectionIn<'static>;

/// Per-set geometry of a stratified HLL collection: stratum assignment,
/// per-stratum precisions, and the resulting register-window offsets.
#[derive(Clone, Debug)]
pub struct HllStrata<'a> {
    assign: Cow<'a, [u8]>,
    ps: Vec<u8>,
    offsets: Vec<u64>,
}

impl<'a> HllStrata<'a> {
    fn new(assign: Cow<'a, [u8]>, ps: Vec<u8>) -> Self {
        assert!(!ps.is_empty(), "need at least one stratum");
        assert!(
            ps.iter().all(|p| (4..=16).contains(p)),
            "precision outside 4..=16"
        );
        let mut offsets = Vec::with_capacity(assign.len() + 1);
        let mut off = 0u64;
        offsets.push(0);
        for &a in assign.iter() {
            off += 1u64 << ps[a as usize];
            offsets.push(off);
        }
        HllStrata {
            assign,
            ps,
            offsets,
        }
    }

    /// Per-set stratum indices.
    #[inline]
    pub fn assign(&self) -> &[u8] {
        &self.assign
    }

    /// Per-stratum precisions.
    #[inline]
    pub fn stratum_ps(&self) -> &[u8] {
        &self.ps
    }

    fn into_owned(self) -> HllStrata<'static> {
        HllStrata {
            assign: Cow::Owned(self.assign.into_owned()),
            ps: self.ps,
            offsets: self.offsets,
        }
    }
}

impl<'a> HyperLogLogCollectionIn<'a> {
    /// Builds sketches for `n_sets` sets in parallel. `precision` must lie
    /// in `4..=16`; `set(i)` returns the i-th input set.
    pub fn build<'s, F>(n_sets: usize, precision: u8, seed: u64, set: F) -> Self
    where
        F: Fn(usize) -> &'s [u32] + Sync,
    {
        assert!(
            (4..=16).contains(&precision),
            "precision {precision} outside 4..=16"
        );
        let m = 1usize << precision;
        let mut registers = vec![0u8; n_sets * m];
        {
            struct SendPtr(*mut u8);
            unsafe impl Send for SendPtr {}
            unsafe impl Sync for SendPtr {}
            let base = SendPtr(registers.as_mut_ptr());
            let base = &base;
            let family = HashFamily::new(1, seed);
            let family = &family;
            let p = precision as u32;
            parallel_for(n_sets, move |s| {
                // SAFETY: window [s*m, (s+1)*m) is exclusive to set s.
                let window = unsafe { std::slice::from_raw_parts_mut(base.0.add(s * m), m) };
                for &x in set(s) {
                    let (idx, rank) = split_hash(family.hash64(0, x as u64), p);
                    if rank > window[idx] {
                        window[idx] = rank;
                    }
                }
            });
        }
        HyperLogLogCollectionIn {
            registers: Cow::Owned(registers),
            precision,
            seed,
            family: HashFamily::new(1, seed),
            strata: None,
        }
    }

    /// Builds a **stratified** collection: set `i` gets
    /// `2^stratum_ps[assign[i]]` registers. With a single stratum this
    /// lowers onto [`HyperLogLogCollectionIn::build`] and is bit-identical
    /// to it.
    pub fn build_stratified<'s, F>(stratum_ps: Vec<u8>, assign: Vec<u8>, seed: u64, set: F) -> Self
    where
        F: Fn(usize) -> &'s [u32] + Sync,
    {
        if stratum_ps.len() == 1 {
            return Self::build(assign.len(), stratum_ps[0], seed, set);
        }
        let n_sets = assign.len();
        let strata = HllStrata::new(Cow::Owned(assign), stratum_ps);
        let total = strata.offsets[n_sets] as usize;
        let mut registers = vec![0u8; total];
        {
            struct SendPtr(*mut u8);
            unsafe impl Send for SendPtr {}
            unsafe impl Sync for SendPtr {}
            let base = SendPtr(registers.as_mut_ptr());
            let base = &base;
            let family = HashFamily::new(1, seed);
            let family = &family;
            let strata_ref = &strata;
            parallel_for(n_sets, move |s| {
                let start = strata_ref.offsets[s] as usize;
                let m = (strata_ref.offsets[s + 1] - strata_ref.offsets[s]) as usize;
                let p = strata_ref.ps[strata_ref.assign[s] as usize] as u32;
                // SAFETY: offsets are strictly increasing, so each set's
                // window is exclusive to it.
                let window = unsafe { std::slice::from_raw_parts_mut(base.0.add(start), m) };
                for &x in set(s) {
                    let (idx, rank) = split_hash(family.hash64(0, x as u64), p);
                    if rank > window[idx] {
                        window[idx] = rank;
                    }
                }
            });
        }
        let precision = *strata.ps.iter().max().unwrap();
        HyperLogLogCollectionIn {
            registers: Cow::Owned(registers),
            precision,
            seed,
            family: HashFamily::new(1, seed),
            strata: Some(strata),
        }
    }

    /// Reconstructs a collection from an already-materialized flat
    /// register array (the snapshot load path; owned `Vec<u8>` or
    /// borrowed `&'a [u8]`). `registers` must hold a whole number of
    /// `2^precision`-byte windows with every rank in
    /// `0..=(64 - precision + 1)`; the snapshot loader validates this
    /// before calling.
    pub fn from_raw_registers(
        registers: impl Into<Cow<'a, [u8]>>,
        precision: u8,
        seed: u64,
    ) -> Self {
        let registers = registers.into();
        assert!(
            (4..=16).contains(&precision),
            "precision {precision} outside 4..=16"
        );
        assert_eq!(
            registers.len() % (1usize << precision),
            0,
            "register array must hold whole sketches"
        );
        HyperLogLogCollectionIn {
            registers,
            precision,
            seed,
            family: HashFamily::new(1, seed),
            strata: None,
        }
    }

    /// Stratified sibling of
    /// [`HyperLogLogCollectionIn::from_raw_registers`] (the snapshot load
    /// path): the register array must hold each set's
    /// `2^stratum_ps[assign[i]]`-byte window back to back.
    pub fn from_raw_registers_stratified(
        registers: impl Into<Cow<'a, [u8]>>,
        stratum_ps: Vec<u8>,
        assign: impl Into<Cow<'a, [u8]>>,
        seed: u64,
    ) -> Self {
        let assign = assign.into();
        if stratum_ps.len() == 1 {
            return Self::from_raw_registers(registers, stratum_ps[0], seed);
        }
        let registers = registers.into();
        let n_sets = assign.len();
        let strata = HllStrata::new(assign, stratum_ps);
        assert_eq!(
            strata.offsets[n_sets] as usize,
            registers.len(),
            "register array does not match the stratified geometry"
        );
        let precision = *strata.ps.iter().max().unwrap();
        HyperLogLogCollectionIn {
            registers,
            precision,
            seed,
            family: HashFamily::new(1, seed),
            strata: Some(strata),
        }
    }

    /// The whole flat register array (`n_sets × 2^precision`) — the
    /// byte-stable payload snapshots persist.
    #[inline]
    pub fn raw_registers(&self) -> &[u8] {
        &self.registers
    }

    /// Assembles one collection holding the concatenation of `parts`'
    /// register arrays, in order — the serving layer's copy-on-publish
    /// path. All parts must share `(precision, seed)`.
    pub fn gather(parts: &[&HyperLogLogCollectionIn<'_>]) -> HyperLogLogCollection {
        let first = parts.first().expect("gather needs at least one part");
        let mut out = HyperLogLogCollectionIn {
            registers: Cow::Owned(Vec::new()),
            precision: first.precision,
            seed: first.seed,
            family: first.family.clone(),
            strata: None,
        };
        out.gather_into(parts);
        out
    }

    /// In-place form of [`HyperLogLogCollection::gather`], reusing `self`'s
    /// register allocation (the double-buffer path).
    pub fn gather_into(&mut self, parts: &[&HyperLogLogCollectionIn<'_>]) {
        let first = parts.first().expect("gather needs at least one part");
        if let Some(fs) = &first.strata {
            let ps = fs.ps.clone();
            let mut assign = Vec::new();
            let registers = cow_clear(&mut self.registers);
            for p in parts {
                let pst = p
                    .strata
                    .as_ref()
                    .expect("gather: mixed uniform/stratified parts");
                assert_eq!(pst.ps, ps, "gather: mismatched stratum precisions");
                assert_eq!(p.seed, self.seed, "gather: mismatched seeds");
                registers.extend_from_slice(&p.registers);
                assign.extend_from_slice(&pst.assign);
            }
            self.precision = first.precision;
            self.strata = Some(HllStrata::new(Cow::Owned(assign), ps));
            return;
        }
        self.strata = None;
        let registers = cow_clear(&mut self.registers);
        for p in parts {
            assert!(p.strata.is_none(), "gather: mixed uniform/stratified parts");
            assert_eq!(p.precision, self.precision, "gather: mismatched precision");
            assert_eq!(p.seed, self.seed, "gather: mismatched seeds");
            registers.extend_from_slice(&p.registers);
        }
    }

    /// Detaches the collection from any borrowed snapshot buffer, cloning
    /// the registers if they were served in place. No-op for owned data.
    pub fn into_owned(self) -> HyperLogLogCollection {
        HyperLogLogCollectionIn {
            registers: Cow::Owned(self.registers.into_owned()),
            precision: self.precision,
            seed: self.seed,
            family: self.family,
            strata: self.strata.map(HllStrata::into_owned),
        }
    }

    /// Inserts one item into sketch `i` in place. HLL registers are
    /// monotone maxima, so insertion is naturally incremental and the
    /// result is bit-identical to rebuilding over the extended set.
    #[inline]
    pub fn insert(&mut self, i: usize, x: u32) {
        self.insert_batch(i, std::slice::from_ref(&x));
    }

    /// Batched per-set insert: absorbs all of `xs` into sketch `i` with
    /// the register window hoisted out of the element loop.
    pub fn insert_batch(&mut self, i: usize, xs: &[u32]) {
        let r = self.reg_range(i);
        let p = self.precision_of(i) as u32;
        let window = &mut self.registers.to_mut()[r];
        for &x in xs {
            let (idx, rank) = split_hash(self.family.hash64(0, x as u64), p);
            if rank > window[idx] {
                window[idx] = rank;
            }
        }
    }

    /// Number of sketches.
    #[inline]
    pub fn len(&self) -> usize {
        match &self.strata {
            Some(st) => st.assign.len(),
            // precision is asserted into 4..=16 at build, so the register
            // count per set is a nonzero power of two.
            None => self.registers.len() >> self.precision,
        }
    }

    /// True when the collection holds no sketches.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.registers.is_empty()
    }

    /// Configured precision (`m = 2^precision` registers per set) — the
    /// **widest** stratum's precision when stratified (per-set precisions
    /// come from [`HyperLogLogCollectionIn::precision_of`]).
    #[inline]
    pub fn precision(&self) -> u8 {
        self.precision
    }

    /// Register range of set `i` in the flat array.
    #[inline]
    fn reg_range(&self, i: usize) -> std::ops::Range<usize> {
        match &self.strata {
            Some(st) => st.offsets[i] as usize..st.offsets[i + 1] as usize,
            None => {
                let m = 1usize << self.precision;
                i * m..(i + 1) * m
            }
        }
    }

    /// Precision of set `i`.
    #[inline]
    pub fn precision_of(&self, i: usize) -> u8 {
        match &self.strata {
            Some(st) => st.ps[st.assign[i] as usize],
            None => self.precision,
        }
    }

    /// Stratum index of set `i` (0 for uniform collections).
    #[inline]
    pub fn stratum_of(&self, i: usize) -> usize {
        self.strata.as_ref().map_or(0, |st| st.assign[i] as usize)
    }

    /// The stratified geometry, when present.
    #[inline]
    pub fn strata(&self) -> Option<&HllStrata<'a>> {
        self.strata.as_ref()
    }

    /// The register window of set `i`.
    #[inline]
    pub fn registers(&self, i: usize) -> &[u8] {
        &self.registers[self.reg_range(i)]
    }

    /// `|X|̂` of set `i` (HLL's own estimate; callers usually have the
    /// exact sizes and only need this for diagnostics).
    pub fn estimate_size(&self, i: usize) -> f64 {
        let w = self.registers(i);
        let m = w.len();
        let (sum, zeros) = register_stats(w);
        estimate_from_stats(m, sum, zeros)
    }

    /// `|X∪Y|̂` of sets `i` and `j`: one fused register-wise-max pass over
    /// the two windows accumulating the harmonic sum and zero count of the
    /// (never materialized) merged sketch. Cross-precision pairs fold the
    /// wider window down first ([`fold_hll_registers_into`] — exact), so
    /// the estimate equals both sketches built at the narrower precision.
    #[inline]
    pub fn estimate_union(&self, i: usize, j: usize) -> f64 {
        let (a, b) = (self.registers(i), self.registers(j));
        if a.len() > b.len() {
            let mut folded = Vec::with_capacity(b.len());
            fold_hll_registers_into(
                a,
                self.precision_of(i) as u32,
                self.precision_of(j) as u32,
                &mut folded,
            );
            return self.union_estimate_with_row(&folded, j);
        }
        self.union_estimate_with_row(a, j)
    }

    /// `|X∪Y|̂` with the source register window already pinned — the
    /// scalar row-sweep path (hoist `registers(i)` once per row instead of
    /// re-slicing per pair). Identical to
    /// [`HyperLogLogCollection::estimate_union`] when `row` is window `i`.
    pub fn union_estimate_with_row(&self, row: &[u8], j: usize) -> f64 {
        let b = self.registers(j);
        if b.len() > row.len() {
            // Destination is in a wider stratum: fold it down to the
            // row's precision (exact), then fuse at the narrow width.
            let q = (b.len() / row.len()).trailing_zeros();
            let p_dst = self.precision_of(j) as u32;
            let mut folded = Vec::with_capacity(row.len());
            fold_hll_registers_into(b, p_dst, p_dst - q, &mut folded);
            return Self::union_rows(row, &folded);
        }
        debug_assert_eq!(b.len(), row.len(), "row wider than destination");
        Self::union_rows(row, b)
    }

    /// The fused max + harmonic-sum pass over two equal-width windows.
    #[inline]
    fn union_rows(a: &[u8], b: &[u8]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        let b = &b[..a.len()];
        let mut sum = 0.0f64;
        let mut zeros = 0usize;
        for t in 0..a.len() {
            let r = a[t].max(b[t]);
            sum += pow_neg2(r);
            zeros += usize::from(r == 0);
        }
        estimate_from_stats(a.len(), sum, zeros)
    }

    /// Multi-lane `|X∪Y|̂`: one pass over the pinned source window `row`
    /// merges it against `L` destination windows with independent
    /// harmonic-sum/zero-count accumulators —
    /// `out[l] == union_estimate_with_row(row, js[l])` bit-for-bit, since
    /// each lane accumulates in the same register order as the scalar
    /// pass. The win is instruction-level parallelism: the serial `f64`
    /// add chain of one harmonic sum is latency-bound, and `L`
    /// independent chains pipeline in parallel.
    pub fn union_estimates_multi<const L: usize>(&self, row: &[u8], js: [usize; L]) -> [f64; L] {
        // Lanes must share the row's width — stratified sweeps group
        // destinations by stratum before fusing.
        let bs: [&[u8]; L] = js.map(|j| {
            let b = self.registers(j);
            debug_assert_eq!(b.len(), row.len(), "multi-lane needs same-width lanes");
            &b[..row.len()]
        });
        let mut sum = [0.0f64; L];
        let mut zeros = [0usize; L];
        for (t, &x) in row.iter().enumerate() {
            for l in 0..L {
                let r = x.max(bs[l][t]);
                sum[l] += pow_neg2(r);
                zeros[l] += usize::from(r == 0);
            }
        }
        let mut out = [0.0f64; L];
        for l in 0..L {
            out[l] = estimate_from_stats(row.len(), sum[l], zeros[l]);
        }
        out
    }

    /// The inclusion–exclusion transform `|X∩Y|̂ = nx + ny − |X∪Y|̂`,
    /// clamped into `[0, min(nx, ny)]` — shared by the pairwise and
    /// row-batched paths so both clamp identically.
    #[inline]
    pub fn intersection_from_union(nx: usize, ny: usize, union_est: f64) -> f64 {
        ((nx + ny) as f64 - union_est).clamp(0.0, nx.min(ny) as f64)
    }

    /// `|X∩Y|̂ = nx + ny − |X∪Y|̂` (inclusion–exclusion with exact sizes),
    /// clamped into `[0, min(nx, ny)]`.
    #[inline]
    pub fn estimate_intersection(&self, i: usize, j: usize, nx: usize, ny: usize) -> f64 {
        Self::intersection_from_union(nx, ny, self.estimate_union(i, j))
    }

    /// Bytes of sketch storage.
    pub fn memory_bytes(&self) -> usize {
        self.registers.len()
    }

    /// The seed all sketches were built with.
    #[inline]
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_estimates_zero() {
        let h = HyperLogLog::new(10, 1);
        assert!(h.estimate() < 1e-9);
    }

    #[test]
    fn small_range_uses_linear_counting() {
        let items: Vec<u32> = (0..100).collect();
        let h = HyperLogLog::from_set(&items, 12, 3);
        let est = h.estimate();
        assert!((est - 100.0).abs() < 10.0, "est={est}");
    }

    #[test]
    fn large_range_accuracy() {
        let items: Vec<u32> = (0..200_000).collect();
        let h = HyperLogLog::from_set(&items, 12, 3);
        let est = h.estimate();
        // Standard error ≈ 1.04/√m ≈ 1.6 % at p=12; allow 6 %.
        assert!((est - 200_000.0).abs() < 0.06 * 200_000.0, "est={est}");
    }

    #[test]
    fn merge_equals_union_build() {
        let x: Vec<u32> = (0..5000).collect();
        let y: Vec<u32> = (2500..7500).collect();
        let hx = HyperLogLog::from_set(&x, 10, 7);
        let hy = HyperLogLog::from_set(&y, 10, 7);
        let union: Vec<u32> = (0..7500).collect();
        let hu = HyperLogLog::from_set(&union, 10, 7);
        assert_eq!(hx.merge(&hy), hu);
    }

    #[test]
    fn intersection_estimate_ballpark() {
        let x: Vec<u32> = (0..20_000).collect();
        let y: Vec<u32> = (10_000..30_000).collect(); // true inter = 10_000
        let hx = HyperLogLog::from_set(&x, 14, 5);
        let hy = HyperLogLog::from_set(&y, 14, 5);
        let i = hx.estimate_intersection(&hy);
        // Inclusion-exclusion amplifies relative error; 30 % is realistic.
        assert!((i - 10_000.0).abs() < 3000.0, "i={i}");
    }

    #[test]
    #[should_panic(expected = "precision mismatch")]
    fn merge_rejects_mismatched_precision() {
        let a = HyperLogLog::new(10, 1);
        let b = HyperLogLog::new(11, 1);
        let _ = a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "outside 4..=16")]
    fn rejects_bad_precision() {
        HyperLogLog::new(2, 0);
    }

    #[test]
    fn collection_matches_standalone_sketches() {
        let sets: Vec<Vec<u32>> = (0..25)
            .map(|s| (0..200 + s * 40).map(|i| (i * 13 + s) as u32).collect())
            .collect();
        let col = HyperLogLogCollection::build(sets.len(), 8, 11, |i| &sets[i][..]);
        for (i, set) in sets.iter().enumerate() {
            let h = HyperLogLog::from_set(set, 8, 11);
            assert_eq!(col.registers(i), &h.registers[..], "set {i}");
            assert_eq!(col.estimate_size(i), h.estimate(), "set {i}");
        }
        // The fused union pass equals merge-then-estimate.
        let h0 = HyperLogLog::from_set(&sets[0], 8, 11);
        let h9 = HyperLogLog::from_set(&sets[9], 8, 11);
        assert_eq!(col.estimate_union(0, 9), h0.merge(&h9).estimate());
    }

    #[test]
    fn collection_intersection_ballpark() {
        let x: Vec<u32> = (0..20_000).collect();
        let y: Vec<u32> = (10_000..30_000).collect(); // true inter = 10_000
        let col = HyperLogLogCollection::build(2, 14, 5, |i| if i == 0 { &x } else { &y });
        let est = col.estimate_intersection(0, 1, x.len(), y.len());
        assert!((est - 10_000.0).abs() < 3000.0, "est={est}");
    }

    #[test]
    fn collection_intersection_clamped() {
        let x: Vec<u32> = (0..500).collect();
        let y: Vec<u32> = (50_000..50_500).collect(); // disjoint
        let col = HyperLogLogCollection::build(2, 10, 3, |i| if i == 0 { &x } else { &y });
        let est = col.estimate_intersection(0, 1, x.len(), y.len());
        assert!((0.0..=500.0).contains(&est), "est={est}");
    }

    #[test]
    fn empty_collection_and_empty_sets() {
        let col = HyperLogLogCollection::build(0, 8, 1, |_| &[][..]);
        assert!(col.is_empty());
        assert_eq!(col.len(), 0);
        let sets: [Vec<u32>; 1] = [vec![]];
        let col = HyperLogLogCollection::build(1, 8, 1, |i| &sets[i][..]);
        assert!(col.estimate_size(0) < 1e-9);
        assert_eq!(col.estimate_intersection(0, 0, 0, 0), 0.0);
    }

    #[test]
    fn incremental_insert_matches_rebuild() {
        let full: Vec<Vec<u32>> = (0..8)
            .map(|s| (0..100 + s * 30).map(|i| (i * 13 + s) as u32).collect())
            .collect();
        let want = HyperLogLogCollection::build(full.len(), 8, 17, |i| &full[i][..]);
        let mut got =
            HyperLogLogCollection::build(full.len(), 8, 17, |i| &full[i][..full[i].len() / 2]);
        for (i, set) in full.iter().enumerate() {
            got.insert_batch(i, &set[set.len() / 2..]);
            assert_eq!(got.registers(i), want.registers(i), "set {i}");
        }
        // Single-element path agrees too.
        let mut one = HyperLogLogCollection::build(1, 6, 3, |_| &[][..]);
        for x in [11u32, 4, 900] {
            one.insert(0, x);
        }
        let rebuilt = HyperLogLogCollection::build(1, 6, 3, |_| &[11u32, 4, 900][..]);
        assert_eq!(one.registers(0), rebuilt.registers(0));
    }

    #[test]
    fn folding_a_wide_sketch_reproduces_the_narrow_build_exactly() {
        let items: Vec<u32> = (0..30_000).map(|i| i * 7 + 3).collect();
        for (p_from, p_to) in [(10u32, 10u32), (10, 8), (12, 7), (8, 4), (16, 12)] {
            let wide = HyperLogLog::from_set(&items, p_from as u8, 9);
            let narrow = HyperLogLog::from_set(&items, p_to as u8, 9);
            let mut folded = Vec::new();
            fold_hll_registers_into(&wide.registers, p_from, p_to, &mut folded);
            assert_eq!(folded, narrow.registers, "p {p_from}->{p_to}");
        }
    }

    #[test]
    fn one_stratum_build_is_bit_identical_to_uniform() {
        let sets: Vec<Vec<u32>> = (0..10)
            .map(|s| (0..50 + s * 40).map(|i| (i * 13 + s) as u32).collect())
            .collect();
        let uniform = HyperLogLogCollection::build(sets.len(), 8, 11, |i| &sets[i][..]);
        let strat =
            HyperLogLogCollection::build_stratified(vec![8], vec![0u8; sets.len()], 11, |i| {
                &sets[i][..]
            });
        assert!(
            strat.strata().is_none(),
            "one stratum must lower to uniform"
        );
        assert_eq!(strat.raw_registers(), uniform.raw_registers());
        assert_eq!(strat.precision(), uniform.precision());
    }

    #[test]
    fn cross_stratum_unions_match_both_built_at_the_narrow_precision() {
        let sets: Vec<Vec<u32>> = (0..9)
            .map(|s| (0..100 + s * 120).map(|i| (i * 5 + s) as u32).collect())
            .collect();
        let ps = vec![10u8, 8, 6];
        let assign: Vec<u8> = (0..sets.len()).map(|i| (i % 3) as u8).collect();
        let strat =
            HyperLogLogCollection::build_stratified(
                ps.clone(),
                assign.clone(),
                7,
                |i| &sets[i][..],
            );
        for i in 0..sets.len() {
            assert_eq!(strat.precision_of(i), ps[assign[i] as usize]);
            assert_eq!(strat.registers(i).len(), 1usize << strat.precision_of(i));
            for j in 0..sets.len() {
                let pmin = strat.precision_of(i).min(strat.precision_of(j));
                let narrow = HyperLogLogCollection::build(sets.len(), pmin, 7, |s| &sets[s][..]);
                assert_eq!(
                    strat.estimate_union(i, j),
                    narrow.estimate_union(i, j),
                    "i={i} j={j}"
                );
                // Pinned-row path: source folded once (the oracle's
                // pattern) must agree with the pairwise path.
                let mut row = Vec::new();
                fold_hll_registers_into(
                    strat.registers(i),
                    strat.precision_of(i) as u32,
                    pmin as u32,
                    &mut row,
                );
                assert_eq!(
                    strat.union_estimate_with_row(&row, j),
                    strat.estimate_union(i, j),
                    "row i={i} j={j}"
                );
            }
        }
        // Same-stratum multi-lane path still agrees lane-for-lane.
        for i in 0..3 {
            let row = strat.registers(i);
            let js = [i, (i + 3) % 9, (i + 6) % 9]; // all stratum assign[i]
            let multi = strat.union_estimates_multi(row, js);
            for (l, &j) in js.iter().enumerate() {
                assert_eq!(multi[l], strat.estimate_union(i, j), "lane {l}");
            }
        }
    }

    #[test]
    fn stratified_insert_matches_stratified_rebuild() {
        let full: Vec<Vec<u32>> = (0..8)
            .map(|s| (0..80 + s * 30).map(|i| (i * 13 + s) as u32).collect())
            .collect();
        let ps = vec![9u8, 5];
        let assign: Vec<u8> = (0..full.len()).map(|i| (i % 2) as u8).collect();
        let want =
            HyperLogLogCollection::build_stratified(
                ps.clone(),
                assign.clone(),
                17,
                |i| &full[i][..],
            );
        let mut got = HyperLogLogCollection::build_stratified(ps, assign, 17, |i| {
            &full[i][..full[i].len() / 2]
        });
        for (i, set) in full.iter().enumerate() {
            got.insert_batch(i, &set[set.len() / 2..]);
            assert_eq!(got.registers(i), want.registers(i), "set {i}");
        }
        assert_eq!(got.raw_registers(), want.raw_registers());
    }

    #[test]
    fn stratified_gather_concatenates_parts() {
        let sets: Vec<Vec<u32>> = (0..8)
            .map(|s| (0..60 + s * 25).map(|i| (i * 3 + s) as u32).collect())
            .collect();
        let ps = vec![8u8, 5];
        let assign: Vec<u8> = (0..8).map(|i| (i % 2) as u8).collect();
        let whole =
            HyperLogLogCollection::build_stratified(
                ps.clone(),
                assign.clone(),
                5,
                |i| &sets[i][..],
            );
        let left =
            HyperLogLogCollection::build_stratified(ps.clone(), assign[..4].to_vec(), 5, |i| {
                &sets[i][..]
            });
        let right = HyperLogLogCollection::build_stratified(ps, assign[4..].to_vec(), 5, |i| {
            &sets[i + 4][..]
        });
        let gathered = HyperLogLogCollection::gather(&[&left, &right]);
        assert_eq!(gathered.raw_registers(), whole.raw_registers());
        assert_eq!(
            gathered.strata().unwrap().assign(),
            whole.strata().unwrap().assign()
        );
        for i in 0..8 {
            assert_eq!(gathered.registers(i), whole.registers(i));
        }
    }

    #[test]
    fn collection_parallel_build_deterministic() {
        let sets: Vec<Vec<u32>> = (0..120)
            .map(|s| (0..300).map(|i| (i * 17 + s * 3) as u32).collect())
            .collect();
        let a = pg_parallel::with_threads(1, || {
            HyperLogLogCollection::build(120, 7, 9, |i| &sets[i][..])
        });
        let b = pg_parallel::with_threads(8, || {
            HyperLogLogCollection::build(120, 7, 9, |i| &sets[i][..])
        });
        assert_eq!(a.registers, b.registers);
    }

    #[test]
    fn range_correction_crossover_boundaries() {
        // p = 10, m = 1024: the linear-counting crossover sits at
        // raw == 2.5m. Drive `estimate_from_stats` directly with
        // synthetic register statistics bracketing every boundary.
        let m = 1024usize;
        let mf = m as f64;
        let threshold = 2.5 * mf;
        // sum that makes raw land exactly on a target estimate E:
        // raw = α·m²/sum  ⇒  sum = α·m²/E.
        let sum_for = |e: f64| alpha(m) * mf * mf / e;
        // Below the crossover with zero registers left: linear counting.
        let below = estimate_from_stats(m, sum_for(threshold * 0.99), 100);
        assert_eq!(below, mf * (mf / 100.0).ln());
        // Above the crossover: raw, even though zeros remain.
        let above = estimate_from_stats(m, sum_for(threshold * 1.01), 100);
        assert!((above - threshold * 1.01).abs() < 1e-6 * threshold);
        // Exactly at the boundary `raw == 2.5m`: the small-range branch
        // (inclusive comparison, matching Flajolet et al.).
        let at = estimate_from_stats(m, sum_for(threshold), 100);
        assert_eq!(at, mf * (mf / 100.0).ln());
        // The two branches stay within the algorithm's error band of each
        // other at the crossover — no order-of-magnitude cliff.
        assert!(
            (above - at).abs() < 0.15 * threshold,
            "at={at} above={above}"
        );
        // zeros == 0 with raw under the threshold: linear counting is
        // undefined (ln of ∞), so raw must be returned — finite, not NaN.
        let no_zeros = estimate_from_stats(m, sum_for(threshold * 0.5), 0);
        assert!((no_zeros - threshold * 0.5).abs() < 1e-6 * threshold);
        assert!(no_zeros.is_finite());
        // All registers zero (empty sketch): exactly 0.
        assert_eq!(estimate_from_stats(m, mf, m), 0.0);
    }

    #[test]
    fn range_correction_u32_universe_top_end() {
        // With 64-bit hashes there is no 32-bit large-range correction
        // (see `estimate_from_stats` docs): the raw estimate must stay
        // finite, positive, and strictly monotone in the register ranks
        // all the way past the u32-item universe — the dynamic range a
        // full-universe set needs — up to total register saturation.
        for p in [4u32, 12, 16] {
            let m = 1usize << p;
            let max_rank = (64 - p + 1) as u8;
            let mut prev = 0.0f64;
            for rank in 1..=max_rank {
                // Every register at `rank`: sum = m · 2^-rank.
                let est = estimate_from_stats(m, m as f64 * pow_neg2(rank), 0);
                assert!(est.is_finite() && est > 0.0, "p={p} rank={rank}: {est}");
                assert!(est > prev, "p={p} rank={rank}: not monotone");
                prev = est;
            }
            // Saturated registers reach far beyond 2^32 without overflow
            // or a correction cliff — the top of the u32 universe is well
            // inside the representable range.
            assert!(prev > (1u64 << 33) as f64, "p={p}: top end {prev}");
        }
        // A concrete near-top-end sketch: registers distributed as a
        // cardinality of ~2^32 would leave them (rank ≈ 32 - p + 1 bits
        // of leading zeros on average). The estimate lands within an
        // order of magnitude of 2^32 — no silent collapse at the top.
        let p = 12u32;
        let m = 1usize << p;
        let rank = (32 - p + 1) as u8;
        let est = estimate_from_stats(m, m as f64 * pow_neg2(rank), 0);
        let top = (1u64 << 32) as f64;
        assert!(est > top / 4.0 && est < top * 4.0, "est={est}");
    }

    #[test]
    fn pow_neg2_matches_powi() {
        for r in 0u8..=64 {
            assert_eq!(pow_neg2(r), 2f64.powi(-(r as i32)), "r={r}");
        }
    }

    #[test]
    fn insert_is_idempotent() {
        let mut a = HyperLogLog::new(8, 2);
        for _ in 0..100 {
            a.insert(42);
        }
        let single = HyperLogLog::from_set(&[42], 8, 2);
        assert_eq!(a, single);
        assert!((a.estimate() - 1.0).abs() < 0.1);
    }
}
