//! Plain bit vector over 64-bit words.
//!
//! This is the physical representation of a Bloom filter (§VI of the
//! paper): `|X ∩ Y|` estimation reduces to a bitwise AND over two word
//! arrays followed by a population count. `u64::count_ones` compiles to the
//! `popcnt` instruction the paper calls out, and the word loops here are
//! simple enough for LLVM to auto-vectorize (the AVX path of §VI).
//!
//! ## Fused single-pass kernels
//!
//! Every kernel in this module makes exactly **one** traversal of its word
//! arrays and allocates nothing. The loops run four independent accumulator
//! lanes so consecutive `popcnt`s have no loop-carried dependency and
//! pipeline at full issue width. [`and_or_ones_words`] is the maximal
//! fusion: one traversal yields all four statistics the paper's Bloom
//! estimators consume — `B_{X∩Y,1}`, `B_{X∪Y,1}`, `B_{X,1}`, `B_{Y,1}` —
//! so evaluating the AND (Eq. 2), Limit (Eq. 4), *and* OR (Eq. 29)
//! estimators for one edge costs a single pass instead of the 2–3 passes
//! of the obvious per-estimator implementation.

/// Fixed-length bit vector.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BitVec {
    words: Vec<u64>,
    len_bits: usize,
}

impl BitVec {
    /// An all-zero bit vector of `len_bits` bits (rounded up to whole words
    /// internally; the logical length stays exact).
    pub fn zeros(len_bits: usize) -> Self {
        BitVec {
            words: vec![0u64; len_bits.div_ceil(64)],
            len_bits,
        }
    }

    /// Logical length in bits (the paper's `B_X`).
    #[inline]
    pub fn len_bits(&self) -> usize {
        self.len_bits
    }

    /// Backing words.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Sets bit `i`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.len_bits);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Sets bit `i` and reports whether it was previously zero — lets
    /// callers maintain an incremental popcount without a second word load.
    #[inline]
    pub fn set_new(&mut self, i: usize) -> bool {
        debug_assert!(i < self.len_bits);
        let w = &mut self.words[i / 64];
        let mask = 1u64 << (i % 64);
        let was_zero = *w & mask == 0;
        *w |= mask;
        was_zero
    }

    /// Reads bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len_bits);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Number of set bits (the paper's `B_{X,1}`).
    #[inline]
    pub fn count_ones(&self) -> usize {
        count_ones_words(&self.words)
    }

    /// Number of zero bits (`B_{X,0}`).
    #[inline]
    pub fn count_zeros(&self) -> usize {
        self.len_bits - self.count_ones()
    }

    /// Fused AND + popcount against another vector of the same length —
    /// the core `|X ∩ Y|` kernel of Fig. 1 panel 3. Runs in `O(B/W)` work.
    #[inline]
    pub fn and_count(&self, other: &BitVec) -> usize {
        assert_eq!(self.len_bits, other.len_bits, "bit vectors differ in size");
        and_count_words(&self.words, &other.words)
    }

    /// Fused OR + popcount (`B_{X∪Y,1}`, used by the OR estimator Eq. 29).
    #[inline]
    pub fn or_count(&self, other: &BitVec) -> usize {
        assert_eq!(self.len_bits, other.len_bits, "bit vectors differ in size");
        or_count_words(&self.words, &other.words)
    }

    /// All four pair statistics in one fused traversal; see
    /// [`and_or_ones_words`].
    #[inline]
    pub fn pair_ones(&self, other: &BitVec) -> PairOnes {
        assert_eq!(self.len_bits, other.len_bits, "bit vectors differ in size");
        and_or_ones_words(&self.words, &other.words)
    }

    /// Multi-lane fused AND + popcount: one traversal of this vector's
    /// words against `L` destination vectors with independent accumulator
    /// lanes — `out[l] == self.and_count(others[l])` exactly. See
    /// [`and_count_words_multi`] for why batching destinations wins.
    #[inline]
    pub fn and_count_multi<const L: usize>(&self, others: [&BitVec; L]) -> [usize; L] {
        for o in others {
            assert_eq!(self.len_bits, o.len_bits, "bit vectors differ in size");
        }
        and_count_words_multi(&self.words, others.map(|o| o.words.as_slice()))
    }

    /// Materialized AND (for callers that need the intersected filter).
    pub fn and(&self, other: &BitVec) -> BitVec {
        assert_eq!(self.len_bits, other.len_bits, "bit vectors differ in size");
        BitVec {
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a & b)
                .collect(),
            len_bits: self.len_bits,
        }
    }
}

/// The four popcounts of one filter pair, from one fused traversal:
/// `B_{X∩Y,1}`, `B_{X∪Y,1}`, `B_{X,1}`, `B_{Y,1}` in the paper's notation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PairOnes {
    /// Popcount of `X AND Y` (`B_{X∩Y,1}`, Eq. 2 / Eq. 4 input).
    pub and_ones: usize,
    /// Popcount of `X OR Y` (`B_{X∪Y,1}`, Eq. 29 input).
    pub or_ones: usize,
    /// Popcount of `X` alone (`B_{X,1}`).
    pub a_ones: usize,
    /// Popcount of `Y` alone (`B_{Y,1}`).
    pub b_ones: usize,
}

/// Popcount of a word slice, four accumulator lanes wide.
#[inline]
pub fn count_ones_words(words: &[u64]) -> usize {
    let mut lanes = [0usize; 4];
    let mut chunks = words.chunks_exact(4);
    for w in &mut chunks {
        lanes[0] += w[0].count_ones() as usize;
        lanes[1] += w[1].count_ones() as usize;
        lanes[2] += w[2].count_ones() as usize;
        lanes[3] += w[3].count_ones() as usize;
    }
    let mut total = lanes[0] + lanes[1] + lanes[2] + lanes[3];
    for w in chunks.remainder() {
        total += w.count_ones() as usize;
    }
    total
}

/// Fused AND + popcount of two word slices (must be equal length); one
/// traversal, zero allocation, four independent lanes.
#[inline]
pub fn and_count_words(a: &[u64], b: &[u64]) -> usize {
    debug_assert_eq!(a.len(), b.len());
    let mut lanes = [0usize; 4];
    let mut ca = a.chunks_exact(4);
    let mut cb = b.chunks_exact(4);
    for (x, y) in (&mut ca).zip(&mut cb) {
        lanes[0] += (x[0] & y[0]).count_ones() as usize;
        lanes[1] += (x[1] & y[1]).count_ones() as usize;
        lanes[2] += (x[2] & y[2]).count_ones() as usize;
        lanes[3] += (x[3] & y[3]).count_ones() as usize;
    }
    let mut total = lanes[0] + lanes[1] + lanes[2] + lanes[3];
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        total += (x & y).count_ones() as usize;
    }
    total
}

/// Multi-lane fused AND + popcount: one traversal of the pinned source
/// slice `a` against `L` destination slices (all equal length), one
/// independent popcount accumulator per lane.
///
/// This is the SIMD-style row kernel of the batched estimation path: a row
/// sweep `estimate_row(v, us)` re-reads the source window once *per
/// destination*; processing `L ∈ 2..=4` destinations per sweep amortizes
/// every source-word load over `L` AND+popcount operations and gives the
/// autovectorizer `L` independent reduction chains to pipeline (AVX-512
/// `vpopcntq` hardware chews through them at full width). Each lane's
/// accumulation is the plain word-order sum, so `out[l]` is bit-identical
/// to `and_count_words(a, bs[l])` for every lane count.
#[inline]
pub fn and_count_words_multi<const L: usize>(a: &[u64], bs: [&[u64]; L]) -> [usize; L] {
    // Pin every destination to the source length once; inner indexing is
    // then bounds-check-free in the eyes of the optimizer.
    let bs: [&[u64]; L] = bs.map(|b| {
        debug_assert_eq!(a.len(), b.len());
        &b[..a.len()]
    });
    #[cfg(all(
        target_arch = "x86_64",
        target_feature = "avx512f",
        target_feature = "avx512vpopcntdq"
    ))]
    {
        and_count_words_multi_512(a, bs)
    }
    #[cfg(not(all(
        target_arch = "x86_64",
        target_feature = "avx512f",
        target_feature = "avx512vpopcntdq"
    )))]
    {
        let mut lanes = [0usize; L];
        for (w, &x) in a.iter().enumerate() {
            for l in 0..L {
                lanes[l] += (x & bs[l][w]).count_ones() as usize;
            }
        }
        lanes
    }
}

/// AVX-512 form of the multi-lane kernel: one `vpand` + `vpopcntq` per
/// destination per 8-word block, one masked block for the ragged word
/// tail, `L` independent vector accumulators. Popcounts are exact
/// integers, so this is bit-identical to the portable loop.
#[cfg(all(
    target_arch = "x86_64",
    target_feature = "avx512f",
    target_feature = "avx512vpopcntdq"
))]
#[inline]
fn and_count_words_multi_512<const L: usize>(a: &[u64], bs: [&[u64]; L]) -> [usize; L] {
    use std::arch::x86_64::*;
    // SAFETY: avx512f/avx512vpopcntdq are compile-time target features
    // here; unaligned loads are explicit (`loadu`), and every pointer
    // offset stays inside the equal-length slices checked by the caller.
    unsafe {
        let n = a.len();
        let mut acc = [_mm512_setzero_si512(); L];
        let mut w = 0;
        while w + 8 <= n {
            let x = _mm512_loadu_si512(a.as_ptr().add(w) as *const _);
            for l in 0..L {
                let y = _mm512_loadu_si512(bs[l].as_ptr().add(w) as *const _);
                acc[l] = _mm512_add_epi64(acc[l], _mm512_popcnt_epi64(_mm512_and_si512(x, y)));
            }
            w += 8;
        }
        if w < n {
            let mask: __mmask8 = (1u8 << (n - w)) - 1;
            let x = _mm512_maskz_loadu_epi64(mask, a.as_ptr().add(w) as *const _);
            for l in 0..L {
                let y = _mm512_maskz_loadu_epi64(mask, bs[l].as_ptr().add(w) as *const _);
                acc[l] = _mm512_add_epi64(acc[l], _mm512_popcnt_epi64(_mm512_and_si512(x, y)));
            }
        }
        let mut out = [0usize; L];
        for l in 0..L {
            out[l] = _mm512_reduce_add_epi64(acc[l]) as usize;
        }
        out
    }
}

/// Prefetches a destination window (word, register, or signature slice)
/// into L1 — issued by row sweeps some destinations ahead (see
/// [`prefetch_distance`]) so the L2 fills overlap the current destinations'
/// work (the row kernels are destination-bandwidth bound once the source is
/// pinned in L1). Strides in cache-line units of `size_of::<T>()` using the
/// probed line size, so one prefetch is issued per actual line regardless of
/// the element type; no-op off x86-64.
#[inline]
pub fn prefetch_slice<T>(w: &[T]) {
    #[cfg(target_arch = "x86_64")]
    unsafe {
        use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
        let line = pg_parallel::cache_line_bytes();
        let step = (line / std::mem::size_of::<T>().max(1)).max(1);
        let mut off = 0;
        while off < w.len() {
            _mm_prefetch(w.as_ptr().add(off) as *const i8, _MM_HINT_T0);
            off += step;
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = w;
    }
}

/// How many destinations ahead a row sweep should issue [`prefetch_slice`]
/// for windows of `window_bytes` each.
///
/// Targets ~4 KiB of fills in flight — enough to cover L2 latency at small
/// windows (tiny windows need many outstanding destinations, large windows
/// only one or two) without overrunning the L1 fill buffers. Returns 0 for
/// windows past 32 KiB: software-prefetching whole huge filters evicts more
/// than it hides and the hardware streamer already tracks a sequential
/// window walk (the same size regime where `BloomCollection` skips its
/// Swamidass lookup table).
#[inline]
pub fn prefetch_distance(window_bytes: usize) -> usize {
    const IN_FLIGHT_BYTES: usize = 4096;
    const MAX_WINDOW_BYTES: usize = 32 * 1024;
    if window_bytes == 0 || window_bytes > MAX_WINDOW_BYTES {
        return 0;
    }
    (IN_FLIGHT_BYTES / window_bytes).clamp(1, 16)
}

/// Tiled flat-array row kernel: fused AND + popcount of one pinned source
/// window against destination windows `js` of a flat collection
/// (`data[j*words_per_set..][..words_per_set]`), invoking
/// `emit(t, and_ones)` for each destination index `t` in `js` order.
///
/// `prefetch_dist` is how many destinations ahead to issue
/// [`prefetch_slice`]: the flat full-row sweep passes
/// [`prefetch_distance`] so L2 fills overlap the current group's
/// popcounts, while the blocked sweep passes 0 — its `js` are one
/// source's in-tile destinations, already cache-resident across the
/// source batch, so prefetching them is pure instruction overhead.
/// Destinations are processed through the same 4/2/1 multi-lane split
/// either way; popcounts are exact integers, so every emitted count is
/// bit-identical to `and_count_words(row, window(js[t]))` no matter how a
/// row is segmented into tiles.
#[inline]
pub fn and_count_words_tiled<F: FnMut(usize, usize)>(
    row: &[u64],
    data: &[u64],
    words_per_set: usize,
    js: &[u32],
    prefetch_dist: usize,
    mut emit: F,
) {
    let wps = words_per_set;
    if wps == 0 {
        for t in 0..js.len() {
            emit(t, 0);
        }
        return;
    }
    debug_assert_eq!(row.len(), wps);
    let window = |j: u32| -> &[u64] {
        let j = j as usize;
        &data[j * wps..(j + 1) * wps]
    };
    let n = js.len();
    let dist = prefetch_dist;
    // Warm-up: get the first `dist` windows' fills started before any work.
    for &j in js.iter().take(dist.min(n)) {
        prefetch_slice(window(j));
    }
    let mut t = 0;
    while t + 4 <= n {
        if dist > 0 {
            // Each group prefetches exactly the windows entering the
            // look-ahead horizon, so every window is prefetched once.
            for &j in js.iter().take((t + dist + 4).min(n)).skip(t + dist) {
                prefetch_slice(window(j));
            }
        }
        let ones = and_count_words_multi(
            row,
            [
                window(js[t]),
                window(js[t + 1]),
                window(js[t + 2]),
                window(js[t + 3]),
            ],
        );
        emit(t, ones[0]);
        emit(t + 1, ones[1]);
        emit(t + 2, ones[2]);
        emit(t + 3, ones[3]);
        t += 4;
    }
    if t + 2 <= n {
        let ones = and_count_words_multi(row, [window(js[t]), window(js[t + 1])]);
        emit(t, ones[0]);
        emit(t + 1, ones[1]);
        t += 2;
    }
    if t < n {
        emit(t, and_count_words(row, window(js[t])));
    }
}

/// Fused OR + popcount of two word slices (must be equal length).
#[inline]
pub fn or_count_words(a: &[u64], b: &[u64]) -> usize {
    debug_assert_eq!(a.len(), b.len());
    let mut lanes = [0usize; 4];
    let mut ca = a.chunks_exact(4);
    let mut cb = b.chunks_exact(4);
    for (x, y) in (&mut ca).zip(&mut cb) {
        lanes[0] += (x[0] | y[0]).count_ones() as usize;
        lanes[1] += (x[1] | y[1]).count_ones() as usize;
        lanes[2] += (x[2] | y[2]).count_ones() as usize;
        lanes[3] += (x[3] | y[3]).count_ones() as usize;
    }
    let mut total = lanes[0] + lanes[1] + lanes[2] + lanes[3];
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        total += (x | y).count_ones() as usize;
    }
    total
}

/// The maximally fused kernel: one traversal of both word slices yields
/// `AND`, `OR`, and both single-filter popcounts (see [`PairOnes`]).
///
/// Only two popcounts are evaluated per word pair — `or_ones` and `b_ones`
/// come for free from the identities `|x∨y| = |x| + |y| − |x∧y|` applied
/// word-wise: we count `x & y` and `x | y` directly and recover
/// `a_ones + b_ones = and_ones + or_ones`, counting `x` in a third lane.
#[inline]
pub fn and_or_ones_words(a: &[u64], b: &[u64]) -> PairOnes {
    debug_assert_eq!(a.len(), b.len());
    let mut and_l = [0usize; 4];
    let mut or_l = [0usize; 4];
    let mut a_l = [0usize; 4];
    let mut ca = a.chunks_exact(4);
    let mut cb = b.chunks_exact(4);
    for (x, y) in (&mut ca).zip(&mut cb) {
        and_l[0] += (x[0] & y[0]).count_ones() as usize;
        and_l[1] += (x[1] & y[1]).count_ones() as usize;
        and_l[2] += (x[2] & y[2]).count_ones() as usize;
        and_l[3] += (x[3] & y[3]).count_ones() as usize;
        or_l[0] += (x[0] | y[0]).count_ones() as usize;
        or_l[1] += (x[1] | y[1]).count_ones() as usize;
        or_l[2] += (x[2] | y[2]).count_ones() as usize;
        or_l[3] += (x[3] | y[3]).count_ones() as usize;
        a_l[0] += x[0].count_ones() as usize;
        a_l[1] += x[1].count_ones() as usize;
        a_l[2] += x[2].count_ones() as usize;
        a_l[3] += x[3].count_ones() as usize;
    }
    let mut and_ones = and_l[0] + and_l[1] + and_l[2] + and_l[3];
    let mut or_ones = or_l[0] + or_l[1] + or_l[2] + or_l[3];
    let mut a_ones = a_l[0] + a_l[1] + a_l[2] + a_l[3];
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        and_ones += (x & y).count_ones() as usize;
        or_ones += (x | y).count_ones() as usize;
        a_ones += x.count_ones() as usize;
    }
    PairOnes {
        and_ones,
        or_ones,
        a_ones,
        // Word-wise |x| + |y| = |x∧y| + |x∨y|, summed over the slice.
        b_ones: and_ones + or_ones - a_ones,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let mut v = BitVec::zeros(130);
        for i in [0usize, 1, 63, 64, 65, 127, 128, 129] {
            assert!(!v.get(i));
            v.set(i);
            assert!(v.get(i));
        }
        assert_eq!(v.count_ones(), 8);
        assert_eq!(v.count_zeros(), 122);
    }

    #[test]
    fn and_count_matches_naive() {
        let mut a = BitVec::zeros(200);
        let mut b = BitVec::zeros(200);
        for i in (0..200).step_by(3) {
            a.set(i);
        }
        for i in (0..200).step_by(5) {
            b.set(i);
        }
        let naive = (0..200).filter(|&i| a.get(i) && b.get(i)).count();
        assert_eq!(a.and_count(&b), naive);
        assert_eq!(a.and(&b).count_ones(), naive);
    }

    #[test]
    fn or_count_inclusion_exclusion() {
        let mut a = BitVec::zeros(77);
        let mut b = BitVec::zeros(77);
        for i in 0..40 {
            a.set(i);
        }
        for i in 30..77 {
            b.set(i);
        }
        assert_eq!(
            a.or_count(&b),
            a.count_ones() + b.count_ones() - a.and_count(&b)
        );
    }

    #[test]
    #[should_panic(expected = "differ in size")]
    fn size_mismatch_panics() {
        BitVec::zeros(64).and_count(&BitVec::zeros(128));
    }

    #[test]
    fn fused_pair_kernel_matches_separate_passes() {
        // Cover every unroll remainder (words % 4 in {0,1,2,3}).
        for bits in [0usize, 64, 128, 192, 256, 320, 1024, 65 * 64] {
            let words = bits / 64;
            let mut a = vec![0u64; words];
            let mut b = vec![0u64; words];
            let mut state = bits as u64 ^ 0xABCD;
            for w in 0..words {
                a[w] = pg_hash::splitmix64(&mut state);
                b[w] = pg_hash::splitmix64(&mut state) & pg_hash::splitmix64(&mut state);
            }
            let p = and_or_ones_words(&a, &b);
            assert_eq!(p.and_ones, and_count_words(&a, &b), "bits={bits}");
            assert_eq!(p.or_ones, or_count_words(&a, &b), "bits={bits}");
            assert_eq!(p.a_ones, count_ones_words(&a), "bits={bits}");
            assert_eq!(p.b_ones, count_ones_words(&b), "bits={bits}");
        }
    }

    #[test]
    fn set_new_reports_first_set_only() {
        let mut v = BitVec::zeros(100);
        assert!(v.set_new(70));
        assert!(!v.set_new(70));
        assert!(v.set_new(0));
        assert_eq!(v.count_ones(), 2);
    }

    #[test]
    fn pair_ones_on_bitvecs() {
        let mut a = BitVec::zeros(300);
        let mut b = BitVec::zeros(300);
        for i in (0..300).step_by(3) {
            a.set(i);
        }
        for i in (0..300).step_by(4) {
            b.set(i);
        }
        let p = a.pair_ones(&b);
        assert_eq!(p.and_ones, a.and_count(&b));
        assert_eq!(p.or_ones, a.or_count(&b));
        assert_eq!(p.a_ones, a.count_ones());
        assert_eq!(p.b_ones, b.count_ones());
        assert_eq!(p.a_ones + p.b_ones, p.and_ones + p.or_ones);
    }

    #[test]
    fn multi_lane_matches_scalar_all_lane_counts() {
        // Sweep word counts across the 8-word AVX tail boundary and the
        // 4-word unroll remainders.
        for words in 0usize..26 {
            let mut state = 0x1234u64 ^ words as u64;
            let mk = |state: &mut u64| -> Vec<u64> {
                (0..words).map(|_| pg_hash::splitmix64(state)).collect()
            };
            let a = mk(&mut state);
            let b: Vec<Vec<u64>> = (0..4).map(|_| mk(&mut state)).collect();
            let want: Vec<usize> = b.iter().map(|x| and_count_words(&a, x)).collect();
            assert_eq!(and_count_words_multi(&a, [&b[0][..]]), [want[0]]);
            assert_eq!(
                and_count_words_multi(&a, [&b[0][..], &b[1][..]]),
                [want[0], want[1]]
            );
            assert_eq!(
                and_count_words_multi(&a, [&b[0][..], &b[1][..], &b[2][..]]),
                [want[0], want[1], want[2]]
            );
            assert_eq!(
                and_count_words_multi(&a, [&b[0][..], &b[1][..], &b[2][..], &b[3][..]]),
                [want[0], want[1], want[2], want[3]]
            );
        }
    }

    #[test]
    fn bitvec_and_count_multi_matches_pairwise() {
        let mut a = BitVec::zeros(300);
        let mut b0 = BitVec::zeros(300);
        let mut b1 = BitVec::zeros(300);
        for i in (0..300).step_by(3) {
            a.set(i);
        }
        for i in (0..300).step_by(4) {
            b0.set(i);
        }
        for i in (0..300).step_by(7) {
            b1.set(i);
        }
        assert_eq!(
            a.and_count_multi([&b0, &b1]),
            [a.and_count(&b0), a.and_count(&b1)]
        );
    }

    #[test]
    #[should_panic(expected = "differ in size")]
    fn multi_lane_size_mismatch_panics() {
        let a = BitVec::zeros(64);
        let b = BitVec::zeros(128);
        let _ = a.and_count_multi([&b]);
    }

    #[test]
    fn zero_length() {
        let v = BitVec::zeros(0);
        assert_eq!(v.count_ones(), 0);
        assert_eq!(v.len_bits(), 0);
        assert_eq!(v.and_count(&BitVec::zeros(0)), 0);
    }

    #[test]
    fn idempotent_set() {
        let mut v = BitVec::zeros(10);
        v.set(3);
        v.set(3);
        assert_eq!(v.count_ones(), 1);
    }
}
