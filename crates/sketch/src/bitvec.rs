//! Plain bit vector over 64-bit words.
//!
//! This is the physical representation of a Bloom filter (§VI of the
//! paper): `|X ∩ Y|` estimation reduces to a bitwise AND over two word
//! arrays followed by a population count. `u64::count_ones` compiles to the
//! `popcnt` instruction the paper calls out, and the word loops here are
//! simple enough for LLVM to auto-vectorize (the AVX path of §VI).

/// Fixed-length bit vector.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BitVec {
    words: Vec<u64>,
    len_bits: usize,
}

impl BitVec {
    /// An all-zero bit vector of `len_bits` bits (rounded up to whole words
    /// internally; the logical length stays exact).
    pub fn zeros(len_bits: usize) -> Self {
        BitVec {
            words: vec![0u64; len_bits.div_ceil(64)],
            len_bits,
        }
    }

    /// Logical length in bits (the paper's `B_X`).
    #[inline]
    pub fn len_bits(&self) -> usize {
        self.len_bits
    }

    /// Backing words.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Sets bit `i`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.len_bits);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Reads bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len_bits);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Number of set bits (the paper's `B_{X,1}`).
    #[inline]
    pub fn count_ones(&self) -> usize {
        count_ones_words(&self.words)
    }

    /// Number of zero bits (`B_{X,0}`).
    #[inline]
    pub fn count_zeros(&self) -> usize {
        self.len_bits - self.count_ones()
    }

    /// Fused AND + popcount against another vector of the same length —
    /// the core `|X ∩ Y|` kernel of Fig. 1 panel 3. Runs in `O(B/W)` work.
    #[inline]
    pub fn and_count(&self, other: &BitVec) -> usize {
        assert_eq!(self.len_bits, other.len_bits, "bit vectors differ in size");
        and_count_words(&self.words, &other.words)
    }

    /// Fused OR + popcount (`B_{X∪Y,1}`, used by the OR estimator Eq. 29).
    #[inline]
    pub fn or_count(&self, other: &BitVec) -> usize {
        assert_eq!(self.len_bits, other.len_bits, "bit vectors differ in size");
        or_count_words(&self.words, &other.words)
    }

    /// Materialized AND (for callers that need the intersected filter).
    pub fn and(&self, other: &BitVec) -> BitVec {
        assert_eq!(self.len_bits, other.len_bits, "bit vectors differ in size");
        BitVec {
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a & b)
                .collect(),
            len_bits: self.len_bits,
        }
    }
}

/// Popcount of a word slice.
#[inline]
pub fn count_ones_words(words: &[u64]) -> usize {
    words.iter().map(|w| w.count_ones() as usize).sum()
}

/// Fused AND + popcount of two word slices (must be equal length).
#[inline]
pub fn and_count_words(a: &[u64], b: &[u64]) -> usize {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| (x & y).count_ones() as usize)
        .sum()
}

/// Fused OR + popcount of two word slices (must be equal length).
#[inline]
pub fn or_count_words(a: &[u64], b: &[u64]) -> usize {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| (x | y).count_ones() as usize)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let mut v = BitVec::zeros(130);
        for i in [0usize, 1, 63, 64, 65, 127, 128, 129] {
            assert!(!v.get(i));
            v.set(i);
            assert!(v.get(i));
        }
        assert_eq!(v.count_ones(), 8);
        assert_eq!(v.count_zeros(), 122);
    }

    #[test]
    fn and_count_matches_naive() {
        let mut a = BitVec::zeros(200);
        let mut b = BitVec::zeros(200);
        for i in (0..200).step_by(3) {
            a.set(i);
        }
        for i in (0..200).step_by(5) {
            b.set(i);
        }
        let naive = (0..200).filter(|&i| a.get(i) && b.get(i)).count();
        assert_eq!(a.and_count(&b), naive);
        assert_eq!(a.and(&b).count_ones(), naive);
    }

    #[test]
    fn or_count_inclusion_exclusion() {
        let mut a = BitVec::zeros(77);
        let mut b = BitVec::zeros(77);
        for i in 0..40 {
            a.set(i);
        }
        for i in 30..77 {
            b.set(i);
        }
        assert_eq!(
            a.or_count(&b),
            a.count_ones() + b.count_ones() - a.and_count(&b)
        );
    }

    #[test]
    #[should_panic(expected = "differ in size")]
    fn size_mismatch_panics() {
        BitVec::zeros(64).and_count(&BitVec::zeros(128));
    }

    #[test]
    fn zero_length() {
        let v = BitVec::zeros(0);
        assert_eq!(v.count_ones(), 0);
        assert_eq!(v.len_bits(), 0);
        assert_eq!(v.and_count(&BitVec::zeros(0)), 0);
    }

    #[test]
    fn idempotent_set() {
        let mut v = BitVec::zeros(10);
        v.set(3);
        v.set(3);
        assert_eq!(v.count_ones(), 1);
    }
}
