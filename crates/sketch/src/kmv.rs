//! K-Minimum-Values sketches (§IX of the paper).
//!
//! Unlike bottom-k MinHash, a KMV sketch stores the *hash values*
//! (unit-interval reals), not the elements. `|X|̂ = (k−1)/max(K_X)`, the
//! union sketch is the k smallest of `K_X ∪ K_Y`, and the intersection
//! follows by inclusion–exclusion (Eq. 40/41). Concentration bounds for
//! these estimators are Prop. A.7–A.9.

use crate::estimators;
use crate::heap::{sift_down, sift_up};
use pg_hash::HashFamily;
use std::borrow::Cow;

/// A KMV sketch: up to `k` smallest unit-interval hashes, ascending.
///
/// The hash list is copy-on-write over `'a` (see
/// [`crate::BloomCollectionIn`]): the owned alias [`KmvSketch`] is the
/// ordinary built/streamed form, while a borrowed sketch serves a
/// validated snapshot buffer in place.
#[derive(Clone, Debug, PartialEq)]
pub struct KmvSketchIn<'a> {
    hashes: Cow<'a, [f64]>,
    k: usize,
    set_size: usize,
}

/// The owned (`'static`) form of [`KmvSketchIn`].
pub type KmvSketch = KmvSketchIn<'static>;

impl<'a> KmvSketchIn<'a> {
    /// Builds the sketch of `items` with parameter `k`, hash seeded from
    /// `seed`. Comparable only across sketches with equal `seed`.
    pub fn from_set(items: &[u32], k: usize, seed: u64) -> Self {
        assert!(k > 0, "KMV needs k ≥ 1");
        let family = HashFamily::new(1, seed);
        let mut hashes: Vec<f64> = items.iter().map(|&x| family.unit(0, x as u64)).collect();
        // `HashFamily::unit` maps into (0, 1] — never NaN — so the total
        // order is the usual numeric order.
        hashes.sort_unstable_by(f64::total_cmp);
        hashes.dedup();
        hashes.truncate(k);
        KmvSketchIn {
            hashes: Cow::Owned(hashes),
            k,
            set_size: items.len(),
        }
    }

    /// Reconstructs a sketch from already-materialized parts (the
    /// snapshot load path; owned `Vec<f64>` or borrowed `&'a [f64]`).
    /// `hashes` must be strictly ascending values in (0, 1] with
    /// `hashes.len() ≤ k`; the snapshot loader validates this before
    /// calling.
    pub fn from_raw_parts(hashes: impl Into<Cow<'a, [f64]>>, k: usize, set_size: usize) -> Self {
        let hashes = hashes.into();
        assert!(k > 0, "KMV needs k ≥ 1");
        debug_assert!(hashes.len() <= k);
        debug_assert!(hashes.windows(2).all(|w| w[0] < w[1]));
        KmvSketchIn {
            hashes,
            k,
            set_size,
        }
    }

    /// Detaches the sketch from any borrowed snapshot buffer, cloning the
    /// hash list if it was served in place. No-op for owned data.
    pub fn into_owned(self) -> KmvSketch {
        KmvSketchIn {
            hashes: Cow::Owned(self.hashes.into_owned()),
            k: self.k,
            set_size: self.set_size,
        }
    }

    /// Configured `k`.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// The stored hash values, ascending.
    #[inline]
    pub fn hashes(&self) -> &[f64] {
        &self.hashes
    }

    /// Exact input-set size recorded at build time.
    #[inline]
    pub fn set_size(&self) -> usize {
        self.set_size
    }

    /// True when the sketch saw the whole set (`|X| ≤ k`).
    #[inline]
    pub fn is_exact(&self) -> bool {
        self.hashes.len() < self.k || self.set_size <= self.k
    }

    /// `|X|̂_KMV = (k−1)/max(K_X)` (Eq. 39); exact count when the sketch is
    /// lossless.
    pub fn estimate_size(&self) -> f64 {
        if self.is_exact() {
            return self.hashes.len() as f64;
        }
        match self.hashes.last() {
            Some(&max) => estimators::kmv_size(max, self.hashes.len()),
            None => 0.0,
        }
    }

    /// The union sketch `K_{X∪Y}`: k smallest of the merged hash lists
    /// (`k = min(k_X, k_Y)` as §IX prescribes).
    pub fn union(&self, other: &KmvSketchIn<'_>) -> KmvSketch {
        let k = self.k.min(other.k);
        let mut merged = Vec::with_capacity(self.hashes.len() + other.hashes.len());
        let (a, b) = (&self.hashes, &other.hashes);
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            if a[i] < b[j] {
                merged.push(a[i]);
                i += 1;
            } else if b[j] < a[i] {
                merged.push(b[j]);
                j += 1;
            } else {
                // Same hash = same element (same hash function).
                merged.push(a[i]);
                i += 1;
                j += 1;
            }
        }
        merged.extend_from_slice(&a[i..]);
        merged.extend_from_slice(&b[j..]);
        let full_union_len = merged.len();
        merged.truncate(k);
        // The union's true size is unknown in general; mark it exact only
        // when both inputs were lossless AND the merge survived the
        // truncation to k — a truncated union of two lossless sketches is
        // an ordinary k-sample of X ∪ Y, not the whole union.
        let exact = self.is_exact() && other.is_exact() && full_union_len <= k;
        let set_size = if exact { merged.len() } else { usize::MAX };
        KmvSketchIn {
            hashes: Cow::Owned(merged),
            k,
            set_size,
        }
    }

    /// `|X∪Y|̂_KMV = (k−1)/max(K_{X∪Y})` (§IX).
    pub fn estimate_union_size(&self, other: &KmvSketchIn<'_>) -> f64 {
        self.union(other).estimate_size()
    }

    /// `Ĵ_KMV = p / k'`: the Beyer et al. union-membership Jaccard
    /// estimator, where `p` counts the hashes of the union sketch present
    /// in *both* input sketches and `k'` is the realized union-sketch size.
    /// The k smallest union hashes are `k'` uniform draws without
    /// replacement from `X ∪ Y`, and such a draw lies in both sketches iff
    /// its element lies in `X ∩ Y` — the same hypergeometric argument as
    /// the paper's 1-hash MinHash (§IV-D).
    pub fn estimate_jaccard(&self, other: &KmvSketchIn<'_>) -> f64 {
        // A union-sketch hash lies in both input sketches iff the merge walk
        // sees it on both sides simultaneously, so p accumulates in the same
        // single ascending pass that would build the union — no allocation,
        // no per-hash binary searches.
        let (p, seen) = union_match_walk(&self.hashes, &other.hashes, self.k.min(other.k));
        if seen == 0 {
            return 0.0;
        }
        p as f64 / seen as f64
    }

    /// `|X∩Y|̂_K` with exact set sizes, clamped below at 0.
    ///
    /// Lossless sketches give the exact count. Otherwise the Eq. (5)
    /// transform of [`KmvSketch::estimate_jaccard`] is used: its error
    /// scales with `|X∩Y|` itself, whereas the paper's inclusion–exclusion
    /// form (kept as [`KmvSketch::estimate_intersection_ie`]) has error
    /// scaling with `|X∪Y|` — ruinous when the intersection is a small
    /// fraction of the union, which is the common case for per-edge
    /// neighborhood intersections.
    pub fn estimate_intersection(&self, other: &KmvSketchIn<'_>) -> f64 {
        if self.is_exact() && other.is_exact() {
            // Both sketches hold every hash of their set, so the number of
            // common hashes IS |X ∩ Y| (same hash function, duplicates
            // collapsed). Count it with an uncapped merge walk — the k-capped
            // union() must NOT be used here: truncation would undercount the
            // union and inflate the inclusion–exclusion result.
            return count_common_hashes(&self.hashes, &other.hashes) as f64;
        }
        estimators::jaccard_to_intersection(
            self.estimate_jaccard(other),
            self.set_size,
            other.set_size,
        )
        .max(0.0)
    }

    /// Two-lane batched `|X∩Y|̂_K`: estimates this sketch against **two**
    /// destination sketches at once. When both pairs are in the sampling
    /// regime the two union-membership merge walks advance in lockstep
    /// ([`union_match_walk_x2`]) so their data-dependent branch chains
    /// overlap instead of serializing; any lane touching the lossless
    /// shortcut falls back to the scalar path. Each lane's result is
    /// bit-identical to [`KmvSketch::estimate_intersection`].
    pub fn estimate_intersection_x2(
        &self,
        o0: &KmvSketchIn<'_>,
        o1: &KmvSketchIn<'_>,
    ) -> (f64, f64) {
        let exact0 = self.is_exact() && o0.is_exact();
        let exact1 = self.is_exact() && o1.is_exact();
        if exact0 || exact1 {
            return (
                self.estimate_intersection(o0),
                self.estimate_intersection(o1),
            );
        }
        let ((p0, seen0), (p1, seen1)) = union_match_walk_x2(
            &self.hashes,
            &o0.hashes,
            self.k.min(o0.k),
            &o1.hashes,
            self.k.min(o1.k),
        );
        let finish = |p: usize, seen: usize, other: &KmvSketchIn<'_>| {
            let j = if seen == 0 {
                0.0
            } else {
                p as f64 / seen as f64
            };
            estimators::jaccard_to_intersection(j, self.set_size, other.set_size).max(0.0)
        };
        (finish(p0, seen0, o0), finish(p1, seen1, o1))
    }

    /// The paper's Eq. (41) inclusion–exclusion estimator
    /// `|X| + |Y| − |X∪Y|̂_KMV`, clamped below at 0 — kept for the §IX
    /// comparison experiments.
    pub fn estimate_intersection_ie(&self, other: &KmvSketchIn<'_>) -> f64 {
        let u = self.estimate_union_size(other);
        estimators::kmv_intersection(self.set_size, other.set_size, u).max(0.0)
    }

    /// Absorbs pre-hashed values into the sketch in place; `items` is how
    /// many input elements they came from (`set_size` bookkeeping).
    ///
    /// The stored ascending list is reversed into a bounded max-heap
    /// (descending order is already heap order), each hash costs an
    /// `O(log k)` push / replace-root step, and one final sort restores
    /// the ascending view — so a batch of inserts pays one sort, not one
    /// memmove per element. Keeping the k smallest values of a stream is
    /// associative, hence the result equals a from-scratch build over the
    /// extended set (callers must not re-insert elements already in the
    /// set; an exact duplicate hash is collapsed like the offline build's
    /// dedup, but only if it never forced an eviction).
    pub fn absorb<I: IntoIterator<Item = f64>>(&mut self, hs: I, items: usize) {
        self.set_size = self.set_size.saturating_add(items);
        let k = self.k;
        let hashes = self.hashes.to_mut();
        hashes.reverse();
        for h in hs {
            if hashes.len() < k {
                hashes.push(h);
                let last = hashes.len() - 1;
                sift_up(hashes, last);
            } else if h < hashes[0] {
                hashes[0] = h;
                sift_down(hashes, 0);
            }
        }
        // Hashes come from `HashFamily::unit` — (0, 1], never NaN.
        hashes.sort_unstable_by(f64::total_cmp);
        hashes.dedup();
    }
}

/// Uncapped merge walk counting hashes present in both ascending lists.
/// Hash equality is exact: both lists store outputs of the same
/// deterministic function. Branchless pointer updates: per union element
/// the walk does two compares and three conditional increments instead of
/// a three-way branch the predictor loses on (merge-order outcomes are
/// data-random), which roughly halves the walk's cost.
fn count_common_hashes(a: &[f64], b: &[f64]) -> usize {
    let (mut i, mut j, mut c) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        let (x, y) = (a[i], b[j]);
        c += usize::from(x == y);
        i += usize::from(x <= y);
        j += usize::from(y <= x);
    }
    c
}

/// Merge walk over the first `cap` distinct union hashes of two ascending
/// lists; returns `(matches, union_seen)` where `matches` counts union
/// hashes present in **both** lists and `union_seen ≤ cap` is how many
/// union hashes were available. Mirrors `union_matches` in the bottom-k
/// module — the hypergeometric sampling argument is the same.
///
/// The loop is branchless per union element (see [`count_common_hashes`]);
/// once either list is exhausted no further matches are possible, so the
/// remaining union draws are counted in one step instead of walked.
fn union_match_walk(a: &[f64], b: &[f64], cap: usize) -> (usize, usize) {
    let (mut i, mut j) = (0, 0);
    let mut taken = 0usize;
    let mut matches = 0usize;
    while taken < cap && i < a.len() && j < b.len() {
        let (x, y) = (a[i], b[j]);
        matches += usize::from(x == y);
        i += usize::from(x <= y);
        j += usize::from(y <= x);
        taken += 1;
    }
    // Tail: at most one list still has elements; each is one union draw.
    let rest = (a.len() - i) + (b.len() - j);
    taken += rest.min(cap - taken);
    (matches, taken)
}

/// Two [`union_match_walk`]s sharing one source list `a`, advanced in
/// lockstep: each loop iteration performs one branchless step of each
/// still-active lane, so the two load→compare→increment dependency
/// chains interleave and pipeline instead of serializing. Per lane the
/// `(matches, taken)` result is exactly the scalar walk's.
fn union_match_walk_x2(
    a: &[f64],
    b0: &[f64],
    cap0: usize,
    b1: &[f64],
    cap1: usize,
) -> ((usize, usize), (usize, usize)) {
    let (mut i0, mut j0, mut m0, mut t0) = (0usize, 0usize, 0usize, 0usize);
    let (mut i1, mut j1, mut m1, mut t1) = (0usize, 0usize, 0usize, 0usize);
    loop {
        // Both-active fast path: two interleaved branchless steps.
        while t0 < cap0
            && i0 < a.len()
            && j0 < b0.len()
            && t1 < cap1
            && i1 < a.len()
            && j1 < b1.len()
        {
            let (x0, y0) = (a[i0], b0[j0]);
            let (x1, y1) = (a[i1], b1[j1]);
            m0 += usize::from(x0 == y0);
            m1 += usize::from(x1 == y1);
            i0 += usize::from(x0 <= y0);
            i1 += usize::from(x1 <= y1);
            j0 += usize::from(y0 <= x0);
            j1 += usize::from(y1 <= x1);
            t0 += 1;
            t1 += 1;
        }
        // One lane went inactive: finish the other with the scalar walk's
        // merge phase, then stop.
        let act0 = t0 < cap0 && i0 < a.len() && j0 < b0.len();
        let act1 = t1 < cap1 && i1 < a.len() && j1 < b1.len();
        if act0 {
            let (x, y) = (a[i0], b0[j0]);
            m0 += usize::from(x == y);
            i0 += usize::from(x <= y);
            j0 += usize::from(y <= x);
            t0 += 1;
        } else if act1 {
            let (x, y) = (a[i1], b1[j1]);
            m1 += usize::from(x == y);
            i1 += usize::from(x <= y);
            j1 += usize::from(y <= x);
            t1 += 1;
        } else {
            break;
        }
    }
    // Exhaustion tails, one step each (same shortcut as the scalar walk).
    let rest0 = (a.len() - i0) + (b0.len() - j0);
    t0 += rest0.min(cap0 - t0);
    let rest1 = (a.len() - i1) + (b1.len() - j1);
    t1 += rest1.min(cap1 - t1);
    ((m0, t0), (m1, t1))
}

/// Per-set geometry of a stratified KMV collection. Each sketch already
/// stores its own `k` and every pairwise estimator takes `min(k)`, so
/// this exists to keep the stratum table/assignment round-trippable
/// through snapshots and queryable by the planners.
#[derive(Clone, Debug)]
pub struct KmvStrata<'a> {
    assign: Cow<'a, [u8]>,
    ks: Vec<u32>,
}

impl<'a> KmvStrata<'a> {
    fn new(assign: Cow<'a, [u8]>, ks: Vec<u32>) -> Self {
        assert!(!ks.is_empty(), "need at least one stratum");
        assert!(ks.iter().all(|&k| k > 0), "KMV needs k ≥ 1");
        KmvStrata { assign, ks }
    }

    /// Per-set stratum indices.
    #[inline]
    pub fn assign(&self) -> &[u8] {
        &self.assign
    }

    /// Per-stratum sketch sizes.
    #[inline]
    pub fn stratum_ks(&self) -> &[u32] {
        &self.ks
    }

    fn into_owned(self) -> KmvStrata<'static> {
        KmvStrata {
            assign: Cow::Owned(self.assign.into_owned()),
            ks: self.ks,
        }
    }
}

/// All KMV sketches of a ProbGraph representation (flat storage).
#[derive(Clone, Debug)]
pub struct KmvCollectionIn<'a> {
    sketches: Vec<KmvSketchIn<'a>>,
    /// The single seeded hash function — kept after construction so
    /// streamed elements can be hashed for in-place absorption.
    family: HashFamily,
    /// `Some` when the collection is stratified (per-set `k` lives on the
    /// sketches themselves; see [`KmvStrata`]).
    strata: Option<KmvStrata<'a>>,
}

/// The owned (`'static`) form of [`KmvCollectionIn`].
pub type KmvCollection = KmvCollectionIn<'static>;

impl<'a> KmvCollectionIn<'a> {
    /// Builds sketches for `n_sets` sets in parallel.
    pub fn build<'s, F>(n_sets: usize, k: usize, seed: u64, set: F) -> Self
    where
        F: Fn(usize) -> &'s [u32] + Sync,
    {
        let sketches = pg_parallel::parallel_init(n_sets, |s| KmvSketch::from_set(set(s), k, seed));
        KmvCollectionIn {
            sketches,
            family: HashFamily::new(1, seed),
            strata: None,
        }
    }

    /// Builds a **stratified** collection: sketch `i` keeps the
    /// `stratum_ks[assign[i]]` smallest hashes. With a single stratum this
    /// lowers onto [`KmvCollectionIn::build`] and is bit-identical to it.
    /// Cross-stratum estimators need no special casing — every pairwise
    /// path already truncates to `min(k)`, and a KMV sketch truncated to
    /// `k' < k` entries is exactly the sketch built at `k'`.
    pub fn build_stratified<'s, F>(stratum_ks: Vec<u32>, assign: Vec<u8>, seed: u64, set: F) -> Self
    where
        F: Fn(usize) -> &'s [u32] + Sync,
    {
        if stratum_ks.len() == 1 {
            return Self::build(assign.len(), stratum_ks[0] as usize, seed, set);
        }
        let strata = KmvStrata::new(Cow::Owned(assign), stratum_ks);
        let sketches = {
            let strata = &strata;
            pg_parallel::parallel_init(strata.assign.len(), |s| {
                KmvSketch::from_set(set(s), strata.ks[strata.assign[s] as usize] as usize, seed)
            })
        };
        KmvCollectionIn {
            sketches,
            family: HashFamily::new(1, seed),
            strata: Some(strata),
        }
    }

    /// Reconstructs a collection from already-validated sketches built
    /// under `seed` (the snapshot load path).
    pub fn from_sketches(sketches: Vec<KmvSketchIn<'a>>, seed: u64) -> Self {
        KmvCollectionIn {
            sketches,
            family: HashFamily::new(1, seed),
            strata: None,
        }
    }

    /// Stratified sibling of [`KmvCollectionIn::from_sketches`]: each
    /// sketch's `k` must equal `stratum_ks[assign[i]]` (the snapshot
    /// loader validates this before calling).
    pub fn from_sketches_stratified(
        sketches: Vec<KmvSketchIn<'a>>,
        stratum_ks: Vec<u32>,
        assign: impl Into<Cow<'a, [u8]>>,
        seed: u64,
    ) -> Self {
        let assign = assign.into();
        if stratum_ks.len() == 1 {
            return Self::from_sketches(sketches, seed);
        }
        let strata = KmvStrata::new(assign, stratum_ks);
        assert_eq!(strata.assign.len(), sketches.len());
        debug_assert!(sketches
            .iter()
            .zip(strata.assign.iter())
            .all(|(s, &a)| s.k == strata.ks[a as usize] as usize));
        KmvCollectionIn {
            sketches,
            family: HashFamily::new(1, seed),
            strata: Some(strata),
        }
    }

    /// Assembles one collection holding the concatenation of `parts`'
    /// sketches, in order — the serving layer's copy-on-publish path. All
    /// parts must have been built under one `(k, seed)`.
    pub fn gather(parts: &[&KmvCollectionIn<'_>]) -> KmvCollection {
        let first = parts.first().expect("gather needs at least one part");
        let mut out = KmvCollectionIn {
            sketches: Vec::new(),
            family: first.family.clone(),
            strata: None,
        };
        out.gather_into(parts);
        out
    }

    /// In-place form of [`KmvCollection::gather`]: sketches already
    /// present in `self` keep their per-sketch hash allocations (owned
    /// lists clear-and-refill), so a steady-state double-buffered publish
    /// allocates nothing beyond hash vectors that grew since the last
    /// epoch.
    pub fn gather_into(&mut self, parts: &[&KmvCollectionIn<'_>]) {
        let first = parts.first().expect("gather needs at least one part");
        self.strata = if let Some(fs) = &first.strata {
            let mut assign = Vec::new();
            for p in parts {
                let ps = p
                    .strata
                    .as_ref()
                    .expect("gather: mixed uniform/stratified parts");
                assert_eq!(ps.ks, fs.ks, "gather: mismatched stratum sizes");
                assign.extend_from_slice(&ps.assign);
            }
            Some(KmvStrata::new(Cow::Owned(assign), fs.ks.clone()))
        } else {
            assert!(
                parts.iter().all(|p| p.strata.is_none()),
                "gather: mixed uniform/stratified parts"
            );
            None
        };
        let total: usize = parts.iter().map(|p| p.sketches.len()).sum();
        self.sketches.truncate(total);
        let mut src = parts.iter().flat_map(|p| p.sketches.iter());
        for dst in self.sketches.iter_mut() {
            let s = src.next().expect("src covers the truncated prefix");
            match &mut dst.hashes {
                Cow::Owned(v) => {
                    v.clear();
                    v.extend_from_slice(&s.hashes);
                }
                h => *h = Cow::Owned(s.hashes.to_vec()),
            }
            dst.k = s.k;
            dst.set_size = s.set_size;
        }
        self.sketches.extend(src.map(|s| KmvSketchIn {
            hashes: Cow::Owned(s.hashes.to_vec()),
            k: s.k,
            set_size: s.set_size,
        }));
    }

    /// Detaches the collection from any borrowed snapshot buffer, cloning
    /// in-place-served hash lists. No-op for owned data.
    pub fn into_owned(self) -> KmvCollection {
        KmvCollectionIn {
            sketches: self
                .sketches
                .into_iter()
                .map(KmvSketchIn::into_owned)
                .collect(),
            family: self.family,
            strata: self.strata.map(KmvStrata::into_owned),
        }
    }

    /// Inserts one element into sketch `i` in place.
    #[inline]
    pub fn insert(&mut self, i: usize, x: u32) {
        self.insert_batch(i, std::slice::from_ref(&x));
    }

    /// Batched per-set insert: hashes `xs` and absorbs them into sketch
    /// `i` through one bounded-heap pass ([`KmvSketch::absorb`]).
    pub fn insert_batch(&mut self, i: usize, xs: &[u32]) {
        let family = &self.family;
        self.sketches[i].absorb(xs.iter().map(|&x| family.unit(0, x as u64)), xs.len());
    }

    /// Number of sketches.
    #[inline]
    pub fn len(&self) -> usize {
        self.sketches.len()
    }

    /// True when the collection holds no sketches.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.sketches.is_empty()
    }

    /// The sketch of set `i`.
    #[inline]
    pub fn sketch(&self, i: usize) -> &KmvSketchIn<'a> {
        &self.sketches[i]
    }

    /// Sketch size of set `i`.
    #[inline]
    pub fn k_of(&self, i: usize) -> usize {
        self.sketches[i].k
    }

    /// Stratum index of set `i` (0 for uniform collections).
    #[inline]
    pub fn stratum_of(&self, i: usize) -> usize {
        self.strata.as_ref().map_or(0, |st| st.assign[i] as usize)
    }

    /// The stratified geometry, when present.
    #[inline]
    pub fn strata(&self) -> Option<&KmvStrata<'a>> {
        self.strata.as_ref()
    }

    /// `|X∩Y|̂_K` between sets `i` and `j`.
    #[inline]
    pub fn estimate_intersection(&self, i: usize, j: usize) -> f64 {
        self.sketches[i].estimate_intersection(&self.sketches[j])
    }

    /// Bytes of sketch storage.
    pub fn memory_bytes(&self) -> usize {
        self.sketches.iter().map(|s| s.hashes.len() * 8 + 24).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_estimate_large_set() {
        let x: Vec<u32> = (0..10_000).collect();
        let s = KmvSketch::from_set(&x, 256, 3);
        let est = s.estimate_size();
        assert!((est - 10_000.0).abs() < 1500.0, "est={est}");
    }

    #[test]
    fn small_set_is_exact() {
        let x = [1u32, 5, 7];
        let s = KmvSketch::from_set(&x, 64, 1);
        assert!(s.is_exact());
        assert_eq!(s.estimate_size(), 3.0);
    }

    #[test]
    fn hashes_sorted_and_bounded() {
        let x: Vec<u32> = (0..500).collect();
        let s = KmvSketch::from_set(&x, 32, 9);
        assert_eq!(s.hashes().len(), 32);
        assert!(s.hashes().windows(2).all(|w| w[0] < w[1]));
        assert!(s.hashes().iter().all(|&h| h > 0.0 && h <= 1.0));
    }

    #[test]
    fn union_of_identical_sets_is_same_sketch() {
        let x: Vec<u32> = (0..300).collect();
        let a = KmvSketch::from_set(&x, 32, 4);
        let u = a.union(&a);
        assert_eq!(u.hashes(), a.hashes());
    }

    #[test]
    fn union_size_estimate() {
        let x: Vec<u32> = (0..3000).collect();
        let y: Vec<u32> = (1500..4500).collect(); // |union| = 4500
        let a = KmvSketch::from_set(&x, 256, 4);
        let b = KmvSketch::from_set(&y, 256, 4);
        let u = a.estimate_union_size(&b);
        assert!((u - 4500.0).abs() < 700.0, "u={u}");
    }

    #[test]
    fn intersection_estimate() {
        let x: Vec<u32> = (0..3000).collect();
        let y: Vec<u32> = (1500..4500).collect(); // |inter| = 1500
        let a = KmvSketch::from_set(&x, 512, 4);
        let b = KmvSketch::from_set(&y, 512, 4);
        let i = a.estimate_intersection(&b);
        assert!((i - 1500.0).abs() < 600.0, "i={i}");
    }

    #[test]
    fn fused_jaccard_walk_matches_materialized_union() {
        // The single-pass union_match_walk must agree with the definition:
        // count union-sketch hashes present in both input sketches.
        for (nx, ny, overlap, k) in [(300, 300, 100, 64), (50, 500, 25, 32), (10, 10, 10, 16)] {
            let x: Vec<u32> = (0..nx).collect();
            let y: Vec<u32> = (nx - overlap..nx - overlap + ny).collect();
            let a = KmvSketch::from_set(&x, k, 5);
            let b = KmvSketch::from_set(&y, k, 5);
            let u = a.union(&b);
            let p_ref = u
                .hashes()
                .iter()
                .filter(|h| a.hashes().contains(h) && b.hashes().contains(h))
                .count();
            let (p, seen) = super::union_match_walk(a.hashes(), b.hashes(), k);
            assert_eq!(p, p_ref, "nx={nx} ny={ny} k={k}");
            assert_eq!(seen, u.hashes().len(), "nx={nx} ny={ny} k={k}");
        }
    }

    #[test]
    fn lossless_pair_with_truncated_union_stays_exact() {
        // Regression: k=32, |X|=|Y|=30 disjoint — both sketches lossless but
        // the merged union (60) exceeds k. The old exact path truncated the
        // union to k and reported 30+30−32 = 28 instead of 0.
        let x: Vec<u32> = (0..30).collect();
        let y: Vec<u32> = (1000..1030).collect();
        let a = KmvSketch::from_set(&x, 32, 9);
        let b = KmvSketch::from_set(&y, 32, 9);
        assert!(a.is_exact() && b.is_exact());
        assert_eq!(a.estimate_intersection(&b), 0.0);
        // Overlapping lossless pair: exact count too.
        let z: Vec<u32> = (20..50).collect();
        let c = KmvSketch::from_set(&z, 32, 9);
        assert_eq!(a.estimate_intersection(&c), 10.0);
        // And the truncated union must no longer claim exactness.
        assert!(!a.union(&b).is_exact());
        assert!(a.union(&a).is_exact());
    }

    #[test]
    fn two_lane_walk_matches_scalar_across_regimes() {
        // Mix of lossless (small) and sampled (large) sketches so both
        // the interleaved fast path and the scalar fallback are hit.
        let sets: Vec<Vec<u32>> = vec![
            (0..2000).collect(),
            (1000..3000).collect(),
            (0..10).collect(), // lossless
            (5..25).collect(), // lossless
            (500..2500).collect(),
            vec![], // empty
        ];
        let col = KmvCollection::build(sets.len(), 64, 3, |i| &sets[i][..]);
        for i in 0..sets.len() {
            let s = col.sketch(i);
            for j in 0..sets.len() - 1 {
                let (e0, e1) = s.estimate_intersection_x2(col.sketch(j), col.sketch(j + 1));
                assert_eq!(e0, s.estimate_intersection(col.sketch(j)), "i={i} j={j}");
                assert_eq!(
                    e1,
                    s.estimate_intersection(col.sketch(j + 1)),
                    "i={i} j={j}"
                );
            }
        }
    }

    #[test]
    fn disjoint_intersection_clamped_nonnegative() {
        let x: Vec<u32> = (0..1000).collect();
        let y: Vec<u32> = (5000..6000).collect();
        let a = KmvSketch::from_set(&x, 128, 2);
        let b = KmvSketch::from_set(&y, 128, 2);
        assert!(a.estimate_intersection(&b) >= 0.0);
        assert!(a.estimate_intersection(&b) < 300.0);
    }

    #[test]
    fn empty_set_estimates_zero() {
        let e = KmvSketch::from_set(&[], 16, 1);
        assert_eq!(e.estimate_size(), 0.0);
    }

    #[test]
    fn incremental_insert_matches_rebuild() {
        // Stored hash lists (and hence every estimate) after streaming a
        // suffix must equal a from-scratch build over the extended sets.
        let full: Vec<Vec<u32>> = (0..10)
            .map(|s| (0..5 + s * 17).map(|i| (i * 7 + s) as u32).collect())
            .collect();
        let k = 16;
        let want = KmvCollection::build(full.len(), k, 31, |i| &full[i][..]);
        let mut got = KmvCollection::build(full.len(), k, 31, |i| &full[i][..full[i].len() / 3]);
        for (i, set) in full.iter().enumerate() {
            got.insert_batch(i, &set[set.len() / 3..]);
        }
        for i in 0..full.len() {
            assert_eq!(got.sketch(i), want.sketch(i), "set {i}");
            for j in 0..full.len() {
                assert_eq!(
                    got.estimate_intersection(i, j),
                    want.estimate_intersection(i, j),
                    "({i},{j})"
                );
            }
        }
        // Single-element path agrees too.
        let mut one = KmvCollection::build(1, 4, 2, |_| &[][..]);
        for x in [3u32, 14, 15, 9, 26, 5] {
            one.insert(0, x);
        }
        let rebuilt = KmvCollection::build(1, 4, 2, |_| &[3u32, 14, 15, 9, 26, 5][..]);
        assert_eq!(one.sketch(0), rebuilt.sketch(0));
    }

    #[test]
    fn one_stratum_build_is_bit_identical_to_uniform() {
        let sets: Vec<Vec<u32>> = (0..8)
            .map(|s| (0..20 + s * 30).map(|i| (i * 7 + s) as u32).collect())
            .collect();
        let uniform = KmvCollection::build(sets.len(), 32, 9, |i| &sets[i][..]);
        let strat =
            KmvCollection::build_stratified(vec![32], vec![0u8; sets.len()], 9, |i| &sets[i][..]);
        assert!(
            strat.strata().is_none(),
            "one stratum must lower to uniform"
        );
        for i in 0..sets.len() {
            assert_eq!(strat.sketch(i), uniform.sketch(i), "set {i}");
        }
    }

    #[test]
    fn cross_stratum_pairs_match_both_built_at_the_narrow_k() {
        // A KMV sketch truncated to k' entries is the k'-sketch, and all
        // pairwise paths min(k)-truncate — so a (k=64, k=16) pair must
        // estimate exactly like both sets sketched at k=16.
        let sets: Vec<Vec<u32>> = (0..9)
            .map(|s| (0..10 + s * 60).map(|i| (i * 5 + s) as u32).collect())
            .collect();
        let ks = vec![64u32, 32, 16];
        let assign: Vec<u8> = (0..sets.len()).map(|i| (i % 3) as u8).collect();
        let strat =
            KmvCollection::build_stratified(ks.clone(), assign.clone(), 5, |i| &sets[i][..]);
        for i in 0..sets.len() {
            assert_eq!(strat.k_of(i), ks[assign[i] as usize] as usize);
            for j in 0..sets.len() {
                let kmin = strat.k_of(i).min(strat.k_of(j));
                let narrow = KmvCollection::build(sets.len(), kmin, 5, |s| &sets[s][..]);
                let a_regime = strat.sketch(i).is_exact() == narrow.sketch(i).is_exact();
                let b_regime = strat.sketch(j).is_exact() == narrow.sketch(j).is_exact();
                if a_regime && b_regime {
                    assert_eq!(
                        strat.estimate_intersection(i, j),
                        narrow.estimate_intersection(i, j),
                        "i={i} j={j}"
                    );
                }
                let j1 = (j + 1) % sets.len();
                let (e0, e1) = strat
                    .sketch(i)
                    .estimate_intersection_x2(strat.sketch(j), strat.sketch(j1));
                assert_eq!(e0, strat.estimate_intersection(i, j), "x2 ({i},{j})");
                assert_eq!(e1, strat.estimate_intersection(i, j1), "x2 ({i},{j1})");
            }
        }
    }

    #[test]
    fn stratified_insert_matches_stratified_rebuild() {
        let full: Vec<Vec<u32>> = (0..8)
            .map(|s| (0..5 + s * 17).map(|i| (i * 7 + s) as u32).collect())
            .collect();
        let ks = vec![24u32, 8];
        let assign: Vec<u8> = (0..full.len()).map(|i| (i % 2) as u8).collect();
        let want =
            KmvCollection::build_stratified(ks.clone(), assign.clone(), 31, |i| &full[i][..]);
        let mut got =
            KmvCollection::build_stratified(ks, assign, 31, |i| &full[i][..full[i].len() / 3]);
        for (i, set) in full.iter().enumerate() {
            got.insert_batch(i, &set[set.len() / 3..]);
        }
        for i in 0..full.len() {
            assert_eq!(got.sketch(i), want.sketch(i), "set {i}");
        }
    }

    #[test]
    fn stratified_gather_concatenates_parts() {
        let sets: Vec<Vec<u32>> = (0..8)
            .map(|s| (0..10 + s * 11).map(|i| (i * 3 + s) as u32).collect())
            .collect();
        let ks = vec![16u32, 4];
        let assign: Vec<u8> = (0..8).map(|i| (i % 2) as u8).collect();
        let whole =
            KmvCollection::build_stratified(ks.clone(), assign.clone(), 5, |i| &sets[i][..]);
        let left =
            KmvCollection::build_stratified(ks.clone(), assign[..4].to_vec(), 5, |i| &sets[i][..]);
        let right =
            KmvCollection::build_stratified(ks, assign[4..].to_vec(), 5, |i| &sets[i + 4][..]);
        let gathered = KmvCollection::gather(&[&left, &right]);
        assert_eq!(
            gathered.strata().unwrap().assign(),
            whole.strata().unwrap().assign()
        );
        for i in 0..8 {
            assert_eq!(gathered.sketch(i), whole.sketch(i), "set {i}");
        }
    }

    #[test]
    fn collection_consistent_with_standalone() {
        let sets: Vec<Vec<u32>> = (0..20)
            .map(|s| (0..100 + s * 10).map(|i| (i * 7 + s) as u32).collect())
            .collect();
        let col = KmvCollection::build(sets.len(), 32, 6, |i| &sets[i][..]);
        let a = KmvSketch::from_set(&sets[2], 32, 6);
        assert_eq!(col.sketch(2), &a);
        let b = KmvSketch::from_set(&sets[9], 32, 6);
        assert!((col.estimate_intersection(2, 9) - a.estimate_intersection(&b)).abs() < 1e-12);
    }
}
