//! MinHash, 1-hash variant — "bottom-k" (§II-D, §IV-D of the paper).
//!
//! One hash function `h`; the sketch keeps the `k` elements of the set with
//! the smallest hashes. Never contains duplicates, and costs only one hash
//! evaluation per element to build (`O(d_v)` work, Table V) — which is why
//! the paper finds 1-hash faster to construct than k-hash.
//!
//! The paper's distributional claim — `|M¹_X ∩ M¹_Y|` follows
//! `Hypergeometric(|X∪Y|, |X∩Y|, k)` (§IV-D, footnote 4) — holds for the
//! *union-restricted* match count: the `k` hash-smallest elements of
//! `X ∪ Y` are `k` uniform draws without replacement from the union, and
//! such a draw lies in both samples iff it lies in `X ∩ Y`. We therefore
//! count matches among the bottom-k of the union (the classic bottom-k
//! estimator), which is what makes `Ĵ_1H = matches/k` unbiased and
//! Prop. IV.3's exponential bound applicable. Samples are stored in hash
//! order so this union-merge costs `O(k)` (Table IV).

use crate::estimators;
use pg_hash::HashFamily;

/// A bottom-k sketch of one set: the (up to) `k` elements with smallest
/// hashes, stored in ascending hash order.
#[derive(Clone, Debug)]
pub struct BottomK {
    elems: Vec<u32>,
    hashes: Vec<u32>,
    k: usize,
    set_size: usize,
}

/// Selects the `k` elements of `items` with the smallest `(hash, id)` keys,
/// returned in ascending `(hash, id)` order.
fn select_bottom_k(items: &[u32], k: usize, family: &HashFamily) -> (Vec<u32>, Vec<u32>) {
    let mut keyed: Vec<(u32, u32)> = items
        .iter()
        .map(|&x| (family.hash32(0, x as u64), x))
        .collect();
    keyed.sort_unstable();
    keyed.dedup(); // duplicate input items collapse
    keyed.truncate(k);
    let hashes: Vec<u32> = keyed.iter().map(|&(h, _)| h).collect();
    let elems: Vec<u32> = keyed.into_iter().map(|(_, x)| x).collect();
    (elems, hashes)
}

/// Union-restricted match count: merges two hash-ordered samples, walks the
/// first `k` distinct elements of the union, and counts those present in
/// *both* samples. Returns `(matches, union_seen)` where `union_seen ≤ k`
/// is how many union elements were available (if `< k`, the union was
/// exhausted and the count is exact).
fn union_matches(a: &[u32], ah: &[u32], b: &[u32], bh: &[u32], k: usize) -> (usize, usize) {
    debug_assert_eq!(a.len(), ah.len());
    debug_assert_eq!(b.len(), bh.len());
    let mut i = 0;
    let mut j = 0;
    let mut taken = 0usize;
    let mut matches = 0usize;
    while taken < k && (i < a.len() || j < b.len()) {
        if i < a.len() && j < b.len() {
            // Compare precomputed (hash, element) keys — no hashing in the
            // kernel, as the paper's O(k) Table IV cost requires.
            let ka = (ah[i], a[i]);
            let kb = (bh[j], b[j]);
            match ka.cmp(&kb) {
                std::cmp::Ordering::Equal => {
                    matches += 1;
                    i += 1;
                    j += 1;
                }
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
            }
        } else if i < a.len() {
            i += 1;
        } else {
            j += 1;
        }
        taken += 1;
    }
    (matches, taken)
}

impl BottomK {
    /// Builds the sketch of `items` with parameter `k` and a hash seeded
    /// from `seed`. Comparable only across sketches with equal `k`/`seed`.
    pub fn from_set(items: &[u32], k: usize, seed: u64) -> Self {
        assert!(k > 0, "bottom-k needs k ≥ 1");
        let family = HashFamily::new(1, seed);
        let (elems, hashes) = select_bottom_k(items, k, &family);
        BottomK {
            elems,
            hashes,
            k,
            set_size: items.len(),
        }
    }

    /// Configured `k`.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// The stored sample, in ascending hash order.
    #[inline]
    pub fn elements(&self) -> &[u32] {
        &self.elems
    }

    /// Exact size of the sketched set (free to record at build time; the
    /// paper's Eq. (5) uses exact `|X|`, `|Y|` anyway).
    #[inline]
    pub fn set_size(&self) -> usize {
        self.set_size
    }

    /// True when the sketch stored the whole set (`|X| ≤ k`), i.e. it is
    /// lossless.
    #[inline]
    pub fn is_exact(&self) -> bool {
        self.set_size <= self.k
    }

    /// Union-restricted `|M¹_X ∩ M¹_Y|` (see module docs); `O(k)`.
    pub fn matches(&self, other: &BottomK) -> usize {
        assert_eq!(self.k, other.k, "sketches differ in k");
        union_matches(
            &self.elems,
            &self.hashes,
            &other.elems,
            &other.hashes,
            self.k,
        )
        .0
    }

    /// `Ĵ_1H = matches / k'` where `k'` is the number of union draws
    /// actually seen (`k` in the sampling regime); when both sketches are
    /// lossless the whole sets are available and the exact Jaccard is
    /// returned instead.
    pub fn estimate_jaccard(&self, other: &BottomK) -> f64 {
        if self.is_exact() && other.is_exact() {
            // Uncapped merge over the full stored sets.
            let cap = self.elems.len() + other.elems.len();
            let (matches, _) = union_matches(
                &self.elems,
                &self.hashes,
                &other.elems,
                &other.hashes,
                cap.max(1),
            );
            let union = cap - matches;
            return if union == 0 {
                0.0
            } else {
                matches as f64 / union as f64
            };
        }
        let (matches, seen) = union_matches(
            &self.elems,
            &self.hashes,
            &other.elems,
            &other.hashes,
            self.k,
        );
        if seen == 0 {
            return 0.0;
        }
        estimators::mh_jaccard(matches, seen)
    }

    /// `|X∩Y|̂_1H` (Eq. 5 form).
    ///
    /// When both sketches are lossless (`|X| ≤ k` and `|Y| ≤ k`) the full
    /// sets are stored, so the exact `|X∩Y|` (uncapped merge) is returned
    /// directly.
    pub fn estimate_intersection(&self, other: &BottomK) -> f64 {
        if self.is_exact() && other.is_exact() {
            let cap = (self.elems.len() + other.elems.len()).max(1);
            return union_matches(&self.elems, &self.hashes, &other.elems, &other.hashes, cap).0
                as f64;
        }
        let (matches, _) = union_matches(
            &self.elems,
            &self.hashes,
            &other.elems,
            &other.hashes,
            self.k,
        );
        estimators::jaccard_to_intersection(
            estimators::mh_jaccard(matches, self.k),
            self.set_size,
            other.set_size,
        )
    }
}

/// All bottom-k sketches of a ProbGraph representation: one flat element
/// array plus per-set offsets (sets smaller than `k` store fewer entries).
#[derive(Clone, Debug)]
pub struct BottomKCollection {
    elems: Vec<u32>,
    hashes: Vec<u32>,
    offsets: Vec<u32>,
    set_sizes: Vec<u32>,
    k: usize,
}

impl BottomKCollection {
    /// Builds sketches for `n_sets` sets in parallel.
    pub fn build<'a, F>(n_sets: usize, k: usize, seed: u64, set: F) -> Self
    where
        F: Fn(usize) -> &'a [u32] + Sync,
    {
        assert!(k > 0, "bottom-k needs k ≥ 1");
        let family = HashFamily::new(1, seed);
        // Two-phase: compute every sketch into its own Vec in parallel,
        // then concatenate (keeps offsets exact without atomics).
        let per_set: Vec<(Vec<u32>, Vec<u32>)> = {
            let family = &family;
            let set = &set;
            pg_parallel::parallel_init(n_sets, move |s| select_bottom_k(set(s), k, family))
        };
        let mut offsets = Vec::with_capacity(n_sets + 1);
        offsets.push(0u32);
        let mut total = 0usize;
        for (v, _) in &per_set {
            total += v.len();
            assert!(
                total <= u32::MAX as usize,
                "sketch storage exceeds u32 offsets"
            );
            offsets.push(total as u32);
        }
        let mut elems = Vec::with_capacity(total);
        let mut hashes = Vec::with_capacity(total);
        for (v, h) in &per_set {
            elems.extend_from_slice(v);
            hashes.extend_from_slice(h);
        }
        let mut set_sizes = vec![0u32; n_sets];
        pg_parallel::parallel_fill_with(&mut set_sizes, |s| set(s).len() as u32);
        BottomKCollection {
            elems,
            hashes,
            offsets,
            set_sizes,
            k,
        }
    }

    /// Number of sketches.
    #[inline]
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// True when the collection holds no sketches.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Configured `k`.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// The sample of set `i`, in ascending hash order.
    #[inline]
    pub fn sample(&self, i: usize) -> &[u32] {
        &self.elems[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// The precomputed hashes of [`BottomKCollection::sample`], same order.
    #[inline]
    pub fn sample_hashes(&self, i: usize) -> &[u32] {
        &self.hashes[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Exact input-set size recorded at build time.
    #[inline]
    pub fn set_size(&self, i: usize) -> usize {
        self.set_sizes[i] as usize
    }

    /// Union-restricted `|M¹_X ∩ M¹_Y|` between sets `i` and `j` (`O(k)`).
    #[inline]
    pub fn matches(&self, i: usize, j: usize) -> usize {
        union_matches(
            self.sample(i),
            self.sample_hashes(i),
            self.sample(j),
            self.sample_hashes(j),
            self.k,
        )
        .0
    }

    /// `|X∩Y|̂_1H` between sets `i` and `j`; see
    /// [`BottomK::estimate_intersection`] for the lossless shortcut.
    pub fn estimate_intersection(&self, i: usize, j: usize) -> f64 {
        let (a, b) = (self.sample(i), self.sample(j));
        let (ah, bh) = (self.sample_hashes(i), self.sample_hashes(j));
        let (ni, nj) = (self.set_size(i), self.set_size(j));
        if ni <= self.k && nj <= self.k {
            // Lossless: full sets stored — exact uncapped merge.
            let cap = (a.len() + b.len()).max(1);
            return union_matches(a, ah, b, bh, cap).0 as f64;
        }
        let (matches, _) = union_matches(a, ah, b, bh, self.k);
        estimators::jaccard_to_intersection(estimators::mh_jaccard(matches, self.k), ni, nj)
    }

    /// `Ĵ_1H` between sets `i` and `j`.
    pub fn estimate_jaccard(&self, i: usize, j: usize) -> f64 {
        let (a, b) = (self.sample(i), self.sample(j));
        let (ah, bh) = (self.sample_hashes(i), self.sample_hashes(j));
        let (ni, nj) = (self.set_size(i), self.set_size(j));
        if ni <= self.k && nj <= self.k {
            let cap = a.len() + b.len();
            let (matches, _) = union_matches(a, ah, b, bh, cap.max(1));
            let union = cap - matches;
            return if union == 0 {
                0.0
            } else {
                matches as f64 / union as f64
            };
        }
        let (matches, seen) = union_matches(a, ah, b, bh, self.k);
        if seen == 0 {
            return 0.0;
        }
        estimators::mh_jaccard(matches, seen)
    }

    /// Bytes of sketch storage (elements + hashes + offsets + sizes).
    /// Table I charges `W·k` bits per set with `W = 64`, i.e. 8 bytes per
    /// slot — exactly one element + one stored hash.
    pub fn memory_bytes(&self) -> usize {
        self.elems.len() * 8 + self.offsets.len() * 4 + self.set_sizes.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_sets_are_stored_exactly() {
        let x = [5u32, 1, 9];
        let s = BottomK::from_set(&x, 8, 3);
        assert!(s.is_exact());
        let mut sorted = s.elements().to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![1, 5, 9]);
        assert_eq!(s.set_size(), 3);
    }

    #[test]
    fn large_sets_keep_k_elements() {
        let x: Vec<u32> = (0..1000).collect();
        let s = BottomK::from_set(&x, 32, 3);
        assert_eq!(s.elements().len(), 32);
        assert!(!s.is_exact());
    }

    #[test]
    fn sample_is_hash_minimal_and_hash_ordered() {
        let x: Vec<u32> = (0..500).collect();
        let k = 16;
        let s = BottomK::from_set(&x, k, 9);
        let fam = HashFamily::new(1, 9);
        let mut hashes: Vec<(u32, u32)> = x.iter().map(|&e| (fam.hash32(0, e as u64), e)).collect();
        hashes.sort_unstable();
        let expect: Vec<u32> = hashes[..k].iter().map(|&(_, e)| e).collect();
        assert_eq!(s.elements(), &expect[..]);
    }

    #[test]
    fn exact_intersection_for_lossless_sketches() {
        let x = [1u32, 2, 3, 4];
        let y = [3u32, 4, 5];
        let a = BottomK::from_set(&x, 16, 1);
        let b = BottomK::from_set(&y, 16, 1);
        assert_eq!(a.estimate_intersection(&b), 2.0);
        // Exact Jaccard too: 2 / 5.
        assert!((a.estimate_jaccard(&b) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn jaccard_estimate_accuracy() {
        let x: Vec<u32> = (0..1000).collect();
        let y: Vec<u32> = (500..1500).collect(); // J = 500/1500 = 1/3
        let a = BottomK::from_set(&x, 256, 5);
        let b = BottomK::from_set(&y, 256, 5);
        let j = a.estimate_jaccard(&b);
        assert!((j - 1.0 / 3.0).abs() < 0.08, "J={j}");
        let inter = a.estimate_intersection(&b);
        assert!((inter - 500.0).abs() < 150.0, "inter={inter}");
    }

    #[test]
    fn identical_large_sets() {
        let x: Vec<u32> = (0..1000).map(|i| i * 3).collect();
        let a = BottomK::from_set(&x, 64, 2);
        let b = BottomK::from_set(&x, 64, 2);
        assert_eq!(a.matches(&b), 64);
        assert_eq!(a.estimate_jaccard(&b), 1.0);
    }

    #[test]
    fn disjoint_sets() {
        let x: Vec<u32> = (0..1000).collect();
        let y: Vec<u32> = (10_000..11_000).collect();
        let a = BottomK::from_set(&x, 128, 2);
        let b = BottomK::from_set(&y, 128, 2);
        assert_eq!(a.matches(&b), 0);
        assert_eq!(a.estimate_intersection(&b), 0.0);
    }

    #[test]
    fn empty_set() {
        let e = BottomK::from_set(&[], 8, 1);
        let x = BottomK::from_set(&[1, 2], 8, 1);
        assert_eq!(e.matches(&x), 0);
        assert_eq!(e.estimate_intersection(&x), 0.0);
        assert_eq!(e.estimate_jaccard(&e), 0.0);
    }

    #[test]
    fn duplicate_inputs_collapse() {
        let a = BottomK::from_set(&[7, 7, 7, 2, 2], 8, 1);
        let b = BottomK::from_set(&[2, 7], 8, 1);
        assert_eq!(a.elements(), b.elements());
        assert_eq!(a.matches(&b), 2);
    }

    #[test]
    fn collection_matches_standalone() {
        let sets: Vec<Vec<u32>> = (0..40)
            .map(|s| (0..10 + s * 5).map(|i| (i * 3 + s) as u32).collect())
            .collect();
        let col = BottomKCollection::build(sets.len(), 12, 7, |i| &sets[i][..]);
        for (i, set) in sets.iter().enumerate() {
            let s = BottomK::from_set(set, 12, 7);
            assert_eq!(col.sample(i), s.elements(), "set {i}");
            assert_eq!(col.set_size(i), set.len());
        }
        let a = BottomK::from_set(&sets[5], 12, 7);
        let b = BottomK::from_set(&sets[20], 12, 7);
        assert_eq!(col.matches(5, 20), a.matches(&b));
        assert!((col.estimate_intersection(5, 20) - a.estimate_intersection(&b)).abs() < 1e-12);
    }

    #[test]
    fn parallel_build_deterministic() {
        let sets: Vec<Vec<u32>> = (0..150)
            .map(|s| (0..80).map(|i| (i * 11 + s * 2) as u32).collect())
            .collect();
        let a =
            pg_parallel::with_threads(1, || BottomKCollection::build(150, 10, 3, |i| &sets[i][..]));
        let b =
            pg_parallel::with_threads(8, || BottomKCollection::build(150, 10, 3, |i| &sets[i][..]));
        assert_eq!(a.elems, b.elems);
        assert_eq!(a.offsets, b.offsets);
    }
}
