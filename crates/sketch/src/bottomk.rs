//! MinHash, 1-hash variant — "bottom-k" (§II-D, §IV-D of the paper).
//!
//! One hash function `h`; the sketch keeps the `k` elements of the set with
//! the smallest hashes. Never contains duplicates, and costs only one hash
//! evaluation per element to build (`O(d_v)` work, Table V) — which is why
//! the paper finds 1-hash faster to construct than k-hash.
//!
//! The paper's distributional claim — `|M¹_X ∩ M¹_Y|` follows
//! `Hypergeometric(|X∪Y|, |X∩Y|, k)` (§IV-D, footnote 4) — holds for the
//! *union-restricted* match count: the `k` hash-smallest elements of
//! `X ∪ Y` are `k` uniform draws without replacement from the union, and
//! such a draw lies in both samples iff it lies in `X ∩ Y`. We therefore
//! count matches among the bottom-k of the union (the classic bottom-k
//! estimator), which is what makes `Ĵ_1H = matches/k` unbiased and
//! Prop. IV.3's exponential bound applicable. Samples are stored in hash
//! order so this union-merge costs `O(k)` (Table IV).
//!
//! A collection may be **stratified** ([`BkStrata`]): each set's sample
//! cap `k` comes from its stratum. Cross-stratum pairs walk the first
//! `min(k_i, k_j)` union draws — exact, because truncating a bottom-k
//! sample to its `k' < k` hash-smallest entries *is* the bottom-`k'`
//! sample, so the capped walk equals both sketches built at the narrower
//! cap. The offsets/lens layout was already heterogeneous; stratification
//! only varies the per-set capacity.

use crate::cowvec::cow_clear;
use crate::estimators;
use crate::heap::{sift_down, sift_up};
use pg_hash::HashFamily;
use std::borrow::Cow;

/// A bottom-k sketch of one set: the (up to) `k` elements with smallest
/// hashes, stored in ascending hash order.
#[derive(Clone, Debug)]
pub struct BottomK {
    elems: Vec<u32>,
    hashes: Vec<u32>,
    k: usize,
    set_size: usize,
}

/// Selects the `k` elements of `items` with the smallest `(hash, id)` keys,
/// returned in ascending `(hash, id)` order.
fn select_bottom_k(items: &[u32], k: usize, family: &HashFamily) -> (Vec<u32>, Vec<u32>) {
    let mut keyed: Vec<(u32, u32)> = items
        .iter()
        .map(|&x| (family.hash32(0, x as u64), x))
        .collect();
    keyed.sort_unstable();
    keyed.dedup(); // duplicate input items collapse
    keyed.truncate(k);
    let hashes: Vec<u32> = keyed.iter().map(|&(h, _)| h).collect();
    let elems: Vec<u32> = keyed.into_iter().map(|(_, x)| x).collect();
    (elems, hashes)
}

/// Union-restricted match count: merges two hash-ordered samples, walks the
/// first `k` distinct elements of the union, and counts those present in
/// *both* samples. Returns `(matches, union_seen)` where `union_seen ≤ k`
/// is how many union elements were available (if `< k`, the union was
/// exhausted and the count is exact).
///
/// The precomputed `(hash, element)` keys — no hashing in the kernel, as
/// the paper's `O(k)` Table IV cost requires — are packed into one `u64`
/// whose ordering equals the tuple ordering, and the merge advances with
/// branchless conditional increments: merge-order outcomes are
/// data-random, so a three-way branch is a predictor loss on every other
/// element, while compare+increment pipelines. Once either sample is
/// exhausted no matches remain and the leftover union draws are counted
/// in one step.
fn union_matches(a: &[u32], ah: &[u32], b: &[u32], bh: &[u32], k: usize) -> (usize, usize) {
    debug_assert_eq!(a.len(), ah.len());
    debug_assert_eq!(b.len(), bh.len());
    #[inline(always)]
    fn key(h: &[u32], e: &[u32], t: usize) -> u64 {
        (h[t] as u64) << 32 | e[t] as u64
    }
    let mut i = 0;
    let mut j = 0;
    let mut taken = 0usize;
    let mut matches = 0usize;
    while taken < k && i < a.len() && j < b.len() {
        let ka = key(ah, a, i);
        let kb = key(bh, b, j);
        matches += usize::from(ka == kb);
        i += usize::from(ka <= kb);
        j += usize::from(kb <= ka);
        taken += 1;
    }
    // Tail: at most one sample still has elements; each is one union draw.
    let rest = (a.len() - i) + (b.len() - j);
    taken += rest.min(k - taken);
    (matches, taken)
}

/// Two-lane lockstep form of [`union_matches`] sharing one source sample:
/// each loop iteration advances one branchless step of each still-active
/// lane, so the two load→compare→increment dependency chains interleave
/// and pipeline. Per lane the `(matches, taken)` result is exactly the
/// scalar walk's.
#[allow(clippy::too_many_arguments)]
fn union_matches_x2(
    a: &[u32],
    ah: &[u32],
    b0: &[u32],
    bh0: &[u32],
    b1: &[u32],
    bh1: &[u32],
    k0: usize,
    k1: usize,
) -> ((usize, usize), (usize, usize)) {
    #[inline(always)]
    fn key(h: &[u32], e: &[u32], t: usize) -> u64 {
        (h[t] as u64) << 32 | e[t] as u64
    }
    let (mut i0, mut j0, mut m0, mut t0) = (0usize, 0usize, 0usize, 0usize);
    let (mut i1, mut j1, mut m1, mut t1) = (0usize, 0usize, 0usize, 0usize);
    loop {
        while t0 < k0 && i0 < a.len() && j0 < b0.len() && t1 < k1 && i1 < a.len() && j1 < b1.len() {
            let ka0 = key(ah, a, i0);
            let kb0 = key(bh0, b0, j0);
            let ka1 = key(ah, a, i1);
            let kb1 = key(bh1, b1, j1);
            m0 += usize::from(ka0 == kb0);
            m1 += usize::from(ka1 == kb1);
            i0 += usize::from(ka0 <= kb0);
            i1 += usize::from(ka1 <= kb1);
            j0 += usize::from(kb0 <= ka0);
            j1 += usize::from(kb1 <= ka1);
            t0 += 1;
            t1 += 1;
        }
        let act0 = t0 < k0 && i0 < a.len() && j0 < b0.len();
        let act1 = t1 < k1 && i1 < a.len() && j1 < b1.len();
        if act0 {
            let ka = key(ah, a, i0);
            let kb = key(bh0, b0, j0);
            m0 += usize::from(ka == kb);
            i0 += usize::from(ka <= kb);
            j0 += usize::from(kb <= ka);
            t0 += 1;
        } else if act1 {
            let ka = key(ah, a, i1);
            let kb = key(bh1, b1, j1);
            m1 += usize::from(ka == kb);
            i1 += usize::from(ka <= kb);
            j1 += usize::from(kb <= ka);
            t1 += 1;
        } else {
            break;
        }
    }
    let rest0 = (a.len() - i0) + (b0.len() - j0);
    t0 += rest0.min(k0 - t0);
    let rest1 = (a.len() - i1) + (b1.len() - j1);
    t1 += rest1.min(k1 - t1);
    ((m0, t0), (m1, t1))
}

impl BottomK {
    /// Builds the sketch of `items` with parameter `k` and a hash seeded
    /// from `seed`. Comparable only across sketches with equal `k`/`seed`.
    pub fn from_set(items: &[u32], k: usize, seed: u64) -> Self {
        assert!(k > 0, "bottom-k needs k ≥ 1");
        let family = HashFamily::new(1, seed);
        let (elems, hashes) = select_bottom_k(items, k, &family);
        BottomK {
            elems,
            hashes,
            k,
            set_size: items.len(),
        }
    }

    /// Configured `k`.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// The stored sample, in ascending hash order.
    #[inline]
    pub fn elements(&self) -> &[u32] {
        &self.elems
    }

    /// Exact size of the sketched set (free to record at build time; the
    /// paper's Eq. (5) uses exact `|X|`, `|Y|` anyway).
    #[inline]
    pub fn set_size(&self) -> usize {
        self.set_size
    }

    /// True when the sketch stored the whole set (`|X| ≤ k`), i.e. it is
    /// lossless.
    #[inline]
    pub fn is_exact(&self) -> bool {
        self.set_size <= self.k
    }

    /// Union-restricted `|M¹_X ∩ M¹_Y|` (see module docs); `O(k)`.
    pub fn matches(&self, other: &BottomK) -> usize {
        assert_eq!(self.k, other.k, "sketches differ in k");
        union_matches(
            &self.elems,
            &self.hashes,
            &other.elems,
            &other.hashes,
            self.k,
        )
        .0
    }

    /// `Ĵ_1H = matches / k'` where `k'` is the number of union draws
    /// actually seen (`k` in the sampling regime); when both sketches are
    /// lossless the whole sets are available and the exact Jaccard is
    /// returned instead.
    pub fn estimate_jaccard(&self, other: &BottomK) -> f64 {
        if self.is_exact() && other.is_exact() {
            // Uncapped merge over the full stored sets.
            let cap = self.elems.len() + other.elems.len();
            let (matches, _) = union_matches(
                &self.elems,
                &self.hashes,
                &other.elems,
                &other.hashes,
                cap.max(1),
            );
            let union = cap - matches;
            return if union == 0 {
                0.0
            } else {
                matches as f64 / union as f64
            };
        }
        let (matches, seen) = union_matches(
            &self.elems,
            &self.hashes,
            &other.elems,
            &other.hashes,
            self.k,
        );
        if seen == 0 {
            return 0.0;
        }
        estimators::mh_jaccard(matches, seen)
    }

    /// `|X∩Y|̂_1H` (Eq. 5 form).
    ///
    /// When both sketches are lossless (`|X| ≤ k` and `|Y| ≤ k`) the full
    /// sets are stored, so the exact `|X∩Y|` (uncapped merge) is returned
    /// directly.
    pub fn estimate_intersection(&self, other: &BottomK) -> f64 {
        if self.is_exact() && other.is_exact() {
            let cap = (self.elems.len() + other.elems.len()).max(1);
            return union_matches(&self.elems, &self.hashes, &other.elems, &other.hashes, cap).0
                as f64;
        }
        let (matches, _) = union_matches(
            &self.elems,
            &self.hashes,
            &other.elems,
            &other.hashes,
            self.k,
        );
        estimators::jaccard_to_intersection(
            estimators::mh_jaccard(matches, self.k),
            self.set_size,
            other.set_size,
        )
    }
}

/// All bottom-k sketches of a ProbGraph representation: one flat element
/// array plus per-set offsets (sets smaller than `k` store fewer entries).
///
/// ## Streaming layout
///
/// The static build tight-packs samples (`offsets[i+1] − offsets[i]` is
/// each sample's exact length). The first in-place insert converts the
/// arrays once to a *strided* layout — every set owns a full capacity-`k`
/// region with a live length in `lens` — because samples grow under
/// insertion and tight packing would force an `O(total)` shift per
/// element. `k` slots of 8 bytes per set is exactly what
/// `BudgetPlan::onehash` charges (Table I's `W·k` bits), so the strided
/// form stays inside the same storage budget the static form was planned
/// under. Inside one [`BottomKCollection::insert_batch`] call the touched
/// region is maintained as a bounded max-heap on the packed
/// `(hash, element)` key (`O(log k)` per element instead of an `O(k)`
/// sorted-insert shift) and re-sorted once at the end of the batch, so
/// the sorted-slice views every merge-walk estimator reads stay valid
/// between batches.
/// All five flat arrays are copy-on-write over `'a` (see
/// [`crate::BloomCollectionIn`]): borrowed collections serve a validated
/// snapshot buffer in place; the first insert into a borrowed collection
/// clones the touched arrays (`Cow` semantics). The owned alias
/// [`BottomKCollection`] is the ordinary built/streamed form.
#[derive(Clone, Debug)]
pub struct BottomKCollectionIn<'a> {
    elems: Cow<'a, [u32]>,
    hashes: Cow<'a, [u32]>,
    offsets: Cow<'a, [u32]>,
    /// Live sample length per set (`≤` region capacity).
    lens: Cow<'a, [u32]>,
    set_sizes: Cow<'a, [u32]>,
    k: usize,
    /// The single seeded hash function — kept after construction so
    /// streamed elements can be keyed without re-deriving the family.
    family: HashFamily,
    /// True once every region has capacity `k` (streaming layout).
    strided: bool,
    /// `Some` when the collection is stratified: per-set caps live here
    /// and `k` holds the **widest** stratum's cap.
    strata: Option<BkStrata<'a>>,
}

/// The owned (`'static`) form of [`BottomKCollectionIn`].
pub type BottomKCollection = BottomKCollectionIn<'static>;

/// Per-set geometry of a stratified bottom-k collection: stratum
/// assignment plus the per-stratum sample caps.
#[derive(Clone, Debug)]
pub struct BkStrata<'a> {
    assign: Cow<'a, [u8]>,
    ks: Vec<u32>,
}

impl<'a> BkStrata<'a> {
    fn new(assign: Cow<'a, [u8]>, ks: Vec<u32>) -> Self {
        assert!(!ks.is_empty(), "need at least one stratum");
        assert!(ks.iter().all(|&k| k > 0), "bottom-k needs k ≥ 1");
        BkStrata { assign, ks }
    }

    /// Per-set stratum indices.
    #[inline]
    pub fn assign(&self) -> &[u8] {
        &self.assign
    }

    /// Per-stratum sample caps.
    #[inline]
    pub fn stratum_ks(&self) -> &[u32] {
        &self.ks
    }

    fn into_owned(self) -> BkStrata<'static> {
        BkStrata {
            assign: Cow::Owned(self.assign.into_owned()),
            ks: self.ks,
        }
    }
}

impl<'a> BottomKCollectionIn<'a> {
    /// Builds sketches for `n_sets` sets in parallel.
    pub fn build<'s, F>(n_sets: usize, k: usize, seed: u64, set: F) -> Self
    where
        F: Fn(usize) -> &'s [u32] + Sync,
    {
        assert!(k > 0, "bottom-k needs k ≥ 1");
        let family = HashFamily::new(1, seed);
        // Two-phase: compute every sketch into its own Vec in parallel,
        // then concatenate (keeps offsets exact without atomics).
        let per_set: Vec<(Vec<u32>, Vec<u32>)> = {
            let family = &family;
            let set = &set;
            pg_parallel::parallel_init(n_sets, move |s| select_bottom_k(set(s), k, family))
        };
        let mut offsets = Vec::with_capacity(n_sets + 1);
        offsets.push(0u32);
        let mut total = 0usize;
        for (v, _) in &per_set {
            total += v.len();
            assert!(
                total <= u32::MAX as usize,
                "sketch storage exceeds u32 offsets"
            );
            offsets.push(total as u32);
        }
        let mut elems = Vec::with_capacity(total);
        let mut hashes = Vec::with_capacity(total);
        for (v, h) in &per_set {
            elems.extend_from_slice(v);
            hashes.extend_from_slice(h);
        }
        let mut set_sizes = vec![0u32; n_sets];
        pg_parallel::parallel_fill_with(&mut set_sizes, |s| set(s).len() as u32);
        let lens: Vec<u32> = offsets.windows(2).map(|w| w[1] - w[0]).collect();
        let strided = total == n_sets * k;
        BottomKCollectionIn {
            elems: Cow::Owned(elems),
            hashes: Cow::Owned(hashes),
            offsets: Cow::Owned(offsets),
            lens: Cow::Owned(lens),
            set_sizes: Cow::Owned(set_sizes),
            k,
            family,
            strided,
            strata: None,
        }
    }

    /// Builds a **stratified** collection: set `i`'s sample cap is
    /// `stratum_ks[assign[i]]`. With a single stratum this lowers onto
    /// [`BottomKCollectionIn::build`] and is bit-identical to it.
    pub fn build_stratified<'s, F>(stratum_ks: Vec<u32>, assign: Vec<u8>, seed: u64, set: F) -> Self
    where
        F: Fn(usize) -> &'s [u32] + Sync,
    {
        if stratum_ks.len() == 1 {
            return Self::build(assign.len(), stratum_ks[0] as usize, seed, set);
        }
        let n_sets = assign.len();
        let strata = BkStrata::new(Cow::Owned(assign), stratum_ks);
        let family = HashFamily::new(1, seed);
        let per_set: Vec<(Vec<u32>, Vec<u32>)> = {
            let family = &family;
            let set = &set;
            let strata = &strata;
            pg_parallel::parallel_init(n_sets, move |s| {
                select_bottom_k(
                    set(s),
                    strata.ks[strata.assign[s] as usize] as usize,
                    family,
                )
            })
        };
        let mut offsets = Vec::with_capacity(n_sets + 1);
        offsets.push(0u32);
        let mut total = 0usize;
        let mut cap_total = 0usize;
        for (s, (v, _)) in per_set.iter().enumerate() {
            total += v.len();
            cap_total += strata.ks[strata.assign[s] as usize] as usize;
            assert!(
                total <= u32::MAX as usize,
                "sketch storage exceeds u32 offsets"
            );
            offsets.push(total as u32);
        }
        let mut elems = Vec::with_capacity(total);
        let mut hashes = Vec::with_capacity(total);
        for (v, h) in &per_set {
            elems.extend_from_slice(v);
            hashes.extend_from_slice(h);
        }
        let mut set_sizes = vec![0u32; n_sets];
        pg_parallel::parallel_fill_with(&mut set_sizes, |s| set(s).len() as u32);
        let lens: Vec<u32> = offsets.windows(2).map(|w| w[1] - w[0]).collect();
        let strided = total == cap_total;
        let k = *strata.ks.iter().max().unwrap() as usize;
        BottomKCollectionIn {
            elems: Cow::Owned(elems),
            hashes: Cow::Owned(hashes),
            offsets: Cow::Owned(offsets),
            lens: Cow::Owned(lens),
            set_sizes: Cow::Owned(set_sizes),
            k,
            family,
            strided,
            strata: Some(strata),
        }
    }

    /// Reconstructs a collection from already-materialized flat arrays
    /// (the snapshot load path). Callers must pass arrays satisfying the
    /// layout invariants of whichever form `strided` names: monotone
    /// `offsets` with `offsets[0] == 0` and `offsets[n] == elems.len()`,
    /// `lens[i]` live entries per region in ascending packed
    /// `(hash, element)` order, and for the strided form
    /// `offsets[i] == i·k`. The snapshot loader validates all of this
    /// (plus hash integrity) before calling; the debug assertions here
    /// only guard direct in-crate use.
    #[allow(clippy::too_many_arguments)]
    pub fn from_raw_parts(
        elems: impl Into<Cow<'a, [u32]>>,
        hashes: impl Into<Cow<'a, [u32]>>,
        offsets: impl Into<Cow<'a, [u32]>>,
        lens: impl Into<Cow<'a, [u32]>>,
        set_sizes: impl Into<Cow<'a, [u32]>>,
        k: usize,
        seed: u64,
        strided: bool,
    ) -> Self {
        let (elems, hashes) = (elems.into(), hashes.into());
        let (offsets, lens, set_sizes) = (offsets.into(), lens.into(), set_sizes.into());
        assert!(k > 0, "bottom-k needs k ≥ 1");
        assert!(!offsets.is_empty(), "offsets must hold n + 1 entries");
        let n = offsets.len() - 1;
        assert_eq!(lens.len(), n);
        assert_eq!(set_sizes.len(), n);
        assert_eq!(elems.len(), hashes.len());
        debug_assert_eq!(offsets[0], 0);
        debug_assert_eq!(*offsets.last().expect("non-empty") as usize, elems.len());
        BottomKCollectionIn {
            elems,
            hashes,
            offsets,
            lens,
            set_sizes,
            k,
            family: HashFamily::new(1, seed),
            strided,
            strata: None,
        }
    }

    /// Stratified sibling of [`BottomKCollectionIn::from_raw_parts`]: the
    /// per-set cap is `stratum_ks[assign[i]]`; for the strided form the
    /// offsets must be the cumulative per-set caps. The snapshot loader
    /// validates all of this before calling.
    #[allow(clippy::too_many_arguments)]
    pub fn from_raw_parts_stratified(
        elems: impl Into<Cow<'a, [u32]>>,
        hashes: impl Into<Cow<'a, [u32]>>,
        offsets: impl Into<Cow<'a, [u32]>>,
        lens: impl Into<Cow<'a, [u32]>>,
        set_sizes: impl Into<Cow<'a, [u32]>>,
        stratum_ks: Vec<u32>,
        assign: impl Into<Cow<'a, [u8]>>,
        seed: u64,
        strided: bool,
    ) -> Self {
        let assign = assign.into();
        if stratum_ks.len() == 1 {
            return Self::from_raw_parts(
                elems,
                hashes,
                offsets,
                lens,
                set_sizes,
                stratum_ks[0] as usize,
                seed,
                strided,
            );
        }
        let mut out = Self::from_raw_parts(
            elems,
            hashes,
            offsets,
            lens,
            set_sizes,
            *stratum_ks.iter().max().expect("non-empty strata") as usize,
            seed,
            strided,
        );
        let strata = BkStrata::new(assign, stratum_ks);
        assert_eq!(strata.assign.len(), out.len());
        out.strata = Some(strata);
        out
    }

    /// The whole flat element array — the byte-stable payload snapshots
    /// persist (paired with [`Self::raw_hashes`]).
    #[inline]
    pub fn raw_elems(&self) -> &[u32] {
        &self.elems
    }

    /// The whole flat hash array, same order as [`Self::raw_elems`].
    #[inline]
    pub fn raw_hashes(&self) -> &[u32] {
        &self.hashes
    }

    /// The per-set region offsets (`n + 1` entries).
    #[inline]
    pub fn raw_offsets(&self) -> &[u32] {
        &self.offsets
    }

    /// The per-set live sample lengths.
    #[inline]
    pub fn raw_lens(&self) -> &[u32] {
        &self.lens
    }

    /// The per-set exact input sizes.
    #[inline]
    pub fn raw_set_sizes(&self) -> &[u32] {
        &self.set_sizes
    }

    /// True when the collection is in the strided capacity-`k` streaming
    /// layout (see the type docs).
    #[inline]
    pub fn is_strided(&self) -> bool {
        self.strided
    }

    /// Assembles one collection holding the concatenation of `parts`'
    /// samples, in order — the serving layer's copy-on-publish path. All
    /// parts must share `(k, seed)`; they may be in either layout. The
    /// result is always strided (offsets are the trivial `i·k` sequence),
    /// with unused capacity slots zeroed so gathers are deterministic.
    pub fn gather(parts: &[&BottomKCollectionIn<'_>]) -> BottomKCollection {
        let first = parts.first().expect("gather needs at least one part");
        let mut out = BottomKCollectionIn {
            elems: Cow::Owned(Vec::new()),
            hashes: Cow::Owned(Vec::new()),
            offsets: Cow::Owned(Vec::new()),
            lens: Cow::Owned(Vec::new()),
            set_sizes: Cow::Owned(Vec::new()),
            k: first.k,
            family: first.family.clone(),
            strided: true,
            strata: None,
        };
        out.gather_into(parts);
        out
    }

    /// In-place form of [`BottomKCollection::gather`], reusing `self`'s
    /// allocations (the double-buffer path).
    pub fn gather_into(&mut self, parts: &[&BottomKCollectionIn<'_>]) {
        let first = parts.first().expect("gather needs at least one part");
        if let Some(fs) = &first.strata {
            // Stratified: regions get per-set capacity; offsets are the
            // cumulative caps.
            let ks = fs.ks.clone();
            let mut assign: Vec<u8> = Vec::new();
            for p in parts {
                let ps = p
                    .strata
                    .as_ref()
                    .expect("gather: mixed uniform/stratified parts");
                assert_eq!(ps.ks, ks, "gather: mismatched stratum caps");
                assign.extend_from_slice(&ps.assign);
            }
            let cap_total: usize = assign.iter().map(|&a| ks[a as usize] as usize).sum();
            assert!(
                cap_total <= u32::MAX as usize,
                "gathered sketch storage exceeds u32 offsets"
            );
            let elems = cow_clear(&mut self.elems);
            elems.resize(cap_total, 0);
            let hashes = cow_clear(&mut self.hashes);
            hashes.resize(cap_total, 0);
            let offsets = cow_clear(&mut self.offsets);
            offsets.push(0);
            let mut off = 0u32;
            for &a in &assign {
                off += ks[a as usize];
                offsets.push(off);
            }
            let lens = cow_clear(&mut self.lens);
            let set_sizes = cow_clear(&mut self.set_sizes);
            let mut out_set = 0usize;
            for p in parts {
                for i in 0..p.lens.len() {
                    let src = p.offsets[i] as usize;
                    let len = p.lens[i] as usize;
                    let dst = offsets[out_set] as usize;
                    elems[dst..dst + len].copy_from_slice(&p.elems[src..src + len]);
                    hashes[dst..dst + len].copy_from_slice(&p.hashes[src..src + len]);
                    out_set += 1;
                }
                lens.extend_from_slice(&p.lens);
                set_sizes.extend_from_slice(&p.set_sizes);
            }
            self.k = first.k;
            self.family = first.family.clone();
            self.strided = true;
            self.strata = Some(BkStrata::new(Cow::Owned(assign), ks));
            return;
        }
        self.strata = None;
        let k = self.k;
        let n: usize = parts.iter().map(|p| p.lens.len()).sum();
        assert!(
            n * k <= u32::MAX as usize,
            "gathered sketch storage exceeds u32 offsets"
        );
        let elems = cow_clear(&mut self.elems);
        elems.resize(n * k, 0);
        let hashes = cow_clear(&mut self.hashes);
        hashes.resize(n * k, 0);
        let offsets = cow_clear(&mut self.offsets);
        offsets.extend((0..=n).map(|i| (i * k) as u32));
        let lens = cow_clear(&mut self.lens);
        let set_sizes = cow_clear(&mut self.set_sizes);
        let mut out_set = 0usize;
        for p in parts {
            assert!(p.strata.is_none(), "gather: mixed uniform/stratified parts");
            assert_eq!(p.k, k, "gather: mismatched sample sizes");
            for i in 0..p.lens.len() {
                let src = p.offsets[i] as usize;
                let len = p.lens[i] as usize;
                let dst = out_set * k;
                elems[dst..dst + len].copy_from_slice(&p.elems[src..src + len]);
                hashes[dst..dst + len].copy_from_slice(&p.hashes[src..src + len]);
                out_set += 1;
            }
            lens.extend_from_slice(&p.lens);
            set_sizes.extend_from_slice(&p.set_sizes);
        }
        self.strided = true;
    }

    /// Detaches the collection from any borrowed snapshot buffer, cloning
    /// in-place-served arrays. No-op for owned data.
    pub fn into_owned(self) -> BottomKCollection {
        BottomKCollectionIn {
            elems: Cow::Owned(self.elems.into_owned()),
            hashes: Cow::Owned(self.hashes.into_owned()),
            offsets: Cow::Owned(self.offsets.into_owned()),
            lens: Cow::Owned(self.lens.into_owned()),
            set_sizes: Cow::Owned(self.set_sizes.into_owned()),
            k: self.k,
            family: self.family,
            strided: self.strided,
            strata: self.strata.map(BkStrata::into_owned),
        }
    }

    /// Converts the tight-packed arrays to the strided capacity-`k`
    /// layout (see the type docs). Idempotent; called once, lazily, by
    /// the first insert.
    fn ensure_streaming_layout(&mut self) {
        if self.strided {
            return;
        }
        let n = self.len();
        let cap_total: usize = (0..n).map(|i| self.cap_of(i)).sum();
        assert!(
            cap_total <= u32::MAX as usize,
            "streaming sketch storage exceeds u32 offsets"
        );
        let mut elems = vec![0u32; cap_total];
        let mut hashes = vec![0u32; cap_total];
        let mut offsets = Vec::with_capacity(n + 1);
        let mut dst = 0usize;
        for i in 0..n {
            offsets.push(dst as u32);
            let len = self.lens[i] as usize;
            let src = self.offsets[i] as usize;
            elems[dst..dst + len].copy_from_slice(&self.elems[src..src + len]);
            hashes[dst..dst + len].copy_from_slice(&self.hashes[src..src + len]);
            dst += self.cap_of(i);
        }
        offsets.push(dst as u32);
        self.elems = Cow::Owned(elems);
        self.hashes = Cow::Owned(hashes);
        self.offsets = Cow::Owned(offsets);
        self.strided = true;
    }

    /// Inserts one element into sample `i` in place — the allocation-free
    /// single-edge path: one hash, a linear scan for the insertion point,
    /// and one in-region memmove (dropping the largest key at capacity).
    /// Equivalent to [`BottomKCollection::insert_batch`] with a
    /// one-element batch.
    pub fn insert(&mut self, i: usize, x: u32) {
        self.set_sizes.to_mut()[i] += 1;
        self.ensure_streaming_layout();
        let k = self.cap_of(i);
        let start = self.offsets[i] as usize;
        let len = self.lens[i] as usize;
        let h = self.family.hash32(0, x as u64);
        let key = (h as u64) << 32 | x as u64;
        let hashes = self.hashes.to_mut();
        let elems = self.elems.to_mut();
        let pos = (0..len)
            .find(|&t| ((hashes[start + t] as u64) << 32 | elems[start + t] as u64) >= key)
            .unwrap_or(len);
        if pos < len && hashes[start + pos] == h && elems[start + pos] == x {
            return; // duplicate insert: collapsed, like the offline dedup
        }
        if len == k {
            if pos == k {
                return; // not among the k smallest
            }
            hashes.copy_within(start + pos..start + k - 1, start + pos + 1);
            elems.copy_within(start + pos..start + k - 1, start + pos + 1);
        } else {
            hashes.copy_within(start + pos..start + len, start + pos + 1);
            elems.copy_within(start + pos..start + len, start + pos + 1);
            self.lens.to_mut()[i] += 1;
        }
        hashes[start + pos] = h;
        elems[start + pos] = x;
    }

    /// Batched per-set insert: absorbs all of `xs` into sample `i`.
    ///
    /// The sample region is loaded once as a bounded max-heap of packed
    /// `(hash, element)` keys (a descending-sorted array is already a
    /// valid max-heap), each element costs one hash plus an `O(log k)`
    /// heap step — push while below capacity, replace-root when the key
    /// beats the current maximum — and the region is re-sorted once at
    /// the end of the batch, restoring the ascending sorted-slice views
    /// the merge-walk estimators read. The k smallest keys of a stream
    /// are associative, so the result is exactly the sample a
    /// from-scratch build over the extended set produces (callers must
    /// not re-insert an element already in the set; a duplicate is
    /// collapsed like the offline build's dedup, but only if it never
    /// forced an eviction).
    pub fn insert_batch(&mut self, i: usize, xs: &[u32]) {
        if let [x] = xs {
            // One element: the allocation-free sorted-insert path.
            self.insert(i, *x);
            return;
        }
        self.set_sizes.to_mut()[i] += xs.len() as u32;
        if xs.is_empty() {
            return;
        }
        self.ensure_streaming_layout();
        let k = self.cap_of(i);
        let start = self.offsets[i] as usize;
        let len = self.lens[i] as usize;
        let hashes = self.hashes.to_mut();
        let elems = self.elems.to_mut();
        let mut heap: Vec<u64> = (start..start + len)
            .map(|t| (hashes[t] as u64) << 32 | elems[t] as u64)
            .collect();
        heap.reverse();
        for &x in xs {
            let key = (self.family.hash32(0, x as u64) as u64) << 32 | x as u64;
            if heap.len() < k {
                heap.push(key);
                let last = heap.len() - 1;
                sift_up(&mut heap, last);
            } else if key < heap[0] {
                heap[0] = key;
                sift_down(&mut heap, 0);
            }
        }
        heap.sort_unstable();
        heap.dedup();
        for (t, &key) in heap.iter().enumerate() {
            hashes[start + t] = (key >> 32) as u32;
            elems[start + t] = key as u32;
        }
        self.lens.to_mut()[i] = heap.len() as u32;
    }

    /// Number of sketches.
    #[inline]
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// True when the collection holds no sketches.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Configured `k` — the **widest** stratum's cap when stratified
    /// (per-set caps come from [`BottomKCollectionIn::cap_of`]).
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Sample cap of set `i`.
    #[inline]
    pub fn cap_of(&self, i: usize) -> usize {
        match &self.strata {
            Some(st) => st.ks[st.assign[i] as usize] as usize,
            None => self.k,
        }
    }

    /// Stratum index of set `i` (0 for uniform collections).
    #[inline]
    pub fn stratum_of(&self, i: usize) -> usize {
        self.strata.as_ref().map_or(0, |st| st.assign[i] as usize)
    }

    /// The stratified geometry, when present.
    #[inline]
    pub fn strata(&self) -> Option<&BkStrata<'a>> {
        self.strata.as_ref()
    }

    /// The sample of set `i`, in ascending hash order.
    #[inline]
    pub fn sample(&self, i: usize) -> &[u32] {
        &self.elems[self.offsets[i] as usize..][..self.lens[i] as usize]
    }

    /// The precomputed hashes of [`BottomKCollection::sample`], same order.
    #[inline]
    pub fn sample_hashes(&self, i: usize) -> &[u32] {
        &self.hashes[self.offsets[i] as usize..][..self.lens[i] as usize]
    }

    /// Exact input-set size recorded at build time.
    #[inline]
    pub fn set_size(&self, i: usize) -> usize {
        self.set_sizes[i] as usize
    }

    /// Union-restricted `|M¹_X ∩ M¹_Y|` between sets `i` and `j`
    /// (`O(min(k_i, k_j))`).
    #[inline]
    pub fn matches(&self, i: usize, j: usize) -> usize {
        union_matches(
            self.sample(i),
            self.sample_hashes(i),
            self.sample(j),
            self.sample_hashes(j),
            self.cap_of(i).min(self.cap_of(j)),
        )
        .0
    }

    /// `|X∩Y|̂_1H` between sets `i` and `j`; see
    /// [`BottomK::estimate_intersection`] for the lossless shortcut.
    #[inline]
    pub fn estimate_intersection(&self, i: usize, j: usize) -> f64 {
        self.estimate_intersection_with_row(
            self.sample(i),
            self.sample_hashes(i),
            self.set_size(i),
            self.cap_of(i),
            j,
        )
    }

    /// `|X∩Y|̂_1H` with the source sample, hashes, exact size, and sample
    /// cap already pinned (the row-batch fast path: hoist them once per
    /// row sweep instead of re-slicing the flat arrays per pair).
    /// Identical to [`BottomKCollection::estimate_intersection`] when the
    /// pinned parts belong to set `i`. Cross-stratum pairs walk
    /// `min(ka, k_j)` union draws — exactly both samples truncated to the
    /// narrower cap.
    pub fn estimate_intersection_with_row(
        &self,
        a: &[u32],
        ah: &[u32],
        ni: usize,
        ka: usize,
        j: usize,
    ) -> f64 {
        let b = self.sample(j);
        let bh = self.sample_hashes(j);
        let nj = self.set_size(j);
        if ni <= ka && nj <= self.cap_of(j) {
            // Lossless: full sets stored — exact uncapped merge.
            let cap = (a.len() + b.len()).max(1);
            return union_matches(a, ah, b, bh, cap).0 as f64;
        }
        let cap = ka.min(self.cap_of(j));
        let (matches, _) = union_matches(a, ah, b, bh, cap);
        estimators::jaccard_to_intersection(estimators::mh_jaccard(matches, cap), ni, nj)
    }

    /// `Ĵ_1H` between sets `i` and `j`.
    #[inline]
    pub fn estimate_jaccard(&self, i: usize, j: usize) -> f64 {
        self.estimate_jaccard_with_row(
            self.sample(i),
            self.sample_hashes(i),
            self.set_size(i),
            self.cap_of(i),
            j,
        )
    }

    /// Two-lane batched `|X∩Y|̂_1H` with the source sample pinned:
    /// estimates against **two** destination sets at once through the
    /// lockstep-interleaved merge walk ([`union_matches_x2`]); any lane
    /// touching the lossless shortcut falls back to the scalar path.
    /// Each lane is bit-identical to
    /// [`BottomKCollection::estimate_intersection`].
    pub fn estimate_intersection_with_row_x2(
        &self,
        a: &[u32],
        ah: &[u32],
        ni: usize,
        ka: usize,
        j0: usize,
        j1: usize,
    ) -> (f64, f64) {
        let (nj0, nj1) = (self.set_size(j0), self.set_size(j1));
        let lossless0 = ni <= ka && nj0 <= self.cap_of(j0);
        let lossless1 = ni <= ka && nj1 <= self.cap_of(j1);
        if lossless0 || lossless1 {
            return (
                self.estimate_intersection_with_row(a, ah, ni, ka, j0),
                self.estimate_intersection_with_row(a, ah, ni, ka, j1),
            );
        }
        let cap0 = ka.min(self.cap_of(j0));
        let cap1 = ka.min(self.cap_of(j1));
        let ((m0, _), (m1, _)) = union_matches_x2(
            a,
            ah,
            self.sample(j0),
            self.sample_hashes(j0),
            self.sample(j1),
            self.sample_hashes(j1),
            cap0,
            cap1,
        );
        (
            estimators::jaccard_to_intersection(estimators::mh_jaccard(m0, cap0), ni, nj0),
            estimators::jaccard_to_intersection(estimators::mh_jaccard(m1, cap1), ni, nj1),
        )
    }

    /// `Ĵ_1H` with the source sample pinned — the row-sweep twin of
    /// [`BottomKCollection::estimate_jaccard`].
    pub fn estimate_jaccard_with_row(
        &self,
        a: &[u32],
        ah: &[u32],
        ni: usize,
        ka: usize,
        j: usize,
    ) -> f64 {
        let b = self.sample(j);
        let bh = self.sample_hashes(j);
        let nj = self.set_size(j);
        if ni <= ka && nj <= self.cap_of(j) {
            let cap = a.len() + b.len();
            let (matches, _) = union_matches(a, ah, b, bh, cap.max(1));
            let union = cap - matches;
            return if union == 0 {
                0.0
            } else {
                matches as f64 / union as f64
            };
        }
        let (matches, seen) = union_matches(a, ah, b, bh, ka.min(self.cap_of(j)));
        if seen == 0 {
            return 0.0;
        }
        estimators::mh_jaccard(matches, seen)
    }

    /// Bytes of sketch storage (elements + hashes + offsets + lengths +
    /// sizes). Table I charges `W·k` bits per set with `W = 64`, i.e. 8
    /// bytes per slot — exactly one element + one stored hash; in the
    /// strided streaming layout every set holds its full `k` slots, which
    /// is the same `W·k` the budget planned for.
    pub fn memory_bytes(&self) -> usize {
        self.elems.len() * 8
            + self.offsets.len() * 4
            + self.lens.len() * 4
            + self.set_sizes.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_sets_are_stored_exactly() {
        let x = [5u32, 1, 9];
        let s = BottomK::from_set(&x, 8, 3);
        assert!(s.is_exact());
        let mut sorted = s.elements().to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![1, 5, 9]);
        assert_eq!(s.set_size(), 3);
    }

    #[test]
    fn large_sets_keep_k_elements() {
        let x: Vec<u32> = (0..1000).collect();
        let s = BottomK::from_set(&x, 32, 3);
        assert_eq!(s.elements().len(), 32);
        assert!(!s.is_exact());
    }

    #[test]
    fn sample_is_hash_minimal_and_hash_ordered() {
        let x: Vec<u32> = (0..500).collect();
        let k = 16;
        let s = BottomK::from_set(&x, k, 9);
        let fam = HashFamily::new(1, 9);
        let mut hashes: Vec<(u32, u32)> = x.iter().map(|&e| (fam.hash32(0, e as u64), e)).collect();
        hashes.sort_unstable();
        let expect: Vec<u32> = hashes[..k].iter().map(|&(_, e)| e).collect();
        assert_eq!(s.elements(), &expect[..]);
    }

    #[test]
    fn exact_intersection_for_lossless_sketches() {
        let x = [1u32, 2, 3, 4];
        let y = [3u32, 4, 5];
        let a = BottomK::from_set(&x, 16, 1);
        let b = BottomK::from_set(&y, 16, 1);
        assert_eq!(a.estimate_intersection(&b), 2.0);
        // Exact Jaccard too: 2 / 5.
        assert!((a.estimate_jaccard(&b) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn jaccard_estimate_accuracy() {
        let x: Vec<u32> = (0..1000).collect();
        let y: Vec<u32> = (500..1500).collect(); // J = 500/1500 = 1/3
        let a = BottomK::from_set(&x, 256, 5);
        let b = BottomK::from_set(&y, 256, 5);
        let j = a.estimate_jaccard(&b);
        assert!((j - 1.0 / 3.0).abs() < 0.08, "J={j}");
        let inter = a.estimate_intersection(&b);
        assert!((inter - 500.0).abs() < 150.0, "inter={inter}");
    }

    #[test]
    fn identical_large_sets() {
        let x: Vec<u32> = (0..1000).map(|i| i * 3).collect();
        let a = BottomK::from_set(&x, 64, 2);
        let b = BottomK::from_set(&x, 64, 2);
        assert_eq!(a.matches(&b), 64);
        assert_eq!(a.estimate_jaccard(&b), 1.0);
    }

    #[test]
    fn disjoint_sets() {
        let x: Vec<u32> = (0..1000).collect();
        let y: Vec<u32> = (10_000..11_000).collect();
        let a = BottomK::from_set(&x, 128, 2);
        let b = BottomK::from_set(&y, 128, 2);
        assert_eq!(a.matches(&b), 0);
        assert_eq!(a.estimate_intersection(&b), 0.0);
    }

    #[test]
    fn empty_set() {
        let e = BottomK::from_set(&[], 8, 1);
        let x = BottomK::from_set(&[1, 2], 8, 1);
        assert_eq!(e.matches(&x), 0);
        assert_eq!(e.estimate_intersection(&x), 0.0);
        assert_eq!(e.estimate_jaccard(&e), 0.0);
    }

    #[test]
    fn duplicate_inputs_collapse() {
        let a = BottomK::from_set(&[7, 7, 7, 2, 2], 8, 1);
        let b = BottomK::from_set(&[2, 7], 8, 1);
        assert_eq!(a.elements(), b.elements());
        assert_eq!(a.matches(&b), 2);
    }

    #[test]
    fn collection_matches_standalone() {
        let sets: Vec<Vec<u32>> = (0..40)
            .map(|s| (0..10 + s * 5).map(|i| (i * 3 + s) as u32).collect())
            .collect();
        let col = BottomKCollection::build(sets.len(), 12, 7, |i| &sets[i][..]);
        for (i, set) in sets.iter().enumerate() {
            let s = BottomK::from_set(set, 12, 7);
            assert_eq!(col.sample(i), s.elements(), "set {i}");
            assert_eq!(col.set_size(i), set.len());
        }
        let a = BottomK::from_set(&sets[5], 12, 7);
        let b = BottomK::from_set(&sets[20], 12, 7);
        assert_eq!(col.matches(5, 20), a.matches(&b));
        assert!((col.estimate_intersection(5, 20) - a.estimate_intersection(&b)).abs() < 1e-12);
    }

    #[test]
    fn two_lane_walk_matches_scalar_across_regimes() {
        // Mix of lossless (≤ k) and sampled (> k) sets so both the
        // interleaved fast path and the scalar fallback are exercised.
        let sets: Vec<Vec<u32>> = (0..14)
            .map(|s| (0..3 + s * 11).map(|i| (i * 5 + s) as u32).collect())
            .collect();
        let col = BottomKCollection::build(sets.len(), 12, 3, |i| &sets[i][..]);
        for i in 0..sets.len() {
            let (a, ah, ni) = (col.sample(i), col.sample_hashes(i), col.set_size(i));
            for j in 0..sets.len() - 1 {
                let (e0, e1) =
                    col.estimate_intersection_with_row_x2(a, ah, ni, col.cap_of(i), j, j + 1);
                assert_eq!(e0, col.estimate_intersection(i, j), "i={i} j={j}");
                assert_eq!(e1, col.estimate_intersection(i, j + 1), "i={i} j={j}");
            }
        }
    }

    #[test]
    fn pinned_row_paths_match_indexed_paths() {
        let sets: Vec<Vec<u32>> = (0..25)
            .map(|s| (0..5 + s * 9).map(|i| (i * 3 + s) as u32).collect())
            .collect();
        let col = BottomKCollection::build(sets.len(), 16, 7, |i| &sets[i][..]);
        for i in 0..sets.len() {
            let (a, ah, ni) = (col.sample(i), col.sample_hashes(i), col.set_size(i));
            for j in 0..sets.len() {
                assert_eq!(
                    col.estimate_intersection_with_row(a, ah, ni, col.cap_of(i), j),
                    col.estimate_intersection(i, j),
                    "({i},{j})"
                );
                assert_eq!(
                    col.estimate_jaccard_with_row(a, ah, ni, col.cap_of(i), j),
                    col.estimate_jaccard(i, j),
                    "({i},{j})"
                );
            }
        }
    }

    #[test]
    fn incremental_insert_matches_rebuild() {
        // Samples after streaming a suffix (lossless sets growing past k,
        // already-sampled sets, empty prefixes) must equal a from-scratch
        // build over the extended sets — sample, hashes, and set size.
        let full: Vec<Vec<u32>> = (0..12)
            .map(|s| (0..2 + s * 7).map(|i| (i * 13 + s) as u32).collect())
            .collect();
        let k = 10;
        let want = BottomKCollection::build(full.len(), k, 23, |i| &full[i][..]);
        let mut got =
            BottomKCollection::build(full.len(), k, 23, |i| &full[i][..full[i].len() / 3]);
        for (i, set) in full.iter().enumerate() {
            got.insert_batch(i, &set[set.len() / 3..]);
        }
        for i in 0..full.len() {
            assert_eq!(got.sample(i), want.sample(i), "set {i}");
            assert_eq!(got.sample_hashes(i), want.sample_hashes(i), "set {i}");
            assert_eq!(got.set_size(i), want.set_size(i), "set {i}");
            for j in 0..full.len() {
                assert_eq!(
                    got.estimate_intersection(i, j),
                    want.estimate_intersection(i, j),
                    "({i},{j})"
                );
            }
        }
        // The strided layout charges exactly the planned k slots per set.
        assert_eq!(got.memory_bytes(), full.len() * (k * 8 + 12) + 4);
        // Single-element path agrees too.
        let mut one = BottomKCollection::build(1, 4, 1, |_| &[][..]);
        for x in [9u32, 2, 5, 7, 1, 8] {
            one.insert(0, x);
        }
        let rebuilt = BottomKCollection::build(1, 4, 1, |_| &[9u32, 2, 5, 7, 1, 8][..]);
        assert_eq!(one.sample(0), rebuilt.sample(0));
        assert_eq!(one.set_size(0), rebuilt.set_size(0));
    }

    #[test]
    fn one_stratum_build_is_bit_identical_to_uniform() {
        let sets: Vec<Vec<u32>> = (0..10)
            .map(|s| (0..5 + s * 9).map(|i| (i * 7 + s) as u32).collect())
            .collect();
        let uniform = BottomKCollection::build(sets.len(), 12, 7, |i| &sets[i][..]);
        let strat =
            BottomKCollection::build_stratified(
                vec![12],
                vec![0u8; sets.len()],
                7,
                |i| &sets[i][..],
            );
        assert!(
            strat.strata().is_none(),
            "one stratum must lower to uniform"
        );
        assert_eq!(strat.raw_elems(), uniform.raw_elems());
        assert_eq!(strat.raw_hashes(), uniform.raw_hashes());
        assert_eq!(strat.raw_offsets(), uniform.raw_offsets());
        assert_eq!(strat.raw_lens(), uniform.raw_lens());
    }

    #[test]
    fn cross_stratum_pairs_match_both_built_at_the_narrow_cap() {
        // Truncation exactness: a (k=24, k=6) pair must estimate exactly
        // like both sets sketched at k=6 (and likewise for every pair's
        // min cap). Sets span lossless (≤ cap) and sampled regimes.
        let sets: Vec<Vec<u32>> = (0..12)
            .map(|s| (0..3 + s * 11).map(|i| (i * 5 + s) as u32).collect())
            .collect();
        let ks = vec![24u32, 12, 6];
        let assign: Vec<u8> = (0..sets.len()).map(|i| (i % 3) as u8).collect();
        let strat =
            BottomKCollection::build_stratified(ks.clone(), assign.clone(), 3, |i| &sets[i][..]);
        for i in 0..sets.len() {
            assert_eq!(strat.cap_of(i), ks[assign[i] as usize] as usize);
            for j in 0..sets.len() {
                let kmin = strat.cap_of(i).min(strat.cap_of(j));
                let narrow = BottomKCollection::build(sets.len(), kmin, 3, |s| &sets[s][..]);
                // Lossless shortcut regimes differ between the two
                // collections only when a set is exact at its own wider
                // cap but sampled at kmin; restrict the exactness claim
                // to matching regimes.
                let same_regime = (sets[i].len() <= strat.cap_of(i)) == (sets[i].len() <= kmin)
                    && (sets[j].len() <= strat.cap_of(j)) == (sets[j].len() <= kmin);
                if same_regime {
                    assert_eq!(
                        strat.estimate_intersection(i, j),
                        narrow.estimate_intersection(i, j),
                        "i={i} j={j}"
                    );
                    assert_eq!(strat.matches(i, j), narrow.matches(i, j), "i={i} j={j}");
                }
                // Pinned-row and two-lane paths always agree with the
                // indexed path on the stratified collection itself.
                let (a, ah, ni, ka) = (
                    strat.sample(i),
                    strat.sample_hashes(i),
                    strat.set_size(i),
                    strat.cap_of(i),
                );
                assert_eq!(
                    strat.estimate_intersection_with_row(a, ah, ni, ka, j),
                    strat.estimate_intersection(i, j),
                    "({i},{j})"
                );
                let j1 = (j + 1) % sets.len();
                let (e0, e1) = strat.estimate_intersection_with_row_x2(a, ah, ni, ka, j, j1);
                assert_eq!(e0, strat.estimate_intersection(i, j), "x2 ({i},{j})");
                assert_eq!(e1, strat.estimate_intersection(i, j1), "x2 ({i},{j1})");
            }
        }
    }

    #[test]
    fn stratified_insert_matches_stratified_rebuild() {
        let full: Vec<Vec<u32>> = (0..10)
            .map(|s| (0..2 + s * 9).map(|i| (i * 13 + s) as u32).collect())
            .collect();
        let ks = vec![16u32, 5];
        let assign: Vec<u8> = (0..full.len()).map(|i| (i % 2) as u8).collect();
        let want =
            BottomKCollection::build_stratified(ks.clone(), assign.clone(), 23, |i| &full[i][..]);
        let mut got =
            BottomKCollection::build_stratified(ks, assign, 23, |i| &full[i][..full[i].len() / 3]);
        for (i, set) in full.iter().enumerate() {
            if i % 2 == 0 {
                got.insert_batch(i, &set[set.len() / 3..]);
            } else {
                for &x in &set[set.len() / 3..] {
                    got.insert(i, x);
                }
            }
        }
        for i in 0..full.len() {
            assert_eq!(got.sample(i), want.sample(i), "set {i}");
            assert_eq!(got.sample_hashes(i), want.sample_hashes(i), "set {i}");
            assert_eq!(got.set_size(i), want.set_size(i), "set {i}");
        }
    }

    #[test]
    fn stratified_gather_concatenates_parts() {
        let sets: Vec<Vec<u32>> = (0..8)
            .map(|s| (0..4 + s * 7).map(|i| (i * 3 + s) as u32).collect())
            .collect();
        let ks = vec![10u32, 4];
        let assign: Vec<u8> = (0..8).map(|i| (i % 2) as u8).collect();
        let whole =
            BottomKCollection::build_stratified(ks.clone(), assign.clone(), 5, |i| &sets[i][..]);
        let left = BottomKCollection::build_stratified(ks.clone(), assign[..4].to_vec(), 5, |i| {
            &sets[i][..]
        });
        let right =
            BottomKCollection::build_stratified(ks, assign[4..].to_vec(), 5, |i| &sets[i + 4][..]);
        let gathered = BottomKCollection::gather(&[&left, &right]);
        assert!(gathered.is_strided());
        assert_eq!(
            gathered.strata().unwrap().assign(),
            whole.strata().unwrap().assign()
        );
        for i in 0..8 {
            assert_eq!(gathered.sample(i), whole.sample(i), "set {i}");
            assert_eq!(gathered.sample_hashes(i), whole.sample_hashes(i), "set {i}");
            assert_eq!(gathered.set_size(i), whole.set_size(i), "set {i}");
            assert_eq!(gathered.cap_of(i), whole.cap_of(i), "set {i}");
        }
    }

    #[test]
    fn parallel_build_deterministic() {
        let sets: Vec<Vec<u32>> = (0..150)
            .map(|s| (0..80).map(|i| (i * 11 + s * 2) as u32).collect())
            .collect();
        let a =
            pg_parallel::with_threads(1, || BottomKCollection::build(150, 10, 3, |i| &sets[i][..]));
        let b =
            pg_parallel::with_threads(8, || BottomKCollection::build(150, 10, 3, |i| &sets[i][..]));
        assert_eq!(a.elems, b.elems);
        assert_eq!(a.offsets, b.offsets);
    }
}
