//! # pg-sketch — probabilistic set representations and their estimators
//!
//! The core data structures of the ProbGraph paper (§II-D, §IV, §IX):
//!
//! * [`BitVec`] — the SIMD-friendly bit vector under every Bloom filter,
//!   with the fused AND+popcount kernel of Fig. 1 panel 3.
//! * [`BloomFilter`] / [`BloomCollection`] — Bloom filters with `b` seeded
//!   hash functions; the collection form stores all per-vertex filters in
//!   one flat word array (identical fixed size per set — the paper's load
//!   balancing argument).
//! * [`CountingBloomCollection`] — counting Bloom filters: packed 4-bit
//!   saturating counters behind a derived [`BloomCollection`] read view
//!   (counter > 0 ⇔ bit set), the first representation with a real
//!   deletion path.
//! * [`MinHashSignature`] / [`MinHashCollection`] — the k-hash MinHash
//!   variant: `k` independent hash functions, one minimum per function.
//! * [`BottomK`] / [`BottomKCollection`] — the 1-hash variant: a single
//!   hash function, the `k` elements with smallest hashes.
//! * [`KmvSketch`] — K-Minimum-Values (§IX), storing unit-interval hashes.
//! * [`HyperLogLog`] / [`HyperLogLogCollection`] — the §X extension beyond
//!   BF and MH, with a flat fixed-size collection form whose intersection
//!   estimator is one fused register-wise-max pass (no merged sketch).
//! * [`estimators`] — every `|X|` and `|X ∩ Y|` estimator of the paper as a
//!   pure function: Swamidass (Eq. 1), AND (Eq. 2), the limiting estimator
//!   (Eq. 4), OR (Eq. 29), k-hash (Eq. 5), 1-hash (§IV-D), KMV (Eq. 40/41),
//!   plus the pre-existing Papapetrou baseline the paper compares against.
//! * [`budget`] — the storage-budget parameter `s` (§V-A): converts a
//!   fraction of the CSR footprint into per-set sketch parameters.
//!
//! Sketches of *sets of `u32` vertex IDs* are the only case ProbGraph
//! needs, so all APIs take sorted `&[u32]` sets; everything generalizes to
//! arbitrary hashable items by pre-hashing to IDs.
//!
//! ## Fused-kernel design
//!
//! The per-edge estimator cost is the whole ballgame (Table IV): every hot
//! path here is **single-pass and zero-allocation**.
//!
//! * [`bitvec::and_or_ones_words`] computes `B_{X∩Y,1}`, `B_{X∪Y,1}`,
//!   `B_{X,1}`, `B_{Y,1}` in one four-lane-unrolled traversal.
//! * [`BloomCollection`] caches every filter's popcount at build time and
//!   memoizes the Swamidass curve, so the AND (Eq. 2), Limit (Eq. 4) and
//!   OR (Eq. 29) estimators each cost **one** fused AND+popcount pass and
//!   a table lookup — `B_{X∪Y,1}` falls out of inclusion–exclusion.
//! * Construction batches all `b` bucket computations per key through
//!   [`pg_hash::HashFamily::for_each_bucket`] (key-side Murmur mixing
//!   hoisted out of the per-function loop).
//!
//! The `kernel_equivalence` suite proves each fused path bit-identical to
//! its naive multi-pass counterpart.

pub mod bitvec;
pub mod bloom;
pub mod bottomk;
pub mod budget;
pub mod counting_bloom;
mod cowvec;
pub mod estimators;
mod heap;
pub mod hyperloglog;
pub mod kmv;
pub mod minhash;

pub use bitvec::{and_or_ones_words, BitVec, PairOnes};
pub use bloom::{
    fold_words_into, BfPairEstimates, BloomCollection, BloomCollectionIn, BloomFilter,
    BloomFoldCache, BloomStrata, MAX_BLOOM_HASHES,
};
pub use bottomk::{BkStrata, BottomK, BottomKCollection, BottomKCollectionIn};
pub use budget::{
    BudgetPlan, PlanError, SketchParams, StrataSpec, StratifiedParams, StratifiedPlan, MAX_STRATA,
};
pub use counting_bloom::{CountingBloomCollection, CountingBloomCollectionIn};
pub use hyperloglog::{
    fold_hll_registers_into, HllStrata, HyperLogLog, HyperLogLogCollection, HyperLogLogCollectionIn,
};
pub use kmv::{KmvCollection, KmvCollectionIn, KmvSketch, KmvSketchIn, KmvStrata};
pub use minhash::{MinHashCollection, MinHashCollectionIn, MinHashSignature, MinHashStrata};
