//! Host cache-topology probe and destination-tile sizing.
//!
//! The row-sweep hot path tiles destination sketches into cache-resident
//! blocks (see `pg-core`'s tiling planner). The tile byte budget is resolved,
//! in order:
//!
//! 1. the innermost active [`with_tile_bytes`] override on the calling thread,
//! 2. the process-global budget set by [`set_tile_bytes`],
//! 3. the `PG_TILE_BYTES` environment variable,
//! 4. half the probed L2 capacity (clamped to `[64 KiB, 4 MiB]`), so a
//!    destination tile and the streamed source-window batch can coexist in
//!    L2 without thrashing each other.
//!
//! The budget targets **L2**, not L1d: sketch windows are a few hundred
//! bytes, so an L1-sized tile holds only a few dozen destinations and each
//! source's in-tile segment shrinks to a handful of ids — too short for the
//! 4-lane kernels to amortize the pinned source row, which costs more than
//! the L1 residency saves. An L2-sized tile keeps segments tens of ids long
//! while still cutting the per-edge fill cost from last-level-cache/DRAM
//! latency to an L2 hit.
//!
//! Topology is probed once from Linux sysfs
//! (`/sys/devices/system/cpu/cpu0/cache/index*/`). When sysfs is absent
//! (non-Linux hosts, stripped containers) the fallback is a documented
//! conservative modern-x86/ARM shape: 32 KiB L1d, 1 MiB L2, 32 MiB L3,
//! 64-byte lines — every mainstream server core since ~2015 has at least
//! this much, so the derived tile never exceeds a real L1.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Per-core data-cache sizes and the line size, in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheTopology {
    /// L1 data cache capacity.
    pub l1d_bytes: usize,
    /// Unified L2 capacity (per core on most parts).
    pub l2_bytes: usize,
    /// Last-level cache capacity (often shared across cores).
    pub l3_bytes: usize,
    /// Coherency line size.
    pub line_bytes: usize,
}

/// Documented fallback when no probe source is available.
const FALLBACK: CacheTopology = CacheTopology {
    l1d_bytes: 32 * 1024,
    l2_bytes: 1024 * 1024,
    l3_bytes: 32 * 1024 * 1024,
    line_bytes: 64,
};

fn read_sysfs(path: &str) -> Option<String> {
    std::fs::read_to_string(path).ok()
}

/// Parses sysfs cache sizes: either plain bytes or a `K`/`M`-suffixed count.
fn parse_size(s: &str) -> Option<usize> {
    let t = s.trim();
    if let Some(k) = t.strip_suffix(['K', 'k']) {
        return k.parse::<usize>().ok().map(|v| v * 1024);
    }
    if let Some(m) = t.strip_suffix(['M', 'm']) {
        return m.parse::<usize>().ok().map(|v| v * 1024 * 1024);
    }
    t.parse::<usize>().ok()
}

fn probe_sysfs() -> Option<CacheTopology> {
    let base = "/sys/devices/system/cpu/cpu0/cache";
    let mut topo = CacheTopology {
        l1d_bytes: 0,
        l2_bytes: 0,
        l3_bytes: 0,
        line_bytes: 0,
    };
    let entries = std::fs::read_dir(base).ok()?;
    for entry in entries.flatten() {
        let p = entry.path();
        let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if !name.starts_with("index") {
            continue;
        }
        let dir = p.to_str()?;
        let level: usize = read_sysfs(&format!("{dir}/level"))?.trim().parse().ok()?;
        let kind = read_sysfs(&format!("{dir}/type")).unwrap_or_default();
        let kind = kind.trim();
        // Skip instruction caches; keep data + unified levels.
        if kind == "Instruction" {
            continue;
        }
        let size = read_sysfs(&format!("{dir}/size")).and_then(|s| parse_size(&s));
        if let Some(sz) = size {
            match level {
                1 => topo.l1d_bytes = sz,
                2 => topo.l2_bytes = sz,
                3 => topo.l3_bytes = sz,
                _ => {}
            }
        }
        if topo.line_bytes == 0 {
            if let Some(line) =
                read_sysfs(&format!("{dir}/coherency_line_size")).and_then(|s| parse_size(&s))
            {
                topo.line_bytes = line;
            }
        }
    }
    if topo.l1d_bytes == 0 {
        return None;
    }
    if topo.l2_bytes == 0 {
        topo.l2_bytes = FALLBACK.l2_bytes;
    }
    if topo.l3_bytes == 0 {
        topo.l3_bytes = topo.l2_bytes.max(FALLBACK.l2_bytes);
    }
    if topo.line_bytes == 0 {
        topo.line_bytes = FALLBACK.line_bytes;
    }
    Some(topo)
}

/// The host cache topology, probed once from sysfs with a documented
/// fallback (32 KiB / 1 MiB / 32 MiB, 64 B lines) when no probe works.
pub fn cache_topology() -> CacheTopology {
    static TOPOLOGY: OnceLock<CacheTopology> = OnceLock::new();
    *TOPOLOGY.get_or_init(|| probe_sysfs().unwrap_or(FALLBACK))
}

/// The coherency line size in bytes (probed, ≥ 16). Prefetch loops stride by
/// this instead of a hardcoded 64 so 128-byte-line hosts issue one prefetch
/// per actual line.
pub fn cache_line_bytes() -> usize {
    cache_topology().line_bytes.max(16)
}

/// Process-global tile budget; 0 means "not set, fall back to env/topology".
static GLOBAL_TILE_BYTES: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Innermost `with_tile_bytes` override on this thread; 0 = none.
    static LOCAL_TILE_OVERRIDE: Cell<usize> = const { Cell::new(0) };
}

fn env_tile_bytes() -> Option<usize> {
    static ENV: OnceLock<Option<usize>> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("PG_TILE_BYTES")
            .ok()
            .and_then(|v| parse_size(&v))
            .filter(|&n| n > 0)
    })
}

/// Derived default: half of L2 so the destination tile shares L2 with the
/// streamed source windows, clamped to a sane range (see the module doc for
/// why L1-sized tiles lose on sub-KiB sketch windows).
fn derived_tile_bytes() -> usize {
    (cache_topology().l2_bytes / 2).clamp(64 * 1024, 4 * 1024 * 1024)
}

/// Sets the process-global destination-tile byte budget for all subsequent
/// tiled sweeps not inside a [`with_tile_bytes`] scope. Passing 0 restores
/// the default resolution order.
pub fn set_tile_bytes(n: usize) {
    GLOBAL_TILE_BYTES.store(n, Ordering::Relaxed);
}

/// The destination-tile byte budget the *calling thread* would use for a
/// tiled sweep started right now. Always ≥ 1.
pub fn tile_bytes() -> usize {
    let local = LOCAL_TILE_OVERRIDE.with(|c| c.get());
    if local > 0 {
        return local;
    }
    let global = GLOBAL_TILE_BYTES.load(Ordering::Relaxed);
    if global > 0 {
        return global;
    }
    env_tile_bytes().unwrap_or_else(derived_tile_bytes).max(1)
}

/// Runs `f` with the calling thread's tiled sweeps using an `n`-byte tile
/// budget, restoring the previous setting afterwards (also on panic).
/// The tiled-equivalence tests use tiny budgets to force tiling on graphs
/// that would otherwise fit in cache.
pub fn with_tile_bytes<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            LOCAL_TILE_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let prev = LOCAL_TILE_OVERRIDE.with(|c| c.replace(n.max(1)));
    let _restore = Restore(prev);
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topology_is_sane() {
        let t = cache_topology();
        assert!(t.l1d_bytes >= 4 * 1024, "l1d {}", t.l1d_bytes);
        assert!(t.l2_bytes >= t.l1d_bytes);
        assert!(t.l3_bytes >= t.l2_bytes);
        assert!(t.line_bytes >= 16 && t.line_bytes <= 1024);
        assert!(t.line_bytes.is_power_of_two());
    }

    #[test]
    fn parse_size_handles_suffixes() {
        assert_eq!(parse_size("32K"), Some(32 * 1024));
        assert_eq!(parse_size("1M\n"), Some(1024 * 1024));
        assert_eq!(parse_size("65536"), Some(65536));
        assert_eq!(parse_size("bogus"), None);
    }

    #[test]
    fn tile_bytes_default_is_positive_and_l2_scaled() {
        // No override active in this test thread: the derived default must
        // leave room in L2 for the streamed source windows alongside the
        // tile (unless PG_TILE_BYTES or a global override is set).
        let t = with_tile_bytes_cleared(tile_bytes);
        assert!(t >= 1);
    }

    /// Helper: read the resolved budget without a local override.
    fn with_tile_bytes_cleared<R>(f: impl FnOnce() -> R) -> R {
        f()
    }

    #[test]
    fn with_tile_bytes_nests_and_restores() {
        let outer = tile_bytes();
        with_tile_bytes(4096, || {
            assert_eq!(tile_bytes(), 4096);
            with_tile_bytes(1024, || assert_eq!(tile_bytes(), 1024));
            assert_eq!(tile_bytes(), 4096);
        });
        assert_eq!(tile_bytes(), outer);
    }

    #[test]
    fn with_tile_bytes_clamps_zero_to_one() {
        with_tile_bytes(0, || assert_eq!(tile_bytes(), 1));
    }
}
