//! Parallel construction of owned collections.
//!
//! Building the ProbGraph representation means materializing one sketch per
//! vertex (Table V of the paper analyses exactly this construction). Each
//! slot is written exactly once by exactly one worker, so we can initialize
//! a `Vec` in place without locks.

use crate::par::parallel_for_grain;
use std::mem::MaybeUninit;

/// Raw pointer wrapper that lets disjoint-index writes cross the `Sync`
/// boundary of the parallel loop. Safety argument: `parallel_for_grain`
/// dispatches every index in `0..n` to exactly one worker, so no two threads
/// ever write the same slot, and the caller joins all workers before reading.
struct SendPtr<T>(*mut T);
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

/// Builds `Vec<T>` of length `n` where element `i` is `f(i)`, computing the
/// elements in parallel.
///
/// ```
/// let squares = pg_parallel::parallel_init(10, |i| i * i);
/// assert_eq!(squares[7], 49);
/// assert_eq!(squares.len(), 10);
/// ```
pub fn parallel_init<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let mut storage: Vec<MaybeUninit<T>> = Vec::with_capacity(n);
    // SAFETY: MaybeUninit<T> needs no initialization; len==capacity==n.
    unsafe { storage.set_len(n) };
    let ptr = SendPtr(storage.as_mut_ptr());
    let ptr = &ptr;
    parallel_for_grain(n, crate::auto_grain(n), |i| {
        // SAFETY: each index is written exactly once (see SendPtr docs), and
        // the pointee is a MaybeUninit slot inside a live allocation.
        unsafe { (*ptr.0.add(i)).write(f(i)) };
    });
    // If f panicked, the scope already propagated the panic and `storage`
    // leaked its initialized prefix (leak, not UB). Otherwise all n slots
    // are initialized and we can take ownership.
    let mut storage = std::mem::ManuallyDrop::new(storage);
    // SAFETY: all n elements initialized; identical layout & allocator.
    unsafe { Vec::from_raw_parts(storage.as_mut_ptr() as *mut T, n, storage.capacity()) }
}

/// [`parallel_init`] with worker-local scratch: element `i` is
/// `f(&mut scratch, i)` where each worker owns one scratch value for its
/// whole run (see [`crate::parallel_for_scratch`]). Use when computing an
/// element needs temporary buffers that would otherwise be reallocated
/// per element.
pub fn parallel_init_scratch<T, S, Mk, F>(n: usize, make_scratch: Mk, f: F) -> Vec<T>
where
    T: Send,
    Mk: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    let mut storage: Vec<MaybeUninit<T>> = Vec::with_capacity(n);
    // SAFETY: MaybeUninit<T> needs no initialization; len==capacity==n.
    unsafe { storage.set_len(n) };
    let ptr = SendPtr(storage.as_mut_ptr());
    let ptr = &ptr;
    crate::parallel_for_scratch(n, crate::auto_grain(n), make_scratch, |scratch, i| {
        // SAFETY: each index is written exactly once (see SendPtr docs).
        unsafe { (*ptr.0.add(i)).write(f(scratch, i)) };
    });
    let mut storage = std::mem::ManuallyDrop::new(storage);
    // SAFETY: all n elements initialized; identical layout & allocator.
    unsafe { Vec::from_raw_parts(storage.as_mut_ptr() as *mut T, n, storage.capacity()) }
}

/// Overwrites `out[i] = f(i)` for every element, in parallel.
pub fn parallel_fill_with<T, F>(out: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let n = out.len();
    let ptr = SendPtr(out.as_mut_ptr());
    let ptr = &ptr;
    parallel_for_grain(n, crate::auto_grain(n), |i| {
        // SAFETY: disjoint single writes into a live slice; old value dropped
        // by the assignment.
        unsafe { *ptr.0.add(i) = f(i) };
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::with_threads;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn init_produces_correct_elements() {
        for threads in [1, 4] {
            with_threads(threads, || {
                let v = parallel_init(10_000, |i| i as u64 * 3);
                assert_eq!(v.len(), 10_000);
                assert!(v.iter().enumerate().all(|(i, &x)| x == i as u64 * 3));
            });
        }
    }

    #[test]
    fn init_empty() {
        let v: Vec<u32> = parallel_init(0, |_| unreachable!());
        assert!(v.is_empty());
    }

    #[test]
    fn init_with_heap_elements_drops_cleanly() {
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct D(#[allow(dead_code)] Box<usize>);
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::Relaxed);
            }
        }
        {
            let v = with_threads(4, || parallel_init(1000, |i| D(Box::new(i))));
            assert_eq!(v.len(), 1000);
        }
        assert_eq!(DROPS.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn fill_overwrites_in_place() {
        let mut v = vec![0u32; 5000];
        with_threads(4, || parallel_fill_with(&mut v, |i| i as u32 + 1));
        assert!(v.iter().enumerate().all(|(i, &x)| x == i as u32 + 1));
    }

    #[test]
    fn init_scratch_matches_plain_init() {
        for threads in [1, 4] {
            let got = with_threads(threads, || {
                parallel_init_scratch(3000, Vec::<u64>::new, |scratch, i| {
                    scratch.clear();
                    scratch.extend((0..i as u64 % 7).map(|x| x * 2));
                    scratch.iter().sum::<u64>() + i as u64
                })
            });
            let want: Vec<u64> = (0..3000u64)
                .map(|i| (0..i % 7).map(|x| x * 2).sum::<u64>() + i)
                .collect();
            assert_eq!(got, want, "threads={threads}");
        }
    }

    #[test]
    fn init_strings() {
        let v = with_threads(4, || parallel_init(257, |i| format!("s{i}")));
        assert_eq!(v[256], "s256");
    }
}
