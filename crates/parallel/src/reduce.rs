//! Parallel reductions: thread-local accumulation + final combine.
//!
//! Every ProbGraph algorithm ends in a reduction — triangle counts are sums
//! of per-edge intersection cardinalities, clustering collects per-edge
//! decisions, etc. The pattern here is the classic tree-free OpenMP
//! `reduction(+:x)` implementation: each worker folds into a private
//! accumulator, and the per-worker results are combined at join time
//! (combine order is unspecified, so `f64` sums may differ across runs in
//! the last ulps; integer reductions are exact and deterministic).

use crate::config::current_threads;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Parallel map-reduce over `0..n`.
///
/// `map(acc, i)` folds iteration `i` into the worker-private accumulator,
/// `combine` merges two accumulators, and `identity()` creates a fresh one.
///
/// ```
/// let triangles = pg_parallel::map_reduce(
///     100,
///     || 0u64,
///     |acc, i| acc + (i as u64 % 3),
///     |a, b| a + b,
/// );
/// assert_eq!(triangles, (0..100).map(|i| i as u64 % 3).sum::<u64>());
/// ```
pub fn map_reduce<T, Id, M, C>(n: usize, identity: Id, map: M, combine: C) -> T
where
    T: Send,
    Id: Fn() -> T + Sync,
    M: Fn(T, usize) -> T + Sync,
    C: Fn(T, T) -> T + Sync,
{
    map_reduce_grain(n, crate::auto_grain(n), identity, map, combine)
}

/// [`map_reduce`] with an explicit scheduling grain. Thin wrapper over
/// [`map_reduce_scratch`] with unit scratch — one scheduling loop to
/// maintain.
pub fn map_reduce_grain<T, Id, M, C>(n: usize, grain: usize, identity: Id, map: M, combine: C) -> T
where
    T: Send,
    Id: Fn() -> T + Sync,
    M: Fn(T, usize) -> T + Sync,
    C: Fn(T, T) -> T + Sync,
{
    map_reduce_scratch(n, grain, identity, || (), |(), acc, i| map(acc, i), combine)
}

/// [`map_reduce_grain`] with worker-local scratch: `map(scratch, acc, i)`
/// folds iteration `i` into the worker-private accumulator while reusing
/// the worker's scratch value (created once per worker by `make_scratch`).
///
/// The accumulator/scratch split matters: accumulators are *combined* at
/// join time, scratch is *discarded* — putting a reusable buffer into the
/// accumulator (the old 4-clique trick) forces `combine` to arbitrate
/// which buffer to keep, whereas scratch needs no such ceremony.
pub fn map_reduce_scratch<T, S, Id, Mk, M, C>(
    n: usize,
    grain: usize,
    identity: Id,
    make_scratch: Mk,
    map: M,
    combine: C,
) -> T
where
    T: Send,
    Id: Fn() -> T + Sync,
    Mk: Fn() -> S + Sync,
    M: Fn(&mut S, T, usize) -> T + Sync,
    C: Fn(T, T) -> T + Sync,
{
    let grain = grain.max(1);
    let threads = current_threads();
    if threads <= 1 || n <= grain {
        let mut scratch = make_scratch();
        let mut acc = identity();
        for i in 0..n {
            acc = map(&mut scratch, acc, i);
        }
        return acc;
    }
    let threads = threads.min(n.div_ceil(grain));
    let cursor = AtomicUsize::new(0);
    let partials: Mutex<Vec<T>> = Mutex::new(Vec::with_capacity(threads));
    {
        let cursor = &cursor;
        let partials = &partials;
        let identity = &identity;
        let make_scratch = &make_scratch;
        let map = &map;
        std::thread::scope(|s| {
            let mut handles = Vec::with_capacity(threads - 1);
            let work = move || {
                let mut scratch = make_scratch();
                let mut acc = identity();
                loop {
                    let start = cursor.fetch_add(grain, Ordering::Relaxed);
                    if start >= n {
                        break;
                    }
                    let end = (start + grain).min(n);
                    for i in start..end {
                        acc = map(&mut scratch, acc, i);
                    }
                }
                partials.lock().unwrap_or_else(|e| e.into_inner()).push(acc);
            };
            for _ in 1..threads {
                handles.push(s.spawn(work));
            }
            work();
            for h in handles {
                if let Err(p) = h.join() {
                    std::panic::resume_unwind(p);
                }
            }
        });
    }
    let mut acc = identity();
    for p in partials.into_inner().unwrap_or_else(|e| e.into_inner()) {
        acc = combine(acc, p);
    }
    acc
}

/// Parallel sum of `f(i)` for `i in 0..n` as `u64`. Exact and deterministic.
#[inline]
pub fn sum_u64<F: Fn(usize) -> u64 + Sync>(n: usize, f: F) -> u64 {
    map_reduce(n, || 0u64, |acc, i| acc + f(i), |a, b| a + b)
}

/// Parallel sum of `f(i)` for `i in 0..n` as `f64`.
///
/// Combine order is unspecified, so results can differ across runs by
/// floating-point association; all ProbGraph estimators tolerate this (the
/// estimator error dominates by many orders of magnitude).
#[inline]
pub fn sum_f64<F: Fn(usize) -> f64 + Sync>(n: usize, f: F) -> f64 {
    map_reduce(n, || 0f64, |acc, i| acc + f(i), |a, b| a + b)
}

/// Parallel maximum of `f(i)`; returns `f64::NEG_INFINITY` for `n == 0`.
#[inline]
pub fn max_f64<F: Fn(usize) -> f64 + Sync>(n: usize, f: F) -> f64 {
    map_reduce(
        n,
        || f64::NEG_INFINITY,
        |acc, i| acc.max(f(i)),
        |a, b| a.max(b),
    )
}

/// Parallel minimum of `f(i)`; returns `f64::INFINITY` for `n == 0`.
#[inline]
pub fn min_f64<F: Fn(usize) -> f64 + Sync>(n: usize, f: F) -> f64 {
    map_reduce(n, || f64::INFINITY, |acc, i| acc.min(f(i)), |a, b| a.min(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::with_threads;

    #[test]
    fn sum_matches_sequential_for_all_thread_counts() {
        let n = 12_345;
        let expect: u64 = (0..n as u64).map(|i| i * i % 97).sum();
        for threads in [1, 2, 3, 8] {
            let got = with_threads(threads, || sum_u64(n, |i| (i as u64 * i as u64) % 97));
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn empty_reduction_yields_identity() {
        assert_eq!(sum_u64(0, |_| panic!("no calls")), 0);
        assert_eq!(max_f64(0, |_| panic!("no calls")), f64::NEG_INFINITY);
        assert_eq!(min_f64(0, |_| panic!("no calls")), f64::INFINITY);
    }

    #[test]
    fn float_sum_close_to_sequential() {
        let n = 100_000;
        let expect: f64 = (0..n).map(|i| 1.0 / (1.0 + i as f64)).sum();
        let got = with_threads(8, || sum_f64(n, |i| 1.0 / (1.0 + i as f64)));
        assert!((got - expect).abs() < 1e-9 * expect.abs());
    }

    #[test]
    fn max_and_min_find_extremes() {
        let vals: Vec<f64> = (0..1000).map(|i| ((i * 7919) % 1000) as f64).collect();
        let mx = with_threads(4, || max_f64(vals.len(), |i| vals[i]));
        let mn = with_threads(4, || min_f64(vals.len(), |i| vals[i]));
        assert_eq!(mx, 999.0);
        assert_eq!(mn, 0.0);
    }

    #[test]
    fn custom_accumulator_type() {
        // Collect (count, sum) pairs — a non-commutative-looking but
        // combine-associative accumulator.
        let (cnt, sum) = with_threads(4, || {
            map_reduce(
                5000,
                || (0u64, 0u64),
                |(c, s), i| (c + 1, s + i as u64),
                |(c1, s1), (c2, s2)| (c1 + c2, s1 + s2),
            )
        });
        assert_eq!(cnt, 5000);
        assert_eq!(sum, 4999 * 5000 / 2);
    }

    #[test]
    fn scratch_reduce_matches_plain_reduce() {
        let n = 20_000;
        let expect: u64 = (0..n as u64).map(|i| i % 13).sum();
        for threads in [1, 2, 8] {
            let got = with_threads(threads, || {
                map_reduce_scratch(
                    n,
                    64,
                    || 0u64,
                    || vec![0u8; 16],
                    |scratch, acc, i| {
                        scratch[0] = scratch[0].wrapping_add(1); // exercise reuse
                        acc + (i as u64 % 13)
                    },
                    |a, b| a + b,
                )
            });
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn panic_in_map_propagates() {
        let r = std::panic::catch_unwind(|| {
            with_threads(4, || {
                sum_u64(1000, |i| if i == 500 { panic!("boom") } else { 1 })
            });
        });
        assert!(r.is_err());
    }
}
