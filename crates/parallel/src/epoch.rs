//! Epoch-based snapshot publication with a lock-free read path.
//!
//! The serving layer (`probgraph::serving`) wants row-sweep queries to run
//! concurrently with streaming ingest **without any lock on the read path**.
//! [`EpochCell`] provides exactly that primitive: a single published value
//! behind an atomic pointer, replaced wholesale by a writer and reclaimed
//! only once every reader that could still observe the old value has moved
//! on — classic epoch-based reclamation, specialized to the one-pointer
//! snapshot case so it stays small enough to reason about exhaustively.
//!
//! ## Protocol
//!
//! A global epoch counter increments once per [`EpochCell::publish`].
//! Readers *announce* the epoch they observed in one of a fixed array of
//! cache-line-padded slots before loading the snapshot pointer, and
//! re-announce until the epoch is stable across the announcement
//! (`load epoch → claim slot → verify epoch unchanged`). Writers retire the
//! replaced snapshot into a limbo list and free a retired snapshot only
//! when every announced slot is strictly newer than it.
//!
//! All protocol atomics use `SeqCst`, giving one total order over the
//! epoch loads, slot stores, and pointer swaps. The safety argument:
//!
//! * A reader whose verified announcement is `a` loads the pointer *after*
//!   (in the total order) the publish that set the global epoch to `a`, so
//!   it can only observe nodes published at epoch ≥ `a`.
//! * A retired node published at epoch `x` is freed only when the minimum
//!   announced slot exceeds `x`; while any reader with announcement
//!   `a ≤ x` is pinned, the node survives. Together: no reader ever
//!   dereferences a freed snapshot.
//!
//! The write side takes a private mutex around the limbo list — writers
//! are expected to be rare and serialized anyway (the serving layer is
//! single-writer by construction); readers never touch it. The CI
//! ThreadSanitizer job races this module directly
//! (`tests/serving_equivalence.rs`).

use std::cell::Cell;
use std::ops::Deref;
use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering::SeqCst};
use std::sync::Mutex;

/// Announcement value meaning "no reader in this slot".
const IDLE: u64 = u64::MAX;

/// Fixed number of reader announcement slots. Pins are short (one query
/// sweep); with more simultaneous pins than slots, surplus readers spin
/// until a slot frees — correctness is unaffected.
const SLOTS: usize = 64;

/// One reader announcement, padded to its own cache line pair so readers
/// on different cores never false-share.
#[repr(align(128))]
struct Slot(AtomicU64);

/// A published value and the epoch at which it was published.
struct Node<T> {
    epoch: u64,
    value: T,
}

/// A single epoch-published snapshot: lock-free `pin` on the read side,
/// `publish` + deferred reclamation on the write side.
///
/// ```
/// use pg_parallel::EpochCell;
///
/// let cell = EpochCell::new(vec![1u32, 2, 3]);
/// {
///     let guard = cell.pin();
///     assert_eq!(guard.epoch(), 0);
///     assert_eq!(*guard, vec![1, 2, 3]);
/// }
/// let (epoch, reclaimed) = cell.publish(vec![4, 5, 6]);
/// assert_eq!(epoch, 1);
/// // No reader pinned: the initial value comes straight back for reuse.
/// assert_eq!(reclaimed, vec![vec![1, 2, 3]]);
/// assert_eq!(*cell.pin(), vec![4, 5, 6]);
/// ```
pub struct EpochCell<T> {
    current: AtomicPtr<Node<T>>,
    /// Epoch of the latest completed publish; the initial value is epoch 0.
    epoch: AtomicU64,
    slots: Box<[Slot]>,
    /// Retired-but-not-yet-freed snapshots. Writer-side only.
    limbo: Mutex<Vec<Box<Node<T>>>>,
}

// SAFETY: the cell owns its `T` values (moves them in through `publish`,
// out through reclamation, drops them in `Drop`), so sending the cell
// needs `T: Send`. Sharing it hands `&T` to arbitrary pinning threads and
// accepts `publish`/reclaim through `&self`, so it additionally needs
// `T: Sync`.
unsafe impl<T: Send> Send for EpochCell<T> {}
unsafe impl<T: Send + Sync> Sync for EpochCell<T> {}

impl<T> EpochCell<T> {
    /// Creates a cell whose epoch-0 snapshot is `initial`.
    pub fn new(initial: T) -> Self {
        let node = Box::into_raw(Box::new(Node {
            epoch: 0,
            value: initial,
        }));
        EpochCell {
            current: AtomicPtr::new(node),
            epoch: AtomicU64::new(0),
            slots: (0..SLOTS).map(|_| Slot(AtomicU64::new(IDLE))).collect(),
            limbo: Mutex::new(Vec::new()),
        }
    }

    /// The epoch of the latest completed publish (0 for the initial value).
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch.load(SeqCst)
    }

    /// Pins the current snapshot: announces this reader's epoch, then loads
    /// the pointer. Lock-free — no mutex, no writer coordination; the guard
    /// dereferences to the snapshot and releases the announcement on drop.
    pub fn pin(&self) -> EpochGuard<'_, T> {
        let start = slot_hint();
        let mut attempt = 0usize;
        let (slot_idx, mut announced) = loop {
            let idx = (start + attempt) % SLOTS;
            let e = self.epoch.load(SeqCst);
            // Claiming and announcing are one CAS: a slot transitions
            // IDLE → epoch, so a concurrent publish either sees IDLE
            // (reader not yet protected, but it has not loaded the pointer
            // either) or the announced epoch.
            if self.slots[idx]
                .0
                .compare_exchange(IDLE, e, SeqCst, SeqCst)
                .is_ok()
            {
                break (idx, e);
            }
            attempt += 1;
            if attempt.is_multiple_of(SLOTS) {
                // Every slot busy: back off until one frees.
                std::hint::spin_loop();
            }
        };
        // Re-announce until the epoch is stable across the announcement —
        // only then is this reader guaranteed to be visible to any publish
        // that could retire the snapshot it is about to load.
        loop {
            let e = self.epoch.load(SeqCst);
            if e == announced {
                break;
            }
            self.slots[slot_idx].0.store(e, SeqCst);
            announced = e;
        }
        let node = self.current.load(SeqCst);
        EpochGuard {
            cell: self,
            slot: slot_idx,
            node,
        }
    }

    /// Publishes `value` as the next epoch's snapshot and retires the
    /// previous one. Returns the new epoch and any retired snapshots that
    /// are no longer observable by any reader — callers reuse their
    /// allocations (double-buffering). The write side serializes on a
    /// private mutex; the read side is untouched.
    pub fn publish(&self, value: T) -> (u64, Vec<T>) {
        let mut limbo = self.limbo.lock().unwrap();
        let e = self.epoch.load(SeqCst) + 1;
        let new = Box::into_raw(Box::new(Node { epoch: e, value }));
        let old = self.current.swap(new, SeqCst);
        self.epoch.store(e, SeqCst);
        // SAFETY: `old` was the unique current pointer; ownership transfers
        // to the limbo list here and nowhere else.
        limbo.push(unsafe { Box::from_raw(old) });
        let freed = self.reclaim_locked(&mut limbo);
        (e, freed)
    }

    /// Frees every retired snapshot no longer observable by any reader and
    /// returns the values for reuse. Called automatically by
    /// [`EpochCell::publish`]; exposed for writers that want to drain limbo
    /// between publishes.
    pub fn try_reclaim(&self) -> Vec<T> {
        let mut limbo = self.limbo.lock().unwrap();
        self.reclaim_locked(&mut limbo)
    }

    /// Number of retired snapshots still waiting on readers.
    pub fn limbo_len(&self) -> usize {
        self.limbo.lock().unwrap().len()
    }

    fn reclaim_locked(&self, limbo: &mut Vec<Box<Node<T>>>) -> Vec<T> {
        let min_active = self
            .slots
            .iter()
            .map(|s| s.0.load(SeqCst))
            .min()
            .unwrap_or(IDLE);
        let mut freed = Vec::new();
        let mut i = 0;
        while i < limbo.len() {
            // A node published at epoch x is observable only by readers
            // announced at ≤ x; it is free once every announcement is
            // strictly newer.
            if limbo[i].epoch < min_active {
                freed.push(limbo.swap_remove(i).value);
            } else {
                i += 1;
            }
        }
        freed
    }
}

impl<T> Drop for EpochCell<T> {
    fn drop(&mut self) {
        // Exclusive access: no guards can outlive the cell (they borrow it).
        // SAFETY: `current` is the unique live pointer; limbo boxes are
        // owned by the mutex we now hold exclusively.
        unsafe { drop(Box::from_raw(*self.current.get_mut())) };
        self.limbo.get_mut().unwrap().clear();
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for EpochCell<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EpochCell")
            .field("epoch", &self.epoch())
            .finish_non_exhaustive()
    }
}

/// A pinned snapshot: dereferences to the published value; dropping it
/// releases the reader's announcement slot.
pub struct EpochGuard<'a, T> {
    cell: &'a EpochCell<T>,
    slot: usize,
    node: *const Node<T>,
}

impl<T> EpochGuard<'_, T> {
    /// The epoch at which the pinned snapshot was published.
    #[inline]
    pub fn epoch(&self) -> u64 {
        // SAFETY: the node outlives the guard — it is either current or in
        // limbo, and reclamation skips nodes at ≥ our announced epoch.
        unsafe { (*self.node).epoch }
    }
}

impl<T> Deref for EpochGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        // SAFETY: as in `epoch` — the announcement protocol keeps this
        // node alive for the guard's lifetime.
        unsafe { &(*self.node).value }
    }
}

impl<T> Drop for EpochGuard<'_, T> {
    fn drop(&mut self) {
        self.cell.slots[self.slot].0.store(IDLE, SeqCst);
    }
}

/// Per-thread starting slot so concurrent readers spread over the
/// announcement array instead of contending on slot 0.
fn slot_hint() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static HINT: Cell<usize> = const { Cell::new(usize::MAX) };
    }
    HINT.with(|h| {
        if h.get() == usize::MAX {
            h.set(NEXT.fetch_add(1, SeqCst) % SLOTS);
        }
        h.get()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn initial_value_is_epoch_zero() {
        let cell = EpochCell::new(7u32);
        assert_eq!(cell.epoch(), 0);
        let g = cell.pin();
        assert_eq!(g.epoch(), 0);
        assert_eq!(*g, 7);
    }

    #[test]
    fn publish_advances_epoch_and_reclaims_unpinned() {
        let cell = EpochCell::new(vec![0u8; 16]);
        let (e1, freed) = cell.publish(vec![1u8; 16]);
        assert_eq!(e1, 1);
        assert_eq!(freed, vec![vec![0u8; 16]]);
        assert_eq!(cell.limbo_len(), 0);
        assert_eq!(*cell.pin(), vec![1u8; 16]);
    }

    #[test]
    fn pinned_snapshot_survives_publishes() {
        let cell = EpochCell::new(10u64);
        let old = cell.pin();
        let (_, freed) = cell.publish(20);
        // The pinned epoch-0 value must stay in limbo.
        assert!(freed.is_empty());
        assert_eq!(cell.limbo_len(), 1);
        assert_eq!(*old, 10);
        assert_eq!(old.epoch(), 0);
        // A fresh pin sees the new value while the old guard still reads
        // the old one.
        assert_eq!(*cell.pin(), 20);
        drop(old);
        assert_eq!(cell.try_reclaim(), vec![10]);
        assert_eq!(cell.limbo_len(), 0);
    }

    #[test]
    fn nested_pins_use_distinct_slots() {
        let cell = EpochCell::new(1u32);
        let a = cell.pin();
        let b = cell.pin();
        assert_ne!(a.slot, b.slot);
        assert_eq!(*a, *b);
    }

    #[test]
    fn concurrent_readers_see_only_published_values() {
        // Writer publishes monotonically increasing values; readers must
        // only ever observe (epoch, value) pairs with value == epoch.
        let cell = EpochCell::new(0u64);
        let stop = AtomicBool::new(false);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    while !stop.load(SeqCst) {
                        let g = cell.pin();
                        assert_eq!(*g, g.epoch());
                    }
                });
            }
            for v in 1..=2000u64 {
                cell.publish(v);
            }
            stop.store(true, SeqCst);
        });
        // All readers gone: everything retired must be reclaimable.
        cell.try_reclaim();
        assert_eq!(cell.limbo_len(), 0);
    }
}
