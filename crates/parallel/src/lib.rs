//! # pg-parallel — fork/join parallel-for substrate
//!
//! The ProbGraph paper parallelizes its graph-mining algorithms with OpenMP
//! `parallel for` loops using dynamic scheduling (§VI-B of the paper). This
//! crate is the Rust equivalent used by every other crate in the workspace:
//! a fork/join runtime built on [`std::thread::scope`] with a shared atomic
//! work index, i.e. the same scheduling model as
//! `#pragma omp parallel for schedule(dynamic, grain)`.
//!
//! Design goals, in order:
//!
//! 1. **Explicit thread-count control.** The scaling experiments (Figs. 8–9
//!    of the paper) sweep the thread count from 1 to the machine maximum.
//!    [`set_threads`] / [`with_threads`] make the sweep a one-liner.
//! 2. **Load balancing under skew.** Power-law graphs have a few huge
//!    neighborhoods; static partitioning of the vertex range would serialize
//!    on them. Dynamic chunk claiming via a single `fetch_add` gives the
//!    OpenMP-dynamic behaviour the paper relies on.
//! 3. **No global daemon threads.** Each parallel region forks and joins;
//!    the process is single-threaded between regions, which keeps Criterion
//!    measurements clean and avoids cross-talk between benchmark cases.
//!
//! The public surface is small: [`parallel_for`], [`parallel_for_grain`],
//! [`map_reduce`], [`sum_u64`], [`sum_f64`], [`parallel_init`], [`join`],
//! and the thread-count configuration in [`config`].
//!
//! ```
//! use pg_parallel::{parallel_for, sum_u64};
//! use std::sync::atomic::{AtomicU64, Ordering};
//!
//! let hits = AtomicU64::new(0);
//! parallel_for(1000, |i| {
//!     if i % 7 == 0 {
//!         hits.fetch_add(1, Ordering::Relaxed);
//!     }
//! });
//! assert_eq!(hits.into_inner(), 143);
//!
//! let s = sum_u64(1000, |i| i as u64);
//! assert_eq!(s, 999 * 1000 / 2);
//! ```

pub mod cache;
pub mod config;
pub mod epoch;
mod init;
mod par;
mod reduce;
pub mod shard;

pub use cache::{
    cache_line_bytes, cache_topology, set_tile_bytes, tile_bytes, with_tile_bytes, CacheTopology,
};
pub use config::{available_threads, current_threads, set_threads, with_threads};
pub use epoch::{EpochCell, EpochGuard};
pub use init::{parallel_fill_with, parallel_init, parallel_init_scratch};
pub use par::{join, parallel_for, parallel_for_grain, parallel_for_range, parallel_for_scratch};
pub use reduce::{
    map_reduce, map_reduce_grain, map_reduce_scratch, max_f64, min_f64, sum_f64, sum_u64,
};
pub use shard::{current_shards, set_shards, with_shards};

/// Picks a chunk size ("grain") for a loop of `n` iterations.
///
/// Small enough that `8 × threads` chunks exist (so the dynamic scheduler can
/// balance skewed work), large enough that the `fetch_add` per chunk is
/// amortized. Mirrors what OpenMP implementations choose for
/// `schedule(dynamic)` with an unspecified chunk size, scaled up because a
/// single ProbGraph loop iteration is usually a whole neighborhood
/// intersection.
#[inline]
pub fn auto_grain(n: usize) -> usize {
    let t = current_threads().max(1);
    (n / (8 * t)).clamp(1, 4096)
}

/// Degree-aware grain for loops with **skewed per-iteration work** (one
/// iteration = one vertex neighborhood; power-law graphs put orders of
/// magnitude more work behind a hub than behind a median vertex).
///
/// [`auto_grain`] assumes uniform iterations: with `n/(8t)` iterations per
/// chunk, the chunk that happens to contain a hub carries
/// `max_work + (grain−1)·avg` — a serial tail that stalls the join. This
/// variant sizes chunks by *work* instead: each chunk should carry about
/// `total_work / (16·threads)`, and a chunk already containing a
/// `max_work` hub gets only the remaining headroom in extra iterations.
/// For uniform work it degenerates to roughly [`auto_grain`]; for heavy
/// skew (`max_work ≥` the per-chunk target) it collapses to `grain = 1`,
/// letting the dynamic scheduler isolate hubs.
///
/// `total_work`/`max_work` are abstract work units (e.g. `Σ d_v` and
/// `max d_v` for per-edge loops, `Σ d_v²` / `max d_v²` for wedge loops).
#[inline]
pub fn weighted_grain(n: usize, total_work: u64, max_work: u64) -> usize {
    if n == 0 || total_work == 0 {
        return 1;
    }
    let t = current_threads().max(1) as u64;
    let avg = (total_work / n as u64).max(1);
    let target = (total_work / (16 * t)).max(1);
    let headroom = target.saturating_sub(max_work);
    let by_work = 1 + (headroom / avg) as usize;
    by_work.min(auto_grain(n))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auto_grain_is_positive_and_bounded() {
        for n in [0usize, 1, 2, 100, 10_000, 10_000_000] {
            let g = auto_grain(n);
            assert!(g >= 1);
            assert!(g <= 4096);
        }
    }

    #[test]
    fn auto_grain_shrinks_with_more_threads() {
        let g1 = with_threads(1, || auto_grain(100_000));
        let g8 = with_threads(8, || auto_grain(100_000));
        assert!(g8 <= g1);
    }

    #[test]
    fn weighted_grain_uniform_work_tracks_auto() {
        with_threads(8, || {
            let n = 100_000;
            // Uniform work: max == avg.
            let g = weighted_grain(n, n as u64 * 10, 10);
            assert!(g >= auto_grain(n) / 4, "g={g} auto={}", auto_grain(n));
            assert!(g <= auto_grain(n));
        });
    }

    #[test]
    fn weighted_grain_collapses_under_heavy_skew() {
        with_threads(8, || {
            let n = 100_000;
            // One hub holds half the total work: chunks must shrink to 1 so
            // the scheduler can isolate it.
            let total = 2_000_000u64;
            let g = weighted_grain(n, total, total / 2);
            assert_eq!(g, 1);
        });
    }

    #[test]
    fn weighted_grain_degenerate_inputs() {
        assert_eq!(weighted_grain(0, 100, 10), 1);
        assert_eq!(weighted_grain(100, 0, 0), 1);
        assert!(weighted_grain(1, 1, 1) >= 1);
    }
}
