//! # pg-parallel — fork/join parallel-for substrate
//!
//! The ProbGraph paper parallelizes its graph-mining algorithms with OpenMP
//! `parallel for` loops using dynamic scheduling (§VI-B of the paper). This
//! crate is the Rust equivalent used by every other crate in the workspace:
//! a fork/join runtime built on [`std::thread::scope`] with a shared atomic
//! work index, i.e. the same scheduling model as
//! `#pragma omp parallel for schedule(dynamic, grain)`.
//!
//! Design goals, in order:
//!
//! 1. **Explicit thread-count control.** The scaling experiments (Figs. 8–9
//!    of the paper) sweep the thread count from 1 to the machine maximum.
//!    [`set_threads`] / [`with_threads`] make the sweep a one-liner.
//! 2. **Load balancing under skew.** Power-law graphs have a few huge
//!    neighborhoods; static partitioning of the vertex range would serialize
//!    on them. Dynamic chunk claiming via a single `fetch_add` gives the
//!    OpenMP-dynamic behaviour the paper relies on.
//! 3. **No global daemon threads.** Each parallel region forks and joins;
//!    the process is single-threaded between regions, which keeps Criterion
//!    measurements clean and avoids cross-talk between benchmark cases.
//!
//! The public surface is small: [`parallel_for`], [`parallel_for_grain`],
//! [`map_reduce`], [`sum_u64`], [`sum_f64`], [`parallel_init`], [`join`],
//! and the thread-count configuration in [`config`].
//!
//! ```
//! use pg_parallel::{parallel_for, sum_u64};
//! use std::sync::atomic::{AtomicU64, Ordering};
//!
//! let hits = AtomicU64::new(0);
//! parallel_for(1000, |i| {
//!     if i % 7 == 0 {
//!         hits.fetch_add(1, Ordering::Relaxed);
//!     }
//! });
//! assert_eq!(hits.into_inner(), 143);
//!
//! let s = sum_u64(1000, |i| i as u64);
//! assert_eq!(s, 999 * 1000 / 2);
//! ```

pub mod config;
mod init;
mod par;
mod reduce;

pub use config::{available_threads, current_threads, set_threads, with_threads};
pub use init::{parallel_fill_with, parallel_init};
pub use par::{join, parallel_for, parallel_for_grain, parallel_for_range};
pub use reduce::{map_reduce, map_reduce_grain, max_f64, min_f64, sum_f64, sum_u64};

/// Picks a chunk size ("grain") for a loop of `n` iterations.
///
/// Small enough that `8 × threads` chunks exist (so the dynamic scheduler can
/// balance skewed work), large enough that the `fetch_add` per chunk is
/// amortized. Mirrors what OpenMP implementations choose for
/// `schedule(dynamic)` with an unspecified chunk size, scaled up because a
/// single ProbGraph loop iteration is usually a whole neighborhood
/// intersection.
#[inline]
pub fn auto_grain(n: usize) -> usize {
    let t = current_threads().max(1);
    (n / (8 * t)).clamp(1, 4096)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auto_grain_is_positive_and_bounded() {
        for n in [0usize, 1, 2, 100, 10_000, 10_000_000] {
            let g = auto_grain(n);
            assert!(g >= 1);
            assert!(g <= 4096);
        }
    }

    #[test]
    fn auto_grain_shrinks_with_more_threads() {
        let g1 = with_threads(1, || auto_grain(100_000));
        let g8 = with_threads(8, || auto_grain(100_000));
        assert!(g8 <= g1);
    }
}
