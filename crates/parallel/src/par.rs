//! Core fork/join loops: dynamic-scheduled `parallel_for` and binary `join`.

use crate::config::current_threads;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Runs `f(i)` for every `i in 0..n`, in parallel, with dynamically claimed
/// chunks of [`crate::auto_grain`] iterations.
///
/// Equivalent to the paper's `for v in V [in par]` loops. `f` must be safe to
/// call concurrently from multiple threads; iteration order is unspecified.
#[inline]
pub fn parallel_for<F>(n: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    parallel_for_grain(n, crate::auto_grain(n), f);
}

/// [`parallel_for`] over an arbitrary `Range<usize>`.
#[inline]
pub fn parallel_for_range<F>(range: Range<usize>, f: F)
where
    F: Fn(usize) + Sync,
{
    let base = range.start;
    let n = range.end.saturating_sub(range.start);
    parallel_for(n, |i| f(base + i));
}

/// [`parallel_for`] with an explicit chunk size.
///
/// `grain = 1` gives maximal balancing (one `fetch_add` per iteration) and is
/// the right choice when individual iterations are huge (e.g. one iteration =
/// one full vertex neighborhood of a power-law hub); large grains amortize
/// scheduling for cheap iterations.
pub fn parallel_for_grain<F>(n: usize, grain: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    // Thin wrapper over the scratch variant with unit scratch — one
    // chunk-claiming worker loop to maintain.
    parallel_for_scratch(n, grain, || (), |(), i| f(i));
}

/// [`parallel_for_grain`] with **worker-local scratch**: each worker calls
/// `make_scratch` once and threads the value through every iteration it
/// claims. This is how hot loops avoid per-iteration heap churn — e.g. the
/// 4-clique kernel reuses one `Vec` per worker for its materialized
/// `C3 = N⁺_u ∩ N⁺_v` sets instead of allocating per vertex.
pub fn parallel_for_scratch<S, Make, F>(n: usize, grain: usize, make_scratch: Make, f: F)
where
    Make: Fn() -> S + Sync,
    F: Fn(&mut S, usize) + Sync,
{
    let grain = grain.max(1);
    let threads = current_threads();
    if threads <= 1 || n <= grain {
        let mut scratch = make_scratch();
        for i in 0..n {
            f(&mut scratch, i);
        }
        return;
    }
    let threads = threads.min(n.div_ceil(grain));
    let cursor = AtomicUsize::new(0);
    let cursor = &cursor;
    let make_scratch = &make_scratch;
    let f = &f;
    // The calling thread participates as worker 0; fork threads-1 more.
    let work = move || {
        let mut scratch = make_scratch();
        loop {
            let start = cursor.fetch_add(grain, Ordering::Relaxed);
            if start >= n {
                break;
            }
            let end = (start + grain).min(n);
            for i in start..end {
                f(&mut scratch, i);
            }
        }
    };
    std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(threads - 1);
        for _ in 1..threads {
            handles.push(s.spawn(work));
        }
        work();
        for h in handles {
            // Propagate worker panics to the caller, as OpenMP would abort.
            if let Err(p) = h.join() {
                std::panic::resume_unwind(p);
            }
        }
    });
}

/// Runs two closures, potentially in parallel, and returns both results.
///
/// The second closure runs on a forked thread when more than one thread is
/// configured; otherwise both run sequentially on the caller.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_threads() <= 1 {
        return (a(), b());
    }
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        match hb.join() {
            Ok(rb) => (ra, rb),
            Err(p) => std::panic::resume_unwind(p),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::with_threads;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn visits_every_index_exactly_once() {
        for threads in [1, 2, 4, 8] {
            with_threads(threads, || {
                let n = 10_001;
                let marks: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
                parallel_for(n, |i| {
                    marks[i].fetch_add(1, Ordering::Relaxed);
                });
                assert!(marks.iter().all(|m| m.load(Ordering::Relaxed) == 1));
            });
        }
    }

    #[test]
    fn zero_iterations_is_a_noop() {
        parallel_for(0, |_| panic!("must not be called"));
    }

    #[test]
    fn grain_one_still_covers_everything() {
        with_threads(4, || {
            let sum = AtomicU64::new(0);
            parallel_for_grain(1000, 1, |i| {
                sum.fetch_add(i as u64, Ordering::Relaxed);
            });
            assert_eq!(sum.into_inner(), 999 * 1000 / 2);
        });
    }

    #[test]
    fn huge_grain_degenerates_to_sequential() {
        let sum = AtomicU64::new(0);
        parallel_for_grain(100, usize::MAX, |i| {
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.into_inner(), 99 * 100 / 2);
    }

    #[test]
    fn range_loop_offsets_correctly() {
        let sum = AtomicU64::new(0);
        parallel_for_range(10..20, |i| {
            assert!((10..20).contains(&i));
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.into_inner(), (10..20u64).sum::<u64>());
    }

    #[test]
    fn worker_panic_propagates() {
        let r = std::panic::catch_unwind(|| {
            with_threads(4, || {
                parallel_for(1000, |i| {
                    if i == 777 {
                        panic!("boom");
                    }
                });
            });
        });
        assert!(r.is_err());
    }

    #[test]
    fn scratch_loop_covers_everything_and_reuses_buffers() {
        for threads in [1, 4] {
            with_threads(threads, || {
                let n = 5000;
                let marks: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
                parallel_for_scratch(n, 8, Vec::<usize>::new, |scratch, i| {
                    // The scratch buffer persists across iterations of
                    // one worker; only its contents are per-iteration.
                    scratch.clear();
                    scratch.extend([i, i + 1]);
                    marks[scratch[0]].fetch_add(1, Ordering::Relaxed);
                });
                assert!(marks.iter().all(|m| m.load(Ordering::Relaxed) == 1));
            });
        }
    }

    #[test]
    fn join_returns_both_results() {
        for threads in [1, 4] {
            with_threads(threads, || {
                let (a, b) = join(|| 2 + 2, || "hi".len());
                assert_eq!((a, b), (4, 2));
            });
        }
    }

    #[test]
    fn join_propagates_panic_from_second_branch() {
        let r = std::panic::catch_unwind(|| {
            with_threads(2, || join(|| 1, || -> i32 { panic!("boom") }));
        });
        assert!(r.is_err());
    }
}
