//! Shard-count configuration for the serving layer.
//!
//! The effective shard count for a sharded store is resolved, in order:
//!
//! 1. the innermost active [`with_shards`] override on the calling thread,
//! 2. the process-global count set by [`set_shards`],
//! 3. the `PG_SHARDS` environment variable,
//! 4. [`crate::available_threads`], clamped to `[1, 64]` — one
//!    single-writer ingest lane per hardware thread.
//!
//! This mirrors the `PG_THREADS` / `PG_TILE_BYTES` resolution chains in
//! [`crate::config`] and [`crate::cache`]. The serving layer additionally
//! caps the resolved count against the cache-topology probe (a shard
//! should own at least one destination tile's worth of sketch bytes —
//! see `probgraph::serving`), so `PG_SHARDS` is a request, not a promise,
//! on stores too small to split that far.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Process-global shard count; 0 means "not set, fall back to env/HW".
static GLOBAL_SHARDS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Innermost `with_shards` override on this thread; 0 = none.
    static LOCAL_SHARDS: Cell<usize> = const { Cell::new(0) };
}

fn env_shards() -> Option<usize> {
    std::env::var("PG_SHARDS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
}

/// Derived default: one ingest lane per hardware thread, bounded so the
/// per-publish gather fan-in stays trivial.
fn derived_shards() -> usize {
    crate::available_threads().clamp(1, 64)
}

/// Sets the process-global shard count used by all subsequent sharded
/// stores not inside a [`with_shards`] scope. Passing 0 restores the
/// default resolution order.
pub fn set_shards(n: usize) {
    GLOBAL_SHARDS.store(n, Ordering::Relaxed);
}

/// The shard count the *calling thread* would use for a sharded store
/// created right now. Always ≥ 1.
pub fn current_shards() -> usize {
    let local = LOCAL_SHARDS.with(|c| c.get());
    if local > 0 {
        return local;
    }
    let global = GLOBAL_SHARDS.load(Ordering::Relaxed);
    if global > 0 {
        return global;
    }
    env_shards().unwrap_or_else(derived_shards).max(1)
}

/// Runs `f` with the calling thread's sharded stores using `n` shards,
/// restoring the previous setting afterwards (also on panic). The scaling
/// harness sweeps shard counts with this.
pub fn with_shards<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            LOCAL_SHARDS.with(|c| c.set(self.0));
        }
    }
    let prev = LOCAL_SHARDS.with(|c| c.replace(n.max(1)));
    let _restore = Restore(prev);
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn current_shards_is_at_least_one() {
        assert!(current_shards() >= 1);
    }

    #[test]
    fn with_shards_nests_and_restores() {
        let outer = current_shards();
        with_shards(3, || {
            assert_eq!(current_shards(), 3);
            with_shards(7, || assert_eq!(current_shards(), 7));
            assert_eq!(current_shards(), 3);
        });
        assert_eq!(current_shards(), outer);
    }

    #[test]
    fn with_shards_clamps_zero_to_one() {
        with_shards(0, || assert_eq!(current_shards(), 1));
    }
}
