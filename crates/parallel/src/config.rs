//! Thread-count configuration.
//!
//! The effective thread count for a parallel region is resolved, in order:
//!
//! 1. the innermost active [`with_threads`] override on the calling thread,
//! 2. the process-global count set by [`set_threads`],
//! 3. the `PG_THREADS` environment variable,
//! 4. [`std::thread::available_parallelism`].
//!
//! This mirrors OpenMP's `omp_set_num_threads` / `OMP_NUM_THREADS` pair that
//! the paper's scaling experiments rely on.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Process-global thread count; 0 means "not set, fall back to env/HW".
static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Innermost `with_threads` override on this thread; 0 = none.
    static LOCAL_OVERRIDE: Cell<usize> = const { Cell::new(0) };
}

/// Number of hardware threads the runtime would use by default.
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn env_threads() -> Option<usize> {
    std::env::var("PG_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
}

/// Sets the process-global thread count used by all subsequent parallel
/// regions (on every thread) that are not inside a [`with_threads`] scope.
/// Passing 0 restores the default resolution order.
pub fn set_threads(n: usize) {
    GLOBAL_THREADS.store(n, Ordering::Relaxed);
}

/// The thread count the *calling thread* would use for a parallel region
/// started right now. Always ≥ 1.
pub fn current_threads() -> usize {
    let local = LOCAL_OVERRIDE.with(|c| c.get());
    if local > 0 {
        return local;
    }
    let global = GLOBAL_THREADS.load(Ordering::Relaxed);
    if global > 0 {
        return global;
    }
    env_threads().unwrap_or_else(available_threads).max(1)
}

/// Runs `f` with the calling thread's parallel regions limited to `n`
/// threads, restoring the previous setting afterwards (also on panic).
///
/// Used by the scaling harness:
///
/// ```
/// use pg_parallel::{with_threads, current_threads};
/// for t in [1, 2, 4] {
///     with_threads(t, || assert_eq!(current_threads(), t));
/// }
/// ```
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            LOCAL_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let prev = LOCAL_OVERRIDE.with(|c| c.replace(n.max(1)));
    let _restore = Restore(prev);
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn current_threads_is_at_least_one() {
        assert!(current_threads() >= 1);
    }

    #[test]
    fn with_threads_nests_and_restores() {
        let outer = current_threads();
        with_threads(3, || {
            assert_eq!(current_threads(), 3);
            with_threads(2, || assert_eq!(current_threads(), 2));
            assert_eq!(current_threads(), 3);
        });
        assert_eq!(current_threads(), outer);
    }

    #[test]
    fn with_threads_restores_on_panic() {
        let outer = current_threads();
        let r = std::panic::catch_unwind(|| {
            with_threads(5, || panic!("boom"));
        });
        assert!(r.is_err());
        assert_eq!(current_threads(), outer);
    }

    #[test]
    fn with_threads_clamps_zero_to_one() {
        with_threads(0, || assert_eq!(current_threads(), 1));
    }
}
