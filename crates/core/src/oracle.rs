//! The monomorphized intersection-oracle layer.
//!
//! The paper's thesis (§IV–V) is that graph mining is a hot loop of
//! pairwise set-intersection estimates with the *representation* swappable
//! underneath: exact CSR adjacency, Bloom filters under three estimators,
//! k-hash MinHash, bottom-k MinHash, KMV, HyperLogLog. This module turns
//! that thesis into the type system: every representation implements
//! [`IntersectionOracle`], every algorithm is written **once** against a
//! generic `O: IntersectionOracle`, and the representation dispatch happens
//! exactly once per algorithm call — [`crate::ProbGraph::with_oracle`]
//! matches the store enum a single time and hands the monomorphized kernel
//! a concrete oracle, so the per-edge loop contains zero enum branching.
//!
//! Adding a new representation = implementing this trait and one
//! `with_oracle` arm; every algorithm (triangles, 4-cliques, clustering,
//! clustering coefficients, link prediction, similarity) picks it up for
//! free.

use crate::intersect::intersect_card;
use pg_graph::{CsrGraph, OrientedDag, VertexId};
use pg_sketch::bitvec::and_count_words;
use pg_sketch::{
    estimators, BloomCollection, BottomKCollection, HyperLogLogCollection, KmvCollection,
    MinHashCollection,
};
use std::marker::PhantomData;

/// A pairwise set-intersection estimator over an indexed family of sets
/// (vertex neighborhoods `N_v` or oriented out-neighborhoods `N⁺_v`).
///
/// The contract mirrors the blue operations of the paper's listings:
/// [`estimate`](Self::estimate) replaces `|N_u ∩ N_v|`,
/// [`jaccard`](Self::jaccard) replaces `J(N_u, N_v)`, and
/// [`estimate_vs_members`](Self::estimate_vs_members) replaces
/// `|N_w ∩ C|` against an ad-hoc explicit set `C` (the 4-clique inner
/// operation). Exact adjacency is just another oracle, which is what lets
/// each algorithm keep a single body for its exact and approximate forms.
pub trait IntersectionOracle: Sync {
    /// Exact size of set `v` (degrees are free in CSR; every estimator
    /// that needs sizes uses the exact ones, as the paper's do).
    fn set_size(&self, v: VertexId) -> u32;

    /// `|N_u ∩ N_v|̂` — possibly negative for bias-corrected estimators;
    /// kernels clamp at their accumulation site.
    fn estimate(&self, u: VertexId, v: VertexId) -> f64;

    /// Batched row estimation: `out[i] = estimate(v, us[i])`.
    ///
    /// The default loops over [`estimate`](Self::estimate); oracles with
    /// per-set state worth hoisting (the Bloom word window and cached
    /// popcount, the exact adjacency row) override it. Kernels that sweep
    /// a whole neighborhood per vertex should prefer this hook.
    #[inline]
    fn estimate_row(&self, v: VertexId, us: &[VertexId], out: &mut Vec<f64>) {
        out.clear();
        out.extend(us.iter().map(|&u| self.estimate(v, u)));
    }

    /// `Ĵ(N_u, N_v)`, clamped to `[0, 1]`.
    ///
    /// The default derives it from [`estimate`](Self::estimate) and the
    /// exact sizes (`J = I / (|X| + |Y| − I)`); MinHash oracles override
    /// with their native Jaccard estimators.
    #[inline]
    fn jaccard(&self, u: VertexId, v: VertexId) -> f64 {
        let (nx, ny) = (self.set_size(u) as f64, self.set_size(v) as f64);
        let inter = self.estimate(u, v);
        let union = nx + ny - inter;
        if union <= 0.0 {
            // Degenerate: both empty ⇒ similarity 0 by convention.
            if nx + ny == 0.0 {
                0.0
            } else {
                1.0
            }
        } else {
            (inter / union).clamp(0.0, 1.0)
        }
    }

    /// `|N_w ∩ C|̂` against an explicit **sorted** element list `C` with no
    /// prebuilt sketch (Listing 2's inner operation). Exact adjacency
    /// intersects directly; Bloom answers membership queries; MinHash
    /// counts sample hits. Representations storing hash values instead of
    /// elements (KMV, HLL) cannot answer this and panic loudly rather than
    /// return a silently wrong number — exactly as the paper, which only
    /// evaluates BF and MH on clique counting.
    fn estimate_vs_members(&self, w: VertexId, members: &[u32]) -> f64 {
        let _ = (w, members);
        panic!(
            "this representation stores hash values, not elements, and cannot \
             estimate against an explicit member list (use exact, Bloom, or MinHash)"
        )
    }

    /// True when one [`estimate`](Self::estimate) call costs `O(d)` rather
    /// than `O(sketch)` — the exact oracle. Kernels use this to pick a
    /// degree-power scheduling grain matching their true work profile.
    #[inline]
    fn degree_scaled_cost(&self) -> bool {
        false
    }
}

/// Rank-2 adapter for [`crate::ProbGraph::with_oracle`]: a closure cannot
/// be generic over the oracle type, so callers implement this one-method
/// trait instead (usually a tiny local struct capturing the kernel's other
/// arguments). `visit` is instantiated once per concrete oracle —
/// full monomorphization, dispatch hoisted out of the kernel.
pub trait OracleVisitor {
    /// The kernel's result type.
    type Output;
    /// Runs the kernel against one concrete, monomorphized oracle.
    fn visit<O: IntersectionOracle>(self, oracle: &O) -> Self::Output;
}

// ---------------------------------------------------------------------------
// Exact adjacency
// ---------------------------------------------------------------------------

/// Row access shared by the two exact set families: full neighborhoods of
/// a [`CsrGraph`] and oriented out-neighborhoods of an [`OrientedDag`].
pub trait AdjacencyRows: Sync {
    /// The sorted adjacency row of vertex `v`.
    fn adjacency_row(&self, v: VertexId) -> &[u32];
}

impl AdjacencyRows for CsrGraph {
    #[inline]
    fn adjacency_row(&self, v: VertexId) -> &[u32] {
        self.neighbors(v)
    }
}

impl AdjacencyRows for OrientedDag {
    #[inline]
    fn adjacency_row(&self, v: VertexId) -> &[u32] {
        self.neighbors_plus(v)
    }
}

/// The exact oracle: merge/galloping intersections over sorted adjacency
/// rows (Fig. 1 panel 2). Running a generic kernel with this oracle *is*
/// the tuned exact baseline.
#[derive(Clone, Copy)]
pub struct ExactOracle<'a, A: AdjacencyRows> {
    adj: &'a A,
}

impl<'a, A: AdjacencyRows> ExactOracle<'a, A> {
    /// Wraps an adjacency structure.
    #[inline]
    pub fn new(adj: &'a A) -> Self {
        ExactOracle { adj }
    }
}

impl<A: AdjacencyRows> IntersectionOracle for ExactOracle<'_, A> {
    #[inline]
    fn set_size(&self, v: VertexId) -> u32 {
        self.adj.adjacency_row(v).len() as u32
    }

    #[inline]
    fn estimate(&self, u: VertexId, v: VertexId) -> f64 {
        intersect_card(self.adj.adjacency_row(u), self.adj.adjacency_row(v)) as f64
    }

    #[inline]
    fn estimate_row(&self, v: VertexId, us: &[VertexId], out: &mut Vec<f64>) {
        let nv = self.adj.adjacency_row(v);
        out.clear();
        out.extend(
            us.iter()
                .map(|&u| intersect_card(nv, self.adj.adjacency_row(u)) as f64),
        );
    }

    #[inline]
    fn estimate_vs_members(&self, w: VertexId, members: &[u32]) -> f64 {
        intersect_card(self.adj.adjacency_row(w), members) as f64
    }

    #[inline]
    fn degree_scaled_cost(&self) -> bool {
        true
    }
}

// ---------------------------------------------------------------------------
// Bloom filters: one oracle type, three zero-sized estimator strategies
// ---------------------------------------------------------------------------

/// Which Bloom intersection estimator a [`BloomOracle`] applies, resolved
/// at *compile time*: each strategy is a zero-sized type, so
/// `BloomOracle<BloomAnd>`, `BloomOracle<BloomLimit>`, and
/// `BloomOracle<BloomOr>` monomorphize into three distinct branch-free
/// kernels instead of one kernel matching an estimator enum per edge.
pub trait BloomStrategy: Send + Sync + 'static {
    /// Pairwise estimate between stored filters `i` and `j`.
    fn estimate(col: &BloomCollection, i: usize, j: usize, ni: u32, nj: u32) -> f64;

    /// Same estimate with set `i`'s word window, cached popcount, and size
    /// already hoisted — the row-batch fast path.
    fn estimate_with_row(
        col: &BloomCollection,
        row: &[u64],
        row_ones: usize,
        row_size: u32,
        j: usize,
        nj: u32,
    ) -> f64;
}

/// `|X∩Y|̂_AND` (Eq. 2) — the paper's default.
pub struct BloomAnd;

/// `|X∩Y|̂_L` (Eq. 4) — better on very dense graphs (§VIII-B).
pub struct BloomLimit;

/// `|X∩Y|̂_OR` (Eq. 29) — the prior-work estimator, for comparison.
pub struct BloomOr;

impl BloomStrategy for BloomAnd {
    #[inline]
    fn estimate(col: &BloomCollection, i: usize, j: usize, _ni: u32, _nj: u32) -> f64 {
        col.estimate_and(i, j)
    }

    #[inline]
    fn estimate_with_row(
        col: &BloomCollection,
        row: &[u64],
        _row_ones: usize,
        _row_size: u32,
        j: usize,
        _nj: u32,
    ) -> f64 {
        col.estimate_and_from_ones(and_count_words(row, col.words(j)))
    }
}

impl BloomStrategy for BloomLimit {
    #[inline]
    fn estimate(col: &BloomCollection, i: usize, j: usize, _ni: u32, _nj: u32) -> f64 {
        col.estimate_limit(i, j)
    }

    #[inline]
    fn estimate_with_row(
        col: &BloomCollection,
        row: &[u64],
        _row_ones: usize,
        _row_size: u32,
        j: usize,
        _nj: u32,
    ) -> f64 {
        estimators::bf_intersect_limit(and_count_words(row, col.words(j)), col.num_hashes())
    }
}

impl BloomStrategy for BloomOr {
    #[inline]
    fn estimate(col: &BloomCollection, i: usize, j: usize, ni: u32, nj: u32) -> f64 {
        col.estimate_or(i, j, ni as usize, nj as usize)
    }

    #[inline]
    fn estimate_with_row(
        col: &BloomCollection,
        row: &[u64],
        row_ones: usize,
        row_size: u32,
        j: usize,
        nj: u32,
    ) -> f64 {
        let and_ones = and_count_words(row, col.words(j));
        let or_ones = row_ones + col.count_ones(j) - and_ones;
        (row_size + nj) as f64 - col.estimate_and_from_ones(or_ones)
    }
}

/// Oracle over a [`BloomCollection`], specialized per estimator via the
/// zero-sized [`BloomStrategy`] parameter.
pub struct BloomOracle<'a, S: BloomStrategy> {
    col: &'a BloomCollection,
    sizes: &'a [u32],
    _strategy: PhantomData<S>,
}

impl<'a, S: BloomStrategy> BloomOracle<'a, S> {
    /// Wraps a collection plus the exact set sizes recorded at build time.
    #[inline]
    pub fn new(col: &'a BloomCollection, sizes: &'a [u32]) -> Self {
        BloomOracle {
            col,
            sizes,
            _strategy: PhantomData,
        }
    }
}

impl<S: BloomStrategy> IntersectionOracle for BloomOracle<'_, S> {
    #[inline]
    fn set_size(&self, v: VertexId) -> u32 {
        self.sizes[v as usize]
    }

    #[inline]
    fn estimate(&self, u: VertexId, v: VertexId) -> f64 {
        let (i, j) = (u as usize, v as usize);
        S::estimate(self.col, i, j, self.sizes[i], self.sizes[j])
    }

    #[inline]
    fn estimate_row(&self, v: VertexId, us: &[VertexId], out: &mut Vec<f64>) {
        let i = v as usize;
        let row = self.col.words(i);
        let row_ones = self.col.count_ones(i);
        let row_size = self.sizes[i];
        out.clear();
        out.extend(us.iter().map(|&u| {
            S::estimate_with_row(
                self.col,
                row,
                row_ones,
                row_size,
                u as usize,
                self.sizes[u as usize],
            )
        }));
    }

    #[inline]
    fn estimate_vs_members(&self, w: VertexId, members: &[u32]) -> f64 {
        // Membership queries: no false negatives, small fp inflation.
        let wi = w as usize;
        members
            .iter()
            .filter(|&&x| self.col.contains(wi, x))
            .count() as f64
    }
}

// ---------------------------------------------------------------------------
// MinHash (k-hash), bottom-k (1-hash), KMV, HyperLogLog
// ---------------------------------------------------------------------------

/// Oracle over a k-hash [`MinHashCollection`] (§IV-C): native Jaccard,
/// Eq. (5) intersection with exact sizes.
pub struct KHashOracle<'a> {
    col: &'a MinHashCollection,
    sizes: &'a [u32],
}

impl<'a> KHashOracle<'a> {
    /// Wraps a collection plus the exact set sizes.
    #[inline]
    pub fn new(col: &'a MinHashCollection, sizes: &'a [u32]) -> Self {
        KHashOracle { col, sizes }
    }
}

impl IntersectionOracle for KHashOracle<'_> {
    #[inline]
    fn set_size(&self, v: VertexId) -> u32 {
        self.sizes[v as usize]
    }

    #[inline]
    fn estimate(&self, u: VertexId, v: VertexId) -> f64 {
        let (i, j) = (u as usize, v as usize);
        self.col
            .estimate_intersection(i, j, self.sizes[i] as usize, self.sizes[j] as usize)
    }

    #[inline]
    fn jaccard(&self, u: VertexId, v: VertexId) -> f64 {
        self.col.estimate_jaccard(u as usize, v as usize)
    }

    #[inline]
    fn estimate_vs_members(&self, w: VertexId, members: &[u32]) -> f64 {
        // Each signature slot is a uniform-ish sample of the set; the hit
        // fraction estimates `|N_w ∩ C| / |N_w|`.
        let wi = w as usize;
        let sig = self.col.signature(wi);
        let hits = sig
            .iter()
            .filter(|&&x| members.binary_search(&x).is_ok())
            .count();
        let d = self.sizes[wi];
        if d == 0 {
            return 0.0;
        }
        hits as f64 / sig.len() as f64 * d as f64
    }
}

/// Oracle over a bottom-k [`BottomKCollection`] (§IV-D): union-restricted
/// match counting, lossless shortcut for small sets.
pub struct OneHashOracle<'a> {
    col: &'a BottomKCollection,
    sizes: &'a [u32],
}

impl<'a> OneHashOracle<'a> {
    /// Wraps a collection plus the exact set sizes.
    #[inline]
    pub fn new(col: &'a BottomKCollection, sizes: &'a [u32]) -> Self {
        OneHashOracle { col, sizes }
    }
}

impl IntersectionOracle for OneHashOracle<'_> {
    #[inline]
    fn set_size(&self, v: VertexId) -> u32 {
        self.sizes[v as usize]
    }

    #[inline]
    fn estimate(&self, u: VertexId, v: VertexId) -> f64 {
        self.col.estimate_intersection(u as usize, v as usize)
    }

    #[inline]
    fn jaccard(&self, u: VertexId, v: VertexId) -> f64 {
        self.col.estimate_jaccard(u as usize, v as usize)
    }

    #[inline]
    fn estimate_vs_members(&self, w: VertexId, members: &[u32]) -> f64 {
        let wi = w as usize;
        let sample = self.col.sample(wi);
        let d = self.sizes[wi] as usize;
        if sample.is_empty() || d == 0 {
            return 0.0;
        }
        let hits = sample
            .iter()
            .filter(|&&x| members.binary_search(&x).is_ok())
            .count();
        if d <= self.col.k() {
            hits as f64 // lossless sample: exact
        } else {
            hits as f64 * d as f64 / self.col.k() as f64
        }
    }
}

/// Oracle over a [`KmvCollection`] (§IX): the low-variance
/// union-membership estimator. Stores hash values, so it cannot answer
/// explicit-member queries (4-clique counting rejects it).
pub struct KmvOracle<'a> {
    col: &'a KmvCollection,
    sizes: &'a [u32],
}

impl<'a> KmvOracle<'a> {
    /// Wraps a collection plus the exact set sizes.
    #[inline]
    pub fn new(col: &'a KmvCollection, sizes: &'a [u32]) -> Self {
        KmvOracle { col, sizes }
    }
}

impl IntersectionOracle for KmvOracle<'_> {
    #[inline]
    fn set_size(&self, v: VertexId) -> u32 {
        self.sizes[v as usize]
    }

    #[inline]
    fn estimate(&self, u: VertexId, v: VertexId) -> f64 {
        self.col.estimate_intersection(u as usize, v as usize)
    }
}

/// Oracle over a [`HyperLogLogCollection`] — the §X "beyond BF and MH"
/// representation, reachable end-to-end through
/// [`crate::Representation::Hll`]. Intersection by inclusion–exclusion
/// against the exact sizes; like KMV it stores no elements, so
/// explicit-member queries are rejected.
pub struct HllOracle<'a> {
    col: &'a HyperLogLogCollection,
    sizes: &'a [u32],
}

impl<'a> HllOracle<'a> {
    /// Wraps a collection plus the exact set sizes.
    #[inline]
    pub fn new(col: &'a HyperLogLogCollection, sizes: &'a [u32]) -> Self {
        HllOracle { col, sizes }
    }
}

impl IntersectionOracle for HllOracle<'_> {
    #[inline]
    fn set_size(&self, v: VertexId) -> u32 {
        self.sizes[v as usize]
    }

    #[inline]
    fn estimate(&self, u: VertexId, v: VertexId) -> f64 {
        let (i, j) = (u as usize, v as usize);
        self.col
            .estimate_intersection(i, j, self.sizes[i] as usize, self.sizes[j] as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_graph::gen;

    #[test]
    fn exact_oracle_matches_direct_intersection() {
        let g = gen::kronecker(8, 8, 3);
        let o = ExactOracle::new(&g);
        for (u, v) in g.edges().take(200) {
            let want = intersect_card(g.neighbors(u), g.neighbors(v)) as f64;
            assert_eq!(o.estimate(u, v), want);
            assert_eq!(o.set_size(u) as usize, g.degree(u));
        }
    }

    #[test]
    fn exact_oracle_row_matches_pairwise() {
        let g = gen::erdos_renyi_gnm(100, 1500, 5);
        let dag = pg_graph::orient_by_degree(&g);
        let o = ExactOracle::new(&dag);
        let mut row = Vec::new();
        for v in 0..g.num_vertices() as u32 {
            let np = dag.neighbors_plus(v);
            o.estimate_row(v, np, &mut row);
            assert_eq!(row.len(), np.len());
            for (t, &u) in np.iter().enumerate() {
                assert_eq!(row[t], o.estimate(v, u));
            }
        }
    }

    #[test]
    fn exact_oracle_jaccard_matches_definition() {
        let g = gen::kronecker(7, 8, 1);
        let o = ExactOracle::new(&g);
        for (u, v) in g.edges().take(100) {
            let inter = intersect_card(g.neighbors(u), g.neighbors(v)) as f64;
            let union = (g.degree(u) + g.degree(v)) as f64 - inter;
            let want = if union <= 0.0 { 0.0 } else { inter / union };
            assert!((o.jaccard(u, v) - want).abs() < 1e-12);
        }
    }

    #[test]
    fn bloom_row_path_is_bit_identical_to_pairwise() {
        let g = gen::erdos_renyi_gnm(150, 3000, 9);
        let sets: Vec<&[u32]> = (0..g.num_vertices())
            .map(|v| g.neighbors(v as u32))
            .collect();
        let col = BloomCollection::build(sets.len(), 512, 2, 7, |i| sets[i]);
        let sizes: Vec<u32> = sets.iter().map(|s| s.len() as u32).collect();
        let us: Vec<u32> = (0..g.num_vertices() as u32).collect();
        let mut row = Vec::new();
        fn check<S: BloomStrategy>(
            col: &BloomCollection,
            sizes: &[u32],
            us: &[u32],
            row: &mut Vec<f64>,
        ) {
            let o = BloomOracle::<S>::new(col, sizes);
            for v in 0..sizes.len() as u32 {
                o.estimate_row(v, us, row);
                for (t, &u) in us.iter().enumerate() {
                    assert_eq!(row[t], o.estimate(v, u), "v={v} u={u}");
                }
            }
        }
        check::<BloomAnd>(&col, &sizes, &us, &mut row);
        check::<BloomLimit>(&col, &sizes, &us, &mut row);
        check::<BloomOr>(&col, &sizes, &us, &mut row);
    }

    #[test]
    #[should_panic(expected = "explicit member list")]
    fn kmv_oracle_rejects_member_queries() {
        let sets = [vec![1u32, 2, 3]];
        let col = KmvCollection::build(1, 8, 1, |i| &sets[i][..]);
        let sizes = [3u32];
        KmvOracle::new(&col, &sizes).estimate_vs_members(0, &[1, 2]);
    }
}
