//! The monomorphized intersection-oracle layer.
//!
//! The paper's thesis (§IV–V) is that graph mining is a hot loop of
//! pairwise set-intersection estimates with the *representation* swappable
//! underneath: exact CSR adjacency, Bloom filters under three estimators,
//! k-hash MinHash, bottom-k MinHash, KMV, HyperLogLog. This module turns
//! that thesis into the type system: every representation implements
//! [`IntersectionOracle`], every algorithm is written **once** against a
//! generic `O: IntersectionOracle`, and the representation dispatch happens
//! exactly once per algorithm call — [`crate::ProbGraph::with_oracle`]
//! matches the store enum a single time and hands the monomorphized kernel
//! a concrete oracle, so the per-edge loop contains zero enum branching.
//!
//! Adding a new representation = implementing this trait and one
//! `with_oracle` arm; every algorithm (triangles, 4-cliques, clustering,
//! clustering coefficients, link prediction, similarity) picks it up for
//! free.

use crate::intersect::intersect_card;
use pg_graph::{CsrGraph, OrientedDag, VertexId};
use pg_sketch::bitvec::{and_count_words, and_count_words_multi};
use pg_sketch::{
    estimators, BloomCollectionIn, BottomKCollectionIn, CountingBloomCollectionIn,
    HyperLogLogCollection, HyperLogLogCollectionIn, KmvCollectionIn, MinHashCollectionIn,
};
use std::marker::PhantomData;

/// `J = I / (|X| + |Y| − I)` clamped to `[0, 1]`, with the two-empty-sets
/// convention `J = 0` — the one place the Jaccard transform lives, so the
/// pairwise default and the row-batched default are bit-identical.
#[inline]
pub fn jaccard_from_intersection(nx: f64, ny: f64, inter: f64) -> f64 {
    let union = nx + ny - inter;
    if union <= 0.0 {
        // Degenerate: both empty ⇒ similarity 0 by convention.
        if nx + ny == 0.0 {
            0.0
        } else {
            1.0
        }
    } else {
        (inter / union).clamp(0.0, 1.0)
    }
}

/// Shapes a reusable row buffer to `n` slots.
///
/// **Reuse contract:** kernels keep one scratch `Vec<f64>` per worker and
/// pass it to every [`IntersectionOracle::estimate_row`] /
/// [`IntersectionOracle::jaccard_row`] call; the buffer grows to the
/// widest row once and is then reused allocation-free. Implementations
/// write through `&mut [f64]` ([`IntersectionOracle::estimate_row_into`])
/// and *cannot* allocate; this wrapper is the only place the buffer may
/// grow, and it debug-asserts the buffer is not reallocated when its
/// capacity already suffices.
#[inline]
fn prepare_row_buf(out: &mut Vec<f64>, n: usize) {
    let cap = out.capacity();
    let ptr = out.as_ptr();
    if n <= out.len() {
        // Shrinking a warm buffer writes nothing; every slot is
        // overwritten by the row kernel.
        out.truncate(n);
    } else {
        out.resize(n, 0.0);
    }
    debug_assert!(
        cap < n || std::ptr::eq(ptr, out.as_ptr()),
        "row buffer reallocated despite sufficient capacity — \
         reuse one scratch Vec per worker, do not rebuild it per vertex"
    );
}

/// A pairwise set-intersection estimator over an indexed family of sets
/// (vertex neighborhoods `N_v` or oriented out-neighborhoods `N⁺_v`).
///
/// The contract mirrors the blue operations of the paper's listings:
/// [`estimate`](Self::estimate) replaces `|N_u ∩ N_v|`,
/// [`jaccard`](Self::jaccard) replaces `J(N_u, N_v)`, and
/// [`estimate_vs_members`](Self::estimate_vs_members) replaces
/// `|N_w ∩ C|` against an ad-hoc explicit set `C` (the 4-clique inner
/// operation). Exact adjacency is just another oracle, which is what lets
/// each algorithm keep a single body for its exact and approximate forms.
pub trait IntersectionOracle: Sync {
    /// Exact size of set `v` (degrees are free in CSR; every estimator
    /// that needs sizes uses the exact ones, as the paper's do).
    fn set_size(&self, v: VertexId) -> u32;

    /// `|N_u ∩ N_v|̂` — possibly negative for bias-corrected estimators;
    /// kernels clamp at their accumulation site.
    fn estimate(&self, u: VertexId, v: VertexId) -> f64;

    /// Slice-based batched row estimation: `out[t] = estimate(v, us[t])`,
    /// with `out.len() == us.len()` guaranteed by the caller.
    ///
    /// This is the hook oracles override — it takes a plain slice, so an
    /// implementation *cannot* allocate per row. Every real oracle pins
    /// its source-side state (the Bloom word window and cached popcount,
    /// the MinHash signature, the bottom-k sample, the KMV sketch, the
    /// HLL register window, the exact adjacency row) once per call and
    /// sweeps the destinations with multi-lane fused kernels where the
    /// representation has one. Results are bit-identical to the pairwise
    /// [`estimate`](Self::estimate), per destination.
    #[inline]
    fn estimate_row_into(&self, v: VertexId, us: &[VertexId], out: &mut [f64]) {
        debug_assert_eq!(us.len(), out.len());
        for (o, &u) in out.iter_mut().zip(us) {
            *o = self.estimate(v, u);
        }
    }

    /// Batched row estimation into a reusable buffer:
    /// `out[t] = estimate(v, us[t])`.
    ///
    /// Kernels that sweep a whole neighborhood per vertex should prefer
    /// this over pairwise [`estimate`](Self::estimate) calls. `out` is a
    /// worker-local scratch vector under the reuse contract: it is
    /// resized (never shrunk below capacity) to `us.len()` here — the
    /// **only** place the buffer may grow — and implementations then
    /// write through the slice hook
    /// [`estimate_row_into`](Self::estimate_row_into), so a warm buffer
    /// is reused allocation-free; debug builds assert it.
    #[inline]
    fn estimate_row(&self, v: VertexId, us: &[VertexId], out: &mut Vec<f64>) {
        prepare_row_buf(out, us.len());
        self.estimate_row_into(v, us, out);
    }

    /// `Ĵ(N_u, N_v)`, clamped to `[0, 1]`.
    ///
    /// The default derives it from [`estimate`](Self::estimate) and the
    /// exact sizes via [`jaccard_from_intersection`]; MinHash oracles
    /// override with their native Jaccard estimators.
    #[inline]
    fn jaccard(&self, u: VertexId, v: VertexId) -> f64 {
        jaccard_from_intersection(
            self.set_size(u) as f64,
            self.set_size(v) as f64,
            self.estimate(u, v),
        )
    }

    /// Slice-based batched row Jaccard: `out[t] = jaccard(v, us[t])`.
    ///
    /// The default runs [`estimate_row_into`](Self::estimate_row_into)
    /// and applies [`jaccard_from_intersection`] in place — bit-identical
    /// to the default pairwise [`jaccard`](Self::jaccard). Oracles with
    /// native Jaccard estimators (k-hash, bottom-k) override.
    #[inline]
    fn jaccard_row_into(&self, v: VertexId, us: &[VertexId], out: &mut [f64]) {
        self.estimate_row_into(v, us, out);
        let nv = self.set_size(v) as f64;
        for (o, &u) in out.iter_mut().zip(us) {
            *o = jaccard_from_intersection(nv, self.set_size(u) as f64, *o);
        }
    }

    /// Batched row Jaccard into a reusable buffer — same reuse contract
    /// as [`estimate_row`](Self::estimate_row).
    #[inline]
    fn jaccard_row(&self, v: VertexId, us: &[VertexId], out: &mut Vec<f64>) {
        prepare_row_buf(out, us.len());
        self.jaccard_row_into(v, us, out);
    }

    /// `|N_w ∩ C|̂` against an explicit **sorted** element list `C` with no
    /// prebuilt sketch (Listing 2's inner operation). Exact adjacency
    /// intersects directly; Bloom answers membership queries; MinHash
    /// counts sample hits. Representations storing hash values instead of
    /// elements (KMV, HLL) cannot answer this and panic loudly rather than
    /// return a silently wrong number — exactly as the paper, which only
    /// evaluates BF and MH on clique counting.
    fn estimate_vs_members(&self, w: VertexId, members: &[u32]) -> f64 {
        let _ = (w, members);
        panic!(
            "this representation stores hash values, not elements, and cannot \
             estimate against an explicit member list (use exact, Bloom, or MinHash)"
        )
    }

    /// True when one [`estimate`](Self::estimate) call costs `O(d)` rather
    /// than `O(sketch)` — the exact oracle. Kernels use this to pick a
    /// degree-power scheduling grain matching their true work profile.
    #[inline]
    fn degree_scaled_cost(&self) -> bool {
        false
    }

    /// Bytes of one destination window (filter words, register block) when
    /// the oracle's destinations live in a flat array that a blocked sweep
    /// can tile into cache-resident destination ranges; `None` when there
    /// is no such array (exact CSR rows have variable length) or tiling is
    /// not profitable for the representation. The tiling planner
    /// ([`crate::grain::plan_tiles`]) consumes this to decide between the
    /// blocked and the plain row-sweep traversal.
    #[inline]
    fn dest_window_bytes(&self) -> Option<usize> {
        None
    }

    /// Blocked batched estimation over one (source-batch × destination-tile)
    /// block: for each batch slot `s`, `us[seg_offsets[s]..seg_offsets[s+1]]`
    /// holds source `sources[s]`'s in-tile destinations, and the matching
    /// `out` range receives `estimate(sources[s], u)` per destination —
    /// bit-identical to [`estimate_row_into`](Self::estimate_row_into) over
    /// the same segments, which is exactly what the default does (so every
    /// oracle is block-correct for free). Tiled overrides (Bloom, and CBF
    /// via its read view) re-pin each source and sweep the cache-resident
    /// tile with the tiled kernels instead.
    #[inline]
    fn estimate_block_into(
        &self,
        sources: &[VertexId],
        seg_offsets: &[usize],
        us: &[VertexId],
        out: &mut [f64],
    ) {
        debug_assert_eq!(seg_offsets.len(), sources.len() + 1);
        debug_assert_eq!(us.len(), out.len());
        for (s, &v) in sources.iter().enumerate() {
            let (lo, hi) = (seg_offsets[s], seg_offsets[s + 1]);
            self.estimate_row_into(v, &us[lo..hi], &mut out[lo..hi]);
        }
    }

    /// Blocked batched Jaccard — segment layout as
    /// [`estimate_block_into`](Self::estimate_block_into). The default
    /// loops [`jaccard_row_into`](Self::jaccard_row_into) per segment (not
    /// the estimate block + transform), so oracles with native Jaccard row
    /// kernels (k-hash, 1-hash) stay bit-identical under tiling.
    #[inline]
    fn jaccard_block_into(
        &self,
        sources: &[VertexId],
        seg_offsets: &[usize],
        us: &[VertexId],
        out: &mut [f64],
    ) {
        debug_assert_eq!(seg_offsets.len(), sources.len() + 1);
        debug_assert_eq!(us.len(), out.len());
        for (s, &v) in sources.iter().enumerate() {
            let (lo, hi) = (seg_offsets[s], seg_offsets[s + 1]);
            self.jaccard_row_into(v, &us[lo..hi], &mut out[lo..hi]);
        }
    }

    /// Blocked estimation into a reusable buffer — the block-level analog
    /// of [`estimate_row`](Self::estimate_row), under the same
    /// truncate-don't-zero reuse contract: one scratch `Vec<f64>` per
    /// worker grows to the widest block once, then every later block
    /// reuses it allocation-free (debug-asserted).
    #[inline]
    fn estimate_block(
        &self,
        sources: &[VertexId],
        seg_offsets: &[usize],
        us: &[VertexId],
        out: &mut Vec<f64>,
    ) {
        prepare_row_buf(out, us.len());
        self.estimate_block_into(sources, seg_offsets, us, out);
    }

    /// Blocked Jaccard into a reusable buffer — same contract as
    /// [`estimate_block`](Self::estimate_block).
    #[inline]
    fn jaccard_block(
        &self,
        sources: &[VertexId],
        seg_offsets: &[usize],
        us: &[VertexId],
        out: &mut Vec<f64>,
    ) {
        prepare_row_buf(out, us.len());
        self.jaccard_block_into(sources, seg_offsets, us, out);
    }
}

/// The streaming extension of the oracle layer: in-place sketch updates
/// for evolving graphs (the ROADMAP's "dynamic / streaming sketches"
/// item, now closed under deletion for invertible representations).
///
/// Where [`IntersectionOracle`] is the read path — borrowed views over
/// built collections — `MutableOracle` is the write path, implemented
/// directly by the owning sketch collections (and by
/// [`crate::ProbGraph`], which also maintains the exact set sizes). Each
/// representation absorbs an element in place:
///
/// * **Bloom** sets its `b` bits and bumps the cached popcount — filters
///   are naturally insert-only;
/// * **Counting Bloom** increments its `b` bucket counters and maintains
///   the derived bit view (counter > 0 ⇔ bit set) — the one
///   representation whose update is *invertible*, so it also implements
///   the `remove_*` family below;
/// * **HLL** takes register-wise maxima — naturally insert-only;
/// * **k-hash MinHash** takes per-slot minima, recovering each slot's
///   current best hash once per batch (the collection stores elements,
///   not hashes);
/// * **KMV and bottom-k** maintain a bounded max-heap behind their
///   sorted-slice views — `O(log k)` per element — and re-sort once per
///   batch, before the next row sweep reads the slices.
///
/// Every update is equivalent to a from-scratch rebuild over the
/// surviving set (bit-identical sketches for Bloom/counting-Bloom/
/// k-hash/HLL, estimator-identical for KMV/bottom-k), which
/// `tests/streaming_equivalence.rs` pins differentially. Callers must
/// not insert an edge that is already present, and must only remove
/// edges that are: sketches tolerate a double insert (min/max/bit
/// updates are idempotent), but counting-Bloom counters and the recorded
/// set sizes would diverge from a rebuild.
pub trait MutableOracle {
    /// Absorbs element `x` into the sketch of set `v`, in place.
    fn insert_into(&mut self, v: VertexId, x: u32);

    /// Batched per-set insert: absorbs all of `xs` into set `v`.
    ///
    /// Implementations hoist per-set state (the Bloom word window, the
    /// recovered MinHash slot hashes, the bottom-k/KMV heap) once per
    /// call, so callers should group updates by source vertex — exactly
    /// what [`crate::ProbGraph::apply_batch`] does.
    fn insert_into_many(&mut self, v: VertexId, xs: &[u32]) {
        for &x in xs {
            self.insert_into(v, x);
        }
    }

    /// Inserts the undirected edge `{u, v}`: `v` into `N_u`'s sketch and
    /// `u` into `N_v`'s.
    fn insert_edge(&mut self, u: VertexId, v: VertexId) {
        self.insert_into(u, v);
        self.insert_into(v, u);
    }

    /// Removes element `x` from the sketch of set `v`, in place. `x`
    /// must have been inserted (sketches cannot verify membership, so a
    /// bogus removal silently corrupts shared state — the counting-Bloom
    /// implementation debug-asserts what it can).
    ///
    /// The default panics loudly: most representations' updates are not
    /// invertible. Check [`MutableOracle::remove_supported`] before
    /// routing deletions at a store.
    fn remove_from(&mut self, v: VertexId, x: u32) {
        let _ = (v, x);
        panic!(
            "this representation does not support removals \
             (remove_supported() == false); use Representation::CountingBloom"
        )
    }

    /// Batched per-set removal: removes all of `xs` from set `v`. Same
    /// per-set-state hoisting contract as
    /// [`MutableOracle::insert_into_many`]; callers group removals by
    /// source vertex ([`crate::ProbGraph::remove_batch`] does).
    fn remove_from_many(&mut self, v: VertexId, xs: &[u32]) {
        for &x in xs {
            self.remove_from(v, x);
        }
    }

    /// Removes the undirected edge `{u, v}`: `v` out of `N_u`'s sketch
    /// and `u` out of `N_v`'s.
    fn remove_edge(&mut self, u: VertexId, v: VertexId) {
        self.remove_from(u, v);
        self.remove_from(v, u);
    }

    /// True when the representation supports removals. Counting Bloom
    /// filters do (decrementable counters); the other five do not —
    /// plain Bloom bits and HLL register maxima are not invertible, and
    /// the MinHash/bottom-k/KMV samples evict without remembering what
    /// they evicted.
    fn remove_supported(&self) -> bool {
        false
    }

    /// Non-panicking form of [`MutableOracle::remove_from`]: checks
    /// [`MutableOracle::remove_supported`] first and reports an
    /// unsupported store as an error instead of unwinding — the right
    /// entry point when the representation is picked at runtime (config
    /// files, loaded snapshots).
    fn try_remove_from(&mut self, v: VertexId, x: u32) -> Result<(), UnsupportedOperation> {
        if !self.remove_supported() {
            return Err(UnsupportedOperation::removal());
        }
        self.remove_from(v, x);
        Ok(())
    }

    /// Non-panicking form of [`MutableOracle::remove_from_many`]. Either
    /// the whole batch applies or nothing does.
    fn try_remove_from_many(
        &mut self,
        v: VertexId,
        xs: &[u32],
    ) -> Result<(), UnsupportedOperation> {
        if !self.remove_supported() {
            return Err(UnsupportedOperation::removal());
        }
        self.remove_from_many(v, xs);
        Ok(())
    }

    /// Non-panicking form of [`MutableOracle::remove_edge`]. Either both
    /// endpoints update or neither does.
    fn try_remove_edge(&mut self, u: VertexId, v: VertexId) -> Result<(), UnsupportedOperation> {
        if !self.remove_supported() {
            return Err(UnsupportedOperation::removal());
        }
        self.remove_edge(u, v);
        Ok(())
    }
}

/// A mutation was routed at a representation that cannot perform it —
/// the typed counterpart of the loud panic in
/// [`MutableOracle::remove_from`], returned by the `try_remove_*` family.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UnsupportedOperation {
    /// The mutation that was refused.
    pub operation: &'static str,
}

impl UnsupportedOperation {
    /// The removal refusal every non-invertible store returns.
    pub(crate) fn removal() -> Self {
        UnsupportedOperation {
            operation: "edge removal (remove_supported() == false); \
                        use Representation::CountingBloom",
        }
    }
}

impl core::fmt::Display for UnsupportedOperation {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "unsupported operation: {}", self.operation)
    }
}

impl std::error::Error for UnsupportedOperation {}

impl MutableOracle for BloomCollectionIn<'_> {
    #[inline]
    fn insert_into(&mut self, v: VertexId, x: u32) {
        self.insert(v as usize, x);
    }

    #[inline]
    fn insert_into_many(&mut self, v: VertexId, xs: &[u32]) {
        self.insert_batch(v as usize, xs);
    }
}

impl MutableOracle for CountingBloomCollectionIn<'_> {
    #[inline]
    fn insert_into(&mut self, v: VertexId, x: u32) {
        self.insert(v as usize, x);
    }

    #[inline]
    fn insert_into_many(&mut self, v: VertexId, xs: &[u32]) {
        self.insert_batch(v as usize, xs);
    }

    #[inline]
    fn remove_from(&mut self, v: VertexId, x: u32) {
        self.remove(v as usize, x);
    }

    #[inline]
    fn remove_from_many(&mut self, v: VertexId, xs: &[u32]) {
        self.remove_batch(v as usize, xs);
    }

    #[inline]
    fn remove_supported(&self) -> bool {
        true
    }
}

impl MutableOracle for MinHashCollectionIn<'_> {
    #[inline]
    fn insert_into(&mut self, v: VertexId, x: u32) {
        self.insert(v as usize, x);
    }

    #[inline]
    fn insert_into_many(&mut self, v: VertexId, xs: &[u32]) {
        self.insert_batch(v as usize, xs);
    }
}

impl MutableOracle for BottomKCollectionIn<'_> {
    #[inline]
    fn insert_into(&mut self, v: VertexId, x: u32) {
        self.insert(v as usize, x);
    }

    #[inline]
    fn insert_into_many(&mut self, v: VertexId, xs: &[u32]) {
        self.insert_batch(v as usize, xs);
    }
}

impl MutableOracle for KmvCollectionIn<'_> {
    #[inline]
    fn insert_into(&mut self, v: VertexId, x: u32) {
        self.insert(v as usize, x);
    }

    #[inline]
    fn insert_into_many(&mut self, v: VertexId, xs: &[u32]) {
        self.insert_batch(v as usize, xs);
    }
}

impl MutableOracle for HyperLogLogCollectionIn<'_> {
    #[inline]
    fn insert_into(&mut self, v: VertexId, x: u32) {
        self.insert(v as usize, x);
    }

    #[inline]
    fn insert_into_many(&mut self, v: VertexId, xs: &[u32]) {
        self.insert_batch(v as usize, xs);
    }
}

/// Rank-2 adapter for [`crate::ProbGraph::with_oracle`]: a closure cannot
/// be generic over the oracle type, so callers implement this one-method
/// trait instead (usually a tiny local struct capturing the kernel's other
/// arguments). `visit` is instantiated once per concrete oracle —
/// full monomorphization, dispatch hoisted out of the kernel.
pub trait OracleVisitor {
    /// The kernel's result type.
    type Output;
    /// Runs the kernel against one concrete, monomorphized oracle.
    fn visit<O: IntersectionOracle>(self, oracle: &O) -> Self::Output;
}

// ---------------------------------------------------------------------------
// Exact adjacency
// ---------------------------------------------------------------------------

/// Row access shared by the two exact set families: full neighborhoods of
/// a [`CsrGraph`] and oriented out-neighborhoods of an [`OrientedDag`].
pub trait AdjacencyRows: Sync {
    /// The sorted adjacency row of vertex `v`.
    fn adjacency_row(&self, v: VertexId) -> &[u32];
}

impl AdjacencyRows for CsrGraph {
    #[inline]
    fn adjacency_row(&self, v: VertexId) -> &[u32] {
        self.neighbors(v)
    }
}

impl AdjacencyRows for OrientedDag {
    #[inline]
    fn adjacency_row(&self, v: VertexId) -> &[u32] {
        self.neighbors_plus(v)
    }
}

/// The exact oracle: merge/galloping intersections over sorted adjacency
/// rows (Fig. 1 panel 2). Running a generic kernel with this oracle *is*
/// the tuned exact baseline.
#[derive(Clone, Copy)]
pub struct ExactOracle<'a, A: AdjacencyRows> {
    adj: &'a A,
}

impl<'a, A: AdjacencyRows> ExactOracle<'a, A> {
    /// Wraps an adjacency structure.
    #[inline]
    pub fn new(adj: &'a A) -> Self {
        ExactOracle { adj }
    }
}

impl<A: AdjacencyRows> IntersectionOracle for ExactOracle<'_, A> {
    #[inline]
    fn set_size(&self, v: VertexId) -> u32 {
        self.adj.adjacency_row(v).len() as u32
    }

    #[inline]
    fn estimate(&self, u: VertexId, v: VertexId) -> f64 {
        intersect_card(self.adj.adjacency_row(u), self.adj.adjacency_row(v)) as f64
    }

    #[inline]
    fn estimate_row_into(&self, v: VertexId, us: &[VertexId], out: &mut [f64]) {
        let nv = self.adj.adjacency_row(v);
        for (o, &u) in out.iter_mut().zip(us) {
            *o = intersect_card(nv, self.adj.adjacency_row(u)) as f64;
        }
    }

    #[inline]
    fn estimate_vs_members(&self, w: VertexId, members: &[u32]) -> f64 {
        intersect_card(self.adj.adjacency_row(w), members) as f64
    }

    #[inline]
    fn degree_scaled_cost(&self) -> bool {
        true
    }
}

// ---------------------------------------------------------------------------
// Bloom filters: one oracle type, three zero-sized estimator strategies
// ---------------------------------------------------------------------------

/// Which Bloom intersection estimator a [`BloomOracle`] applies, resolved
/// at *compile time*: each strategy is a zero-sized type, so
/// `BloomOracle<BloomAnd>`, `BloomOracle<BloomLimit>`, and
/// `BloomOracle<BloomOr>` monomorphize into three distinct branch-free
/// kernels instead of one kernel matching an estimator enum per edge.
pub trait BloomStrategy: Send + Sync + 'static {
    /// Pairwise estimate between stored filters `i` and `j`.
    fn estimate(col: &BloomCollectionIn<'_>, i: usize, j: usize, ni: u32, nj: u32) -> f64;

    /// The estimator tail applied to a precomputed `B_{X∩Y,1}`, with set
    /// `i`'s cached popcount and exact size already hoisted — the
    /// row-batch fast path: the multi-lane word-window kernel produces
    /// `and_ones` for 2 destinations per sweep, and this finishes each
    /// lane. Bit-identical to [`estimate`](Self::estimate) because every
    /// strategy's pairwise form is exactly AND-popcount + this tail.
    fn estimate_from_and_ones(
        col: &BloomCollectionIn<'_>,
        and_ones: usize,
        row_ones: usize,
        row_size: u32,
        j: usize,
        nj: u32,
    ) -> f64;

    /// The estimator tail evaluated at stratum `s`'s geometry (width and
    /// Swamidass curve) — the stratified row sweep's finisher. `row_ones`
    /// and `dest_ones` are the two filters' popcounts **at the comparison
    /// width**: the fold-returned popcounts when a filter was folded down,
    /// the cached raw popcounts otherwise. Every strategy's value is
    /// bit-identical to its pairwise [`estimate`](Self::estimate), whose
    /// cross-stratum path computes exactly these folded statistics.
    fn estimate_from_ones_at(
        col: &BloomCollectionIn<'_>,
        s: usize,
        and_ones: usize,
        row_ones: usize,
        dest_ones: usize,
        row_size: u32,
        nj: u32,
    ) -> f64;
}

/// `|X∩Y|̂_AND` (Eq. 2) — the paper's default.
pub struct BloomAnd;

/// `|X∩Y|̂_L` (Eq. 4) — better on very dense graphs (§VIII-B).
pub struct BloomLimit;

/// `|X∩Y|̂_OR` (Eq. 29) — the prior-work estimator, for comparison.
pub struct BloomOr;

impl BloomStrategy for BloomAnd {
    #[inline]
    fn estimate(col: &BloomCollectionIn<'_>, i: usize, j: usize, _ni: u32, _nj: u32) -> f64 {
        col.estimate_and(i, j)
    }

    #[inline]
    fn estimate_from_and_ones(
        col: &BloomCollectionIn<'_>,
        and_ones: usize,
        _row_ones: usize,
        _row_size: u32,
        _j: usize,
        _nj: u32,
    ) -> f64 {
        col.estimate_and_from_ones(and_ones)
    }

    #[inline]
    fn estimate_from_ones_at(
        col: &BloomCollectionIn<'_>,
        s: usize,
        and_ones: usize,
        _row_ones: usize,
        _dest_ones: usize,
        _row_size: u32,
        _nj: u32,
    ) -> f64 {
        col.estimate_and_from_ones_at(s, and_ones)
    }
}

impl BloomStrategy for BloomLimit {
    #[inline]
    fn estimate(col: &BloomCollectionIn<'_>, i: usize, j: usize, _ni: u32, _nj: u32) -> f64 {
        col.estimate_limit(i, j)
    }

    #[inline]
    fn estimate_from_and_ones(
        col: &BloomCollectionIn<'_>,
        and_ones: usize,
        _row_ones: usize,
        _row_size: u32,
        _j: usize,
        _nj: u32,
    ) -> f64 {
        estimators::bf_intersect_limit(and_ones, col.num_hashes())
    }

    #[inline]
    fn estimate_from_ones_at(
        col: &BloomCollectionIn<'_>,
        _s: usize,
        and_ones: usize,
        _row_ones: usize,
        _dest_ones: usize,
        _row_size: u32,
        _nj: u32,
    ) -> f64 {
        // Eq. 4 depends only on `B_{X∩Y,1}` and `b` — width-free.
        estimators::bf_intersect_limit(and_ones, col.num_hashes())
    }
}

impl BloomStrategy for BloomOr {
    #[inline]
    fn estimate(col: &BloomCollectionIn<'_>, i: usize, j: usize, ni: u32, nj: u32) -> f64 {
        col.estimate_or(i, j, ni as usize, nj as usize)
    }

    #[inline]
    fn estimate_from_and_ones(
        col: &BloomCollectionIn<'_>,
        and_ones: usize,
        row_ones: usize,
        row_size: u32,
        j: usize,
        nj: u32,
    ) -> f64 {
        let or_ones = row_ones + col.count_ones(j) - and_ones;
        (row_size + nj) as f64 - col.estimate_and_from_ones(or_ones)
    }

    #[inline]
    fn estimate_from_ones_at(
        col: &BloomCollectionIn<'_>,
        s: usize,
        and_ones: usize,
        row_ones: usize,
        dest_ones: usize,
        row_size: u32,
        nj: u32,
    ) -> f64 {
        let or_ones = row_ones + dest_ones - and_ones;
        (row_size + nj) as f64 - col.estimate_and_from_ones_at(s, or_ones)
    }
}

/// Oracle over a [`BloomCollection`], specialized per estimator via the
/// zero-sized [`BloomStrategy`] parameter.
pub struct BloomOracle<'a, S: BloomStrategy> {
    col: &'a BloomCollectionIn<'a>,
    sizes: &'a [u32],
    _strategy: PhantomData<S>,
}

impl<'a, S: BloomStrategy> BloomOracle<'a, S> {
    /// Wraps a collection plus the exact set sizes recorded at build time.
    #[inline]
    pub fn new(col: &'a BloomCollectionIn<'a>, sizes: &'a [u32]) -> Self {
        BloomOracle {
            col,
            sizes,
            _strategy: PhantomData,
        }
    }

    /// Row sweep over a stratified collection: destinations are grouped
    /// into runs of equal stratum, each run compared at the narrower of
    /// the run's and the source's width. Cross-width runs read
    /// *precomputed* folded shadows from the lazily built
    /// [`pg_sketch::BloomFoldCache`] — the source's shadow when the run
    /// is narrower, the destinations' shadows when it is wider (the
    /// common case under degree orientation, where destination lists are
    /// hub-heavy) — so every run is an equal-width multi-lane window
    /// pass and the sweep does no per-destination folding at all.
    /// Values are bit-identical to the pairwise
    /// [`IntersectionOracle::estimate`], whose cross-stratum path folds
    /// the wider filter to exactly these shadow words.
    fn estimate_row_stratified(&self, v: VertexId, us: &[VertexId], out: &mut [f64]) {
        debug_assert_eq!(us.len(), out.len());
        let col = self.col;
        let st = col
            .strata()
            .expect("stratified sweep on a uniform collection");
        let widths = st.stratum_bits();
        let i = v as usize;
        let wi = col.bits_of(i);
        let si = col.stratum_of(i);
        let raw_row = col.words(i);
        let raw_ones = col.count_ones(i);
        let row_size = self.sizes[i];
        if widths.iter().all(|&w| w as usize >= wi) {
            // Narrowest-stratum source — the bulk of every row under a
            // skewed assignment. No destination is narrower, so the whole
            // row compares at the source's own width, and the fold
            // cache's dense base view holds every destination at exactly
            // that width in the flat uniform stride: one branch-free
            // multi-lane pass with the uniform kernel's indexing, no run
            // grouping (runs in hub-heavy destination lists are too
            // short to fill lanes) and no per-destination geometry
            // resolution.
            return self.sweep_base_lanes(raw_row, raw_ones, row_size, si, us, out);
        }
        // Wider source: the comparison width varies with the destination's
        // stratum, so walk the row in runs of equal destination stratum
        // and dispatch each run as one equal-width multi-lane group.
        let mut t = 0;
        while t < us.len() {
            let sj = col.stratum_of(us[t] as usize);
            let mut e = t + 1;
            while e < us.len() && col.stratum_of(us[e] as usize) == sj {
                e += 1;
            }
            let wj = widths[sj] as usize;
            if wj == wi {
                // Equal widths (same stratum or an equal-width one): raw
                // windows, tail at the source's stratum — the pairwise
                // tie-break.
                self.sweep_lanes(raw_row, raw_ones, row_size, si, &us[t..e], &mut out[t..e]);
            } else if wj < wi {
                let (row, ones) = self.fold_cache().shadow(i, si, sj);
                self.sweep_lanes(row, ones, row_size, sj, &us[t..e], &mut out[t..e]);
            } else {
                self.sweep_shadow_lanes(
                    raw_row,
                    raw_ones,
                    row_size,
                    si,
                    sj,
                    &us[t..e],
                    &mut out[t..e],
                );
            }
            t = e;
        }
    }

    /// The collection's lazily built fold-shadow cache (see
    /// [`pg_sketch::BloomFoldCache`]): shared across oracles, so the
    /// `O(store)` fold amortizes over the collection's (or epoch
    /// snapshot's) lifetime, not one `with_oracle` dispatch.
    #[inline]
    fn fold_cache(&self) -> &pg_sketch::BloomFoldCache {
        self.col.fold_cache()
    }

    /// Flat multi-lane sweep for a narrowest-stratum source over the fold
    /// cache's dense base view: every destination window sits at
    /// `j * base_words` in the view (equal-width filters are verbatim
    /// copies, wider ones pre-folded), so the loop is the uniform sweep's
    /// 4/2/1 lane split with plain strided indexing. Values are
    /// bit-identical to the run-grouped path (the lane kernels are exact
    /// and the view holds exactly the fold the pairwise path computes).
    fn sweep_base_lanes(
        &self,
        row: &[u64],
        row_ones: usize,
        row_size: u32,
        si: usize,
        us: &[VertexId],
        out: &mut [f64],
    ) {
        let col = self.col;
        let cache = self.fold_cache();
        let finish = |and_ones: usize, j: usize| {
            S::estimate_from_ones_at(
                col,
                si,
                and_ones,
                row_ones,
                cache.base_ones(j),
                row_size,
                self.sizes[j],
            )
        };
        let mut t = 0;
        while t + 4 <= us.len() {
            let js = [
                us[t] as usize,
                us[t + 1] as usize,
                us[t + 2] as usize,
                us[t + 3] as usize,
            ];
            let ones = and_count_words_multi(row, js.map(|j| cache.base_window(j)));
            for l in 0..4 {
                out[t + l] = finish(ones[l], js[l]);
            }
            t += 4;
        }
        if t + 2 <= us.len() {
            let js = [us[t] as usize, us[t + 1] as usize];
            let ones = and_count_words_multi(row, js.map(|j| cache.base_window(j)));
            for l in 0..2 {
                out[t + l] = finish(ones[l], js[l]);
            }
            t += 2;
        }
        if t < us.len() {
            let j = us[t] as usize;
            out[t] = finish(and_count_words(row, cache.base_window(j)), j);
        }
    }

    /// Multi-lane sweep of one wider-stratum destination run: the raw
    /// pinned source `row` against the destinations' precomputed folded
    /// shadows at the source's stratum `si` — the shadow-window twin of
    /// [`BloomOracle::sweep_lanes`], same 4/2/1 lane split.
    #[allow(clippy::too_many_arguments)]
    fn sweep_shadow_lanes(
        &self,
        row: &[u64],
        row_ones: usize,
        row_size: u32,
        si: usize,
        sj: usize,
        us: &[VertexId],
        out: &mut [f64],
    ) {
        let col = self.col;
        let cache = self.fold_cache();
        let finish = |and_ones: usize, j: usize, dest_ones: usize| {
            S::estimate_from_ones_at(
                col,
                si,
                and_ones,
                row_ones,
                dest_ones,
                row_size,
                self.sizes[j],
            )
        };
        let mut t = 0;
        while t + 4 <= us.len() {
            let js = [
                us[t] as usize,
                us[t + 1] as usize,
                us[t + 2] as usize,
                us[t + 3] as usize,
            ];
            let sh = js.map(|j| cache.shadow(j, sj, si));
            let ones = and_count_words_multi(row, sh.map(|(w, _)| w));
            for l in 0..4 {
                out[t + l] = finish(ones[l], js[l], sh[l].1);
            }
            t += 4;
        }
        if t + 2 <= us.len() {
            let js = [us[t] as usize, us[t + 1] as usize];
            let sh = js.map(|j| cache.shadow(j, sj, si));
            let ones = and_count_words_multi(row, sh.map(|(w, _)| w));
            for l in 0..2 {
                out[t + l] = finish(ones[l], js[l], sh[l].1);
            }
            t += 2;
        }
        if t < us.len() {
            let j = us[t] as usize;
            let (w, dest_ones) = cache.shadow(j, sj, si);
            out[t] = finish(and_count_words(row, w), j, dest_ones);
        }
    }

    /// Multi-lane fused sweep of one same-width destination run: the
    /// (possibly folded) pinned source `row` against raw destination
    /// windows — four lanes, then two, then scalar, mirroring the uniform
    /// sweep's lane structure — with the estimator tails evaluated at
    /// stratum `s`'s geometry.
    fn sweep_lanes(
        &self,
        row: &[u64],
        row_ones: usize,
        row_size: u32,
        s: usize,
        us: &[VertexId],
        out: &mut [f64],
    ) {
        let col = self.col;
        let finish = |and_ones: usize, j: usize| {
            S::estimate_from_ones_at(
                col,
                s,
                and_ones,
                row_ones,
                col.count_ones(j),
                row_size,
                self.sizes[j],
            )
        };
        let mut t = 0;
        while t + 4 <= us.len() {
            let js = [
                us[t] as usize,
                us[t + 1] as usize,
                us[t + 2] as usize,
                us[t + 3] as usize,
            ];
            let ones = col.and_ones_multi(row, js);
            for l in 0..4 {
                out[t + l] = finish(ones[l], js[l]);
            }
            t += 4;
        }
        if t + 2 <= us.len() {
            let js = [us[t] as usize, us[t + 1] as usize];
            let ones = col.and_ones_multi(row, js);
            for l in 0..2 {
                out[t + l] = finish(ones[l], js[l]);
            }
            t += 2;
        }
        if t < us.len() {
            let j = us[t] as usize;
            out[t] = finish(and_count_words(row, col.words(j)), j);
        }
    }
}

impl<S: BloomStrategy> IntersectionOracle for BloomOracle<'_, S> {
    #[inline]
    fn set_size(&self, v: VertexId) -> u32 {
        self.sizes[v as usize]
    }

    #[inline]
    fn estimate(&self, u: VertexId, v: VertexId) -> f64 {
        let (i, j) = (u as usize, v as usize);
        S::estimate(self.col, i, j, self.sizes[i], self.sizes[j])
    }

    /// Multi-lane row sweep: the source word window, cached popcount, and
    /// exact size are pinned once; destinations go four per fused
    /// AND+popcount word-window pass (the estimator tails of a group stay
    /// adjacent so their table lookups pipeline), then a two-lane pass and
    /// a scalar pass mop up the ragged tail. Destination windows are
    /// prefetched a window-size-aware
    /// [`pg_sketch::bitvec::prefetch_distance`] ahead — but only when the
    /// destination store outgrows the probed L2: on a cache-resident store
    /// every window is already a hit and the prefetch ramp is pure
    /// instruction overhead (measurably slower than no prefetch at the
    /// scaled bench sizes). Out of cache, keeping ~4 KiB of fills in
    /// flight (rather than the old fixed one-group look-ahead) is where
    /// the remaining time goes.
    #[inline]
    fn estimate_row_into(&self, v: VertexId, us: &[VertexId], out: &mut [f64]) {
        debug_assert_eq!(us.len(), out.len());
        if self.col.strata().is_some() {
            // Variable-width destinations: the run-grouped stratified
            // sweep (folded pinned rows, same-width multi-lane runs).
            return self.estimate_row_stratified(v, us, out);
        }
        let i = v as usize;
        let row = self.col.words(i);
        let row_ones = self.col.count_ones(i);
        let row_size = self.sizes[i];
        let window_bytes = self.col.words_per_set() * 8;
        let dist = if window_bytes * self.sizes.len() <= pg_parallel::cache_topology().l2_bytes {
            0
        } else {
            pg_sketch::bitvec::prefetch_distance(window_bytes)
        };
        for &p in us.iter().take(dist.min(us.len())) {
            pg_sketch::bitvec::prefetch_slice(self.col.words(p as usize));
        }
        let mut t = 0;
        while t + 4 <= us.len() {
            if dist > 0 {
                for &p in us.iter().take((t + dist + 4).min(us.len())).skip(t + dist) {
                    pg_sketch::bitvec::prefetch_slice(self.col.words(p as usize));
                }
            }
            let js = [
                us[t] as usize,
                us[t + 1] as usize,
                us[t + 2] as usize,
                us[t + 3] as usize,
            ];
            let ones = self.col.and_ones_multi(row, js);
            for l in 0..4 {
                out[t + l] = S::estimate_from_and_ones(
                    self.col,
                    ones[l],
                    row_ones,
                    row_size,
                    js[l],
                    self.sizes[js[l]],
                );
            }
            t += 4;
        }
        if t + 2 <= us.len() {
            let js = [us[t] as usize, us[t + 1] as usize];
            let ones = self.col.and_ones_multi(row, js);
            for l in 0..2 {
                out[t + l] = S::estimate_from_and_ones(
                    self.col,
                    ones[l],
                    row_ones,
                    row_size,
                    js[l],
                    self.sizes[js[l]],
                );
            }
            t += 2;
        }
        if t < us.len() {
            let j = us[t] as usize;
            let ones = and_count_words(row, self.col.words(j));
            out[t] =
                S::estimate_from_and_ones(self.col, ones, row_ones, row_size, j, self.sizes[j]);
        }
    }

    #[inline]
    fn dest_window_bytes(&self) -> Option<usize> {
        if self.col.strata().is_some() {
            // No single window stride exists under per-stratum widths; the
            // tiling planner declines and kernels keep the plain row sweep.
            return None;
        }
        Some(self.col.words_per_set() * 8)
    }

    /// Tiled block sweep: each batch source re-pins its window state and
    /// runs the tiled kernel over its in-tile destination segment with
    /// software prefetch off — the whole point of the blocked schedule is
    /// that the destination tile is already cache-resident across the
    /// source batch, so per-segment prefetch would be pure instruction
    /// overhead on segments a few destinations long. While one segment is
    /// swept, the *next* source's word window is prefetched — the one fill
    /// the per-segment kernel cannot overlap itself. Values are
    /// bit-identical to [`IntersectionOracle::estimate_row_into`] over the
    /// same segments.
    #[inline]
    fn estimate_block_into(
        &self,
        sources: &[VertexId],
        seg_offsets: &[usize],
        us: &[VertexId],
        out: &mut [f64],
    ) {
        debug_assert_eq!(seg_offsets.len(), sources.len() + 1);
        debug_assert_eq!(us.len(), out.len());
        if self.col.strata().is_some() {
            // The tiled kernel needs the flat uniform stride (the planner
            // declines stratified stores via `dest_window_bytes`, but a
            // direct caller may still land here): per-segment row sweeps.
            for (s, &v) in sources.iter().enumerate() {
                let (lo, hi) = (seg_offsets[s], seg_offsets[s + 1]);
                self.estimate_row_into(v, &us[lo..hi], &mut out[lo..hi]);
            }
            return;
        }
        for (s, &v) in sources.iter().enumerate() {
            if let Some(&next) = sources.get(s + 1) {
                pg_sketch::bitvec::prefetch_slice(self.col.words(next as usize));
            }
            let (lo, hi) = (seg_offsets[s], seg_offsets[s + 1]);
            let i = v as usize;
            let row = self.col.words(i);
            let row_ones = self.col.count_ones(i);
            let row_size = self.sizes[i];
            let seg_us = &us[lo..hi];
            let seg_out = &mut out[lo..hi];
            self.col.and_ones_tiled(row, seg_us, 0, |t, ones| {
                let j = seg_us[t] as usize;
                seg_out[t] =
                    S::estimate_from_and_ones(self.col, ones, row_ones, row_size, j, self.sizes[j]);
            });
        }
    }

    #[inline]
    fn estimate_vs_members(&self, w: VertexId, members: &[u32]) -> f64 {
        // Membership queries: no false negatives, small fp inflation.
        let wi = w as usize;
        members
            .iter()
            .filter(|&&x| self.col.contains(wi, x))
            .count() as f64
    }
}

// ---------------------------------------------------------------------------
// MinHash (k-hash), bottom-k (1-hash), KMV, HyperLogLog
// ---------------------------------------------------------------------------

/// Oracle over a k-hash [`MinHashCollection`] (§IV-C): native Jaccard,
/// Eq. (5) intersection with exact sizes.
pub struct KHashOracle<'a> {
    col: &'a MinHashCollectionIn<'a>,
    sizes: &'a [u32],
}

impl<'a> KHashOracle<'a> {
    /// Wraps a collection plus the exact set sizes.
    #[inline]
    pub fn new(col: &'a MinHashCollectionIn<'a>, sizes: &'a [u32]) -> Self {
        KHashOracle { col, sizes }
    }
}

impl IntersectionOracle for KHashOracle<'_> {
    #[inline]
    fn set_size(&self, v: VertexId) -> u32 {
        self.sizes[v as usize]
    }

    #[inline]
    fn estimate(&self, u: VertexId, v: VertexId) -> f64 {
        let (i, j) = (u as usize, v as usize);
        self.col
            .estimate_intersection(i, j, self.sizes[i] as usize, self.sizes[j] as usize)
    }

    /// Multi-lane row sweep: the source signature and exact size are
    /// pinned once; destinations go two per fused compare sweep
    /// ([`MinHashCollection::matches_with_row_x2`] — `vpcmpeqd` against
    /// both destinations per source vector load on AVX-512), scalar
    /// pinned matching on the odd tail. Cross-stratum pairs compare (and
    /// divide by) the shared slot prefix `min(k_i, k_j)` — the narrower
    /// stratum's exact signature, by the hash family's prefix property.
    #[inline]
    fn estimate_row_into(&self, v: VertexId, us: &[VertexId], out: &mut [f64]) {
        let i = v as usize;
        let row = self.col.signature(i);
        let ni = self.sizes[i] as usize;
        let ki = self.col.k_of(i);
        let finish = |m: usize, j: usize| {
            estimators::jaccard_to_intersection(
                estimators::mh_jaccard(m, ki.min(self.col.k_of(j))),
                ni,
                self.sizes[j] as usize,
            )
        };
        let mut t = 0;
        while t + 2 <= us.len() {
            let (j0, j1) = (us[t] as usize, us[t + 1] as usize);
            let (m0, m1) = self.col.matches_with_row_x2(row, j0, j1);
            out[t] = finish(m0, j0);
            out[t + 1] = finish(m1, j1);
            t += 2;
        }
        if t < us.len() {
            let j = us[t] as usize;
            out[t] = finish(self.col.matches_with_row(row, j), j);
        }
    }

    #[inline]
    fn jaccard(&self, u: VertexId, v: VertexId) -> f64 {
        self.col.estimate_jaccard(u as usize, v as usize)
    }

    /// Native row Jaccard: same pinned two-lane matching as
    /// [`estimate_row_into`](IntersectionOracle::estimate_row_into), with
    /// the `Ĵ = matches/k` tail instead of the Eq. (5) transform.
    #[inline]
    fn jaccard_row_into(&self, v: VertexId, us: &[VertexId], out: &mut [f64]) {
        let row = self.col.signature(v as usize);
        let ki = self.col.k_of(v as usize);
        let mut t = 0;
        while t + 2 <= us.len() {
            let (j0, j1) = (us[t] as usize, us[t + 1] as usize);
            let (m0, m1) = self.col.matches_with_row_x2(row, j0, j1);
            out[t] = estimators::mh_jaccard(m0, ki.min(self.col.k_of(j0)));
            out[t + 1] = estimators::mh_jaccard(m1, ki.min(self.col.k_of(j1)));
            t += 2;
        }
        if t < us.len() {
            let j = us[t] as usize;
            out[t] =
                estimators::mh_jaccard(self.col.matches_with_row(row, j), ki.min(self.col.k_of(j)));
        }
    }

    #[inline]
    fn estimate_vs_members(&self, w: VertexId, members: &[u32]) -> f64 {
        // Each signature slot is a uniform-ish sample of the set; the hit
        // fraction estimates `|N_w ∩ C| / |N_w|`.
        let wi = w as usize;
        let sig = self.col.signature(wi);
        let hits = sig
            .iter()
            .filter(|&&x| members.binary_search(&x).is_ok())
            .count();
        let d = self.sizes[wi];
        if d == 0 {
            return 0.0;
        }
        hits as f64 / sig.len() as f64 * d as f64
    }
}

/// Oracle over a bottom-k [`BottomKCollection`] (§IV-D): union-restricted
/// match counting, lossless shortcut for small sets.
pub struct OneHashOracle<'a> {
    col: &'a BottomKCollectionIn<'a>,
    sizes: &'a [u32],
}

impl<'a> OneHashOracle<'a> {
    /// Wraps a collection plus the exact set sizes.
    #[inline]
    pub fn new(col: &'a BottomKCollectionIn<'a>, sizes: &'a [u32]) -> Self {
        OneHashOracle { col, sizes }
    }
}

impl IntersectionOracle for OneHashOracle<'_> {
    #[inline]
    fn set_size(&self, v: VertexId) -> u32 {
        self.sizes[v as usize]
    }

    #[inline]
    fn estimate(&self, u: VertexId, v: VertexId) -> f64 {
        self.col.estimate_intersection(u as usize, v as usize)
    }

    /// Row sweep with the source sample, its precomputed hashes, and the
    /// exact size pinned once per row; destinations are processed two per
    /// step through the lockstep-interleaved branchless merge walk
    /// (two comparison chains overlap instead of serializing), scalar on
    /// the odd tail.
    #[inline]
    fn estimate_row_into(&self, v: VertexId, us: &[VertexId], out: &mut [f64]) {
        let i = v as usize;
        let a = self.col.sample(i);
        let ah = self.col.sample_hashes(i);
        let ni = self.col.set_size(i);
        let ka = self.col.cap_of(i);
        let mut t = 0;
        while t + 2 <= us.len() {
            let (e0, e1) = self.col.estimate_intersection_with_row_x2(
                a,
                ah,
                ni,
                ka,
                us[t] as usize,
                us[t + 1] as usize,
            );
            out[t] = e0;
            out[t + 1] = e1;
            t += 2;
        }
        if t < us.len() {
            out[t] = self
                .col
                .estimate_intersection_with_row(a, ah, ni, ka, us[t] as usize);
        }
    }

    #[inline]
    fn jaccard(&self, u: VertexId, v: VertexId) -> f64 {
        self.col.estimate_jaccard(u as usize, v as usize)
    }

    /// Native row Jaccard with the source sample pinned.
    #[inline]
    fn jaccard_row_into(&self, v: VertexId, us: &[VertexId], out: &mut [f64]) {
        let i = v as usize;
        let a = self.col.sample(i);
        let ah = self.col.sample_hashes(i);
        let ni = self.col.set_size(i);
        let ka = self.col.cap_of(i);
        for (o, &u) in out.iter_mut().zip(us) {
            *o = self
                .col
                .estimate_jaccard_with_row(a, ah, ni, ka, u as usize);
        }
    }

    #[inline]
    fn estimate_vs_members(&self, w: VertexId, members: &[u32]) -> f64 {
        let wi = w as usize;
        let sample = self.col.sample(wi);
        let d = self.sizes[wi] as usize;
        if sample.is_empty() || d == 0 {
            return 0.0;
        }
        let hits = sample
            .iter()
            .filter(|&&x| members.binary_search(&x).is_ok())
            .count();
        if d <= self.col.k() {
            hits as f64 // lossless sample: exact
        } else {
            hits as f64 * d as f64 / self.col.k() as f64
        }
    }
}

/// Oracle over a [`KmvCollection`] (§IX): the low-variance
/// union-membership estimator. Stores hash values, so it cannot answer
/// explicit-member queries (4-clique counting rejects it).
pub struct KmvOracle<'a> {
    col: &'a KmvCollectionIn<'a>,
    sizes: &'a [u32],
}

impl<'a> KmvOracle<'a> {
    /// Wraps a collection plus the exact set sizes.
    #[inline]
    pub fn new(col: &'a KmvCollectionIn<'a>, sizes: &'a [u32]) -> Self {
        KmvOracle { col, sizes }
    }
}

impl IntersectionOracle for KmvOracle<'_> {
    #[inline]
    fn set_size(&self, v: VertexId) -> u32 {
        self.sizes[v as usize]
    }

    #[inline]
    fn estimate(&self, u: VertexId, v: VertexId) -> f64 {
        self.col.estimate_intersection(u as usize, v as usize)
    }

    /// Row sweep with the source sketch pinned once; destinations are
    /// processed two per step through the lockstep-interleaved merge walk
    /// (two data-dependent comparison chains overlap instead of
    /// serializing), scalar on the odd tail.
    #[inline]
    fn estimate_row_into(&self, v: VertexId, us: &[VertexId], out: &mut [f64]) {
        let s = self.col.sketch(v as usize);
        let mut t = 0;
        while t + 2 <= us.len() {
            let (e0, e1) = s.estimate_intersection_x2(
                self.col.sketch(us[t] as usize),
                self.col.sketch(us[t + 1] as usize),
            );
            out[t] = e0;
            out[t + 1] = e1;
            t += 2;
        }
        if t < us.len() {
            out[t] = s.estimate_intersection(self.col.sketch(us[t] as usize));
        }
    }
}

/// Oracle over a [`HyperLogLogCollection`] — the §X "beyond BF and MH"
/// representation, reachable end-to-end through
/// [`crate::Representation::Hll`]. Intersection by inclusion–exclusion
/// against the exact sizes; like KMV it stores no elements, so
/// explicit-member queries are rejected.
pub struct HllOracle<'a> {
    col: &'a HyperLogLogCollectionIn<'a>,
    sizes: &'a [u32],
}

impl<'a> HllOracle<'a> {
    /// Wraps a collection plus the exact set sizes.
    #[inline]
    pub fn new(col: &'a HyperLogLogCollectionIn<'a>, sizes: &'a [u32]) -> Self {
        HllOracle { col, sizes }
    }

    /// Row sweep over a stratified collection: destinations are grouped
    /// into runs of equal stratum. The source register window is folded
    /// down **once per narrower stratum** encountered
    /// ([`pg_sketch::fold_hll_registers_into`] — exact), so same-width
    /// runs go through the multi-lane fused register-max kernel on raw
    /// destination windows; destinations in strata *wider* than the
    /// source fold per destination inside
    /// [`HyperLogLogCollection::union_estimate_with_row`] (scalar — wide
    /// strata hold only the top-degree sliver). Bit-identical to the
    /// pairwise [`IntersectionOracle::estimate`], whose cross-precision
    /// path performs exactly these folds.
    fn estimate_row_stratified(&self, v: VertexId, us: &[VertexId], out: &mut [f64]) {
        debug_assert_eq!(us.len(), out.len());
        let col = self.col;
        let st = col
            .strata()
            .expect("stratified sweep on a uniform collection");
        let ps = st.stratum_ps();
        let i = v as usize;
        let raw_row = col.registers(i);
        let p_i = col.precision_of(i) as u32;
        let nx = self.sizes[i] as usize;
        let inter = |j: usize, union_est: f64| {
            HyperLogLogCollection::intersection_from_union(nx, self.sizes[j] as usize, union_est)
        };
        let mut folded: Vec<Option<Vec<u8>>> = vec![None; ps.len()];
        let mut t = 0;
        while t < us.len() {
            let sj = col.stratum_of(us[t] as usize);
            let mut e = t + 1;
            while e < us.len() && col.stratum_of(us[e] as usize) == sj {
                e += 1;
            }
            let p_j = ps[sj] as u32;
            if p_j > p_i {
                // Wider destinations: fold each one down to the source's
                // precision (the scalar fallback).
                for (o, &u) in out[t..e].iter_mut().zip(&us[t..e]) {
                    let j = u as usize;
                    *o = inter(j, col.union_estimate_with_row(raw_row, j));
                }
                t = e;
                continue;
            }
            let row: &[u8] = if p_j < p_i {
                folded[sj].get_or_insert_with(|| {
                    let mut w = Vec::with_capacity(1usize << p_j);
                    pg_sketch::fold_hll_registers_into(raw_row, p_i, p_j, &mut w);
                    w
                })
            } else {
                raw_row
            };
            let (run_us, run_out) = (&us[t..e], &mut out[t..e]);
            let mut q = 0;
            while q + 4 <= run_us.len() {
                let js = [
                    run_us[q] as usize,
                    run_us[q + 1] as usize,
                    run_us[q + 2] as usize,
                    run_us[q + 3] as usize,
                ];
                let u4 = col.union_estimates_multi(row, js);
                for l in 0..4 {
                    run_out[q + l] = inter(js[l], u4[l]);
                }
                q += 4;
            }
            if q + 2 <= run_us.len() {
                let js = [run_us[q] as usize, run_us[q + 1] as usize];
                let u2 = col.union_estimates_multi(row, js);
                for l in 0..2 {
                    run_out[q + l] = inter(js[l], u2[l]);
                }
                q += 2;
            }
            if q < run_us.len() {
                let j = run_us[q] as usize;
                run_out[q] = inter(j, col.union_estimate_with_row(row, j));
            }
            t = e;
        }
    }
}

impl IntersectionOracle for HllOracle<'_> {
    #[inline]
    fn set_size(&self, v: VertexId) -> u32 {
        self.sizes[v as usize]
    }

    #[inline]
    fn estimate(&self, u: VertexId, v: VertexId) -> f64 {
        let (i, j) = (u as usize, v as usize);
        self.col
            .estimate_intersection(i, j, self.sizes[i] as usize, self.sizes[j] as usize)
    }

    /// Multi-lane row sweep: the source register window and exact size
    /// are pinned once; destinations go four per fused register-max pass
    /// (four independent harmonic-sum chains pipeline where the scalar
    /// pass is `f64`-add latency-bound), then a two-lane pass and a
    /// scalar pass mop up the ragged tail. Register windows are
    /// prefetched a window-size-aware
    /// [`pg_sketch::bitvec::prefetch_distance`] ahead when the register
    /// store outgrows the probed L2 (on a cache-resident store the
    /// prefetch ramp is pure instruction overhead).
    #[inline]
    fn estimate_row_into(&self, v: VertexId, us: &[VertexId], out: &mut [f64]) {
        if self.col.strata().is_some() {
            // Variable-width register windows: the run-grouped stratified
            // sweep (folded pinned rows, same-width multi-lane runs).
            return self.estimate_row_stratified(v, us, out);
        }
        let i = v as usize;
        let row = self.col.registers(i);
        let nx = self.sizes[i] as usize;
        let inter = |j: usize, union_est: f64| {
            HyperLogLogCollection::intersection_from_union(nx, self.sizes[j] as usize, union_est)
        };
        let dist = if row.len() * self.sizes.len() <= pg_parallel::cache_topology().l2_bytes {
            0
        } else {
            pg_sketch::bitvec::prefetch_distance(row.len())
        };
        for &p in us.iter().take(dist.min(us.len())) {
            pg_sketch::bitvec::prefetch_slice(self.col.registers(p as usize));
        }
        let mut t = 0;
        while t + 4 <= us.len() {
            if dist > 0 {
                for &p in us.iter().take((t + dist + 4).min(us.len())).skip(t + dist) {
                    pg_sketch::bitvec::prefetch_slice(self.col.registers(p as usize));
                }
            }
            let js = [
                us[t] as usize,
                us[t + 1] as usize,
                us[t + 2] as usize,
                us[t + 3] as usize,
            ];
            let u4 = self.col.union_estimates_multi(row, js);
            for l in 0..4 {
                out[t + l] = inter(js[l], u4[l]);
            }
            t += 4;
        }
        if t + 2 <= us.len() {
            let js = [us[t] as usize, us[t + 1] as usize];
            let u2 = self.col.union_estimates_multi(row, js);
            for l in 0..2 {
                out[t + l] = inter(js[l], u2[l]);
            }
            t += 2;
        }
        if t < us.len() {
            let j = us[t] as usize;
            out[t] = inter(j, self.col.union_estimate_with_row(row, j));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_graph::gen;
    use pg_sketch::{BloomCollection, KmvCollection};

    #[test]
    fn exact_oracle_matches_direct_intersection() {
        let g = gen::kronecker(8, 8, 3);
        let o = ExactOracle::new(&g);
        for (u, v) in g.edges().take(200) {
            let want = intersect_card(g.neighbors(u), g.neighbors(v)) as f64;
            assert_eq!(o.estimate(u, v), want);
            assert_eq!(o.set_size(u) as usize, g.degree(u));
        }
    }

    #[test]
    fn exact_oracle_row_matches_pairwise() {
        let g = gen::erdos_renyi_gnm(100, 1500, 5);
        let dag = pg_graph::orient_by_degree(&g);
        let o = ExactOracle::new(&dag);
        let mut row = Vec::new();
        for v in 0..g.num_vertices() as u32 {
            let np = dag.neighbors_plus(v);
            o.estimate_row(v, np, &mut row);
            assert_eq!(row.len(), np.len());
            for (t, &u) in np.iter().enumerate() {
                assert_eq!(row[t], o.estimate(v, u));
            }
        }
    }

    #[test]
    fn exact_oracle_jaccard_matches_definition() {
        let g = gen::kronecker(7, 8, 1);
        let o = ExactOracle::new(&g);
        for (u, v) in g.edges().take(100) {
            let inter = intersect_card(g.neighbors(u), g.neighbors(v)) as f64;
            let union = (g.degree(u) + g.degree(v)) as f64 - inter;
            let want = if union <= 0.0 { 0.0 } else { inter / union };
            assert!((o.jaccard(u, v) - want).abs() < 1e-12);
        }
    }

    #[test]
    fn bloom_row_path_is_bit_identical_to_pairwise() {
        let g = gen::erdos_renyi_gnm(150, 3000, 9);
        let sets: Vec<&[u32]> = (0..g.num_vertices())
            .map(|v| g.neighbors(v as u32))
            .collect();
        let col = BloomCollection::build(sets.len(), 512, 2, 7, |i| sets[i]);
        let sizes: Vec<u32> = sets.iter().map(|s| s.len() as u32).collect();
        let us: Vec<u32> = (0..g.num_vertices() as u32).collect();
        let mut row = Vec::new();
        fn check<S: BloomStrategy>(
            col: &BloomCollection,
            sizes: &[u32],
            us: &[u32],
            row: &mut Vec<f64>,
        ) {
            let o = BloomOracle::<S>::new(col, sizes);
            for v in 0..sizes.len() as u32 {
                o.estimate_row(v, us, row);
                for (t, &u) in us.iter().enumerate() {
                    assert_eq!(row[t], o.estimate(v, u), "v={v} u={u}");
                }
            }
        }
        check::<BloomAnd>(&col, &sizes, &us, &mut row);
        check::<BloomLimit>(&col, &sizes, &us, &mut row);
        check::<BloomOr>(&col, &sizes, &us, &mut row);
    }

    #[test]
    fn stratified_bloom_row_path_is_bit_identical_to_pairwise() {
        let g = gen::erdos_renyi_gnm(150, 3000, 9);
        let sets: Vec<&[u32]> = (0..g.num_vertices())
            .map(|v| g.neighbors(v as u32))
            .collect();
        let assign: Vec<u8> = (0..sets.len()).map(|i| (i % 3) as u8).collect();
        let col = BloomCollection::build_stratified(vec![512, 256, 128], assign, 2, 7, |i| sets[i]);
        assert!(col.strata().is_some(), "expected a stratified build");
        let sizes: Vec<u32> = sets.iter().map(|s| s.len() as u32).collect();
        let us: Vec<u32> = (0..g.num_vertices() as u32).collect();
        let mut row = Vec::new();
        fn check<S: BloomStrategy>(
            col: &BloomCollection,
            sizes: &[u32],
            us: &[u32],
            row: &mut Vec<f64>,
        ) {
            let o = BloomOracle::<S>::new(col, sizes);
            assert_eq!(o.dest_window_bytes(), None);
            for v in 0..sizes.len() as u32 {
                o.estimate_row(v, us, row);
                for (t, &u) in us.iter().enumerate() {
                    assert_eq!(row[t], o.estimate(v, u), "v={v} u={u}");
                }
            }
        }
        check::<BloomAnd>(&col, &sizes, &us, &mut row);
        check::<BloomLimit>(&col, &sizes, &us, &mut row);
        check::<BloomOr>(&col, &sizes, &us, &mut row);
    }

    #[test]
    fn stratified_bloom_block_path_matches_row_path() {
        let g = gen::erdos_renyi_gnm(120, 2000, 11);
        let sets: Vec<&[u32]> = (0..g.num_vertices())
            .map(|v| g.neighbors(v as u32))
            .collect();
        let assign: Vec<u8> = (0..sets.len()).map(|i| (i % 2) as u8).collect();
        let col = BloomCollection::build_stratified(vec![256, 64], assign, 2, 3, |i| sets[i]);
        let sizes: Vec<u32> = sets.iter().map(|s| s.len() as u32).collect();
        let o = BloomOracle::<BloomAnd>::new(&col, &sizes);
        let sources: Vec<u32> = vec![0, 5, 9];
        let us: Vec<u32> = (0..40u32).chain(50..70).chain(10..30).collect();
        let seg_offsets = [0usize, 40, 60, us.len()];
        let mut block = Vec::new();
        o.estimate_block(&sources, &seg_offsets, &us, &mut block);
        let mut row = Vec::new();
        for (s, &v) in sources.iter().enumerate() {
            let (lo, hi) = (seg_offsets[s], seg_offsets[s + 1]);
            o.estimate_row(v, &us[lo..hi], &mut row);
            assert_eq!(&block[lo..hi], &row[..], "source {v}");
        }
    }

    #[test]
    fn stratified_khash_and_hll_row_paths_match_pairwise() {
        let g = gen::erdos_renyi_gnm(140, 2600, 21);
        let sets: Vec<&[u32]> = (0..g.num_vertices())
            .map(|v| g.neighbors(v as u32))
            .collect();
        let sizes: Vec<u32> = sets.iter().map(|s| s.len() as u32).collect();
        let assign: Vec<u8> = (0..sets.len()).map(|i| (i % 3) as u8).collect();
        let us: Vec<u32> = (0..g.num_vertices() as u32).collect();
        let mut row = Vec::new();

        let mh = pg_sketch::MinHashCollection::build_stratified(
            vec![64, 32, 16],
            assign.clone(),
            5,
            |i| sets[i],
        );
        assert!(mh.strata().is_some(), "expected a stratified build");
        let o = KHashOracle::new(&mh, &sizes);
        for v in 0..sizes.len() as u32 {
            o.estimate_row(v, &us, &mut row);
            for (t, &u) in us.iter().enumerate() {
                assert_eq!(row[t], o.estimate(v, u), "kh est v={v} u={u}");
            }
            o.jaccard_row(v, &us, &mut row);
            for (t, &u) in us.iter().enumerate() {
                assert_eq!(row[t], o.jaccard(v, u), "kh jac v={v} u={u}");
            }
        }

        let hll = HyperLogLogCollection::build_stratified(vec![8, 6, 4], assign, 5, |i| sets[i]);
        assert!(hll.strata().is_some(), "expected a stratified build");
        let o = HllOracle::new(&hll, &sizes);
        assert_eq!(o.dest_window_bytes(), None);
        for v in 0..sizes.len() as u32 {
            o.estimate_row(v, &us, &mut row);
            for (t, &u) in us.iter().enumerate() {
                assert_eq!(row[t], o.estimate(v, u), "hll v={v} u={u}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "explicit member list")]
    fn kmv_oracle_rejects_member_queries() {
        let sets = [vec![1u32, 2, 3]];
        let col = KmvCollection::build(1, 8, 1, |i| &sets[i][..]);
        let sizes = [3u32];
        KmvOracle::new(&col, &sizes).estimate_vs_members(0, &[1, 2]);
    }
}
