//! Disjoint-set union (union-find) — substrate for counting the clusters
//! produced by Jarvis–Patrick clustering (the paper reports *counts of
//! clusters* as the accuracy metric for clustering, Fig. 7).

/// Union-find with path halving and union by size.
#[derive(Clone, Debug)]
pub struct Dsu {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl Dsu {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        Dsu {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
        }
    }

    /// Representative of `x`'s set.
    pub fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            // Path halving.
            self.parent[x as usize] = self.parent[self.parent[x as usize] as usize];
            x = self.parent[x as usize];
        }
        x
    }

    /// Merges the sets of `a` and `b`; returns true if they were distinct.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (big, small) = if self.size[ra as usize] >= self.size[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small as usize] = big;
        self.size[big as usize] += self.size[small as usize];
        true
    }

    /// Size of the set containing `x`.
    pub fn set_size(&mut self, x: u32) -> u32 {
        let r = self.find(x);
        self.size[r as usize]
    }

    /// True if `a` and `b` are in the same set.
    pub fn same(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }

    /// Number of sets with at least `min_size` members.
    pub fn count_components(&mut self, min_size: u32) -> usize {
        let n = self.parent.len();
        let mut count = 0;
        for x in 0..n as u32 {
            if self.find(x) == x && self.size[x as usize] >= min_size {
                count += 1;
            }
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_initially() {
        let mut d = Dsu::new(5);
        assert_eq!(d.count_components(1), 5);
        assert_eq!(d.count_components(2), 0);
        assert!(!d.same(0, 1));
    }

    #[test]
    fn union_merges_and_reports() {
        let mut d = Dsu::new(6);
        assert!(d.union(0, 1));
        assert!(!d.union(1, 0), "already merged");
        assert!(d.union(2, 3));
        assert!(d.union(0, 2));
        assert!(d.same(1, 3));
        assert_eq!(d.set_size(3), 4);
        assert_eq!(d.count_components(1), 3); // {0,1,2,3}, {4}, {5}
        assert_eq!(d.count_components(2), 1);
    }

    #[test]
    fn chain_unions_flatten() {
        let n = 1000;
        let mut d = Dsu::new(n);
        for i in 0..n as u32 - 1 {
            d.union(i, i + 1);
        }
        assert_eq!(d.count_components(1), 1);
        assert_eq!(d.set_size(500), n as u32);
    }
}
