//! Clustering coefficients — a flagship application of triangle counting
//! (§III-A: "computing clustering coefficients" is the first example use
//! of TC, and the cohesion `TC[S]/C(|S|,3)` of a vertex group is its
//! §III-A generalization).
//!
//! * local coefficient of `v`: `2·t_v / (d_v (d_v − 1))` where `t_v` is
//!   the number of triangles through `v`,
//! * global coefficient: `3·TC / (number of wedges)`,
//! * group cohesion: `TC[S] / C(|S|, 3)`.
//!
//! Each has a PG-accelerated twin: `t_v = ½ Σ_{u∈N_v} |N_v ∩ N_u|` is a
//! sum of intersection cardinalities, so the blue-operation substitution
//! of the paper applies verbatim.

use crate::oracle::{ExactOracle, IntersectionOracle, OracleVisitor};
use crate::pg::ProbGraph;
use pg_graph::{CsrGraph, VertexId};
use pg_parallel::{parallel_init_scratch, sum_f64, sum_u64};

/// The single per-vertex triangle kernel `t_v = ½ Σ_{u∈N_v} |N_v ∩ N_u|̂`,
/// generic over the oracle, batching each row through
/// [`IntersectionOracle::estimate_row`] into worker-local scratch.
pub fn triangles_per_vertex_with<O: IntersectionOracle>(g: &CsrGraph, oracle: &O) -> Vec<f64> {
    parallel_init_scratch(g.num_vertices(), Vec::new, |row, vi| {
        let v = vi as VertexId;
        let nv = g.neighbors(v);
        oracle.estimate_row(v, nv, row);
        row.iter().fold(0.0f64, |s, &e| s + e.max(0.0)) / 2.0
    })
}

/// Exact per-vertex triangle counts `t_v` (each triangle counted at each
/// of its three vertices): the generic kernel with the exact oracle. The
/// per-vertex sums are even integers, so the `f64` halves are exact.
pub fn triangles_per_vertex(g: &CsrGraph) -> Vec<u64> {
    triangles_per_vertex_with(g, &ExactOracle::new(g))
        .into_iter()
        .map(|t| t as u64)
        .collect()
}

/// Approximate per-vertex triangle counts from a ProbGraph over full
/// neighborhoods — representation resolved once.
pub fn triangles_per_vertex_pg(g: &CsrGraph, pg: &ProbGraph) -> Vec<f64> {
    struct V<'a>(&'a CsrGraph);
    impl OracleVisitor for V<'_> {
        type Output = Vec<f64>;
        fn visit<O: IntersectionOracle>(self, o: &O) -> Vec<f64> {
            triangles_per_vertex_with(self.0, o)
        }
    }
    pg.with_oracle(V(g))
}

/// Local coefficients `2·t_v / (d_v (d_v − 1))` from per-vertex triangle
/// counts, clamped to `[0, 1]` (a no-op for exact counts; estimators can
/// overshoot).
fn local_from_triangles(g: &CsrGraph, t: &[f64]) -> Vec<f64> {
    (0..g.num_vertices())
        .map(|v| {
            let d = g.degree(v as VertexId) as f64;
            if d < 2.0 {
                0.0
            } else {
                (2.0 * t[v] / (d * (d - 1.0))).clamp(0.0, 1.0)
            }
        })
        .collect()
}

/// Exact local clustering coefficients (0 for degree < 2).
pub fn local_clustering(g: &CsrGraph) -> Vec<f64> {
    local_from_triangles(g, &triangles_per_vertex_with(g, &ExactOracle::new(g)))
}

/// Approximate local clustering coefficients, clamped to `[0, 1]`.
pub fn local_clustering_pg(g: &CsrGraph, pg: &ProbGraph) -> Vec<f64> {
    local_from_triangles(g, &triangles_per_vertex_pg(g, pg))
}

/// Number of wedges (paths of length 2) `Σ_v C(d_v, 2)`.
pub fn wedge_count(g: &CsrGraph) -> u64 {
    sum_u64(g.num_vertices(), |v| {
        let d = g.degree(v as VertexId) as u64;
        d * (d - 1) / 2
    })
}

/// Exact global clustering coefficient `3·TC / wedges` (0 for wedge-free
/// graphs).
pub fn global_clustering(g: &CsrGraph) -> f64 {
    let w = wedge_count(g);
    if w == 0 {
        return 0.0;
    }
    3.0 * crate::algorithms::triangles::count_exact(g) as f64 / w as f64
}

/// The single global-coefficient kernel: `TC = ⅓ Σ_{(u,v)∈E} |N_u ∩ N_v|̂`
/// over the undirected edge list, then `3·TC / wedges`, clamped to
/// `[0, 1]`.
pub fn global_clustering_with<O: IntersectionOracle>(g: &CsrGraph, oracle: &O) -> f64 {
    let w = wedge_count(g);
    if w == 0 {
        return 0.0;
    }
    let edges = g.edge_list();
    let tc = sum_f64(edges.len(), |i| {
        let (u, v) = edges[i];
        oracle.estimate(u, v).max(0.0)
    }) / 3.0;
    (3.0 * tc / w as f64).clamp(0.0, 1.0)
}

/// Approximate global clustering coefficient via the PG triangle count —
/// representation resolved once.
pub fn global_clustering_pg(g: &CsrGraph, pg: &ProbGraph) -> f64 {
    struct V<'a>(&'a CsrGraph);
    impl OracleVisitor for V<'_> {
        type Output = f64;
        fn visit<O: IntersectionOracle>(self, o: &O) -> f64 {
            global_clustering_with(self.0, o)
        }
    }
    pg.with_oracle(V(g))
}

/// Exact group cohesion `TC[S] / C(|S|, 3)` (§III-A); 0 for `|S| < 3`.
pub fn cohesion(g: &CsrGraph, group: &[VertexId]) -> f64 {
    let s = group.len() as f64;
    if group.len() < 3 {
        return 0.0;
    }
    let (sub, _) = pg_graph::induced_subgraph(g, group);
    crate::algorithms::triangles::count_exact(&sub) as f64 / (s * (s - 1.0) * (s - 2.0) / 6.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pg::{PgConfig, Representation};
    use pg_graph::gen;

    #[test]
    fn complete_graph_coefficients_are_one() {
        let g = gen::complete(8);
        assert!(local_clustering(&g)
            .iter()
            .all(|&c| (c - 1.0).abs() < 1e-12));
        assert!((global_clustering(&g) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn triangle_free_coefficients_are_zero() {
        let g = gen::complete_bipartite(5, 5);
        assert!(local_clustering(&g).iter().all(|&c| c == 0.0));
        assert_eq!(global_clustering(&g), 0.0);
        assert_eq!(global_clustering(&gen::star(10)), 0.0);
    }

    #[test]
    fn per_vertex_counts_sum_to_three_tc() {
        let g = gen::kronecker(8, 8, 3);
        let tc = crate::algorithms::triangles::count_exact(&g);
        let per_v: u64 = triangles_per_vertex(&g).iter().sum();
        assert_eq!(per_v, 3 * tc);
    }

    #[test]
    fn wedge_count_path() {
        // Path 0-1-2-3: two interior vertices with one wedge each.
        assert_eq!(wedge_count(&gen::path(4)), 2);
        assert_eq!(wedge_count(&gen::star(5)), 6); // C(4,2)
    }

    #[test]
    fn pg_global_coefficient_tracks_exact() {
        let g = gen::erdos_renyi_gnm(300, 300 * 25, 7);
        let exact = global_clustering(&g);
        let pg = ProbGraph::build(&g, &PgConfig::new(Representation::OneHash, 0.33));
        let approx = global_clustering_pg(&g, &pg);
        assert!(
            (approx - exact).abs() < 0.5 * exact.max(0.05),
            "approx={approx} exact={exact}"
        );
    }

    #[test]
    fn pg_local_coefficients_bounded() {
        let g = gen::kronecker(8, 8, 5);
        let pg = ProbGraph::build(&g, &PgConfig::new(Representation::Bloom { b: 1 }, 0.25));
        for c in local_clustering_pg(&g, &pg) {
            assert!((0.0..=1.0).contains(&c));
        }
    }

    #[test]
    fn cohesion_of_planted_clique() {
        let g = gen::complete(10);
        assert!((cohesion(&g, &[0, 1, 2, 3, 4]) - 1.0).abs() < 1e-12);
        assert_eq!(cohesion(&g, &[0, 1]), 0.0);
    }
}
