//! Triangle Counting (Listing 1 of the paper): the node-iterator algorithm
//! over a degree-ordered DAG, `tc = Σ_v Σ_{u ∈ N⁺_v} |N⁺_v ∩ N⁺_u|`.
//!
//! Both loops are parallel (`[in par]`). There is exactly **one**
//! algorithm body, [`count_on_dag`], generic over the
//! [`IntersectionOracle`]: the exact variant runs it with the
//! merge/galloping [`ExactOracle`], the PG variant with whichever sketch
//! oracle [`ProbGraph::with_oracle`] resolves — so representation dispatch
//! happens once per call, never inside the per-edge loop. Work and depth
//! follow Table VI.

use crate::grain::degree_power_grain;
use crate::oracle::{ExactOracle, IntersectionOracle, OracleVisitor};
use crate::pg::{PgConfig, ProbGraph};
use pg_graph::{orient_by_degree, CsrGraph, OrientedDag, VertexId};
use pg_parallel::map_reduce_scratch;

/// The single Listing-1 kernel: sums (estimated) wedge-closure counts over
/// every oriented edge, batching each vertex's row through
/// [`IntersectionOracle::estimate_row`] into worker-local scratch.
///
/// Scheduled with a degree-power grain matching the oracle's work profile:
/// `d⁺²` for the exact oracle (each estimate is an `O(d⁺)` merge), `d⁺`
/// for sketches (each estimate is `O(B/W)`/`O(k)`) — the
/// dynamic-scheduling argument of §VI-B.
pub fn count_on_dag<O: IntersectionOracle>(dag: &OrientedDag, oracle: &O) -> f64 {
    let pow = if oracle.degree_scaled_cost() { 2 } else { 1 };
    map_reduce_scratch(
        dag.num_vertices(),
        degree_power_grain(dag, pow),
        || 0f64,
        Vec::new,
        |row, acc, v| {
            let np = dag.neighbors_plus(v as VertexId);
            oracle.estimate_row(v as VertexId, np, row);
            acc + row.iter().fold(0.0f64, |s, &e| s + e.max(0.0))
        },
        |a, b| a + b,
    )
}

/// Exact triangle count (tuned baseline).
pub fn count_exact(g: &CsrGraph) -> u64 {
    let dag = orient_by_degree(g);
    count_exact_on_dag(&dag)
}

/// Exact triangle count when the oriented DAG is already built (lets
/// benchmarks time preprocessing separately): the generic kernel run with
/// the exact oracle. The `f64` accumulator is exact for every count below
/// `2^53` (all summands are integers).
pub fn count_exact_on_dag(dag: &OrientedDag) -> u64 {
    count_on_dag(dag, &ExactOracle::new(dag)) as u64
}

/// Approximate triangle count: builds the oriented DAG, sketches every
/// `N⁺_v` under `cfg`, and sums estimated intersections.
pub fn count_approx(g: &CsrGraph, cfg: &PgConfig) -> f64 {
    let dag = orient_by_degree(g);
    let pg = ProbGraph::build_dag(&dag, g.memory_bytes(), cfg);
    count_approx_on_dag(&dag, &pg)
}

/// Approximate triangle count with prebuilt DAG and sketches — resolves
/// the representation once, then runs the generic kernel.
pub fn count_approx_on_dag(dag: &OrientedDag, pg: &ProbGraph) -> f64 {
    struct V<'a>(&'a OrientedDag);
    impl OracleVisitor for V<'_> {
        type Output = f64;
        fn visit<O: IntersectionOracle>(self, o: &O) -> f64 {
            count_on_dag(self.0, o)
        }
    }
    pg.with_oracle(V(dag))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pg::Representation;
    use pg_graph::gen;

    fn binom3(n: u64) -> u64 {
        n * (n - 1) * (n - 2) / 6
    }

    #[test]
    fn complete_graph_has_choose_3() {
        for n in [3usize, 4, 5, 10, 20] {
            assert_eq!(count_exact(&gen::complete(n)), binom3(n as u64), "K_{n}");
        }
    }

    #[test]
    fn triangle_free_graphs_count_zero() {
        assert_eq!(count_exact(&gen::grid(8, 9)), 0);
        assert_eq!(count_exact(&gen::complete_bipartite(6, 7)), 0);
        assert_eq!(count_exact(&gen::star(30)), 0);
        assert_eq!(count_exact(&gen::cycle(17)), 0);
        assert_eq!(count_exact(&gen::path(10)), 0);
    }

    #[test]
    fn small_known_cases() {
        // Triangle + pendant vertex: exactly 1 triangle.
        let g = pg_graph::CsrGraph::from_edges(4, &[(0, 1), (1, 2), (0, 2), (2, 3)]);
        assert_eq!(count_exact(&g), 1);
        // Two triangles sharing an edge (diamond).
        let d = pg_graph::CsrGraph::from_edges(4, &[(0, 1), (1, 2), (0, 2), (1, 3), (2, 3)]);
        assert_eq!(count_exact(&d), 2);
        // K4: 4 triangles.
        assert_eq!(count_exact(&gen::complete(4)), 4);
    }

    #[test]
    fn exact_count_matches_brute_force_on_random_graph() {
        let g = gen::erdos_renyi_gnm(60, 400, 3);
        let mut brute = 0u64;
        for u in 0..60u32 {
            for v in (u + 1)..60 {
                for w in (v + 1)..60 {
                    if g.has_edge(u, v) && g.has_edge(v, w) && g.has_edge(u, w) {
                        brute += 1;
                    }
                }
            }
        }
        assert_eq!(count_exact(&g), brute);
    }

    #[test]
    fn exact_count_thread_invariant() {
        let g = gen::kronecker(9, 8, 4);
        let t1 = pg_parallel::with_threads(1, || count_exact(&g));
        let t8 = pg_parallel::with_threads(8, || count_exact(&g));
        assert_eq!(t1, t8);
    }

    #[test]
    fn approx_counts_track_exact_on_dense_graph() {
        let g = gen::erdos_renyi_gnm(400, 400 * 30, 11);
        let exact = count_exact(&g) as f64;
        for rep in [
            Representation::Bloom { b: 2 },
            Representation::KHash,
            Representation::OneHash,
        ] {
            let est = count_approx(&g, &PgConfig::new(rep, 0.33));
            let rel = est / exact;
            // Unit-level sanity: order of magnitude. (BF's AND estimator
            // overestimates on dense graphs — §VIII-B — so the band is
            // generous; the bench binaries report the precise tradeoff.)
            assert!(
                (0.3..2.5).contains(&rel),
                "{rep:?}: est={est} exact={exact} rel={rel}"
            );
        }
    }

    #[test]
    fn approx_on_triangle_free_graph_stays_small() {
        let g = gen::complete_bipartite(40, 40);
        let est = count_approx(&g, &PgConfig::new(Representation::OneHash, 0.33));
        // 1-hash over disjoint N+ sets: estimates should be near zero
        // relative to the m·d scale of the graph.
        assert!(est < 200.0, "est={est}");
    }

    #[test]
    fn empty_graph() {
        let g = pg_graph::CsrGraph::from_edges(5, &[]);
        assert_eq!(count_exact(&g), 0);
        assert_eq!(
            count_approx(&g, &PgConfig::new(Representation::Bloom { b: 1 }, 0.25)),
            0.0
        );
    }
}
