//! k-core decomposition (degeneracy ordering).
//!
//! The clique-counting literature the paper builds on (Danisch et
//! al. \[68\]) orders vertices by *core number* rather than raw degree;
//! the degeneracy bounds `max_v |N⁺_v|`. We provide the exact peeling
//! algorithm so users can compare degree ordering (Listings 1–2) against
//! degeneracy ordering, and because core numbers are a common downstream
//! consumer of the library.

use pg_graph::{CsrGraph, VertexId};

/// Result of the core decomposition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CoreDecomposition {
    /// Core number of each vertex.
    pub core: Vec<u32>,
    /// The graph degeneracy (max core number).
    pub degeneracy: u32,
    /// Vertices in peeling order (a valid degeneracy ordering).
    pub order: Vec<VertexId>,
}

/// Exact core decomposition by bucket peeling, `O(n + m)`.
pub fn core_decomposition(g: &CsrGraph) -> CoreDecomposition {
    let n = g.num_vertices();
    let mut deg: Vec<u32> = (0..n).map(|v| g.degree(v as VertexId) as u32).collect();
    let max_deg = deg.iter().copied().max().unwrap_or(0) as usize;
    // Bucket sort vertices by current degree.
    let mut bins = vec![0usize; max_deg + 2];
    for &d in &deg {
        bins[d as usize] += 1;
    }
    let mut start = 0usize;
    for b in bins.iter_mut() {
        let cnt = *b;
        *b = start;
        start += cnt;
    }
    let mut pos = vec![0usize; n];
    let mut vert = vec![0 as VertexId; n];
    {
        let mut cursor = bins.clone();
        for v in 0..n {
            let d = deg[v] as usize;
            pos[v] = cursor[d];
            vert[cursor[d]] = v as VertexId;
            cursor[d] += 1;
        }
    }
    let mut core = vec![0u32; n];
    let mut degeneracy = 0u32;
    for i in 0..n {
        let v = vert[i];
        let dv = deg[v as usize];
        degeneracy = degeneracy.max(dv);
        core[v as usize] = degeneracy;
        for &u in g.neighbors(v) {
            let du = deg[u as usize];
            if du > dv {
                // Move u one bucket down: swap with the first vertex of
                // its bucket, then shrink the bucket.
                let bucket_start = bins[du as usize];
                let u_pos = pos[u as usize];
                let w = vert[bucket_start];
                if w != u {
                    vert.swap(bucket_start, u_pos);
                    pos[w as usize] = u_pos;
                    pos[u as usize] = bucket_start;
                }
                bins[du as usize] += 1;
                deg[u as usize] -= 1;
            }
        }
    }
    CoreDecomposition {
        core,
        degeneracy,
        order: vert,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_graph::gen;

    #[test]
    fn complete_graph_core() {
        let d = core_decomposition(&gen::complete(6));
        assert_eq!(d.degeneracy, 5);
        assert!(d.core.iter().all(|&c| c == 5));
    }

    #[test]
    fn path_and_cycle_cores() {
        let p = core_decomposition(&gen::path(10));
        assert_eq!(p.degeneracy, 1);
        let c = core_decomposition(&gen::cycle(10));
        assert_eq!(c.degeneracy, 2);
        assert!(c.core.iter().all(|&x| x == 2));
    }

    #[test]
    fn star_core_is_one() {
        let d = core_decomposition(&gen::star(50));
        assert_eq!(d.degeneracy, 1);
    }

    #[test]
    fn clique_with_tail() {
        // K5 plus a pendant path: clique vertices core 4, path core 1.
        let mut edges = vec![];
        for a in 0..5u32 {
            for b in (a + 1)..5 {
                edges.push((a, b));
            }
        }
        edges.push((4, 5));
        edges.push((5, 6));
        let g = CsrGraph::from_edges(7, &edges);
        let d = core_decomposition(&g);
        assert_eq!(d.degeneracy, 4);
        assert_eq!(d.core[0], 4);
        assert_eq!(d.core[6], 1);
        assert_eq!(d.core[5], 1);
    }

    #[test]
    fn peeling_order_is_a_permutation() {
        let g = gen::kronecker(9, 8, 4);
        let d = core_decomposition(&g);
        let mut seen = vec![false; g.num_vertices()];
        for &v in &d.order {
            assert!(!seen[v as usize]);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn core_numbers_bounded_by_degree() {
        let g = gen::kronecker(9, 8, 5);
        let d = core_decomposition(&g);
        for v in 0..g.num_vertices() {
            assert!(d.core[v] <= g.degree(v as VertexId) as u32);
        }
        // Degeneracy bounds the oriented out-degree of a degeneracy order.
        assert!(d.degeneracy as usize <= g.max_degree());
    }

    use pg_graph::CsrGraph;
}
