//! Link-prediction evaluation (Listing 5 of the paper).
//!
//! Protocol: remove a random subset `E_rndm` of edges, score candidate
//! non-edges of the sparsified graph `E_sparse` with a vertex-similarity
//! scheme `S`, predict the top-`|E_rndm|` pairs, and report the
//! effectiveness `ef = |E_predict ∩ E_rndm|`.
//!
//! Listing 5 scores all of `(V×V) \ E_sparse`; like every practical
//! implementation we restrict candidates to *distance-2 pairs* — any pair
//! with a positive Common-Neighbors/Jaccard/Adamic-Adar score has a common
//! neighbor, so this prunes only zero-score candidates and changes nothing
//! about the ranking.

use crate::oracle::{IntersectionOracle, OracleVisitor};
use crate::pg::ProbGraph;
use pg_graph::{split_edges, CsrGraph, EdgeSplit, VertexId};
use pg_parallel::{parallel_init, parallel_init_scratch};

/// Outcome of one evaluation run.
#[derive(Clone, Debug)]
pub struct LinkPredictionOutcome {
    /// Number of removed (to-be-predicted) edges `|E_rndm|`.
    pub num_removed: usize,
    /// The predicted pairs (top-scored candidates), `u < v`.
    pub predicted: Vec<(VertexId, VertexId)>,
    /// `ef = |E_predict ∩ E_rndm|` (Listing 5's effectiveness).
    pub hits: usize,
    /// `hits / |E_rndm|` — normalized effectiveness (precision@|E_rndm|).
    pub precision: f64,
}

/// Enumerates distance-2 non-adjacent pairs `(u, w)`, `u < w`, of `g`.
///
/// Deduplication runs in a worker-local scratch buffer (collect,
/// sort, dedup) instead of a per-vertex `HashSet` — no per-vertex hashing
/// or rehash-growth churn, and `has_edge` is probed once per *unique*
/// two-hop neighbor rather than once per wedge.
fn candidate_pairs(g: &CsrGraph) -> Vec<(VertexId, VertexId)> {
    let n = g.num_vertices();
    let per_vertex: Vec<Vec<(VertexId, VertexId)>> =
        parallel_init_scratch(n, Vec::<VertexId>::new, |two_hop, ui| {
            let u = ui as VertexId;
            two_hop.clear();
            for &v in g.neighbors(u) {
                two_hop.extend(g.neighbors(v).iter().copied().filter(|&w| w > u));
            }
            two_hop.sort_unstable();
            two_hop.dedup();
            two_hop
                .iter()
                .filter(|&&w| !g.has_edge(u, w))
                .map(|&w| (u, w))
                .collect()
        });
    per_vertex.into_iter().flatten().collect()
}

/// Shared protocol tail: deterministic ranking (descending score, ties by
/// pair), top-`|E_rndm|` prediction, and effectiveness counting.
fn rank_and_score(
    split: &EdgeSplit,
    candidates: &[(VertexId, VertexId)],
    scores: &[f64],
) -> LinkPredictionOutcome {
    let mut order: Vec<usize> = (0..candidates.len()).collect();
    // total_cmp keeps the ranking total even if an estimator ever emits a
    // NaN score — a hostile input must degrade the ranking, not panic it.
    order.sort_by(|&a, &b| {
        scores[b]
            .total_cmp(&scores[a])
            .then_with(|| candidates[a].cmp(&candidates[b]))
    });
    let k = split.removed.len().min(order.len());
    let predicted: Vec<(VertexId, VertexId)> = order[..k].iter().map(|&i| candidates[i]).collect();
    let removed: std::collections::HashSet<(VertexId, VertexId)> =
        split.removed.iter().copied().collect();
    let hits = predicted.iter().filter(|p| removed.contains(p)).count();
    LinkPredictionOutcome {
        num_removed: split.removed.len(),
        precision: if split.removed.is_empty() {
            0.0
        } else {
            hits as f64 / split.removed.len() as f64
        },
        predicted,
        hits,
    }
}

/// The single candidate-scoring kernel: Common-Neighbors scores of every
/// candidate pair under any oracle, in parallel.
///
/// [`candidate_pairs`] emits pairs grouped by source with ascending
/// destinations, so scoring delegates to the shared batched scorer
/// ([`crate::algorithms::similarity::estimate_pairs_with`]), which routes
/// sketch-backed oracles through the blocked source-batch ×
/// destination-tile traversal when profitable — per-pair scores (and
/// therefore the ranking) are bit-identical to the per-pair loop.
pub fn score_candidates_with<O: IntersectionOracle>(
    oracle: &O,
    candidates: &[(VertexId, VertexId)],
) -> Vec<f64> {
    crate::algorithms::similarity::estimate_pairs_with(oracle, candidates)
}

/// Runs the Listing-5 protocol with an arbitrary scorer over the
/// *sparsified* graph. `frac_removed ∈ (0, 1)` is the share of edges
/// hidden; `seed` fixes the split. The scorer sees the sparse graph only.
pub fn evaluate<S>(g: &CsrGraph, frac_removed: f64, seed: u64, scorer: S) -> LinkPredictionOutcome
where
    S: Fn(&CsrGraph, VertexId, VertexId) -> f64 + Sync,
{
    let split = split_edges(g, frac_removed, seed);
    let sparse = &split.sparse;
    let candidates = candidate_pairs(sparse);
    let scores = parallel_init(candidates.len(), |i| {
        let (u, v) = candidates[i];
        scorer(sparse, u, v)
    });
    rank_and_score(&split, &candidates, &scores)
}

/// Exact Common-Neighbors scorer (the scheme Listing 4/5 build on).
pub fn exact_cn_scorer(g: &CsrGraph, u: VertexId, v: VertexId) -> f64 {
    crate::algorithms::similarity::common_neighbors(g, u, v) as f64
}

/// Runs the protocol with a ProbGraph-backed Common-Neighbors scorer
/// (sketches are built once over the sparsified graph, the representation
/// resolved once before the scoring loop).
pub fn evaluate_pg(
    g: &CsrGraph,
    frac_removed: f64,
    seed: u64,
    cfg: &crate::pg::PgConfig,
) -> LinkPredictionOutcome {
    let split = split_edges(g, frac_removed, seed);
    let sparse = &split.sparse;
    let pg = ProbGraph::build(sparse, cfg);
    let candidates = candidate_pairs(sparse);
    struct V<'a>(&'a [(VertexId, VertexId)]);
    impl OracleVisitor for V<'_> {
        type Output = Vec<f64>;
        fn visit<O: IntersectionOracle>(self, o: &O) -> Vec<f64> {
            score_candidates_with(o, self.0)
        }
    }
    let scores = pg.with_oracle(V(&candidates));
    rank_and_score(&split, &candidates, &scores)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pg::{PgConfig, Representation};
    use pg_graph::gen;

    #[test]
    fn candidates_are_distance_two_non_edges() {
        let g = gen::path(5); // 0-1-2-3-4
        let c = candidate_pairs(&g);
        assert_eq!(c, vec![(0, 2), (1, 3), (2, 4)]);
    }

    #[test]
    fn prediction_beats_chance_on_community_graph() {
        // Two dense communities: removed intra-community edges should be
        // recovered by common-neighbor counting far above chance.
        let mut edges = Vec::new();
        for a in 0..30u32 {
            for b in (a + 1)..30 {
                edges.push((a, b));
                edges.push((a + 30, b + 30));
            }
        }
        let g = CsrGraph::from_edges(60, &edges);
        let out = evaluate(&g, 0.1, 7, exact_cn_scorer);
        assert!(out.num_removed > 0);
        assert!(
            out.precision > 0.8,
            "CN should recover clique edges: precision={}",
            out.precision
        );
    }

    #[test]
    fn pg_scorer_comparable_to_exact() {
        let mut edges = Vec::new();
        for a in 0..40u32 {
            for b in (a + 1)..40 {
                edges.push((a, b));
            }
        }
        let g = CsrGraph::from_edges(40, &edges);
        let exact = evaluate(&g, 0.15, 3, exact_cn_scorer);
        let pg = evaluate_pg(
            &g,
            0.15,
            3,
            &PgConfig::new(Representation::Bloom { b: 2 }, 0.33),
        );
        assert_eq!(exact.num_removed, pg.num_removed);
        assert!(
            pg.precision >= exact.precision * 0.6,
            "pg={} exact={}",
            pg.precision,
            exact.precision
        );
    }

    #[test]
    fn deterministic() {
        let g = gen::kronecker(8, 8, 2);
        let a = evaluate(&g, 0.2, 5, exact_cn_scorer);
        let b = evaluate(&g, 0.2, 5, exact_cn_scorer);
        assert_eq!(a.predicted, b.predicted);
        assert_eq!(a.hits, b.hits);
    }

    #[test]
    fn no_candidates_graph() {
        // A single edge: no distance-2 pairs at all.
        let g = CsrGraph::from_edges(2, &[(0, 1)]);
        let out = evaluate(&g, 0.0, 1, exact_cn_scorer);
        assert_eq!(out.hits, 0);
        assert!(out.predicted.is_empty());
    }
}
