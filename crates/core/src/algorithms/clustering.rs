//! Jarvis–Patrick clustering (Listing 4 of the paper): an edge `(u, v)`
//! joins the clustering `C` iff the similarity of `N_u` and `N_v` exceeds
//! a user threshold `τ`. The paper evaluates three similarity variants —
//! Common Neighbors, Jaccard, and Overlap (Figs. 4, 7, 8) — and reports
//! the *number of clusters* (connected components of `(V, C)` with ≥ 2
//! vertices) as the accuracy metric.

use crate::algorithms::dsu::Dsu;
use crate::oracle::{ExactOracle, IntersectionOracle, OracleVisitor};
use crate::pg::ProbGraph;
use pg_graph::{CsrGraph, VertexId};
use pg_parallel::parallel_init;

/// Which vertex-similarity measure gates an edge into the clustering.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SimilarityKind {
    /// `S_C = |N_u ∩ N_v| > τ` (τ is an absolute count).
    CommonNeighbors,
    /// `S_J = |N_u ∩ N_v| / |N_u ∪ N_v| > τ` (τ ∈ [0, 1]).
    Jaccard,
    /// `S_O = |N_u ∩ N_v| / min(d_u, d_v) > τ` (τ ∈ [0, 1]).
    Overlap,
}

/// Result of one clustering run.
#[derive(Clone, Debug, PartialEq)]
pub struct Clustering {
    /// Edges selected into `C` (indices into the edge list used).
    pub selected: Vec<bool>,
    /// Number of selected edges `|C|`.
    pub num_edges: usize,
    /// Connected components of `(V, C)` with at least two vertices.
    pub num_clusters: usize,
}

fn finish(n: usize, edges: &[(VertexId, VertexId)], selected: Vec<bool>) -> Clustering {
    let mut dsu = Dsu::new(n);
    let mut num_edges = 0;
    for (i, &(u, v)) in edges.iter().enumerate() {
        if selected[i] {
            num_edges += 1;
            dsu.union(u, v);
        }
    }
    let num_clusters = dsu.count_components(2);
    Clustering {
        selected,
        num_edges,
        num_clusters,
    }
}

/// The configured similarity of one pair under any oracle (the blue
/// `|N_v ∩ N_u|` of Listing 4 and its Jaccard/Overlap variants).
#[inline]
fn similarity_with<O: IntersectionOracle>(
    o: &O,
    kind: SimilarityKind,
    u: VertexId,
    v: VertexId,
) -> f64 {
    use crate::algorithms::similarity as sim;
    match kind {
        SimilarityKind::CommonNeighbors => sim::common_neighbors_with(o, u, v),
        SimilarityKind::Jaccard => sim::jaccard_with(o, u, v),
        SimilarityKind::Overlap => sim::overlap_with(o, u, v),
    }
}

/// The single Listing-4 kernel, generic over the oracle: the per-edge
/// selection loop is parallel, the component count sequential (cheap).
pub fn jarvis_patrick_with<O: IntersectionOracle>(
    g: &CsrGraph,
    oracle: &O,
    kind: SimilarityKind,
    tau: f64,
) -> Clustering {
    let edges = g.edge_list();
    let selected = parallel_init(edges.len(), |i| {
        let (u, v) = edges[i];
        similarity_with(oracle, kind, u, v) > tau
    });
    finish(g.num_vertices(), &edges, selected)
}

/// Exact Jarvis–Patrick clustering (tuned baseline): the generic kernel
/// with the exact oracle.
pub fn jarvis_patrick_exact(g: &CsrGraph, kind: SimilarityKind, tau: f64) -> Clustering {
    jarvis_patrick_with(g, &ExactOracle::new(g), kind, tau)
}

/// PG-accelerated Jarvis–Patrick clustering: resolves the representation
/// once, then runs the generic kernel.
pub fn jarvis_patrick_pg(
    g: &CsrGraph,
    pg: &ProbGraph,
    kind: SimilarityKind,
    tau: f64,
) -> Clustering {
    struct V<'a>(&'a CsrGraph, SimilarityKind, f64);
    impl OracleVisitor for V<'_> {
        type Output = Clustering;
        fn visit<O: IntersectionOracle>(self, o: &O) -> Clustering {
            jarvis_patrick_with(self.0, o, self.1, self.2)
        }
    }
    pg.with_oracle(V(g, kind, tau))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pg::{PgConfig, Representation};
    use pg_graph::gen;

    #[test]
    fn two_cliques_one_bridge() {
        // Two K5s joined by a single bridge edge: with τ = 1 on common
        // neighbors, intra-clique edges (3 shared neighbors) survive, the
        // bridge (0 shared) does not -> 2 clusters.
        let mut edges = Vec::new();
        for a in 0..5u32 {
            for b in (a + 1)..5 {
                edges.push((a, b));
                edges.push((a + 5, b + 5));
            }
        }
        edges.push((0, 5));
        let g = CsrGraph::from_edges(10, &edges);
        let c = jarvis_patrick_exact(&g, SimilarityKind::CommonNeighbors, 1.0);
        assert_eq!(c.num_clusters, 2);
        assert_eq!(c.num_edges, 20);
    }

    #[test]
    fn zero_threshold_keeps_edges_with_any_shared_neighbor() {
        let g = gen::complete(6);
        // Every edge of K6 has 4 shared neighbors.
        let c = jarvis_patrick_exact(&g, SimilarityKind::CommonNeighbors, 0.0);
        assert_eq!(c.num_edges, 15);
        assert_eq!(c.num_clusters, 1);
    }

    #[test]
    fn huge_threshold_selects_nothing() {
        let g = gen::complete(6);
        let c = jarvis_patrick_exact(&g, SimilarityKind::CommonNeighbors, 100.0);
        assert_eq!(c.num_edges, 0);
        assert_eq!(c.num_clusters, 0);
    }

    #[test]
    fn triangle_free_graph_with_positive_tau_has_no_clusters() {
        // In a triangle-free graph adjacent vertices share no neighbors.
        let g = gen::grid(5, 5);
        for kind in [
            SimilarityKind::CommonNeighbors,
            SimilarityKind::Jaccard,
            SimilarityKind::Overlap,
        ] {
            let c = jarvis_patrick_exact(&g, kind, 0.01);
            assert_eq!(c.num_edges, 0, "{kind:?}");
        }
    }

    #[test]
    fn jaccard_and_overlap_variants_run() {
        let g = gen::kronecker(8, 10, 3);
        for kind in [SimilarityKind::Jaccard, SimilarityKind::Overlap] {
            let c = jarvis_patrick_exact(&g, kind, 0.2);
            assert!(c.num_edges <= g.num_edges());
            assert!(c.num_clusters <= g.num_vertices() / 2 + 1);
        }
    }

    #[test]
    fn pg_clustering_close_to_exact_on_dense_graph() {
        let g = gen::erdos_renyi_gnm(250, 250 * 25, 21);
        let kind = SimilarityKind::CommonNeighbors;
        // Threshold near the expected co-neighbor count splits edges
        // non-trivially.
        let tau = 5.0;
        let exact = jarvis_patrick_exact(&g, kind, tau);
        for rep in [Representation::Bloom { b: 2 }, Representation::OneHash] {
            let pg = ProbGraph::build(&g, &PgConfig::new(rep, 0.33));
            let approx = jarvis_patrick_pg(&g, &pg, kind, tau);
            let rel = approx.num_edges as f64 / exact.num_edges.max(1) as f64;
            assert!((0.5..2.0).contains(&rel), "{rep:?}: rel edges = {rel}");
        }
    }

    #[test]
    fn thread_count_does_not_change_result() {
        let g = gen::kronecker(8, 8, 9);
        let a =
            pg_parallel::with_threads(1, || jarvis_patrick_exact(&g, SimilarityKind::Jaccard, 0.1));
        let b =
            pg_parallel::with_threads(8, || jarvis_patrick_exact(&g, SimilarityKind::Jaccard, 0.1));
        assert_eq!(a, b);
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::from_edges(4, &[]);
        let c = jarvis_patrick_exact(&g, SimilarityKind::Jaccard, 0.5);
        assert_eq!(c.num_edges, 0);
        assert_eq!(c.num_clusters, 0);
    }
}
