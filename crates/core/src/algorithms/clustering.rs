//! Jarvis–Patrick clustering (Listing 4 of the paper): an edge `(u, v)`
//! joins the clustering `C` iff the similarity of `N_u` and `N_v` exceeds
//! a user threshold `τ`. The paper evaluates three similarity variants —
//! Common Neighbors, Jaccard, and Overlap (Figs. 4, 7, 8) — and reports
//! the *number of clusters* (connected components of `(V, C)` with ≥ 2
//! vertices) as the accuracy metric.

use crate::algorithms::dsu::Dsu;
use crate::oracle::{ExactOracle, IntersectionOracle, OracleVisitor};
use crate::pg::ProbGraph;
use pg_graph::{CsrGraph, VertexId};
use pg_parallel::{parallel_for_scratch, weighted_grain};

/// Which vertex-similarity measure gates an edge into the clustering.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SimilarityKind {
    /// `S_C = |N_u ∩ N_v| > τ` (τ is an absolute count).
    CommonNeighbors,
    /// `S_J = |N_u ∩ N_v| / |N_u ∪ N_v| > τ` (τ ∈ [0, 1]).
    Jaccard,
    /// `S_O = |N_u ∩ N_v| / min(d_u, d_v) > τ` (τ ∈ [0, 1]).
    Overlap,
}

/// Result of one clustering run.
#[derive(Clone, Debug, PartialEq)]
pub struct Clustering {
    /// Edges selected into `C` (indices into the edge list used).
    pub selected: Vec<bool>,
    /// Number of selected edges `|C|`.
    pub num_edges: usize,
    /// Connected components of `(V, C)` with at least two vertices.
    pub num_clusters: usize,
}

fn finish(n: usize, edges: &[(VertexId, VertexId)], selected: Vec<bool>) -> Clustering {
    let mut dsu = Dsu::new(n);
    let mut num_edges = 0;
    for (i, &(u, v)) in edges.iter().enumerate() {
        if selected[i] {
            num_edges += 1;
            dsu.union(u, v);
        }
    }
    let num_clusters = dsu.count_components(2);
    Clustering {
        selected,
        num_edges,
        num_clusters,
    }
}

/// The single Listing-4 kernel, generic over the oracle.
///
/// Edges are grouped by source vertex into worker-local runs: the edge
/// list emits every edge once as `(u, v)` with `u < v`, sources
/// ascending, so `u`'s edges are its contiguous block, and one
/// [`IntersectionOracle::estimate_row`] / `jaccard_row` sweep over
/// `u`'s forward neighbors scores the whole block with the source-side
/// sketch state pinned once — no per-pair re-fetch, no per-edge
/// dispatch. Per edge the similarity is bit-identical to the per-pair
/// forms in [`crate::algorithms::similarity`], so the selection (and
/// the component count) is exactly what the per-pair loop produced.
pub fn jarvis_patrick_with<O: IntersectionOracle>(
    g: &CsrGraph,
    oracle: &O,
    kind: SimilarityKind,
    tau: f64,
) -> Clustering {
    let n = g.num_vertices();
    let edges = g.edge_list();
    // Forward-run offsets: edges of source u live at offsets[u]..offsets[u+1].
    let mut offsets = Vec::with_capacity(n + 1);
    offsets.push(0usize);
    let mut max_fwd = 0usize;
    for u in 0..n {
        let fwd = g.forward_neighbors(u as VertexId).len();
        max_fwd = max_fwd.max(fwd);
        offsets.push(offsets[u] + fwd);
    }
    debug_assert_eq!(offsets[n], edges.len());
    let mut selected = vec![false; edges.len()];
    {
        struct SendPtr(*mut bool);
        unsafe impl Send for SendPtr {}
        unsafe impl Sync for SendPtr {}
        let base = SendPtr(selected.as_mut_ptr());
        let base = &base;
        let offsets = &offsets;
        if let Some(plan) = crate::grain::plan_for(oracle, n) {
            // Blocked traversal: per-edge similarities are bit-identical
            // to the row sweep below (the tiled kernels reuse the same
            // lane split), so the selection — exact booleans — cannot
            // change; segments write disjoint ranges of `selected` at
            // `offsets[u] + seg_row_start`.
            let bk = if kind == SimilarityKind::Jaccard {
                crate::grain::BlockKind::Jaccard
            } else {
                crate::grain::BlockKind::Estimate
            };
            crate::grain::tiled_block_sweep(
                n,
                n,
                oracle,
                &plan,
                bk,
                |u| g.forward_neighbors(u),
                || (),
                |(), u, lo, dests, vals| {
                    // SAFETY: segments of source u stay inside u's
                    // exclusive block offsets[u]..offsets[u+1] (forward
                    // runs partition the edge list, and seg_row_start/len
                    // address within u's forward run).
                    let out = unsafe {
                        std::slice::from_raw_parts_mut(
                            base.0.add(offsets[u as usize] + lo),
                            vals.len(),
                        )
                    };
                    match kind {
                        SimilarityKind::CommonNeighbors => {
                            for (s, &e) in out.iter_mut().zip(vals) {
                                *s = e.max(0.0) > tau;
                            }
                        }
                        SimilarityKind::Jaccard => {
                            for (s, &j) in out.iter_mut().zip(vals) {
                                *s = j > tau;
                            }
                        }
                        SimilarityKind::Overlap => {
                            let du = oracle.set_size(u);
                            for ((s, &e), &v) in out.iter_mut().zip(vals).zip(dests) {
                                let m = du.min(oracle.set_size(v));
                                *s = crate::algorithms::similarity::overlap_from_estimate(e, m)
                                    > tau;
                            }
                        }
                    }
                },
                |(), ()| (),
            );
        } else {
            let grain = weighted_grain(n, edges.len() as u64, max_fwd as u64);
            parallel_for_scratch(n, grain, Vec::new, |row: &mut Vec<f64>, ui| {
                let u = ui as VertexId;
                let fwd = g.forward_neighbors(u);
                if fwd.is_empty() {
                    return;
                }
                // SAFETY: the block offsets[ui]..offsets[ui+1] is exclusive
                // to source u (forward runs partition the edge list).
                let out =
                    unsafe { std::slice::from_raw_parts_mut(base.0.add(offsets[ui]), fwd.len()) };
                match kind {
                    SimilarityKind::CommonNeighbors => {
                        oracle.estimate_row(u, fwd, row);
                        for (s, &e) in out.iter_mut().zip(row.iter()) {
                            *s = e.max(0.0) > tau;
                        }
                    }
                    SimilarityKind::Jaccard => {
                        oracle.jaccard_row(u, fwd, row);
                        for (s, &j) in out.iter_mut().zip(row.iter()) {
                            *s = j > tau;
                        }
                    }
                    SimilarityKind::Overlap => {
                        oracle.estimate_row(u, fwd, row);
                        let du = oracle.set_size(u);
                        for ((s, &e), &v) in out.iter_mut().zip(row.iter()).zip(fwd) {
                            let m = du.min(oracle.set_size(v));
                            *s = crate::algorithms::similarity::overlap_from_estimate(e, m) > tau;
                        }
                    }
                }
            });
        }
    }
    finish(n, &edges, selected)
}

/// Exact Jarvis–Patrick clustering (tuned baseline): the generic kernel
/// with the exact oracle.
pub fn jarvis_patrick_exact(g: &CsrGraph, kind: SimilarityKind, tau: f64) -> Clustering {
    jarvis_patrick_with(g, &ExactOracle::new(g), kind, tau)
}

/// PG-accelerated Jarvis–Patrick clustering: resolves the representation
/// once, then runs the generic kernel.
pub fn jarvis_patrick_pg(
    g: &CsrGraph,
    pg: &ProbGraph,
    kind: SimilarityKind,
    tau: f64,
) -> Clustering {
    struct V<'a>(&'a CsrGraph, SimilarityKind, f64);
    impl OracleVisitor for V<'_> {
        type Output = Clustering;
        fn visit<O: IntersectionOracle>(self, o: &O) -> Clustering {
            jarvis_patrick_with(self.0, o, self.1, self.2)
        }
    }
    pg.with_oracle(V(g, kind, tau))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pg::{PgConfig, Representation};
    use pg_graph::gen;

    #[test]
    fn two_cliques_one_bridge() {
        // Two K5s joined by a single bridge edge: with τ = 1 on common
        // neighbors, intra-clique edges (3 shared neighbors) survive, the
        // bridge (0 shared) does not -> 2 clusters.
        let mut edges = Vec::new();
        for a in 0..5u32 {
            for b in (a + 1)..5 {
                edges.push((a, b));
                edges.push((a + 5, b + 5));
            }
        }
        edges.push((0, 5));
        let g = CsrGraph::from_edges(10, &edges);
        let c = jarvis_patrick_exact(&g, SimilarityKind::CommonNeighbors, 1.0);
        assert_eq!(c.num_clusters, 2);
        assert_eq!(c.num_edges, 20);
    }

    #[test]
    fn zero_threshold_keeps_edges_with_any_shared_neighbor() {
        let g = gen::complete(6);
        // Every edge of K6 has 4 shared neighbors.
        let c = jarvis_patrick_exact(&g, SimilarityKind::CommonNeighbors, 0.0);
        assert_eq!(c.num_edges, 15);
        assert_eq!(c.num_clusters, 1);
    }

    #[test]
    fn huge_threshold_selects_nothing() {
        let g = gen::complete(6);
        let c = jarvis_patrick_exact(&g, SimilarityKind::CommonNeighbors, 100.0);
        assert_eq!(c.num_edges, 0);
        assert_eq!(c.num_clusters, 0);
    }

    #[test]
    fn triangle_free_graph_with_positive_tau_has_no_clusters() {
        // In a triangle-free graph adjacent vertices share no neighbors.
        let g = gen::grid(5, 5);
        for kind in [
            SimilarityKind::CommonNeighbors,
            SimilarityKind::Jaccard,
            SimilarityKind::Overlap,
        ] {
            let c = jarvis_patrick_exact(&g, kind, 0.01);
            assert_eq!(c.num_edges, 0, "{kind:?}");
        }
    }

    #[test]
    fn jaccard_and_overlap_variants_run() {
        let g = gen::kronecker(8, 10, 3);
        for kind in [SimilarityKind::Jaccard, SimilarityKind::Overlap] {
            let c = jarvis_patrick_exact(&g, kind, 0.2);
            assert!(c.num_edges <= g.num_edges());
            assert!(c.num_clusters <= g.num_vertices() / 2 + 1);
        }
    }

    #[test]
    fn pg_clustering_close_to_exact_on_dense_graph() {
        let g = gen::erdos_renyi_gnm(250, 250 * 25, 21);
        let kind = SimilarityKind::CommonNeighbors;
        // Threshold near the expected co-neighbor count splits edges
        // non-trivially.
        let tau = 5.0;
        let exact = jarvis_patrick_exact(&g, kind, tau);
        for rep in [Representation::Bloom { b: 2 }, Representation::OneHash] {
            let pg = ProbGraph::build(&g, &PgConfig::new(rep, 0.33));
            let approx = jarvis_patrick_pg(&g, &pg, kind, tau);
            let rel = approx.num_edges as f64 / exact.num_edges.max(1) as f64;
            assert!((0.5..2.0).contains(&rel), "{rep:?}: rel edges = {rel}");
        }
    }

    #[test]
    fn thread_count_does_not_change_result() {
        let g = gen::kronecker(8, 8, 9);
        let a =
            pg_parallel::with_threads(1, || jarvis_patrick_exact(&g, SimilarityKind::Jaccard, 0.1));
        let b =
            pg_parallel::with_threads(8, || jarvis_patrick_exact(&g, SimilarityKind::Jaccard, 0.1));
        assert_eq!(a, b);
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::from_edges(4, &[]);
        let c = jarvis_patrick_exact(&g, SimilarityKind::Jaccard, 0.5);
        assert_eq!(c.num_edges, 0);
        assert_eq!(c.num_clusters, 0);
    }
}
