//! Vertex Similarity measures (Listing 3 of the paper): Jaccard, Overlap,
//! Common Neighbors, Total Neighbors, Adamic–Adar, Resource Allocation.
//!
//! The first four reduce to `|N_u ∩ N_v|` and exact degrees, so each is
//! written **once** against a generic [`IntersectionOracle`]
//! (`*_with`): the exact forms run the [`ExactOracle`], the PG forms
//! whatever sketch oracle the ProbGraph resolves. Adamic–Adar and
//! Resource Allocation weight each *individual* shared neighbor `w` (by
//! `1/log d_w` resp. `1/d_w`), which requires the common elements
//! themselves — those are exact-only, exactly as in the paper's
//! evaluation.

use crate::intersect::{for_each_common, intersect_card};
use crate::oracle::{ExactOracle, IntersectionOracle, OracleVisitor};
use crate::pg::ProbGraph;
use pg_graph::{CsrGraph, VertexId};
use pg_parallel::parallel_init;

/// Generic Common Neighbors `S_C = |N_u ∩ N_v|̂`, clamped at 0.
#[inline]
pub fn common_neighbors_with<O: IntersectionOracle>(o: &O, u: VertexId, v: VertexId) -> f64 {
    o.estimate(u, v).max(0.0)
}

/// Generic Jaccard `S_J = |N_u ∩ N_v| / |N_u ∪ N_v|` in `[0, 1]`.
#[inline]
pub fn jaccard_with<O: IntersectionOracle>(o: &O, u: VertexId, v: VertexId) -> f64 {
    o.jaccard(u, v)
}

/// Overlap finish from an already-computed intersection estimate and
/// `min(d_u, d_v)` — the one place the clamp and the empty-set
/// convention live, shared by the pairwise form below and the
/// row-batched clustering kernel so the two stay bit-identical.
#[inline]
pub fn overlap_from_estimate(est: f64, min_size: u32) -> f64 {
    if min_size == 0 {
        0.0
    } else {
        (est.max(0.0) / min_size as f64).clamp(0.0, 1.0)
    }
}

/// Generic Overlap `S_O = |N_u ∩ N_v| / min(d_u, d_v)` in `[0, 1]`
/// (0 when either set is empty).
pub fn overlap_with<O: IntersectionOracle>(o: &O, u: VertexId, v: VertexId) -> f64 {
    overlap_from_estimate(o.estimate(u, v), o.set_size(u).min(o.set_size(v)))
}

/// Generic Total Neighbors `S_T = |N_u ∪ N_v|`, clamped at 0.
pub fn total_neighbors_with<O: IntersectionOracle>(o: &O, u: VertexId, v: VertexId) -> f64 {
    let s = (o.set_size(u) + o.set_size(v)) as f64;
    (s - common_neighbors_with(o, u, v)).max(0.0)
}

/// Batched raw intersection estimates for a list of pairs — the bulk form
/// every pair-list consumer (link prediction's candidate scoring, bulk
/// similarity queries) shares.
///
/// When the pairs arrive grouped by source (lexicographically sorted, as
/// candidate generators emit them) and the oracle's destinations tile
/// ([`crate::grain::plan_for`]), the scores run through the blocked
/// source-batch × destination-tile traversal; otherwise one
/// [`IntersectionOracle::estimate`] per pair in parallel. Per-pair values
/// are bit-identical either way (tiled-equivalence suite).
pub fn estimate_pairs_with<O: IntersectionOracle>(
    o: &O,
    pairs: &[(VertexId, VertexId)],
) -> Vec<f64> {
    if let Some(scores) = tiled_pair_estimates(o, pairs) {
        return scores;
    }
    parallel_init(pairs.len(), |i| {
        let (u, v) = pairs[i];
        o.estimate(u, v)
    })
}

/// Batched Common Neighbors over a pair list: [`estimate_pairs_with`]
/// with the per-pair clamp of [`common_neighbors_with`].
pub fn common_neighbors_scores_with<O: IntersectionOracle>(
    o: &O,
    pairs: &[(VertexId, VertexId)],
) -> Vec<f64> {
    let mut scores = estimate_pairs_with(o, pairs);
    for s in &mut scores {
        *s = s.max(0.0);
    }
    scores
}

/// The blocked path of [`estimate_pairs_with`]: regroups a sorted pair
/// list into per-source destination rows (a prefix-sum over source ids)
/// and sweeps them with [`crate::grain::tiled_block_sweep`]. `None` when
/// the pairs aren't grouped or the planner prefers the plain path.
fn tiled_pair_estimates<O: IntersectionOracle>(
    o: &O,
    pairs: &[(VertexId, VertexId)],
) -> Option<Vec<f64>> {
    if pairs.is_empty() {
        return None;
    }
    // Grouped = lexicographically non-decreasing: sources ascending, each
    // source's destinations ascending (binary-searchable segments).
    if !pairs.windows(2).all(|w| w[0] <= w[1]) {
        return None;
    }
    let n_ids = pairs.iter().map(|&(u, v)| u.max(v)).max()? as usize + 1;
    let plan = crate::grain::plan_for(o, n_ids)?;
    let mut offs = vec![0usize; n_ids + 1];
    for &(u, _) in pairs {
        offs[u as usize + 1] += 1;
    }
    for i in 0..n_ids {
        offs[i + 1] += offs[i];
    }
    let dests: Vec<VertexId> = pairs.iter().map(|&(_, v)| v).collect();
    let mut scores = vec![0.0f64; pairs.len()];
    {
        struct SendPtr(*mut f64);
        unsafe impl Send for SendPtr {}
        unsafe impl Sync for SendPtr {}
        let base = SendPtr(scores.as_mut_ptr());
        let base = &base;
        let offs = &offs;
        let dests: &[VertexId] = &dests;
        crate::grain::tiled_block_sweep(
            n_ids,
            n_ids,
            o,
            &plan,
            crate::grain::BlockKind::Estimate,
            |u| &dests[offs[u as usize]..offs[u as usize + 1]],
            || (),
            |(), u, lo, _seg_dests, vals| {
                // SAFETY: each (source, tile) segment owns the disjoint
                // range offs[u]+lo .. +vals.len() of the scores vector.
                let out = unsafe {
                    std::slice::from_raw_parts_mut(base.0.add(offs[u as usize] + lo), vals.len())
                };
                out.copy_from_slice(vals);
            },
            |(), ()| (),
        );
    }
    Some(scores)
}

/// Exact common-neighbor count `S_C(u, v) = |N_u ∩ N_v|`.
pub fn common_neighbors(g: &CsrGraph, u: VertexId, v: VertexId) -> usize {
    intersect_card(g.neighbors(u), g.neighbors(v))
}

/// Exact Jaccard `S_J = |N_u ∩ N_v| / |N_u ∪ N_v|` (0 when both empty).
pub fn jaccard(g: &CsrGraph, u: VertexId, v: VertexId) -> f64 {
    jaccard_with(&ExactOracle::new(g), u, v)
}

/// Exact Overlap `S_O = |N_u ∩ N_v| / min(d_u, d_v)` (0 when either empty).
pub fn overlap(g: &CsrGraph, u: VertexId, v: VertexId) -> f64 {
    overlap_with(&ExactOracle::new(g), u, v)
}

/// Exact Total Neighbors `S_T = |N_u ∪ N_v|`.
pub fn total_neighbors(g: &CsrGraph, u: VertexId, v: VertexId) -> usize {
    total_neighbors_with(&ExactOracle::new(g), u, v) as usize
}

/// Exact Adamic–Adar `S_A = Σ_{w ∈ N_u ∩ N_v} 1/log d_w`.
/// Shared neighbors of degree ≤ 1 cannot occur (they'd need degree ≥ 2).
pub fn adamic_adar(g: &CsrGraph, u: VertexId, v: VertexId) -> f64 {
    let mut s = 0.0;
    for_each_common(g.neighbors(u), g.neighbors(v), |w| {
        let d = g.degree(w) as f64;
        debug_assert!(d >= 2.0);
        s += 1.0 / d.ln();
    });
    s
}

/// Exact Resource Allocation `S_R = Σ_{w ∈ N_u ∩ N_v} 1/d_w`.
pub fn resource_allocation(g: &CsrGraph, u: VertexId, v: VertexId) -> f64 {
    let mut s = 0.0;
    for_each_common(g.neighbors(u), g.neighbors(v), |w| {
        s += 1.0 / g.degree(w) as f64;
    });
    s
}

/// One-pair delegate through the ProbGraph's resolved oracle, so every
/// `*_pg` measure shares the `*_with` definition (single source of truth
/// for clamps and zero-guards).
enum Measure {
    CommonNeighbors,
    Jaccard,
    Overlap,
    TotalNeighbors,
}

fn measure_pg(pg: &ProbGraph, m: Measure, u: VertexId, v: VertexId) -> f64 {
    struct Pair(Measure, VertexId, VertexId);
    impl OracleVisitor for Pair {
        type Output = f64;
        fn visit<O: IntersectionOracle>(self, o: &O) -> f64 {
            match self.0 {
                Measure::CommonNeighbors => common_neighbors_with(o, self.1, self.2),
                Measure::Jaccard => jaccard_with(o, self.1, self.2),
                Measure::Overlap => overlap_with(o, self.1, self.2),
                Measure::TotalNeighbors => total_neighbors_with(o, self.1, self.2),
            }
        }
    }
    pg.with_oracle(Pair(m, u, v))
}

/// Approximate common-neighbor count via the ProbGraph estimator.
#[inline]
pub fn common_neighbors_pg(pg: &ProbGraph, u: VertexId, v: VertexId) -> f64 {
    measure_pg(pg, Measure::CommonNeighbors, u, v)
}

/// Approximate Jaccard (Listing 6's `jacBF`).
#[inline]
pub fn jaccard_pg(pg: &ProbGraph, u: VertexId, v: VertexId) -> f64 {
    measure_pg(pg, Measure::Jaccard, u, v)
}

/// Approximate Overlap.
pub fn overlap_pg(pg: &ProbGraph, u: VertexId, v: VertexId) -> f64 {
    measure_pg(pg, Measure::Overlap, u, v)
}

/// Approximate Total Neighbors.
pub fn total_neighbors_pg(pg: &ProbGraph, u: VertexId, v: VertexId) -> f64 {
    measure_pg(pg, Measure::TotalNeighbors, u, v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pg::{PgConfig, Representation};
    use pg_graph::gen;

    /// K4 minus edge (2,3): N(2)=N(3)={0,1}, N(0)={1,2,3}, N(1)={0,2,3}.
    fn diamond() -> CsrGraph {
        CsrGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3)])
    }

    #[test]
    fn common_neighbors_known() {
        let g = diamond();
        assert_eq!(common_neighbors(&g, 2, 3), 2); // {0,1}
        assert_eq!(common_neighbors(&g, 0, 1), 2); // {2,3}
        assert_eq!(common_neighbors(&g, 0, 2), 1); // {1}
    }

    #[test]
    fn jaccard_known() {
        let g = diamond();
        // N(2)={0,1}, N(3)={0,1}: J = 2/2 = 1.
        assert_eq!(jaccard(&g, 2, 3), 1.0);
        // N(0)={1,2,3}, N(1)={0,2,3}: inter {2,3}, union {0,1,2,3}: 0.5.
        assert_eq!(jaccard(&g, 0, 1), 0.5);
    }

    #[test]
    fn overlap_known() {
        let g = diamond();
        assert_eq!(overlap(&g, 2, 3), 1.0);
        // inter(0,2) = {1}; min degree = 2 -> 0.5.
        assert_eq!(overlap(&g, 0, 2), 0.5);
    }

    #[test]
    fn total_neighbors_known() {
        let g = diamond();
        assert_eq!(total_neighbors(&g, 0, 1), 4);
        assert_eq!(total_neighbors(&g, 2, 3), 2);
    }

    #[test]
    fn adamic_adar_and_ra_known() {
        let g = diamond();
        // Common neighbors of (2,3) are 0 and 1, both degree 3.
        let aa = adamic_adar(&g, 2, 3);
        assert!((aa - 2.0 / 3f64.ln()).abs() < 1e-12);
        let ra = resource_allocation(&g, 2, 3);
        assert!((ra - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn isolated_vertices_yield_zero() {
        let g = CsrGraph::from_edges(3, &[(0, 1)]);
        assert_eq!(jaccard(&g, 0, 2), 0.0);
        assert_eq!(overlap(&g, 0, 2), 0.0);
        assert_eq!(adamic_adar(&g, 0, 2), 0.0);
    }

    #[test]
    fn pg_measures_track_exact_on_dense_graph() {
        let g = gen::erdos_renyi_gnm(300, 300 * 30, 17);
        for rep in [
            Representation::Bloom { b: 2 },
            Representation::KHash,
            Representation::OneHash,
        ] {
            let pg = ProbGraph::build(&g, &PgConfig::new(rep, 0.33));
            let mut err_j = 0.0;
            let mut n = 0;
            for (u, v) in g.edges().take(300) {
                err_j += (jaccard_pg(&pg, u, v) - jaccard(&g, u, v)).abs();
                let o = overlap_pg(&pg, u, v);
                assert!((0.0..=1.0).contains(&o));
                let t = total_neighbors_pg(&pg, u, v);
                assert!(t >= 0.0 && t <= (g.degree(u) + g.degree(v)) as f64);
                n += 1;
            }
            let mean_err = err_j / n as f64;
            assert!(mean_err < 0.25, "{rep:?}: mean |ΔJ| = {mean_err}");
        }
    }

    #[test]
    fn batched_pair_estimates_match_pairwise() {
        let g = gen::erdos_renyi_gnm(150, 150 * 10, 5);
        let pg = ProbGraph::build(&g, &PgConfig::new(Representation::Bloom { b: 2 }, 0.3));
        let mut pairs: Vec<_> = g.edges().take(400).collect();
        pairs.sort_unstable();
        pairs.dedup();
        let per_pair: Vec<f64> = pairs
            .iter()
            .map(|&(u, v)| pg.estimate_intersection(u, v))
            .collect();
        struct V<'a>(&'a [(VertexId, VertexId)]);
        impl OracleVisitor for V<'_> {
            type Output = Vec<f64>;
            fn visit<O: IntersectionOracle>(self, o: &O) -> Vec<f64> {
                estimate_pairs_with(o, self.0)
            }
        }
        // A huge budget forces the plain per-pair path, a tiny one the
        // blocked traversal; both must be bit-identical to pairwise.
        for budget in [usize::MAX, 512] {
            let scores = pg_parallel::with_tile_bytes(budget, || pg.with_oracle(V(&pairs)));
            assert_eq!(scores, per_pair, "tile budget {budget}");
        }
        // Ungrouped pairs take the per-pair fallback and still match.
        let mut shuffled = pairs.clone();
        shuffled.reverse();
        let rev: Vec<f64> = per_pair.iter().rev().copied().collect();
        struct W<'a>(&'a [(VertexId, VertexId)]);
        impl OracleVisitor for W<'_> {
            type Output = Vec<f64>;
            fn visit<O: IntersectionOracle>(self, o: &O) -> Vec<f64> {
                estimate_pairs_with(o, self.0)
            }
        }
        let scores = pg_parallel::with_tile_bytes(512, || pg.with_oracle(W(&shuffled)));
        assert_eq!(scores, rev);
    }

    #[test]
    fn symmetry_of_all_measures() {
        let g = gen::kronecker(7, 8, 3);
        let pairs: Vec<_> = g.edges().take(50).collect();
        for (u, v) in pairs {
            assert_eq!(common_neighbors(&g, u, v), common_neighbors(&g, v, u));
            assert_eq!(jaccard(&g, u, v), jaccard(&g, v, u));
            assert_eq!(overlap(&g, u, v), overlap(&g, v, u));
            assert_eq!(adamic_adar(&g, u, v), adamic_adar(&g, v, u));
        }
    }
}
