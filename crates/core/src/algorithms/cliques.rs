//! 4-Clique Counting (Listing 2 of the paper, reformulated to expose
//! `|X ∩ Y|`): for every oriented edge `(u, v)` materialize the 3-clique
//! set `C3 = N⁺_u ∩ N⁺_v`, then for each `w ∈ C3` add `|N⁺_w ∩ C3|`.
//!
//! One generic kernel, [`count_on_dag`]: the inner `|N⁺_w ∩ C3|` goes
//! through [`IntersectionOracle::estimate_vs_members`] — an exact merge
//! for the exact oracle, membership queries for Bloom filters,
//! sample/signature hit counting (scaled by `|N⁺_w|/k`) for MinHash.
//! `C3` is an ad-hoc set with no prebuilt sketch, so the sketched side is
//! always the expensive high-degree `N⁺_w` — which is where the paper's
//! asymptotic advantage (Table VI: `O(n d² B/W)` vs `O(n d³)`) comes
//! from. KMV/HLL store hash values, not elements, and are rejected by the
//! oracle itself (the paper only evaluates BF and MH on clique counting).

use crate::grain::degree_power_grain;
use crate::intersect::intersect_set;
use crate::oracle::{ExactOracle, IntersectionOracle, OracleVisitor};
use crate::pg::ProbGraph;
use pg_graph::{orient_by_degree, CsrGraph, OrientedDag, VertexId};
use pg_parallel::map_reduce_scratch;

/// The single Listing-2 kernel, generic over the oracle.
///
/// The materialized `C3` set lives in worker-local scratch — one buffer
/// per worker for the whole run, zero per-vertex allocation — and the
/// grain is cube-weighted (`work(u) ∝ d⁺_u³`) so hubs don't serialize.
pub fn count_on_dag<O: IntersectionOracle>(dag: &OrientedDag, oracle: &O) -> f64 {
    map_reduce_scratch(
        dag.num_vertices(),
        degree_power_grain(dag, 3),
        || 0f64,
        Vec::new,
        |c3, acc, u| {
            let nu = dag.neighbors_plus(u as VertexId);
            let mut local = 0.0f64;
            for &v in nu {
                intersect_set(nu, dag.neighbors_plus(v), c3);
                for &w in c3.iter() {
                    local += oracle.estimate_vs_members(w, c3).max(0.0);
                }
            }
            acc + local
        },
        |a, b| a + b,
    )
}

/// Exact 4-clique count (tuned baseline).
pub fn count_exact(g: &CsrGraph) -> u64 {
    let dag = orient_by_degree(g);
    count_exact_on_dag(&dag)
}

/// Exact 4-clique count over a prebuilt DAG: the generic kernel with the
/// exact oracle (`f64` accumulation is exact below `2^53`).
pub fn count_exact_on_dag(dag: &OrientedDag) -> u64 {
    count_on_dag(dag, &ExactOracle::new(dag)) as u64
}

/// Approximate 4-clique count with prebuilt DAG and DAG sketches —
/// resolves the representation once, then runs the generic kernel.
pub fn count_approx_on_dag(dag: &OrientedDag, pg: &ProbGraph) -> f64 {
    struct V<'a>(&'a OrientedDag);
    impl OracleVisitor for V<'_> {
        type Output = f64;
        fn visit<O: IntersectionOracle>(self, o: &O) -> f64 {
            count_on_dag(self.0, o)
        }
    }
    pg.with_oracle(V(dag))
}

/// Approximate 4-clique count: builds the DAG and sketches internally.
pub fn count_approx(g: &CsrGraph, cfg: &crate::pg::PgConfig) -> f64 {
    let dag = orient_by_degree(g);
    let pg = ProbGraph::build_dag(&dag, g.memory_bytes(), cfg);
    count_approx_on_dag(&dag, &pg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pg::{PgConfig, Representation};
    use pg_graph::gen;

    fn binom4(n: u64) -> u64 {
        n * (n - 1) * (n - 2) * (n - 3) / 24
    }

    #[test]
    fn complete_graph_has_choose_4() {
        for n in [4usize, 5, 6, 8, 12] {
            assert_eq!(count_exact(&gen::complete(n)), binom4(n as u64), "K_{n}");
        }
    }

    #[test]
    fn clique_free_graphs_count_zero() {
        assert_eq!(count_exact(&gen::grid(6, 6)), 0);
        assert_eq!(count_exact(&gen::complete_bipartite(5, 5)), 0);
        assert_eq!(count_exact(&gen::cycle(12)), 0);
        // A single triangle has no 4-clique.
        assert_eq!(count_exact(&gen::complete(3)), 0);
    }

    #[test]
    fn exact_matches_brute_force() {
        let g = gen::erdos_renyi_gnm(30, 180, 7);
        let mut brute = 0u64;
        for a in 0..30u32 {
            for b in (a + 1)..30 {
                for c in (b + 1)..30 {
                    for d in (c + 1)..30 {
                        if g.has_edge(a, b)
                            && g.has_edge(a, c)
                            && g.has_edge(a, d)
                            && g.has_edge(b, c)
                            && g.has_edge(b, d)
                            && g.has_edge(c, d)
                        {
                            brute += 1;
                        }
                    }
                }
            }
        }
        assert_eq!(count_exact(&g), brute);
    }

    #[test]
    fn exact_thread_invariant() {
        let g = gen::kronecker(8, 8, 5);
        let t1 = pg_parallel::with_threads(1, || count_exact(&g));
        let t4 = pg_parallel::with_threads(4, || count_exact(&g));
        assert_eq!(t1, t4);
    }

    #[test]
    fn approx_tracks_exact_on_dense_graph() {
        let g = gen::erdos_renyi_gnm(150, 150 * 25, 13);
        let exact = count_exact(&g) as f64;
        assert!(exact > 0.0);
        for rep in [Representation::Bloom { b: 2 }, Representation::OneHash] {
            let est = count_approx(&g, &PgConfig::new(rep, 0.33));
            let rel = est / exact;
            assert!(
                (0.4..2.0).contains(&rel),
                "{rep:?}: est={est} exact={exact} rel={rel}"
            );
        }
    }

    #[test]
    fn empty_and_tiny_graphs() {
        assert_eq!(count_exact(&pg_graph::CsrGraph::from_edges(3, &[])), 0);
        let est = count_approx(
            &gen::path(5),
            &PgConfig::new(Representation::Bloom { b: 1 }, 0.25),
        );
        assert_eq!(est, 0.0);
    }
}
