//! The graph-mining algorithms of §III, each in exact and PG-accelerated
//! form. The exact variants follow the tuned GMS/GAP implementations
//! (degree-ordered node iteration, merge/galloping intersections); the PG
//! variants replace every `|X ∩ Y|` (the blue operations in the paper's
//! listings) with the configured estimator.

pub mod cliques;
pub mod clustering;
pub mod clustering_coeff;
pub mod dsu;
pub mod kcore;
pub mod link_prediction;
pub mod similarity;
pub mod triangles;
