//! Colorful Triangle Counting (Pagh & Tsourakakis, IPL'12).
//!
//! Color every vertex independently and uniformly with one of `N` colors,
//! keep only *monochromatic* edges (both endpoints share a color), count
//! triangles exactly on that subgraph, and rescale by `N²`: a triangle
//! survives iff all three vertices share a color, probability `1/N²`.
//! Representative of the *combinatorial-pruning* family in Table VII.

use crate::algorithms::triangles;
use pg_graph::{CsrGraph, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Result of a Colorful TC run.
#[derive(Clone, Debug)]
pub struct ColorfulResult {
    /// Rescaled estimate `tc(monochromatic subgraph) · N²`.
    pub estimate: f64,
    /// Monochromatic edges kept.
    pub kept_edges: usize,
}

/// Runs Colorful TC with `colors ≥ 1`.
pub fn triangle_estimate(g: &CsrGraph, colors: u32, seed: u64) -> ColorfulResult {
    assert!(colors >= 1, "need at least one color");
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC0_10_85);
    let color: Vec<u32> = (0..g.num_vertices())
        .map(|_| rng.gen_range(0..colors))
        .collect();
    let kept: Vec<(VertexId, VertexId)> = g
        .edges()
        .filter(|&(u, v)| color[u as usize] == color[v as usize])
        .collect();
    let sparse = CsrGraph::from_edges(g.num_vertices(), &kept);
    let tc = triangles::count_exact(&sparse) as f64;
    ColorfulResult {
        estimate: tc * (colors as f64) * (colors as f64),
        kept_edges: kept.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_graph::gen;

    #[test]
    fn one_color_is_exact() {
        let g = gen::complete(10);
        let r = triangle_estimate(&g, 1, 4);
        assert_eq!(r.estimate, triangles::count_exact(&g) as f64);
        assert_eq!(r.kept_edges, g.num_edges());
    }

    #[test]
    fn unbiased_over_many_seeds() {
        let g = gen::complete(24);
        let exact = triangles::count_exact(&g) as f64;
        let mean: f64 = (0..60)
            .map(|s| triangle_estimate(&g, 2, s).estimate)
            .sum::<f64>()
            / 60.0;
        assert!(
            (mean - exact).abs() < 0.2 * exact,
            "mean={mean} exact={exact}"
        );
    }

    #[test]
    fn kept_edges_scale_inversely_with_colors() {
        let g = gen::erdos_renyi_gnm(300, 6000, 2);
        let k2 = triangle_estimate(&g, 2, 7).kept_edges as f64;
        let k8 = triangle_estimate(&g, 8, 7).kept_edges as f64;
        // ~m/2 vs ~m/8.
        assert!(k2 > 2.5 * k8, "k2={k2} k8={k8}");
    }

    #[test]
    fn triangle_free_estimates_zero() {
        let g = gen::complete_bipartite(15, 15);
        assert_eq!(triangle_estimate(&g, 3, 1).estimate, 0.0);
    }
}
