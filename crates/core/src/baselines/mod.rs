//! Comparison baselines of the paper's evaluation (§VIII):
//!
//! * [`doulion`] — Doulion \[46\]: keep each edge with probability `p`,
//!   count triangles exactly on the sparsified graph, rescale by `1/p³`.
//! * [`colorful`] — Colorful Triangle Counting \[47\]: color vertices with
//!   `N` colors, keep monochromatic edges, rescale by `N²`.
//! * [`heuristics`] — the no-guarantee schemes of §VIII-D: Reduced
//!   Execution, Partial Graph Processing, and two Auto-Approximation
//!   variants \[112, 113\].

pub mod colorful;
pub mod doulion;
pub mod heuristics;
