//! Doulion (Tsourakakis et al., KDD'09): triangle counting "with a coin".
//!
//! Every edge survives independently with probability `p`; the exact count
//! on the sparsified graph, rescaled by `1/p³`, is an unbiased estimator
//! of the original triangle count (each triangle survives w.p. `p³`).
//! Representative of the *edge-sampling* family in Table VII / Fig. 6.

use crate::algorithms::triangles;
use pg_graph::{CsrGraph, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Result of a Doulion run (the sparsified graph is kept so callers can
/// account its memory, matching the `O(pm)` column of Table VII).
#[derive(Clone, Debug)]
pub struct DoulionResult {
    /// Rescaled triangle estimate `tc(G_p) / p³`.
    pub estimate: f64,
    /// Edges surviving the coin flips.
    pub kept_edges: usize,
}

/// Runs Doulion with keep-probability `p ∈ (0, 1]`.
pub fn triangle_estimate(g: &CsrGraph, p: f64, seed: u64) -> DoulionResult {
    assert!(p > 0.0 && p <= 1.0, "keep probability p={p} outside (0,1]");
    let mut rng = StdRng::seed_from_u64(seed ^ 0xD0_71_10);
    let kept: Vec<(VertexId, VertexId)> = g.edges().filter(|_| rng.gen::<f64>() < p).collect();
    let sparse = CsrGraph::from_edges(g.num_vertices(), &kept);
    let tc = triangles::count_exact(&sparse) as f64;
    DoulionResult {
        estimate: tc / (p * p * p),
        kept_edges: kept.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_graph::gen;

    #[test]
    fn p_one_is_exact() {
        let g = gen::complete(12);
        let r = triangle_estimate(&g, 1.0, 3);
        assert_eq!(r.estimate, triangles::count_exact(&g) as f64);
        assert_eq!(r.kept_edges, g.num_edges());
    }

    #[test]
    fn unbiased_over_many_seeds() {
        let g = gen::complete(20); // 1140 triangles
        let exact = triangles::count_exact(&g) as f64;
        let mean: f64 = (0..40)
            .map(|s| triangle_estimate(&g, 0.5, s).estimate)
            .sum::<f64>()
            / 40.0;
        assert!(
            (mean - exact).abs() < 0.15 * exact,
            "mean={mean} exact={exact}"
        );
    }

    #[test]
    fn sparsification_rate_matches_p() {
        let g = gen::erdos_renyi_gnm(200, 4000, 9);
        let r = triangle_estimate(&g, 0.3, 5);
        let frac = r.kept_edges as f64 / g.num_edges() as f64;
        assert!((frac - 0.3).abs() < 0.05, "kept fraction {frac}");
    }

    #[test]
    #[should_panic(expected = "outside (0,1]")]
    fn rejects_zero_p() {
        triangle_estimate(&gen::complete(4), 0.0, 1);
    }

    #[test]
    fn triangle_free_estimates_zero() {
        let g = gen::grid(10, 10);
        assert_eq!(triangle_estimate(&g, 0.5, 2).estimate, 0.0);
    }
}
