//! The no-guarantee approximation heuristics of §VIII-D:
//!
//! * **Reduced Execution** \[112\]: run only a random fraction `ρ` of the
//!   outermost loop iterations and rescale.
//! * **Partial Graph Processing** \[112\]: process, for each vertex, a
//!   random subset of its neighbors.
//! * **Auto-Approximation** (two variants) \[113\]: sampling on top of a
//!   *purely vertex-centric* execution model. The vertex-centric
//!   abstraction is reproduced deliberately — neighbor lists are
//!   materialized as per-vertex "messages" and intersected via hash sets —
//!   because its overhead is exactly why the paper finds these schemes
//!   slower than the tuned exact baselines (Fig. 6).
//!
//! None of these carries an accuracy guarantee, and the paper shows they
//! lose 25–75 % accuracy against ProbGraph; the tests only pin down the
//! mechanics, not tight error bars.

use crate::intersect::intersect_card;
use pg_graph::{orient_by_degree, CsrGraph, VertexId};
use pg_parallel::{map_reduce, sum_u64};

/// Deterministic per-(seed, index) coin with probability `rho`.
#[inline]
fn coin(seed: u64, index: u64, rho: f64) -> bool {
    let h = pg_hash::splitmix64_at(seed ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    (h as f64 / u64::MAX as f64) < rho
}

/// Reduced Execution: node-iterator TC over a random `ρ`-fraction of the
/// vertices, rescaled by `1/ρ`.
pub fn reduced_execution_tc(g: &CsrGraph, rho: f64, seed: u64) -> f64 {
    assert!(rho > 0.0 && rho <= 1.0, "rho={rho} outside (0,1]");
    let dag = orient_by_degree(g);
    let total = sum_u64(dag.num_vertices(), |v| {
        if !coin(seed, v as u64, rho) {
            return 0;
        }
        let np = dag.neighbors_plus(v as VertexId);
        let mut local = 0u64;
        for &u in np {
            local += intersect_card(np, dag.neighbors_plus(u)) as u64;
        }
        local
    });
    total as f64 / rho
}

/// Partial Graph Processing: every vertex keeps a random `ρ`-subset of its
/// oriented neighborhood; intersections run on the subsets and the result
/// is rescaled by `1/ρ³` (a triangle survives iff three independent
/// neighbor-retention coins land heads).
pub fn partial_processing_tc(g: &CsrGraph, rho: f64, seed: u64) -> f64 {
    assert!(rho > 0.0 && rho <= 1.0, "rho={rho} outside (0,1]");
    let dag = orient_by_degree(g);
    let n = dag.num_vertices();
    // Sampled oriented neighborhoods; retention decided per (owner, index)
    // so the subsets are independent across vertices.
    let sampled: Vec<Vec<VertexId>> = pg_parallel::parallel_init(n, |v| {
        dag.neighbors_plus(v as VertexId)
            .iter()
            .enumerate()
            .filter(|&(i, _)| coin(seed ^ 0x9a77, ((v as u64) << 24) | i as u64, rho))
            .map(|(_, &u)| u)
            .collect()
    });
    let total = sum_u64(n, |v| {
        let nv = &sampled[v];
        let mut local = 0u64;
        for &u in nv {
            local += intersect_card(nv, &sampled[u as usize]) as u64;
        }
        local
    });
    total as f64 / (rho * rho * rho)
}

/// Vertex-centric local triangle contribution of `v`: materializes each
/// neighbor's list as a message and intersects via a hash set — the
/// deliberately expensive abstraction of \[113\].
fn vertex_centric_contribution(g: &CsrGraph, v: VertexId, keep_msg: impl Fn(usize) -> bool) -> u64 {
    let mine: std::collections::HashSet<VertexId> = g.neighbors(v).iter().copied().collect();
    let mut local = 0u64;
    for (i, &u) in g.neighbors(v).iter().enumerate() {
        if !keep_msg(i) {
            continue;
        }
        // "Message" from u: a fresh copy of its adjacency list.
        let msg: Vec<VertexId> = g.neighbors(u).to_vec();
        local += msg.iter().filter(|w| mine.contains(w)).count() as u64;
    }
    local
}

/// Auto-Approximation, variant 1: sample *vertices* at rate `ρ` in the
/// vertex-centric model; `tc ≈ Σ_v∈sample contribution(v) / (6ρ)`.
pub fn auto_approx1_tc(g: &CsrGraph, rho: f64, seed: u64) -> f64 {
    assert!(rho > 0.0 && rho <= 1.0);
    let total = map_reduce(
        g.num_vertices(),
        || 0u64,
        |acc, v| {
            if !coin(seed ^ 0xAA01, v as u64, rho) {
                return acc;
            }
            acc + vertex_centric_contribution(g, v as VertexId, |_| true)
        },
        |a, b| a + b,
    );
    total as f64 / (6.0 * rho)
}

/// Auto-Approximation, variant 2: sample *messages* at rate `ρ`;
/// `tc ≈ Σ_v contribution_ρ(v) / (6ρ)`.
pub fn auto_approx2_tc(g: &CsrGraph, rho: f64, seed: u64) -> f64 {
    assert!(rho > 0.0 && rho <= 1.0);
    let total = map_reduce(
        g.num_vertices(),
        || 0u64,
        |acc, v| {
            acc + vertex_centric_contribution(g, v as VertexId, |i| {
                coin(seed ^ 0xAA02, ((v as u64) << 24) | i as u64, rho)
            })
        },
        |a, b| a + b,
    );
    total as f64 / (6.0 * rho)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::triangles;
    use pg_graph::gen;

    #[test]
    fn rho_one_reduced_execution_is_exact() {
        let g = gen::complete(15);
        let exact = triangles::count_exact(&g) as f64;
        assert_eq!(reduced_execution_tc(&g, 1.0, 3), exact);
    }

    #[test]
    fn rho_one_partial_processing_is_exact() {
        let g = gen::kronecker(8, 8, 1);
        let exact = triangles::count_exact(&g) as f64;
        assert_eq!(partial_processing_tc(&g, 1.0, 3), exact);
    }

    #[test]
    fn rho_one_auto_approx_is_exact() {
        let g = gen::complete(10);
        let exact = triangles::count_exact(&g) as f64;
        assert!((auto_approx1_tc(&g, 1.0, 1) - exact).abs() < 1e-9);
        assert!((auto_approx2_tc(&g, 1.0, 1) - exact).abs() < 1e-9);
    }

    #[test]
    fn estimates_in_the_right_ballpark() {
        let g = gen::erdos_renyi_gnm(300, 300 * 20, 5);
        let exact = triangles::count_exact(&g) as f64;
        for (name, est) in [
            ("reduced", reduced_execution_tc(&g, 0.5, 7)),
            ("partial", partial_processing_tc(&g, 0.5, 7)),
            ("auto1", auto_approx1_tc(&g, 0.5, 7)),
            ("auto2", auto_approx2_tc(&g, 0.5, 7)),
        ] {
            let rel = est / exact;
            assert!((0.3..3.0).contains(&rel), "{name}: rel={rel}");
        }
    }

    #[test]
    fn triangle_free_estimates_zero() {
        let g = gen::grid(8, 8);
        assert_eq!(reduced_execution_tc(&g, 0.7, 1), 0.0);
        assert_eq!(partial_processing_tc(&g, 0.7, 1), 0.0);
        assert_eq!(auto_approx1_tc(&g, 0.7, 1), 0.0);
        assert_eq!(auto_approx2_tc(&g, 0.7, 1), 0.0);
    }

    #[test]
    fn deterministic_in_seed() {
        let g = gen::kronecker(8, 6, 2);
        assert_eq!(
            reduced_execution_tc(&g, 0.4, 9),
            reduced_execution_tc(&g, 0.4, 9)
        );
        assert_eq!(
            partial_processing_tc(&g, 0.4, 9),
            partial_processing_tc(&g, 0.4, 9)
        );
    }
}
