//! The no-guarantee approximation heuristics of §VIII-D:
//!
//! * **Reduced Execution** \[112\]: run only a random fraction `ρ` of the
//!   outermost loop iterations and rescale.
//! * **Partial Graph Processing** \[112\]: process, for each vertex, a
//!   random subset of its neighbors.
//! * **Auto-Approximation** (two variants) \[113\]: sampling on top of a
//!   *purely vertex-centric* execution model. The vertex-centric
//!   abstraction is reproduced deliberately — neighbor lists are
//!   materialized as per-vertex "messages" and intersected via hash sets —
//!   because its overhead is exactly why the paper finds these schemes
//!   slower than the tuned exact baselines (Fig. 6).
//!
//! None of these carries an accuracy guarantee, and the paper shows they
//! lose 25–75 % accuracy against ProbGraph; the tests only pin down the
//! mechanics, not tight error bars.
//!
//! Reduced Execution and Partial Graph Processing are **oracle-generic**:
//! their kernels batch each surviving row through
//! [`IntersectionOracle::estimate_row`] exactly like the algorithm
//! kernels, so the exact forms are the generic kernels + [`ExactOracle`]
//! and each also composes with a ProbGraph (`*_tc_pg`). The
//! Auto-Approximation pair stays vertex-centric *on purpose* — its
//! per-message materialization and hash-set intersections are the
//! overhead the paper measures, and routing it through the oracle layer
//! would optimize away the very thing it baselines.

use crate::oracle::{AdjacencyRows, ExactOracle, IntersectionOracle, OracleVisitor};
use crate::pg::{PgConfig, ProbGraph};
use pg_graph::{orient_by_degree, CsrGraph, OrientedDag, VertexId};
use pg_parallel::{map_reduce, map_reduce_scratch};

/// Deterministic per-(seed, index) coin with probability `rho`.
#[inline]
fn coin(seed: u64, index: u64, rho: f64) -> bool {
    let h = pg_hash::splitmix64_at(seed ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    (h as f64 / u64::MAX as f64) < rho
}

/// The single Reduced-Execution kernel, generic over the oracle: a random
/// `ρ`-fraction of sources, each surviving source's oriented row batched
/// through [`IntersectionOracle::estimate_row`] into worker-local scratch
/// (same hoisting as the algorithm kernels), rescaled by `1/ρ`.
pub fn reduced_execution_tc_with<O: IntersectionOracle>(
    dag: &OrientedDag,
    oracle: &O,
    rho: f64,
    seed: u64,
) -> f64 {
    assert!(rho > 0.0 && rho <= 1.0, "rho={rho} outside (0,1]");
    let n = dag.num_vertices();
    if let Some(plan) = crate::grain::plan_for(oracle, n) {
        // Blocked traversal over the surviving sources: non-survivors
        // contribute empty rows, so the coin stays the single source of
        // sampling truth and per-edge estimates are bit-identical to the
        // row sweep below.
        let total = crate::grain::tiled_block_sweep(
            n,
            n,
            oracle,
            &plan,
            crate::grain::BlockKind::Estimate,
            |v| {
                if coin(seed, v as u64, rho) {
                    dag.neighbors_plus(v)
                } else {
                    &[]
                }
            },
            || 0f64,
            |acc, _v, _lo, _dests, vals| acc + vals.iter().fold(0.0f64, |s, &e| s + e.max(0.0)),
            |a, b| a + b,
        );
        return total / rho;
    }
    let total = map_reduce_scratch(
        n,
        pg_parallel::auto_grain(n),
        || 0f64,
        Vec::new,
        |row, acc, v| {
            if !coin(seed, v as u64, rho) {
                return acc;
            }
            let np = dag.neighbors_plus(v as VertexId);
            if np.is_empty() {
                return acc;
            }
            oracle.estimate_row(v as VertexId, np, row);
            acc + row.iter().fold(0.0f64, |s, &e| s + e.max(0.0))
        },
        |a, b| a + b,
    );
    total / rho
}

/// Reduced Execution over exact intersections (the \[112\] scheme as
/// evaluated in Fig. 6): the generic kernel with the exact oracle.
pub fn reduced_execution_tc(g: &CsrGraph, rho: f64, seed: u64) -> f64 {
    let dag = orient_by_degree(g);
    reduced_execution_tc_with(&dag, &ExactOracle::new(&dag), rho, seed)
}

/// Reduced Execution stacked on a ProbGraph: sketches over `N⁺` score the
/// surviving rows — representation resolved once through
/// [`ProbGraph::with_oracle`], then the same generic kernel.
pub fn reduced_execution_tc_pg(g: &CsrGraph, cfg: &PgConfig, rho: f64, seed: u64) -> f64 {
    let dag = orient_by_degree(g);
    let pg = ProbGraph::build_dag(&dag, g.memory_bytes(), cfg);
    struct V<'a> {
        dag: &'a OrientedDag,
        rho: f64,
        seed: u64,
    }
    impl OracleVisitor for V<'_> {
        type Output = f64;
        fn visit<O: IntersectionOracle>(self, o: &O) -> f64 {
            reduced_execution_tc_with(self.dag, o, self.rho, self.seed)
        }
    }
    pg.with_oracle(V {
        dag: &dag,
        rho,
        seed,
    })
}

/// Per-vertex `ρ`-sampled oriented neighborhoods; retention decided per
/// (owner, slot) so the subsets are independent across vertices. Subsets
/// of sorted rows stay sorted.
fn sampled_neighborhoods(dag: &OrientedDag, rho: f64, seed: u64) -> Vec<Vec<VertexId>> {
    pg_parallel::parallel_init(dag.num_vertices(), |v| {
        dag.neighbors_plus(v as VertexId)
            .iter()
            .enumerate()
            .filter(|&(i, _)| coin(seed ^ 0x9a77, ((v as u64) << 24) | i as u64, rho))
            .map(|(_, &u)| u)
            .collect()
    })
}

/// Sorted-row adapter: lets the sampled neighborhoods back an
/// [`ExactOracle`] (or be sketched via [`ProbGraph::build_over`]) so the
/// Partial-Processing kernel is the same generic row-batched loop as
/// everything else.
struct SampledRows(Vec<Vec<VertexId>>);

impl AdjacencyRows for SampledRows {
    #[inline]
    fn adjacency_row(&self, v: VertexId) -> &[u32] {
        &self.0[v as usize]
    }
}

/// The single Partial-Graph-Processing kernel, generic over the oracle:
/// every vertex's retained `ρ`-subset is one batched row, rescaled by
/// `1/ρ³` (a triangle survives iff three independent neighbor-retention
/// coins land heads).
pub fn partial_processing_tc_with<O: IntersectionOracle>(
    sampled: &[Vec<VertexId>],
    oracle: &O,
    rho: f64,
) -> f64 {
    assert!(rho > 0.0 && rho <= 1.0, "rho={rho} outside (0,1]");
    let n = sampled.len();
    let total = if let Some(plan) = crate::grain::plan_for(oracle, n) {
        crate::grain::tiled_block_sweep(
            n,
            n,
            oracle,
            &plan,
            crate::grain::BlockKind::Estimate,
            |v| &sampled[v as usize][..],
            || 0f64,
            |acc, _v, _lo, _dests, vals| acc + vals.iter().fold(0.0f64, |s, &e| s + e.max(0.0)),
            |a, b| a + b,
        )
    } else {
        map_reduce_scratch(
            n,
            pg_parallel::auto_grain(n),
            || 0f64,
            Vec::new,
            |row, acc, v| {
                let nv = &sampled[v];
                if nv.is_empty() {
                    return acc;
                }
                oracle.estimate_row(v as VertexId, nv, row);
                acc + row.iter().fold(0.0f64, |s, &e| s + e.max(0.0))
            },
            |a, b| a + b,
        )
    };
    total / (rho * rho * rho)
}

/// Partial Graph Processing over exact intersections (\[112\]): the
/// generic kernel with an exact oracle over the sampled rows.
pub fn partial_processing_tc(g: &CsrGraph, rho: f64, seed: u64) -> f64 {
    assert!(rho > 0.0 && rho <= 1.0, "rho={rho} outside (0,1]");
    let dag = orient_by_degree(g);
    let rows = SampledRows(sampled_neighborhoods(&dag, rho, seed));
    partial_processing_tc_with(&rows.0, &ExactOracle::new(&rows), rho)
}

/// Partial Graph Processing stacked on a ProbGraph: the retained subsets
/// are sketched under `cfg` and the same generic kernel runs against the
/// resolved oracle.
pub fn partial_processing_tc_pg(g: &CsrGraph, cfg: &PgConfig, rho: f64, seed: u64) -> f64 {
    assert!(rho > 0.0 && rho <= 1.0, "rho={rho} outside (0,1]");
    let dag = orient_by_degree(g);
    let sampled = sampled_neighborhoods(&dag, rho, seed);
    let pg = ProbGraph::build_over(sampled.len(), g.memory_bytes(), |v| &sampled[v][..], cfg);
    struct V<'a> {
        sampled: &'a [Vec<VertexId>],
        rho: f64,
    }
    impl OracleVisitor for V<'_> {
        type Output = f64;
        fn visit<O: IntersectionOracle>(self, o: &O) -> f64 {
            partial_processing_tc_with(self.sampled, o, self.rho)
        }
    }
    pg.with_oracle(V {
        sampled: &sampled,
        rho,
    })
}

/// Vertex-centric local triangle contribution of `v`: materializes each
/// neighbor's list as a message and intersects via a hash set — the
/// deliberately expensive abstraction of \[113\].
fn vertex_centric_contribution(g: &CsrGraph, v: VertexId, keep_msg: impl Fn(usize) -> bool) -> u64 {
    let mine: std::collections::HashSet<VertexId> = g.neighbors(v).iter().copied().collect();
    let mut local = 0u64;
    for (i, &u) in g.neighbors(v).iter().enumerate() {
        if !keep_msg(i) {
            continue;
        }
        // "Message" from u: a fresh copy of its adjacency list.
        let msg: Vec<VertexId> = g.neighbors(u).to_vec();
        local += msg.iter().filter(|w| mine.contains(w)).count() as u64;
    }
    local
}

/// Auto-Approximation, variant 1: sample *vertices* at rate `ρ` in the
/// vertex-centric model; `tc ≈ Σ_v∈sample contribution(v) / (6ρ)`.
pub fn auto_approx1_tc(g: &CsrGraph, rho: f64, seed: u64) -> f64 {
    assert!(rho > 0.0 && rho <= 1.0);
    let total = map_reduce(
        g.num_vertices(),
        || 0u64,
        |acc, v| {
            if !coin(seed ^ 0xAA01, v as u64, rho) {
                return acc;
            }
            acc + vertex_centric_contribution(g, v as VertexId, |_| true)
        },
        |a, b| a + b,
    );
    total as f64 / (6.0 * rho)
}

/// Auto-Approximation, variant 2: sample *messages* at rate `ρ`;
/// `tc ≈ Σ_v contribution_ρ(v) / (6ρ)`.
pub fn auto_approx2_tc(g: &CsrGraph, rho: f64, seed: u64) -> f64 {
    assert!(rho > 0.0 && rho <= 1.0);
    let total = map_reduce(
        g.num_vertices(),
        || 0u64,
        |acc, v| {
            acc + vertex_centric_contribution(g, v as VertexId, |i| {
                coin(seed ^ 0xAA02, ((v as u64) << 24) | i as u64, rho)
            })
        },
        |a, b| a + b,
    );
    total as f64 / (6.0 * rho)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::triangles;
    use pg_graph::gen;

    #[test]
    fn rho_one_reduced_execution_is_exact() {
        let g = gen::complete(15);
        let exact = triangles::count_exact(&g) as f64;
        assert_eq!(reduced_execution_tc(&g, 1.0, 3), exact);
    }

    #[test]
    fn rho_one_partial_processing_is_exact() {
        let g = gen::kronecker(8, 8, 1);
        let exact = triangles::count_exact(&g) as f64;
        assert_eq!(partial_processing_tc(&g, 1.0, 3), exact);
    }

    #[test]
    fn rho_one_auto_approx_is_exact() {
        let g = gen::complete(10);
        let exact = triangles::count_exact(&g) as f64;
        assert!((auto_approx1_tc(&g, 1.0, 1) - exact).abs() < 1e-9);
        assert!((auto_approx2_tc(&g, 1.0, 1) - exact).abs() < 1e-9);
    }

    #[test]
    fn estimates_in_the_right_ballpark() {
        let g = gen::erdos_renyi_gnm(300, 300 * 20, 5);
        let exact = triangles::count_exact(&g) as f64;
        for (name, est) in [
            ("reduced", reduced_execution_tc(&g, 0.5, 7)),
            ("partial", partial_processing_tc(&g, 0.5, 7)),
            ("auto1", auto_approx1_tc(&g, 0.5, 7)),
            ("auto2", auto_approx2_tc(&g, 0.5, 7)),
        ] {
            let rel = est / exact;
            assert!((0.3..3.0).contains(&rel), "{name}: rel={rel}");
        }
    }

    #[test]
    fn triangle_free_estimates_zero() {
        let g = gen::grid(8, 8);
        assert_eq!(reduced_execution_tc(&g, 0.7, 1), 0.0);
        assert_eq!(partial_processing_tc(&g, 0.7, 1), 0.0);
        assert_eq!(auto_approx1_tc(&g, 0.7, 1), 0.0);
        assert_eq!(auto_approx2_tc(&g, 0.7, 1), 0.0);
    }

    #[test]
    fn deterministic_in_seed() {
        let g = gen::kronecker(8, 6, 2);
        assert_eq!(
            reduced_execution_tc(&g, 0.4, 9),
            reduced_execution_tc(&g, 0.4, 9)
        );
        assert_eq!(
            partial_processing_tc(&g, 0.4, 9),
            partial_processing_tc(&g, 0.4, 9)
        );
    }
}
